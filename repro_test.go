package repro_test

import (
	"testing"

	"repro"
)

func TestFacadePresets(t *testing.T) {
	lp, hp, srv := repro.LPClient(), repro.HPClient(), repro.ServerBaseline()
	if lp.MaxCState != "C6" || hp.MaxCState != "C0" || srv.MaxCState != "C1" {
		t.Errorf("preset C-states wrong: %s/%s/%s", lp.MaxCState, hp.MaxCState, srv.MaxCState)
	}
	if repro.ClassifyClient(lp) != "not-tuned" || repro.ClassifyClient(hp) != "tuned" {
		t.Error("classification via facade wrong")
	}
	if len(repro.SkylakeCStates()) != 4 {
		t.Errorf("C-state table size = %d", len(repro.SkylakeCStates()))
	}
}

func TestFacadeScenarioRoundTrip(t *testing.T) {
	res, err := repro.RunScenario(repro.Scenario{
		Service:       repro.ServiceSynthetic,
		Label:         "facade",
		Client:        repro.HPClient(),
		Server:        repro.ServerBaseline(),
		RateQPS:       5000,
		Runs:          3,
		TargetSamples: 500,
		Seed:          1,
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.PerRunAvgUs) != 3 {
		t.Fatalf("runs = %d", len(res.PerRunAvgUs))
	}
	if res.MedianAvgUs() <= 0 {
		t.Error("no latency measured")
	}
}

func TestFacadeStats(t *testing.T) {
	x := make([]float64, 50)
	for i := range x {
		x[i] = 100 + float64(i%7)
	}
	if repro.Median(x) <= 0 {
		t.Error("median")
	}
	if repro.Percentile(x, 99) < repro.Percentile(x, 50) {
		t.Error("percentiles not monotone")
	}
	iv, err := repro.NonParametricCI(x, 0.95)
	if err != nil {
		t.Fatal(err)
	}
	if iv.Lower > iv.Point || iv.Point > iv.Upper {
		t.Error("CI does not bracket median")
	}
	if _, err := repro.ShapiroWilk(x); err != nil {
		t.Errorf("shapiro: %v", err)
	}
	if _, err := repro.JainIterations(x, 0.95, 1); err != nil {
		t.Errorf("jain: %v", err)
	}
	if _, err := repro.Confirm(x, 1); err != nil {
		t.Errorf("confirm: %v", err)
	}
}

func TestFacadeRecommendAndConclusions(t *testing.T) {
	rec := repro.Recommend(repro.GeneratorDesign{
		Loop: repro.OpenLoop, Pacing: repro.TimeSensitive, Point: repro.InApp,
	}, false)
	if rec.ClientConfig == "" || rec.Rationale == "" {
		t.Error("empty recommendation")
	}

	mk := func(base float64) []float64 {
		x := make([]float64, 20)
		for i := range x {
			x[i] = base + float64(i%3)
		}
		return x
	}
	check, err := repro.CheckConclusions(mk(100), mk(80), mk(150), mk(149))
	if err != nil {
		t.Fatal(err)
	}
	if !check.Conflicting() {
		t.Error("expected conflicting conclusions")
	}
}
