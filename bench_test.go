// Benchmark harness: one testing.B benchmark per table and figure of the
// paper's evaluation. Each benchmark regenerates a reduced version of its
// table/figure per iteration (fewer runs and samples than cmd/repro, which
// produces the full-size outputs); reported ns/op is the cost of one
// regeneration. Run with:
//
//	go test -bench=. -benchmem
package repro_test

import (
	"runtime"
	"strings"
	"testing"

	"repro"
	"repro/internal/experiment"
	"repro/internal/figures"
)

// benchOpts keeps benchmark iterations affordable while exercising the
// full pipeline (simulation → statistics → rendering).
func benchOpts(seed uint64) figures.SweepOptions {
	return figures.SweepOptions{Runs: 3, Seed: seed, TargetSamples: 1_000}
}

func BenchmarkTable1Survey(b *testing.B) {
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if out := figures.TableI().Render(); !strings.Contains(out, "Total") {
			b.Fatal("table I incomplete")
		}
	}
}

func BenchmarkTable2Configurations(b *testing.B) {
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if out := figures.TableII().Render(); !strings.Contains(out, "powersave") {
			b.Fatal("table II incomplete")
		}
	}
}

func BenchmarkTable3Scenarios(b *testing.B) {
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if out := figures.TableIII().Render(); !strings.Contains(out, "wrong-conclusions") {
			b.Fatal("table III incomplete")
		}
	}
}

// memcachedBenchSweep regenerates the reduced Memcached study (the data
// behind Figures 2, 3, 5a, 8, 9 and Table IV) at two load points.
func memcachedBenchSweep(b *testing.B, seed uint64) *figures.Sweep {
	b.Helper()
	variants := []experiment.ServerVariant{
		experiment.SMTVariants()[0],
		experiment.SMTVariants()[1],
		experiment.C1EVariants()[1],
	}
	sw, err := figures.RunServiceSweep(experiment.ServiceMemcached, variants,
		[]float64{100_000, 400_000}, benchOpts(seed))
	if err != nil {
		b.Fatal(err)
	}
	return sw
}

func BenchmarkFig2MemcachedSMT(b *testing.B) {
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		sw := memcachedBenchSweep(b, uint64(i))
		if out := figures.Fig2(sw); !strings.Contains(out, "SMT_OFF / SMT_ON") {
			b.Fatal("fig 2 incomplete")
		}
	}
}

func BenchmarkFig3MemcachedC1E(b *testing.B) {
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		sw := memcachedBenchSweep(b, uint64(i))
		if out := figures.Fig3(sw); !strings.Contains(out, "C1E_ON / C1E_OFF") {
			b.Fatal("fig 3 incomplete")
		}
	}
}

func BenchmarkFig4HDSearch(b *testing.B) {
	variants := []experiment.ServerVariant{
		experiment.SMTVariants()[0],
		experiment.SMTVariants()[1],
		experiment.C1EVariants()[1],
	}
	opts := figures.SweepOptions{Runs: 2, Seed: 4, TargetSamples: 400}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		sw, err := figures.RunServiceSweep(experiment.ServiceHDSearch, variants,
			[]float64{1000, 2500}, opts)
		if err != nil {
			b.Fatal(err)
		}
		if out := figures.Fig4(sw); !strings.Contains(out, "C1E") {
			b.Fatal("fig 4 incomplete")
		}
	}
}

func BenchmarkFig5StddevAcrossRuns(b *testing.B) {
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		mem := memcachedBenchSweep(b, uint64(i))
		hd, err := figures.RunServiceSweep(experiment.ServiceHDSearch,
			experiment.SMTVariants(), []float64{1000},
			figures.SweepOptions{Runs: 3, Seed: uint64(i), TargetSamples: 300})
		if err != nil {
			b.Fatal(err)
		}
		if out := figures.Fig5(mem, hd); !strings.Contains(out, "stddev") {
			b.Fatal("fig 5 incomplete")
		}
	}
}

func BenchmarkFig6SocialNetwork(b *testing.B) {
	opts := figures.SweepOptions{Runs: 2, Seed: 6, TargetSamples: 300}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		sw, err := figures.RunServiceSweep(experiment.ServiceSocialNet,
			experiment.SMTVariants()[:1], []float64{200, 600}, opts)
		if err != nil {
			b.Fatal(err)
		}
		if out := figures.Fig6(sw); !strings.Contains(out, "LP / HP") {
			b.Fatal("fig 6 incomplete")
		}
	}
}

func BenchmarkFig7SyntheticSensitivity(b *testing.B) {
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		sw, err := figures.RunSyntheticStudy(figures.SweepOptions{Runs: 2, Seed: uint64(i), TargetSamples: 250})
		if err != nil {
			b.Fatal(err)
		}
		if out := figures.Fig7(sw); !strings.Contains(out, "LP / HP") {
			b.Fatal("fig 7 incomplete")
		}
	}
}

func BenchmarkFig8ShapiroWilk(b *testing.B) {
	// Normality analysis needs more runs per point; keep one rate.
	variants := []experiment.ServerVariant{
		experiment.SMTVariants()[0],
		experiment.SMTVariants()[1],
		experiment.C1EVariants()[1],
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		sw, err := figures.RunServiceSweep(experiment.ServiceMemcached, variants,
			[]float64{200_000}, figures.SweepOptions{Runs: 12, Seed: uint64(i), TargetSamples: 400})
		if err != nil {
			b.Fatal(err)
		}
		if out := figures.Fig8(sw); !strings.Contains(out, "normality") {
			b.Fatal("fig 8 incomplete")
		}
	}
}

func BenchmarkFig9FrequencyChart(b *testing.B) {
	sw, err := figures.RunServiceSweep(experiment.ServiceMemcached,
		experiment.SMTVariants()[:1], []float64{400_000},
		figures.SweepOptions{Runs: 15, Seed: 9, TargetSamples: 500})
	if err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		out, err := figures.Fig9(sw, "HP", "SMToff", 0)
		if err != nil {
			b.Fatal(err)
		}
		if !strings.Contains(out, "median") {
			b.Fatal("fig 9 incomplete")
		}
	}
}

func BenchmarkTable4Iterations(b *testing.B) {
	variants := []experiment.ServerVariant{
		experiment.SMTVariants()[0],
		experiment.SMTVariants()[1],
		experiment.C1EVariants()[1],
	}
	sw, err := figures.RunServiceSweep(experiment.ServiceMemcached, variants,
		[]float64{100_000}, figures.SweepOptions{Runs: 12, Seed: 10, TargetSamples: 400})
	if err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if out := figures.TableIV(sw, uint64(i)).Render(); !strings.Contains(out, "CONFIRM") {
			b.Fatal("table IV incomplete")
		}
	}
}

// sweepBench runs the benchmark sweep grid — 2 clients × 2 variants ×
// 2 rates of Memcached — through the given worker count. Sequential and
// parallel produce byte-identical grids; the pair below measures only the
// wall-clock difference.
func sweepBench(b *testing.B, workers int) {
	b.Helper()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		sw, err := figures.RunServiceSweep(experiment.ServiceMemcached,
			experiment.SMTVariants(), []float64{100_000, 300_000},
			figures.SweepOptions{Runs: 3, Seed: uint64(i), TargetSamples: 1_000, Workers: workers})
		if err != nil {
			b.Fatal(err)
		}
		if len(sw.Clients) != 2 {
			b.Fatal("sweep incomplete")
		}
	}
}

// BenchmarkSweepSequential is the baseline: the benchmark sweep on one
// worker, the pre-scheduler execution model.
func BenchmarkSweepSequential(b *testing.B) { sweepBench(b, 1) }

// BenchmarkSweepParallel runs the identical sweep fanned out over all
// CPUs via the deterministic scheduler. The ratio to
// BenchmarkSweepSequential is the scheduler's speedup: ≈1 on a
// single-core machine, ≥2× expected from 4 cores up, since the grid has
// 8 independent cells.
func BenchmarkSweepParallel(b *testing.B) { sweepBench(b, runtime.GOMAXPROCS(0)) }

// BenchmarkScenarioRunParallel measures one scenario's repetitions fanned
// out over all CPUs — the inner (per-run) parallelism level.
func BenchmarkScenarioRunParallel(b *testing.B) {
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		_, err := repro.RunScenario(repro.Scenario{
			Service:       repro.ServiceMemcached,
			Label:         "bench-par",
			Client:        repro.HPClient(),
			Server:        repro.ServerBaseline(),
			RateQPS:       200_000,
			Runs:          8,
			TargetSamples: 1_000,
			Seed:          uint64(i),
			Workers:       -1, // all CPUs
		})
		if err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkScenarioRun measures a single scenario repetition end to end —
// the unit of work every figure is built from.
func BenchmarkScenarioRun(b *testing.B) {
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		_, err := repro.RunScenario(repro.Scenario{
			Service:       repro.ServiceMemcached,
			Label:         "bench",
			Client:        repro.HPClient(),
			Server:        repro.ServerBaseline(),
			RateQPS:       200_000,
			Runs:          1,
			TargetSamples: 2_000,
			Seed:          uint64(i),
		})
		if err != nil {
			b.Fatal(err)
		}
	}
}
