package main

import (
	"strings"
	"testing"
)

// TestCheckFlags is the fail-fast table: -spec against spec-owned shape
// flags, and the router/replicas pairing, rejected before any
// simulation starts.
func TestCheckFlags(t *testing.T) {
	cases := []struct {
		name     string
		set      []string
		spec     string
		replicas int
		router   string
		wantErr  string // substring; empty = no error
	}{
		{name: "defaults"},
		{name: "spec-alone", spec: "x.yaml"},
		{name: "spec-smoke-knobs", spec: "x.yaml", set: []string{"rate", "runs", "samples", "seed", "parallel", "samplemode", "point"}},
		{name: "spec-and-preset", spec: "x.yaml", set: []string{"preset"}, wantErr: "-preset"},
		{name: "spec-and-service", spec: "x.yaml", set: []string{"service"}, wantErr: "-service"},
		{name: "spec-and-client", spec: "x.yaml", set: []string{"client"}, wantErr: "-client"},
		{name: "spec-and-server", spec: "x.yaml", set: []string{"server-smt", "server-c1e"}, wantErr: "-server-smt -server-c1e"},
		{name: "spec-and-delay", spec: "x.yaml", set: []string{"delay"}, wantErr: "-delay"},
		{name: "spec-and-cluster", spec: "x.yaml", set: []string{"replicas", "router"}, wantErr: "-replicas -router"},
		{name: "router-and-replicas", replicas: 4, router: "consistent-hash"},
		{name: "router-no-replicas", router: "round-robin", wantErr: "requires -replicas"},
		{name: "unknown-router", replicas: 2, router: "random", wantErr: "router"},
		{name: "negative-replicas", replicas: -2, wantErr: "≥ 0"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			set := map[string]bool{}
			for _, name := range tc.set {
				set[name] = true
			}
			err := checkFlags(set, tc.spec, tc.replicas, tc.router)
			if tc.wantErr == "" {
				if err != nil {
					t.Fatalf("checkFlags = %v, want nil", err)
				}
				return
			}
			if err == nil {
				t.Fatalf("checkFlags = nil, want error containing %q", tc.wantErr)
			}
			if !strings.Contains(err.Error(), tc.wantErr) {
				t.Fatalf("error %q does not contain %q", err, tc.wantErr)
			}
		})
	}
}
