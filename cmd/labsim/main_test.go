package main

import (
	"strings"
	"testing"
	"time"
)

// TestCheckFlags is the fail-fast table: -spec against spec-owned shape
// flags, and the router/replicas pairing, rejected before any
// simulation starts.
func TestCheckFlags(t *testing.T) {
	cases := []struct {
		name     string
		set      []string
		spec     string
		replicas int
		router   string
		shards   int
		service  string
		wantErr  string // substring; empty = no error
	}{
		{name: "defaults"},
		{name: "spec-alone", spec: "x.yaml"},
		{name: "spec-smoke-knobs", spec: "x.yaml", set: []string{"rate", "runs", "samples", "seed", "parallel", "samplemode", "point"}},
		{name: "spec-and-preset", spec: "x.yaml", set: []string{"preset"}, wantErr: "-preset"},
		{name: "spec-and-service", spec: "x.yaml", set: []string{"service"}, wantErr: "-service"},
		{name: "spec-and-client", spec: "x.yaml", set: []string{"client"}, wantErr: "-client"},
		{name: "spec-and-server", spec: "x.yaml", set: []string{"server-smt", "server-c1e"}, wantErr: "-server-smt -server-c1e"},
		{name: "spec-and-delay", spec: "x.yaml", set: []string{"delay"}, wantErr: "-delay"},
		{name: "spec-and-cluster", spec: "x.yaml", set: []string{"replicas", "router"}, wantErr: "-replicas -router"},
		{name: "router-and-replicas", replicas: 4, router: "consistent-hash"},
		{name: "router-no-replicas", router: "round-robin", wantErr: "requires -replicas"},
		{name: "unknown-router", replicas: 2, router: "random", wantErr: "router"},
		{name: "negative-replicas", replicas: -2, wantErr: "≥ 0"},
		{name: "spec-and-shards", spec: "x.yaml", set: []string{"shards"}, wantErr: "-shards"},
		{name: "shards-unset-default"},
		{name: "shards-valid", set: []string{"shards"}, shards: 4, service: "memcached"},
		{name: "shards-zero-explicit", set: []string{"shards"}, wantErr: "-shards must be ≥ 1"},
		{name: "shards-negative", set: []string{"shards"}, shards: -2, wantErr: "-shards must be ≥ 1"},
		{name: "shards-over-partitions", set: []string{"shards"}, shards: 6, service: "memcached", wantErr: "partitions"},
		{name: "shards-over-partitions-small-client", set: []string{"shards"}, shards: 3, service: "hdsearch", wantErr: "partitions"},
		{name: "shards-with-replicas", set: []string{"shards"}, shards: 6, replicas: 3, router: "consistent-hash", service: "memcached"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			set := map[string]bool{}
			for _, name := range tc.set {
				set[name] = true
			}
			err := checkFlags(set, tc.spec, tc.replicas, tc.router, tc.shards, tc.service)
			if tc.wantErr == "" {
				if err != nil {
					t.Fatalf("checkFlags = %v, want nil", err)
				}
				return
			}
			if err == nil {
				t.Fatalf("checkFlags = nil, want error containing %q", tc.wantErr)
			}
			if !strings.Contains(err.Error(), tc.wantErr) {
				t.Fatalf("error %q does not contain %q", err, tc.wantErr)
			}
		})
	}
}

// TestCheckResilienceFlags is the fail-fast table for the client
// resilience knobs, mirroring cmd/repro: negatives, dependent flags and
// the hedge/timeout ordering are rejected before any simulation starts.
func TestCheckResilienceFlags(t *testing.T) {
	cases := []struct {
		name      string
		timeout   time.Duration
		retries   int
		hedge     time.Duration
		resilient bool
		wantErr   string // substring; empty = no error
	}{
		{name: "defaults"},
		{name: "timeout-alone", timeout: time.Millisecond},
		{name: "full-stack", timeout: 2 * time.Millisecond, retries: 3, hedge: time.Millisecond},
		{name: "negative-timeout", timeout: -time.Millisecond, wantErr: "-timeout"},
		{name: "negative-retries", retries: -1, wantErr: "-retries"},
		{name: "negative-hedge", hedge: -time.Millisecond, wantErr: "-hedge"},
		{name: "retries-no-timeout", retries: 2, wantErr: "require -timeout"},
		{name: "hedge-no-timeout", hedge: time.Millisecond, wantErr: "require -timeout"},
		{name: "retries-resilient-base", retries: 2, resilient: true},
		{name: "hedge-resilient-base", hedge: time.Millisecond, resilient: true},
		{name: "hedge-at-timeout", timeout: time.Millisecond, hedge: time.Millisecond, wantErr: "below the timeout"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			err := checkResilienceFlags(tc.timeout, tc.retries, tc.hedge, tc.resilient)
			if tc.wantErr == "" {
				if err != nil {
					t.Fatalf("checkResilienceFlags = %v, want nil", err)
				}
				return
			}
			if err == nil || !strings.Contains(err.Error(), tc.wantErr) {
				t.Fatalf("checkResilienceFlags = %v, want error containing %q", err, tc.wantErr)
			}
		})
	}
}

// TestShardWarning is the ergonomics table: -shards on a single-backend
// topology must warn toward -parallel (the hour-long preset's shape,
// which runs near the sharding break-even); replicated shapes and
// unsharded runs stay silent.
func TestShardWarning(t *testing.T) {
	cases := []struct {
		name     string
		shards   int
		replicas int
		want     bool
	}{
		{name: "unsharded-default"},
		{name: "single-shard", shards: 1},
		{name: "sharded-single-backend", shards: 2, want: true},
		{name: "sharded-one-replica", shards: 4, replicas: 1, want: true},
		{name: "sharded-replicated", shards: 4, replicas: 4},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			w := shardWarning(tc.shards, tc.replicas)
			if got := w != ""; got != tc.want {
				t.Fatalf("shardWarning emitted %q, want warning=%v", w, tc.want)
			}
			if tc.want && !strings.Contains(w, "-parallel") {
				t.Fatalf("warning %q does not suggest -parallel", w)
			}
		})
	}
}
