// Command labsim runs a single experiment scenario with every knob exposed,
// printing per-run measurements and the §III statistics — the tool to use
// when exploring a configuration outside the paper's fixed sweeps.
//
// Example: evaluate Memcached at 300K QPS through an LP client whose
// deepest C-state is C1E, against an SMT-enabled server:
//
//	labsim -service memcached -rate 300000 -client LP -client-max-cstate C1E \
//	       -server-smt -runs 20
//
// Repetitions execute -parallel wide (default: all CPUs) under an
// envpool environment — a global worker budget plus a backend pool —
// with results byte-identical for any value, including 1.
//
// -replicas and -router run the backend as a replica set behind a
// routing policy (round-robin, least-outstanding, consistent-hash);
// per-replica routed counts and the load-balance skew print after the
// run statistics. The defaults keep the single-backend path unchanged.
//
// -shards partitions every run's simulation across N conservatively-
// synchronized engines; results are byte-identical to -shards 1, only
// wall-clock changes. Clustered shapes need the consistent-hash router
// (routing is decided at send time on the sharded path).
//
// -timeout arms the client resilience stack: requests that outlive the
// timeout are abandoned and, with -retries, resent with exponential
// backoff and decorrelated jitter; -hedge sends a backup copy to a
// different replica when the first attempt is slow. Per-run availability,
// retry amplification and the per-replica fault timeline print after the
// cluster stats whenever the scenario injects faults or enables
// resilience.
//
// -preset loads a large-scale scenario (million-qps, cluster, sharded,
// faulty-cluster, hour-long)
// as the flag defaults: service, client, server, rate, run count,
// sample target and replica shape come from the preset (million-qps
// uses its peak rate), and any flag set explicitly on the command line
// still wins — so
//
//	labsim -preset million-qps -runs 1 -samples 2000
//
// is the smoke-sized version CI runs, and
//
//	labsim -preset hour-long
//
// is a full one-virtual-hour-per-run measurement (streaming reduction
// keeps its memory flat regardless of the 360M samples per run).
//
// -spec runs a declarative workload spec (package internal/spec) at its
// peak rate: class mixes, bursty arrivals and phase programs come from
// the file. The spec owns the scenario shape, so -preset and the
// shape flags (-service, -client*, -server-*, -delay, -replicas,
// -router, -shards) conflict with it; the smoke knobs (-rate, -runs, -samples,
// -seed, -parallel, -samplemode, -point) still apply:
//
//	labsim -spec examples/onoff-sessions.yaml -runs 2 -samples 2000
//
// All flag combinations — including an unknown router or -router
// without -replicas — are validated before any simulation starts.
package main

import (
	"context"
	"flag"
	"fmt"
	"os"
	"runtime"
	"strings"
	"time"

	"repro/internal/cluster"
	"repro/internal/core"
	"repro/internal/envpool"
	"repro/internal/experiment"
	"repro/internal/faults"
	"repro/internal/figures"
	"repro/internal/hw"
	"repro/internal/loadgen"
	"repro/internal/metrics"
	"repro/internal/spec"
	"repro/internal/stats"
)

func main() {
	var (
		preset     = flag.String("preset", "", "load a scale preset's defaults: million-qps|cluster|sharded|faulty-cluster|hour-long (explicit flags still win)")
		specPath   = flag.String("spec", "", "run a workload spec file (YAML or JSON); conflicts with -preset and the scenario-shape flags")
		service    = flag.String("service", "memcached", "memcached|hdsearch|socialnet|synthetic")
		rate       = flag.Float64("rate", 100_000, "offered load in QPS")
		clientName = flag.String("client", "LP", "client preset: LP or HP")
		maxCState  = flag.String("client-max-cstate", "", "override client deepest C-state (C0,C1,C1E,C6)")
		governor   = flag.String("client-governor", "", "override client governor (powersave|performance)")
		turbo      = flag.Bool("client-turbo", true, "client turbo mode")
		serverSMT  = flag.Bool("server-smt", false, "enable SMT on the server")
		serverC1E  = flag.Bool("server-c1e", false, "enable C1E on the server")
		delay      = flag.Duration("delay", 0, "synthetic service added busy-wait")
		point      = flag.String("point", "in-app", "measurement point: in-app|kernel-socket|nic")
		runs       = flag.Int("runs", 10, "repetitions")
		samples    = flag.Int("samples", 0, "post-warmup samples per run (0 = default)")
		seed       = flag.Uint64("seed", 1, "experiment seed")
		parallel   = flag.Int("parallel", runtime.GOMAXPROCS(0), "concurrent repetitions (results are identical for any value)")
		sampleMode = flag.String("samplemode", "auto", "per-run sample reduction: auto|exact|streaming")
		replicas   = flag.Int("replicas", 0, "run the backend as N replicas behind -router (0 = single backend)")
		router     = flag.String("router", "", "replica routing policy: round-robin|least-outstanding|consistent-hash")
		shards     = flag.Int("shards", 0, "partition each run across N simulation engines (0 = single engine; results identical for any value)")
		timeout    = flag.Duration("timeout", 0, "per-request client timeout enabling the resilience stack (0 = preset default)")
		retries    = flag.Int("retries", 0, "bounded retry budget per request; requires -timeout or a resilient preset (0 = preset default)")
		hedge      = flag.Duration("hedge", 0, "hedged-request delay, must be below the timeout; requires -timeout or a resilient preset (0 = preset default)")
	)
	flag.Parse()

	fail := func(err error) {
		fmt.Fprintln(os.Stderr, "labsim:", err)
		os.Exit(1)
	}

	set := map[string]bool{}
	flag.Visit(func(f *flag.Flag) { set[f.Name] = true })

	var presetServer *hw.Config
	var presetFaults *faults.Plan
	var presetResilience *loadgen.ResilienceConfig
	var presetHiccupRate float64
	var presetHiccupMean time.Duration
	if *preset != "" {
		p, ok := figures.PresetByName(*preset)
		if !ok {
			fmt.Fprintf(os.Stderr, "labsim: unknown preset %q; available:\n%s\n", *preset, figures.PresetUsage())
			os.Exit(1)
		}
		// Preset values are defaults: a flag the user set explicitly wins.
		if !set["service"] {
			*service = string(p.Service)
		}
		if !set["client"] {
			*clientName = p.ClientName
		}
		if !set["rate"] {
			*rate = p.Rates[len(p.Rates)-1] // the preset's peak rate
		}
		if !set["runs"] {
			*runs = p.Runs
		}
		if !set["samples"] {
			*samples = p.TargetSamples
		}
		if !set["server-smt"] && !set["server-c1e"] {
			presetServer = &p.Server
		}
		if !set["replicas"] {
			*replicas = p.Replicas
		}
		if !set["router"] {
			*router = p.Router
		}
		if !set["shards"] {
			*shards = p.Shards
		}
		presetFaults = p.Faults
		presetResilience = p.Resilience
		presetHiccupRate, presetHiccupMean = p.HiccupRate, p.HiccupMean
	}

	if err := checkFlags(set, *specPath, *replicas, *router, *shards, *service); err != nil {
		fail(err)
	}
	if w := shardWarning(*shards, *replicas); w != "" {
		fmt.Fprintln(os.Stderr, "labsim:", w)
	}

	mode, err := metrics.ParseMode(*sampleMode)
	if err != nil {
		fail(err)
	}

	var mp core.MeasurementPoint
	switch *point {
	case "in-app":
		mp = core.InApp
	case "kernel-socket":
		mp = core.KernelSocket
	case "nic":
		mp = core.NICHardware
	default:
		fail(fmt.Errorf("unknown measurement point %q", *point))
	}

	var sc experiment.Scenario
	if *specPath != "" {
		s, err := spec.Load(*specPath)
		if err != nil {
			fail(err)
		}
		rates := s.SweepRates()
		specRate := rates[len(rates)-1] // the spec's peak rate, like -preset
		if set["rate"] {
			specRate = *rate
		}
		sc = s.Scenario(specRate)
		if set["runs"] {
			sc.Runs = *runs
		}
		if set["samples"] {
			// The smoke knob wins outright, as with presets: an explicit
			// sample target also shrinks duration-sized specs.
			sc.TargetSamples = *samples
			sc.Duration = 0
		}
	} else {
		client, err := clientConfig(*clientName, *maxCState, *governor, *turbo)
		if err != nil {
			fail(err)
		}
		server := hw.ServerBaselineConfig()
		if presetServer != nil {
			server = *presetServer
		}
		if *serverSMT {
			server = server.WithSMT(true)
		}
		if *serverC1E {
			server = server.WithMaxCState("C1E")
		}
		sc = experiment.Scenario{
			Service:       experiment.Service(*service),
			Label:         *clientName,
			Client:        client,
			Server:        server,
			RateQPS:       *rate,
			Runs:          *runs,
			TargetSamples: *samples,
			SynthDelay:    *delay,
			Replicas:      *replicas,
			Router:        *router,
			Shards:        *shards,
			Faults:        presetFaults,
			Resilience:    presetResilience,
			HiccupRate:    presetHiccupRate,
			HiccupMean:    presetHiccupMean,
		}
	}
	if err := checkResilienceFlags(*timeout, *retries, *hedge,
		sc.Resilience != nil && sc.Resilience.Enabled()); err != nil {
		fail(err)
	}
	if *timeout > 0 || *retries > 0 || *hedge > 0 {
		res := loadgen.ResilienceConfig{}
		if sc.Resilience != nil {
			res = *sc.Resilience
		}
		if *timeout > 0 {
			res.Timeout = *timeout
		}
		if *retries > 0 {
			res.Retries = *retries
		}
		if *hedge > 0 {
			res.Hedge = *hedge
		}
		sc.Resilience = &res
	}
	sc.Point = mp
	sc.Seed = *seed
	sc.Workers = *parallel
	sc.SampleMode = mode

	ctx := envpool.NewContext(context.Background(), *parallel)
	res, err := experiment.RunContext(ctx, sc)
	if err != nil {
		fail(err)
	}

	fmt.Printf("service=%s rate=%.0f client=%s server=%s runs=%d\n\n",
		sc.Service, sc.RateQPS, sc.Client.Name, sc.Server.Name, sc.Runs)
	fmt.Printf("%-5s %12s %12s %10s %10s %10s\n", "run", "avg(µs)", "p99(µs)", "samples", "sendlag", "clientC6")
	for i, r := range res.Runs {
		fmt.Printf("%-5d %12.2f %12.2f %10d %10.2f %10d\n", i, r.AvgUs, r.P99Us, r.Samples, r.SendLagUs, r.ClientC6)
	}
	fmt.Println()
	fmt.Printf("avg : median %s  stddev %.2fµs\n", res.AvgCI, res.StdDevAvgUs)
	fmt.Printf("p99 : median %s\n", res.P99CI)

	if sw, err := stats.ShapiroWilk(res.PerRunAvgUs); err == nil {
		fmt.Printf("Shapiro–Wilk: W=%.4f p=%.4g (normal at 5%%: %v)\n", sw.W, sw.PValue, sw.Normal(0.05))
	}
	if n, err := stats.JainIterations(res.PerRunAvgUs, 0.95, 1); err == nil {
		fmt.Printf("Jain iterations for 1%% error @95%%: %d\n", n)
	}
	if acf, err := stats.Autocorrelation(res.PerRunAvgUs, 1); err == nil {
		fmt.Printf("lag-1 autocorrelation of runs: %.3f\n", acf)
	}

	if len(res.Runs) > 0 && res.Runs[0].Cluster != nil {
		fmt.Printf("\ncluster (%s router):\n", res.Runs[0].Cluster.Router)
		for i, r := range res.Runs {
			st := r.Cluster
			fmt.Printf("run %-3d active=%d/%d skew=%.3f scale-events=%d routed=[",
				i, st.Active, st.Capacity, st.Skew(), len(st.ScaleEvents))
			for ri, rep := range st.Replicas {
				if ri > 0 {
					fmt.Print(" ")
				}
				fmt.Printf("%d", rep.Routed)
			}
			fmt.Println("]")
		}
	}

	if len(res.Runs) > 0 && res.Runs[0].Resilience != nil {
		fmt.Println("\nresilience:")
		for i, r := range res.Runs {
			m := r.Resilience
			fmt.Printf("run %-3d avail=%7.3f%% amp=%.3f timeouts=%d retries=%d hedges=%d hedge-wins=%d failed=%d exhausted=%d late=%d goodput=%.0f\n",
				i, m.Availability*100, m.RetryAmplification, m.Stats.Timeouts, m.Stats.Retries,
				m.Stats.Hedges, m.Stats.HedgeWins, m.Stats.Failed, m.Stats.Exhausted,
				m.Stats.LateDrops, m.GoodputQPS)
		}
	}

	if len(res.Runs) > 0 && res.Runs[0].Cluster != nil && (!sc.Faults.Empty() || sc.HiccupRate > 0) {
		fmt.Println("\nfault timeline (summed over runs):")
		reps := len(res.Runs[0].Cluster.Replicas)
		for ri := 0; ri < reps; ri++ {
			var crashes int
			var down, straggle, hictime time.Duration
			var failed, hiccups uint64
			for _, r := range res.Runs {
				if ri >= len(r.Cluster.Replicas) {
					continue
				}
				rep := r.Cluster.Replicas[ri]
				crashes += rep.CrashWindows
				down += rep.DownTime
				failed += rep.CrashFailed
				straggle += rep.StragglerTime
				hiccups += rep.HiccupCount
				hictime += rep.HiccupTime
			}
			fmt.Printf("replica %-3d crashes=%d downtime=%v failed=%d straggle=%v hiccups=%d hiccup-time=%v\n",
				ri, crashes, down, failed, straggle, hiccups, hictime)
		}
	}
}

// checkResilienceFlags validates the client-resilience knobs before any
// simulation starts. resilient reports whether the scenario (preset or
// spec) already carries a resilience timeout, which makes bare -retries
// or -hedge meaningful overrides.
func checkResilienceFlags(timeout time.Duration, retries int, hedge time.Duration, resilient bool) error {
	if timeout < 0 {
		return fmt.Errorf("-timeout must be ≥ 0, got %v", timeout)
	}
	if retries < 0 {
		return fmt.Errorf("-retries must be ≥ 0, got %d", retries)
	}
	if hedge < 0 {
		return fmt.Errorf("-hedge must be ≥ 0, got %v", hedge)
	}
	if (retries > 0 || hedge > 0) && timeout == 0 && !resilient {
		return fmt.Errorf("-retries/-hedge require -timeout (or a preset/spec with a resilience timeout)")
	}
	if hedge > 0 && timeout > 0 && hedge >= timeout {
		return fmt.Errorf("-hedge %v must be below the timeout %v", hedge, timeout)
	}
	return nil
}

// specOwnedFlags are the scenario-shape flags a workload spec defines
// itself; setting one alongside -spec is a conflict, not an override.
var specOwnedFlags = []string{
	"preset", "service", "client", "client-max-cstate", "client-governor",
	"client-turbo", "server-smt", "server-c1e", "delay", "replicas", "router",
	"shards",
}

// checkFlags validates flag combinations before any simulation starts:
// -spec against the spec-owned shape flags, and the router/replicas
// pairing (after preset defaults resolved, so -preset cluster alone is
// fine).
func checkFlags(set map[string]bool, specPath string, replicas int, router string, shards int, service string) error {
	if specPath != "" {
		var conflicts []string
		for _, name := range specOwnedFlags {
			if set[name] {
				conflicts = append(conflicts, "-"+name)
			}
		}
		if len(conflicts) > 0 {
			return fmt.Errorf("%s conflict with -spec (the spec owns the scenario shape; -rate -runs -samples -seed -parallel -samplemode -point still apply)",
				strings.Join(conflicts, " "))
		}
		return nil
	}
	if replicas < 0 {
		return fmt.Errorf("-replicas must be ≥ 0, got %d", replicas)
	}
	if router != "" {
		if _, err := cluster.NewRouter(router); err != nil {
			return err
		}
		if replicas <= 0 {
			return fmt.Errorf("-router %s requires -replicas", router)
		}
	}
	if set["shards"] && shards < 1 {
		return fmt.Errorf("-shards must be ≥ 1, got %d", shards)
	}
	if shards > 1 {
		// Mirror experiment.Scenario's per-service deployment: one client
		// machine for hdsearch/socialnet, four for the mutilate-style
		// services, plus one partition per replica.
		machines := 4
		if service == "hdsearch" || service == "socialnet" {
			machines = 1
		}
		partitions := machines + 1
		if replicas > 1 {
			partitions = machines + replicas
		}
		if shards > partitions {
			return fmt.Errorf("-shards %d exceeds the %d machine+replica partitions", shards, partitions)
		}
	}
	return nil
}

// shardWarning returns a one-line ergonomics warning when -shards > 1
// runs a single-backend topology (replicas ≤ 1, after preset defaults
// resolved): the partition layout pins all server work to the shard
// that owns the backend, so conservative sync runs near its break-even
// instead of speeding up. Warning only — results stay byte-identical.
func shardWarning(shards, replicas int) string {
	if shards <= 1 || replicas > 1 {
		return ""
	}
	return fmt.Sprintf("warning: -shards %d on a single-backend topology keeps all server work on one shard (near the sharding break-even); use -parallel to parallelize across runs, or -replicas to spread server work", shards)
}

func clientConfig(preset, maxCState, governor string, turbo bool) (hw.Config, error) {
	var cfg hw.Config
	switch preset {
	case "LP":
		cfg = hw.LPConfig()
	case "HP":
		cfg = hw.HPConfig()
	default:
		return cfg, fmt.Errorf("unknown client preset %q (want LP or HP)", preset)
	}
	if maxCState != "" {
		cfg.MaxCState = maxCState
	}
	switch governor {
	case "":
	case "powersave":
		cfg.Governor = hw.GovernorPowersave
	case "performance":
		cfg.Governor = hw.GovernorPerformance
	default:
		return cfg, fmt.Errorf("unknown governor %q", governor)
	}
	cfg.Turbo = turbo
	if err := cfg.Validate(); err != nil {
		return cfg, err
	}
	return cfg, nil
}
