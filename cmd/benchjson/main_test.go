package main

// The parser this command wraps is tested in internal/benchfmt; this
// file intentionally holds no duplicate coverage.
