package main

import (
	"bufio"
	"strings"
	"testing"
)

const sample = `goos: linux
goarch: amd64
pkg: repro
BenchmarkScenarioRun-8   	       5	 226519042 ns/op	 8712345 B/op	   12345 allocs/op
BenchmarkSweepParallel-8 	       1	1226519042 ns/op
pkg: repro/internal/loadgen
BenchmarkRunMemoryPerSample/streaming-8         	       3	  51234567 ns/op	         2.50 retainedB/sample	  123456 B/op	     789 allocs/op
PASS
ok  	repro	12.3s
`

func TestParse(t *testing.T) {
	recs, err := parse(bufio.NewScanner(strings.NewReader(sample)))
	if err != nil {
		t.Fatal(err)
	}
	if len(recs) != 3 {
		t.Fatalf("parsed %d records, want 3", len(recs))
	}
	r := recs[0]
	if r.Name != "BenchmarkScenarioRun-8" || r.Package != "repro" || r.Iterations != 5 {
		t.Errorf("record 0 = %+v", r)
	}
	if r.NsPerOp != 226519042 || r.Metrics["B/op"] != 8712345 || r.Metrics["allocs/op"] != 12345 {
		t.Errorf("record 0 values = %+v", r)
	}
	if recs[1].Metrics != nil {
		t.Errorf("record 1 should have no extra metrics: %+v", recs[1])
	}
	r = recs[2]
	if r.Package != "repro/internal/loadgen" {
		t.Errorf("package context not tracked: %+v", r)
	}
	if r.Metrics["retainedB/sample"] != 2.5 {
		t.Errorf("custom metric lost: %+v", r.Metrics)
	}
}

func TestParseIgnoresGarbage(t *testing.T) {
	recs, err := parse(bufio.NewScanner(strings.NewReader("BenchmarkBroken: log line\nnot a benchmark\n")))
	if err != nil {
		t.Fatal(err)
	}
	if len(recs) != 0 {
		t.Errorf("parsed %d records from garbage", len(recs))
	}
}
