// Command benchjson converts `go test -bench` text output on stdin into
// a JSON benchmark report on stdout, so CI can archive the performance
// trajectory as a machine-readable artifact (see `make bench-json`).
//
// Usage:
//
//	go test -run '^$' -bench . -benchmem ./... | benchjson > BENCH.json
//
// Each benchmark line becomes one record with its iteration count,
// ns/op, and any further reported metrics (B/op, allocs/op, custom
// b.ReportMetric units) keyed by unit name. Non-benchmark lines are
// ignored, so the raw `go test` stream can be piped in unfiltered.
package main

import (
	"bufio"
	"encoding/json"
	"fmt"
	"os"
	"strconv"
	"strings"
)

// Record is one benchmark result.
type Record struct {
	// Name is the full benchmark name including sub-benchmark path and
	// the -N GOMAXPROCS suffix, e.g. "BenchmarkRunMemoryPerSample/streaming-8".
	Name string `json:"name"`
	// Package is the Go package the benchmark ran in, when the stream
	// included `pkg:`-style context (best effort, may be empty).
	Package string `json:"package,omitempty"`
	// Iterations is the b.N the reported averages were taken over.
	Iterations int64 `json:"iterations"`
	// NsPerOp is the reported time per operation.
	NsPerOp float64 `json:"ns_per_op"`
	// Metrics holds every additional reported value keyed by its unit,
	// e.g. "B/op", "allocs/op", "retainedB/sample".
	Metrics map[string]float64 `json:"metrics,omitempty"`
}

func main() {
	records, err := parse(bufio.NewScanner(os.Stdin))
	if err != nil {
		fmt.Fprintln(os.Stderr, "benchjson:", err)
		os.Exit(1)
	}
	enc := json.NewEncoder(os.Stdout)
	enc.SetIndent("", "  ")
	if err := enc.Encode(records); err != nil {
		fmt.Fprintln(os.Stderr, "benchjson:", err)
		os.Exit(1)
	}
}

// parse extracts benchmark records from a `go test -bench` stream.
func parse(sc *bufio.Scanner) ([]Record, error) {
	sc.Buffer(make([]byte, 0, 64*1024), 1024*1024)
	records := []Record{}
	pkg := ""
	for sc.Scan() {
		line := strings.TrimSpace(sc.Text())
		if rest, ok := strings.CutPrefix(line, "pkg: "); ok {
			pkg = rest
			continue
		}
		if !strings.HasPrefix(line, "Benchmark") {
			continue
		}
		fields := strings.Fields(line)
		// Name N ns/op [value unit]...
		if len(fields) < 3 {
			continue
		}
		n, err := strconv.ParseInt(fields[1], 10, 64)
		if err != nil {
			continue // e.g. a "Benchmark...: some log line"
		}
		rec := Record{Name: fields[0], Package: pkg, Iterations: n}
		for i := 2; i+1 < len(fields); i += 2 {
			v, err := strconv.ParseFloat(fields[i], 64)
			if err != nil {
				break
			}
			unit := fields[i+1]
			if unit == "ns/op" {
				rec.NsPerOp = v
				continue
			}
			if rec.Metrics == nil {
				rec.Metrics = make(map[string]float64)
			}
			rec.Metrics[unit] = v
		}
		records = append(records, rec)
	}
	return records, sc.Err()
}
