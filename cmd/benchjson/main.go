// Command benchjson converts `go test -bench` text output on stdin into
// a JSON benchmark report on stdout, so CI can archive the performance
// trajectory as a machine-readable artifact (see `make bench-json`).
//
// Usage:
//
//	go test -run '^$' -bench . -benchmem ./... | benchjson > BENCH.json
//
// Each benchmark line becomes one record with its iteration count,
// ns/op, and any further reported metrics (B/op, allocs/op, custom
// b.ReportMetric units) keyed by unit name. Non-benchmark lines are
// ignored, so the raw `go test` stream can be piped in unfiltered. The
// record model and parser live in internal/benchfmt, shared with
// cmd/benchdiff which compares two of these reports.
package main

import (
	"encoding/json"
	"fmt"
	"os"

	"repro/internal/benchfmt"
)

func main() {
	records, err := benchfmt.Parse(os.Stdin)
	if err != nil {
		fmt.Fprintln(os.Stderr, "benchjson:", err)
		os.Exit(1)
	}
	enc := json.NewEncoder(os.Stdout)
	enc.SetIndent("", "  ")
	if err := enc.Encode(records); err != nil {
		fmt.Fprintln(os.Stderr, "benchjson:", err)
		os.Exit(1)
	}
}
