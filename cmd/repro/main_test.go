package main

import (
	"path/filepath"
	"testing"

	"repro/internal/figures"
	"repro/internal/spec"
)

func TestRunStaticTables(t *testing.T) {
	opts := figures.SweepOptions{Runs: 2, Seed: 1, TargetSamples: 200}
	for _, exp := range []string{"table1", "table2", "table3", "recommendations"} {
		if err := run(exp, opts); err != nil {
			t.Errorf("run(%q): %v", exp, err)
		}
	}
}

func TestRunScalePresets(t *testing.T) {
	// Smoke scale: the CLI path CI exercises for the million-qps and
	// hour-long presets (full size is minutes of host time).
	opts := figures.SweepOptions{Runs: 1, Seed: 1, TargetSamples: 300}
	for _, exp := range []string{"million-qps", "hour-long"} {
		if err := run(exp, opts); err != nil {
			t.Errorf("run(%q): %v", exp, err)
		}
	}
}

func TestRunUnknownExperiment(t *testing.T) {
	if err := run("fig99", figures.SweepOptions{Runs: 1}); err == nil {
		t.Error("unknown experiment accepted")
	}
}

// TestCheckFlags is the fail-fast table: bad flag combinations must be
// rejected at startup, before any sweep runs.
func TestCheckFlags(t *testing.T) {
	cases := []struct {
		name      string
		expSet    bool
		spec      string
		replicas  int
		router    string
		clustered bool
		wantErr   bool
	}{
		{name: "defaults"},
		{name: "spec-alone", spec: "x.yaml"},
		{name: "spec-and-experiment", spec: "x.yaml", expSet: true, wantErr: true},
		{name: "experiment-alone", expSet: true},
		{name: "replicas-no-router", replicas: 4},
		{name: "router-and-replicas", replicas: 4, router: "round-robin"},
		{name: "router-no-replicas", router: "round-robin", wantErr: true},
		{name: "router-clustered-preset", router: "least-outstanding", clustered: true},
		{name: "unknown-router", replicas: 4, router: "random", wantErr: true},
		{name: "unknown-router-clustered", router: "random", clustered: true, wantErr: true},
		{name: "negative-replicas", replicas: -1, wantErr: true},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			err := checkFlags(tc.expSet, tc.spec, tc.replicas, tc.router, tc.clustered)
			if (err != nil) != tc.wantErr {
				t.Errorf("checkFlags = %v, wantErr %v", err, tc.wantErr)
			}
		})
	}
}

// TestBaseClustered pins which invocations make a bare -router legal.
func TestBaseClustered(t *testing.T) {
	if baseClustered("million-qps", nil) {
		t.Error("million-qps reported clustered")
	}
	if !baseClustered("cluster", nil) {
		t.Error("cluster preset not reported clustered")
	}
	p := figures.Preset{Replicas: 4}
	if !baseClustered("all", &p) {
		t.Error("replicated spec not reported clustered")
	}
	single := figures.Preset{}
	if baseClustered("cluster", &single) {
		t.Error("single-backend spec reported clustered (spec must win over -experiment name)")
	}
}

// TestRunSpecPreset smokes the -spec path end to end: a spec-compiled
// preset runs through the same runPreset code the CLI uses.
func TestRunSpecPreset(t *testing.T) {
	s, err := spec.Load(filepath.Join("..", "..", "examples", "phases-spike.yaml"))
	if err != nil {
		t.Fatal(err)
	}
	p := figures.PresetFromSpec(s)
	if err := runPreset(p, figures.SweepOptions{Runs: 1, Seed: 1, TargetSamples: 300}); err != nil {
		t.Errorf("runPreset(spec): %v", err)
	}
}

func TestRunSingleFigure(t *testing.T) {
	if testing.Short() {
		t.Skip("runs a reduced sweep")
	}
	opts := figures.SweepOptions{Runs: 2, Seed: 2, TargetSamples: 300}
	if err := run("fig6", opts); err != nil {
		t.Errorf("run(fig6): %v", err)
	}
}
