package main

import (
	"testing"

	"repro/internal/figures"
)

func TestRunStaticTables(t *testing.T) {
	opts := figures.SweepOptions{Runs: 2, Seed: 1, TargetSamples: 200}
	for _, exp := range []string{"table1", "table2", "table3", "recommendations"} {
		if err := run(exp, opts); err != nil {
			t.Errorf("run(%q): %v", exp, err)
		}
	}
}

func TestRunScalePresets(t *testing.T) {
	// Smoke scale: the CLI path CI exercises for the million-qps and
	// hour-long presets (full size is minutes of host time).
	opts := figures.SweepOptions{Runs: 1, Seed: 1, TargetSamples: 300}
	for _, exp := range []string{"million-qps", "hour-long"} {
		if err := run(exp, opts); err != nil {
			t.Errorf("run(%q): %v", exp, err)
		}
	}
}

func TestRunUnknownExperiment(t *testing.T) {
	if err := run("fig99", figures.SweepOptions{Runs: 1}); err == nil {
		t.Error("unknown experiment accepted")
	}
}

func TestRunSingleFigure(t *testing.T) {
	if testing.Short() {
		t.Skip("runs a reduced sweep")
	}
	opts := figures.SweepOptions{Runs: 2, Seed: 2, TargetSamples: 300}
	if err := run("fig6", opts); err != nil {
		t.Errorf("run(fig6): %v", err)
	}
}
