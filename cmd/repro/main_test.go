package main

import (
	"path/filepath"
	"strings"
	"testing"
	"time"

	"repro/internal/experiment"
	"repro/internal/figures"
	"repro/internal/loadgen"
	"repro/internal/spec"
)

func TestRunStaticTables(t *testing.T) {
	opts := figures.SweepOptions{Runs: 2, Seed: 1, TargetSamples: 200}
	for _, exp := range []string{"table1", "table2", "table3", "recommendations"} {
		if err := run(exp, opts); err != nil {
			t.Errorf("run(%q): %v", exp, err)
		}
	}
}

func TestRunScalePresets(t *testing.T) {
	// Smoke scale: the CLI path CI exercises for the million-qps and
	// hour-long presets (full size is minutes of host time).
	opts := figures.SweepOptions{Runs: 1, Seed: 1, TargetSamples: 300}
	for _, exp := range []string{"million-qps", "hour-long", "faulty-cluster"} {
		if err := run(exp, opts); err != nil {
			t.Errorf("run(%q): %v", exp, err)
		}
	}
}

func TestRunUnknownExperiment(t *testing.T) {
	if err := run("fig99", figures.SweepOptions{Runs: 1}); err == nil {
		t.Error("unknown experiment accepted")
	}
}

// TestCheckFlags is the fail-fast table: bad flag combinations must be
// rejected at startup, before any sweep runs.
func TestCheckFlags(t *testing.T) {
	cases := []struct {
		name       string
		expSet     bool
		spec       string
		replicas   int
		router     string
		clustered  bool
		shards     int
		shardsSet  bool
		partitions int
		wantErr    bool
	}{
		{name: "defaults"},
		{name: "spec-alone", spec: "x.yaml"},
		{name: "spec-and-experiment", spec: "x.yaml", expSet: true, wantErr: true},
		{name: "experiment-alone", expSet: true},
		{name: "replicas-no-router", replicas: 4},
		{name: "router-and-replicas", replicas: 4, router: "round-robin"},
		{name: "router-no-replicas", router: "round-robin", wantErr: true},
		{name: "router-clustered-preset", router: "least-outstanding", clustered: true},
		{name: "unknown-router", replicas: 4, router: "random", wantErr: true},
		{name: "unknown-router-clustered", router: "random", clustered: true, wantErr: true},
		{name: "negative-replicas", replicas: -1, wantErr: true},
		{name: "shards-valid", shards: 4, shardsSet: true, partitions: 8},
		{name: "shards-zero-explicit", shardsSet: true, wantErr: true},
		{name: "shards-negative", shards: -1, shardsSet: true, wantErr: true},
		{name: "shards-over-partitions", shards: 5, shardsSet: true, partitions: 4, wantErr: true},
		{name: "shards-unknown-partitions", shards: 16, shardsSet: true},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			err := checkFlags(tc.expSet, tc.spec, tc.replicas, tc.router, tc.clustered, tc.shards, tc.shardsSet, tc.partitions)
			if (err != nil) != tc.wantErr {
				t.Errorf("checkFlags = %v, wantErr %v", err, tc.wantErr)
			}
		})
	}
}

// TestCheckResilienceFlags is the fail-fast table for the client
// resilience knobs: negatives, dependent flags and the hedge/timeout
// ordering are rejected before any sweep runs.
func TestCheckResilienceFlags(t *testing.T) {
	cases := []struct {
		name      string
		timeout   time.Duration
		retries   int
		hedge     time.Duration
		resilient bool
		wantErr   string // substring; empty = no error
	}{
		{name: "defaults"},
		{name: "timeout-alone", timeout: time.Millisecond},
		{name: "full-stack", timeout: 2 * time.Millisecond, retries: 3, hedge: time.Millisecond},
		{name: "negative-timeout", timeout: -time.Millisecond, wantErr: "-timeout"},
		{name: "negative-retries", retries: -1, wantErr: "-retries"},
		{name: "negative-hedge", hedge: -time.Millisecond, wantErr: "-hedge"},
		{name: "retries-no-timeout", retries: 2, wantErr: "require -timeout"},
		{name: "hedge-no-timeout", hedge: time.Millisecond, wantErr: "require -timeout"},
		{name: "retries-resilient-base", retries: 2, resilient: true},
		{name: "hedge-resilient-base", hedge: time.Millisecond, resilient: true},
		{name: "hedge-at-timeout", timeout: time.Millisecond, hedge: time.Millisecond, wantErr: "below the timeout"},
		{name: "hedge-above-timeout", timeout: time.Millisecond, hedge: 2 * time.Millisecond, wantErr: "below the timeout"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			err := checkResilienceFlags(tc.timeout, tc.retries, tc.hedge, tc.resilient)
			if tc.wantErr == "" {
				if err != nil {
					t.Fatalf("checkResilienceFlags = %v, want nil", err)
				}
				return
			}
			if err == nil || !strings.Contains(err.Error(), tc.wantErr) {
				t.Fatalf("checkResilienceFlags = %v, want error containing %q", err, tc.wantErr)
			}
		})
	}
}

// TestBaseResilient pins which invocations make a bare -retries/-hedge
// legal: the preset or spec must already carry a resilience timeout.
func TestBaseResilient(t *testing.T) {
	if baseResilient("million-qps", nil) {
		t.Error("million-qps reported resilient")
	}
	if !baseResilient("faulty-cluster", nil) {
		t.Error("faulty-cluster preset not reported resilient")
	}
	p := figures.Preset{Resilience: &loadgen.ResilienceConfig{Timeout: time.Millisecond}}
	if !baseResilient("all", &p) {
		t.Error("resilient spec not reported resilient")
	}
	bare := figures.Preset{}
	if baseResilient("faulty-cluster", &bare) {
		t.Error("non-resilient spec reported resilient (spec must win over -experiment name)")
	}
}

// TestBasePartitions pins the fail-fast partition count: the shard
// ceiling a preset or spec invocation is checked against at startup.
func TestBasePartitions(t *testing.T) {
	if got := basePartitions("all", nil, 0); got != 0 {
		t.Errorf("figure grid partitions = %d, want 0 (unknown)", got)
	}
	if got := basePartitions("million-qps", nil, 0); got != 5 {
		t.Errorf("million-qps partitions = %d, want 5 (4 machines + 1 backend)", got)
	}
	if got := basePartitions("sharded", nil, 0); got != 8 {
		t.Errorf("sharded partitions = %d, want 8 (4 machines + 4 replicas)", got)
	}
	if got := basePartitions("million-qps", nil, 3); got != 7 {
		t.Errorf("million-qps -replicas 3 partitions = %d, want 7", got)
	}
	p := figures.Preset{Service: experiment.ServiceHDSearch, Replicas: 2}
	if got := basePartitions("all", &p, 0); got != 3 {
		t.Errorf("hdsearch spec partitions = %d, want 3 (1 machine + 2 replicas)", got)
	}
}

// TestBaseClustered pins which invocations make a bare -router legal.
func TestBaseClustered(t *testing.T) {
	if baseClustered("million-qps", nil) {
		t.Error("million-qps reported clustered")
	}
	if !baseClustered("cluster", nil) {
		t.Error("cluster preset not reported clustered")
	}
	p := figures.Preset{Replicas: 4}
	if !baseClustered("all", &p) {
		t.Error("replicated spec not reported clustered")
	}
	single := figures.Preset{}
	if baseClustered("cluster", &single) {
		t.Error("single-backend spec reported clustered (spec must win over -experiment name)")
	}
}

// TestRunSpecPreset smokes the -spec path end to end: a spec-compiled
// preset runs through the same runPreset code the CLI uses.
func TestRunSpecPreset(t *testing.T) {
	s, err := spec.Load(filepath.Join("..", "..", "examples", "phases-spike.yaml"))
	if err != nil {
		t.Fatal(err)
	}
	p := figures.PresetFromSpec(s)
	if err := runPreset(p, figures.SweepOptions{Runs: 1, Seed: 1, TargetSamples: 300}); err != nil {
		t.Errorf("runPreset(spec): %v", err)
	}
}

func TestRunSingleFigure(t *testing.T) {
	if testing.Short() {
		t.Skip("runs a reduced sweep")
	}
	opts := figures.SweepOptions{Runs: 2, Seed: 2, TargetSamples: 300}
	if err := run("fig6", opts); err != nil {
		t.Errorf("run(fig6): %v", err)
	}
}

// TestShardWarning is the ergonomics table: -shards on a single-backend
// topology (hour-long's shape) must warn toward -parallel; replicated
// shapes and unsharded runs stay silent.
func TestShardWarning(t *testing.T) {
	clusterPreset := figures.Preset{Replicas: 4}
	singlePreset := figures.Preset{}
	cases := []struct {
		name     string
		shards   int
		exp      string
		spec     *figures.Preset
		replicas int
		want     bool
	}{
		{name: "unsharded-default", exp: "all"},
		{name: "single-shard", shards: 1, exp: "hour-long"},
		{name: "hour-long-sharded", shards: 2, exp: "hour-long", want: true},
		{name: "million-qps-sharded", shards: 4, exp: "million-qps", want: true},
		{name: "figure-grid-sharded", shards: 2, exp: "all", want: true},
		{name: "cluster-preset-sharded", shards: 4, exp: "cluster"},
		{name: "replicas-flag-spreads-work", shards: 4, exp: "hour-long", replicas: 4},
		{name: "replicated-spec", shards: 4, exp: "all", spec: &clusterPreset},
		{name: "single-backend-spec", shards: 2, exp: "all", spec: &singlePreset, want: true},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			w := shardWarning(tc.shards, effectiveReplicas(tc.exp, tc.spec, tc.replicas))
			if got := w != ""; got != tc.want {
				t.Fatalf("shardWarning emitted %q, want warning=%v", w, tc.want)
			}
			if tc.want && !strings.Contains(w, "-parallel") {
				t.Fatalf("warning %q does not suggest -parallel", w)
			}
		})
	}
}
