// Command repro regenerates every table and figure of the paper's
// evaluation from the testbed simulation.
//
// Usage:
//
//	repro [-experiment all|table1|table2|table3|fig2|fig3|fig4|fig5|fig6|fig7|fig8|fig9|table4]
//	      [-runs N] [-samples N] [-seed N] [-parallel N] [-samplemode auto|exact|streaming] [-v]
//
// With -experiment all (the default) the Memcached study is computed once
// and shared by Figures 2, 3, 5, 8, 9 and Table IV, exactly as the paper
// derives them from the same 42 configurations.
//
// Beyond the paper's sweeps, -experiment also accepts the large-scale
// presets the engine work unlocked (timer-wheel O(1) scheduling,
// streaming measurement, pooled request lifecycle):
//
//	million-qps  Memcached load sweep to 1M QPS, 1M streamed samples/run
//	cluster      Replicated Memcached fleet behind consistent hashing
//	sharded      The cluster sweep with each run split over 4 engines
//	hour-long    Memcached at 100K QPS for one virtual hour per run
//
// Presets are excluded from -experiment all (they are full-size by
// design); -runs and -samples scale them down, which is how CI smokes
// them: repro -experiment million-qps -runs 1 -samples 2000.
//
// -shards partitions every run's simulation across N conservatively-
// synchronized engines (send-time routing requires the consistent-hash
// router on clustered shapes); output stays byte-identical to -shards 1
// — only wall-clock changes.
//
// -replicas and -router run any experiment's backend as a replica set
// behind a routing policy (round-robin, least-outstanding,
// consistent-hash); clustered preset output adds the load-balance-skew
// and scale-out-latency tables. The defaults keep the single-backend
// path, whose output is unchanged.
//
// Experiments fan out on a global budget of -parallel workers (default:
// all CPUs), shared between sweep cells and the repetitions inside each
// cell, so total concurrency never exceeds -parallel. All studies of one
// invocation also share one backend pool: a sweep cell leases a prebuilt
// service instance whenever a previous cell with the same server
// configuration has finished with one. Output is byte-identical for any
// -parallel value: every scenario and run draws from its own labeled RNG
// stream, and the scheduler collects results and progress lines in grid
// order.
//
// -spec runs a declarative workload spec (package internal/spec; YAML or
// JSON) as a sweep instead of a named experiment — client classes,
// bursty arrival processes and phase programs included:
//
//	repro -spec examples/phases-spike.yaml -runs 1 -samples 2000
//
// -spec and -experiment are mutually exclusive (the spec names its own
// sweep); -runs/-samples/-replicas/-router still scale and reshape a
// spec the way they do a preset. Flag combinations are validated before
// any work starts: an unknown router, or -router without -replicas (and
// without a clustered preset or spec), fails in milliseconds instead of
// after a sweep.
package main

import (
	"flag"
	"fmt"
	"os"
	"runtime"
	"strings"
	"time"

	"repro/internal/cluster"
	"repro/internal/envpool"
	"repro/internal/experiment"
	"repro/internal/figures"
	"repro/internal/metrics"
	"repro/internal/sched"
	"repro/internal/spec"
)

func main() {
	exp := flag.String("experiment", "all", "which table/figure to regenerate, or a scale preset (million-qps, cluster, sharded, faulty-cluster, hour-long)")
	specPath := flag.String("spec", "", "run a workload spec file (YAML or JSON) as a sweep; mutually exclusive with -experiment")
	runs := flag.Int("runs", 0, "repetitions per configuration (0 = paper defaults: 50, or 20 for the synthetic study)")
	samples := flag.Int("samples", 0, "post-warmup samples per run (0 = per-service default)")
	seed := flag.Uint64("seed", 2024, "experiment seed (same seed ⇒ identical output)")
	parallel := flag.Int("parallel", runtime.GOMAXPROCS(0), "concurrent sweep cells (output is identical for any value)")
	sampleMode := flag.String("samplemode", "auto", "per-run sample reduction: auto|exact|streaming (streaming runs in O(1) memory per run)")
	replicas := flag.Int("replicas", 0, "run each backend as N replicas behind -router (0 = single backend)")
	router := flag.String("router", "", "replica routing policy: round-robin|least-outstanding|consistent-hash")
	shards := flag.Int("shards", 0, "partition each run across N simulation engines (0 = preset/spec shape; output identical for any value)")
	timeout := flag.Duration("timeout", 0, "per-request client timeout enabling the resilience stack (0 = preset/spec shape)")
	retries := flag.Int("retries", 0, "bounded retry budget per request; requires -timeout or a resilient preset/spec (0 = preset/spec shape)")
	hedge := flag.Duration("hedge", 0, "hedged-request delay, must be below the timeout; requires -timeout or a resilient preset/spec (0 = preset/spec shape)")
	verbose := flag.Bool("v", false, "print per-scenario progress to stderr")
	flag.Parse()

	fail := func(err error) {
		fmt.Fprintln(os.Stderr, "repro:", err)
		os.Exit(1)
	}

	mode, err := metrics.ParseMode(*sampleMode)
	if err != nil {
		fail(err)
	}

	set := map[string]bool{}
	flag.Visit(func(f *flag.Flag) { set[f.Name] = true })

	var specPreset *figures.Preset
	if *specPath != "" {
		s, err := spec.Load(*specPath)
		if err != nil {
			fail(err)
		}
		p := figures.PresetFromSpec(s)
		specPreset = &p
	}
	if err := checkFlags(set["experiment"], *specPath, *replicas, *router,
		baseClustered(strings.ToLower(*exp), specPreset), *shards, set["shards"],
		basePartitions(strings.ToLower(*exp), specPreset, *replicas)); err != nil {
		fail(err)
	}
	if err := checkResilienceFlags(*timeout, *retries, *hedge,
		baseResilient(strings.ToLower(*exp), specPreset)); err != nil {
		fail(err)
	}
	if w := shardWarning(*shards, effectiveReplicas(strings.ToLower(*exp), specPreset, *replicas)); w != "" {
		fmt.Fprintln(os.Stderr, "repro:", w)
	}

	opts := figures.SweepOptions{
		Runs: *runs, Seed: *seed, TargetSamples: *samples, Workers: *parallel,
		SampleMode: mode, Replicas: *replicas, Router: *router, Shards: *shards,
		Timeout: *timeout, Retries: *retries, Hedge: *hedge,
		// One worker budget and one backend pool span every study of this
		// invocation, so -parallel bounds the whole regeneration and
		// backends are reused across figures, not just within one sweep.
		Budget:   sched.NewBudget(sched.Resolve(*parallel)),
		Backends: envpool.New(),
	}
	if *verbose {
		opts.Progress = func(line string) { fmt.Fprintln(os.Stderr, line) }
	}

	if specPreset != nil {
		if err := runPreset(*specPreset, opts); err != nil {
			fail(err)
		}
		return
	}
	if err := run(strings.ToLower(*exp), opts); err != nil {
		fail(err)
	}
}

// checkFlags validates flag combinations before any work starts, so a
// bad invocation fails in milliseconds rather than after a sweep.
// clustered reports whether the selected preset or spec already runs a
// replica set, which makes a bare -router a legitimate policy override.
// shards carries the -shards value and whether it was set explicitly (an
// explicit 0 is a request for "no engines", not the default); partitions
// is the invocation's machine+replica partition count when a single
// service is selected, 0 when unknown (figure grids mix services — the
// scenario validator catches oversharding per cell, still before any
// simulation).
func checkFlags(expSet bool, specPath string, replicas int, router string, clustered bool, shards int, shardsSet bool, partitions int) error {
	if specPath != "" && expSet {
		return fmt.Errorf("-spec and -experiment are mutually exclusive (the spec names its own sweep)")
	}
	if replicas < 0 {
		return fmt.Errorf("-replicas must be ≥ 0, got %d", replicas)
	}
	if router != "" {
		if _, err := cluster.NewRouter(router); err != nil {
			return err
		}
		if replicas <= 0 && !clustered {
			return fmt.Errorf("-router %s requires -replicas (or a clustered preset/spec)", router)
		}
	}
	if shardsSet && shards < 1 {
		return fmt.Errorf("-shards must be ≥ 1, got %d", shards)
	}
	if shards > 1 && partitions > 0 && shards > partitions {
		return fmt.Errorf("-shards %d exceeds the %d machine+replica partitions", shards, partitions)
	}
	return nil
}

// checkResilienceFlags fail-fast-validates the client resilience knobs.
// resilient reports whether the selected preset or spec already carries
// a request timeout, which makes bare -retries/-hedge overrides
// legitimate.
func checkResilienceFlags(timeout time.Duration, retries int, hedge time.Duration, resilient bool) error {
	if timeout < 0 {
		return fmt.Errorf("-timeout must be ≥ 0, got %v", timeout)
	}
	if retries < 0 {
		return fmt.Errorf("-retries must be ≥ 0, got %d", retries)
	}
	if hedge < 0 {
		return fmt.Errorf("-hedge must be ≥ 0, got %v", hedge)
	}
	if (retries > 0 || hedge > 0) && timeout == 0 && !resilient {
		return fmt.Errorf("-retries/-hedge require -timeout (or a preset/spec with a resilience timeout)")
	}
	if hedge > 0 && timeout > 0 && hedge >= timeout {
		return fmt.Errorf("-hedge %v must be below the timeout %v", hedge, timeout)
	}
	return nil
}

// baseResilient reports whether the invocation's preset or spec already
// enables client resilience before any flag override.
func baseResilient(exp string, specPreset *figures.Preset) bool {
	if specPreset != nil {
		return specPreset.Resilience != nil && specPreset.Resilience.Enabled()
	}
	if p, ok := figures.PresetByName(exp); ok {
		return p.Resilience != nil && p.Resilience.Enabled()
	}
	return false
}

// basePartitions resolves the invocation's shard-partition count — client
// machines plus backend replicas — when a single preset or spec fixes the
// service; 0 (unknown) otherwise. Mirrors experiment.Scenario's
// per-service deployment: one client machine for hdsearch/socialnet,
// four for the mutilate-style services.
func basePartitions(exp string, specPreset *figures.Preset, replicasFlag int) int {
	var p figures.Preset
	if specPreset != nil {
		p = *specPreset
	} else if bp, ok := figures.PresetByName(exp); ok {
		p = bp
	} else {
		return 0
	}
	machines := 4
	switch p.Service {
	case experiment.ServiceHDSearch, experiment.ServiceSocialNet:
		machines = 1
	}
	replicas := p.Replicas
	if replicasFlag > 0 {
		replicas = replicasFlag
	}
	if replicas < 1 {
		replicas = 1
	}
	return machines + replicas
}

// effectiveReplicas resolves the replica count the invocation will run:
// the -replicas override when set, else the preset's or spec's shape,
// else the single-backend default.
func effectiveReplicas(exp string, specPreset *figures.Preset, replicasFlag int) int {
	if replicasFlag > 0 {
		return replicasFlag
	}
	if specPreset != nil {
		return specPreset.Replicas
	}
	if p, ok := figures.PresetByName(exp); ok {
		return p.Replicas
	}
	return 0
}

// shardWarning returns a one-line ergonomics warning when -shards > 1
// is requested on a single-backend topology: the partition layout pins
// all server work to the shard that owns the backend, so conservative
// sync runs near its break-even instead of speeding up (the hour-long
// preset's shape). Replicated topologies spread server work across
// shards and stay silent. Warning only — the run proceeds, and its
// output is byte-identical either way.
func shardWarning(shards, effectiveReplicas int) string {
	if shards <= 1 || effectiveReplicas > 1 {
		return ""
	}
	return fmt.Sprintf("warning: -shards %d on a single-backend topology keeps all server work on one shard (near the sharding break-even); use -parallel to parallelize across runs, or -replicas to spread server work", shards)
}

// baseClustered reports whether the invocation's preset or spec selects
// the cluster path before any -replicas override.
func baseClustered(exp string, specPreset *figures.Preset) bool {
	if specPreset != nil {
		return specPreset.Replicas > 1 || specPreset.Autoscale != nil
	}
	if p, ok := figures.PresetByName(exp); ok {
		return p.Replicas > 1
	}
	return false
}

func run(exp string, opts figures.SweepOptions) error {
	var (
		memcachedStudy *figures.Sweep
		hdsearchStudy  *figures.Sweep
	)
	memcached := func() (*figures.Sweep, error) {
		if memcachedStudy == nil {
			var err error
			memcachedStudy, err = figures.RunMemcachedStudy(opts)
			if err != nil {
				return nil, err
			}
		}
		return memcachedStudy, nil
	}
	hdsearch := func() (*figures.Sweep, error) {
		if hdsearchStudy == nil {
			var err error
			hdsearchStudy, err = figures.RunHDSearchStudy(opts)
			if err != nil {
				return nil, err
			}
		}
		return hdsearchStudy, nil
	}

	want := func(name string) bool { return exp == "all" || exp == name }
	matched := false

	if want("table1") {
		matched = true
		fmt.Println(figures.TableI().Render())
	}
	if want("table2") {
		matched = true
		fmt.Println(figures.TableII().Render())
	}
	if want("table3") {
		matched = true
		fmt.Println(figures.TableIII().Render())
	}
	if want("recommendations") {
		matched = true
		fmt.Println(figures.RecommendationsTable().Render())
	}
	if want("fig2") {
		matched = true
		sw, err := memcached()
		if err != nil {
			return err
		}
		fmt.Println(figures.Fig2(sw))
	}
	if want("fig3") {
		matched = true
		sw, err := memcached()
		if err != nil {
			return err
		}
		fmt.Println(figures.Fig3(sw))
	}
	if want("fig4") {
		matched = true
		sw, err := hdsearch()
		if err != nil {
			return err
		}
		fmt.Println(figures.Fig4(sw))
	}
	if want("fig5") {
		matched = true
		m, err := memcached()
		if err != nil {
			return err
		}
		h, err := hdsearch()
		if err != nil {
			return err
		}
		fmt.Println(figures.Fig5(m, h))
	}
	if want("fig6") {
		matched = true
		sw, err := figures.RunSocialNetStudy(opts)
		if err != nil {
			return err
		}
		fmt.Println(figures.Fig6(sw))
	}
	if want("fig7") {
		matched = true
		sw, err := figures.RunSyntheticStudy(opts)
		if err != nil {
			return err
		}
		fmt.Println(figures.Fig7(sw))
	}
	if want("fig8") {
		matched = true
		sw, err := memcached()
		if err != nil {
			return err
		}
		fmt.Println(figures.Fig8(sw))
	}
	if want("fig9") {
		matched = true
		sw, err := memcached()
		if err != nil {
			return err
		}
		// The paper's Figure 9 shows HP-SMToff at 400K QPS (index 5).
		out, err := figures.Fig9(sw, "HP", "SMToff", 5)
		if err != nil {
			return err
		}
		fmt.Println(out)
	}
	if want("table4") {
		matched = true
		sw, err := memcached()
		if err != nil {
			return err
		}
		fmt.Println(figures.TableIV(sw, opts.Seed).Render())
	}
	if p, ok := figures.PresetByName(exp); ok {
		matched = true
		if err := runPreset(p, opts); err != nil {
			return err
		}
	}
	if !matched {
		return fmt.Errorf("unknown experiment %q (want all, table1-4, fig2-9, recommendations, or a preset:\n%s)", exp, figures.PresetUsage())
	}
	return nil
}

// runPreset executes and prints one preset sweep — built-in or compiled
// from a -spec file, which share this path end to end.
func runPreset(p figures.Preset, opts figures.SweepOptions) error {
	pr, err := figures.RunPreset(p, opts)
	if err != nil {
		return err
	}
	fmt.Println(pr.Render())
	if pr.Clustered() {
		fmt.Println()
		fmt.Println(pr.LoadBalanceTable())
		fmt.Println()
		fmt.Println(pr.ScaleOutTable())
	}
	if pr.Faulty() {
		fmt.Println()
		fmt.Println(pr.AvailabilityTable())
		fmt.Println()
		fmt.Println(pr.FaultTimelineTable())
	}
	return nil
}
