// Command benchdiff compares two BENCH_*.json reports (the artifacts
// `make bench-json` writes and CI archives) and prints per-benchmark
// deltas for ns/op and allocs/op, flagging changes beyond a threshold.
//
// Usage:
//
//	benchdiff [-threshold 0.10] [-fail] old.json new.json
//
// Benchmarks are matched by package-qualified name; entries present in
// only one report are listed separately. A positive delta is a
// regression (new slower / more allocs than old). The default mode is
// report-only — CI runs it non-blocking so a noisy smoke run never
// gates a merge; -fail turns regressions into exit status 1 for local
// bisecting. Smoke reports (benchtime=1x) are noisy for ns/op; the
// allocs/op column is exact and is the one worth trusting from CI.
package main

import (
	"flag"
	"fmt"
	"io"
	"os"
	"sort"

	"repro/internal/benchfmt"
)

func main() {
	threshold := flag.Float64("threshold", 0.10, "relative ns/op change that counts as a regression/improvement")
	failOnRegress := flag.Bool("fail", false, "exit 1 when any regression exceeds the threshold")
	flag.Usage = func() {
		fmt.Fprintf(flag.CommandLine.Output(), "usage: benchdiff [flags] old.json new.json\n")
		flag.PrintDefaults()
	}
	flag.Parse()
	if flag.NArg() != 2 {
		flag.Usage()
		os.Exit(2)
	}
	regressions, err := run(os.Stdout, flag.Arg(0), flag.Arg(1), *threshold)
	if err != nil {
		fmt.Fprintln(os.Stderr, "benchdiff:", err)
		os.Exit(1)
	}
	if *failOnRegress && regressions > 0 {
		os.Exit(1)
	}
}

// diffRow is one matched benchmark pair.
type diffRow struct {
	key                  string
	oldNs, newNs         float64
	oldAllocs, newAllocs float64
	hasAllocs            bool
}

// nsDelta is the relative ns/op change; positive = slower.
func (d diffRow) nsDelta() float64 {
	if d.oldNs == 0 {
		return 0
	}
	return (d.newNs - d.oldNs) / d.oldNs
}

// run diffs the two reports into w and returns the regression count.
func run(w io.Writer, oldPath, newPath string, threshold float64) (int, error) {
	oldRecs, err := benchfmt.ReadFile(oldPath)
	if err != nil {
		return 0, err
	}
	newRecs, err := benchfmt.ReadFile(newPath)
	if err != nil {
		return 0, err
	}
	rows, onlyOld, onlyNew := match(oldRecs, newRecs)

	fmt.Fprintf(w, "benchdiff %s → %s (threshold ±%.0f%%)\n\n", oldPath, newPath, threshold*100)
	fmt.Fprintf(w, "%-64s %14s %14s %8s %18s\n", "benchmark", "old ns/op", "new ns/op", "Δ%", "allocs/op old→new")
	regressions := 0
	for _, d := range rows {
		mark := " "
		switch delta := d.nsDelta(); {
		case delta > threshold:
			mark = "!" // regression
			regressions++
		case delta < -threshold:
			mark = "+" // improvement
		}
		allocs := ""
		if d.hasAllocs {
			allocs = fmt.Sprintf("%.0f → %.0f", d.oldAllocs, d.newAllocs)
			if d.newAllocs > d.oldAllocs {
				allocs += " !"
				if mark == " " {
					mark = "!"
					regressions++
				}
			}
		}
		fmt.Fprintf(w, "%s %-62s %14.1f %14.1f %+7.1f%% %18s\n",
			mark, d.key, d.oldNs, d.newNs, d.nsDelta()*100, allocs)
	}
	for _, k := range onlyOld {
		fmt.Fprintf(w, "- %-62s (only in %s)\n", k, oldPath)
	}
	for _, k := range onlyNew {
		fmt.Fprintf(w, "* %-62s (new in %s)\n", k, newPath)
	}
	fmt.Fprintf(w, "\n%d compared, %d regression(s) beyond ±%.0f%%, %d removed, %d added\n",
		len(rows), regressions, threshold*100, len(onlyOld), len(onlyNew))
	return regressions, nil
}

// match pairs records across reports by Key, returning matched rows and
// the keys unique to each side, all in sorted order.
func match(oldRecs, newRecs []benchfmt.Record) (rows []diffRow, onlyOld, onlyNew []string) {
	oldByKey := make(map[string]benchfmt.Record, len(oldRecs))
	for _, r := range oldRecs {
		oldByKey[r.Key()] = r
	}
	seen := make(map[string]bool, len(newRecs))
	for _, n := range newRecs {
		k := n.Key()
		seen[k] = true
		o, ok := oldByKey[k]
		if !ok {
			onlyNew = append(onlyNew, k)
			continue
		}
		d := diffRow{key: k, oldNs: o.NsPerOp, newNs: n.NsPerOp}
		oa, okOld := o.Metrics["allocs/op"]
		na, okNew := n.Metrics["allocs/op"]
		if okOld && okNew {
			d.oldAllocs, d.newAllocs, d.hasAllocs = oa, na, true
		}
		rows = append(rows, d)
	}
	for k := range oldByKey {
		if !seen[k] {
			onlyOld = append(onlyOld, k)
		}
	}
	sort.Slice(rows, func(i, j int) bool { return rows[i].key < rows[j].key })
	sort.Strings(onlyOld)
	sort.Strings(onlyNew)
	return rows, onlyOld, onlyNew
}
