package main

import (
	"encoding/json"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"repro/internal/benchfmt"
)

// writeReport marshals records to a temp BENCH-style JSON file.
func writeReport(t *testing.T, dir, name string, recs []benchfmt.Record) string {
	t.Helper()
	data, err := json.Marshal(recs)
	if err != nil {
		t.Fatal(err)
	}
	path := filepath.Join(dir, name)
	if err := os.WriteFile(path, data, 0o644); err != nil {
		t.Fatal(err)
	}
	return path
}

func rec(pkg, name string, ns float64, allocs float64) benchfmt.Record {
	return benchfmt.Record{
		Name: name, Package: pkg, Iterations: 1, NsPerOp: ns,
		Metrics: map[string]float64{"allocs/op": allocs},
	}
}

func TestDiffFlagsRegressionsAndChanges(t *testing.T) {
	dir := t.TempDir()
	oldPath := writeReport(t, dir, "old.json", []benchfmt.Record{
		rec("repro/a", "BenchmarkStable-8", 100, 2),
		rec("repro/a", "BenchmarkSlower-8", 100, 2),
		rec("repro/a", "BenchmarkFaster-8", 100, 2),
		rec("repro/a", "BenchmarkMoreAllocs-8", 100, 2),
		rec("repro/a", "BenchmarkRemoved-8", 100, 2),
	})
	newPath := writeReport(t, dir, "new.json", []benchfmt.Record{
		rec("repro/a", "BenchmarkStable-8", 104, 2),     // within ±10%
		rec("repro/a", "BenchmarkSlower-8", 150, 2),     // ns regression
		rec("repro/a", "BenchmarkFaster-8", 50, 2),      // improvement
		rec("repro/a", "BenchmarkMoreAllocs-8", 100, 5), // alloc regression
		rec("repro/a", "BenchmarkAdded-8", 100, 2),      // new
	})
	var out strings.Builder
	regressions, err := run(&out, oldPath, newPath, 0.10)
	if err != nil {
		t.Fatal(err)
	}
	if regressions != 2 {
		t.Fatalf("regressions = %d, want 2 (ns + allocs)\n%s", regressions, out.String())
	}
	report := out.String()
	for _, want := range []string{
		"! repro/a.BenchmarkSlower-8",
		"+ repro/a.BenchmarkFaster-8",
		"! repro/a.BenchmarkMoreAllocs-8",
		"2 → 5 !",
		"* repro/a.BenchmarkAdded-8",
		"- repro/a.BenchmarkRemoved-8",
		"4 compared, 2 regression(s)",
	} {
		if !strings.Contains(report, want) {
			t.Errorf("report missing %q:\n%s", want, report)
		}
	}
	if strings.Contains(report, "! repro/a.BenchmarkStable-8") {
		t.Errorf("within-threshold benchmark flagged:\n%s", report)
	}
}

func TestDiffMatchesByPackageQualifiedName(t *testing.T) {
	dir := t.TempDir()
	oldPath := writeReport(t, dir, "old.json", []benchfmt.Record{
		rec("repro/a", "BenchmarkX-8", 100, 1),
		rec("repro/b", "BenchmarkX-8", 100, 1),
	})
	newPath := writeReport(t, dir, "new.json", []benchfmt.Record{
		rec("repro/a", "BenchmarkX-8", 100, 1),
		rec("repro/b", "BenchmarkX-8", 500, 1), // only b's regressed
	})
	var out strings.Builder
	regressions, err := run(&out, oldPath, newPath, 0.10)
	if err != nil {
		t.Fatal(err)
	}
	if regressions != 1 {
		t.Fatalf("regressions = %d, want 1:\n%s", regressions, out.String())
	}
	if !strings.Contains(out.String(), "! repro/b.BenchmarkX-8") {
		t.Errorf("wrong benchmark flagged:\n%s", out.String())
	}
}

func TestDiffMissingFileErrors(t *testing.T) {
	dir := t.TempDir()
	okPath := writeReport(t, dir, "ok.json", []benchfmt.Record{rec("p", "BenchmarkX-8", 1, 0)})
	var out strings.Builder
	if _, err := run(&out, filepath.Join(dir, "missing.json"), okPath, 0.10); err == nil {
		t.Fatal("missing old report did not error")
	}
	if _, err := run(&out, okPath, filepath.Join(dir, "missing.json"), 0.10); err == nil {
		t.Fatal("missing new report did not error")
	}
}
