// Command sysfsctl inspects and tunes the virtual sysfs/MSR configuration
// tree of a simulated machine, using the same interfaces the paper tunes
// its testbed through (§IV-C): sysfs files, the kernel command line, MSR
// 0x1A0 (turbo) and MSR 0x620 (uncore), and the cpupower governor wrapper.
//
// Usage:
//
//	sysfsctl -preset LP list
//	sysfsctl -preset LP read /sys/devices/system/cpu/cpu0/cpufreq/scaling_governor
//	sysfsctl -preset LP write /sys/devices/system/cpu/smt/control off
//	sysfsctl -preset LP cmdline "idle=poll intel_pstate=disable"
//	sysfsctl -preset LP rdmsr 0x1a0
//	sysfsctl -preset LP wrmsr 0x1a0 0x4000000000
//
// After any mutation the resulting configuration summary is printed, so the
// tool doubles as a what-if explorer for Table II variants.
package main

import (
	"flag"
	"fmt"
	"os"
	"strconv"

	"repro/internal/hw"
	"repro/internal/sysfs"
)

func main() {
	preset := flag.String("preset", "LP", "starting configuration: LP, HP, or server")
	cores := flag.Int("cores", 10, "physical cores")
	flag.Parse()

	var cfg hw.Config
	switch *preset {
	case "LP":
		cfg = hw.LPConfig()
	case "HP":
		cfg = hw.HPConfig()
	case "server":
		cfg = hw.ServerBaselineConfig()
	default:
		fail("unknown preset %q (want LP, HP, server)", *preset)
	}
	fs, err := sysfs.New(cfg, *cores)
	if err != nil {
		fail("%v", err)
	}

	args := flag.Args()
	if len(args) == 0 {
		printSummary(fs)
		return
	}
	switch args[0] {
	case "list":
		for _, p := range fs.List() {
			v, err := fs.Read(p)
			if err != nil {
				v = "<" + err.Error() + ">"
			}
			fmt.Printf("%-60s %s\n", p, v)
		}
	case "read":
		need(args, 2, "read <path>")
		v, err := fs.Read(args[1])
		if err != nil {
			fail("%v", err)
		}
		fmt.Println(v)
	case "write":
		need(args, 3, "write <path> <value>")
		if err := fs.Write(args[1], args[2]); err != nil {
			fail("%v", err)
		}
		printSummary(fs)
	case "cmdline":
		need(args, 2, "cmdline <flags>")
		if err := fs.ApplyCmdline(args[1]); err != nil {
			fail("%v", err)
		}
		printSummary(fs)
	case "governor":
		need(args, 2, "governor <powersave|performance>")
		if err := fs.SetGovernor(args[1]); err != nil {
			fail("%v", err)
		}
		printSummary(fs)
	case "rdmsr":
		need(args, 2, "rdmsr <addr>")
		addr := parseHex(args[1])
		v, err := fs.ReadMSR(addr)
		if err != nil {
			fail("%v", err)
		}
		fmt.Printf("%#x\n", v)
	case "wrmsr":
		need(args, 3, "wrmsr <addr> <value>")
		addr := parseHex(args[1])
		val := parseHex64(args[2])
		if err := fs.WriteMSR(addr, val); err != nil {
			fail("%v", err)
		}
		printSummary(fs)
	default:
		fail("unknown command %q (want list, read, write, cmdline, governor, rdmsr, wrmsr)", args[0])
	}
}

func printSummary(fs *sysfs.FS) {
	cfg := fs.Config()
	fmt.Printf("configuration summary\n")
	fmt.Printf("  max C-state:  %s\n", cfg.MaxCState)
	fmt.Printf("  driver:       %s\n", cfg.Driver)
	fmt.Printf("  governor:     %s\n", cfg.Governor)
	fmt.Printf("  turbo:        %v\n", cfg.Turbo)
	fmt.Printf("  SMT:          %v\n", cfg.SMT)
	fmt.Printf("  uncore:       dynamic=%v\n", cfg.UncoreDynamic)
	fmt.Printf("  tickless:     %v\n", cfg.Tickless)
	fmt.Printf("  cmdline:      %s\n", fs.Cmdline())
}

func need(args []string, n int, usage string) {
	if len(args) < n {
		fail("usage: sysfsctl %s", usage)
	}
}

func parseHex(s string) uint32 {
	v, err := strconv.ParseUint(s, 0, 32)
	if err != nil {
		fail("bad address %q: %v", s, err)
	}
	return uint32(v)
}

func parseHex64(s string) uint64 {
	v, err := strconv.ParseUint(s, 0, 64)
	if err != nil {
		fail("bad value %q: %v", s, err)
	}
	return v
}

func fail(format string, args ...any) {
	fmt.Fprintf(os.Stderr, "sysfsctl: "+format+"\n", args...)
	os.Exit(1)
}
