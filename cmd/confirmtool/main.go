// Command confirmtool analyzes a set of measurement samples the way the
// paper's §III and §V-C prescribe: normality (Shapiro–Wilk), iid-ness
// (autocorrelation, turning-point test), and the number of repetitions
// needed for a 95% confidence interval with bounded error — parametric
// (Jain Eq. 3) and non-parametric (CONFIRM).
//
// Input is one sample per line (plain numbers), from a file or stdin:
//
//	confirmtool -err 1 samples.txt
//	labsim ... | awk '{print $2}' | confirmtool
package main

import (
	"bufio"
	"flag"
	"fmt"
	"io"
	"os"
	"strconv"
	"strings"

	"repro/internal/rng"
	"repro/internal/stats"
)

func main() {
	errPct := flag.Float64("err", 1, "target CI half-width as % of the estimate")
	confidence := flag.Float64("confidence", 0.95, "confidence level")
	seed := flag.Uint64("seed", 1, "seed for CONFIRM's resampling")
	flag.Parse()

	var in io.Reader = os.Stdin
	if flag.NArg() > 0 {
		f, err := os.Open(flag.Arg(0))
		if err != nil {
			fmt.Fprintln(os.Stderr, "confirmtool:", err)
			os.Exit(1)
		}
		defer f.Close()
		in = f
	}
	samples, err := readSamples(in)
	if err != nil {
		fmt.Fprintln(os.Stderr, "confirmtool:", err)
		os.Exit(1)
	}
	if len(samples) == 0 {
		fmt.Fprintln(os.Stderr, "confirmtool: no samples")
		os.Exit(1)
	}

	sum := stats.Summarize(samples)
	fmt.Printf("samples: n=%d mean=%.4g median=%.4g stddev=%.4g min=%.4g max=%.4g\n\n",
		sum.N, sum.Mean, sum.Median, sum.StdDev, sum.Min, sum.Max)

	fmt.Println("— distribution —")
	if sw, err := stats.ShapiroWilk(samples); err == nil {
		verdict := "consistent with normal"
		if !sw.Normal(0.05) {
			verdict = "NOT normal (use non-parametric statistics)"
		}
		fmt.Printf("Shapiro–Wilk: W=%.4f p=%.4g → %s\n", sw.W, sw.PValue, verdict)
	} else {
		fmt.Printf("Shapiro–Wilk: %v\n", err)
	}
	if ad, err := stats.AndersonDarling(samples); err == nil {
		fmt.Printf("Anderson–Darling: A²=%.3f (5%% critical %.3f) → normal: %v\n", ad.A2, ad.Critical, ad.Normal())
	}

	fmt.Println("\n— iid-ness —")
	if r, err := stats.Autocorrelation(samples, 1); err == nil {
		fmt.Printf("lag-1 autocorrelation: %.3f (≈0 means independent)\n", r)
	}
	if tp, err := stats.TurningPointTest(samples); err == nil {
		fmt.Printf("turning-point test: %d turning points (expected %.1f), p=%.3f → random: %v\n",
			tp.TurningPoints, tp.Expected, tp.PValue, tp.Random(0.05))
	}
	if adf, err := stats.ADF(samples, stats.DefaultADFLags(len(samples))); err == nil {
		fmt.Printf("augmented Dickey–Fuller: t=%.3f (5%% critical %.2f) → stationary: %v\n",
			adf.Statistic, adf.Critical5, adf.Stationary())
	}

	fmt.Println("\n— confidence intervals —")
	if iv, err := stats.ParametricCI(samples, *confidence); err == nil {
		fmt.Printf("parametric (mean):       %s (half-width %.2f%%)\n", iv, iv.HalfWidthPct())
	}
	if iv, err := stats.NonParametricCI(samples, *confidence); err == nil {
		fmt.Printf("non-parametric (median): %s (half-width %.2f%%)\n", iv, iv.HalfWidthPct())
	}

	fmt.Println("\n— repetitions for target error —")
	if n, err := stats.JainIterations(samples, *confidence, *errPct); err == nil {
		fmt.Printf("parametric (Jain Eq. 3): %d iterations\n", n)
	} else {
		fmt.Printf("parametric (Jain Eq. 3): %v\n", err)
	}
	cfg := stats.DefaultConfirmConfig()
	cfg.Confidence = *confidence
	cfg.ErrPct = *errPct
	if cr, err := stats.Confirm(samples, cfg, rng.New(*seed)); err == nil {
		if cr.Converged {
			fmt.Printf("CONFIRM:                 %d iterations (achieved %.2f%% error)\n", cr.Iterations, cr.AchievedErrPct)
		} else {
			fmt.Printf("CONFIRM:                 >%d iterations (collect more runs)\n", len(samples))
		}
	} else {
		fmt.Printf("CONFIRM:                 %v\n", err)
	}
}

func readSamples(r io.Reader) ([]float64, error) {
	var out []float64
	sc := bufio.NewScanner(r)
	line := 0
	for sc.Scan() {
		line++
		text := strings.TrimSpace(sc.Text())
		if text == "" || strings.HasPrefix(text, "#") {
			continue
		}
		v, err := strconv.ParseFloat(text, 64)
		if err != nil {
			return nil, fmt.Errorf("line %d: %q is not a number", line, text)
		}
		out = append(out, v)
	}
	return out, sc.Err()
}
