// Package repro is the public API of the reproduction of "Taming
// Performance Variability caused by Client-Side Hardware Configuration"
// (Antoniou, Volos, Sazeides — IISWC 2024).
//
// The library simulates the paper's full testbed — client machines with
// configurable C-states, frequency scaling, turbo, SMT, uncore and tickless
// settings; workload generators following the paper's taxonomy; and the
// four benchmark services — and reproduces every figure and table of the
// paper's evaluation on top of it.
//
// # Quick start
//
//	scenario := repro.Scenario{
//	    Service: repro.ServiceMemcached,
//	    Label:   "LP",
//	    Client:  repro.LPClient(),
//	    Server:  repro.ServerBaseline(),
//	    RateQPS: 100_000,
//	    Runs:    10,
//	    Seed:    1,
//	}
//	result, err := repro.RunScenario(scenario)
//	fmt.Println(result.AvgCI) // median latency with non-parametric 95% CI
//
// # Parallel execution
//
// Scenario repetitions and figure sweeps fan out over a deterministic
// worker pool (package internal/sched). Set Scenario.Workers to run a
// scenario's repetitions concurrently and SweepOptions.Workers to run a
// sweep's grid concurrently (the cmd/repro and cmd/labsim binaries
// expose both as -parallel, defaulting to all CPUs). The guarantee in
// both cases: results are byte-identical for every worker count,
// including 1. Each repetition draws from its own labeled RNG stream and
// executes on a private environment, so a run's outcome is a pure
// function of (seed, scenario, run index); the scheduler merely changes
// the wall-clock order the independent runs are computed in, and its
// ordered collector reassembles results (and progress output) in run
// order. Pool is re-exported for callers that want the same machinery
// for their own experiment fan-out.
//
// # Environment pooling
//
// Parallel fan-out is resource-managed by the envpool layer
// (internal/envpool), carried by context:
//
//   - A global worker Budget is shared between the sweep (cell) and
//     scenario (run) levels, so nested fan-out is bounded by one
//     "-parallel N" rather than N². Sweeps create one per call;
//     RunScenarioContext picks one up from its context.
//   - A BackendPool leases prebuilt service backends keyed by (service,
//     server configuration): sweep cells that share a server config
//     reuse one preloaded instance instead of rebuilding per cell.
//   - The Memcached preload itself is a copy-on-write snapshot
//     (internal/kvstore): concurrent instances share one frozen 100k-key
//     base and overlay only the keys a run writes.
//
// Use NewEnvContext to assemble the standard environment, then pass the
// context to RunScenarioContext or share a Budget/BackendPool across
// sweeps via SweepOptions. None of this affects results — leased
// backends are fully reset per run and the budget only schedules — so
// the byte-identical guarantee is unchanged.
//
// # Streaming measurement
//
// The measurement path itself is bounded-memory (internal/metrics).
// Every run's post-warmup samples flow through a metrics recorder in
// one of two modes, selected by Scenario.SampleMode:
//
//   - SampleExact retains every sample and reduces with the batch
//     estimators — the reference behaviour, byte-identical to the
//     historical retain-everything path.
//   - SampleStreaming reduces online in O(1) memory per run:
//     mean/variance/min/max via Welford's algorithm, P50/P90/P95/P99
//     via a log-bucketed histogram within a 1% relative error bound,
//     and a deterministic fixed-size reservoir subsample for
//     order-insensitive distributional tests such as Shapiro–Wilk
//     (the reservoir does not preserve arrival order; the §III
//     independence diagnostics operate on per-run sequences, which
//     streaming leaves untouched).
//   - SampleAuto (the default) picks streaming above a per-run sample
//     threshold (experiment.DefaultStreamingThreshold), so small runs
//     keep exact raw data and long runs keep flat memory.
//
// Streaming mode preserves the byte-identical parallelism guarantee:
// the reservoir draws from the run's own labeled stream, so results are
// still a pure function of (seed, scenario, run index).
//
// # Engine hot path
//
// Steady-state simulation is allocation-free (the engine-level complement
// to streaming measurement: metrics bound retained memory, pooling bounds
// allocation rate). The simulation engine (internal/sim) keeps event
// objects on a per-engine free list with generation-stamped IDs, and the
// whole request lifecycle — send timer, link delivery, tier job, response
// delivery, receive — dispatches through typed event sinks on pooled
// request objects instead of allocating closures. A generator reuses one
// engine and request free list across its runs. Net effect, measured on
// the synthetic reference path (BenchmarkRequestPathAllocs): ~15 → ~0.01
// heap allocations and ~2.0µs → ~1.1µs of host CPU per simulated request,
// which is what makes hour-long virtual runs and million-QPS scenarios
// affordable. Pooling is invisible to results: free lists are
// deterministic LIFO structures owned by a single-clocked engine, so the
// byte-identical guarantee above is unchanged. Profile the hot path with
// "make profile".
//
// # O(1) event scheduling
//
// Pending events live in a deterministic hierarchical timer wheel
// (internal/sim/wheel.go) instead of a binary min-heap: schedule, cancel
// and fire are O(1) amortized at any pending population, where the heap
// paid O(log n) with cache-hostile sift chains — the dominant engine
// term exactly at the scale the presets target, where in-flight requests
// × per-request timers keep 10⁴–10⁵ events pending. Measured
// (BenchmarkEnginePending, steady-state schedule+fire, 0 B/op both):
// ~195 → ~57 ns at 1k pending, ~304 → ~94 ns at 100k, ~420 → ~126 ns at
// 1M — flat for the wheel, growing for the heap. Firing order is exactly
// (deadline, seq), byte-identical to the heap; differential random
// schedules (internal/sim/wheel_test.go) and every figure golden pin it.
// Deep-horizon schedules (phase-program bursts, hour-long timers) that
// cascade whole buckets down the levels splice maximal same-slot runs
// with O(1) pointer moves instead of re-pushing events one by one
// (cascade hysteresis, wheel.go): ~1.6× on the dense-deep-horizon
// cascade benchmark with the firing order — and the 1k/100k-pending
// gates — unchanged (TestWheelCascadeHysteresisFaster).
// The Memcached request path is additionally allocation-free end to end:
// ETC keys are interned in a shared table (workload.ETCKeys), request
// bodies travel inline in pooled requests instead of boxed payloads, and
// store lookups are size-only (kvstore.Fork.ValueSize) — gated below 0.2
// allocs/request by TestMemcachedKVPathAllocFree.
//
// # Cluster layer
//
// Scenarios can run their backend as a replicated fleet
// (internal/cluster): set Scenario.Replicas and Scenario.Router to put
// N replicas — Memcached replicas fork the shared preload snapshot, so
// they are nearly free — behind a deterministic routing policy
// (RouterRoundRobin, RouterLeastOutstanding, or RouterConsistentHash,
// which hashes the KV key over a 64-vnode ring so hot ETC keys shard
// realistically), and optionally Scenario.Autoscale to drive the active
// replica count from a virtual-clock control loop on utilization or
// latency signals. Per-replica accounting (routed counts, queue depths,
// busy time, scale events) lands on RunMetrics.Cluster as a
// ClusterRunStats. The per-replica hot state is laid out
// structure-of-arrays (flat slices indexed by replica id — counts and
// outstanding in cluster.go, worker busy-bits as a bitmask in
// services.Tier) so routing picks and autoscaler utilization scans walk
// contiguous memory: both are allocation-free and a few tens of
// nanoseconds (BenchmarkClusterRoute, BenchmarkAutoscalerTick).
// Replication preserves every standing guarantee:
// routers and the autoscaler draw from labeled RNG streams, results are
// byte-identical for any worker count, and a single-replica scenario is
// byte-identical to the unreplicated path. Both CLIs expose the knobs
// as -replicas/-router.
//
// # Scale presets
//
// figures.Presets packages the scenarios this engine work unlocked as
// first-class sweeps: "million-qps" (Memcached to 1M QPS, 2× the paper's
// peak, 1M streamed samples per run), "cluster" (a four-replica
// Memcached fleet behind consistent hashing to 2M QPS offered, rendered
// as load-balance-skew and scale-out-latency tables), "hour-long"
// (one virtual hour per run at 100K QPS), and "sharded" (the cluster
// fleet with each run partitioned over 4 engines). Run them via "repro
// -experiment million-qps" or "labsim -preset hour-long";
// -runs/-samples scale them down (CI smokes them that way per commit,
// "make smoke-presets"). Cross-run aggregate distributions can be built
// without retaining per-run samples via the mergeable sketches
// (stats.LogHistogram.Merge, metrics.Streaming.Merge) within the same
// documented error bound.
//
// # Sharded runs
//
// One run can itself be partitioned across K simulation engines
// (Scenario.Shards, spec "shards:", -shards on both CLIs). Each client
// machine and each replica is a partition; partitions spread
// round-robin over K shards, each with its own timer wheel, event pool
// and labeled RNG streams, and cross-shard traffic crosses only at
// modelled network links. The link's hard minimum delay
// (netmodel.Config.MinDelay, a clamp — not a probabilistic bound) is
// the conservative lookahead: shards advance in epochs to the global
// minimum next deadline plus one lookahead, exchanging timestamped
// event batches through per-edge mailboxes at a barrier, so no shard
// ever receives an event in its past and every epoch makes progress
// (deadlock-free with no null-message traffic). Merged output is
// byte-identical to the single-engine run at any K and any -parallel:
// events fire in (deadline, origin, seq) order, and the sharded
// runtime replays deferred cross-shard events with their original
// schedule instants, reproducing the single engine's FIFO tie-breaks
// exactly (pinned by differential tests at the loadgen, preset and
// spec levels, plus figure goldens). Perf note: the win scales with
// events per epoch ≈ event rate × lookahead, so shard the high-rate
// replicated scenarios (the "sharded" preset's 250K–2M QPS sweep
// gates ≥2× at 4 shards on ≥4 cores); for low-rate or single-backend
// scenarios, repetition-level -parallel remains the better lever (both
// CLIs warn when -shards is requested on a single-backend topology).
// The per-epoch fixed cost is one fused sense-reversing barrier with
// adaptive spin-then-park waiting plus parity-buffered mailbox and
// clock-floor exchange — ~0.3 µs and zero allocations per epoch steady
// state (BenchmarkShardEpoch, TestShardEpochAllocFree); the low-rate
// break-even is tracked by BenchmarkShardedRunLowRate{1,4}.
//
// # Fault scenarios
//
// Scenarios can inject deterministic faults into a replicated fleet and
// arm the load generator's resilience stack against them
// (internal/faults, Scenario.Faults / Scenario.Resilience, spec
// "faults:" / "resilience:" / "hiccups:" sections, -timeout/-retries/
// -hedge on both CLIs). A FaultPlan is declarative: crash windows
// (a replica fails every queued and in-flight request, rejects new work,
// then restarts cold), degraded-replica straggler windows (service time
// scaled by a factor), link-degradation windows (delay multiplier and
// loss probability on the client-server link), and randomly drawn
// crash/restart churn from a labeled RNG stream (rate and mean downtime;
// drawn once at run start, so the schedule is a pure function of the
// seed). Windows are fractions of the run horizon, so one plan scales
// from CI smoke runs to hour-long sweeps. The client side mirrors
// production practice: per-request timeouts, bounded retries with
// exponential backoff and decorrelated jitter, and optional hedged
// requests that race a backup copy against a slow primary (hedges
// require the consistent-hash router, whose routing is a pure function
// the hedge can preview to avoid its primary). Outcomes land on
// RunMetrics.Resilience — availability, error rate, retry
// amplification, goodput, and the raw timeout/retry/hedge counters —
// and per-replica crash/downtime/straggler/hiccup accounting lands on
// RunMetrics.Cluster; the "faulty-cluster" preset renders both as
// availability and fault-timeline tables. Every standing guarantee
// holds under faults: fault events ride the virtual clock, retry and
// hedge timers draw no randomness outside labeled streams, and a
// faulty run is byte-identical at any -parallel and any -shards
// (differential-tested); the fault-free path stays allocation-free and
// byte-identical to prior releases — resilience state machines engage
// only when a timeout is configured.
//
// # Workload specs
//
// Scenarios can also be written as declarative files (internal/spec)
// instead of Go structs — the scenario front door for shapes the fixed
// presets don't cover. A spec is versioned YAML or JSON ("version: 1",
// parsed by a dependency-free YAML subset with strict unknown-field
// rejection) that composes the whole scenario: service, client and
// server presets, a rate sweep, replicas/router/autoscale, plus two
// layers only specs expose:
//
//   - classes: a traffic mix of client classes, each with a rate
//     fraction, an arrival process (poisson, fixed, gamma and weibull
//     bursty arrivals by cv/shape, or onoff session machines), and
//     optional per-class think-time and request-size distributions.
//   - phases: a rate program on the virtual clock (baseline →
//     intervention → recovery, or diurnal ramps via end_scale and
//     phases_repeat), scaling every class's rate in lock-step.
//
// The full schema is documented on package internal/spec, and
// examples/*.yaml contains a commented file per feature — including the
// three scale presets re-expressed as specs, which render
// byte-identically to the built-ins. Both binaries accept
// "-spec file.yaml" ("repro -spec examples/phases-spike.yaml";
// smoke knobs like -runs/-samples still apply, scenario-shape flags
// conflict and fail fast). Programmatically: LoadSpec or ParseSpec,
// then WorkloadSpec.Scenario for a single-rate RunScenario (or
// figures.PresetFromSpec to run the full sweep the CLIs run). Specs
// compile onto the
// same deterministic machinery as everything above, so spec-driven
// scenarios keep the byte-identical-at-any-parallelism guarantee.
//
// The deeper layers are exposed as sub-packages under internal/ for the
// repository's own binaries, examples and tests; this package re-exports
// the stable surface.
package repro

import (
	"context"
	"runtime"

	"repro/internal/cluster"
	"repro/internal/core"
	"repro/internal/envpool"
	"repro/internal/experiment"
	"repro/internal/faults"
	"repro/internal/figures"
	"repro/internal/hw"
	"repro/internal/loadgen"
	"repro/internal/metrics"
	"repro/internal/rng"
	"repro/internal/sched"
	"repro/internal/spec"
	"repro/internal/stats"
)

// Hardware configuration (paper §IV-C, Table II).
type (
	// HWConfig is a machine hardware configuration: C-states, frequency
	// driver/governor, turbo, SMT, uncore, tickless.
	HWConfig = hw.Config
	// CState describes one processor idle state.
	CState = hw.CState
)

// LPClient returns the paper's low-power (default, untuned) client
// configuration.
func LPClient() HWConfig { return hw.LPConfig() }

// HPClient returns the paper's high-performance (tuned) client
// configuration.
func HPClient() HWConfig { return hw.HPConfig() }

// ServerBaseline returns the paper's server-side baseline configuration.
func ServerBaseline() HWConfig { return hw.ServerBaselineConfig() }

// SkylakeCStates is the platform C-state table (C0/C1/C1E/C6).
func SkylakeCStates() []CState { return hw.SkylakeCStates }

// Experiments (paper §IV–§V).
type (
	// Scenario is one experimental configuration point: service, client
	// and server configuration, load, repetition count.
	Scenario = experiment.Scenario
	// Result is a scenario's outcome: per-run metrics plus the §III
	// statistics.
	Result = experiment.Result
	// RunMetrics is one repetition's reduced measurements.
	RunMetrics = experiment.RunMetrics
	// Service names a benchmark.
	Service = experiment.Service
	// SampleMode selects a run's measurement reduction: exact
	// (retain-everything), streaming (O(1) memory), or automatic.
	SampleMode = metrics.Mode
	// MetricSummary is one metric's reduced statistics (N, mean, stddev,
	// min/max, quantiles).
	MetricSummary = stats.Summary
)

// Sample modes for Scenario.SampleMode.
const (
	// SampleAuto picks streaming above DefaultStreamingThreshold
	// per-run samples, exact below.
	SampleAuto = metrics.SampleAuto
	// SampleExact retains every post-warmup sample.
	SampleExact = metrics.SampleExact
	// SampleStreaming reduces online in memory independent of run
	// length, with quantiles inside a documented 1% error bound.
	SampleStreaming = metrics.SampleStreaming
)

// DefaultStreamingThreshold is the per-run sample count above which
// SampleAuto switches to the streaming reduction.
const DefaultStreamingThreshold = experiment.DefaultStreamingThreshold

// The paper's four benchmarks.
const (
	ServiceMemcached = experiment.ServiceMemcached
	ServiceHDSearch  = experiment.ServiceHDSearch
	ServiceSocialNet = experiment.ServiceSocialNet
	ServiceSynthetic = experiment.ServiceSynthetic
)

// Cluster layer (replicated backends, routing policies, autoscaling).
type (
	// AutoscalerConfig bounds and tunes a scenario's replica control
	// loop (Scenario.Autoscale).
	AutoscalerConfig = cluster.AutoscalerConfig
	// ClusterRunStats is one run's replica-set accounting, carried on
	// RunMetrics.Cluster: per-replica routed counts and queue depths,
	// the active/capacity counts, and the autoscaler's decision log.
	ClusterRunStats = cluster.RunStats
	// ReplicaStats is one replica's share of a run.
	ReplicaStats = cluster.ReplicaStats
)

// Routing policies for Scenario.Router.
const (
	// RouterRoundRobin cycles replicas in order — the balance baseline.
	RouterRoundRobin = cluster.RouterRoundRobin
	// RouterLeastOutstanding picks the replica with the fewest requests
	// in flight.
	RouterLeastOutstanding = cluster.RouterLeastOutstanding
	// RouterConsistentHash hashes the KV key over a vnode ring, so hot
	// keys pin to replicas (and skew) realistically.
	RouterConsistentHash = cluster.RouterConsistentHash
)

// DefaultAutoscaler returns the default control-loop configuration
// scaling between min and max replicas on the utilization signal.
func DefaultAutoscaler(min, max int) AutoscalerConfig {
	return cluster.DefaultAutoscalerConfig(min, max)
}

// Fault injection and client resilience (Scenario.Faults,
// Scenario.Resilience).
type (
	// FaultPlan declares a scenario's fault timeline: crash, straggler
	// and link-degradation windows as fractions of the run horizon,
	// plus optional randomly drawn crash/restart churn.
	FaultPlan = faults.Plan
	// CrashWindow takes one replica down for a window of the run.
	CrashWindow = faults.CrashWindow
	// StragglerWindow scales one replica's service time for a window.
	StragglerWindow = faults.StragglerWindow
	// LinkWindow degrades the client-server link for a window: a delay
	// multiplier and a loss probability.
	LinkWindow = faults.LinkWindow
	// RandomCrashes draws crash/restart churn from a labeled RNG
	// stream at a given rate and mean downtime.
	RandomCrashes = faults.RandomCrashes
	// ResilienceConfig arms the load generator's client resilience
	// stack: per-request timeout, bounded retries with backoff and
	// decorrelated jitter, optional hedged requests.
	ResilienceConfig = loadgen.ResilienceConfig
	// ResilienceMetrics is one run's client-resilience outcome
	// (RunMetrics.Resilience): availability, error rate, retry
	// amplification, goodput, and the raw event counters.
	ResilienceMetrics = experiment.ResilienceMetrics
)

// RunScenario executes a scenario: N independent repetitions on a freshly
// reset environment, reduced with non-parametric statistics. Repetitions
// run Scenario.Workers wide with results identical for any worker count.
func RunScenario(s Scenario) (Result, error) { return experiment.Run(s) }

// RunScenarioContext is RunScenario under a context: cancellation stops
// the repetitions, and an envpool environment carried by the context
// (see NewEnvContext) supplies the worker budget and pooled backends.
func RunScenarioContext(ctx context.Context, s Scenario) (Result, error) {
	return experiment.RunContext(ctx, s)
}

// Parallel scheduling (deterministic fan-out).
type (
	// Pool is the deterministic worker pool experiments and sweeps
	// dispatch through; its Run method fans independent jobs out over
	// goroutines with sequential-identical results, emission order and
	// error selection.
	Pool = sched.Pool
	// JobError wraps a failed job's error with the job index it failed at.
	JobError = sched.JobError
	// Budget is the global worker budget bounding total concurrency
	// across nested fan-out levels; it records a high-water mark.
	Budget = sched.Budget
	// BackendPool caches prebuilt service backends for leasing by
	// (service, server-configuration) key.
	BackendPool = envpool.Pool
)

// DefaultWorkers returns the default fan-out width: one worker per
// available CPU.
func DefaultWorkers() int { return runtime.GOMAXPROCS(0) }

// NewBudget returns a worker budget admitting n concurrent workers.
func NewBudget(n int) *Budget { return sched.NewBudget(n) }

// NewBackendPool returns an empty backend pool.
func NewBackendPool() *BackendPool { return envpool.New() }

// NewEnvContext returns a context carrying a fresh backend pool and a
// worker budget "workers" wide (0 or 1 = one worker, negative = all
// CPUs) — the standard environment for RunScenarioContext fan-out.
func NewEnvContext(parent context.Context, workers int) context.Context {
	return envpool.NewContext(parent, workers)
}

// Taxonomy, risk classification and recommendations (paper §II, Table III,
// §VI).
type (
	// GeneratorDesign places a workload generator in the paper's taxonomy
	// (loop model × pacing × point of measurement).
	GeneratorDesign = core.GeneratorDesign
	// Recommendation is client-configuration advice per §VI.
	Recommendation = core.Recommendation
	// ConclusionCheck compares a feature's measured effect under two
	// clients.
	ConclusionCheck = core.ConclusionCheck
)

// Taxonomy constants.
const (
	OpenLoop        = core.OpenLoop
	ClosedLoop      = core.ClosedLoop
	TimeSensitive   = core.TimeSensitive
	TimeInsensitive = core.TimeInsensitive
	InApp           = core.InApp
	KernelSocket    = core.KernelSocket
	NICHardware     = core.NICHardware
)

// Workload-generator building blocks, for assembling custom deployments
// beyond the paper's fixed scenarios.
type (
	// GeneratorConfig configures an open-loop generator deployment.
	GeneratorConfig = loadgen.Config
	// Generator drives a service from simulated client machines.
	Generator = loadgen.Generator
	// ClosedLoopConfig configures a finite-population (closed-loop)
	// generator.
	ClosedLoopConfig = loadgen.ClosedLoopConfig
	// ClosedLoopGenerator drives a service with blocking clients.
	ClosedLoopGenerator = loadgen.ClosedLoopGenerator
	// PayloadSource produces service-specific request payloads.
	PayloadSource = loadgen.PayloadSource
)

// ClassifyClient reports whether a client configuration is tuned (HP-like)
// or untuned (LP-like).
func ClassifyClient(cfg HWConfig) string { return core.ClassifyClient(cfg).String() }

// Recommend returns the paper's §VI configuration advice for a generator
// design.
func Recommend(design GeneratorDesign, targetKnown bool) Recommendation {
	return core.Recommend(design, targetKnown)
}

// CheckConclusions compares baseline/variant samples under two clients and
// reports whether they support conflicting conclusions (Finding 2).
func CheckConclusions(tunedBase, tunedVar, untunedBase, untunedVar []float64) (ConclusionCheck, error) {
	return core.CheckConclusions(tunedBase, tunedVar, untunedBase, untunedVar)
}

// Statistics (paper §III).
type (
	// Interval is a confidence interval.
	Interval = stats.Interval
	// ShapiroWilkResult is a normality-test outcome.
	ShapiroWilkResult = stats.ShapiroWilkResult
	// ConfirmResult is a CONFIRM repetition estimate.
	ConfirmResult = stats.ConfirmResult
)

// Median returns the sample median.
func Median(x []float64) float64 { return stats.Median(x) }

// Percentile returns the p-th percentile (p in [0,100]).
func Percentile(x []float64, p float64) float64 { return stats.Percentile(x, p) }

// NonParametricCI computes the paper's Eq. 1–2 distribution-free CI for
// the median.
func NonParametricCI(x []float64, confidence float64) (Interval, error) {
	return stats.NonParametricCI(x, confidence)
}

// ShapiroWilk tests normality (Royston's AS R94).
func ShapiroWilk(x []float64) (ShapiroWilkResult, error) { return stats.ShapiroWilk(x) }

// JainIterations estimates repetitions for a parametric CI (Eq. 3).
func JainIterations(x []float64, confidence, errPct float64) (int, error) {
	return stats.JainIterations(x, confidence, errPct)
}

// Confirm estimates repetitions with the non-parametric CONFIRM method.
func Confirm(x []float64, seed uint64) (ConfirmResult, error) {
	return stats.Confirm(x, stats.DefaultConfirmConfig(), rng.New(seed))
}

// Workload specs (declarative scenario files; see the package-doc
// section above and the schema reference on package internal/spec).
type (
	// WorkloadSpec is a parsed, validated scenario file: service,
	// client/server presets, rate sweep, replica shape, class mixes and
	// phase programs. Its Scenario method compiles it at one offered
	// rate for RunScenario.
	WorkloadSpec = spec.Spec
	// ClassSpec is one client class of a spec's traffic mix.
	ClassSpec = spec.ClassSpec
	// PhaseSpec is one phase of a spec's rate program.
	PhaseSpec = spec.PhaseSpec
)

// SpecVersion is the spec-format version this build reads (the file's
// required "version:" field).
const SpecVersion = spec.Version

// LoadSpec reads and validates a workload-spec file (YAML or JSON,
// decided by content). Errors name the offending line or field.
func LoadSpec(path string) (*WorkloadSpec, error) { return spec.Load(path) }

// ParseSpec parses and validates workload-spec bytes.
func ParseSpec(data []byte) (*WorkloadSpec, error) { return spec.Parse(data) }

// Figure regeneration (paper §V).
type (
	// SweepOptions size a figure regeneration.
	SweepOptions = figures.SweepOptions
	// Sweep holds a clients × server-variants × rates result grid.
	Sweep = figures.Sweep
)

// RunMemcachedStudy regenerates the data behind Figures 2, 3, 5a, 8, 9 and
// Table IV.
func RunMemcachedStudy(opts SweepOptions) (*Sweep, error) { return figures.RunMemcachedStudy(opts) }

// RenderFig2 renders the SMT study from a Memcached sweep.
func RenderFig2(sw *Sweep) string { return figures.Fig2(sw) }

// RenderFig3 renders the C1E study from a Memcached sweep.
func RenderFig3(sw *Sweep) string { return figures.Fig3(sw) }
