# Developer entry points. CI runs the same targets (.github/workflows/ci.yml).

# bench-json pipes `go test` into a converter; pipefail keeps a failing
# benchmark run failing the target (and the CI job) instead of being
# masked by the converter's exit status.
SHELL := /bin/bash
.SHELLFLAGS := -o pipefail -ec

GO ?= go
BENCH_JSON ?= BENCH_PR3.json

.PHONY: build test test-short race bench bench-json clean

build:
	$(GO) build ./...

test:
	$(GO) test ./...

test-short:
	$(GO) test -short ./...

race:
	$(GO) test -short -race ./...

# Full benchmark pass (slow; CI uses bench-json's smoke settings).
bench:
	$(GO) test -run '^$$' -bench . -benchmem ./...

# bench-json runs every benchmark once (smoke mode) and converts the
# stream into a machine-readable report, the perf-trajectory artifact CI
# archives per run. Override BENCHTIME/BENCH_JSON for longer local runs:
#
#	make bench-json BENCHTIME=2s BENCH_JSON=bench-local.json
BENCHTIME ?= 1x
bench-json:
	$(GO) test -run '^$$' -bench . -benchtime $(BENCHTIME) -benchmem ./... \
		| tee /dev/stderr \
		| $(GO) run ./cmd/benchjson > $(BENCH_JSON)
	@echo "wrote $(BENCH_JSON)"

clean:
	rm -f $(BENCH_JSON)
