# Developer entry points. CI runs the same targets (.github/workflows/ci.yml).

# bench-json pipes `go test` into a converter; pipefail keeps a failing
# benchmark run failing the target (and the CI job) instead of being
# masked by the converter's exit status.
SHELL := /bin/bash
.SHELLFLAGS := -o pipefail -ec

GO ?= go
BENCH_JSON ?= BENCH_PR10.json
# bench-diff compares against the last committed trajectory point.
BENCH_BASE ?= BENCH_PR9.json

.PHONY: build test test-short race bench bench-json bench-diff smoke-presets profile clean

build:
	$(GO) build ./...

test:
	$(GO) test ./...

test-short:
	$(GO) test -short ./...

race:
	$(GO) test -short -race ./...

# Full benchmark pass (slow; CI uses bench-json's smoke settings).
bench:
	$(GO) test -run '^$$' -bench . -benchmem ./...

# bench-json runs every benchmark once (smoke mode) and converts the
# stream into a machine-readable report, the perf-trajectory artifact CI
# archives per run. Override BENCHTIME/BENCH_JSON for longer local runs:
#
#	make bench-json BENCHTIME=2s BENCH_JSON=bench-local.json
BENCHTIME ?= 1x
bench-json:
	$(GO) test -run '^$$' -bench . -benchtime $(BENCHTIME) -benchmem ./... \
		| tee /dev/stderr \
		| $(GO) run ./cmd/benchjson > $(BENCH_JSON)
	@echo "wrote $(BENCH_JSON)"

# bench-diff prints per-benchmark deltas between the previous committed
# report and the current one (run `make bench-json` first to produce
# it). Report-only: regressions are flagged in the output but do not
# fail the target — smoke-mode ns/op is noisy; trust the allocs/op
# column. For a blocking local check: go run ./cmd/benchdiff -fail ...
bench-diff:
	$(GO) run ./cmd/benchdiff $(BENCH_BASE) $(BENCH_JSON)

# smoke-presets runs the large-scale sweep presets (million-qps,
# cluster, sharded, faulty-cluster, hour-long) at tiny size — 1 repetition, a few
# thousand samples — so CI proves the preset paths end to end on every commit
# without paying the full-size minutes. Full size is simply the same
# commands without the -runs/-samples overrides. The -spec lines do the
# same for the declarative workload-spec front door: a preset
# re-expressed as a spec and a phase-program spec, through both CLIs.
smoke-presets:
	$(GO) run ./cmd/repro -experiment million-qps -runs 1 -samples 2000
	$(GO) run ./cmd/repro -experiment cluster -runs 1 -samples 2000
	$(GO) run ./cmd/repro -experiment sharded -runs 1 -samples 2000
	$(GO) run ./cmd/repro -experiment hour-long -runs 1 -samples 2000
	$(GO) run ./cmd/repro -experiment faulty-cluster -runs 1 -samples 2000
	$(GO) run ./cmd/repro -spec examples/cluster.yaml -runs 1 -samples 2000
	$(GO) run ./cmd/repro -spec examples/sharded.yaml -runs 1 -samples 2000
	$(GO) run ./cmd/repro -spec examples/phases-spike.yaml -runs 1 -samples 2000
	$(GO) run ./cmd/repro -spec examples/faulty-cluster.yaml -runs 1 -samples 2000
	$(GO) run ./cmd/labsim -preset million-qps -runs 1 -samples 2000
	$(GO) run ./cmd/labsim -preset sharded -runs 1 -samples 2000
	$(GO) run ./cmd/labsim -preset cluster -runs 1 -samples 2000
	$(GO) run ./cmd/labsim -preset faulty-cluster -runs 1 -samples 2000
	$(GO) run ./cmd/labsim -spec examples/onoff-sessions.yaml -runs 1 -samples 2000
	$(GO) run ./cmd/labsim -spec examples/straggler.yaml -runs 1 -samples 2000

# profile captures CPU and allocation profiles of a reference sweep: the
# request-path benchmark, which exercises the whole hot path (engine event
# loop, loadgen state machines, netmodel delivery, service tiers, hw
# cores). How to read the output:
#
#	go tool pprof -top cpu.pprof                      # hottest functions by CPU
#	go tool pprof -top -sample_index=alloc_objects mem.pprof   # who still allocates
#	go tool pprof -http=:8080 cpu.pprof               # flame graph in a browser
#
# After the PR 4 pooling refactor the alloc profile of the typed path
# should show only per-run setup (machines, RNG splits, recorders); any
# per-request entry appearing there is a regression — cross-check with
# BenchmarkRequestPathAllocs and the sim package's zero-alloc test.
#
# Sharded runs are label-attributed: every shard worker carries the
# pprof label shard=<i> (sim/shard.go), and the cascade and mailbox
# paths are named frames (wheel.cascadeChain, ShardSet.drainInbox,
# epochBarrier.wait), so a sharded profile splits cleanly into
# barrier / mailbox / cascade / event-execution buckets:
#
#	make profile PROFILE_BENCH=BenchmarkShardedRun4
#	go tool pprof -tagfocus shard=1 cpu.pprof      # one shard's time
#	go tool pprof -focus 'cascadeChain|drainInbox|epochBarrier' -top cpu.pprof
PROFILE_BENCH ?= BenchmarkRequestPathAllocs/typed
profile:
	$(GO) test ./internal/loadgen -run '^$$' -bench '$(PROFILE_BENCH)' \
		-benchtime 3s -cpuprofile cpu.pprof -memprofile mem.pprof
	@echo "wrote cpu.pprof mem.pprof (see comments above this target for how to read them)"

clean:
	rm -f $(BENCH_JSON) cpu.pprof mem.pprof loadgen.test
