// Knob ablation: walk from the LP (default) client to the HP (tuned)
// client one hardware knob at a time — through the same sysfs / kernel
// command line / MSR interfaces the paper uses (§IV-C) — and measure each
// knob's contribution to the measurement error.
package main

import (
	"fmt"
	"log"

	"repro"
	"repro/internal/hw"
	"repro/internal/sysfs"
)

func main() {
	const rate = 100_000

	// Each step applies one tuning action through the virtual
	// configuration interfaces, starting from the LP default.
	steps := []struct {
		name  string
		apply func(fs *sysfs.FS) error
	}{
		{"LP default (baseline)", func(fs *sysfs.FS) error { return nil }},
		{"+ cap C-states at C1 (grub intel_idle.max_cstate=1)", func(fs *sysfs.FS) error {
			return fs.ApplyCmdline("intel_idle.max_cstate=1")
		}},
		{"+ performance governor (cpupower frequency-set -g performance)", func(fs *sysfs.FS) error {
			return fs.SetGovernor("performance")
		}},
		{"+ pin uncore frequency (wrmsr 0x620)", func(fs *sysfs.FS) error {
			return fs.WriteMSR(sysfs.MSRUncoreRatioLimit, 22|22<<8)
		}},
		{"+ idle=poll (grub) — full HP", func(fs *sysfs.FS) error {
			return fs.ApplyCmdline("idle=poll intel_pstate=disable")
		}},
	}

	fs, err := sysfs.New(hw.LPConfig(), 10)
	if err != nil {
		log.Fatal(err)
	}

	fmt.Printf("Memcached @ %d QPS — tuning the client one knob at a time\n\n", rate)
	fmt.Printf("%-62s %12s %12s\n", "client configuration", "avg (µs)", "p99 (µs)")

	var baseline float64
	for i, step := range steps {
		if err := step.apply(fs); err != nil {
			log.Fatal(err)
		}
		cfg := fs.Config()
		cfg.Name = fmt.Sprintf("step%d", i)
		res, err := repro.RunScenario(repro.Scenario{
			Service: repro.ServiceMemcached,
			Label:   cfg.Name,
			Client:  cfg,
			Server:  repro.ServerBaseline(),
			RateQPS: rate,
			Runs:    8,
			Seed:    9,
		})
		if err != nil {
			log.Fatal(err)
		}
		avg := res.MedianAvgUs()
		if i == 0 {
			baseline = avg
		}
		fmt.Printf("%-62s %12.1f %12.1f\n", step.name, avg, res.MedianP99Us())
		if i == len(steps)-1 {
			fmt.Printf("\ntotal measurement error removed: %.1fµs (%.0f%% of the LP reading)\n",
				baseline-avg, 100*(baseline-avg)/baseline)
		}
	}

	fmt.Println("\nfinal kernel command line:", fs.Cmdline())
	fmt.Printf("classified as: %s client\n", repro.ClassifyClient(fs.Config()))
}
