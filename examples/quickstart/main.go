// Quickstart: measure the same Memcached deployment through the paper's
// two client configurations and see Finding 1 — the client's hardware
// configuration changes the numbers you measure.
package main

import (
	"fmt"
	"log"

	"repro"
)

func main() {
	const rate = 100_000 // QPS

	run := func(name string, client repro.HWConfig) repro.Result {
		res, err := repro.RunScenario(repro.Scenario{
			Service: repro.ServiceMemcached,
			Label:   name,
			Client:  client,
			Server:  repro.ServerBaseline(),
			RateQPS: rate,
			Runs:    10,
			Seed:    42,
		})
		if err != nil {
			log.Fatal(err)
		}
		return res
	}

	fmt.Printf("Memcached @ %d QPS, identical server, two client configurations\n\n", int(rate))
	lp := run("LP", repro.LPClient())
	hp := run("HP", repro.HPClient())

	fmt.Printf("%-22s %-30s %-30s\n", "client", "avg latency (µs, 95% CI)", "p99 latency (µs, 95% CI)")
	fmt.Printf("%-22s %-30s %-30s\n", "LP (system default)", lp.AvgCI.String(), lp.P99CI.String())
	fmt.Printf("%-22s %-30s %-30s\n", "HP (tuned)", hp.AvgCI.String(), hp.P99CI.String())
	fmt.Printf("\nLP measures the same server %.0f%% slower on average.\n",
		100*(lp.MedianAvgUs()/hp.MedianAvgUs()-1))

	// What should you run? Ask the paper's §VI recommendation engine.
	mutilate := repro.GeneratorDesign{Loop: repro.OpenLoop, Pacing: repro.TimeSensitive, Point: repro.InApp}
	rec := repro.Recommend(mutilate, false)
	fmt.Printf("\nFor a %v generator the paper recommends: %s\n", repro.TimeSensitive, rec.ClientConfig)
	fmt.Printf("  rationale: %s\n", rec.Rationale)
	if rec.Caveat != "" {
		fmt.Printf("  caveat:    %s\n", rec.Caveat)
	}
}
