// Provisioning: the paper's §V-A datacenter example. A service must hold a
// 99th-percentile latency QoS of 400µs. How much load can one server
// sustain? The answer — and therefore how many machines you buy — depends
// on which client measured it.
package main

import (
	"fmt"
	"log"

	"repro"
)

const (
	qosP99Us    = 400.0
	targetLoad  = 2_000_000 // QPS the deployment must serve
	repetitions = 8
)

func main() {
	rates := []float64{100_000, 200_000, 300_000, 400_000, 500_000}

	fmt.Printf("QoS target: p99 ≤ %.0fµs. Sweeping load to find each client's verdict.\n\n", qosP99Us)
	fmt.Printf("%-10s", "QPS")
	for _, r := range rates {
		fmt.Printf("%10.0fK", r/1000)
	}
	fmt.Println()

	capacity := map[string]float64{}
	for _, clientName := range []string{"LP", "HP"} {
		client := repro.LPClient()
		if clientName == "HP" {
			client = repro.HPClient()
		}
		fmt.Printf("%-10s", clientName+" p99")
		for _, rate := range rates {
			res, err := repro.RunScenario(repro.Scenario{
				Service: repro.ServiceMemcached,
				Label:   clientName,
				Client:  client,
				Server:  repro.ServerBaseline(),
				RateQPS: rate,
				Runs:    repetitions,
				Seed:    3,
			})
			if err != nil {
				log.Fatal(err)
			}
			p99 := res.MedianP99Us()
			marker := ""
			if p99 <= qosP99Us {
				capacity[clientName] = rate
				marker = "✓"
			}
			fmt.Printf("%9.0f%1s", p99, marker)
		}
		fmt.Println()
	}

	fmt.Println()
	lpCap, hpCap := capacity["LP"], capacity["HP"]
	if lpCap == 0 || hpCap == 0 {
		fmt.Println("one of the clients found no sustainable load — tighten the sweep")
		return
	}
	lpMachines := int(float64(targetLoad)/lpCap + 0.999)
	hpMachines := int(float64(targetLoad)/hpCap + 0.999)
	fmt.Printf("LP client verdict: one server sustains %.0fK QPS → %d machines for %.1fM QPS\n",
		lpCap/1000, lpMachines, float64(targetLoad)/1e6)
	fmt.Printf("HP client verdict: one server sustains %.0fK QPS → %d machines for %.1fM QPS\n",
		hpCap/1000, hpMachines, float64(targetLoad)/1e6)
	if lpMachines != hpMachines {
		fmt.Printf("\nThe untuned client would provision %.1f× the hardware (paper §V-A: \"1.6x more machines\").\n",
			float64(lpMachines)/float64(hpMachines))
	}
}
