// SMT study: evaluate a server-side feature (enabling SMT) through both
// client configurations and watch the measured speedup depend on the
// client — the paper's Figure 2 and the heart of Finding 1.
package main

import (
	"fmt"
	"log"

	"repro"
	"repro/internal/experiment"
	"repro/internal/hw"
)

func main() {
	rates := []float64{100_000, 300_000, 500_000}
	clients := map[string]repro.HWConfig{"LP": repro.LPClient(), "HP": repro.HPClient()}
	variants := experiment.SMTVariants()

	fmt.Println("Does enabling SMT on the server help Memcached tail latency?")
	fmt.Println("Ask two different clients.")
	fmt.Println()
	fmt.Printf("%-8s %-10s %-16s %-16s %-12s %s\n",
		"client", "QPS", "p99 SMToff(µs)", "p99 SMTon(µs)", "speedup", "significant?")

	for _, clientName := range []string{"LP", "HP"} {
		for _, rate := range rates {
			var res [2]repro.Result
			for i, v := range variants {
				r, err := repro.RunScenario(repro.Scenario{
					Service: repro.ServiceMemcached,
					Label:   clientName + "-" + v.Name,
					Client:  clients[clientName],
					Server:  v.Cfg,
					RateQPS: rate,
					Runs:    12,
					Seed:    7,
				})
				if err != nil {
					log.Fatal(err)
				}
				res[i] = r
			}
			speedup := res[0].MedianP99Us() / res[1].MedianP99Us()
			sig := "CIs overlap"
			if !res[0].P99CI.Overlaps(res[1].P99CI) {
				sig = "CIs disjoint"
			}
			fmt.Printf("%-8s %-10.0f %-16.1f %-16.1f %-12.3f %s\n",
				clientName, rate, res[0].MedianP99Us(), res[1].MedianP99Us(), speedup, sig)
		}
		fmt.Println()
	}

	fmt.Println("The HP client resolves a larger SMT benefit than the LP client:")
	fmt.Println("the LP client's own overhead dilutes the server-side improvement")
	fmt.Println("(compare the paper's Figure 2d: 13% vs 3%).")

	// The ladder of knobs between LP and HP, for reference.
	fmt.Println("\nClient configurations under test:")
	for name, cfg := range clients {
		fmt.Printf("  %s: max C-state %s, %s/%s, uncore dynamic=%v\n",
			name, cfg.MaxCState, cfg.Driver, cfg.Governor, cfg.UncoreDynamic)
	}
	_ = hw.SkylakeCStates
}
