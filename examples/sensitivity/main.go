// Sensitivity: Finding 3 — the client configuration only matters when the
// service is fast. Sweep the synthetic service's processing time from
// microseconds to milliseconds and watch the LP/HP gap vanish (the paper's
// Figure 7).
package main

import (
	"fmt"
	"log"
	"time"

	"repro"
)

func main() {
	delays := []time.Duration{0, 100 * time.Microsecond, 200 * time.Microsecond, 400 * time.Microsecond, 800 * time.Microsecond}
	const rate = 10_000

	fmt.Printf("Synthetic service @ %d QPS with increasing processing time\n\n", rate)
	fmt.Printf("%-12s %-14s %-14s %-10s %s\n", "added delay", "LP avg (µs)", "HP avg (µs)", "LP/HP", "client impact")

	for _, d := range delays {
		var avg [2]float64
		for i, client := range []repro.HWConfig{repro.LPClient(), repro.HPClient()} {
			res, err := repro.RunScenario(repro.Scenario{
				Service:    repro.ServiceSynthetic,
				Label:      fmt.Sprintf("d%v", d),
				Client:     client,
				Server:     repro.ServerBaseline(),
				RateQPS:    rate,
				Runs:       8,
				SynthDelay: d,
				Seed:       5,
			})
			if err != nil {
				log.Fatal(err)
			}
			avg[i] = res.MedianAvgUs()
		}
		ratio := avg[0] / avg[1]
		verdict := "negligible"
		switch {
		case ratio > 1.5:
			verdict = "SEVERE — conclusions at risk"
		case ratio > 1.1:
			verdict = "significant"
		}
		fmt.Printf("%-12v %-14.1f %-14.1f %-10.2f %s\n", d, avg[0], avg[1], ratio, verdict)
	}

	fmt.Println("\nAs end-to-end latency approaches a millisecond the client-side")
	fmt.Println("overhead becomes statistically insignificant (paper Finding 3).")
}
