// Measurement points: §II's third taxonomy axis. The same LP client
// measures the same server three different ways depending on where the
// timestamp is taken — in the generator (every client overhead included),
// at the kernel socket (IRQ only), or in the NIC hardware (client
// invisible). NIC timestamping is the escape hatch when you must keep a
// power-managed client but need accurate latencies.
package main

import (
	"fmt"
	"log"
	"time"

	"repro/internal/core"
	"repro/internal/hw"
	"repro/internal/loadgen"
	"repro/internal/netmodel"
	"repro/internal/rng"
	"repro/internal/services"
	"repro/internal/stats"
)

func main() {
	backend, err := services.NewSynthetic(services.DefaultSyntheticConfig())
	if err != nil {
		log.Fatal(err)
	}

	measure := func(clientHW hw.Config, point core.MeasurementPoint) (avg, p99 float64) {
		g, err := loadgen.New(loadgen.Config{
			Machines:          2,
			ThreadsPerMachine: 2,
			ConnsPerThread:    10,
			RateQPS:           10_000,
			ClientHW:          clientHW,
			TimeSensitive:     true,
			Point:             point,
			Warmup:            30 * time.Millisecond,
			Net:               netmodel.DefaultConfig(),
			Payloads: func(*rng.Stream) loadgen.PayloadSource {
				return fixedPayload{}
			},
		}, backend)
		if err != nil {
			log.Fatal(err)
		}
		res, err := g.RunOnce(rng.New(99), 400*time.Millisecond)
		if err != nil {
			log.Fatal(err)
		}
		s := stats.Summarize(res.LatenciesUs)
		return s.Mean, s.P99
	}

	points := []core.MeasurementPoint{core.NICHardware, core.KernelSocket, core.InApp}
	fmt.Println("Synthetic service @ 10K QPS — one server, one LP client, three stopwatches")
	fmt.Println()
	fmt.Printf("%-16s %-14s %-14s %-14s %-14s\n", "point", "LP avg (µs)", "LP p99 (µs)", "HP avg (µs)", "HP p99 (µs)")
	for _, p := range points {
		lpAvg, lpP99 := measure(hw.LPConfig(), p)
		hpAvg, hpP99 := measure(hw.HPConfig(), p)
		fmt.Printf("%-16s %-14.1f %-14.1f %-14.1f %-14.1f\n", p, lpAvg, lpP99, hpAvg, hpP99)
	}

	fmt.Println()
	fmt.Println("At the NIC, LP and HP agree: the client's C-states, DVFS and context")
	fmt.Println("switches happen after the clock stops. In-app, the LP client's own")
	fmt.Println("hardware dominates what it reports (paper §II, 'points of measurement').")
}

type fixedPayload struct{}

func (fixedPayload) Next() (any, int) { return struct{}{}, 64 }
