package metrics

import (
	"math"
	"reflect"
	"testing"

	"repro/internal/rng"
	"repro/internal/stats"
)

// heavyTailed draws an ETC-like latency mixture: a lognormal body with a
// Pareto tail, the shape that defeats naive fixed-width histograms.
func heavyTailed(stream *rng.Stream) float64 {
	if stream.Float64() < 0.95 {
		return stream.LogNormal(3.5, 0.6)
	}
	return stream.Pareto(1.8, 80)
}

func TestExactMatchesSummarize(t *testing.T) {
	stream := rng.New(1)
	e := NewExact()
	var xs []float64
	for i := 0; i < 5_000; i++ {
		v := heavyTailed(stream)
		e.Record(v)
		xs = append(xs, v)
	}
	if !reflect.DeepEqual(e.Summary(), stats.Summarize(xs)) {
		t.Error("Exact summary differs from stats.Summarize — exact-mode byte-identity broken")
	}
	if len(e.Samples()) != len(xs) {
		t.Errorf("exact retained %d of %d samples", len(e.Samples()), len(xs))
	}
}

// TestStreamingWithinBound is the sketch-vs-exact tolerance test the
// streaming mode's documentation promises: on heavy-tailed data, P50 and
// P99 must land within the documented relative error bound of the exact
// order statistics, and the moments must agree to floating-point noise.
func TestStreamingWithinBound(t *testing.T) {
	const n = 200_000
	s, err := NewStreaming(StreamingConfig{}, rng.New(42))
	if err != nil {
		t.Fatal(err)
	}
	e := NewExact()
	stream := rng.New(7)
	for i := 0; i < n; i++ {
		v := heavyTailed(stream)
		s.Record(v)
		e.Record(v)
	}
	exact := e.Summary()
	got := s.Summary()

	if got.N != exact.N {
		t.Fatalf("N = %d, want %d", got.N, exact.N)
	}
	if relErr := math.Abs(got.Mean-exact.Mean) / exact.Mean; relErr > 1e-9 {
		t.Errorf("mean rel err %.2e (Welford should be exact)", relErr)
	}
	if relErr := math.Abs(got.StdDev-exact.StdDev) / exact.StdDev; relErr > 1e-6 {
		t.Errorf("stddev rel err %.2e", relErr)
	}
	if got.Min != exact.Min || got.Max != exact.Max {
		t.Errorf("min/max = %v/%v, want %v/%v", got.Min, got.Max, exact.Min, exact.Max)
	}

	// The sketch bound α is against floor-rank order statistics; the
	// exact summary interpolates between ranks. At n=200k adjacent order
	// statistics are within noise of each other, so α plus a little
	// slack covers both conventions.
	alpha := s.RelativeAccuracy()
	tol := alpha + 2e-3
	for _, q := range []struct {
		name       string
		got, exact float64
	}{
		{"P50", got.Median, exact.Median},
		{"P90", got.P90, exact.P90},
		{"P95", got.P95, exact.P95},
		{"P99", got.P99, exact.P99},
	} {
		if relErr := math.Abs(q.got-q.exact) / q.exact; relErr > tol {
			t.Errorf("%s = %v, exact %v (rel err %.4f > %.4f)", q.name, q.got, q.exact, relErr, tol)
		}
	}
}

func TestStreamingDeterministic(t *testing.T) {
	run := func() stats.Summary {
		s, err := NewStreaming(StreamingConfig{}, rng.New(5))
		if err != nil {
			t.Fatal(err)
		}
		stream := rng.New(9)
		for i := 0; i < 20_000; i++ {
			s.Record(heavyTailed(stream))
		}
		return s.Summary()
	}
	a, b := run(), run()
	if !reflect.DeepEqual(a, b) {
		t.Errorf("two identical streaming runs differ: %+v vs %+v", a, b)
	}
}

func TestReservoirDeterministicAndUniform(t *testing.T) {
	const k, n = 256, 50_000
	fill := func(seed uint64) []float64 {
		r := NewReservoir(k, rng.New(seed))
		for i := 0; i < n; i++ {
			r.Offer(float64(i))
		}
		if r.Seen() != n {
			t.Fatalf("seen %d, want %d", r.Seen(), n)
		}
		return append([]float64(nil), r.Samples()...)
	}
	a, b := fill(13), fill(13)
	if !reflect.DeepEqual(a, b) {
		t.Error("reservoir content differs across identical streams")
	}
	if len(a) != k {
		t.Fatalf("reservoir holds %d, want %d", len(a), k)
	}
	// Uniformity sanity: the retained mean of 0..n−1 is near (n−1)/2.
	if m := stats.Mean(a); math.Abs(m-float64(n-1)/2) > float64(n)/10 {
		t.Errorf("reservoir mean %v far from %v — not a uniform subsample", m, float64(n-1)/2)
	}
	if c := fill(14); reflect.DeepEqual(a, c) {
		t.Error("different streams picked identical reservoirs (suspicious)")
	}
}

func TestStreamingSamplesBounded(t *testing.T) {
	s, err := NewStreaming(StreamingConfig{ReservoirSize: 64}, rng.New(1))
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 10_000; i++ {
		s.Record(float64(i))
	}
	if got := len(s.Samples()); got != 64 {
		t.Errorf("retained %d samples, want 64", got)
	}
	// Reservoir disabled: no retained samples, no stream needed.
	s2, err := NewStreaming(StreamingConfig{ReservoirSize: -1}, nil)
	if err != nil {
		t.Fatal(err)
	}
	s2.Record(1)
	if s2.Samples() != nil {
		t.Error("disabled reservoir retained samples")
	}
}

func TestParseMode(t *testing.T) {
	for in, want := range map[string]Mode{"auto": SampleAuto, "": SampleAuto, "exact": SampleExact, "streaming": SampleStreaming} {
		got, err := ParseMode(in)
		if err != nil || got != want {
			t.Errorf("ParseMode(%q) = %v, %v; want %v", in, got, err, want)
		}
	}
	if _, err := ParseMode("bogus"); err == nil {
		t.Error("bogus mode accepted")
	}
	if SampleStreaming.String() != "streaming" || SampleAuto.String() != "auto" || SampleExact.String() != "exact" {
		t.Error("Mode.String mismatch with flag spelling")
	}
}

func TestExactFactoryLeavesStreamUntouched(t *testing.T) {
	// The exact factory must not consume the run stream: exact-mode
	// simulations have to stay byte-identical to the historical path.
	a, b := rng.New(21), rng.New(21)
	if _, _, err := ExactFactory(a); err != nil {
		t.Fatal(err)
	}
	if a.Uint64() != b.Uint64() {
		t.Error("ExactFactory consumed the run stream")
	}
}

// BenchmarkRecorderMemoryPerSample pins the O(1) claim at the recorder
// level: streaming allocations per recorded sample must amortize to
// (near) zero, while exact grows its retained slice.
func BenchmarkRecorderMemoryPerSample(b *testing.B) {
	b.Run("exact", func(b *testing.B) {
		b.ReportAllocs()
		e := NewExact()
		stream := rng.New(1)
		for i := 0; i < b.N; i++ {
			e.Record(heavyTailed(stream))
		}
	})
	b.Run("streaming", func(b *testing.B) {
		b.ReportAllocs()
		s, err := NewStreaming(StreamingConfig{}, rng.New(1))
		if err != nil {
			b.Fatal(err)
		}
		stream := rng.New(1)
		for i := 0; i < b.N; i++ {
			s.Record(heavyTailed(stream))
		}
	})
}

// TestStreamingMergeErrorBound pins the cross-run aggregation path: an
// aggregate built by merging per-run streaming recorders must report
// exact moments and α-bounded quantiles over the union of all runs'
// samples, with no per-run reservoirs retained.
func TestStreamingMergeErrorBound(t *testing.T) {
	const runs = 12
	agg, err := NewAggregate(0)
	if err != nil {
		t.Fatal(err)
	}
	var all []float64
	for run := 0; run < runs; run++ {
		rec, err := NewStreaming(StreamingConfig{ReservoirSize: -1}, nil)
		if err != nil {
			t.Fatal(err)
		}
		stream := rng.NewLabeled(77, "agg-run")
		for i := 0; i < 4_000; i++ {
			// Later runs are slower on average, as under a load ramp, so
			// the aggregate cannot be read off any single run.
			v := heavyTailed(stream) * (1 + 0.1*float64(run))
			rec.Record(v)
			all = append(all, v)
		}
		if err := agg.Merge(rec); err != nil {
			t.Fatal(err)
		}
	}

	sum := agg.Summary()
	exact := stats.Summarize(all)
	if sum.N != exact.N {
		t.Fatalf("merged N = %d, want %d", sum.N, exact.N)
	}
	if math.Abs(sum.Mean-exact.Mean) > 1e-9*exact.Mean {
		t.Errorf("merged mean %v, exact %v", sum.Mean, exact.Mean)
	}
	if math.Abs(sum.StdDev-exact.StdDev) > 1e-7*exact.StdDev {
		t.Errorf("merged stddev %v, exact %v", sum.StdDev, exact.StdDev)
	}
	if sum.Min != exact.Min || sum.Max != exact.Max {
		t.Errorf("merged min/max %v/%v, exact %v/%v", sum.Min, sum.Max, exact.Min, exact.Max)
	}
	alpha := agg.RelativeAccuracy()
	c := stats.Sorted(all)
	for _, q := range []struct {
		p   float64
		got float64
	}{{50, sum.Median}, {90, sum.P90}, {95, sum.P95}, {99, sum.P99}} {
		want := c[int(q.p/100*float64(len(c)-1))]
		if relErr := math.Abs(q.got-want) / want; relErr > alpha {
			t.Errorf("merged p%v: %v vs exact %v (rel err %.4f > α=%v)", q.p, q.got, want, relErr, alpha)
		}
	}

	// The aggregate kept no reservoir, and merging never invents one.
	if s := agg.Samples(); s != nil {
		t.Errorf("aggregate retained %d samples, want none", len(s))
	}

	// Mismatched accuracies must be rejected.
	other, err := NewStreaming(StreamingConfig{RelativeAccuracy: 0.05, ReservoirSize: -1}, nil)
	if err != nil {
		t.Fatal(err)
	}
	if err := agg.Merge(other); err == nil {
		t.Error("merge across different accuracies accepted")
	}
}

// TestStreamingMergeKeepsOwnReservoir pins that Merge leaves the
// receiver's reservoir untouched: Samples() keeps describing only
// directly recorded values.
func TestStreamingMergeKeepsOwnReservoir(t *testing.T) {
	rec, err := NewStreaming(StreamingConfig{ReservoirSize: 8}, rng.New(5))
	if err != nil {
		t.Fatal(err)
	}
	for i := 1; i <= 8; i++ {
		rec.Record(float64(i))
	}
	before := append([]float64(nil), rec.Samples()...)

	other, err := NewStreaming(StreamingConfig{ReservoirSize: -1}, nil)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 100; i++ {
		other.Record(1e6)
	}
	if err := rec.Merge(other); err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(rec.Samples(), before) {
		t.Errorf("merge disturbed the receiver's reservoir: %v vs %v", rec.Samples(), before)
	}
	if rec.N() != 108 {
		t.Errorf("merged N = %d, want 108", rec.N())
	}
}
