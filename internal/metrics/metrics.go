// Package metrics is the streaming measurement layer between the load
// generator and the statistics of §III: it decides what a run keeps of
// its per-request samples.
//
// The paper's methodology measures latency inside the generator (§II)
// and reduces each repetition to summary statistics (§III). Historically
// this repository retained every post-warmup sample per run and reduced
// the full slice afterwards, which caps run length and offered load at
// whatever fits in RAM. This package replaces that retain-everything
// path with a Recorder interface and two implementations:
//
//   - Exact keeps every sample and reduces with stats.Summarize — the
//     reference behaviour. Its summaries are bit-identical to the
//     historical path, which is what keeps the figure golden files
//     unchanged, and its retained samples feed the §III procedures that
//     need raw data (Shapiro–Wilk, ADF, the independence diagnostics).
//
//   - Streaming reduces online in O(1) memory per run, independent of
//     the sample count: mean/variance/min/max via Welford's algorithm
//     (exact up to floating point), and quantiles via a log-bucketed
//     fixed-relative-resolution histogram (stats.LogHistogram) whose
//     P50/P90/P95/P99 estimates are within a documented relative error
//     bound α (default 1%) of the true order statistics. A fixed-size
//     reservoir subsample, drawn deterministically from the run's
//     labeled RNG stream, stands in for the raw slice so that
//     order-insensitive distributional tests (Shapiro–Wilk normality)
//     still run at scale. The reservoir does NOT preserve arrival
//     order, so order-sensitive diagnostics (autocorrelation, turning
//     points, ADF) must not be applied to it; the repository's §III
//     independence checks operate on per-run sequences, which are
//     unaffected by the within-run reduction.
//
// Mode selects between them; SampleAuto switches to Streaming above a
// per-run sample-count threshold so small runs keep exact raw data and
// big runs keep bounded memory. Both implementations are deterministic:
// a Streaming recorder's output is a pure function of its configuration,
// the sample sequence and the stream it was built from, so experiment
// results remain byte-identical for every worker count.
package metrics

import (
	"fmt"

	"repro/internal/rng"
	"repro/internal/stats"
)

// Recorder consumes one metric's post-warmup samples and reduces them.
// Implementations are not safe for concurrent use; the simulation is
// single-threaded per run by design.
type Recorder interface {
	// Record consumes one sample.
	Record(v float64)
	// N returns the number of samples recorded.
	N() int
	// Summary reduces the recorded series.
	Summary() stats.Summary
	// Samples returns the recorder's retained raw samples: every sample
	// for Exact, a deterministic fixed-size reservoir subsample for
	// Streaming. The returned slice is owned by the recorder.
	Samples() []float64
}

// Exact retains every sample and reduces with the package stats batch
// estimators — the retain-everything reference recorder.
type Exact struct {
	xs []float64
}

// NewExact returns an empty exact recorder.
func NewExact() *Exact { return &Exact{} }

// Record appends the sample.
func (e *Exact) Record(v float64) { e.xs = append(e.xs, v) }

// N returns the sample count.
func (e *Exact) N() int { return len(e.xs) }

// Summary reduces with stats.Summarize, bit-identical to summarizing
// the retained slice directly.
func (e *Exact) Summary() stats.Summary { return stats.Summarize(e.xs) }

// Samples returns every recorded sample.
func (e *Exact) Samples() []float64 { return e.xs }

// Defaults for StreamingConfig's zero values.
const (
	// DefaultRelativeAccuracy is the default quantile error bound α:
	// P50/P90/P95/P99 are within 1% (relative) of the exact order
	// statistics.
	DefaultRelativeAccuracy = 0.01
	// DefaultReservoirSize is the default retained-subsample size —
	// enough for the §III normality and independence tests (Shapiro–Wilk
	// is applied to far smaller sets) while staying a fixed cost.
	DefaultReservoirSize = 1024
)

// StreamingConfig sizes a Streaming recorder. The zero value selects
// the package defaults.
type StreamingConfig struct {
	// RelativeAccuracy is the quantile sketch's error bound α in (0,1);
	// 0 selects DefaultRelativeAccuracy.
	RelativeAccuracy float64
	// ReservoirSize is the retained-subsample capacity; 0 selects
	// DefaultReservoirSize, negative disables the reservoir.
	ReservoirSize int
}

func (c StreamingConfig) accuracy() float64 {
	if c.RelativeAccuracy == 0 {
		return DefaultRelativeAccuracy
	}
	return c.RelativeAccuracy
}

func (c StreamingConfig) reservoir() int {
	if c.ReservoirSize == 0 {
		return DefaultReservoirSize
	}
	if c.ReservoirSize < 0 {
		return 0
	}
	return c.ReservoirSize
}

// Streaming reduces a sample stream in memory independent of its
// length: Welford moments, a log-bucketed quantile sketch, and a
// deterministic reservoir subsample.
type Streaming struct {
	mom  stats.Welford
	hist *stats.LogHistogram
	res  *Reservoir
}

// NewStreaming returns a streaming recorder. The stream seeds the
// reservoir's replacement draws; it may be nil when the reservoir is
// disabled.
func NewStreaming(cfg StreamingConfig, stream *rng.Stream) (*Streaming, error) {
	h, err := stats.NewLogHistogram(cfg.accuracy())
	if err != nil {
		return nil, err
	}
	s := &Streaming{hist: h}
	if k := cfg.reservoir(); k > 0 {
		if stream == nil {
			return nil, fmt.Errorf("metrics: streaming recorder with a reservoir needs an RNG stream")
		}
		s.res = NewReservoir(k, stream)
	}
	return s, nil
}

// Record consumes one sample.
func (s *Streaming) Record(v float64) {
	s.mom.Add(v)
	s.hist.Add(v)
	if s.res != nil {
		s.res.Offer(v)
	}
}

// N returns the sample count.
func (s *Streaming) N() int { return s.mom.N() }

// RelativeAccuracy returns the quantile error bound α the recorder's
// sketch guarantees.
func (s *Streaming) RelativeAccuracy() float64 { return s.hist.RelativeAccuracy() }

// Summary reduces the stream: N/Mean/StdDev/Min/Max are exact (up to
// floating point), Median/P90/P95/P99 are sketch estimates within the
// recorder's relative error bound, clamped to the observed [Min, Max].
func (s *Streaming) Summary() stats.Summary {
	sum := stats.Summary{
		N:      s.mom.N(),
		Mean:   s.mom.Mean(),
		StdDev: s.mom.StdDev(),
		Min:    s.mom.Min(),
		Max:    s.mom.Max(),
	}
	qs := s.hist.Quantiles(50, 90, 95, 99)
	sum.Median = s.clamp(qs[0])
	sum.P90 = s.clamp(qs[1])
	sum.P95 = s.clamp(qs[2])
	sum.P99 = s.clamp(qs[3])
	return sum
}

// clamp bounds a sketch estimate by the exactly tracked extrema, which
// only ever tightens the error.
func (s *Streaming) clamp(v float64) float64 {
	if s.mom.N() == 0 {
		return v
	}
	if v < s.mom.Min() {
		return s.mom.Min()
	}
	if v > s.mom.Max() {
		return s.mom.Max()
	}
	return v
}

// Samples returns the reservoir subsample (nil when disabled).
func (s *Streaming) Samples() []float64 {
	if s.res == nil {
		return nil
	}
	return s.res.Samples()
}

// Merge folds another streaming recorder into s, producing the
// distributional state of a recorder that consumed both streams: moments
// merge exactly (stats.Welford.Merge) and the quantile sketches merge
// bucket-for-bucket (stats.LogHistogram.Merge), so the merged Summary
// keeps the documented α error bound over the combined samples. This is
// the cross-run aggregation path: per-run recorders reduce to O(buckets)
// state that unions without retaining any per-run reservoirs.
//
// Reservoirs do NOT merge — a uniform subsample of a union cannot be
// reconstructed from two subsamples without their discarded elements, so
// s keeps its own reservoir and Samples() continues to describe only the
// samples s recorded directly. Both recorders must share the same
// relative accuracy. o is unchanged.
func (s *Streaming) Merge(o *Streaming) error {
	if err := s.hist.Merge(o.hist); err != nil {
		return err
	}
	s.mom.Merge(o.mom)
	return nil
}

// NewAggregate returns an empty reservoir-free streaming recorder with
// the given accuracy (0 selects the default) — the natural accumulator
// target for Merge when building cross-run aggregate distributions.
func NewAggregate(alpha float64) (*Streaming, error) {
	return NewStreaming(StreamingConfig{RelativeAccuracy: alpha, ReservoirSize: -1}, nil)
}

// Reservoir is a fixed-capacity uniform subsample of a stream (Vitter's
// algorithm R). Fed from a deterministic rng.Stream, its content is a
// pure function of the stream and the sample sequence, preserving the
// repository's byte-identical parallelism guarantee. Replacement
// scrambles arrival order, so the subsample supports distributional
// statistics but not order-sensitive (serial-dependence) tests.
type Reservoir struct {
	xs     []float64
	seen   int
	stream *rng.Stream
}

// NewReservoir returns an empty reservoir holding at most k samples.
func NewReservoir(k int, stream *rng.Stream) *Reservoir {
	if k < 1 {
		panic("metrics: reservoir capacity must be ≥1")
	}
	return &Reservoir{xs: make([]float64, 0, k), stream: stream}
}

// Offer consumes one sample, keeping it with probability capacity/seen.
func (r *Reservoir) Offer(v float64) {
	r.seen++
	if len(r.xs) < cap(r.xs) {
		r.xs = append(r.xs, v)
		return
	}
	if j := r.stream.Intn(r.seen); j < len(r.xs) {
		r.xs[j] = v
	}
}

// Seen returns how many samples were offered.
func (r *Reservoir) Seen() int { return r.seen }

// Samples returns the current subsample (owned by the reservoir).
func (r *Reservoir) Samples() []float64 { return r.xs }

// Mode selects a run's measurement reduction.
type Mode int

const (
	// SampleAuto selects Exact below a sample-count threshold and
	// Streaming above it (the scenario layer supplies the threshold).
	SampleAuto Mode = iota
	// SampleExact retains every sample.
	SampleExact
	// SampleStreaming reduces online in bounded memory.
	SampleStreaming
)

// String names the mode as the -samplemode flags spell it.
func (m Mode) String() string {
	switch m {
	case SampleAuto:
		return "auto"
	case SampleExact:
		return "exact"
	case SampleStreaming:
		return "streaming"
	}
	return fmt.Sprintf("Mode(%d)", int(m))
}

// ParseMode parses a -samplemode flag value.
func ParseMode(s string) (Mode, error) {
	switch s {
	case "auto", "":
		return SampleAuto, nil
	case "exact":
		return SampleExact, nil
	case "streaming":
		return SampleStreaming, nil
	}
	return SampleAuto, fmt.Errorf("metrics: unknown sample mode %q (want auto, exact or streaming)", s)
}

// Factory builds one run's recorder pair — latency and send lag — from
// the run's RNG stream. Exact factories must not consume the stream, so
// that exact-mode simulations stay byte-identical to the historical
// retain-everything path; streaming factories split it for their
// reservoirs after the run's environment has drawn its own streams.
type Factory func(stream *rng.Stream) (latency, sendLag Recorder, err error)

// ExactFactory builds retain-everything recorder pairs. It never
// touches the stream.
func ExactFactory(*rng.Stream) (Recorder, Recorder, error) {
	return NewExact(), NewExact(), nil
}

// StreamingFactory returns a Factory building streaming recorder pairs
// with the given configuration.
func StreamingFactory(cfg StreamingConfig) Factory {
	return func(stream *rng.Stream) (Recorder, Recorder, error) {
		lat, err := NewStreaming(cfg, stream.Split())
		if err != nil {
			return nil, nil, err
		}
		lag, err := NewStreaming(cfg, stream.Split())
		if err != nil {
			return nil, nil, err
		}
		return lat, lag, nil
	}
}
