package benchfmt

import (
	"encoding/json"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

const sample = `goos: linux
goarch: amd64
pkg: repro
BenchmarkScenarioRun-8   	       5	 226519042 ns/op	 8712345 B/op	   12345 allocs/op
BenchmarkSweepParallel-8 	       1	1226519042 ns/op
pkg: repro/internal/loadgen
BenchmarkRunMemoryPerSample/streaming-8         	       3	  51234567 ns/op	         2.50 retainedB/sample	  123456 B/op	     789 allocs/op
PASS
ok  	repro	12.3s
`

func TestParse(t *testing.T) {
	recs, err := Parse(strings.NewReader(sample))
	if err != nil {
		t.Fatal(err)
	}
	if len(recs) != 3 {
		t.Fatalf("parsed %d records, want 3", len(recs))
	}
	r := recs[0]
	if r.Name != "BenchmarkScenarioRun-8" || r.Package != "repro" || r.Iterations != 5 {
		t.Errorf("record 0 = %+v", r)
	}
	if r.NsPerOp != 226519042 || r.Metrics["B/op"] != 8712345 || r.Metrics["allocs/op"] != 12345 {
		t.Errorf("record 0 values = %+v", r)
	}
	if recs[1].Metrics != nil {
		t.Errorf("record 1 should have no extra metrics: %+v", recs[1])
	}
	r = recs[2]
	if r.Package != "repro/internal/loadgen" {
		t.Errorf("package context not tracked: %+v", r)
	}
	if r.Metrics["retainedB/sample"] != 2.5 {
		t.Errorf("custom metric lost: %+v", r.Metrics)
	}
	if got, want := r.Key(), "repro/internal/loadgen.BenchmarkRunMemoryPerSample/streaming-8"; got != want {
		t.Errorf("Key() = %q, want %q", got, want)
	}
}

func TestParseIgnoresGarbage(t *testing.T) {
	recs, err := Parse(strings.NewReader("BenchmarkBroken: log line\nnot a benchmark\n"))
	if err != nil {
		t.Fatal(err)
	}
	if len(recs) != 0 {
		t.Errorf("parsed %d records from garbage", len(recs))
	}
}

func TestReadFileRoundTrip(t *testing.T) {
	recs, err := Parse(strings.NewReader(sample))
	if err != nil {
		t.Fatal(err)
	}
	path := filepath.Join(t.TempDir(), "bench.json")
	data, err := json.Marshal(recs)
	if err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(path, data, 0o644); err != nil {
		t.Fatal(err)
	}
	got, err := ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != len(recs) {
		t.Fatalf("round trip lost records: %d vs %d", len(got), len(recs))
	}
	if got[0].Name != recs[0].Name || got[0].NsPerOp != recs[0].NsPerOp {
		t.Errorf("round trip mangled record 0: %+v vs %+v", got[0], recs[0])
	}
	if got[2].Metrics["retainedB/sample"] != 2.5 {
		t.Errorf("round trip lost metrics: %+v", got[2])
	}
}

func TestReadFileMissing(t *testing.T) {
	if _, err := ReadFile(filepath.Join(t.TempDir(), "nope.json")); err == nil {
		t.Fatal("missing file did not error")
	}
}
