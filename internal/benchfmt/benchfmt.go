// Package benchfmt is the shared model of the repo's benchmark
// artifacts: it parses `go test -bench` text streams into Records and
// round-trips the BENCH_*.json reports CI archives, so the producer
// (cmd/benchjson) and consumers (cmd/benchdiff) agree on one format.
package benchfmt

import (
	"bufio"
	"encoding/json"
	"fmt"
	"io"
	"os"
	"strconv"
	"strings"
)

// Record is one benchmark result.
type Record struct {
	// Name is the full benchmark name including sub-benchmark path and
	// the -N GOMAXPROCS suffix, e.g. "BenchmarkRunMemoryPerSample/streaming-8".
	Name string `json:"name"`
	// Package is the Go package the benchmark ran in, when the stream
	// included `pkg:`-style context (best effort, may be empty).
	Package string `json:"package,omitempty"`
	// Iterations is the b.N the reported averages were taken over.
	Iterations int64 `json:"iterations"`
	// NsPerOp is the reported time per operation.
	NsPerOp float64 `json:"ns_per_op"`
	// Metrics holds every additional reported value keyed by its unit,
	// e.g. "B/op", "allocs/op", "retainedB/sample".
	Metrics map[string]float64 `json:"metrics,omitempty"`
}

// Key identifies a record across reports: package-qualified name, so
// same-named benchmarks in different packages never collide.
func (r Record) Key() string {
	return r.Package + "." + r.Name
}

// Parse extracts benchmark records from a `go test -bench` stream.
// Non-benchmark lines are ignored, so the raw stream can be piped in
// unfiltered.
func Parse(r io.Reader) ([]Record, error) {
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 0, 64*1024), 1024*1024)
	records := []Record{}
	pkg := ""
	for sc.Scan() {
		line := strings.TrimSpace(sc.Text())
		if rest, ok := strings.CutPrefix(line, "pkg: "); ok {
			pkg = rest
			continue
		}
		if !strings.HasPrefix(line, "Benchmark") {
			continue
		}
		fields := strings.Fields(line)
		// Name N ns/op [value unit]...
		if len(fields) < 3 {
			continue
		}
		n, err := strconv.ParseInt(fields[1], 10, 64)
		if err != nil {
			continue // e.g. a "Benchmark...: some log line"
		}
		rec := Record{Name: fields[0], Package: pkg, Iterations: n}
		for i := 2; i+1 < len(fields); i += 2 {
			v, err := strconv.ParseFloat(fields[i], 64)
			if err != nil {
				break
			}
			unit := fields[i+1]
			if unit == "ns/op" {
				rec.NsPerOp = v
				continue
			}
			if rec.Metrics == nil {
				rec.Metrics = make(map[string]float64)
			}
			rec.Metrics[unit] = v
		}
		records = append(records, rec)
	}
	return records, sc.Err()
}

// ReadFile loads a BENCH_*.json report (the format cmd/benchjson
// writes).
func ReadFile(path string) ([]Record, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	var records []Record
	if err := json.NewDecoder(f).Decode(&records); err != nil {
		return nil, fmt.Errorf("%s: %w", path, err)
	}
	return records, nil
}
