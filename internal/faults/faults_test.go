package faults

import (
	"reflect"
	"testing"
	"time"

	"repro/internal/rng"
	"repro/internal/sim"
)

func ms(n int) sim.Time { return sim.Time(n) * sim.Time(time.Millisecond) }

// TestCompileExplicitWindows pins the fraction→absolute compilation and
// the pure schedule queries the routing layers depend on.
func TestCompileExplicitWindows(t *testing.T) {
	p := &Plan{
		Crashes:    []CrashWindow{{Replica: 1, Start: 0.25, End: 0.5}},
		Stragglers: []StragglerWindow{{Replica: 0, Start: 0.5, End: 1, Factor: 3}},
		Link:       []LinkWindow{{Start: 0, End: 0.5, DelayFactor: 2, Loss: 0.1}},
	}
	sched := p.Compile(2, ms(100), nil)
	if sched == nil {
		t.Fatal("non-empty plan compiled to nil schedule")
	}
	// Crash window [25ms, 50ms), half-open.
	for _, c := range []struct {
		at   sim.Time
		down bool
	}{{ms(0), false}, {ms(24), false}, {ms(25), true}, {ms(49), true}, {ms(50), false}} {
		if got := sched.ReplicaDown(1, c.at); got != c.down {
			t.Errorf("ReplicaDown(1, %v) = %v, want %v", c.at, got, c.down)
		}
	}
	if sched.ReplicaDown(0, ms(30)) {
		t.Error("crash window leaked onto replica 0")
	}
	if f := sched.Degrade(0).FactorAt(ms(75)); f != 3 {
		t.Errorf("straggler factor at 75ms = %g, want 3", f)
	}
	if f := sched.Degrade(0).FactorAt(ms(25)); f != 1 {
		t.Errorf("straggler factor outside window = %g, want 1", f)
	}
	if d := sched.Downtime(1); d != 25*time.Millisecond {
		t.Errorf("downtime = %v, want 25ms", d)
	}
	if n := sched.CrashCount(1); n != 1 {
		t.Errorf("crash count = %d, want 1", n)
	}
	if d := sched.StragglerTime(0); d != 50*time.Millisecond {
		t.Errorf("straggler time = %v, want 50ms", d)
	}
	link := CompileLink(p.Link, ms(100))
	if f := link.FactorAt(ms(10)); f != 2 {
		t.Errorf("link factor = %g, want 2", f)
	}
	if l := link.LossAt(ms(10)); l != 0.1 {
		t.Errorf("link loss = %g, want 0.1", l)
	}
	if l := link.LossAt(ms(60)); l != 0 {
		t.Errorf("link loss outside window = %g, want 0", l)
	}
}

// TestNilScheduleQueries pins nil-safety: a fault-free run asks the
// same questions and must get inert answers without allocating a
// schedule.
func TestNilScheduleQueries(t *testing.T) {
	var sched *Schedule
	if sched.ReplicaDown(0, ms(1)) {
		t.Error("nil schedule reports a replica down")
	}
	if sched.CrashCount(3) != 0 || sched.Downtime(3) != 0 || sched.StragglerTime(3) != 0 {
		t.Error("nil schedule reports fault accounting")
	}
	var deg *DegradeSchedule
	if deg.FactorAt(ms(1)) != 1 {
		t.Error("nil degrade schedule scales service time")
	}
	var link *LinkSchedule
	if link.FactorAt(ms(1)) != 1 || link.LossAt(ms(1)) != 0 {
		t.Error("nil link schedule degrades the link")
	}
	if (&Plan{}).Compile(4, ms(10), nil) != nil {
		t.Error("empty plan compiled to a schedule")
	}
	if CompileLink(nil, ms(10)) != nil {
		t.Error("empty link windows compiled to a schedule")
	}
}

// TestRandomCrashesDeterministic pins that randomly drawn windows are a
// pure function of the stream: same stream state, same schedule.
func TestRandomCrashesDeterministic(t *testing.T) {
	p := &Plan{RandomCrashes: &RandomCrashes{RatePerSec: 50, MeanDowntime: 2 * time.Millisecond}}
	a := p.Compile(3, ms(200), rng.New(42))
	b := p.Compile(3, ms(200), rng.New(42))
	if a == nil {
		t.Fatal("random-crash plan compiled to nil schedule")
	}
	if !reflect.DeepEqual(a, b) {
		t.Error("same stream produced different schedules")
	}
	c := p.Compile(3, ms(200), rng.New(43))
	if reflect.DeepEqual(a, c) {
		t.Error("different streams produced identical schedules (suspicious at rate 50/s)")
	}
	var crashes int
	for rep := 0; rep < 3; rep++ {
		a.EachCrash(rep, func(start, end sim.Time) {
			if start >= end || end > ms(200) {
				t.Errorf("replica %d: bad clipped window [%v, %v)", rep, start, end)
			}
			crashes++
		})
	}
	if crashes == 0 {
		t.Error("rate 50/s over 200ms × 3 replicas drew no crashes")
	}
}

// TestValidateRejects pins the plan validator's fail-fast paths.
func TestValidateRejects(t *testing.T) {
	cases := []struct {
		name string
		plan Plan
		reps int
	}{
		{"single-backend", Plan{Crashes: []CrashWindow{{Replica: 0, Start: 0, End: 1}}}, 1},
		{"bad-frac", Plan{Crashes: []CrashWindow{{Replica: 0, Start: 0.5, End: 0.2}}}, 2},
		{"frac-above-one", Plan{Crashes: []CrashWindow{{Replica: 0, Start: 0.5, End: 1.2}}}, 2},
		{"replica-range", Plan{Crashes: []CrashWindow{{Replica: 5, Start: 0.1, End: 0.2}}}, 2},
		{"straggler-factor", Plan{Stragglers: []StragglerWindow{{Replica: 0, Start: 0.1, End: 0.2, Factor: 0.5}}}, 2},
		{"link-loss", Plan{Link: []LinkWindow{{Start: 0.1, End: 0.2, Loss: 1.5}}}, 2},
		{"link-delay", Plan{Link: []LinkWindow{{Start: 0.1, End: 0.2, DelayFactor: 0.5}}}, 2},
		{"random-rate", Plan{RandomCrashes: &RandomCrashes{RatePerSec: 0, MeanDowntime: time.Millisecond}}, 2},
		{"random-downtime", Plan{RandomCrashes: &RandomCrashes{RatePerSec: 1}}, 2},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			if tc.plan.Validate(tc.reps) == nil {
				t.Error("invalid plan accepted")
			}
		})
	}
	if (&Plan{}).Validate(0) != nil {
		t.Error("empty plan rejected")
	}
	ok := Plan{
		Crashes:       []CrashWindow{{Replica: 1, Start: 0.3, End: 0.6}},
		Stragglers:    []StragglerWindow{{Replica: 0, Start: 0.1, End: 0.9, Factor: 2}},
		Link:          []LinkWindow{{Start: 0.2, End: 0.4, DelayFactor: 4, Loss: 0.05}},
		RandomCrashes: &RandomCrashes{RatePerSec: 1, MeanDowntime: time.Millisecond},
	}
	if err := ok.Validate(2); err != nil {
		t.Errorf("valid plan rejected: %v", err)
	}
}

// TestMergeOverlappingWindows pins the span coalescing: overlapping
// crash windows on one replica merge, so downtime is not double-counted
// and down/up transitions are single events.
func TestMergeOverlappingWindows(t *testing.T) {
	p := &Plan{Crashes: []CrashWindow{
		{Replica: 0, Start: 0.5, End: 0.7},
		{Replica: 0, Start: 0.1, End: 0.3},
		{Replica: 0, Start: 0.2, End: 0.6},
	}}
	sched := p.Compile(2, ms(100), nil)
	if n := sched.CrashCount(0); n != 1 {
		t.Errorf("merged crash count = %d, want 1", n)
	}
	if d := sched.Downtime(0); d != 60*time.Millisecond {
		t.Errorf("merged downtime = %v, want 60ms", d)
	}
	var got [][2]sim.Time
	sched.EachCrash(0, func(start, end sim.Time) { got = append(got, [2]sim.Time{start, end}) })
	want := [][2]sim.Time{{ms(10), ms(70)}}
	if !reflect.DeepEqual(got, want) {
		t.Errorf("merged windows = %v, want %v", got, want)
	}
}
