// Package faults is the deterministic fault-plan subsystem: it turns a
// declarative Plan — replica crash/restart windows, degraded-replica
// straggler windows, and link degradation windows — into an immutable
// per-run Schedule of virtual-clock fault events.
//
// Determinism is the design constraint. Fault windows are expressed as
// fractions of the run horizon (so the same plan scales from CI smoke
// runs to hour-long sweeps) and are compiled once at run setup, before
// the first request is sent. After compilation every question the rest
// of the stack asks — "is replica i down at t?", "what is the straggler
// factor at t?", "what is the link delay factor / loss probability at
// t?" — is a pure function over immutable sorted window lists. Nothing
// about the schedule mutates while the run executes, so the sharded
// engines can evaluate it concurrently from any shard and the answer is
// identical to the single-engine path. Randomly drawn windows
// (RandomCrashes) are drawn at compile time from a stream split off the
// run's labeled stream, so they too are fixed before execution starts
// and byte-identical at any -parallel and any -shards K.
//
// The one place faults do mutate simulation state — failing a crashed
// replica's in-flight work — happens via crash/restart events scheduled
// at setup time on the crashed replica's own engine (its own shard on
// the sharded path), so the mutation is always shard-local and ordered
// identically in both execution modes.
package faults

import (
	"fmt"
	"time"

	"repro/internal/rng"
	"repro/internal/sim"
)

// CrashWindow takes one replica dark for a window of the run: requests
// in flight on the replica fail at the window start, and requests routed
// to it during the window fail on arrival. Start and End are fractions
// of the run horizon in [0, 1].
type CrashWindow struct {
	Replica int
	Start   float64
	End     float64
}

// StragglerWindow multiplies one replica's service times by Factor for a
// window of the run (a degraded machine: thermal throttling, a noisy
// neighbor, a failing disk). Factor must be ≥ 1.
type StragglerWindow struct {
	Replica int
	Start   float64
	End     float64
	Factor  float64
}

// LinkWindow degrades the client↔server links for a window of the run:
// DelayFactor (≥ 1) multiplies the propagation delay, Loss (in [0, 1])
// drops each message independently with that probability. A zero
// DelayFactor means 1 (no delay change).
type LinkWindow struct {
	Start       float64
	End         float64
	DelayFactor float64
	Loss        float64
}

// RandomCrashes draws crash windows per run from a labeled RNG stream
// instead of listing them explicitly: crash arrivals per replica are a
// Poisson process at RatePerSec (in virtual seconds), downtimes are
// exponential with mean MeanDowntime.
type RandomCrashes struct {
	RatePerSec   float64
	MeanDowntime time.Duration
}

// Plan is the declarative fault plan carried by a scenario. The zero
// plan (or a nil *Plan) injects nothing.
type Plan struct {
	Crashes       []CrashWindow
	Stragglers    []StragglerWindow
	Link          []LinkWindow
	RandomCrashes *RandomCrashes
}

// Empty reports whether the plan injects nothing.
func (p *Plan) Empty() bool {
	return p == nil || (len(p.Crashes) == 0 && len(p.Stragglers) == 0 &&
		len(p.Link) == 0 && p.RandomCrashes == nil)
}

// MaxLoss returns the largest loss probability any link window carries.
func (p *Plan) MaxLoss() float64 {
	if p == nil {
		return 0
	}
	max := 0.0
	for _, w := range p.Link {
		if w.Loss > max {
			max = w.Loss
		}
	}
	return max
}

// HasLink reports whether the plan degrades the client↔server links.
func (p *Plan) HasLink() bool { return p != nil && len(p.Link) > 0 }

// Fingerprint returns a stable string identifying the plan's shape, for
// environment-pool keying: two scenarios may share a pooled backend only
// when their fault plans match.
func (p *Plan) Fingerprint() string {
	if p.Empty() {
		return ""
	}
	return fmt.Sprintf("%+v", *p)
}

func checkFrac(what string, start, end float64) error {
	if start < 0 || end > 1 || start >= end {
		return fmt.Errorf("faults: %s window [%g, %g] must satisfy 0 ≤ start < end ≤ 1", what, start, end)
	}
	return nil
}

// Validate checks the plan against a fleet of the given replica count.
// Fault plans require a replicated fleet: a crash on the only backend is
// a run with no service, not a resilience scenario.
func (p *Plan) Validate(replicas int) error {
	if p.Empty() {
		return nil
	}
	if replicas < 2 {
		return fmt.Errorf("faults: fault plans require a replicated fleet (replicas ≥ 2), got %d", replicas)
	}
	for _, w := range p.Crashes {
		if err := checkFrac("crash", w.Start, w.End); err != nil {
			return err
		}
		if w.Replica < 0 || w.Replica >= replicas {
			return fmt.Errorf("faults: crash replica %d out of range [0, %d)", w.Replica, replicas)
		}
	}
	for _, w := range p.Stragglers {
		if err := checkFrac("straggler", w.Start, w.End); err != nil {
			return err
		}
		if w.Replica < 0 || w.Replica >= replicas {
			return fmt.Errorf("faults: straggler replica %d out of range [0, %d)", w.Replica, replicas)
		}
		if w.Factor < 1 {
			return fmt.Errorf("faults: straggler factor %g must be ≥ 1", w.Factor)
		}
	}
	if err := ValidateLinkWindows(p.Link); err != nil {
		return err
	}
	if rc := p.RandomCrashes; rc != nil {
		if rc.RatePerSec <= 0 {
			return fmt.Errorf("faults: random crash rate %g must be > 0", rc.RatePerSec)
		}
		if rc.MeanDowntime <= 0 {
			return fmt.Errorf("faults: random crash mean downtime %v must be > 0", rc.MeanDowntime)
		}
	}
	return nil
}

// ValidateLinkWindows checks link-degradation windows on their own —
// they have no replica dependence, so the load generator validates them
// directly even without a replicated fleet.
func ValidateLinkWindows(wins []LinkWindow) error {
	for _, w := range wins {
		if err := checkFrac("link", w.Start, w.End); err != nil {
			return err
		}
		if w.DelayFactor != 0 && w.DelayFactor < 1 {
			return fmt.Errorf("faults: link delay factor %g must be ≥ 1", w.DelayFactor)
		}
		if w.Loss < 0 || w.Loss > 1 {
			return fmt.Errorf("faults: link loss %g must be in [0, 1]", w.Loss)
		}
	}
	return nil
}

// span is an absolute half-open window [start, end) on the virtual clock.
type span struct {
	start, end sim.Time
}

func (s span) contains(t sim.Time) bool { return t >= s.start && t < s.end }

// DegradeSchedule is one replica's compiled straggler windows. A nil
// schedule means factor 1 everywhere; the nil check is the entire cost
// on the fault-free path.
type DegradeSchedule struct {
	wins    []span
	factors []float64
}

// FactorAt returns the service-time multiplier at t (1 outside windows).
func (d *DegradeSchedule) FactorAt(t sim.Time) float64 {
	if d == nil {
		return 1
	}
	for i, w := range d.wins {
		if w.contains(t) {
			return d.factors[i]
		}
	}
	return 1
}

// LinkSchedule is the compiled link-degradation windows shared by every
// client↔server link of a run. A nil schedule degrades nothing.
type LinkSchedule struct {
	wins    []span
	factors []float64
	losses  []float64
}

// FactorAt returns the propagation-delay multiplier at t (≥ 1).
func (l *LinkSchedule) FactorAt(t sim.Time) float64 {
	if l == nil {
		return 1
	}
	for i, w := range l.wins {
		if w.contains(t) {
			return l.factors[i]
		}
	}
	return 1
}

// LossAt returns the per-message loss probability at t (0 outside
// windows).
func (l *LinkSchedule) LossAt(t sim.Time) float64 {
	if l == nil {
		return 0
	}
	for i, w := range l.wins {
		if w.contains(t) {
			return l.losses[i]
		}
	}
	return 0
}

// CompileLink compiles fractional link windows against a run horizon.
// Returns nil when there are no windows.
func CompileLink(wins []LinkWindow, horizon sim.Time) *LinkSchedule {
	if len(wins) == 0 {
		return nil
	}
	ls := &LinkSchedule{
		wins:    make([]span, len(wins)),
		factors: make([]float64, len(wins)),
		losses:  make([]float64, len(wins)),
	}
	for i, w := range wins {
		ls.wins[i] = fracSpan(w.Start, w.End, horizon)
		f := w.DelayFactor
		if f < 1 {
			f = 1
		}
		ls.factors[i] = f
		ls.losses[i] = w.Loss
	}
	return ls
}

func fracSpan(start, end float64, horizon sim.Time) span {
	return span{
		start: sim.Time(start * float64(horizon)),
		end:   sim.Time(end * float64(horizon)),
	}
}

// Schedule is a compiled per-run fault schedule: immutable after
// Compile, safe for concurrent reads from any shard.
type Schedule struct {
	horizon sim.Time
	crashes [][]span           // per replica, in window order
	degrade []*DegradeSchedule // per replica, nil when clean
	link    *LinkSchedule
}

// Compile resolves the plan against a run horizon and replica count.
// Randomly drawn windows consume stream (which may be nil when the plan
// has none); explicit windows consume nothing, so a plan without
// RandomCrashes compiles identically with or without a stream.
func (p *Plan) Compile(replicas int, horizon sim.Time, stream *rng.Stream) *Schedule {
	if p.Empty() {
		return nil
	}
	s := &Schedule{
		horizon: horizon,
		crashes: make([][]span, replicas),
		degrade: make([]*DegradeSchedule, replicas),
		link:    CompileLink(p.Link, horizon),
	}
	for _, w := range p.Crashes {
		s.crashes[w.Replica] = append(s.crashes[w.Replica], fracSpan(w.Start, w.End, horizon))
	}
	if rc := p.RandomCrashes; rc != nil {
		// Replica order fixes the draw order; within a replica the
		// windows come out already sorted (a renewal process).
		for r := 0; r < replicas; r++ {
			t := sim.Time(0).Add(time.Duration(stream.Exp(rc.RatePerSec) * 1e9))
			for t < horizon {
				d := time.Duration(stream.Exp(1) * float64(rc.MeanDowntime))
				end := t.Add(d)
				if end > horizon {
					end = horizon
				}
				s.crashes[r] = append(s.crashes[r], span{start: t, end: end})
				t = end.Add(time.Duration(stream.Exp(rc.RatePerSec) * 1e9))
			}
		}
	}
	for r := range s.crashes {
		s.crashes[r] = mergeSpans(s.crashes[r])
	}
	for _, w := range p.Stragglers {
		d := s.degrade[w.Replica]
		if d == nil {
			d = &DegradeSchedule{}
			s.degrade[w.Replica] = d
		}
		d.wins = append(d.wins, fracSpan(w.Start, w.End, horizon))
		d.factors = append(d.factors, w.Factor)
	}
	return s
}

// mergeSpans sorts spans by start and coalesces overlaps, so crash
// events never double-fire for a replica.
func mergeSpans(ws []span) []span {
	if len(ws) < 2 {
		return ws
	}
	// Insertion sort: window lists are tiny.
	for i := 1; i < len(ws); i++ {
		for j := i; j > 0 && ws[j].start < ws[j-1].start; j-- {
			ws[j], ws[j-1] = ws[j-1], ws[j]
		}
	}
	out := ws[:1]
	for _, w := range ws[1:] {
		last := &out[len(out)-1]
		if w.start <= last.end {
			if w.end > last.end {
				last.end = w.end
			}
			continue
		}
		out = append(out, w)
	}
	return out
}

// ReplicaDown reports whether replica i is dark at t. Pure: the routing
// layer evaluates it at the request's send instant in both execution
// modes, so single-engine and sharded runs route identically even when
// a crash boundary falls inside a link delay.
func (s *Schedule) ReplicaDown(i int, t sim.Time) bool {
	if s == nil || i < 0 || i >= len(s.crashes) {
		return false
	}
	for _, w := range s.crashes[i] {
		if w.contains(t) {
			return true
		}
		if t < w.start {
			return false
		}
	}
	return false
}

// Degrade returns replica i's straggler schedule (nil when clean).
func (s *Schedule) Degrade(i int) *DegradeSchedule {
	if s == nil || i < 0 || i >= len(s.degrade) {
		return nil
	}
	return s.degrade[i]
}

// Link returns the link-degradation schedule (nil when clean).
func (s *Schedule) Link() *LinkSchedule {
	if s == nil {
		return nil
	}
	return s.link
}

// EachCrash calls fn for every crash window of replica i, in order.
// The replica set uses it to schedule crash/restart events at setup.
func (s *Schedule) EachCrash(i int, fn func(start, end sim.Time)) {
	if s == nil || i < 0 || i >= len(s.crashes) {
		return
	}
	for _, w := range s.crashes[i] {
		fn(w.start, w.end)
	}
}

// Downtime returns replica i's total dark time over the run.
func (s *Schedule) Downtime(i int) time.Duration {
	if s == nil || i < 0 || i >= len(s.crashes) {
		return 0
	}
	var total time.Duration
	for _, w := range s.crashes[i] {
		total += w.end.Sub(w.start)
	}
	return total
}

// CrashCount returns the number of crash windows for replica i.
func (s *Schedule) CrashCount(i int) int {
	if s == nil || i < 0 || i >= len(s.crashes) {
		return 0
	}
	return len(s.crashes[i])
}

// StragglerTime returns replica i's total degraded time over the run.
func (s *Schedule) StragglerTime(i int) time.Duration {
	d := s.Degrade(i)
	if d == nil {
		return 0
	}
	var total time.Duration
	for _, w := range d.wins {
		total += w.end.Sub(w.start)
	}
	return total
}
