// Package sched is the parallel experiment scheduler: a fixed-size worker
// pool that fans a batch of independent jobs out over goroutines while
// keeping every observable output — results, emission order, the error
// returned on failure — identical to a sequential execution of the same
// batch.
//
// The determinism contract rests on a property the rest of the repository
// already provides: every run and every sweep cell draws its randomness
// from its own labeled stream (rng.NewLabeled), so a job's result is a pure
// function of its index and never of the order jobs happen to finish in.
// The scheduler preserves that purity at the collection layer:
//
//   - Results are collected into a slice indexed by job, so the caller sees
//     them in job order regardless of completion order.
//   - The optional emit callback fires in strict job order (a hold-back
//     buffer delays out-of-order completions), so progress output is
//     byte-identical to the sequential loop it replaces.
//   - On failure the error for the lowest-numbered failing job is returned.
//     Workers claim jobs in increasing index order and never abandon a
//     claimed job, so the lowest failing index is reached on every
//     schedule, making the returned error independent of timing.
//
// Cancellation of the parent context stops the pool promptly: no new jobs
// are claimed, in-flight jobs finish, and ctx.Err() is returned.
//
// When the context carries a Budget (WithBudget), every worker must hold
// one of the budget's tokens before it claims jobs, so pools at different
// nesting levels — sweep cells outside, scenario runs inside — share one
// global concurrency bound instead of multiplying. See Budget for the
// token-lending rule that keeps nesting deadlock-free. Budgeting changes
// only scheduling, never results: the determinism contract above is
// independent of which workers obtain tokens when.
package sched

import (
	"context"
	"errors"
	"fmt"
	"runtime"
	"sync"
	"sync/atomic"
)

// Pool sizes a worker pool. The zero value is ready to use and runs with
// one worker per available CPU.
type Pool struct {
	// Workers is the maximum number of jobs in flight. Zero or negative
	// selects runtime.GOMAXPROCS(0).
	Workers int
}

// Resolve normalizes a user-facing worker-count knob (Scenario.Workers,
// SweepOptions.Workers): 0 or 1 means sequential, negative means one
// worker per available CPU, anything else is taken as-is.
func Resolve(workers int) int {
	switch {
	case workers < 0:
		return runtime.GOMAXPROCS(0)
	case workers == 0:
		return 1
	}
	return workers
}

// size returns the effective worker count for a batch of n jobs.
func (p Pool) size(n int) int {
	w := p.Workers
	if w <= 0 {
		w = runtime.GOMAXPROCS(0)
	}
	if w > n {
		w = n
	}
	if w < 1 {
		w = 1
	}
	return w
}

// JobError wraps a job's failure with the index it failed at.
type JobError struct {
	Index int
	Err   error
}

func (e *JobError) Error() string { return fmt.Sprintf("job %d: %v", e.Index, e.Err) }

// Unwrap exposes the underlying error to errors.Is/As.
func (e *JobError) Unwrap() error { return e.Err }

// Unwrap strips a *JobError wrapper, returning the job's own error. Use
// it at call sites whose job errors already identify themselves (a run
// index, a sweep cell); other errors pass through unchanged.
func Unwrap(err error) error {
	var je *JobError
	if errors.As(err, &je) {
		return je.Err
	}
	return err
}

// Run executes fn(ctx, i) for every i in [0, n) across the pool and waits
// for completion. On failure it returns the lowest-indexed job's error
// wrapped in a *JobError.
func (p Pool) Run(ctx context.Context, n int, fn func(ctx context.Context, i int) error) error {
	_, err := Map(ctx, p, n, func(ctx context.Context, i int) (struct{}, error) {
		return struct{}{}, fn(ctx, i)
	})
	return err
}

// Map executes fn(ctx, i) for every i in [0, n) across the pool and
// returns the results indexed by job, identical to running the jobs in a
// sequential loop.
func Map[T any](ctx context.Context, p Pool, n int, fn func(ctx context.Context, i int) (T, error)) ([]T, error) {
	return MapWorkers(ctx, p, n,
		func(int) (struct{}, error) { return struct{}{}, nil },
		func(ctx context.Context, _ struct{}, i int) (T, error) { return fn(ctx, i) },
		nil)
}

// MapWorkers is the general form of Map: each worker goroutine builds
// private state once (lazily, before its first job) with newWorker and
// passes it to every job it executes. Use it when jobs need an expensive
// reusable environment — a preloaded backend, a generator with its client
// machines — that is not safe to share across goroutines.
//
// If emit is non-nil it is called as (i, result) in strict job order as
// completed prefixes become available; emissions stop before the first
// failed job. newWorker failures are attributed to the job the worker had
// claimed.
//
// For results to be independent of the worker count, fn must derive job
// i's output only from i and the worker state reachable deterministically
// from newWorker — the per-run labeled-stream discipline used throughout
// this repository.
func MapWorkers[W, T any](ctx context.Context, p Pool, n int,
	newWorker func(worker int) (W, error),
	fn func(ctx context.Context, st W, i int) (T, error),
	emit func(i int, v T)) ([]T, error) {

	if n <= 0 {
		return nil, ctx.Err()
	}

	budget := BudgetFrom(ctx)
	if budget != nil && holdsToken(ctx, budget) {
		// This pool is nested inside a budgeted worker's job. Lend the
		// caller's token to the workers below for as long as this batch
		// runs — the calling goroutine only blocks in wg.Wait — and take
		// it back before returning to the job.
		budget.release()
		defer budget.acquire()
	}

	ctx, cancel := context.WithCancel(ctx)
	defer cancel()

	// Jobs run with the token their worker holds; a nested pool started
	// by fn finds the marker and lends onward.
	jobCtx := ctx
	if budget != nil {
		jobCtx = withToken(ctx, budget)
	}

	results := make([]T, n)
	var (
		wg       sync.WaitGroup
		next     atomic.Int64
		mu       sync.Mutex // guards firstErr, done, nextEmit
		firstErr *JobError
		done     = make([]bool, n)
		nextEmit int
	)

	fail := func(i int, err error) {
		mu.Lock()
		if firstErr == nil || i < firstErr.Index {
			firstErr = &JobError{Index: i, Err: err}
		}
		mu.Unlock()
		cancel()
	}

	workers := p.size(n)
	if budget != nil && workers > budget.Capacity() {
		workers = budget.Capacity() // extra workers could never hold a token
	}
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(worker int) {
			defer wg.Done()
			if budget != nil {
				// The token is taken before the first claim and held for
				// the worker's lifetime, so a claimed job still always
				// executes (the invariant the error contract rests on).
				if int(next.Load()) >= n {
					return // batch already fully claimed; skip the wait
				}
				if !budget.tryAcquire(ctx) {
					return
				}
				defer budget.release()
			}
			var st W
			created := false
			for {
				// The cancellation check precedes the claim, so a claimed
				// job always executes. Workers claim indices in increasing
				// order; together these guarantee the lowest failing index
				// is reached on every schedule (see package comment).
				if ctx.Err() != nil {
					return
				}
				i := int(next.Add(1)) - 1
				if i >= n {
					return
				}
				if !created {
					var err error
					if st, err = newWorker(worker); err != nil {
						fail(i, fmt.Errorf("sched: worker init: %w", err))
						return
					}
					created = true
				}
				v, err := fn(jobCtx, st, i)
				if err != nil {
					fail(i, err)
					return
				}
				mu.Lock()
				results[i] = v
				done[i] = true
				if emit != nil {
					for nextEmit < n && done[nextEmit] {
						emit(nextEmit, results[nextEmit])
						nextEmit++
					}
				}
				mu.Unlock()
			}
		}(w)
	}
	wg.Wait()

	if firstErr != nil {
		return nil, firstErr
	}
	// With no job failure, the only way jobs were skipped is a parent
	// cancellation; report it. (Our deferred cancel has not fired yet.)
	for i := range done {
		if !done[i] {
			return nil, ctx.Err()
		}
	}
	return results, nil
}
