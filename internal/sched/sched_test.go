package sched

import (
	"context"
	"errors"
	"fmt"
	"reflect"
	"sync"
	"sync/atomic"
	"testing"
	"time"
)

func TestMapCollectsInJobOrder(t *testing.T) {
	for _, workers := range []int{1, 2, 4, 16} {
		got, err := Map(context.Background(), Pool{Workers: workers}, 100,
			func(_ context.Context, i int) (int, error) { return i * i, nil })
		if err != nil {
			t.Fatalf("workers=%d: %v", workers, err)
		}
		for i, v := range got {
			if v != i*i {
				t.Fatalf("workers=%d: result[%d] = %d, want %d", workers, i, v, i*i)
			}
		}
	}
}

func TestMapMatchesSequentialExactly(t *testing.T) {
	job := func(_ context.Context, i int) (string, error) {
		return fmt.Sprintf("job-%03d", i), nil
	}
	seq, err := Map(context.Background(), Pool{Workers: 1}, 50, job)
	if err != nil {
		t.Fatal(err)
	}
	par, err := Map(context.Background(), Pool{Workers: 8}, 50, job)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(seq, par) {
		t.Error("parallel result differs from sequential")
	}
}

func TestEmitFiresInOrder(t *testing.T) {
	var mu sync.Mutex
	var emitted []int
	_, err := MapWorkers(context.Background(), Pool{Workers: 8}, 64,
		func(int) (struct{}, error) { return struct{}{}, nil },
		func(_ context.Context, _ struct{}, i int) (int, error) {
			// Make early jobs slow so late jobs complete first.
			if i < 8 {
				time.Sleep(time.Duration(8-i) * time.Millisecond)
			}
			return i, nil
		},
		func(i int, v int) {
			mu.Lock()
			emitted = append(emitted, v)
			mu.Unlock()
		})
	if err != nil {
		t.Fatal(err)
	}
	if len(emitted) != 64 {
		t.Fatalf("emitted %d values, want 64", len(emitted))
	}
	for i, v := range emitted {
		if v != i {
			t.Fatalf("emission %d carried job %d, want strict job order", i, v)
		}
	}
}

func TestLowestFailingJobWins(t *testing.T) {
	// Jobs 7 and 23 both fail; the error must always name 7, whatever
	// the schedule, because workers claim indices in increasing order.
	for trial := 0; trial < 20; trial++ {
		for _, workers := range []int{2, 4, 8} {
			_, err := Map(context.Background(), Pool{Workers: workers}, 40,
				func(_ context.Context, i int) (int, error) {
					if i == 7 || i == 23 {
						return 0, fmt.Errorf("boom at %d", i)
					}
					return i, nil
				})
			var je *JobError
			if !errors.As(err, &je) {
				t.Fatalf("workers=%d: error %v is not a JobError", workers, err)
			}
			if je.Index != 7 {
				t.Fatalf("workers=%d trial=%d: failed at job %d, want deterministic job 7", workers, trial, je.Index)
			}
		}
	}
}

func TestErrorStopsRemainingJobs(t *testing.T) {
	var ran atomic.Int64
	_, err := Map(context.Background(), Pool{Workers: 2}, 10_000,
		func(_ context.Context, i int) (int, error) {
			ran.Add(1)
			if i == 3 {
				return 0, errors.New("fail fast")
			}
			time.Sleep(100 * time.Microsecond)
			return i, nil
		})
	if err == nil {
		t.Fatal("no error propagated")
	}
	if n := ran.Load(); n > 100 {
		t.Errorf("%d jobs ran after early failure, want prompt cancellation", n)
	}
}

func TestParentCancellation(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	var ran atomic.Int64
	done := make(chan struct{})
	var err error
	go func() {
		defer close(done)
		_, err = Map(ctx, Pool{Workers: 2}, 1_000_000,
			func(_ context.Context, i int) (int, error) {
				ran.Add(1)
				time.Sleep(50 * time.Microsecond)
				return i, nil
			})
	}()
	time.Sleep(5 * time.Millisecond)
	cancel()
	<-done
	if !errors.Is(err, context.Canceled) {
		t.Errorf("err = %v, want context.Canceled", err)
	}
	if n := ran.Load(); n >= 1_000_000 {
		t.Error("cancellation did not stop the batch")
	}
}

func TestWorkerStateIsPrivateAndReused(t *testing.T) {
	type state struct{ id, jobs int }
	var created atomic.Int64
	const workers, jobs = 4, 200
	sts := make([]*state, 0, workers)
	var mu sync.Mutex
	_, err := MapWorkers(context.Background(), Pool{Workers: workers}, jobs,
		func(w int) (*state, error) {
			created.Add(1)
			st := &state{id: w}
			mu.Lock()
			sts = append(sts, st)
			mu.Unlock()
			return st, nil
		},
		func(_ context.Context, st *state, i int) (int, error) {
			st.jobs++ // would race if state were shared between workers
			return i, nil
		}, nil)
	if err != nil {
		t.Fatal(err)
	}
	if n := created.Load(); n < 1 || n > workers {
		t.Fatalf("created %d worker states, want 1..%d", n, workers)
	}
	total := 0
	mu.Lock()
	for _, st := range sts {
		total += st.jobs
	}
	mu.Unlock()
	if total != jobs {
		t.Errorf("worker states saw %d jobs, want %d", total, jobs)
	}
}

func TestWorkerInitFailure(t *testing.T) {
	wantErr := errors.New("no backend")
	_, err := MapWorkers(context.Background(), Pool{Workers: 3}, 10,
		func(int) (struct{}, error) { return struct{}{}, wantErr },
		func(_ context.Context, _ struct{}, i int) (int, error) { return i, nil }, nil)
	if !errors.Is(err, wantErr) {
		t.Fatalf("err = %v, want wrapped %v", err, wantErr)
	}
}

func TestZeroJobs(t *testing.T) {
	got, err := Map(context.Background(), Pool{}, 0,
		func(_ context.Context, i int) (int, error) { return i, nil })
	if err != nil || len(got) != 0 {
		t.Fatalf("n=0: got %v, %v", got, err)
	}
}

func TestPoolSizing(t *testing.T) {
	cases := []struct{ workers, n, want int }{
		{0, 8, -1}, // GOMAXPROCS-dependent; just bounded below
		{3, 8, 3},
		{16, 4, 4},
		{1, 8, 1},
		{-1, 0, 1},
	}
	for _, c := range cases {
		got := Pool{Workers: c.workers}.size(c.n)
		if c.want == -1 {
			if got < 1 {
				t.Errorf("size(%d, n=%d) = %d, want ≥1", c.workers, c.n, got)
			}
			continue
		}
		if got != c.want {
			t.Errorf("size(%d, n=%d) = %d, want %d", c.workers, c.n, got, c.want)
		}
	}
}

func TestRunConvenience(t *testing.T) {
	var count atomic.Int64
	if err := (Pool{Workers: 4}).Run(context.Background(), 32, func(_ context.Context, i int) error {
		count.Add(1)
		return nil
	}); err != nil {
		t.Fatal(err)
	}
	if count.Load() != 32 {
		t.Errorf("ran %d jobs, want 32", count.Load())
	}
}

// TestRaceStress drives many concurrent jobs through shared collection
// state; it exists to give `go test -race` something to chew on and runs
// in short mode by design.
func TestRaceStress(t *testing.T) {
	for trial := 0; trial < 10; trial++ {
		var emitSum atomic.Int64
		got, err := MapWorkers(context.Background(), Pool{Workers: 8}, 500,
			func(w int) (*int, error) { v := 0; return &v, nil },
			func(_ context.Context, scratch *int, i int) (int, error) {
				*scratch += i
				return i, nil
			},
			func(_ int, v int) { emitSum.Add(int64(v)) })
		if err != nil {
			t.Fatal(err)
		}
		sum := int64(0)
		for _, v := range got {
			sum += int64(v)
		}
		const want = 500 * 499 / 2
		if sum != want || emitSum.Load() != want {
			t.Fatalf("collected %d / emitted %d, want %d", sum, emitSum.Load(), want)
		}
	}
}
