package sched

import (
	"context"
	"sync"
)

// Budget is a global worker budget: a counting semaphore shared by every
// Pool that runs under it, bounding the total number of concurrently
// executing jobs across nesting levels. A sweep dispatching cells and the
// scenarios inside those cells dispatching runs draw from one budget, so
// "-parallel N" bounds total live workers at N rather than N².
//
// Nesting never deadlocks because tokens are lent downward: a pool whose
// calling goroutine already holds a token (it is itself a budgeted worker
// executing a job) releases that token while it waits for its own batch —
// the caller only blocks in wg.Wait, doing no work — and re-acquires it
// before returning to the job. Tokens are therefore only ever held by
// goroutines actively executing leaf jobs, every one of which terminates
// and releases.
//
// The budget travels by context (WithBudget); Pools pick it up in
// MapWorkers, so call sites don't change shape. Budget also records a
// concurrency high-water mark, the instrument oversubscription regression
// tests assert on.
type Budget struct {
	cap int
	sem chan struct{}

	mu        sync.Mutex
	inUse     int
	highWater int
}

// NewBudget returns a budget admitting n concurrent workers (minimum 1).
func NewBudget(n int) *Budget {
	if n < 1 {
		n = 1
	}
	return &Budget{cap: n, sem: make(chan struct{}, n)}
}

// Capacity returns the budget's width.
func (b *Budget) Capacity() int { return b.cap }

// InUse returns the number of tokens currently held.
func (b *Budget) InUse() int {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.inUse
}

// HighWater returns the maximum number of tokens ever held at once — the
// peak concurrency observed across every pool sharing the budget.
func (b *Budget) HighWater() int {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.highWater
}

// acquire blocks until a token is available. Used for the unconditional
// re-acquire after a lend, where the caller must hold its token again
// before returning (tokens always free eventually, so this terminates).
func (b *Budget) acquire() {
	b.sem <- struct{}{}
	b.count(+1)
}

// tryAcquire blocks for a token but gives up when ctx is cancelled,
// reporting whether the token was obtained.
func (b *Budget) tryAcquire(ctx context.Context) bool {
	select {
	case b.sem <- struct{}{}:
	case <-ctx.Done():
		return false
	}
	b.count(+1)
	return true
}

// release returns a token.
func (b *Budget) release() {
	b.count(-1)
	<-b.sem
}

func (b *Budget) count(d int) {
	b.mu.Lock()
	b.inUse += d
	if b.inUse > b.highWater {
		b.highWater = b.inUse
	}
	b.mu.Unlock()
}

// Context plumbing: the budget itself, and a marker recording that the
// goroutine a context was handed to holds one of the budget's tokens
// (set by MapWorkers on the context its budgeted workers run jobs with).

type budgetCtxKey struct{}
type tokenCtxKey struct{}

// WithBudget returns a context carrying b. Every Pool launched under the
// returned context draws its worker tokens from b.
func WithBudget(ctx context.Context, b *Budget) context.Context {
	return context.WithValue(ctx, budgetCtxKey{}, b)
}

// BudgetFrom returns the budget the context carries, or nil.
func BudgetFrom(ctx context.Context) *Budget {
	b, _ := ctx.Value(budgetCtxKey{}).(*Budget)
	return b
}

// withToken marks ctx as running on a goroutine that holds one of b's
// tokens.
func withToken(ctx context.Context, b *Budget) context.Context {
	return context.WithValue(ctx, tokenCtxKey{}, b)
}

// holdsToken reports whether the goroutine ctx was handed to holds one of
// b's tokens.
func holdsToken(ctx context.Context, b *Budget) bool {
	held, _ := ctx.Value(tokenCtxKey{}).(*Budget)
	return held == b
}
