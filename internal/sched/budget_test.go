package sched

import (
	"context"
	"errors"
	"sync/atomic"
	"testing"
)

func TestBudgetCountsAndHighWater(t *testing.T) {
	b := NewBudget(2)
	if b.Capacity() != 2 {
		t.Fatalf("capacity = %d", b.Capacity())
	}
	b.acquire()
	b.acquire()
	if got := b.InUse(); got != 2 {
		t.Errorf("in use = %d, want 2", got)
	}
	b.release()
	b.release()
	if got := b.InUse(); got != 0 {
		t.Errorf("in use after release = %d, want 0", got)
	}
	if got := b.HighWater(); got != 2 {
		t.Errorf("high water = %d, want 2", got)
	}

	if NewBudget(0).Capacity() != 1 {
		t.Error("zero capacity not clamped to 1")
	}
}

func TestBudgetTryAcquireCancellation(t *testing.T) {
	b := NewBudget(1)
	b.acquire() // exhaust
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if b.tryAcquire(ctx) {
		t.Error("tryAcquire succeeded on a full budget with cancelled context")
	}
	b.release()
	if !b.tryAcquire(context.Background()) {
		t.Error("tryAcquire failed with a free token")
	}
	b.release()
}

// TestBudgetBoundsPoolConcurrency forces jobs to overlap and asserts the
// budget keeps simultaneous execution at its capacity: with 2 tokens and
// 4 jobs that each wait for a partner, exactly two run at a time.
func TestBudgetBoundsPoolConcurrency(t *testing.T) {
	b := NewBudget(2)
	ctx := WithBudget(context.Background(), b)

	var running atomic.Int64
	var maxSeen atomic.Int64
	err := Pool{Workers: 4}.Run(ctx, 8, func(ctx context.Context, i int) error {
		cur := running.Add(1)
		defer running.Add(-1)
		for {
			prev := maxSeen.Load()
			if cur <= prev || maxSeen.CompareAndSwap(prev, cur) {
				break
			}
		}
		// A little real work so schedules overlap.
		s := 0
		for i := 0; i < 50_000; i++ {
			s += i
		}
		_ = s
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	if got := maxSeen.Load(); got > 2 {
		t.Errorf("max concurrent jobs = %d, exceeds budget capacity 2", got)
	}
	if got := b.HighWater(); got > 2 {
		t.Errorf("budget high water = %d, exceeds capacity 2", got)
	}
	if got := b.InUse(); got != 0 {
		t.Errorf("tokens leaked: in use = %d", got)
	}
}

// TestBudgetNestedLending is the oversubscription core case: an outer
// pool of cells whose jobs each run an inner pool of runs, all under one
// budget. Total concurrently executing leaf jobs must never exceed the
// budget, and the nesting must not deadlock even when the budget is
// smaller than either pool's width.
func TestBudgetNestedLending(t *testing.T) {
	for _, cap := range []int{1, 2, 4} {
		b := NewBudget(cap)
		ctx := WithBudget(context.Background(), b)

		var leaves atomic.Int64
		var maxLeaves atomic.Int64
		outer := Pool{Workers: 4}
		err := outer.Run(ctx, 6, func(ctx context.Context, cell int) error {
			inner := Pool{Workers: 3}
			return inner.Run(ctx, 5, func(ctx context.Context, run int) error {
				cur := leaves.Add(1)
				defer leaves.Add(-1)
				for {
					prev := maxLeaves.Load()
					if cur <= prev || maxLeaves.CompareAndSwap(prev, cur) {
						break
					}
				}
				// A little real work so schedules overlap.
				s := 0
				for i := 0; i < 10_000; i++ {
					s += i
				}
				_ = s
				return nil
			})
		})
		if err != nil {
			t.Fatalf("cap %d: %v", cap, err)
		}
		if got := maxLeaves.Load(); got > int64(cap) {
			t.Errorf("cap %d: max concurrent leaf jobs = %d", cap, got)
		}
		if got := b.HighWater(); got > cap {
			t.Errorf("cap %d: budget high water = %d", cap, got)
		}
		if got := b.InUse(); got != 0 {
			t.Errorf("cap %d: tokens leaked: in use = %d", cap, got)
		}
	}
}

// TestBudgetPreservesResultsAndErrors pins that budgeting changes only
// scheduling: results, order and the lowest-failing-job error are the
// same with and without a budget.
func TestBudgetPreservesResultsAndErrors(t *testing.T) {
	run := func(ctx context.Context) ([]int, error) {
		return Map(ctx, Pool{Workers: 4}, 20, func(_ context.Context, i int) (int, error) {
			return i * i, nil
		})
	}
	plain, err := run(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	budgeted, err := run(WithBudget(context.Background(), NewBudget(2)))
	if err != nil {
		t.Fatal(err)
	}
	for i := range plain {
		if plain[i] != budgeted[i] {
			t.Fatalf("result %d differs: %d vs %d", i, plain[i], budgeted[i])
		}
	}

	boom := errors.New("boom")
	failAt := func(ctx context.Context) error {
		return Pool{Workers: 4}.Run(ctx, 20, func(_ context.Context, i int) error {
			if i == 7 || i == 13 {
				return boom
			}
			return nil
		})
	}
	errPlain := failAt(context.Background())
	errBudget := failAt(WithBudget(context.Background(), NewBudget(2)))
	var je *JobError
	if !errors.As(errBudget, &je) || je.Index != 7 {
		t.Errorf("budgeted error = %v, want job 7", errBudget)
	}
	if errPlain.Error() != errBudget.Error() {
		t.Errorf("budgeted error %q differs from plain %q", errBudget, errPlain)
	}
}
