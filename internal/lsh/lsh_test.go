package lsh

import (
	"fmt"
	"math"
	"testing"

	"repro/internal/rng"
)

func TestVectorOps(t *testing.T) {
	v := Vector{3, 4}
	if v.Norm() != 5 {
		t.Errorf("Norm = %v, want 5", v.Norm())
	}
	u := Vector{1, 0}
	if got := v.Dot(u); got != 3 {
		t.Errorf("Dot = %v, want 3", got)
	}
	if got := CosineSimilarity(v, v); math.Abs(got-1) > 1e-12 {
		t.Errorf("self-similarity = %v, want 1", got)
	}
	if got := CosineSimilarity(Vector{1, 0}, Vector{0, 1}); math.Abs(got) > 1e-12 {
		t.Errorf("orthogonal similarity = %v, want 0", got)
	}
	if got := CosineSimilarity(Vector{0, 0}, v); got != 0 {
		t.Errorf("zero-vector similarity = %v, want 0", got)
	}
}

func TestNewValidation(t *testing.T) {
	if _, err := New(Config{Dim: 0, Tables: 1, Bits: 8}); err == nil {
		t.Error("zero dim accepted")
	}
	if _, err := New(Config{Dim: 8, Tables: 0, Bits: 8}); err == nil {
		t.Error("zero tables accepted")
	}
	if _, err := New(Config{Dim: 8, Tables: 1, Bits: 65}); err == nil {
		t.Error("65 bits accepted")
	}
}

func TestAddDimensionMismatch(t *testing.T) {
	idx, err := New(Config{Dim: 4, Tables: 2, Bits: 8})
	if err != nil {
		t.Fatal(err)
	}
	if err := idx.Add("x", Vector{1, 2}); err == nil {
		t.Error("wrong-dimension vector accepted")
	}
}

func TestExactMatchIsTopResult(t *testing.T) {
	idx, err := New(Config{Dim: 16, Tables: 8, Bits: 10, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	data := GenerateDataset(500, 16, 5, 2)
	for i, v := range data {
		if err := idx.Add(fmt.Sprintf("v%d", i), v); err != nil {
			t.Fatal(err)
		}
	}
	// Querying with an indexed vector must return it first (it collides
	// with itself in every table).
	res, stats, err := idx.Query(data[42], 5)
	if err != nil {
		t.Fatal(err)
	}
	if len(res) == 0 || res[0].ID != "v42" {
		t.Fatalf("top result = %+v, want v42", res)
	}
	if math.Abs(res[0].Similarity-1) > 1e-9 {
		t.Errorf("self similarity = %v, want 1", res[0].Similarity)
	}
	if stats.Candidates == 0 || stats.Probes == 0 {
		t.Errorf("stats empty: %+v", stats)
	}
}

func TestResultsSortedDescending(t *testing.T) {
	idx, _ := New(Config{Dim: 8, Tables: 6, Bits: 6, Seed: 3})
	data := GenerateDataset(300, 8, 3, 4)
	for i, v := range data {
		idx.Add(fmt.Sprintf("v%d", i), v)
	}
	res, _, err := idx.Query(data[0], 10)
	if err != nil {
		t.Fatal(err)
	}
	for i := 1; i < len(res); i++ {
		if res[i].Similarity > res[i-1].Similarity {
			t.Fatalf("results not sorted: %v", res)
		}
	}
}

func TestRecallAgainstBruteForce(t *testing.T) {
	idx, _ := New(Config{Dim: 32, Tables: 16, Bits: 8, Seed: 5})
	data := GenerateDataset(2000, 32, 8, 6)
	for i, v := range data {
		idx.Add(fmt.Sprintf("v%d", i), v)
	}
	queries := GenerateDataset(20, 32, 8, 6)
	totalRecall := 0.0
	for _, q := range queries {
		approx, _, err := idx.Query(q, 10)
		if err != nil {
			t.Fatal(err)
		}
		exact, err := idx.BruteForce(q, 10)
		if err != nil {
			t.Fatal(err)
		}
		totalRecall += Recall(approx, exact)
	}
	avg := totalRecall / float64(len(queries))
	// Clustered data with 16 tables should retrieve most true neighbours.
	if avg < 0.5 {
		t.Errorf("average recall = %v, want ≥0.5", avg)
	}
}

func TestQueryErrors(t *testing.T) {
	idx, _ := New(Config{Dim: 4, Tables: 2, Bits: 4, Seed: 7})
	idx.Add("a", Vector{1, 2, 3, 4})
	if _, _, err := idx.Query(Vector{1}, 5); err == nil {
		t.Error("wrong-dimension query accepted")
	}
	if _, _, err := idx.Query(Vector{1, 2, 3, 4}, 0); err == nil {
		t.Error("k=0 accepted")
	}
	if _, err := idx.BruteForce(Vector{1}, 5); err == nil {
		t.Error("wrong-dimension brute force accepted")
	}
}

func TestQueryFewerThanK(t *testing.T) {
	idx, _ := New(Config{Dim: 4, Tables: 4, Bits: 4, Seed: 8})
	idx.Add("only", Vector{1, 0, 0, 0})
	res, _, err := idx.Query(Vector{1, 0, 0, 0}, 10)
	if err != nil {
		t.Fatal(err)
	}
	if len(res) != 1 {
		t.Errorf("got %d results, want 1", len(res))
	}
}

func TestRecallEdgeCases(t *testing.T) {
	if Recall(nil, nil) != 0 {
		t.Error("Recall with empty exact should be 0")
	}
	a := []Result{{ID: "x"}}
	if Recall(a, a) != 1 {
		t.Error("identical lists should have recall 1")
	}
}

func TestSignatureDeterministic(t *testing.T) {
	mk := func() *Index {
		idx, _ := New(Config{Dim: 8, Tables: 4, Bits: 16, Seed: 42})
		return idx
	}
	a, b := mk(), mk()
	v := GenerateDataset(1, 8, 1, 9)[0]
	for tbl := 0; tbl < 4; tbl++ {
		if a.signature(tbl, v) != b.signature(tbl, v) {
			t.Fatal("same seed produced different signatures")
		}
	}
}

func TestNearbyVectorsCollideMoreThanFarOnes(t *testing.T) {
	idx, _ := New(Config{Dim: 32, Tables: 1, Bits: 16, Seed: 10})
	stream := rng.New(11)
	base := make(Vector, 32)
	for d := range base {
		base[d] = stream.Normal(0, 1)
	}
	near := make(Vector, 32)
	far := make(Vector, 32)
	for d := range base {
		near[d] = base[d] + stream.Normal(0, 0.05)
		far[d] = stream.Normal(0, 1)
	}
	sigBase := idx.signature(0, base)
	sigNear := idx.signature(0, near)
	sigFar := idx.signature(0, far)
	hamming := func(a, b uint64) int {
		x := a ^ b
		n := 0
		for x != 0 {
			n++
			x &= x - 1
		}
		return n
	}
	if hamming(sigBase, sigNear) >= hamming(sigBase, sigFar) {
		t.Errorf("near hamming %d not smaller than far hamming %d",
			hamming(sigBase, sigNear), hamming(sigBase, sigFar))
	}
}

func TestGenerateDatasetShape(t *testing.T) {
	data := GenerateDataset(100, 16, 4, 1)
	if len(data) != 100 {
		t.Fatalf("n = %d, want 100", len(data))
	}
	for _, v := range data {
		if len(v) != 16 {
			t.Fatalf("dim = %d, want 16", len(v))
		}
	}
	// Deterministic per seed.
	again := GenerateDataset(100, 16, 4, 1)
	if again[0][0] != data[0][0] {
		t.Error("dataset generation not deterministic")
	}
}

func BenchmarkQuery(b *testing.B) {
	idx, _ := New(Config{Dim: 64, Tables: 8, Bits: 12, Seed: 1})
	data := GenerateDataset(10000, 64, 16, 2)
	for i, v := range data {
		idx.Add(fmt.Sprintf("v%d", i), v)
	}
	q := GenerateDataset(1, 64, 16, 3)[0]
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, _, err := idx.Query(q, 10); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkBruteForce(b *testing.B) {
	idx, _ := New(Config{Dim: 64, Tables: 1, Bits: 1, Seed: 1})
	data := GenerateDataset(10000, 64, 16, 2)
	for i, v := range data {
		idx.Add(fmt.Sprintf("v%d", i), v)
	}
	q := GenerateDataset(1, 64, 16, 3)[0]
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := idx.BruteForce(q, 10); err != nil {
			b.Fatal(err)
		}
	}
}
