// Package lsh implements a locality-sensitive-hash index for cosine
// similarity over dense feature vectors — the data structure at the heart
// of HDSearch, the MicroSuite image-similarity service the paper evaluates
// (§IV-B: "It uses Locality-Sensitive Hash (LSH) tables to traverse the
// search space of the problem efficiently").
//
// The index uses random-hyperplane signatures (Charikar, STOC'02): each of
// L tables hashes a vector to a B-bit signature whose bits are the signs of
// projections onto random hyperplanes; vectors with small angular distance
// collide with high probability. A query probes its bucket in every table,
// gathers candidates, and ranks them by exact cosine similarity.
package lsh

import (
	"container/heap"
	"fmt"
	"math"
	"sort"

	"repro/internal/rng"
)

// Vector is a dense feature vector.
type Vector []float64

// Dot returns the inner product of two equal-length vectors.
func (v Vector) Dot(u Vector) float64 {
	s := 0.0
	for i := range v {
		s += v[i] * u[i]
	}
	return s
}

// Norm returns the Euclidean norm.
func (v Vector) Norm() float64 { return math.Sqrt(v.Dot(v)) }

// CosineSimilarity returns v·u / (|v||u|), or 0 for zero vectors.
func CosineSimilarity(v, u Vector) float64 {
	nv, nu := v.Norm(), u.Norm()
	if nv == 0 || nu == 0 {
		return 0
	}
	return v.Dot(u) / (nv * nu)
}

// Config sizes the index.
type Config struct {
	Dim    int // vector dimensionality
	Tables int // number of hash tables (L)
	Bits   int // signature bits per table (B), ≤ 64
	Seed   uint64
}

// Index is an LSH index over cosine similarity. Build once with Add, then
// Query concurrently (Add is not safe concurrently with Query).
type Index struct {
	cfg    Config
	planes [][]Vector // [table][bit] hyperplane normals
	tables []map[uint64][]int
	data   []Vector
	ids    []string
}

// New creates an empty index.
func New(cfg Config) (*Index, error) {
	if cfg.Dim < 1 {
		return nil, fmt.Errorf("lsh: dimension must be ≥1, got %d", cfg.Dim)
	}
	if cfg.Tables < 1 || cfg.Bits < 1 || cfg.Bits > 64 {
		return nil, fmt.Errorf("lsh: need ≥1 table and 1..64 bits, got L=%d B=%d", cfg.Tables, cfg.Bits)
	}
	idx := &Index{cfg: cfg}
	stream := rng.NewLabeled(cfg.Seed, "lsh-hyperplanes")
	idx.planes = make([][]Vector, cfg.Tables)
	idx.tables = make([]map[uint64][]int, cfg.Tables)
	for t := 0; t < cfg.Tables; t++ {
		idx.planes[t] = make([]Vector, cfg.Bits)
		for b := 0; b < cfg.Bits; b++ {
			plane := make(Vector, cfg.Dim)
			for d := range plane {
				plane[d] = stream.Normal(0, 1)
			}
			idx.planes[t][b] = plane
		}
		idx.tables[t] = make(map[uint64][]int)
	}
	return idx, nil
}

// Len returns the number of indexed vectors.
func (idx *Index) Len() int { return len(idx.data) }

// signature hashes v in table t.
func (idx *Index) signature(t int, v Vector) uint64 {
	var sig uint64
	for b, plane := range idx.planes[t] {
		if plane.Dot(v) >= 0 {
			sig |= 1 << uint(b)
		}
	}
	return sig
}

// Add indexes a vector under an identifier. The vector is not copied.
func (idx *Index) Add(id string, v Vector) error {
	if len(v) != idx.cfg.Dim {
		return fmt.Errorf("lsh: vector dimension %d ≠ index dimension %d", len(v), idx.cfg.Dim)
	}
	n := len(idx.data)
	idx.data = append(idx.data, v)
	idx.ids = append(idx.ids, id)
	for t := range idx.tables {
		sig := idx.signature(t, v)
		idx.tables[t][sig] = append(idx.tables[t][sig], n)
	}
	return nil
}

// Result is one ranked neighbour.
type Result struct {
	ID         string
	Similarity float64
}

// QueryStats reports the work a query performed, which the HDSearch service
// model uses to derive a data-dependent service time.
type QueryStats struct {
	Candidates int // distinct vectors scored
	Probes     int // buckets touched
}

// Query returns the top-k indexed vectors by cosine similarity to q among
// the LSH candidates. Results are ordered most-similar first.
func (idx *Index) Query(q Vector, k int) ([]Result, QueryStats, error) {
	if len(q) != idx.cfg.Dim {
		return nil, QueryStats{}, fmt.Errorf("lsh: query dimension %d ≠ index dimension %d", len(q), idx.cfg.Dim)
	}
	if k < 1 {
		return nil, QueryStats{}, fmt.Errorf("lsh: k must be ≥1, got %d", k)
	}
	var stats QueryStats
	seen := make(map[int]struct{})
	h := &resultHeap{}
	heap.Init(h)
	for t := range idx.tables {
		sig := idx.signature(t, q)
		bucket := idx.tables[t][sig]
		if len(bucket) > 0 {
			stats.Probes++
		}
		for _, i := range bucket {
			if _, dup := seen[i]; dup {
				continue
			}
			seen[i] = struct{}{}
			sim := CosineSimilarity(q, idx.data[i])
			if h.Len() < k {
				heap.Push(h, Result{ID: idx.ids[i], Similarity: sim})
			} else if sim > (*h)[0].Similarity {
				(*h)[0] = Result{ID: idx.ids[i], Similarity: sim}
				heap.Fix(h, 0)
			}
		}
	}
	stats.Candidates = len(seen)
	out := make([]Result, h.Len())
	for i := len(out) - 1; i >= 0; i-- {
		out[i] = heap.Pop(h).(Result)
	}
	return out, stats, nil
}

// BruteForce returns the exact top-k by scanning every vector — the
// ground-truth baseline used to measure LSH recall.
func (idx *Index) BruteForce(q Vector, k int) ([]Result, error) {
	if len(q) != idx.cfg.Dim {
		return nil, fmt.Errorf("lsh: query dimension %d ≠ index dimension %d", len(q), idx.cfg.Dim)
	}
	all := make([]Result, len(idx.data))
	for i := range idx.data {
		all[i] = Result{ID: idx.ids[i], Similarity: CosineSimilarity(q, idx.data[i])}
	}
	sort.Slice(all, func(a, b int) bool { return all[a].Similarity > all[b].Similarity })
	if k > len(all) {
		k = len(all)
	}
	return all[:k], nil
}

// Recall computes |lsh ∩ exact| / |exact| for two result lists.
func Recall(lshResults, exact []Result) float64 {
	if len(exact) == 0 {
		return 0
	}
	in := make(map[string]struct{}, len(exact))
	for _, r := range exact {
		in[r.ID] = struct{}{}
	}
	hits := 0
	for _, r := range lshResults {
		if _, ok := in[r.ID]; ok {
			hits++
		}
	}
	return float64(hits) / float64(len(exact))
}

// resultHeap is a min-heap by similarity (root = weakest of the top-k).
type resultHeap []Result

func (h resultHeap) Len() int           { return len(h) }
func (h resultHeap) Less(i, j int) bool { return h[i].Similarity < h[j].Similarity }
func (h resultHeap) Swap(i, j int)      { h[i], h[j] = h[j], h[i] }
func (h *resultHeap) Push(x any)        { *h = append(*h, x.(Result)) }
func (h *resultHeap) Pop() any          { old := *h; n := len(old); r := old[n-1]; *h = old[:n-1]; return r }

// GenerateDataset creates n random unit-ish vectors for tests, benchmarks,
// and the HDSearch service model, clustered so LSH has structure to find:
// vectors are drawn around `clusters` random centroids.
func GenerateDataset(n, dim, clusters int, seed uint64) []Vector {
	stream := rng.NewLabeled(seed, "lsh-dataset")
	if clusters < 1 {
		clusters = 1
	}
	centroids := make([]Vector, clusters)
	for c := range centroids {
		centroids[c] = make(Vector, dim)
		for d := range centroids[c] {
			centroids[c][d] = stream.Normal(0, 1)
		}
	}
	out := make([]Vector, n)
	for i := range out {
		c := centroids[stream.Intn(clusters)]
		v := make(Vector, dim)
		for d := range v {
			v[d] = c[d] + stream.Normal(0, 0.3)
		}
		out[i] = v
	}
	return out
}
