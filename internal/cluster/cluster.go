// Package cluster models a replicated backend fleet behind a load
// balancer — the paper's single client/server pair extended toward the
// "millions of users" regime of the ROADMAP north-star. A ReplicaSet
// holds N replicas of a backend (per-replica queues, stores and
// machines; Memcached replicas fork the shared preload snapshot, so N
// replicas cost near nothing extra), a Router policy picks the replica
// per request, and an optional Autoscaler adds or removes replicas from
// signals sampled on the virtual clock.
//
// Determinism is preserved end to end: the ReplicaSet consumes its run
// stream so that replica 0 sees exactly the draws an unwrapped backend
// would (a one-replica cluster is byte-identical to the legacy
// single-backend path), replicas 1..N−1 and the router/autoscaler split
// their own streams afterwards, and all routing state is run-scoped.
package cluster

import (
	"fmt"
	"time"

	"repro/internal/hw"
	"repro/internal/rng"
	"repro/internal/services"
	"repro/internal/sim"
)

// ReplicaSet is a replicated backend: it implements services.Backend by
// routing each arriving request to one of its replicas and observing the
// completion (via the request's completion hook) to settle per-replica
// outstanding counts. All replicas are built up front; the autoscaler
// only changes how many are in rotation.
type ReplicaSet struct {
	replicas []services.Backend
	machines []*hw.Machine
	router   Router
	initial  int // active count at the start of every run
	active   int

	autoCfg *AutoscalerConfig
	auto    *autoscaler

	engine *sim.Engine
	end    sim.Time

	// Run-scoped accounting, SoA: parallel flat arrays indexed by
	// replica id, so routing picks and autoscaler scans touch contiguous
	// words instead of N pointer-chased replica structs. outstanding is
	// settled by the completion hook; routed is the router's
	// offered-load split (unlike the tiers' Completed counters it is not
	// polluted by background hiccups).
	outstanding []int
	routed      []uint64
	// occ caches each replica's OccupancyProvider so the autoscaler tick
	// neither type-asserts nor allocates (TierStats builds a slice per
	// call); nil for backends without the interface.
	occ      []services.OccupancyProvider
	residSum time.Duration // server residence since the last tick
	residCnt int
	scaleLog []ScaleEvent
}

// New builds a ReplicaSet over the given replicas. replicas[0] is the
// primary (its configuration accessors stand in for the set); initial is
// the active count at the start of each run. With an autoscaler config,
// len(replicas) must equal cfg.Max and initial must lie within its
// bounds.
func New(replicas []services.Backend, initial int, router Router, auto *AutoscalerConfig) (*ReplicaSet, error) {
	if len(replicas) == 0 {
		return nil, fmt.Errorf("cluster: need ≥1 replica")
	}
	if router == nil {
		return nil, fmt.Errorf("cluster: router is required")
	}
	if initial < 1 || initial > len(replicas) {
		return nil, fmt.Errorf("cluster: initial active count %d outside [1, %d]", initial, len(replicas))
	}
	rs := &ReplicaSet{
		replicas:    replicas,
		router:      router,
		initial:     initial,
		active:      initial,
		outstanding: make([]int, len(replicas)),
		routed:      make([]uint64, len(replicas)),
		occ:         make([]services.OccupancyProvider, len(replicas)),
	}
	for i, b := range replicas {
		if prov, ok := b.(services.OccupancyProvider); ok {
			rs.occ[i] = prov
		}
	}
	if auto != nil {
		if err := auto.Validate(); err != nil {
			return nil, err
		}
		if auto.Max != len(replicas) {
			return nil, fmt.Errorf("cluster: autoscaler max %d must equal replica capacity %d", auto.Max, len(replicas))
		}
		if initial < auto.Min || initial > auto.Max {
			return nil, fmt.Errorf("cluster: initial active count %d outside autoscaler bounds [%d, %d]", initial, auto.Min, auto.Max)
		}
		cfg := *auto
		rs.autoCfg = &cfg
		rs.auto = newAutoscaler(cfg, len(replicas))
	}
	for _, b := range replicas {
		rs.machines = append(rs.machines, b.Machines()...)
	}
	return rs, nil
}

// Primary returns replica 0 — the instance whose workload accessors
// (ETC config, query datasets) describe the whole set, since replicas
// are built identically.
func (rs *ReplicaSet) Primary() services.Backend { return rs.replicas[0] }

// Capacity returns the number of built replicas.
func (rs *ReplicaSet) Capacity() int { return len(rs.replicas) }

// Active returns the replica count currently in rotation.
func (rs *ReplicaSet) Active() int { return rs.active }

// Router returns the routing policy.
func (rs *ReplicaSet) Router() Router { return rs.router }

// Name implements services.Backend.
func (rs *ReplicaSet) Name() string {
	return fmt.Sprintf("%s×%d", rs.replicas[0].Name(), len(rs.replicas))
}

// Machines implements services.Backend: the union over all replicas,
// primary first, so a one-replica set resets exactly the machines the
// unwrapped backend would.
func (rs *ReplicaSet) Machines() []*hw.Machine { return rs.machines }

// MeanServiceTime implements services.Backend (replicas are identical).
func (rs *ReplicaSet) MeanServiceTime() float64 { return rs.replicas[0].MeanServiceTime() }

// ResetRun implements services.Backend. Replica 0 consumes the stream
// exactly as an unwrapped backend would — the single-replica
// byte-identity guarantee — and every other consumer splits afterwards.
func (rs *ReplicaSet) ResetRun(engine *sim.Engine, stream *rng.Stream) {
	rs.engine = engine
	rs.replicas[0].ResetRun(engine, stream)
	for _, b := range rs.replicas[1:] {
		b.ResetRun(engine, stream.Split())
	}
	rs.router.Reset(stream.Split())
	rs.active = rs.initial
	rs.router.Resize(rs.active)
	if rs.auto != nil {
		rs.auto.reset()
	}
	for i := range rs.outstanding {
		rs.outstanding[i] = 0
		rs.routed[i] = 0
	}
	rs.residSum, rs.residCnt = 0, 0
	rs.scaleLog = rs.scaleLog[:0]
}

// StartRun implements services.Backend: background activity starts on
// every replica (standbys stay warm), and the autoscaler's first tick is
// armed.
func (rs *ReplicaSet) StartRun(end sim.Time) {
	rs.end = end
	for _, b := range rs.replicas {
		b.StartRun(end)
	}
	if rs.auto != nil {
		rs.scheduleTick(sim.Time(0).Add(rs.autoCfg.Interval))
	}
}

// ShardPartitions implements the loadgen sharded-backend extension: one
// partition per built replica.
func (rs *ReplicaSet) ShardPartitions() int { return len(rs.replicas) }

// ResetRunSharded is ResetRun with one engine per shard: replica i runs
// on engines[shardOf[i]]. It consumes stream draw-for-draw like ResetRun
// (replica 0 unsplit, then per-replica splits, then the router's), which
// is what keeps a sharded run byte-identical to the single-engine run.
// Configurations whose routing or scaling cannot run partitioned are
// rejected: the autoscaler is a global control loop, and only routing
// policies that are pure functions of the request over run-frozen state
// (consistent hashing) may be consulted concurrently from many shards.
func (rs *ReplicaSet) ResetRunSharded(engines []*sim.Engine, shardOf []int, stream *rng.Stream) error {
	if rs.auto != nil {
		return fmt.Errorf("cluster: autoscaling is not supported on the sharded path (its control loop is global)")
	}
	if rs.router.Name() != RouterConsistentHash {
		return fmt.Errorf("cluster: router %q cannot run sharded (stateful pick); use %s", rs.router.Name(), RouterConsistentHash)
	}
	if len(shardOf) != len(rs.replicas) {
		return fmt.Errorf("cluster: shard map covers %d replicas, have %d", len(shardOf), len(rs.replicas))
	}
	rs.engine = engines[shardOf[0]]
	rs.replicas[0].ResetRun(engines[shardOf[0]], stream)
	for i, b := range rs.replicas[1:] {
		b.ResetRun(engines[shardOf[i+1]], stream.Split())
	}
	rs.router.Reset(stream.Split())
	rs.active = rs.initial
	rs.router.Resize(rs.active)
	for i := range rs.outstanding {
		rs.outstanding[i] = 0
		rs.routed[i] = 0
	}
	rs.residSum, rs.residCnt = 0, 0
	rs.scaleLog = rs.scaleLog[:0]
	return nil
}

// ShardRoute picks req's replica at send time (sharded path). It is
// called concurrently from client shards: after ResetRunSharded the
// consistent-hash ring is frozen for the run, so Pick reads only
// immutable state. Per-replica outstanding counts are not maintained on
// this path (no policy or control loop reads them).
func (rs *ReplicaSet) ShardRoute(req *services.Request) int {
	i := rs.router.Pick(req, rs.outstanding[:rs.active])
	req.Replica = i
	return i
}

// ArriveRouted delivers a request ShardRoute already placed; it runs on
// the serving replica's shard, where the routed counter and the replica
// itself live.
func (rs *ReplicaSet) ArriveRouted(req *services.Request, now sim.Time) {
	rs.routed[req.Replica]++
	rs.replicas[req.Replica].Arrive(req, now)
}

// Arrive implements services.Backend: route, account, forward.
func (rs *ReplicaSet) Arrive(req *services.Request, now sim.Time) {
	i := rs.router.Pick(req, rs.outstanding[:rs.active])
	req.Replica = i
	req.SetCompletionHook(rs)
	rs.outstanding[i]++
	rs.routed[i]++
	rs.replicas[i].Arrive(req, now)
}

// RequestDone implements services.CompletionHook: settle the replica's
// outstanding count and feed the latency signal. The hook fires before
// the generator's sink recycles the request.
func (rs *ReplicaSet) RequestDone(req *services.Request, departed sim.Time) {
	rs.outstanding[req.Replica]--
	rs.residSum += departed.Sub(req.ServerArrive)
	rs.residCnt++
}

// takeResidence drains the residence accumulator (latency signal).
func (rs *ReplicaSet) takeResidence() (time.Duration, int) {
	sum, n := rs.residSum, rs.residCnt
	rs.residSum, rs.residCnt = 0, 0
	return sum, n
}

// scheduleTick arms the next autoscaler sample.
func (rs *ReplicaSet) scheduleTick(at sim.Time) {
	if at > rs.end {
		return
	}
	rs.engine.AtSink(at, rs, sim.EventArg{})
}

// OnEvent implements sim.EventSink: the autoscaler tick.
func (rs *ReplicaSet) OnEvent(now sim.Time, _ sim.EventArg) {
	signal := rs.auto.sample(rs)
	if next := rs.auto.decide(now, rs.active, signal); next != rs.active {
		rs.active = next
		rs.router.Resize(next)
		rs.scaleLog = append(rs.scaleLog, ScaleEvent{At: now, Replicas: next, Signal: signal})
	}
	rs.scheduleTick(now.Add(rs.autoCfg.Interval))
}

// ReplicaStats is one replica's end-of-run accounting.
type ReplicaStats struct {
	// Routed counts requests the router sent to this replica.
	Routed uint64
	// Completed sums the replica's tier completions (includes background
	// hiccup jobs, unlike Routed).
	Completed uint64
	// MaxSharedQueue / MaxConnQueue are the deepest shared-FIFO and
	// per-connection affinity backlogs across the replica's tiers.
	MaxSharedQueue int
	MaxConnQueue   int
	// BusyTime is the replica's total worker occupancy.
	BusyTime time.Duration
}

// RunStats is a ReplicaSet's end-of-run snapshot.
type RunStats struct {
	// Router is the policy name.
	Router string
	// Active is the replica count in rotation at the end of the run;
	// Capacity is the built count.
	Active, Capacity int
	// Replicas holds per-replica accounting, index = replica.
	Replicas []ReplicaStats
	// ScaleEvents is the autoscaler's decision log (nil without one).
	ScaleEvents []ScaleEvent
}

// Stats snapshots the run's cluster accounting. Call after the run
// completes and before the next ResetRun.
func (rs *ReplicaSet) Stats() RunStats {
	st := RunStats{
		Router:   rs.router.Name(),
		Active:   rs.active,
		Capacity: len(rs.replicas),
		Replicas: make([]ReplicaStats, len(rs.replicas)),
	}
	for i, b := range rs.replicas {
		r := ReplicaStats{Routed: rs.routed[i]}
		if prov, ok := b.(services.TierStatsProvider); ok {
			for _, ts := range prov.TierStats() {
				r.Completed += ts.Completed
				if ts.MaxSharedQueue > r.MaxSharedQueue {
					r.MaxSharedQueue = ts.MaxSharedQueue
				}
				if ts.MaxConnQueue > r.MaxConnQueue {
					r.MaxConnQueue = ts.MaxConnQueue
				}
				r.BusyTime += ts.BusyTime
			}
		}
		st.Replicas[i] = r
	}
	if len(rs.scaleLog) > 0 {
		st.ScaleEvents = append([]ScaleEvent(nil), rs.scaleLog...)
	}
	return st
}

// Skew is the load-balance skew over the replicas that served traffic:
// the maximum routed count divided by the mean. 1.0 is perfect balance;
// consistent hashing under a Zipfian key popularity drives it well
// above the round-robin baseline.
//
// Participation is defined by Routed > 0, not by the final Active
// count: under an autoscaler a replica can be in rotation mid-run and
// out of it by run end, and truncating to the final Active prefix would
// silently drop exactly the replicas a scale-up-then-down run routed
// load to (and, with them, the imbalance they absorbed).
func (s RunStats) Skew() float64 {
	var sum, max uint64
	n := 0
	for _, r := range s.Replicas {
		if r.Routed == 0 {
			continue
		}
		n++
		sum += r.Routed
		if r.Routed > max {
			max = r.Routed
		}
	}
	if sum == 0 {
		return 0
	}
	return float64(max) * float64(n) / float64(sum)
}
