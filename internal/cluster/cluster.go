// Package cluster models a replicated backend fleet behind a load
// balancer — the paper's single client/server pair extended toward the
// "millions of users" regime of the ROADMAP north-star. A ReplicaSet
// holds N replicas of a backend (per-replica queues, stores and
// machines; Memcached replicas fork the shared preload snapshot, so N
// replicas cost near nothing extra), a Router policy picks the replica
// per request, and an optional Autoscaler adds or removes replicas from
// signals sampled on the virtual clock.
//
// Determinism is preserved end to end: the ReplicaSet consumes its run
// stream so that replica 0 sees exactly the draws an unwrapped backend
// would (a one-replica cluster is byte-identical to the legacy
// single-backend path), replicas 1..N−1 and the router/autoscaler split
// their own streams afterwards, and all routing state is run-scoped.
package cluster

import (
	"fmt"
	"time"

	"repro/internal/faults"
	"repro/internal/hw"
	"repro/internal/rng"
	"repro/internal/services"
	"repro/internal/sim"
)

// ReplicaSet is a replicated backend: it implements services.Backend by
// routing each arriving request to one of its replicas and observing the
// completion (via the request's completion hook) to settle per-replica
// outstanding counts. All replicas are built up front; the autoscaler
// only changes how many are in rotation.
type ReplicaSet struct {
	replicas []services.Backend
	machines []*hw.Machine
	router   Router
	initial  int // active count at the start of every run
	active   int

	autoCfg *AutoscalerConfig
	auto    *autoscaler

	engine *sim.Engine
	end    sim.Time

	// Fault-injection state. plan is installed at build time; sched is
	// the per-run compiled schedule (nil on the fault-free path — every
	// hot-path check is a single nil compare). faultStream feeds
	// randomly drawn windows, split off the run stream at reset;
	// engines[i] is replica i's engine (all the same engine on the
	// single-engine path), where its crash/restart events fire.
	plan        *faults.Plan
	sched       *faults.Schedule
	faultStream *rng.Stream
	engines     []*sim.Engine

	// Run-scoped accounting, SoA: parallel flat arrays indexed by
	// replica id, so routing picks and autoscaler scans touch contiguous
	// words instead of N pointer-chased replica structs. outstanding is
	// settled by the completion hook; routed is the router's
	// offered-load split (unlike the tiers' Completed counters it is not
	// polluted by background hiccups).
	outstanding []int
	routed      []uint64
	// occ caches each replica's OccupancyProvider so the autoscaler tick
	// neither type-asserts nor allocates (TierStats builds a slice per
	// call); nil for backends without the interface.
	occ      []services.OccupancyProvider
	residSum time.Duration // server residence since the last tick
	residCnt int
	scaleLog []ScaleEvent
}

// New builds a ReplicaSet over the given replicas. replicas[0] is the
// primary (its configuration accessors stand in for the set); initial is
// the active count at the start of each run. With an autoscaler config,
// len(replicas) must equal cfg.Max and initial must lie within its
// bounds.
func New(replicas []services.Backend, initial int, router Router, auto *AutoscalerConfig) (*ReplicaSet, error) {
	if len(replicas) == 0 {
		return nil, fmt.Errorf("cluster: need ≥1 replica")
	}
	if router == nil {
		return nil, fmt.Errorf("cluster: router is required")
	}
	if initial < 1 || initial > len(replicas) {
		return nil, fmt.Errorf("cluster: initial active count %d outside [1, %d]", initial, len(replicas))
	}
	rs := &ReplicaSet{
		replicas:    replicas,
		router:      router,
		initial:     initial,
		active:      initial,
		outstanding: make([]int, len(replicas)),
		routed:      make([]uint64, len(replicas)),
		occ:         make([]services.OccupancyProvider, len(replicas)),
	}
	for i, b := range replicas {
		if prov, ok := b.(services.OccupancyProvider); ok {
			rs.occ[i] = prov
		}
	}
	if auto != nil {
		if err := auto.Validate(); err != nil {
			return nil, err
		}
		if auto.Max != len(replicas) {
			return nil, fmt.Errorf("cluster: autoscaler max %d must equal replica capacity %d", auto.Max, len(replicas))
		}
		if initial < auto.Min || initial > auto.Max {
			return nil, fmt.Errorf("cluster: initial active count %d outside autoscaler bounds [%d, %d]", initial, auto.Min, auto.Max)
		}
		cfg := *auto
		rs.autoCfg = &cfg
		rs.auto = newAutoscaler(cfg, len(replicas))
	}
	for _, b := range replicas {
		rs.machines = append(rs.machines, b.Machines()...)
	}
	return rs, nil
}

// InstallFaults attaches a fault plan to the set. Call once at build
// time, before the first run; a nil or empty plan leaves the set on the
// fault-free path. The plan must already be validated against the
// replica capacity (faults.Plan.Validate).
func (rs *ReplicaSet) InstallFaults(plan *faults.Plan) {
	if plan.Empty() {
		rs.plan = nil
		return
	}
	rs.plan = plan
	if rs.engines == nil {
		rs.engines = make([]*sim.Engine, len(rs.replicas))
	}
}

// FaultSchedule returns the run's compiled fault schedule (nil without a
// plan). Valid between StartRun and the next reset.
func (rs *ReplicaSet) FaultSchedule() *faults.Schedule { return rs.sched }

// Primary returns replica 0 — the instance whose workload accessors
// (ETC config, query datasets) describe the whole set, since replicas
// are built identically.
func (rs *ReplicaSet) Primary() services.Backend { return rs.replicas[0] }

// Capacity returns the number of built replicas.
func (rs *ReplicaSet) Capacity() int { return len(rs.replicas) }

// Active returns the replica count currently in rotation.
func (rs *ReplicaSet) Active() int { return rs.active }

// Router returns the routing policy.
func (rs *ReplicaSet) Router() Router { return rs.router }

// Name implements services.Backend.
func (rs *ReplicaSet) Name() string {
	return fmt.Sprintf("%s×%d", rs.replicas[0].Name(), len(rs.replicas))
}

// Machines implements services.Backend: the union over all replicas,
// primary first, so a one-replica set resets exactly the machines the
// unwrapped backend would.
func (rs *ReplicaSet) Machines() []*hw.Machine { return rs.machines }

// MeanServiceTime implements services.Backend (replicas are identical).
func (rs *ReplicaSet) MeanServiceTime() float64 { return rs.replicas[0].MeanServiceTime() }

// ResetRun implements services.Backend. Replica 0 consumes the stream
// exactly as an unwrapped backend would — the single-replica
// byte-identity guarantee — and every other consumer splits afterwards.
func (rs *ReplicaSet) ResetRun(engine *sim.Engine, stream *rng.Stream) {
	rs.engine = engine
	rs.replicas[0].ResetRun(engine, stream)
	for _, b := range rs.replicas[1:] {
		b.ResetRun(engine, stream.Split())
	}
	rs.router.Reset(stream.Split())
	rs.active = rs.initial
	rs.router.Resize(rs.active)
	if rs.auto != nil {
		rs.auto.reset()
	}
	for i := range rs.outstanding {
		rs.outstanding[i] = 0
		rs.routed[i] = 0
	}
	rs.residSum, rs.residCnt = 0, 0
	rs.scaleLog = rs.scaleLog[:0]
	if rs.plan != nil {
		for i := range rs.engines {
			rs.engines[i] = engine
		}
		rs.faultStream = stream.Split()
		rs.sched = nil
	}
}

// StartRun implements services.Backend: background activity starts on
// every replica (standbys stay warm), the fault schedule is compiled and
// armed, and the autoscaler's first tick is scheduled.
func (rs *ReplicaSet) StartRun(end sim.Time) {
	rs.end = end
	for _, b := range rs.replicas {
		b.StartRun(end)
	}
	if rs.plan != nil {
		rs.startFaults(end)
	}
	if rs.auto != nil {
		rs.scheduleTick(sim.Time(0).Add(rs.autoCfg.Interval))
	}
}

// startFaults compiles the plan against the run horizon — randomly
// drawn windows consume the reset-time fault stream — then installs the
// per-replica straggler schedules and arms crash/restart events on each
// crashed replica's own engine. Scheduling happens at setup (origin 0),
// so a crash orders identically against same-instant traffic on the
// single-engine and sharded paths.
func (rs *ReplicaSet) startFaults(end sim.Time) {
	rs.sched = rs.plan.Compile(len(rs.replicas), end, rs.faultStream)
	for i, b := range rs.replicas {
		if d, ok := b.(services.Degrader); ok {
			d.SetDegrade(rs.sched.Degrade(i))
		}
		engine := rs.engines[i]
		rep := uint64(i)
		rs.sched.EachCrash(i, func(start, crashEnd sim.Time) {
			engine.AtSink(start, rs, sim.EventArg{U64: rsEvCrash | rep<<rsEvKindBits})
			if crashEnd < end {
				engine.AtSink(crashEnd, rs, sim.EventArg{U64: rsEvRestart | rep<<rsEvKindBits})
			}
		})
	}
}

// ShardPartitions implements the loadgen sharded-backend extension: one
// partition per built replica.
func (rs *ReplicaSet) ShardPartitions() int { return len(rs.replicas) }

// ResetRunSharded is ResetRun with one engine per shard: replica i runs
// on engines[shardOf[i]]. It consumes stream draw-for-draw like ResetRun
// (replica 0 unsplit, then per-replica splits, then the router's), which
// is what keeps a sharded run byte-identical to the single-engine run.
// Configurations whose routing or scaling cannot run partitioned are
// rejected: the autoscaler is a global control loop, and only routing
// policies that are pure functions of the request over run-frozen state
// (consistent hashing) may be consulted concurrently from many shards.
func (rs *ReplicaSet) ResetRunSharded(engines []*sim.Engine, shardOf []int, stream *rng.Stream) error {
	if rs.auto != nil {
		return fmt.Errorf("cluster: autoscaling is not supported on the sharded path (its control loop is global)")
	}
	if rs.router.Name() != RouterConsistentHash {
		return fmt.Errorf("cluster: router %q cannot run sharded (stateful pick); use %s", rs.router.Name(), RouterConsistentHash)
	}
	if len(shardOf) != len(rs.replicas) {
		return fmt.Errorf("cluster: shard map covers %d replicas, have %d", len(shardOf), len(rs.replicas))
	}
	rs.engine = engines[shardOf[0]]
	rs.replicas[0].ResetRun(engines[shardOf[0]], stream)
	for i, b := range rs.replicas[1:] {
		b.ResetRun(engines[shardOf[i+1]], stream.Split())
	}
	rs.router.Reset(stream.Split())
	rs.active = rs.initial
	rs.router.Resize(rs.active)
	for i := range rs.outstanding {
		rs.outstanding[i] = 0
		rs.routed[i] = 0
	}
	rs.residSum, rs.residCnt = 0, 0
	rs.scaleLog = rs.scaleLog[:0]
	if rs.plan != nil {
		// Same draw order as ResetRun: the fault stream splits after the
		// router's, so the compiled windows are byte-identical across
		// execution modes.
		for i := range rs.engines {
			rs.engines[i] = engines[shardOf[i]]
		}
		rs.faultStream = stream.Split()
		rs.sched = nil
	}
	return nil
}

// ShardRoute picks req's replica at send time (sharded path). It is
// called concurrently from client shards: after ResetRunSharded the
// consistent-hash ring is frozen for the run, so Pick reads only
// immutable state. Per-replica outstanding counts are not maintained on
// this path (no policy or control loop reads them).
func (rs *ReplicaSet) ShardRoute(req *services.Request) int {
	if rs.sched != nil {
		i := rs.router.PickHealthy(req, rs.outstanding[:rs.active], rs.sched)
		req.Replica = i
		return i
	}
	i := rs.router.Pick(req, rs.outstanding[:rs.active])
	req.Replica = i
	return i
}

// ArriveRouted delivers a request ShardRoute already placed; it runs on
// the serving replica's shard, where the routed counter and the replica
// itself live. Under a fault schedule, a request routed to a replica
// that crashed while it was on the wire — or routed nowhere because no
// healthy replica existed — fails here instead of arriving.
func (rs *ReplicaSet) ArriveRouted(req *services.Request, now sim.Time) {
	if rs.sched != nil {
		if req.Replica < 0 {
			req.ServerArrive = now
			req.Fail(now)
			return
		}
		if rs.sched.ReplicaDown(req.Replica, now) {
			rs.routed[req.Replica]++
			req.ServerArrive = now
			req.Fail(now)
			return
		}
	}
	rs.routed[req.Replica]++
	rs.replicas[req.Replica].Arrive(req, now)
}

// Arrive implements services.Backend: route, account, forward. Under a
// fault schedule the pick is health-aware and — to stay byte-identical
// with the sharded path, which routes at send time — evaluates replica
// health at the request's send instant, while the arrival check below
// uses the arrival instant (both are pure schedule queries, so the two
// modes agree even when a crash boundary falls inside the link delay).
func (rs *ReplicaSet) Arrive(req *services.Request, now sim.Time) {
	if rs.sched != nil {
		rs.arriveFaulty(req, now)
		return
	}
	i := rs.router.Pick(req, rs.outstanding[:rs.active])
	req.Replica = i
	req.SetCompletionHook(rs)
	rs.outstanding[i]++
	rs.routed[i]++
	rs.replicas[i].Arrive(req, now)
}

func (rs *ReplicaSet) arriveFaulty(req *services.Request, now sim.Time) {
	i := rs.router.PickHealthy(req, rs.outstanding[:rs.active], rs.sched)
	req.Replica = i
	if i < 0 {
		// No healthy replica: the load balancer answers with an error.
		req.ServerArrive = now
		req.Fail(now)
		return
	}
	if rs.sched.ReplicaDown(i, now) {
		// Healthy when sent, dark on arrival.
		rs.routed[i]++
		req.ServerArrive = now
		req.Fail(now)
		return
	}
	req.SetCompletionHook(rs)
	rs.outstanding[i]++
	rs.routed[i]++
	rs.replicas[i].Arrive(req, now)
}

// RouteFor returns the replica a request would be (or was) routed to,
// without arriving it — the hedging layer's way to aim a hedge away
// from its primary. For consistent hashing the pick is a pure function
// of the request, so both execution modes compute the same answer even
// before the primary lands; stateful policies fall back to the recorded
// Replica (-1 when not yet routed).
func (rs *ReplicaSet) RouteFor(req *services.Request) int {
	if rs.router.Name() != RouterConsistentHash {
		return req.Replica
	}
	if rs.sched != nil {
		return rs.router.PickHealthy(req, rs.outstanding[:rs.active], rs.sched)
	}
	return rs.router.Pick(req, rs.outstanding[:rs.active])
}

// RequestDone implements services.CompletionHook: settle the replica's
// outstanding count and feed the latency signal. The hook fires before
// the generator's sink recycles the request. Failed requests settle
// outstanding but are excluded from the residence signal (an error
// response is not a served latency).
func (rs *ReplicaSet) RequestDone(req *services.Request, departed sim.Time) {
	rs.outstanding[req.Replica]--
	if req.Outcome == services.OutcomeFailed {
		return
	}
	rs.residSum += departed.Sub(req.ServerArrive)
	rs.residCnt++
}

// takeResidence drains the residence accumulator (latency signal).
func (rs *ReplicaSet) takeResidence() (time.Duration, int) {
	sum, n := rs.residSum, rs.residCnt
	rs.residSum, rs.residCnt = 0, 0
	return sum, n
}

// ReplicaSet event kinds, packed into the typed event's scalar argument
// below the replica index. The autoscaler tick keeps kind 0 with an
// empty arg, preserving the pre-fault event shape byte-for-byte.
const (
	rsEvTick    uint64 = iota // autoscaler sample (no payload)
	rsEvCrash                 // replica crash (replica index above kind bits)
	rsEvRestart               // replica restart (replica index above kind bits)

	rsEvKindBits = 8
	rsEvKindMask = (1 << rsEvKindBits) - 1
)

// scheduleTick arms the next autoscaler sample.
func (rs *ReplicaSet) scheduleTick(at sim.Time) {
	if at > rs.end {
		return
	}
	rs.engine.AtSink(at, rs, sim.EventArg{})
}

// OnEvent implements sim.EventSink: autoscaler ticks and replica
// crash/restart events. Crash and restart fire on the crashed replica's
// own engine; they only touch replica-local backend state (routing
// health comes from the pure schedule, not from these events), so the
// sharded path stays race-free.
func (rs *ReplicaSet) OnEvent(now sim.Time, arg sim.EventArg) {
	switch arg.U64 & rsEvKindMask {
	case rsEvTick:
		signal := rs.auto.sample(rs, now)
		if next := rs.auto.decide(now, rs.active, signal); next != rs.active {
			rs.active = next
			rs.router.Resize(next)
			rs.scaleLog = append(rs.scaleLog, ScaleEvent{At: now, Replicas: next, Signal: signal})
		}
		rs.scheduleTick(now.Add(rs.autoCfg.Interval))
	case rsEvCrash:
		rep := int(arg.U64 >> rsEvKindBits)
		if c, ok := rs.replicas[rep].(services.Crasher); ok {
			c.Crash(now)
		}
	case rsEvRestart:
		rep := int(arg.U64 >> rsEvKindBits)
		if c, ok := rs.replicas[rep].(services.Crasher); ok {
			c.Restart(now)
		}
	}
}

// ReplicaStats is one replica's end-of-run accounting.
type ReplicaStats struct {
	// Routed counts requests the router sent to this replica.
	Routed uint64
	// Completed sums the replica's tier completions (includes background
	// hiccup jobs, unlike Routed).
	Completed uint64
	// MaxSharedQueue / MaxConnQueue are the deepest shared-FIFO and
	// per-connection affinity backlogs across the replica's tiers.
	MaxSharedQueue int
	MaxConnQueue   int
	// BusyTime is the replica's total worker occupancy.
	BusyTime time.Duration
	// HiccupCount / HiccupTime sum the background-interference events
	// across the replica's tiers (the fault timeline's hiccup column).
	HiccupCount uint64
	HiccupTime  time.Duration
	// Fault-layer accounting: CrashWindows and DownTime come from the
	// compiled schedule; CrashFailed counts requests the replica failed
	// because it crashed with them in flight or queued; StragglerTime is
	// how long the replica ran service-time degraded.
	CrashWindows  int
	DownTime      time.Duration
	CrashFailed   uint64
	StragglerTime time.Duration
}

// RunStats is a ReplicaSet's end-of-run snapshot.
type RunStats struct {
	// Router is the policy name.
	Router string
	// Active is the replica count in rotation at the end of the run;
	// Capacity is the built count.
	Active, Capacity int
	// Replicas holds per-replica accounting, index = replica.
	Replicas []ReplicaStats
	// ScaleEvents is the autoscaler's decision log (nil without one).
	ScaleEvents []ScaleEvent
}

// Stats snapshots the run's cluster accounting. Call after the run
// completes and before the next ResetRun.
func (rs *ReplicaSet) Stats() RunStats {
	st := RunStats{
		Router:   rs.router.Name(),
		Active:   rs.active,
		Capacity: len(rs.replicas),
		Replicas: make([]ReplicaStats, len(rs.replicas)),
	}
	for i, b := range rs.replicas {
		r := ReplicaStats{Routed: rs.routed[i]}
		if prov, ok := b.(services.TierStatsProvider); ok {
			for _, ts := range prov.TierStats() {
				r.Completed += ts.Completed
				if ts.MaxSharedQueue > r.MaxSharedQueue {
					r.MaxSharedQueue = ts.MaxSharedQueue
				}
				if ts.MaxConnQueue > r.MaxConnQueue {
					r.MaxConnQueue = ts.MaxConnQueue
				}
				r.BusyTime += ts.BusyTime
				r.HiccupCount += ts.HiccupCount
				r.HiccupTime += ts.HiccupTime
				r.CrashFailed += ts.CrashFailed
			}
		}
		if rs.sched != nil {
			r.CrashWindows = rs.sched.CrashCount(i)
			r.DownTime = rs.sched.Downtime(i)
			r.StragglerTime = rs.sched.StragglerTime(i)
		}
		st.Replicas[i] = r
	}
	if len(rs.scaleLog) > 0 {
		st.ScaleEvents = append([]ScaleEvent(nil), rs.scaleLog...)
	}
	return st
}

// Skew is the load-balance skew over the replicas that served traffic:
// the maximum routed count divided by the mean. 1.0 is perfect balance;
// consistent hashing under a Zipfian key popularity drives it well
// above the round-robin baseline.
//
// Participation is defined by Routed > 0, not by the final Active
// count: under an autoscaler a replica can be in rotation mid-run and
// out of it by run end, and truncating to the final Active prefix would
// silently drop exactly the replicas a scale-up-then-down run routed
// load to (and, with them, the imbalance they absorbed).
func (s RunStats) Skew() float64 {
	var sum, max uint64
	n := 0
	for _, r := range s.Replicas {
		if r.Routed == 0 {
			continue
		}
		n++
		sum += r.Routed
		if r.Routed > max {
			max = r.Routed
		}
	}
	if sum == 0 {
		return 0
	}
	return float64(max) * float64(n) / float64(sum)
}
