package cluster

import (
	"fmt"
	"sort"

	"repro/internal/faults"
	"repro/internal/rng"
	"repro/internal/services"
)

// Router policy names accepted by NewRouter and the CLIs' -router flag.
const (
	RouterRoundRobin       = "round-robin"
	RouterLeastOutstanding = "least-outstanding"
	RouterConsistentHash   = "consistent-hash"
)

// Router picks the replica that serves a request. Implementations are
// deterministic: a run's routing decisions are a pure function of the
// request sequence and the stream handed to Reset, and Pick never
// allocates (it sits on the per-request hot path).
type Router interface {
	// Name returns the policy name (one of the Router* constants).
	Name() string
	// Reset clears run-scoped state. The stream is the router's labeled
	// per-run randomness source; policies that need no randomness ignore
	// it, but must still accept it so every policy is reset the same way.
	Reset(stream *rng.Stream)
	// Resize informs the router that replicas [0, active) are in
	// rotation. Called after Reset and after every autoscaler decision.
	Resize(active int)
	// Pick returns the replica index in [0, len(outstanding)) for req.
	// outstanding[i] is replica i's in-flight request count; the slice
	// covers exactly the active replicas.
	Pick(req *services.Request, outstanding []int) int
	// PickHealthy is Pick under a fault schedule: replicas that sched
	// reports down at the request's send instant (req.SentAt) are skipped,
	// as is the hedge-avoid replica req.Avoid-1 when set. It returns -1
	// when no active replica qualifies. Health is read through the pure
	// schedule at SentAt — not through mutable crash flags — so the
	// single-engine and sharded paths, which route at different wall
	// points of the same virtual instant, make identical decisions.
	PickHealthy(req *services.Request, outstanding []int, sched *faults.Schedule) int
}

// NewRouter builds the named routing policy. An empty name selects
// round-robin.
func NewRouter(name string) (Router, error) {
	switch name {
	case "", RouterRoundRobin:
		return &roundRobin{}, nil
	case RouterLeastOutstanding:
		return &leastOutstanding{}, nil
	case RouterConsistentHash:
		return &consistentHash{vnodes: defaultVnodes}, nil
	}
	return nil, fmt.Errorf("cluster: unknown router %q (want %s, %s or %s)",
		name, RouterRoundRobin, RouterLeastOutstanding, RouterConsistentHash)
}

// roundRobin cycles through the active replicas in order — the classic
// L4 load-balancer default. Perfectly balanced offered load, blind to
// per-replica backlog.
type roundRobin struct {
	cursor int
}

func (r *roundRobin) Name() string      { return RouterRoundRobin }
func (r *roundRobin) Reset(*rng.Stream) { r.cursor = 0 }
func (r *roundRobin) Resize(int)        {}
func (r *roundRobin) Pick(_ *services.Request, outstanding []int) int {
	i := r.cursor % len(outstanding)
	r.cursor++
	return i
}

// PickHealthy advances the cursor past down/avoided replicas, trying at
// most one full rotation. The cursor moves for every slot examined, so a
// crash window shifts the rotation phase identically on both execution
// paths (the examined sequence depends only on prior picks, not on when
// within the virtual instant the routing ran).
func (r *roundRobin) PickHealthy(req *services.Request, outstanding []int, sched *faults.Schedule) int {
	n := len(outstanding)
	for try := 0; try < n; try++ {
		i := r.cursor % n
		r.cursor++
		if i == req.Avoid-1 || sched.ReplicaDown(i, req.SentAt) {
			continue
		}
		return i
	}
	return -1
}

// leastOutstanding sends each request to the replica with the fewest
// in-flight requests (lowest index wins ties) — the "least connections"
// policy, which absorbs per-replica slowdowns at the cost of cache
// affinity.
type leastOutstanding struct{}

func (r *leastOutstanding) Name() string      { return RouterLeastOutstanding }
func (r *leastOutstanding) Reset(*rng.Stream) {}
func (r *leastOutstanding) Resize(int)        {}
func (r *leastOutstanding) Pick(_ *services.Request, outstanding []int) int {
	best := 0
	for i := 1; i < len(outstanding); i++ {
		if outstanding[i] < outstanding[best] {
			best = i
		}
	}
	return best
}

// PickHealthy is the least-connections scan restricted to replicas that
// are up at the request's send instant (lowest index still wins ties).
func (r *leastOutstanding) PickHealthy(req *services.Request, outstanding []int, sched *faults.Schedule) int {
	best := -1
	for i := 0; i < len(outstanding); i++ {
		if i == req.Avoid-1 || sched.ReplicaDown(i, req.SentAt) {
			continue
		}
		if best < 0 || outstanding[i] < outstanding[best] {
			best = i
		}
	}
	return best
}

// defaultVnodes is the virtual-node count per replica on the consistent-
// hash ring. 64 keeps the expected per-replica share imbalance from ring
// geometry a few percent — small against the key-popularity skew the
// policy is meant to expose.
const defaultVnodes = 64

// consistentHash routes by the request's KV key on a hash ring, so a key
// always lands on the same replica while it stays in rotation — the
// cache-affinity sharding of memcached client libraries. Under a Zipfian
// key popularity (the ETC trace) the hottest keys concentrate on single
// replicas, which is exactly the load-balance skew the cluster figure
// measures. Requests without a KV body fall back to hashing the
// connection ID, preserving connection affinity.
type consistentHash struct {
	vnodes int
	salt   uint64
	active int
	ring   []ringEntry // sorted by point
}

type ringEntry struct {
	point   uint64
	replica int
}

func (r *consistentHash) Name() string { return RouterConsistentHash }

// Reset draws the run's ring salt. The ring itself is (re)built by the
// Resize that follows.
func (r *consistentHash) Reset(stream *rng.Stream) {
	r.salt = stream.Uint64()
	r.active = 0
	r.ring = r.ring[:0]
}

// Resize rebuilds the ring for replicas [0, active). Because every
// replica's virtual nodes hash to the same points for a given salt,
// adding or removing the highest replica only moves the keys that land
// on its own arcs — the consistent-hashing stability property the
// cluster tests pin.
func (r *consistentHash) Resize(active int) {
	if active == r.active {
		return
	}
	r.active = active
	r.ring = r.ring[:0]
	for rep := 0; rep < active; rep++ {
		for v := 0; v < r.vnodes; v++ {
			r.ring = append(r.ring, ringEntry{point: mix64(r.salt ^ uint64(rep)<<20 ^ uint64(v)), replica: rep})
		}
	}
	sort.Slice(r.ring, func(i, j int) bool { return r.ring[i].point < r.ring[j].point })
}

func (r *consistentHash) Pick(req *services.Request, outstanding []int) int {
	if len(r.ring) == 0 || r.active != len(outstanding) {
		// Defensive: the ReplicaSet always Resizes before routing.
		r.Resize(len(outstanding))
	}
	var kh uint64
	if req.HasKV {
		kh = hashString(r.salt, req.KV.Key)
	} else {
		kh = mix64(r.salt ^ 0x636f6e6e ^ uint64(req.Conn))
	}
	// First ring point at or after the key's hash, wrapping at the top.
	lo, hi := 0, len(r.ring)
	for lo < hi {
		mid := int(uint(lo+hi) >> 1)
		if r.ring[mid].point < kh {
			lo = mid + 1
		} else {
			hi = mid
		}
	}
	if lo == len(r.ring) {
		lo = 0
	}
	return r.ring[lo].replica
}

// PickHealthy walks the ring forward from the key's position, wrapping
// at the top, until it finds a replica that is up at the request's send
// instant and not hedge-avoided — the standard consistent-hashing
// failover: keys owned by a dark replica spill onto the next arcs, and
// every other key keeps its owner. Returns -1 when the whole ring is
// dark.
func (r *consistentHash) PickHealthy(req *services.Request, outstanding []int, sched *faults.Schedule) int {
	if len(r.ring) == 0 || r.active != len(outstanding) {
		// Defensive: the ReplicaSet always Resizes before routing.
		r.Resize(len(outstanding))
	}
	var kh uint64
	if req.HasKV {
		kh = hashString(r.salt, req.KV.Key)
	} else {
		kh = mix64(r.salt ^ 0x636f6e6e ^ uint64(req.Conn))
	}
	lo, hi := 0, len(r.ring)
	for lo < hi {
		mid := int(uint(lo+hi) >> 1)
		if r.ring[mid].point < kh {
			lo = mid + 1
		} else {
			hi = mid
		}
	}
	for walked := 0; walked < len(r.ring); walked++ {
		if lo == len(r.ring) {
			lo = 0
		}
		rep := r.ring[lo].replica
		if rep != req.Avoid-1 && !sched.ReplicaDown(rep, req.SentAt) {
			return rep
		}
		lo++
	}
	return -1
}

// hashString is FNV-1a over s, salted per run.
func hashString(salt uint64, s string) uint64 {
	h := uint64(14695981039346656037) ^ salt
	for i := 0; i < len(s); i++ {
		h ^= uint64(s[i])
		h *= 1099511628211
	}
	return h
}

// mix64 is the splitmix64 finalizer — a cheap high-quality 64-bit mixer
// for ring points and fallback hashes.
func mix64(z uint64) uint64 {
	z += 0x9e3779b97f4a7c15
	z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
	z = (z ^ (z >> 27)) * 0x94d049bb133111eb
	return z ^ (z >> 31)
}
