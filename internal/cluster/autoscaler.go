package cluster

import (
	"fmt"
	"time"

	"repro/internal/sim"
)

// Signal selects what the autoscaler samples on the virtual clock.
type Signal string

const (
	// SignalUtilization scales on worker occupancy: the busy-time delta
	// across active replicas since the last tick, divided by the tick
	// interval times the active worker count. Thresholds are fractions
	// in [0, 1].
	SignalUtilization Signal = "utilization"
	// SignalLatency scales on the mean server residence time (µs) of
	// the requests completed since the last tick. Thresholds are µs.
	SignalLatency Signal = "latency"
)

// AutoscalerConfig parameterizes the control loop.
type AutoscalerConfig struct {
	// Min and Max bound the active replica count. The ReplicaSet must be
	// built with Max replicas; scaling only changes how many are in
	// rotation, so scale-out is instantaneous (the modelled fleet always
	// has warm standbys — cold-start modelling is future work).
	Min, Max int
	// Interval is the virtual-time sampling period.
	Interval time.Duration
	// Signal selects the sampled metric (default SignalUtilization).
	Signal Signal
	// ScaleUpAt / ScaleDownAt are the add/remove thresholds in the
	// signal's unit. A tick above ScaleUpAt adds one replica; below
	// ScaleDownAt removes one.
	ScaleUpAt, ScaleDownAt float64
	// Cooldown is the minimum virtual time between scaling decisions
	// (default 2×Interval). It damps oscillation around a threshold.
	Cooldown time.Duration
}

// DefaultAutoscalerConfig returns a utilization-driven loop between min
// and max replicas: sample every 10 ms of virtual time, add above 70 %
// occupancy, remove below 25 %.
func DefaultAutoscalerConfig(min, max int) AutoscalerConfig {
	return AutoscalerConfig{
		Min: min, Max: max,
		Interval:    10 * time.Millisecond,
		Signal:      SignalUtilization,
		ScaleUpAt:   0.70,
		ScaleDownAt: 0.25,
	}
}

// Validate reports configuration errors.
func (c AutoscalerConfig) Validate() error {
	if c.Min < 1 || c.Max < c.Min {
		return fmt.Errorf("cluster: autoscaler bounds [%d, %d] invalid", c.Min, c.Max)
	}
	if c.Interval <= 0 {
		return fmt.Errorf("cluster: autoscaler interval %v must be positive", c.Interval)
	}
	switch c.Signal {
	case "", SignalUtilization, SignalLatency:
	default:
		return fmt.Errorf("cluster: unknown autoscaler signal %q", c.Signal)
	}
	if c.ScaleUpAt <= c.ScaleDownAt {
		return fmt.Errorf("cluster: scale-up threshold %v must exceed scale-down %v", c.ScaleUpAt, c.ScaleDownAt)
	}
	return nil
}

// signal resolves the default.
func (c AutoscalerConfig) signal() Signal {
	if c.Signal == "" {
		return SignalUtilization
	}
	return c.Signal
}

// cooldown resolves the default.
func (c AutoscalerConfig) cooldown() time.Duration {
	if c.Cooldown > 0 {
		return c.Cooldown
	}
	return 2 * c.Interval
}

// ScaleEvent records one autoscaler decision.
type ScaleEvent struct {
	// At is the virtual instant of the decision.
	At sim.Time
	// Replicas is the active count after the decision.
	Replicas int
	// Signal is the sampled value that triggered it.
	Signal float64
}

// autoscaler is the run-scoped control-loop state.
type autoscaler struct {
	cfg AutoscalerConfig
	// lastBusy is each replica's cumulative busy time at the previous
	// tick, for the utilization delta.
	lastBusy []time.Duration
	// lastDecision is when the loop last scaled (cooldown anchor).
	lastDecision sim.Time
	decided      bool
}

func newAutoscaler(cfg AutoscalerConfig, capacity int) *autoscaler {
	return &autoscaler{cfg: cfg, lastBusy: make([]time.Duration, capacity)}
}

func (a *autoscaler) reset() {
	for i := range a.lastBusy {
		a.lastBusy[i] = 0
	}
	a.lastDecision = 0
	a.decided = false
}

// sample computes the configured signal over the active replicas and
// updates the per-replica busy-time baseline for the next tick. Crashed
// replicas are excluded from the utilization denominator: the fleet's
// serving capacity really did shrink, and hiding that from the signal
// would make the autoscaler blind to exactly the event it should absorb.
func (a *autoscaler) sample(rs *ReplicaSet, now sim.Time) float64 {
	switch a.cfg.signal() {
	case SignalLatency:
		sum, n := rs.takeResidence()
		if n == 0 {
			return 0
		}
		return float64(sum) / float64(n) / 1e3 // µs
	default: // SignalUtilization
		// Samples through the cached OccupancyProviders and the flat
		// lastBusy baseline array: no type assertion, no TierStats slice
		// — the tick is allocation-free (BenchmarkAutoscalerTick).
		var busy time.Duration
		var workers int
		for i := 0; i < rs.active; i++ {
			prov := rs.occ[i]
			if prov == nil {
				continue
			}
			if rs.sched.ReplicaDown(i, now) {
				// Dark capacity: keep its baseline current so the delta
				// on restart reflects only post-restart work.
				total, _ := prov.Occupancy()
				a.lastBusy[i] = total
				continue
			}
			total, w := prov.Occupancy()
			workers += w
			busy += total - a.lastBusy[i]
			a.lastBusy[i] = total
		}
		// Baselines of inactive replicas still advance (their hiccup
		// background work accrues busy time), so a replica re-entering
		// rotation does not report a stale delta.
		for i := rs.active; i < len(rs.occ); i++ {
			if prov := rs.occ[i]; prov != nil {
				total, _ := prov.Occupancy()
				a.lastBusy[i] = total
			}
		}
		if workers == 0 {
			return 0
		}
		return busy.Seconds() / (a.cfg.Interval.Seconds() * float64(workers))
	}
}

// decide returns the new active count for the sampled signal (unchanged
// when within thresholds, outside the bounds, or cooling down).
func (a *autoscaler) decide(now sim.Time, active int, signal float64) int {
	if a.decided && now.Sub(a.lastDecision) < a.cfg.cooldown() {
		return active
	}
	next := active
	if signal > a.cfg.ScaleUpAt && active < a.cfg.Max {
		next = active + 1
	} else if signal < a.cfg.ScaleDownAt && active > a.cfg.Min {
		next = active - 1
	}
	if next != active {
		a.lastDecision = now
		a.decided = true
	}
	return next
}
