package cluster

import (
	"reflect"
	"testing"
	"time"

	"repro/internal/hw"
	"repro/internal/loadgen"
	"repro/internal/netmodel"
	"repro/internal/rng"
	"repro/internal/services"
	"repro/internal/sim"
	"repro/internal/workload"
)

// --- Router policies ---

func kvReq(key string) *services.Request {
	return &services.Request{HasKV: true, KV: workload.KVRequest{Op: workload.OpGet, Key: key}}
}

func TestNewRouter(t *testing.T) {
	for _, name := range []string{"", RouterRoundRobin, RouterLeastOutstanding, RouterConsistentHash} {
		if _, err := NewRouter(name); err != nil {
			t.Errorf("NewRouter(%q): %v", name, err)
		}
	}
	if _, err := NewRouter("random"); err == nil {
		t.Error("unknown policy accepted")
	}
}

func TestRoundRobinCycles(t *testing.T) {
	r, _ := NewRouter(RouterRoundRobin)
	r.Reset(rng.New(1))
	r.Resize(3)
	out := make([]int, 3)
	for i := 0; i < 9; i++ {
		if got := r.Pick(kvReq("k"), out); got != i%3 {
			t.Fatalf("pick %d = %d, want %d", i, got, i%3)
		}
	}
}

func TestLeastOutstandingPicksArgmin(t *testing.T) {
	r, _ := NewRouter(RouterLeastOutstanding)
	r.Reset(rng.New(1))
	r.Resize(3)
	if got := r.Pick(kvReq("k"), []int{2, 0, 1}); got != 1 {
		t.Errorf("pick = %d, want 1", got)
	}
	// Ties break to the lowest index.
	if got := r.Pick(kvReq("k"), []int{1, 1, 1}); got != 0 {
		t.Errorf("tie pick = %d, want 0", got)
	}
}

func TestConsistentHashDeterministicAndKeyStable(t *testing.T) {
	r, _ := NewRouter(RouterConsistentHash)
	r.Reset(rng.New(7))
	r.Resize(4)
	out := make([]int, 4)
	keys := workload.ETCKeys(512)
	first := make([]int, len(keys))
	for i, k := range keys {
		first[i] = r.Pick(kvReq(k), out)
	}
	// Same key → same replica, regardless of interleaving.
	for i, k := range keys {
		if got := r.Pick(kvReq(k), out); got != first[i] {
			t.Fatalf("key %q moved %d → %d within a run", k, first[i], got)
		}
	}
	// Same seed → same mapping; different seed → (almost surely) different.
	r2, _ := NewRouter(RouterConsistentHash)
	r2.Reset(rng.New(7))
	r2.Resize(4)
	same := true
	for i, k := range keys {
		if r2.Pick(kvReq(k), out) != first[i] {
			same = false
			break
		}
	}
	if !same {
		t.Error("same stream produced a different ring")
	}
}

func TestConsistentHashStableUnderResize(t *testing.T) {
	r, _ := NewRouter(RouterConsistentHash)
	r.Reset(rng.New(11))
	r.Resize(3)
	out3, out4 := make([]int, 3), make([]int, 4)
	keys := workload.ETCKeys(2000)
	before := make([]int, len(keys))
	for i, k := range keys {
		before[i] = r.Pick(kvReq(k), out3)
	}
	// Adding replica 3 must only move keys onto the new replica.
	r.Resize(4)
	moved := 0
	for i, k := range keys {
		got := r.Pick(kvReq(k), out4)
		if got != before[i] {
			if got != 3 {
				t.Fatalf("key %q moved %d → %d on scale-out (not to the new replica)", k, before[i], got)
			}
			moved++
		}
	}
	if moved == 0 {
		t.Error("no keys moved to the new replica — ring not rebuilt?")
	}
	if moved > len(keys)/2 {
		t.Errorf("%d/%d keys moved on scale-out, want ≈1/4", moved, len(keys))
	}
	// Removing it restores the original mapping exactly.
	r.Resize(3)
	for i, k := range keys {
		if got := r.Pick(kvReq(k), out3); got != before[i] {
			t.Fatalf("key %q at %d after scale-in, want %d", k, got, before[i])
		}
	}
}

func TestConsistentHashFallsBackToConn(t *testing.T) {
	r, _ := NewRouter(RouterConsistentHash)
	r.Reset(rng.New(3))
	r.Resize(4)
	out := make([]int, 4)
	req := &services.Request{Conn: 17}
	first := r.Pick(req, out)
	for i := 0; i < 10; i++ {
		if got := r.Pick(req, out); got != first {
			t.Fatal("conn-hashed request moved between replicas")
		}
	}
}

// --- ReplicaSet construction ---

func newMemcachedReplicas(t testing.TB, n int) []services.Backend {
	t.Helper()
	replicas := make([]services.Backend, n)
	for i := range replicas {
		m, err := services.NewMemcached(services.DefaultMemcachedConfig())
		if err != nil {
			t.Fatal(err)
		}
		replicas[i] = m
	}
	return replicas
}

func TestNewValidation(t *testing.T) {
	rr, _ := NewRouter(RouterRoundRobin)
	if _, err := New(nil, 1, rr, nil); err == nil {
		t.Error("empty replica list accepted")
	}
	reps := newMemcachedReplicas(t, 2)
	if _, err := New(reps, 1, nil, nil); err == nil {
		t.Error("nil router accepted")
	}
	if _, err := New(reps, 3, rr, nil); err == nil {
		t.Error("initial beyond capacity accepted")
	}
	bad := DefaultAutoscalerConfig(1, 3) // max ≠ capacity
	if _, err := New(reps, 1, rr, &bad); err == nil {
		t.Error("autoscaler max ≠ capacity accepted")
	}
	good := DefaultAutoscalerConfig(1, 2)
	if _, err := New(reps, 1, rr, &good); err != nil {
		t.Errorf("valid autoscaled set rejected: %v", err)
	}
}

// --- Load-generation helpers (mirrors the experiment package's
// Memcached deployment, scaled down for test speed) ---

type etcSource struct{ etc *workload.ETC }

func (s etcSource) Next() (any, int) {
	kv, n := s.NextKV()
	return kv, n
}

func (s etcSource) NextKV() (workload.KVRequest, int) {
	kv := s.etc.Next()
	size := 40 + len(kv.Key)
	if kv.Op == workload.OpSet {
		size += kv.ValueSize
	}
	return kv, size
}

// memcachedETCConfig mirrors the workload NewMemcached derives from the
// default instance configuration.
func memcachedETCConfig() workload.ETCConfig {
	cfg := workload.DefaultETCConfig()
	cfg.Keys = services.DefaultMemcachedConfig().Keys
	return cfg
}

func memcachedGenConfig(etcCfg workload.ETCConfig, rate float64) loadgen.Config {
	return loadgen.Config{
		Machines:          1,
		ThreadsPerMachine: 1,
		ConnsPerThread:    16,
		RateQPS:           rate,
		ClientHW:          hw.ServerBaselineConfig(),
		TimeSensitive:     true,
		Net:               netmodel.DefaultConfig(),
		Warmup:            2 * time.Millisecond,
		Payloads: func(stream *rng.Stream) loadgen.PayloadSource {
			etc, err := workload.NewETC(etcCfg, stream)
			if err != nil {
				panic(err)
			}
			return etcSource{etc}
		},
	}
}

// TestSingleReplicaByteIdentical pins the wrapper's zero-cost guarantee:
// a one-replica ReplicaSet produces byte-identical run results to the
// unwrapped backend under the identical run stream.
func TestSingleReplicaByteIdentical(t *testing.T) {
	etcCfg := memcachedETCConfig()
	cfg := memcachedGenConfig(etcCfg, 50_000)

	runOnce := func(backend services.Backend) loadgen.RunResult {
		gen, err := loadgen.New(cfg, backend)
		if err != nil {
			t.Fatal(err)
		}
		rr, err := gen.RunOnce(rng.NewLabeled(99, "cluster/identity"), 40*time.Millisecond)
		if err != nil {
			t.Fatal(err)
		}
		return rr
	}

	raw := runOnce(newMemcachedReplicas(t, 1)[0])

	for _, policy := range []string{RouterRoundRobin, RouterLeastOutstanding, RouterConsistentHash} {
		router, _ := NewRouter(policy)
		rs, err := New(newMemcachedReplicas(t, 1), 1, router, nil)
		if err != nil {
			t.Fatal(err)
		}
		wrapped := runOnce(rs)
		if !reflect.DeepEqual(raw, wrapped) {
			t.Errorf("router %s: one-replica cluster diverged from the legacy path", policy)
		}
	}
}

// TestReplicaSetRunsAreReproducible pins run-level determinism: the same
// stream label replayed against a replicated set yields identical
// results and identical per-replica routing, including back-to-back on
// one instance (ResetRun completeness).
func TestReplicaSetRunsAreReproducible(t *testing.T) {
	etcCfg := memcachedETCConfig()
	cfg := memcachedGenConfig(etcCfg, 80_000)

	run := func() (loadgen.RunResult, RunStats) {
		router, _ := NewRouter(RouterConsistentHash)
		rs, err := New(newMemcachedReplicas(t, 3), 3, router, nil)
		if err != nil {
			t.Fatal(err)
		}
		gen, err := loadgen.New(cfg, rs)
		if err != nil {
			t.Fatal(err)
		}
		rr, err := gen.RunOnce(rng.NewLabeled(7, "cluster/repro"), 30*time.Millisecond)
		if err != nil {
			t.Fatal(err)
		}
		return rr, rs.Stats()
	}

	r1, s1 := run()
	r2, s2 := run()
	if !reflect.DeepEqual(r1, r2) {
		t.Error("replicated runs diverged across instances")
	}
	if !reflect.DeepEqual(s1, s2) {
		t.Error("cluster stats diverged across instances")
	}

	// Back-to-back runs on one instance must match a fresh instance.
	router, _ := NewRouter(RouterConsistentHash)
	rs, err := New(newMemcachedReplicas(t, 3), 3, router, nil)
	if err != nil {
		t.Fatal(err)
	}
	gen, err := loadgen.New(cfg, rs)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 2; i++ {
		rr, err := gen.RunOnce(rng.NewLabeled(7, "cluster/repro"), 30*time.Millisecond)
		if err != nil {
			t.Fatal(err)
		}
		if !reflect.DeepEqual(rr, r1) {
			t.Errorf("repeat run %d diverged (ResetRun incomplete?)", i)
		}
	}
}

// TestConsistentHashSkewExceedsRoundRobin pins the load-balance-skew
// property the cluster figure reports: under the hot-key ETC trace
// (Zipf 0.99), consistent hashing concentrates popular keys on single
// replicas while round-robin spreads offered load evenly.
func TestConsistentHashSkewExceedsRoundRobin(t *testing.T) {
	etcCfg := memcachedETCConfig()
	cfg := memcachedGenConfig(etcCfg, 80_000)

	skew := func(policy string) float64 {
		router, _ := NewRouter(policy)
		rs, err := New(newMemcachedReplicas(t, 4), 4, router, nil)
		if err != nil {
			t.Fatal(err)
		}
		gen, err := loadgen.New(cfg, rs)
		if err != nil {
			t.Fatal(err)
		}
		if _, err := gen.RunOnce(rng.NewLabeled(21, "cluster/skew"), 40*time.Millisecond); err != nil {
			t.Fatal(err)
		}
		st := rs.Stats()
		var total uint64
		for _, r := range st.Replicas {
			total += r.Routed
		}
		if total == 0 {
			t.Fatal("no requests routed")
		}
		return st.Skew()
	}

	rr := skew(RouterRoundRobin)
	ch := skew(RouterConsistentHash)
	if rr > 1.05 {
		t.Errorf("round-robin skew %.3f, want ≈1.0", rr)
	}
	if ch <= rr*1.05 {
		t.Errorf("consistent-hash skew %.3f not above round-robin %.3f under Zipf-%.2f keys",
			ch, rr, etcCfg.ZipfAlpha)
	}
}

// --- Autoscaler ---

func TestAutoscalerConfigValidate(t *testing.T) {
	if err := DefaultAutoscalerConfig(1, 4).Validate(); err != nil {
		t.Errorf("default config invalid: %v", err)
	}
	bad := []AutoscalerConfig{
		{Min: 0, Max: 2, Interval: time.Millisecond, ScaleUpAt: 0.7, ScaleDownAt: 0.2},
		{Min: 3, Max: 2, Interval: time.Millisecond, ScaleUpAt: 0.7, ScaleDownAt: 0.2},
		{Min: 1, Max: 2, ScaleUpAt: 0.7, ScaleDownAt: 0.2},
		{Min: 1, Max: 2, Interval: time.Millisecond, ScaleUpAt: 0.2, ScaleDownAt: 0.7},
		{Min: 1, Max: 2, Interval: time.Millisecond, Signal: "vibes", ScaleUpAt: 0.7, ScaleDownAt: 0.2},
	}
	for i, cfg := range bad {
		if err := cfg.Validate(); err == nil {
			t.Errorf("bad config %d accepted", i)
		}
	}
}

// TestAutoscalerScalesOutAndBack drives a 1-active/2-capacity synthetic
// set near one replica's saturation point, then stops the load: the
// utilization loop must add the standby and later retire it.
func TestAutoscalerScalesOutAndBack(t *testing.T) {
	replicas := make([]services.Backend, 2)
	for i := range replicas {
		s, err := services.NewSynthetic(services.DefaultSyntheticConfig())
		if err != nil {
			t.Fatal(err)
		}
		replicas[i] = s
	}
	auto := AutoscalerConfig{
		Min: 1, Max: 2,
		Interval:    2 * time.Millisecond,
		ScaleUpAt:   0.60,
		ScaleDownAt: 0.20,
		Cooldown:    2 * time.Millisecond,
	}
	router, _ := NewRouter(RouterLeastOutstanding)
	rs, err := New(replicas, 1, router, &auto)
	if err != nil {
		t.Fatal(err)
	}

	engine := sim.NewEngine()
	stream := rng.New(5)
	for _, m := range rs.Machines() {
		m.ResetRun(stream.Split())
	}
	rs.ResetRun(engine, stream.Split())
	end := sim.Time(0).Add(40 * time.Millisecond)
	rs.StartRun(end)

	// ≈11µs service on 10 workers ⇒ one replica saturates near 900K QPS.
	// Offer 800K QPS for the first 20ms, then nothing.
	const gap = 1250 * time.Nanosecond
	loadEnd := sim.Time(0).Add(20 * time.Millisecond)
	var completed int
	var at sim.Time
	for at = 0; at < loadEnd; at = at.Add(gap) {
		engine.At(at, func(now sim.Time) {
			req := &services.Request{}
			req.SetCompletion(func(*services.Request, sim.Time) { completed++ })
			rs.Arrive(req, now)
		})
	}
	engine.RunUntil(end)

	st := rs.Stats()
	if len(st.ScaleEvents) < 2 {
		t.Fatalf("got %d scale events, want ≥2 (out and back): %+v", len(st.ScaleEvents), st.ScaleEvents)
	}
	if st.ScaleEvents[0].Replicas != 2 {
		t.Errorf("first decision scaled to %d, want 2 (out)", st.ScaleEvents[0].Replicas)
	}
	if last := st.ScaleEvents[len(st.ScaleEvents)-1]; last.Replicas != 1 {
		t.Errorf("final decision scaled to %d, want 1 (back)", last.Replicas)
	}
	if st.Active != 1 {
		t.Errorf("active = %d at end of run, want 1", st.Active)
	}
	if st.Replicas[1].Routed == 0 {
		t.Error("standby replica never served a request after scale-out")
	}
	if completed == 0 {
		t.Error("no requests completed")
	}
}

// TestAutoscalerLatencySignal checks the alternative signal: residence
// above the µs threshold scales out.
func TestAutoscalerLatencySignal(t *testing.T) {
	replicas := make([]services.Backend, 2)
	for i := range replicas {
		s, err := services.NewSynthetic(services.DefaultSyntheticConfig())
		if err != nil {
			t.Fatal(err)
		}
		replicas[i] = s
	}
	auto := AutoscalerConfig{
		Min: 1, Max: 2,
		Interval:    2 * time.Millisecond,
		Signal:      SignalLatency,
		ScaleUpAt:   30, // µs; saturated residence is far above
		ScaleDownAt: 1,
	}
	router, _ := NewRouter(RouterRoundRobin)
	rs, err := New(replicas, 1, router, &auto)
	if err != nil {
		t.Fatal(err)
	}
	engine := sim.NewEngine()
	stream := rng.New(6)
	for _, m := range rs.Machines() {
		m.ResetRun(stream.Split())
	}
	rs.ResetRun(engine, stream.Split())
	end := sim.Time(0).Add(20 * time.Millisecond)
	rs.StartRun(end)
	// Overload one replica: 1500 simultaneous arrivals queue deeply.
	engine.At(0, func(now sim.Time) {
		for i := 0; i < 1500; i++ {
			req := &services.Request{Conn: i}
			req.SetCompletion(func(*services.Request, sim.Time) {})
			rs.Arrive(req, now)
		}
	})
	engine.RunUntil(end)
	st := rs.Stats()
	if len(st.ScaleEvents) == 0 || st.ScaleEvents[0].Replicas != 2 {
		t.Errorf("latency signal never scaled out: %+v", st.ScaleEvents)
	}
}

// --- Benchmark ---

// BenchmarkClusterRoute measures the per-request routing cost of each
// policy over 8 replicas. Pick must not allocate.
func BenchmarkClusterRoute(b *testing.B) {
	keys := workload.ETCKeys(4096)
	for _, policy := range []string{RouterRoundRobin, RouterLeastOutstanding, RouterConsistentHash} {
		b.Run(policy, func(b *testing.B) {
			router, err := NewRouter(policy)
			if err != nil {
				b.Fatal(err)
			}
			router.Reset(rng.New(1))
			router.Resize(8)
			outstanding := make([]int, 8)
			req := &services.Request{HasKV: true}
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				req.KV.Key = keys[i&4095]
				req.Conn = i
				picked := router.Pick(req, outstanding)
				outstanding[picked] = (outstanding[picked] + 1) & 7
			}
		})
	}
}

// autoscaledSet builds an 8-replica synthetic set with a utilization
// autoscaler holding 4 active, reset and ready to tick.
func autoscaledSet(tb testing.TB) *ReplicaSet {
	tb.Helper()
	replicas := make([]services.Backend, 8)
	for i := range replicas {
		s, err := services.NewSynthetic(services.DefaultSyntheticConfig())
		if err != nil {
			tb.Fatal(err)
		}
		replicas[i] = s
	}
	auto := DefaultAutoscalerConfig(1, 8)
	router, err := NewRouter(RouterLeastOutstanding)
	if err != nil {
		tb.Fatal(err)
	}
	rs, err := New(replicas, 4, router, &auto)
	if err != nil {
		tb.Fatal(err)
	}
	rs.ResetRun(sim.NewEngine(), rng.New(1))
	return rs
}

// BenchmarkAutoscalerTick measures one utilization sample+decide over 8
// replicas (4 active, 4 standby baselines) — the per-tick cost the SoA
// occupancy path pays on every virtual-time Interval. Must not allocate:
// the pre-SoA path built a TierStats slice per replica per tick.
func BenchmarkAutoscalerTick(b *testing.B) {
	rs := autoscaledSet(b)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		signal := rs.auto.sample(rs, sim.Time(0))
		rs.auto.decide(sim.Time(i), rs.active, signal)
	}
}

// TestAutoscalerTickZeroAlloc is the PR 9 SoA gate: the autoscaler's
// utilization tick must be allocation-free in steady state.
func TestAutoscalerTickZeroAlloc(t *testing.T) {
	rs := autoscaledSet(t)
	allocs := testing.AllocsPerRun(200, func() {
		signal := rs.auto.sample(rs, sim.Time(0))
		rs.auto.decide(0, rs.active, signal)
	})
	if allocs != 0 {
		t.Errorf("autoscaler tick allocates %.1f objects/op, want 0", allocs)
	}
}

// TestSkewCountsScaledDownReplicas is the regression test for the
// Skew() accounting bug: skew used to be computed over the
// Replicas[:Active] prefix, where Active is the count at run END. A
// scale-up-then-down run routes load to replicas that are no longer
// active when Stats() is taken, and the old code silently dropped them
// — here replica 2 absorbed the whole hot-key imbalance during the
// scaled-up window, and the truncated skew reported perfect balance.
func TestSkewCountsScaledDownReplicas(t *testing.T) {
	st := RunStats{
		Router:   RouterConsistentHash,
		Active:   2, // back at min by run end
		Capacity: 4,
		Replicas: []ReplicaStats{
			{Routed: 1000},
			{Routed: 1000},
			{Routed: 4000}, // served the mid-run spike, inactive at end
			{Routed: 0},    // never entered rotation
		},
		ScaleEvents: []ScaleEvent{
			{At: sim.Time(10 * time.Millisecond), Replicas: 3, Signal: 0.9},
			{At: sim.Time(40 * time.Millisecond), Replicas: 2, Signal: 0.1},
		},
	}
	// max=4000 over participants {1000, 1000, 4000}: mean 2000, skew 2.
	if got, want := st.Skew(), 2.0; got != want {
		t.Errorf("skew = %v, want %v (scaled-down replica 2 dropped from the accounting?)", got, want)
	}
	// The never-routed replica must not dilute the mean either.
	balanced := RunStats{Active: 4, Capacity: 4, Replicas: []ReplicaStats{{Routed: 500}, {Routed: 500}, {Routed: 500}, {Routed: 0}}}
	if got := balanced.Skew(); got != 1.0 {
		t.Errorf("skew with an idle replica = %v, want 1.0 over the three participants", got)
	}
	if got := (RunStats{Replicas: []ReplicaStats{{}, {}}}).Skew(); got != 0 {
		t.Errorf("skew with no traffic = %v, want 0", got)
	}
}
