package sysfs

import (
	"strings"
	"testing"

	"repro/internal/hw"
)

func newFS(t *testing.T, cfg hw.Config) *FS {
	t.Helper()
	f, err := New(cfg, 10)
	if err != nil {
		t.Fatal(err)
	}
	return f
}

func TestReadCpufreqFiles(t *testing.T) {
	f := newFS(t, hw.LPConfig())
	cases := map[string]string{
		"/sys/devices/system/cpu/cpu0/cpufreq/scaling_driver":   "intel_pstate",
		"/sys/devices/system/cpu/cpu0/cpufreq/scaling_governor": "powersave",
		"/sys/devices/system/cpu/cpu19/cpufreq/scaling_driver":  "intel_pstate", // SMT on → 20 threads
		"/sys/devices/system/cpu/cpu0/cpufreq/scaling_min_freq": "800000",
		"/sys/devices/system/cpu/cpu0/cpufreq/scaling_max_freq": "3000000",
	}
	for path, want := range cases {
		got, err := f.Read(path)
		if err != nil {
			t.Errorf("Read(%s): %v", path, err)
			continue
		}
		if got != want {
			t.Errorf("Read(%s) = %q, want %q", path, got, want)
		}
	}
}

func TestReadNonexistentCPU(t *testing.T) {
	f := newFS(t, hw.ServerBaselineConfig()) // SMT off → 10 threads
	if _, err := f.Read("/sys/devices/system/cpu/cpu15/cpufreq/scaling_driver"); err == nil {
		t.Error("read of offline cpu succeeded")
	}
}

func TestSMTControl(t *testing.T) {
	f := newFS(t, hw.LPConfig())
	if got, _ := f.Read("/sys/devices/system/cpu/smt/control"); got != "on" {
		t.Errorf("smt control = %q, want on", got)
	}
	if err := f.Write("/sys/devices/system/cpu/smt/control", "off"); err != nil {
		t.Fatal(err)
	}
	if f.Config().SMT {
		t.Error("config SMT still on after sysfs write")
	}
	if got, _ := f.Read("/sys/devices/system/cpu/smt/active"); got != "0" {
		t.Errorf("smt active = %q, want 0", got)
	}
	if err := f.Write("/sys/devices/system/cpu/smt/control", "banana"); err == nil {
		t.Error("bogus smt value accepted")
	}
}

func TestGovernorViaCpupowerAndSysfs(t *testing.T) {
	f := newFS(t, hw.LPConfig())
	if err := f.SetGovernor("performance"); err != nil {
		t.Fatal(err)
	}
	if f.Config().Governor != hw.GovernorPerformance {
		t.Error("cpupower governor change not applied")
	}
	if err := f.Write("/sys/devices/system/cpu/cpu3/cpufreq/scaling_governor", "powersave"); err != nil {
		t.Fatal(err)
	}
	if f.Config().Governor != hw.GovernorPowersave {
		t.Error("sysfs governor change not applied")
	}
	if err := f.SetGovernor("ondemand"); err == nil {
		t.Error("unknown governor accepted")
	}
}

func TestBootTimeOnlyKnobsRejectRuntimeWrites(t *testing.T) {
	f := newFS(t, hw.LPConfig())
	if err := f.Write("/sys/module/intel_idle/parameters/max_cstate", "0"); err == nil {
		t.Error("runtime max_cstate write accepted")
	}
	if err := f.Write("/sys/devices/system/cpu/cpu0/cpufreq/scaling_driver", "acpi-cpufreq"); err == nil {
		t.Error("runtime driver write accepted")
	}
}

func TestTurboViaMSR0x1A0(t *testing.T) {
	f := newFS(t, hw.LPConfig())
	v, err := f.ReadMSR(MSRMiscEnable)
	if err != nil {
		t.Fatal(err)
	}
	if v&(1<<turboDisableBit) != 0 {
		t.Error("turbo-disable bit set while turbo on")
	}
	if err := f.WriteMSR(MSRMiscEnable, 1<<turboDisableBit); err != nil {
		t.Fatal(err)
	}
	if f.Config().Turbo {
		t.Error("turbo still enabled after MSR disable write")
	}
	if err := f.WriteMSR(MSRMiscEnable, 0); err != nil {
		t.Fatal(err)
	}
	if !f.Config().Turbo {
		t.Error("turbo not re-enabled")
	}
}

func TestUncoreViaMSR0x620(t *testing.T) {
	f := newFS(t, hw.LPConfig()) // dynamic uncore
	v, err := f.ReadMSR(MSRUncoreRatioLimit)
	if err != nil {
		t.Fatal(err)
	}
	if minR, maxR := (v>>8)&0x7f, v&0x7f; minR == maxR {
		t.Error("dynamic uncore should expose min ratio < max ratio")
	}
	// Pin min == max → fixed uncore, the paper's HP/server setting.
	if err := f.WriteMSR(MSRUncoreRatioLimit, 22|22<<8); err != nil {
		t.Fatal(err)
	}
	if f.Config().UncoreDynamic {
		t.Error("uncore still dynamic after pinning ratios")
	}
	if err := f.WriteMSR(MSRUncoreRatioLimit, 10|22<<8); err == nil {
		t.Error("min ratio above max accepted")
	}
}

func TestUnimplementedMSR(t *testing.T) {
	f := newFS(t, hw.LPConfig())
	if _, err := f.ReadMSR(0x10); err == nil {
		t.Error("read of unimplemented MSR succeeded")
	}
	if err := f.WriteMSR(0x10, 1); err == nil {
		t.Error("write of unimplemented MSR succeeded")
	}
}

func TestCmdlineRoundTrip(t *testing.T) {
	lp := newFS(t, hw.LPConfig())
	cmd := lp.Cmdline()
	if !strings.Contains(cmd, "intel_idle.max_cstate=3") {
		t.Errorf("LP cmdline = %q, want max_cstate=3", cmd)
	}
	if strings.Contains(cmd, "intel_pstate=disable") {
		t.Errorf("LP cmdline = %q should keep intel_pstate", cmd)
	}

	hp := newFS(t, hw.HPConfig())
	cmd = hp.Cmdline()
	if !strings.Contains(cmd, "idle=poll") {
		t.Errorf("HP cmdline = %q, want idle=poll", cmd)
	}
	if !strings.Contains(cmd, "intel_pstate=disable") {
		t.Errorf("HP cmdline = %q, want intel_pstate=disable", cmd)
	}

	// Applying the HP cmdline to an LP system flips the boot knobs.
	if err := lp.ApplyCmdline(cmd); err != nil {
		t.Fatal(err)
	}
	got := lp.Config()
	if got.MaxCState != "C0" || got.Driver != hw.DriverACPICpufreq {
		t.Errorf("after HP cmdline: MaxCState=%s Driver=%s", got.MaxCState, got.Driver)
	}
}

func TestApplyCmdlineFlags(t *testing.T) {
	f := newFS(t, hw.HPConfig())
	if err := f.ApplyCmdline("intel_idle.max_cstate=2 intel_pstate=enable nohz=on quiet splash"); err != nil {
		t.Fatal(err)
	}
	cfg := f.Config()
	if cfg.MaxCState != "C1E" {
		t.Errorf("MaxCState = %s, want C1E", cfg.MaxCState)
	}
	if cfg.Driver != hw.DriverIntelPstate {
		t.Errorf("Driver = %s, want intel_pstate", cfg.Driver)
	}
	if !cfg.Tickless {
		t.Error("nohz=on not applied")
	}
	if err := f.ApplyCmdline("intel_idle.max_cstate=99"); err == nil {
		t.Error("out-of-range max_cstate accepted")
	}
}

func TestCpuidleStates(t *testing.T) {
	f := newFS(t, hw.ServerBaselineConfig()) // max C1 → states 0,1
	name, err := f.Read("/sys/devices/system/cpu/cpu0/cpuidle/state1/name")
	if err != nil {
		t.Fatal(err)
	}
	if name != "C1" {
		t.Errorf("state1 name = %q, want C1", name)
	}
	lat, err := f.Read("/sys/devices/system/cpu/cpu0/cpuidle/state1/latency")
	if err != nil {
		t.Fatal(err)
	}
	if lat != "2" {
		t.Errorf("C1 latency = %q µs, want 2", lat)
	}
	if _, err := f.Read("/sys/devices/system/cpu/cpu0/cpuidle/state2/name"); err == nil {
		t.Error("state beyond max C-state visible")
	}
}

func TestProcCmdlineAndOnline(t *testing.T) {
	f := newFS(t, hw.LPConfig())
	cmd, err := f.Read("/proc/cmdline")
	if err != nil {
		t.Fatal(err)
	}
	if cmd != f.Cmdline() {
		t.Error("/proc/cmdline disagrees with Cmdline()")
	}
	online, err := f.Read("/sys/devices/system/cpu/online")
	if err != nil {
		t.Fatal(err)
	}
	if online != "0-19" {
		t.Errorf("online = %q, want 0-19 (10 cores, SMT on)", online)
	}
}

func TestListCoversReadableFiles(t *testing.T) {
	f := newFS(t, hw.LPConfig())
	paths := f.List()
	if len(paths) < 50 {
		t.Fatalf("List returned only %d paths", len(paths))
	}
	for _, p := range paths {
		if _, err := f.Read(p); err != nil {
			t.Errorf("listed path %s not readable: %v", p, err)
		}
	}
}

func TestNewRejectsInvalidConfig(t *testing.T) {
	bad := hw.LPConfig()
	bad.MaxCState = "C8"
	if _, err := New(bad, 10); err == nil {
		t.Error("invalid config accepted")
	}
}
