// Package sysfs emulates the Linux configuration surfaces the paper uses to
// tune hardware knobs (§IV-C): the sysfs tree, kernel (grub) command-line
// flags, model-specific registers (MSR 0x1A0 for turbo, MSR 0x620 for the
// uncore frequency), and the cpupower governor wrapper.
//
// The emulation is two-way: a tree is materialized from an hw.Config, and
// writes through any of the interfaces update the config, so tools and
// examples configure the simulated machines exactly the way the paper
// configures its testbed — including the property that some knobs (C-states,
// frequency driver, tickless) only change via the boot command line, not at
// runtime.
package sysfs

import (
	"fmt"
	"sort"
	"strconv"
	"strings"

	"repro/internal/hw"
)

// MSR addresses the paper names.
const (
	// MSRMiscEnable is IA32_MISC_ENABLE (0x1A0); bit 38 disables turbo.
	MSRMiscEnable = 0x1a0
	// MSRUncoreRatioLimit (0x620) holds the uncore min/max ratio limits.
	MSRUncoreRatioLimit = 0x620

	turboDisableBit = 38
)

// FS is a virtual configuration filesystem bound to one machine config.
type FS struct {
	cfg   hw.Config
	cores int
	msr   map[uint32]uint64
}

// New builds a virtual tree for a machine with the given number of physical
// cores under cfg.
func New(cfg hw.Config, physicalCores int) (*FS, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	fs := &FS{cfg: cfg, cores: physicalCores, msr: make(map[uint32]uint64)}
	fs.syncMSR()
	return fs, nil
}

// Config returns the configuration currently described by the tree.
func (f *FS) Config() hw.Config { return f.cfg }

func (f *FS) syncMSR() {
	var misc uint64
	if !f.cfg.Turbo {
		misc |= 1 << turboDisableBit
	}
	f.msr[MSRMiscEnable] = misc

	// 0x620: bits 0-6 max ratio, bits 8-14 min ratio, in 100 MHz units.
	// A fixed uncore pins min == max (the paper's HP/server settings).
	maxRatio := uint64(f.cfg.NominalFreqGHz * 10)
	minRatio := maxRatio
	if f.cfg.UncoreDynamic {
		minRatio = uint64(f.cfg.MinFreqGHz * 10)
	}
	f.msr[MSRUncoreRatioLimit] = maxRatio | minRatio<<8
}

// threadCount returns the number of visible CPUs (threads).
func (f *FS) threadCount() int {
	if f.cfg.SMT {
		return f.cores * 2
	}
	return f.cores
}

// cpuidle state table paths expose names and latencies like
// /sys/devices/system/cpu/cpu0/cpuidle/stateN/{name,latency,disable}.
func (f *FS) enabledStateNames() []string {
	var names []string
	for _, s := range hw.SkylakeCStates {
		names = append(names, s.Name)
		if s.Name == f.cfg.MaxCState {
			break
		}
	}
	return names
}

// Read returns the contents of a virtual file.
func (f *FS) Read(path string) (string, error) {
	switch {
	case path == "/sys/devices/system/cpu/smt/control":
		if f.cfg.SMT {
			return "on", nil
		}
		return "off", nil
	case path == "/sys/devices/system/cpu/smt/active":
		if f.cfg.SMT {
			return "1", nil
		}
		return "0", nil
	case path == "/sys/module/intel_idle/parameters/max_cstate":
		return strconv.Itoa(f.maxCStateIndex()), nil
	case path == "/proc/cmdline":
		return f.Cmdline(), nil
	case path == "/sys/devices/system/cpu/online":
		return fmt.Sprintf("0-%d", f.threadCount()-1), nil
	}

	// Per-CPU cpufreq files.
	var cpu int
	var leaf string
	if n, _ := fmt.Sscanf(path, "/sys/devices/system/cpu/cpu%d/cpufreq/%s", &cpu, &leaf); n == 2 {
		if cpu < 0 || cpu >= f.threadCount() {
			return "", fmt.Errorf("sysfs: no such cpu %d", cpu)
		}
		switch leaf {
		case "scaling_driver":
			return f.cfg.Driver.String(), nil
		case "scaling_governor":
			return f.cfg.Governor.String(), nil
		case "scaling_min_freq":
			return strconv.Itoa(int(f.cfg.MinFreqGHz * 1e6)), nil
		case "scaling_max_freq":
			return strconv.Itoa(int(f.cfg.MaxFreqGHz() * 1e6)), nil
		case "cpuinfo_min_freq":
			return strconv.Itoa(int(hw.SkylakeMinGHz * 1e6)), nil
		case "cpuinfo_max_freq":
			return strconv.Itoa(int(hw.SkylakeTurboGHz * 1e6)), nil
		}
		return "", fmt.Errorf("sysfs: unknown cpufreq file %q", leaf)
	}

	// Per-CPU cpuidle files.
	var state int
	if n, _ := fmt.Sscanf(path, "/sys/devices/system/cpu/cpu%d/cpuidle/state%d/%s", &cpu, &state, &leaf); n == 3 {
		if cpu < 0 || cpu >= f.threadCount() {
			return "", fmt.Errorf("sysfs: no such cpu %d", cpu)
		}
		names := f.enabledStateNames()
		if state < 0 || state >= len(names) {
			return "", fmt.Errorf("sysfs: no such cpuidle state %d", state)
		}
		cs, _ := hw.CStateByName(names[state])
		switch leaf {
		case "name":
			return cs.Name, nil
		case "latency":
			return strconv.Itoa(int(cs.ExitLatency.Microseconds())), nil
		case "residency":
			return strconv.Itoa(int(cs.TargetResidency.Microseconds())), nil
		}
		return "", fmt.Errorf("sysfs: unknown cpuidle file %q", leaf)
	}

	return "", fmt.Errorf("sysfs: no such file %q", path)
}

// Write updates a runtime-tunable knob. Writes to boot-time-only knobs
// (C-states, driver, tickless) return an error directing the caller to the
// kernel command line, mirroring real systems.
func (f *FS) Write(path, value string) error {
	value = strings.TrimSpace(value)
	switch {
	case path == "/sys/devices/system/cpu/smt/control":
		switch value {
		case "on":
			f.cfg.SMT = true
		case "off":
			f.cfg.SMT = false
		default:
			return fmt.Errorf("sysfs: invalid smt control %q", value)
		}
		return nil
	case path == "/sys/module/intel_idle/parameters/max_cstate":
		return fmt.Errorf("sysfs: max_cstate is boot-time only; set intel_idle.max_cstate on the kernel command line")
	}
	var cpu int
	var leaf string
	if n, _ := fmt.Sscanf(path, "/sys/devices/system/cpu/cpu%d/cpufreq/%s", &cpu, &leaf); n == 2 {
		if cpu < 0 || cpu >= f.threadCount() {
			return fmt.Errorf("sysfs: no such cpu %d", cpu)
		}
		switch leaf {
		case "scaling_governor":
			return f.SetGovernor(value)
		case "scaling_driver":
			return fmt.Errorf("sysfs: scaling_driver is boot-time only; set intel_pstate=disable on the kernel command line")
		}
		return fmt.Errorf("sysfs: cpufreq file %q is not writable", leaf)
	}
	return fmt.Errorf("sysfs: no such writable file %q", path)
}

// SetGovernor is the cpupower wrapper: `cpupower frequency-set -g <gov>`.
func (f *FS) SetGovernor(name string) error {
	switch name {
	case "powersave":
		f.cfg.Governor = hw.GovernorPowersave
	case "performance":
		f.cfg.Governor = hw.GovernorPerformance
	default:
		return fmt.Errorf("sysfs: unknown governor %q", name)
	}
	return nil
}

// ReadMSR returns the value of a model-specific register.
func (f *FS) ReadMSR(addr uint32) (uint64, error) {
	v, ok := f.msr[addr]
	if !ok {
		return 0, fmt.Errorf("sysfs: unimplemented MSR %#x", addr)
	}
	return v, nil
}

// WriteMSR updates a model-specific register and propagates the effect to
// the configuration — the paper uses MSR 0x1A0 to toggle turbo and MSR
// 0x620 to pin the uncore frequency.
func (f *FS) WriteMSR(addr uint32, value uint64) error {
	switch addr {
	case MSRMiscEnable:
		f.cfg.Turbo = value&(1<<turboDisableBit) == 0
	case MSRUncoreRatioLimit:
		maxRatio := value & 0x7f
		minRatio := (value >> 8) & 0x7f
		if minRatio > maxRatio {
			return fmt.Errorf("sysfs: uncore min ratio %d above max %d", minRatio, maxRatio)
		}
		f.cfg.UncoreDynamic = minRatio != maxRatio
	default:
		return fmt.Errorf("sysfs: unimplemented MSR %#x", addr)
	}
	f.msr[addr] = value
	return nil
}

// maxCStateIndex maps the config's deepest state to the intel_idle
// max_cstate numbering (C0=0, C1=1, C1E=2, C6=3).
func (f *FS) maxCStateIndex() int {
	for i, s := range hw.SkylakeCStates {
		if s.Name == f.cfg.MaxCState {
			return i
		}
	}
	return 0
}

// Cmdline renders the kernel command line corresponding to the boot-time
// knobs of the current configuration, as the paper passes via grub.
func (f *FS) Cmdline() string {
	var parts []string
	if f.cfg.MaxCState == "C0" {
		parts = append(parts, "idle=poll")
	} else {
		parts = append(parts, fmt.Sprintf("intel_idle.max_cstate=%d", f.maxCStateIndex()))
	}
	if f.cfg.Driver == hw.DriverACPICpufreq {
		parts = append(parts, "intel_pstate=disable")
	}
	if f.cfg.Tickless {
		parts = append(parts, "nohz=on")
	} else {
		parts = append(parts, "nohz=off")
	}
	return strings.Join(parts, " ")
}

// ApplyCmdline parses kernel command-line flags and applies the boot-time
// knobs, returning the resulting configuration. Unknown flags are ignored,
// as a kernel would.
func (f *FS) ApplyCmdline(cmdline string) error {
	for _, tok := range strings.Fields(cmdline) {
		switch {
		case tok == "idle=poll":
			f.cfg.MaxCState = "C0"
		case strings.HasPrefix(tok, "intel_idle.max_cstate="):
			v, err := strconv.Atoi(strings.TrimPrefix(tok, "intel_idle.max_cstate="))
			if err != nil || v < 0 || v >= len(hw.SkylakeCStates) {
				return fmt.Errorf("sysfs: bad max_cstate flag %q", tok)
			}
			f.cfg.MaxCState = hw.SkylakeCStates[v].Name
		case tok == "intel_pstate=disable":
			f.cfg.Driver = hw.DriverACPICpufreq
		case tok == "intel_pstate=enable":
			f.cfg.Driver = hw.DriverIntelPstate
		case tok == "nohz=on":
			f.cfg.Tickless = true
		case tok == "nohz=off":
			f.cfg.Tickless = false
		}
	}
	f.syncMSR()
	return nil
}

// List enumerates the virtual files present, for the sysfsctl tool.
func (f *FS) List() []string {
	paths := []string{
		"/proc/cmdline",
		"/sys/devices/system/cpu/online",
		"/sys/devices/system/cpu/smt/control",
		"/sys/devices/system/cpu/smt/active",
		"/sys/module/intel_idle/parameters/max_cstate",
	}
	for cpu := 0; cpu < f.threadCount(); cpu++ {
		base := fmt.Sprintf("/sys/devices/system/cpu/cpu%d", cpu)
		for _, leaf := range []string{"scaling_driver", "scaling_governor", "scaling_min_freq", "scaling_max_freq", "cpuinfo_min_freq", "cpuinfo_max_freq"} {
			paths = append(paths, base+"/cpufreq/"+leaf)
		}
		for i := range f.enabledStateNames() {
			for _, leaf := range []string{"name", "latency", "residency"} {
				paths = append(paths, fmt.Sprintf("%s/cpuidle/state%d/%s", base, i, leaf))
			}
		}
	}
	sort.Strings(paths)
	return paths
}
