package qmodel

import (
	"math"
	"testing"
)

func TestMM1KnownValues(t *testing.T) {
	// ρ=0.5, µ=1: W = 1/(1−λ) = 2.
	w, err := MM1(0.5, 1)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(w-2) > 1e-12 {
		t.Errorf("W = %v, want 2", w)
	}
	// Light load: W → 1/µ.
	w, _ = MM1(0.001, 1)
	if math.Abs(w-1.001) > 0.001 {
		t.Errorf("light-load W = %v, want ≈1", w)
	}
}

func TestMM1Errors(t *testing.T) {
	if _, err := MM1(1, 1); err == nil {
		t.Error("unstable queue accepted")
	}
	if _, err := MM1(-1, 1); err == nil {
		t.Error("negative rate accepted")
	}
}

func TestErlangCKnownValues(t *testing.T) {
	// Classic table value: c=2, a=1 (ρ=0.5): C = 1/3.
	pw, err := ErlangC(2, 1)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(pw-1.0/3.0) > 1e-9 {
		t.Errorf("ErlangC(2,1) = %v, want 1/3", pw)
	}
	// c=1 reduces to ρ.
	pw, _ = ErlangC(1, 0.7)
	if math.Abs(pw-0.7) > 1e-9 {
		t.Errorf("ErlangC(1,0.7) = %v, want 0.7", pw)
	}
}

func TestErlangCErrors(t *testing.T) {
	if _, err := ErlangC(0, 1); err == nil {
		t.Error("zero servers accepted")
	}
	if _, err := ErlangC(2, 2); err == nil {
		t.Error("unstable system accepted")
	}
	if _, err := ErlangC(2, -1); err == nil {
		t.Error("negative load accepted")
	}
}

func TestMMcReducesToMM1(t *testing.T) {
	w1, err := MM1(0.6, 1)
	if err != nil {
		t.Fatal(err)
	}
	wc, err := MMc(0.6, 1, 1)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(w1-wc) > 1e-9 {
		t.Errorf("MMc(c=1) = %v ≠ MM1 = %v", wc, w1)
	}
}

func TestMMcPoolingBeatsSingleServer(t *testing.T) {
	// Ten servers at ρ=0.5 wait far less than one server at ρ=0.5.
	w1, _ := MM1(0.5, 1)
	w10, err := MMc(5, 1, 10)
	if err != nil {
		t.Fatal(err)
	}
	if w10 >= w1 {
		t.Errorf("pooled W %v not below single-server W %v", w10, w1)
	}
	// At ρ=0.5 with 10 servers, waiting is nearly zero: W ≈ E[S].
	if w10 > 1.1 {
		t.Errorf("W(M/M/10, ρ=.5) = %v, want ≈1", w10)
	}
}

func TestMG1KnownValues(t *testing.T) {
	// scv=1 (exponential) must equal M/M/1.
	mm1, _ := MM1(0.5, 1)
	mg1, err := MG1(0.5, 1, 1)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(mg1-mm1) > 1e-9 {
		t.Errorf("MG1(scv=1) = %v ≠ MM1 = %v", mg1, mm1)
	}
	// Deterministic service halves the queueing term: Wq = ρE[S]/(2(1−ρ)).
	mg1d, _ := MG1(0.5, 1, 0)
	wantWq := 0.5 / (2 * 0.5)
	if math.Abs((mg1d-1)-wantWq) > 1e-9 {
		t.Errorf("MG1(scv=0) Wq = %v, want %v", mg1d-1, wantWq)
	}
}

func TestMGcApprox(t *testing.T) {
	// scv=1 must equal M/M/c.
	mmc, _ := MMc(5, 1, 10)
	mgc, err := MGcApprox(5, 1, 1, 10)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(mgc-mmc) > 1e-9 {
		t.Errorf("MGcApprox(scv=1) = %v ≠ MMc = %v", mgc, mmc)
	}
	// Lower variability → lower wait.
	mgcD, _ := MGcApprox(5, 1, 0, 10)
	if mgcD > mgc {
		t.Errorf("deterministic service waits more: %v > %v", mgcD, mgc)
	}
}

func TestP99MM1(t *testing.T) {
	// Exponential sojourn: p99 = ln(100)·W ≈ 4.6·W.
	w, _ := MM1(0.5, 1)
	p99, err := P99MM1(0.5, 1)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(p99/w-math.Log(100)) > 1e-9 {
		t.Errorf("p99/W = %v, want ln(100)", p99/w)
	}
}

func TestUtilization(t *testing.T) {
	if got := Utilization(500_000, 10e-6, 10); math.Abs(got-0.5) > 1e-12 {
		t.Errorf("utilization = %v, want 0.5", got)
	}
	if !math.IsInf(Utilization(1, 1, 0), 1) {
		t.Error("zero servers should be infinite")
	}
}
