// Package qmodel provides closed-form queueing-theory references — M/M/1,
// M/M/c (Erlang-C), and M/G/1 (Pollaczek–Khinchine) — used to validate the
// discrete-event simulation against theory and to sanity-check experiment
// parameters (offered utilization, expected waiting times) before running
// sweeps. The paper sizes its synthetic study with exactly this kind of
// reasoning (Little's law, §V-B).
package qmodel

import (
	"fmt"
	"math"
)

// MM1 returns the mean residence time (wait + service) of an M/M/1 queue
// with arrival rate lambda and service rate mu (both per second), in
// seconds. It errors when the queue is unstable (lambda ≥ mu).
func MM1(lambda, mu float64) (float64, error) {
	if lambda <= 0 || mu <= 0 {
		return 0, fmt.Errorf("qmodel: rates must be positive (λ=%v µ=%v)", lambda, mu)
	}
	if lambda >= mu {
		return 0, fmt.Errorf("qmodel: M/M/1 unstable (ρ=%v ≥ 1)", lambda/mu)
	}
	return 1 / (mu - lambda), nil
}

// ErlangC returns the probability that an arriving customer waits in an
// M/M/c system with offered load a = λ/µ and c servers.
func ErlangC(c int, a float64) (float64, error) {
	if c < 1 {
		return 0, fmt.Errorf("qmodel: need ≥1 server, got %d", c)
	}
	if a <= 0 {
		return 0, fmt.Errorf("qmodel: offered load must be positive, got %v", a)
	}
	rho := a / float64(c)
	if rho >= 1 {
		return 0, fmt.Errorf("qmodel: M/M/c unstable (ρ=%v ≥ 1)", rho)
	}
	// Iterative Erlang-B, then convert to Erlang-C for numerical stability.
	b := 1.0
	for k := 1; k <= c; k++ {
		b = a * b / (float64(k) + a*b)
	}
	return b / (1 - rho*(1-b)), nil
}

// MMc returns the mean residence time of an M/M/c queue (seconds).
func MMc(lambda, mu float64, c int) (float64, error) {
	if lambda <= 0 || mu <= 0 {
		return 0, fmt.Errorf("qmodel: rates must be positive (λ=%v µ=%v)", lambda, mu)
	}
	a := lambda / mu
	pw, err := ErlangC(c, a)
	if err != nil {
		return 0, err
	}
	wq := pw / (float64(c)*mu - lambda)
	return wq + 1/mu, nil
}

// MG1 returns the mean residence time of an M/G/1 queue via the
// Pollaczek–Khinchine formula, given the service-time mean and squared
// coefficient of variation (scv = Var/mean²; 1 = exponential, 0 =
// deterministic).
func MG1(lambda, meanService, scv float64) (float64, error) {
	if lambda <= 0 || meanService <= 0 || scv < 0 {
		return 0, fmt.Errorf("qmodel: invalid parameters (λ=%v E[S]=%v scv=%v)", lambda, meanService, scv)
	}
	rho := lambda * meanService
	if rho >= 1 {
		return 0, fmt.Errorf("qmodel: M/G/1 unstable (ρ=%v ≥ 1)", rho)
	}
	wq := lambda * meanService * meanService * (1 + scv) / (2 * (1 - rho))
	return wq + meanService, nil
}

// MGcApprox returns the mean residence time of an M/G/c queue using the
// Allen–Cunneen approximation: the M/M/c waiting time scaled by
// (1+scv)/2. Exact for scv=1; a standard engineering estimate otherwise.
func MGcApprox(lambda, meanService, scv float64, c int) (float64, error) {
	if meanService <= 0 {
		return 0, fmt.Errorf("qmodel: non-positive service time %v", meanService)
	}
	mmc, err := MMc(lambda, 1/meanService, c)
	if err != nil {
		return 0, err
	}
	wqExp := mmc - meanService
	return wqExp*(1+scv)/2 + meanService, nil
}

// P99MM1 returns the 99th-percentile residence time of an M/M/1 queue,
// using the exact exponential sojourn distribution: W ~ Exp(µ−λ).
func P99MM1(lambda, mu float64) (float64, error) {
	w, err := MM1(lambda, mu)
	if err != nil {
		return 0, err
	}
	return -math.Log(0.01) * w, nil
}

// Utilization returns λ·E[S]/c.
func Utilization(lambda, meanService float64, c int) float64 {
	if c <= 0 {
		return math.Inf(1)
	}
	return lambda * meanService / float64(c)
}
