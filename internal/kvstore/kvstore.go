// Package kvstore implements a memcached-like in-memory key-value store:
// a sharded hash table with per-shard LRU eviction, optional TTL expiry,
// and hit/miss statistics.
//
// The store plays two roles in the reproduction. First, it is the real data
// path behind the simulated Memcached service: the service model executes
// actual Get/Set operations against a populated store, so cache behaviour
// (hits, misses, evictions) is genuine rather than assumed. Second, its
// measured per-operation CPU cost calibrates the ~10 µs service-time scale
// the paper cites for Memcached ([4], [7]).
package kvstore

import (
	"errors"
	"fmt"
	"hash/fnv"
	"sync"
)

// Common errors.
var (
	ErrNotFound = errors.New("kvstore: key not found")
	ErrTooLarge = errors.New("kvstore: value exceeds item size limit")
)

// MaxValueSize is the largest storable value, matching memcached's default
// 1 MiB item limit.
const MaxValueSize = 1 << 20

// entry is one stored item, linked into its shard's LRU list.
type entry struct {
	key        string
	value      []byte
	expiresAt  int64 // virtual nanoseconds; 0 = no expiry
	prev, next *entry
}

// shard is one hash-table partition with its own lock and LRU list.
type shard struct {
	mu    sync.Mutex
	items map[string]*entry
	// LRU list: head = most recent, tail = least recent.
	head, tail *entry
	bytes      int64
	maxBytes   int64

	hits, misses, evictions, expirations uint64
}

// Store is a sharded LRU key-value store, safe for concurrent use.
type Store struct {
	shards []*shard
	mask   uint32
}

// Config sizes the store.
type Config struct {
	// Shards is the number of hash partitions; it is rounded up to a
	// power of two. More shards reduce lock contention.
	Shards int
	// MaxBytesPerShard bounds each shard's value bytes; 0 means unbounded.
	MaxBytesPerShard int64
}

// New creates a store. A zero Config yields 16 unbounded shards.
func New(cfg Config) *Store {
	n := cfg.Shards
	if n <= 0 {
		n = 16
	}
	// Round up to a power of two for mask-based indexing.
	p := 1
	for p < n {
		p <<= 1
	}
	s := &Store{shards: make([]*shard, p), mask: uint32(p - 1)}
	for i := range s.shards {
		s.shards[i] = &shard{items: make(map[string]*entry), maxBytes: cfg.MaxBytesPerShard}
	}
	return s
}

func (s *Store) shardFor(key string) *shard {
	h := fnv.New32a()
	h.Write([]byte(key))
	return s.shards[h.Sum32()&s.mask]
}

// Set stores value under key with an optional expiry (virtual nanoseconds;
// 0 = never). The value is copied.
func (s *Store) Set(key string, value []byte, expiresAt int64) error {
	if len(value) > MaxValueSize {
		return fmt.Errorf("%w: %d bytes", ErrTooLarge, len(value))
	}
	sh := s.shardFor(key)
	sh.mu.Lock()
	defer sh.mu.Unlock()

	if e, ok := sh.items[key]; ok {
		sh.bytes += int64(len(value)) - int64(len(e.value))
		e.value = append(e.value[:0], value...)
		e.expiresAt = expiresAt
		sh.moveToFront(e)
	} else {
		e := &entry{key: key, value: append([]byte(nil), value...), expiresAt: expiresAt}
		sh.items[key] = e
		sh.pushFront(e)
		sh.bytes += int64(len(value))
	}
	sh.evictIfNeeded()
	return nil
}

// Get returns a copy of the value stored under key. now is the caller's
// virtual clock, used for TTL expiry.
func (s *Store) Get(key string, now int64) ([]byte, error) {
	sh := s.shardFor(key)
	sh.mu.Lock()
	defer sh.mu.Unlock()

	e, ok := sh.items[key]
	if !ok {
		sh.misses++
		return nil, ErrNotFound
	}
	if e.expiresAt != 0 && now >= e.expiresAt {
		sh.removeLocked(e)
		sh.expirations++
		sh.misses++
		return nil, ErrNotFound
	}
	sh.hits++
	sh.moveToFront(e)
	return append([]byte(nil), e.value...), nil
}

// Delete removes key, reporting whether it was present.
func (s *Store) Delete(key string) bool {
	sh := s.shardFor(key)
	sh.mu.Lock()
	defer sh.mu.Unlock()
	e, ok := sh.items[key]
	if !ok {
		return false
	}
	sh.removeLocked(e)
	return true
}

// Len returns the total number of stored items.
func (s *Store) Len() int {
	n := 0
	for _, sh := range s.shards {
		sh.mu.Lock()
		n += len(sh.items)
		sh.mu.Unlock()
	}
	return n
}

// Bytes returns the total stored value bytes.
func (s *Store) Bytes() int64 {
	var b int64
	for _, sh := range s.shards {
		sh.mu.Lock()
		b += sh.bytes
		sh.mu.Unlock()
	}
	return b
}

// Stats aggregates counters across shards.
type Stats struct {
	Hits, Misses, Evictions, Expirations uint64
}

// HitRate returns hits / (hits+misses), or 0 with no traffic.
func (st Stats) HitRate() float64 {
	total := st.Hits + st.Misses
	if total == 0 {
		return 0
	}
	return float64(st.Hits) / float64(total)
}

// Stats returns a snapshot of the store's counters.
func (s *Store) Stats() Stats {
	var st Stats
	for _, sh := range s.shards {
		sh.mu.Lock()
		st.Hits += sh.hits
		st.Misses += sh.misses
		st.Evictions += sh.evictions
		st.Expirations += sh.expirations
		sh.mu.Unlock()
	}
	return st
}

// --- shard internals (callers hold sh.mu) ---

func (sh *shard) pushFront(e *entry) {
	e.prev = nil
	e.next = sh.head
	if sh.head != nil {
		sh.head.prev = e
	}
	sh.head = e
	if sh.tail == nil {
		sh.tail = e
	}
}

func (sh *shard) unlink(e *entry) {
	if e.prev != nil {
		e.prev.next = e.next
	} else {
		sh.head = e.next
	}
	if e.next != nil {
		e.next.prev = e.prev
	} else {
		sh.tail = e.prev
	}
	e.prev, e.next = nil, nil
}

func (sh *shard) moveToFront(e *entry) {
	if sh.head == e {
		return
	}
	sh.unlink(e)
	sh.pushFront(e)
}

func (sh *shard) removeLocked(e *entry) {
	sh.unlink(e)
	delete(sh.items, e.key)
	sh.bytes -= int64(len(e.value))
}

func (sh *shard) evictIfNeeded() {
	if sh.maxBytes <= 0 {
		return
	}
	for sh.bytes > sh.maxBytes && sh.tail != nil {
		victim := sh.tail
		sh.removeLocked(victim)
		sh.evictions++
	}
}
