package kvstore

import (
	"fmt"
	"sync"
	"testing"
)

// preloadedStore builds a store with n fixed-size entries.
func preloadedStore(t testing.TB, n, valueSize int) *Store {
	t.Helper()
	s := New(Config{Shards: 64})
	buf := make([]byte, valueSize)
	for i := 0; i < n; i++ {
		if err := s.Set(fmt.Sprintf("key-%06d", i), buf, 0); err != nil {
			t.Fatal(err)
		}
	}
	return s
}

func TestSnapshotIsDeepFrozen(t *testing.T) {
	s := preloadedStore(t, 100, 32)
	sn := s.Snapshot()
	if sn.Len() != 100 || sn.Bytes() != 100*32 {
		t.Fatalf("snapshot len=%d bytes=%d, want 100/3200", sn.Len(), sn.Bytes())
	}

	// Mutating the origin store after the snapshot must not leak through:
	// overwrite (in place, same backing array path), delete, and add.
	if err := s.Set("key-000000", make([]byte, 5), 0); err != nil {
		t.Fatal(err)
	}
	s.Delete("key-000001")
	if err := s.Set("post-snapshot", make([]byte, 7), 0); err != nil {
		t.Fatal(err)
	}

	f := sn.Fork()
	if v, err := f.Get("key-000000", 0); err != nil || len(v) != 32 {
		t.Errorf("frozen value changed: len=%d err=%v, want 32", len(v), err)
	}
	if _, err := f.Get("key-000001", 0); err != nil {
		t.Errorf("frozen entry lost to origin delete: %v", err)
	}
	if _, err := f.Get("post-snapshot", 0); err != ErrNotFound {
		t.Errorf("post-snapshot origin write visible in snapshot: %v", err)
	}
}

func TestForkWritesInvisibleToSiblingsAndBase(t *testing.T) {
	s := preloadedStore(t, 50, 16)
	sn := s.Snapshot()
	a, b := sn.Fork(), sn.Fork()

	// Overwrite, add and delete in fork a.
	if err := a.Set("key-000003", make([]byte, 99), 0); err != nil {
		t.Fatal(err)
	}
	if err := a.Set("only-in-a", make([]byte, 10), 0); err != nil {
		t.Fatal(err)
	}
	if !a.Delete("key-000004") {
		t.Fatal("delete of visible base key reported absent")
	}

	// Fork a sees its own state.
	if v, _ := a.Get("key-000003", 0); len(v) != 99 {
		t.Errorf("a overwrite lost: len=%d", len(v))
	}
	if _, err := a.Get("key-000004", 0); err != ErrNotFound {
		t.Errorf("a delete not applied: %v", err)
	}
	if a.Len() != 50 || a.Bytes() != 50*16-16+99-16+10 {
		t.Errorf("a len=%d bytes=%d", a.Len(), a.Bytes())
	}

	// Sibling b sees the pristine base.
	if v, _ := b.Get("key-000003", 0); len(v) != 16 {
		t.Errorf("sibling sees a's overwrite: len=%d", len(v))
	}
	if _, err := b.Get("key-000004", 0); err != nil {
		t.Errorf("sibling sees a's delete: %v", err)
	}
	if _, err := b.Get("only-in-a", 0); err != ErrNotFound {
		t.Errorf("sibling sees a's insert: %v", err)
	}
	if b.Len() != 50 || b.Bytes() != 50*16 {
		t.Errorf("b len=%d bytes=%d, want pristine 50/800", b.Len(), b.Bytes())
	}

	// The base itself is untouched.
	if sn.Len() != 50 || sn.Bytes() != 50*16 {
		t.Errorf("base mutated: len=%d bytes=%d", sn.Len(), sn.Bytes())
	}

	// Deleting a fork-only key removes the overlay entry entirely.
	if !a.Delete("only-in-a") {
		t.Error("fork-only key delete reported absent")
	}
	if a.Delete("only-in-a") {
		t.Error("double delete reported present")
	}
}

func TestForkTTLAcrossLayers(t *testing.T) {
	s := New(Config{})
	if err := s.Set("ttl", make([]byte, 8), 100); err != nil {
		t.Fatal(err)
	}
	sn := s.Snapshot()
	a, b := sn.Fork(), sn.Fork()

	// Before expiry: hit.
	if _, err := a.Get("ttl", 99); err != nil {
		t.Fatalf("pre-expiry get: %v", err)
	}
	// At expiry: miss + expiration, and the entry is gone from a's view.
	if _, err := a.Get("ttl", 100); err != ErrNotFound {
		t.Fatalf("expired get: %v", err)
	}
	if _, err := a.Get("ttl", 0); err != ErrNotFound {
		t.Error("tombstone not persisted after expiry")
	}
	if a.Len() != 0 || a.Bytes() != 0 {
		t.Errorf("a len=%d bytes=%d after expiry, want 0/0", a.Len(), a.Bytes())
	}
	st := a.Stats()
	if st.Hits != 1 || st.Misses != 2 || st.Expirations != 1 || st.Evictions != 0 {
		t.Errorf("a stats = %+v", st)
	}

	// The sibling's clock is independent: b still sees the entry before
	// its own expiry observation, and b's counters are untouched by a.
	if _, err := b.Get("ttl", 50); err != nil {
		t.Errorf("sibling lost entry to a's expiration: %v", err)
	}
	if st := b.Stats(); st.Hits != 1 || st.Misses != 0 || st.Expirations != 0 {
		t.Errorf("b stats = %+v", st)
	}

	// An overlay write can expire too.
	if err := b.Set("ow", make([]byte, 4), 200); err != nil {
		t.Fatal(err)
	}
	if _, err := b.Get("ow", 300); err != ErrNotFound {
		t.Errorf("overlay TTL not applied: %v", err)
	}
	if st := b.Stats(); st.Expirations != 1 {
		t.Errorf("overlay expiration not counted: %+v", st)
	}
}

func TestForkResetDropsOverlay(t *testing.T) {
	s := preloadedStore(t, 40, 16)
	sn := s.Snapshot()
	f := sn.Fork()

	for i := 0; i < 10; i++ {
		if err := f.Set(fmt.Sprintf("key-%06d", i), make([]byte, 50), 0); err != nil {
			t.Fatal(err)
		}
	}
	f.Delete("key-000020")
	if err := f.Set("extra", make([]byte, 5), 0); err != nil {
		t.Fatal(err)
	}
	if f.Dirty() != 12 {
		t.Errorf("dirty = %d, want 12", f.Dirty())
	}

	f.Reset()
	if f.Dirty() != 0 {
		t.Errorf("dirty after reset = %d", f.Dirty())
	}
	if f.Len() != 40 || f.Bytes() != 40*16 {
		t.Errorf("after reset len=%d bytes=%d, want pristine 40/640", f.Len(), f.Bytes())
	}
	if v, err := f.Get("key-000000", 0); err != nil || len(v) != 16 {
		t.Errorf("after reset value len=%d err=%v, want preloaded 16", len(v), err)
	}
	if _, err := f.Get("key-000020", 0); err != nil {
		t.Errorf("after reset deleted key still masked: %v", err)
	}
	if _, err := f.Get("extra", 0); err != ErrNotFound {
		t.Errorf("after reset overlay insert survived: %v", err)
	}
}

func TestForkRejectsOversizedValue(t *testing.T) {
	sn := New(Config{}).Snapshot()
	f := sn.Fork()
	if err := f.Set("big", make([]byte, MaxValueSize+1), 0); err == nil {
		t.Error("oversized value accepted")
	}
	if f.Len() != 0 || f.Bytes() != 0 {
		t.Errorf("rejected set mutated fork: len=%d bytes=%d", f.Len(), f.Bytes())
	}
}

// TestConcurrentForks exercises many forks of one snapshot from parallel
// goroutines (run under -race): sibling isolation must hold with the base
// read concurrently and each fork mutated from its own goroutine.
func TestConcurrentForks(t *testing.T) {
	s := preloadedStore(t, 200, 24)
	sn := s.Snapshot()

	const forks = 8
	var wg sync.WaitGroup
	errs := make(chan error, forks)
	for g := 0; g < forks; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			f := sn.Fork()
			mySize := 10 + g
			for round := 0; round < 50; round++ {
				for i := 0; i < 20; i++ {
					key := fmt.Sprintf("key-%06d", i)
					if err := f.Set(key, make([]byte, mySize), 0); err != nil {
						errs <- err
						return
					}
					v, err := f.Get(key, 0)
					if err != nil || len(v) != mySize {
						errs <- fmt.Errorf("fork %d: got len=%d err=%v, want %d", g, len(v), err, mySize)
						return
					}
				}
				// Untouched keys must always read back pristine.
				if v, err := f.Get("key-000100", 0); err != nil || len(v) != 24 {
					errs <- fmt.Errorf("fork %d: pristine key len=%d err=%v", g, len(v), err)
					return
				}
				f.Reset()
				if f.Len() != 200 {
					errs <- fmt.Errorf("fork %d: len=%d after reset", g, f.Len())
					return
				}
			}
		}(g)
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Error(err)
	}
	if sn.Len() != 200 || sn.Bytes() != 200*24 {
		t.Errorf("base mutated by concurrent forks: len=%d bytes=%d", sn.Len(), sn.Bytes())
	}
}

// BenchmarkSweepMemoryPerCell reports the per-cell memory cost of giving
// one concurrent Memcached-style sweep cell its own view of a 100k-key
// preloaded store. cow-fork is the copy-on-write path (fork the shared
// snapshot, dirty ~1k keys like a run's SETs, reset); full-preload is the
// pre-snapshot path (every cell rebuilds and re-preloads a private
// store). Compare B/op and allocs/op between the two.
func BenchmarkSweepMemoryPerCell(b *testing.B) {
	const (
		keys      = 100_000
		valueSize = 330 // ≈ the ETC mean value size
		dirty     = 1_000
	)

	buildStore := func() *Store {
		s := New(Config{Shards: 64})
		buf := make([]byte, valueSize)
		for i := 0; i < keys; i++ {
			if err := s.Set(fmt.Sprintf("etc-%012d", i), buf, 0); err != nil {
				b.Fatal(err)
			}
		}
		return s
	}

	b.Run("cow-fork", func(b *testing.B) {
		sn := buildStore().Snapshot()
		val := make([]byte, valueSize)
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			f := sn.Fork()
			for k := 0; k < dirty; k++ {
				if err := f.Set(fmt.Sprintf("etc-%012d", k), val, 0); err != nil {
					b.Fatal(err)
				}
			}
			f.Reset()
		}
	})

	b.Run("full-preload", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			s := buildStore()
			if s.Len() != keys {
				b.Fatal("preload incomplete")
			}
		}
	})
}

// TestForkValueSizeMatchesGet pins the allocation-free sized lookup
// against the reference Get on every layering case: base hit, overlay
// hit, miss, tombstone, and TTL expiry (including the expiry's
// bookkeeping side effects).
func TestForkValueSizeMatchesGet(t *testing.T) {
	s := preloadedStore(t, 10, 32)
	sn := s.Snapshot()

	// Each case prepares two forks identically: one looked up through
	// Get (reference), one through ValueSize.
	mk := func() (*Fork, *Fork) { return sn.Fork(), sn.Fork() }

	// Base hit.
	a, b := mk()
	v, err1 := a.Get("key-000003", 0)
	n, err2 := b.ValueSize("key-000003", 0)
	if err1 != nil || err2 != nil || n != len(v) {
		t.Fatalf("base hit: Get len=%d err=%v, ValueSize=%d err=%v", len(v), err1, n, err2)
	}

	// Overlay hit.
	a, b = mk()
	for _, f := range []*Fork{a, b} {
		if err := f.Set("key-000003", make([]byte, 7), 0); err != nil {
			t.Fatal(err)
		}
	}
	v, err1 = a.Get("key-000003", 0)
	n, err2 = b.ValueSize("key-000003", 0)
	if err1 != nil || err2 != nil || n != 7 || len(v) != 7 {
		t.Fatalf("overlay hit: Get len=%d err=%v, ValueSize=%d err=%v", len(v), err1, n, err2)
	}

	// Miss.
	a, b = mk()
	if _, err := a.Get("absent", 0); err != ErrNotFound {
		t.Fatalf("Get miss: %v", err)
	}
	if _, err := b.ValueSize("absent", 0); err != ErrNotFound {
		t.Fatalf("ValueSize miss: %v", err)
	}

	// TTL expiry: both forms must tombstone, count the expiration, and
	// report a miss.
	a, b = mk()
	for _, f := range []*Fork{a, b} {
		if err := f.Set("ttl", make([]byte, 5), 100); err != nil {
			t.Fatal(err)
		}
	}
	if _, err := a.Get("ttl", 200); err != ErrNotFound {
		t.Fatalf("Get after expiry: %v", err)
	}
	if _, err := b.ValueSize("ttl", 200); err != ErrNotFound {
		t.Fatalf("ValueSize after expiry: %v", err)
	}
	sa, sb := a.Stats(), b.Stats()
	if sa != sb {
		t.Fatalf("stats diverge: Get path %+v, ValueSize path %+v", sa, sb)
	}
	if a.Len() != b.Len() || a.Dirty() != b.Dirty() {
		t.Fatalf("bookkeeping diverges: len %d/%d dirty %d/%d", a.Len(), b.Len(), a.Dirty(), b.Dirty())
	}
}

// TestForkSetShared pins ownership-transfer semantics: the stored slice
// is the caller's (no copy), size accounting matches Set, and reads see
// the shared bytes.
func TestForkSetShared(t *testing.T) {
	s := preloadedStore(t, 4, 16)
	sn := s.Snapshot()
	f := sn.Fork()

	shared := make([]byte, 64)
	if err := f.SetShared("key-000001", shared[:48], 0); err != nil {
		t.Fatal(err)
	}
	if n, err := f.ValueSize("key-000001", 0); err != nil || n != 48 {
		t.Fatalf("ValueSize after SetShared = %d, %v; want 48", n, err)
	}
	if f.Bytes() != 3*16+48 {
		t.Fatalf("Bytes = %d, want %d", f.Bytes(), 3*16+48)
	}
	if err := f.SetShared("huge", make([]byte, MaxValueSize+1), 0); err == nil {
		t.Fatal("oversized SetShared accepted")
	}
	// Reset drops shared-slice overlay entries like any other.
	f.Reset()
	if n, err := f.ValueSize("key-000001", 0); err != nil || n != 16 {
		t.Fatalf("after Reset: ValueSize = %d, %v; want pristine 16", n, err)
	}
}
