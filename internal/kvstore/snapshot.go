// Copy-on-write snapshots. A Snapshot freezes a Store's contents into an
// immutable base layer; Fork derives cheap mutable overlays from it. The
// pattern is what lets N concurrent Memcached experiment cells share one
// preloaded key space instead of N private copies: the preload is snapshot
// once, every cell forks it, and a run reset is "drop the overlay" instead
// of replaying the run's dirty keys.

package kvstore

import (
	"fmt"
	"sync"
)

// snapEntry is one frozen item of a Snapshot.
type snapEntry struct {
	value     []byte
	expiresAt int64 // virtual nanoseconds; 0 = no expiry
}

// Snapshot is an immutable point-in-time copy of a Store's contents.
// Values are deep-copied at snapshot time, so the origin store may keep
// mutating afterwards. A Snapshot carries no locks and is safe for
// unlimited concurrent readers — which is exactly how sibling Forks use
// it.
//
// The base layer is frozen in every sense: no LRU recency reordering, no
// eviction, no TTL removal happen on it. Expiry of a base entry is
// observed per Fork (the fork records the expiration and masks the entry
// with a tombstone in its own overlay).
type Snapshot struct {
	items map[string]snapEntry
	bytes int64
}

// Snapshot freezes the store's current contents into an immutable base
// layer. Expired-but-unevicted entries are frozen as they are; each Fork
// applies TTL checks against its caller's own virtual clock.
func (s *Store) Snapshot() *Snapshot {
	sn := &Snapshot{items: make(map[string]snapEntry)}
	for _, sh := range s.shards {
		sh.mu.Lock()
		for k, e := range sh.items {
			sn.items[k] = snapEntry{value: append([]byte(nil), e.value...), expiresAt: e.expiresAt}
			sn.bytes += int64(len(e.value))
		}
		sh.mu.Unlock()
	}
	return sn
}

// Len returns the number of frozen items.
func (sn *Snapshot) Len() int { return len(sn.items) }

// Bytes returns the total frozen value bytes.
func (sn *Snapshot) Bytes() int64 { return sn.bytes }

// Fork derives a mutable copy-on-write view: reads fall through to the
// snapshot, writes land in a private overlay sized by the number of keys
// actually touched. Forks of the same snapshot are fully independent —
// one fork's writes, deletes and expirations are invisible to its
// siblings and to the base.
func (sn *Snapshot) Fork() *Fork {
	return &Fork{base: sn, overlay: make(map[string]overlayEntry), items: len(sn.items), bytes: sn.bytes}
}

// overlayEntry is one overlay item; deleted marks a tombstone masking a
// base entry.
type overlayEntry struct {
	value     []byte
	expiresAt int64
	deleted   bool
}

// Fork is a mutable overlay over an immutable Snapshot, presenting the
// same Get/Set/Delete/Len/Bytes/Stats surface as Store. It is safe for
// concurrent use, though the intended deployment is one fork per
// experiment environment (a single sim-engine goroutine) with only the
// shared base read concurrently.
//
// Semantics versus Store: the base layer is frozen, so a fork performs no
// LRU bookkeeping and never evicts (its Stats.Evictions is always zero);
// hit/miss/expiration counters are fork-scoped and accumulate for the
// fork's lifetime (Reset drops data changes, not counters), mirroring how
// a Store's counters persist across experiment runs.
type Fork struct {
	mu      sync.Mutex
	base    *Snapshot
	overlay map[string]overlayEntry
	items   int   // current visible item count
	bytes   int64 // current visible value bytes

	hits, misses, expirations uint64
}

// Base returns the snapshot this fork overlays.
func (f *Fork) Base() *Snapshot { return f.base }

// visible returns the entry the fork currently presents for key, before
// any TTL check, and whether one exists.
func (f *Fork) visible(key string) (value []byte, expiresAt int64, ok bool) {
	if oe, inOverlay := f.overlay[key]; inOverlay {
		if oe.deleted {
			return nil, 0, false
		}
		return oe.value, oe.expiresAt, true
	}
	if se, inBase := f.base.items[key]; inBase {
		return se.value, se.expiresAt, true
	}
	return nil, 0, false
}

// Get returns a copy of the value visible under key. now is the caller's
// virtual clock, used for TTL expiry; an expired entry is masked with a
// tombstone so later reads (and Len/Bytes) agree it is gone.
func (f *Fork) Get(key string, now int64) ([]byte, error) {
	f.mu.Lock()
	defer f.mu.Unlock()

	value, expiresAt, ok := f.visible(key)
	if !ok {
		f.misses++
		return nil, ErrNotFound
	}
	if expiresAt != 0 && now >= expiresAt {
		f.overlay[key] = overlayEntry{deleted: true}
		f.items--
		f.bytes -= int64(len(value))
		f.expirations++
		f.misses++
		return nil, ErrNotFound
	}
	f.hits++
	return append([]byte(nil), value...), nil
}

// ValueSize returns the size in bytes of the value visible under key,
// with exactly Get's hit/miss/TTL bookkeeping but without copying the
// value out. It exists for cost models that price a hit by its payload
// size (the Memcached service): on that per-request path the Get copy
// was the last remaining allocation.
func (f *Fork) ValueSize(key string, now int64) (int, error) {
	f.mu.Lock()
	defer f.mu.Unlock()

	value, expiresAt, ok := f.visible(key)
	if !ok {
		f.misses++
		return 0, ErrNotFound
	}
	if expiresAt != 0 && now >= expiresAt {
		f.overlay[key] = overlayEntry{deleted: true}
		f.items--
		f.bytes -= int64(len(value))
		f.expirations++
		f.misses++
		return 0, ErrNotFound
	}
	f.hits++
	return len(value), nil
}

// Set stores value under key in the overlay with an optional expiry
// (virtual nanoseconds; 0 = never). The value is copied.
func (f *Fork) Set(key string, value []byte, expiresAt int64) error {
	return f.set(key, value, expiresAt, true)
}

// SetShared is Set without the defensive copy: the fork stores the given
// slice as-is, so the caller must guarantee it is never mutated for the
// fork's lifetime. Intended for writers whose values are views of a
// shared immutable buffer (the Memcached service's zero-filled payload
// backing), where the per-write copy was pure allocation churn.
func (f *Fork) SetShared(key string, value []byte, expiresAt int64) error {
	return f.set(key, value, expiresAt, false)
}

func (f *Fork) set(key string, value []byte, expiresAt int64, copyValue bool) error {
	if len(value) > MaxValueSize {
		return fmt.Errorf("%w: %d bytes", ErrTooLarge, len(value))
	}
	f.mu.Lock()
	defer f.mu.Unlock()

	if prev, _, ok := f.visible(key); ok {
		f.bytes += int64(len(value)) - int64(len(prev))
	} else {
		f.items++
		f.bytes += int64(len(value))
	}
	if copyValue {
		value = append([]byte(nil), value...)
	}
	f.overlay[key] = overlayEntry{value: value, expiresAt: expiresAt}
	return nil
}

// Delete removes key from the fork's view, reporting whether it was
// present. Base entries are masked with a tombstone; the base itself is
// never modified.
func (f *Fork) Delete(key string) bool {
	f.mu.Lock()
	defer f.mu.Unlock()

	value, _, ok := f.visible(key)
	if !ok {
		return false
	}
	if _, inBase := f.base.items[key]; inBase {
		f.overlay[key] = overlayEntry{deleted: true}
	} else {
		delete(f.overlay, key)
	}
	f.items--
	f.bytes -= int64(len(value))
	return true
}

// Len returns the number of items the fork currently presents.
func (f *Fork) Len() int {
	f.mu.Lock()
	defer f.mu.Unlock()
	return f.items
}

// Bytes returns the value bytes the fork currently presents.
func (f *Fork) Bytes() int64 {
	f.mu.Lock()
	defer f.mu.Unlock()
	return f.bytes
}

// Dirty returns the number of overlay entries (writes, deletes and
// expiration tombstones) accumulated since the last Reset — the fork's
// memory cost beyond the shared base.
func (f *Fork) Dirty() int {
	f.mu.Lock()
	defer f.mu.Unlock()
	return len(f.overlay)
}

// Stats returns the fork's counters. Evictions is always zero: the base
// is frozen and the overlay is unbounded.
func (f *Fork) Stats() Stats {
	f.mu.Lock()
	defer f.mu.Unlock()
	return Stats{Hits: f.hits, Misses: f.misses, Expirations: f.expirations}
}

// Reset drops the overlay, returning the fork to the pristine snapshot
// state. It replaces the per-key restore loop a mutable store needs after
// a run: O(1) in the key-space size, O(dirty keys) for the garbage
// collector. Counters are not cleared (they are lifetime statistics, as
// on Store).
func (f *Fork) Reset() {
	f.mu.Lock()
	defer f.mu.Unlock()
	clear(f.overlay)
	f.items = len(f.base.items)
	f.bytes = f.base.bytes
}
