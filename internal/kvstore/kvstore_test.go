package kvstore

import (
	"errors"
	"fmt"
	"sync"
	"testing"
	"testing/quick"
)

func TestSetGet(t *testing.T) {
	s := New(Config{})
	if err := s.Set("k", []byte("v"), 0); err != nil {
		t.Fatal(err)
	}
	got, err := s.Get("k", 0)
	if err != nil {
		t.Fatal(err)
	}
	if string(got) != "v" {
		t.Errorf("Get = %q, want v", got)
	}
}

func TestGetMissing(t *testing.T) {
	s := New(Config{})
	if _, err := s.Get("nope", 0); !errors.Is(err, ErrNotFound) {
		t.Errorf("want ErrNotFound, got %v", err)
	}
}

func TestOverwriteUpdatesValueAndBytes(t *testing.T) {
	s := New(Config{})
	s.Set("k", []byte("short"), 0)
	s.Set("k", []byte("a much longer value"), 0)
	got, err := s.Get("k", 0)
	if err != nil {
		t.Fatal(err)
	}
	if string(got) != "a much longer value" {
		t.Errorf("Get after overwrite = %q", got)
	}
	if s.Len() != 1 {
		t.Errorf("Len = %d, want 1", s.Len())
	}
	if s.Bytes() != int64(len("a much longer value")) {
		t.Errorf("Bytes = %d, want %d", s.Bytes(), len("a much longer value"))
	}
}

func TestGetReturnsCopy(t *testing.T) {
	s := New(Config{})
	s.Set("k", []byte("abc"), 0)
	v, _ := s.Get("k", 0)
	v[0] = 'X'
	v2, _ := s.Get("k", 0)
	if string(v2) != "abc" {
		t.Error("Get exposed internal buffer")
	}
}

func TestSetCopiesInput(t *testing.T) {
	s := New(Config{})
	buf := []byte("abc")
	s.Set("k", buf, 0)
	buf[0] = 'X'
	v, _ := s.Get("k", 0)
	if string(v) != "abc" {
		t.Error("Set aliased caller buffer")
	}
}

func TestDelete(t *testing.T) {
	s := New(Config{})
	s.Set("k", []byte("v"), 0)
	if !s.Delete("k") {
		t.Error("Delete of present key returned false")
	}
	if s.Delete("k") {
		t.Error("Delete of absent key returned true")
	}
	if _, err := s.Get("k", 0); !errors.Is(err, ErrNotFound) {
		t.Error("key still present after delete")
	}
	if s.Len() != 0 || s.Bytes() != 0 {
		t.Errorf("Len=%d Bytes=%d after delete, want 0/0", s.Len(), s.Bytes())
	}
}

func TestTTLExpiry(t *testing.T) {
	s := New(Config{})
	s.Set("k", []byte("v"), 100)
	if _, err := s.Get("k", 50); err != nil {
		t.Errorf("unexpired key not readable: %v", err)
	}
	if _, err := s.Get("k", 100); !errors.Is(err, ErrNotFound) {
		t.Error("expired key still readable")
	}
	st := s.Stats()
	if st.Expirations != 1 {
		t.Errorf("expirations = %d, want 1", st.Expirations)
	}
	if s.Len() != 0 {
		t.Error("expired key not removed")
	}
}

func TestLRUEviction(t *testing.T) {
	// Single shard, capacity 10 bytes → storing 3×4 bytes evicts oldest.
	s := New(Config{Shards: 1, MaxBytesPerShard: 10})
	s.Set("a", []byte("xxxx"), 0)
	s.Set("b", []byte("yyyy"), 0)
	s.Set("c", []byte("zzzz"), 0) // 12 bytes > 10 → evict "a"
	if _, err := s.Get("a", 0); !errors.Is(err, ErrNotFound) {
		t.Error("LRU victim still present")
	}
	if _, err := s.Get("b", 0); err != nil {
		t.Error("recently used key evicted")
	}
	if got := s.Stats().Evictions; got != 1 {
		t.Errorf("evictions = %d, want 1", got)
	}
}

func TestLRUTouchOnGet(t *testing.T) {
	s := New(Config{Shards: 1, MaxBytesPerShard: 10})
	s.Set("a", []byte("xxxx"), 0)
	s.Set("b", []byte("yyyy"), 0)
	s.Get("a", 0) // touch a → b becomes LRU
	s.Set("c", []byte("zzzz"), 0)
	if _, err := s.Get("a", 0); err != nil {
		t.Error("touched key evicted")
	}
	if _, err := s.Get("b", 0); !errors.Is(err, ErrNotFound) {
		t.Error("untouched key survived eviction")
	}
}

func TestValueSizeLimit(t *testing.T) {
	s := New(Config{})
	big := make([]byte, MaxValueSize+1)
	if err := s.Set("k", big, 0); !errors.Is(err, ErrTooLarge) {
		t.Errorf("oversized value: want ErrTooLarge, got %v", err)
	}
}

func TestStatsHitRate(t *testing.T) {
	s := New(Config{})
	s.Set("k", []byte("v"), 0)
	s.Get("k", 0)
	s.Get("k", 0)
	s.Get("miss", 0)
	st := s.Stats()
	if st.Hits != 2 || st.Misses != 1 {
		t.Errorf("hits/misses = %d/%d, want 2/1", st.Hits, st.Misses)
	}
	if hr := st.HitRate(); hr < 0.66 || hr > 0.67 {
		t.Errorf("hit rate = %v, want 2/3", hr)
	}
	if (Stats{}).HitRate() != 0 {
		t.Error("empty stats hit rate should be 0")
	}
}

func TestShardRounding(t *testing.T) {
	s := New(Config{Shards: 5})
	if len(s.shards) != 8 {
		t.Errorf("shards = %d, want 8 (next power of two)", len(s.shards))
	}
}

func TestConcurrentAccess(t *testing.T) {
	s := New(Config{Shards: 8})
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < 1000; i++ {
				key := fmt.Sprintf("key-%d-%d", g, i%50)
				s.Set(key, []byte("value"), 0)
				s.Get(key, 0)
				if i%10 == 0 {
					s.Delete(key)
				}
			}
		}(g)
	}
	wg.Wait()
	// No assertion beyond absence of races (run with -race) and sane state.
	if s.Len() < 0 {
		t.Error("negative length")
	}
}

// Property: after Set(k, v), Get(k) returns v (no TTL, no eviction bound).
func TestPropertySetThenGet(t *testing.T) {
	s := New(Config{})
	f := func(key string, value []byte) bool {
		if len(value) > MaxValueSize {
			return true
		}
		if err := s.Set(key, value, 0); err != nil {
			return false
		}
		got, err := s.Get(key, 0)
		if err != nil {
			return false
		}
		if len(got) != len(value) {
			return false
		}
		for i := range got {
			if got[i] != value[i] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}

// Property: Bytes equals the sum of stored value lengths under any
// insert/delete sequence.
func TestPropertyByteAccounting(t *testing.T) {
	f := func(ops []struct {
		Key   uint8
		Value []byte
		Del   bool
	}) bool {
		s := New(Config{Shards: 4})
		model := make(map[string][]byte)
		for _, op := range ops {
			k := fmt.Sprintf("k%d", op.Key)
			if op.Del {
				s.Delete(k)
				delete(model, k)
			} else if len(op.Value) <= MaxValueSize {
				s.Set(k, op.Value, 0)
				model[k] = op.Value
			}
		}
		var want int64
		for _, v := range model {
			want += int64(len(v))
		}
		return s.Bytes() == want && s.Len() == len(model)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Error(err)
	}
}

func BenchmarkGetHit(b *testing.B) {
	s := New(Config{Shards: 16})
	for i := 0; i < 10000; i++ {
		s.Set(fmt.Sprintf("key-%d", i), make([]byte, 100), 0)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		s.Get(fmt.Sprintf("key-%d", i%10000), 0)
	}
}

func BenchmarkSet(b *testing.B) {
	s := New(Config{Shards: 16})
	v := make([]byte, 100)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		s.Set(fmt.Sprintf("key-%d", i%10000), v, 0)
	}
}
