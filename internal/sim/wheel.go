package sim

import "math/bits"

// This file implements the engine's production event queue: a
// deterministic hierarchical timer wheel in the style of Varghese &
// Lauck's hashed hierarchical timing wheels, tuned for a virtual-time
// discrete-event simulator.
//
// # Structure
//
// The wheel has wheelLevels levels of wheelSlots buckets each. Level l
// buckets have a granularity of 2^(l·wheelBits) virtual nanoseconds, so
// level 0 resolves single ticks, level 1 groups of 64 ticks, and so on;
// eleven 64-slot levels cover the full non-negative int64 deadline range.
// Each bucket is an intrusive doubly-linked FIFO chain of events, and
// each level keeps a one-bit-per-slot occupancy bitmap, so "find the
// earliest bucket" is a TrailingZeros64 per level rather than a scan.
//
// An event is bucketed by the most significant bit group in which its
// deadline differs from the wheel's cursor (the deadline of the last
// event popped):
//
//	level = index of highest differing bit / wheelBits
//	slot  = (deadline >> (level·wheelBits)) & (wheelSlots-1)
//
// Because deadlines never precede the cursor (the engine rejects
// scheduling in the past, and the cursor trails the engine clock), the
// chosen slot is always strictly ahead of the cursor's position at that
// level, within the same lap — slot indices are never ambiguous across
// laps, so no per-lap epoch bookkeeping is needed.
//
// # Operation costs
//
// push and cancel are O(1): a chain append/unlink plus a bitmap update.
// pop finds the lowest occupied slot of the lowest occupied level; if
// that level is 0 the bucket's head is the minimum and pop is O(1). If
// not, the bucket is cascaded — its chain is re-pushed against the
// cursor advanced to the bucket's start, landing every event at a
// strictly lower level — and the search repeats. Each event cascades at
// most wheelLevels-1 times over its life regardless of the pending
// population, so schedule/fire is O(1) amortized where the binary heap
// paid O(log n) per operation with cache-hostile pointer chasing.
//
// # Determinism
//
// The engine's contract is that events fire in exact (deadline, at, seq)
// order — schedule-origin instant, then FIFO — and the wheel preserves
// it by keeping every bucket chain sorted by that key:
//
//   - Two events with the same deadline always occupy the same bucket:
//     bucket choice is a function of (deadline, cursor), and the cursor
//     moves monotonically between pops, so equal deadlines can never be
//     split across buckets at the moment either is placed.
//   - Buckets above level 0 append in push order, exactly as before —
//     their internal order never reaches pop directly, because a
//     higher-level bucket is always cascaded first. A level-0 bucket
//     holds a single deadline value and is what pop drains, so level-0
//     pushes insert in (at, seq) order, walking back from the tail. For
//     events scheduled "as of now" — every event outside the sharded
//     runtime's deferred hand-offs — the key is non-decreasing in push
//     order (at equals the monotone clock and seq breaks ties) and a
//     cascade re-pushes same-deadline events in already-keyed order, so
//     the walk terminates at the tail in one comparison and push stays
//     the append it always was. A deferred-origin event walks past at
//     most the same-deadline events scheduled since its origin instant.
//
// A level-0 bucket therefore holds exactly one deadline value in
// (at, seq) order, and draining its head is byte-identical to the
// heap's (deadline, at, seq) pop — pinned by the differential tests in
// wheel_test.go and every figure golden downstream.
const (
	wheelBits   = 6
	wheelSlots  = 1 << wheelBits
	wheelMask   = wheelSlots - 1
	wheelLevels = 11 // 11 × 6 bits ≥ 63-bit deadlines
)

// wheelBucket is one slot's FIFO chain.
type wheelBucket struct {
	head, tail *event
}

// wheel is the production pendingQueue. The zero value is a valid empty
// wheel (cursor at zero, all buckets empty, legacy per-event cascade);
// newWheel turns cascade hysteresis on — the production configuration.
//
// Occupancy metadata is kept compact and separate from the bucket
// arrays: occupied[l] has bit i set ⇔ levels[l][i] is non-empty, and
// levelMask has bit l set ⇔ occupied[l] != 0. The earliest-bucket search
// is then two TrailingZeros on adjacent words instead of a strided walk
// over the (64 KB-scale) bucket arrays.
//
// # Cascade hysteresis
//
// A cascading bucket's chain is highly clustered in practice: phase
// programs and batch arrivals schedule many events at the same or
// adjacent deep deadlines, so after the cursor advances, long runs of
// consecutive chain events target the *same* destination bucket. With
// hysteresis on, cascadeChain detects maximal such runs — the run
// cursor (level, slot, deadline group) is recomputed only when the
// group changes, never re-walking settled events — and splices each run
// onto its destination with one O(1) link operation and one bitmap OR
// instead of a full place()+push per event. Firing order is unchanged:
// a run shares one bucket by construction, splicing preserves the
// chain-internal order that per-event pushes would have produced, and
// level-0 runs fall back to keyed per-event pushes whenever splicing
// could violate a drain bucket's (at, seq) order (see cascadeChain).
//
// The cascade* counters are instrumentation for tests and benchmarks
// (they never influence behavior): cascades counts bucket splits,
// cascadeEvents chain events walked, cascadeRuns wholesale splices, and
// cascadePushes events re-pushed individually (always equal to
// cascadeEvents with hysteresis off).
type wheel struct {
	cursor     Time // deadline of the last popped event (or last cascade origin)
	count      int
	levelMask  uint16
	hysteresis bool
	occupied   [wheelLevels]uint64
	levels     [wheelLevels][wheelSlots]wheelBucket

	cascades      uint64
	cascadeEvents uint64
	cascadeRuns   uint64
	cascadePushes uint64
}

func newWheel() *wheel { return &wheel{hysteresis: true} }

// newWheelLegacyCascade returns a wheel with the pre-hysteresis
// per-event cascade, retained (like the heap queue) as the reference
// the hysteresis path is differential-tested and benchmarked against.
// Not a production path.
func newWheelLegacyCascade() *wheel { return &wheel{} }

// place returns the (level, slot) for deadline relative to the cursor.
func (w *wheel) place(deadline Time) (int, int) {
	diff := uint64(deadline) ^ uint64(w.cursor)
	if diff == 0 {
		return 0, int(uint64(deadline) & wheelMask)
	}
	l := (63 - bits.LeadingZeros64(diff)) / wheelBits
	return l, int((uint64(deadline) >> (l * wheelBits)) & wheelMask)
}

func (w *wheel) push(ev *event) {
	if ev.deadline < w.cursor {
		// The engine clock trails no pending deadline and the cursor
		// trails the engine clock, so this is unreachable from the
		// Engine API; guard it because a behind-cursor placement would
		// silently corrupt firing order.
		panic("sim: timer wheel push behind cursor")
	}
	l, slot := w.place(ev.deadline)
	b := &w.levels[l][slot]
	if l == 0 && b.tail != nil && ev.less(b.tail) {
		// Keyed insert into the drain-order bucket (see the Determinism
		// comment): only a deferred-origin event ever takes this path, and
		// it walks past at most the same-deadline events scheduled since
		// its origin instant.
		after := b.tail.prev
		for after != nil && ev.less(after) {
			after = after.prev
		}
		if after == nil {
			ev.prev = nil
			ev.next = b.head
			b.head.prev = ev
			b.head = ev
		} else {
			ev.prev = after
			ev.next = after.next
			after.next.prev = ev
			after.next = ev
		}
	} else {
		ev.prev = b.tail
		ev.next = nil
		if b.tail == nil {
			b.head = ev
		} else {
			b.tail.next = ev
		}
		b.tail = ev
	}
	w.occupied[l] |= 1 << uint(slot)
	w.levelMask |= 1 << uint(l)
	ev.lvl, ev.slot = int8(l), uint8(slot)
	w.count++
}

func (w *wheel) pop() *event {
	for {
		if w.levelMask == 0 {
			return nil
		}
		l := bits.TrailingZeros16(w.levelMask)
		slot := bits.TrailingZeros64(w.occupied[l])
		b := &w.levels[l][slot]
		if l == 0 {
			// A level-0 bucket holds a single deadline in seq order:
			// the head is the global minimum.
			ev := b.head
			b.head = ev.next
			if b.head == nil {
				b.tail = nil
				w.clearSlot(0, slot)
			} else {
				b.head.prev = nil
			}
			ev.next, ev.prev = nil, nil
			w.count--
			w.cursor = ev.deadline
			return ev
		}
		// Cascade: advance the cursor to the bucket's start instant (≤
		// every deadline it holds, > every deadline already fired) and
		// redistribute the chain; each event lands at a level < l.
		head := b.head
		b.head, b.tail = nil, nil
		w.clearSlot(l, slot)
		shift := uint(l * wheelBits)
		high := uint64(w.cursor) &^ (uint64(1)<<(shift+wheelBits) - 1)
		w.cursor = Time(high | uint64(slot)<<shift)
		w.cascades++
		if w.hysteresis {
			w.cascadeChain(head)
			continue
		}
		for ev := head; ev != nil; {
			next := ev.next
			ev.next, ev.prev = nil, nil
			w.count--
			w.cascadeEvents++
			w.cascadePushes++
			w.push(ev)
			ev = next
		}
	}
}

// cascadeChain redistributes a cascading bucket's chain against the
// already-advanced cursor, splicing maximal same-destination runs
// wholesale (see the wheel doc comment).
//
// Run detection: let (l2, s2) = place(first.deadline) and
// group = first.deadline >> (l2·wheelBits). A later chain event e (all
// chain deadlines are ≥ cursor) lands in the same bucket iff
// e.deadline >> (l2·wheelBits) == group — equal high bits mean e agrees
// with first, and hence with the cursor, above group l2 and differs from
// the cursor inside group l2 exactly as first does, so place() yields
// the same (level, slot); unequal high bits differ from first somewhere
// at or above group l2, which forces a different slot or level. For
// l2 == 0 the test degenerates to deadline equality, matching the
// one-deadline-per-level-0-bucket invariant.
//
// Order: buckets above level 0 are append-order, so splicing a run onto
// the tail is exactly what per-event pushes would build. A level-0
// bucket must stay in (at, seq) drain order, so a level-0 run is spliced
// only when it is internally sorted and its first event does not precede
// the bucket's tail; otherwise — only deferred-origin (AtSinkFrom)
// events ever violate this — the run falls back to per-event keyed
// pushes. Splicing moves events without un/re-linking, so count is
// untouched; the fallback pre-decrements per event because push
// re-increments.
func (w *wheel) cascadeChain(head *event) {
	for ev := head; ev != nil; {
		l2, s2 := w.place(ev.deadline)
		lvl8, slot8 := int8(l2), uint8(s2)
		first, last := ev, ev
		first.lvl, first.slot = lvl8, slot8
		sorted := true
		n := uint64(1)
		if l2 == 0 {
			// Same level-0 bucket ⇔ same deadline; (at, seq) order must
			// be tracked for the drain-order check below.
			for last.next != nil && last.next.deadline == first.deadline {
				if sorted && last.next.less(last) {
					sorted = false
				}
				last = last.next
				last.lvl, last.slot = lvl8, slot8
				n++
			}
		} else {
			shift2 := uint(l2 * wheelBits)
			group := uint64(first.deadline) >> shift2
			for last.next != nil && uint64(last.next.deadline)>>shift2 == group {
				last = last.next
				last.lvl, last.slot = lvl8, slot8
				n++
			}
		}
		next := last.next
		w.cascadeEvents += n
		b := &w.levels[l2][s2]
		if l2 == 0 && (!sorted || (b.tail != nil && first.less(b.tail))) {
			// push overwrites the lvl/slot set optimistically above.
			for e := first; ; {
				en := e.next
				e.next, e.prev = nil, nil
				w.count--
				w.cascadePushes++
				w.push(e)
				if e == last {
					break
				}
				e = en
			}
			ev = next
			continue
		}
		last.next = nil
		first.prev = b.tail
		if b.tail == nil {
			b.head = first
		} else {
			b.tail.next = first
		}
		b.tail = last
		w.occupied[l2] |= 1 << uint(s2)
		w.levelMask |= 1 << uint(l2)
		w.cascadeRuns++
		ev = next
	}
}

// clearSlot marks (l, slot) empty, dropping the level from the summary
// mask when it was the level's last occupied slot.
func (w *wheel) clearSlot(l, slot int) {
	w.occupied[l] &^= 1 << uint(slot)
	if w.occupied[l] == 0 {
		w.levelMask &^= 1 << uint(l)
	}
}

// minDeadline reports the earliest pending deadline without mutating the
// wheel: the lowest occupied slot of the lowest occupied level bounds the
// minimum, and for level 0 the bucket's single deadline is exact. For a
// higher-level bucket the chain is scanned; that cost is paid at most
// once per cascade (the subsequent pop moves the chain to lower levels),
// so RunUntil's peek-then-step loop stays O(1) amortized.
func (w *wheel) minDeadline() (Time, bool) {
	if w.levelMask == 0 {
		return 0, false
	}
	l := bits.TrailingZeros16(w.levelMask)
	slot := bits.TrailingZeros64(w.occupied[l])
	b := &w.levels[l][slot]
	if l == 0 {
		return b.head.deadline, true
	}
	min := b.head.deadline
	for ev := b.head.next; ev != nil; ev = ev.next {
		if ev.deadline < min {
			min = ev.deadline
		}
	}
	return min, true
}

func (w *wheel) remove(ev *event) {
	b := &w.levels[ev.lvl][ev.slot]
	if ev.prev == nil {
		b.head = ev.next
	} else {
		ev.prev.next = ev.next
	}
	if ev.next == nil {
		b.tail = ev.prev
	} else {
		ev.next.prev = ev.prev
	}
	if b.head == nil {
		w.clearSlot(int(ev.lvl), int(ev.slot))
	}
	ev.next, ev.prev = nil, nil
	w.count--
}

func (w *wheel) size() int { return w.count }

func (w *wheel) drain(release func(*event)) {
	for l := range w.levels {
		for w.occupied[l] != 0 {
			slot := bits.TrailingZeros64(w.occupied[l])
			b := &w.levels[l][slot]
			for ev := b.head; ev != nil; {
				next := ev.next
				ev.next, ev.prev = nil, nil
				release(ev)
				ev = next
			}
			b.head, b.tail = nil, nil
			w.clearSlot(l, slot)
		}
	}
	w.count = 0
	w.cursor = 0
}
