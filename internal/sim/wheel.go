package sim

import "math/bits"

// This file implements the engine's production event queue: a
// deterministic hierarchical timer wheel in the style of Varghese &
// Lauck's hashed hierarchical timing wheels, tuned for a virtual-time
// discrete-event simulator.
//
// # Structure
//
// The wheel has wheelLevels levels of wheelSlots buckets each. Level l
// buckets have a granularity of 2^(l·wheelBits) virtual nanoseconds, so
// level 0 resolves single ticks, level 1 groups of 64 ticks, and so on;
// eleven 64-slot levels cover the full non-negative int64 deadline range.
// Each bucket is an intrusive doubly-linked FIFO chain of events, and
// each level keeps a one-bit-per-slot occupancy bitmap, so "find the
// earliest bucket" is a TrailingZeros64 per level rather than a scan.
//
// An event is bucketed by the most significant bit group in which its
// deadline differs from the wheel's cursor (the deadline of the last
// event popped):
//
//	level = index of highest differing bit / wheelBits
//	slot  = (deadline >> (level·wheelBits)) & (wheelSlots-1)
//
// Because deadlines never precede the cursor (the engine rejects
// scheduling in the past, and the cursor trails the engine clock), the
// chosen slot is always strictly ahead of the cursor's position at that
// level, within the same lap — slot indices are never ambiguous across
// laps, so no per-lap epoch bookkeeping is needed.
//
// # Operation costs
//
// push and cancel are O(1): a chain append/unlink plus a bitmap update.
// pop finds the lowest occupied slot of the lowest occupied level; if
// that level is 0 the bucket's head is the minimum and pop is O(1). If
// not, the bucket is cascaded — its chain is re-pushed against the
// cursor advanced to the bucket's start, landing every event at a
// strictly lower level — and the search repeats. Each event cascades at
// most wheelLevels-1 times over its life regardless of the pending
// population, so schedule/fire is O(1) amortized where the binary heap
// paid O(log n) per operation with cache-hostile pointer chasing.
//
// # Determinism
//
// The engine's contract is that events fire in exact (deadline, at, seq)
// order — schedule-origin instant, then FIFO — and the wheel preserves
// it by keeping every bucket chain sorted by that key:
//
//   - Two events with the same deadline always occupy the same bucket:
//     bucket choice is a function of (deadline, cursor), and the cursor
//     moves monotonically between pops, so equal deadlines can never be
//     split across buckets at the moment either is placed.
//   - Buckets above level 0 append in push order, exactly as before —
//     their internal order never reaches pop directly, because a
//     higher-level bucket is always cascaded first. A level-0 bucket
//     holds a single deadline value and is what pop drains, so level-0
//     pushes insert in (at, seq) order, walking back from the tail. For
//     events scheduled "as of now" — every event outside the sharded
//     runtime's deferred hand-offs — the key is non-decreasing in push
//     order (at equals the monotone clock and seq breaks ties) and a
//     cascade re-pushes same-deadline events in already-keyed order, so
//     the walk terminates at the tail in one comparison and push stays
//     the append it always was. A deferred-origin event walks past at
//     most the same-deadline events scheduled since its origin instant.
//
// A level-0 bucket therefore holds exactly one deadline value in
// (at, seq) order, and draining its head is byte-identical to the
// heap's (deadline, at, seq) pop — pinned by the differential tests in
// wheel_test.go and every figure golden downstream.
const (
	wheelBits   = 6
	wheelSlots  = 1 << wheelBits
	wheelMask   = wheelSlots - 1
	wheelLevels = 11 // 11 × 6 bits ≥ 63-bit deadlines
)

// wheelBucket is one slot's FIFO chain.
type wheelBucket struct {
	head, tail *event
}

// wheel is the production pendingQueue. The zero value is a valid empty
// wheel (cursor at zero, all buckets empty); newWheel exists only to
// mirror the heap construction site in NewEngine.
//
// Occupancy metadata is kept compact and separate from the bucket
// arrays: occupied[l] has bit i set ⇔ levels[l][i] is non-empty, and
// levelMask has bit l set ⇔ occupied[l] != 0. The earliest-bucket search
// is then two TrailingZeros on adjacent words instead of a strided walk
// over the (64 KB-scale) bucket arrays.
type wheel struct {
	cursor    Time // deadline of the last popped event (or last cascade origin)
	count     int
	levelMask uint16
	occupied  [wheelLevels]uint64
	levels    [wheelLevels][wheelSlots]wheelBucket
}

func newWheel() *wheel { return &wheel{} }

// place returns the (level, slot) for deadline relative to the cursor.
func (w *wheel) place(deadline Time) (int, int) {
	diff := uint64(deadline) ^ uint64(w.cursor)
	if diff == 0 {
		return 0, int(uint64(deadline) & wheelMask)
	}
	l := (63 - bits.LeadingZeros64(diff)) / wheelBits
	return l, int((uint64(deadline) >> (l * wheelBits)) & wheelMask)
}

func (w *wheel) push(ev *event) {
	if ev.deadline < w.cursor {
		// The engine clock trails no pending deadline and the cursor
		// trails the engine clock, so this is unreachable from the
		// Engine API; guard it because a behind-cursor placement would
		// silently corrupt firing order.
		panic("sim: timer wheel push behind cursor")
	}
	l, slot := w.place(ev.deadline)
	b := &w.levels[l][slot]
	if l == 0 && b.tail != nil && ev.less(b.tail) {
		// Keyed insert into the drain-order bucket (see the Determinism
		// comment): only a deferred-origin event ever takes this path, and
		// it walks past at most the same-deadline events scheduled since
		// its origin instant.
		after := b.tail.prev
		for after != nil && ev.less(after) {
			after = after.prev
		}
		if after == nil {
			ev.prev = nil
			ev.next = b.head
			b.head.prev = ev
			b.head = ev
		} else {
			ev.prev = after
			ev.next = after.next
			after.next.prev = ev
			after.next = ev
		}
	} else {
		ev.prev = b.tail
		ev.next = nil
		if b.tail == nil {
			b.head = ev
		} else {
			b.tail.next = ev
		}
		b.tail = ev
	}
	w.occupied[l] |= 1 << uint(slot)
	w.levelMask |= 1 << uint(l)
	ev.lvl, ev.slot = int8(l), uint8(slot)
	w.count++
}

func (w *wheel) pop() *event {
	for {
		if w.levelMask == 0 {
			return nil
		}
		l := bits.TrailingZeros16(w.levelMask)
		slot := bits.TrailingZeros64(w.occupied[l])
		b := &w.levels[l][slot]
		if l == 0 {
			// A level-0 bucket holds a single deadline in seq order:
			// the head is the global minimum.
			ev := b.head
			b.head = ev.next
			if b.head == nil {
				b.tail = nil
				w.clearSlot(0, slot)
			} else {
				b.head.prev = nil
			}
			ev.next, ev.prev = nil, nil
			w.count--
			w.cursor = ev.deadline
			return ev
		}
		// Cascade: advance the cursor to the bucket's start instant (≤
		// every deadline it holds, > every deadline already fired) and
		// re-push the chain in order; each event lands at a level < l.
		head := b.head
		b.head, b.tail = nil, nil
		w.clearSlot(l, slot)
		shift := uint(l * wheelBits)
		high := uint64(w.cursor) &^ (uint64(1)<<(shift+wheelBits) - 1)
		w.cursor = Time(high | uint64(slot)<<shift)
		for ev := head; ev != nil; {
			next := ev.next
			ev.next, ev.prev = nil, nil
			w.count--
			w.push(ev)
			ev = next
		}
	}
}

// clearSlot marks (l, slot) empty, dropping the level from the summary
// mask when it was the level's last occupied slot.
func (w *wheel) clearSlot(l, slot int) {
	w.occupied[l] &^= 1 << uint(slot)
	if w.occupied[l] == 0 {
		w.levelMask &^= 1 << uint(l)
	}
}

// minDeadline reports the earliest pending deadline without mutating the
// wheel: the lowest occupied slot of the lowest occupied level bounds the
// minimum, and for level 0 the bucket's single deadline is exact. For a
// higher-level bucket the chain is scanned; that cost is paid at most
// once per cascade (the subsequent pop moves the chain to lower levels),
// so RunUntil's peek-then-step loop stays O(1) amortized.
func (w *wheel) minDeadline() (Time, bool) {
	if w.levelMask == 0 {
		return 0, false
	}
	l := bits.TrailingZeros16(w.levelMask)
	slot := bits.TrailingZeros64(w.occupied[l])
	b := &w.levels[l][slot]
	if l == 0 {
		return b.head.deadline, true
	}
	min := b.head.deadline
	for ev := b.head.next; ev != nil; ev = ev.next {
		if ev.deadline < min {
			min = ev.deadline
		}
	}
	return min, true
}

func (w *wheel) remove(ev *event) {
	b := &w.levels[ev.lvl][ev.slot]
	if ev.prev == nil {
		b.head = ev.next
	} else {
		ev.prev.next = ev.next
	}
	if ev.next == nil {
		b.tail = ev.prev
	} else {
		ev.next.prev = ev.prev
	}
	if b.head == nil {
		w.clearSlot(int(ev.lvl), int(ev.slot))
	}
	ev.next, ev.prev = nil, nil
	w.count--
}

func (w *wheel) size() int { return w.count }

func (w *wheel) drain(release func(*event)) {
	for l := range w.levels {
		for w.occupied[l] != 0 {
			slot := bits.TrailingZeros64(w.occupied[l])
			b := &w.levels[l][slot]
			for ev := b.head; ev != nil; {
				next := ev.next
				ev.next, ev.prev = nil, nil
				release(ev)
				ev = next
			}
			b.head, b.tail = nil, nil
			w.clearSlot(l, slot)
		}
	}
	w.count = 0
	w.cursor = 0
}
