package sim

import (
	"fmt"
	"runtime"
	"sync"
	"sync/atomic"
	"time"
)

// This file is the conservative parallel-DES runtime: a ShardSet runs K
// engines — one per shard of a partitioned simulation — in lockstep
// epochs, exchanging timestamped cross-shard events through per-edge
// mailboxes.
//
// # Lookahead invariant
//
// The single correctness obligation on the caller: every cross-shard
// event sent while the sending shard executes an event at virtual time t
// must carry a deadline ≥ t + lookahead. In this codebase cross-shard
// traffic crosses only netmodel.Link boundaries, whose delay is bounded
// below by netmodel.Config.MinDelay — the link's base latency shrunk by
// the smallest realizable jitter multiplier — so the link structure
// itself supplies the lookahead. Send enforces the invariant with a
// panic rather than silently corrupting causality.
//
// # Epoch protocol and deadlock freedom
//
// Each epoch grants every shard the window [W_prev, W) where
// W = min over shards of next-event deadline + lookahead, computed
// identically by every worker from the published deadlines. Safety:
// every event fired inside the epoch has deadline ≥ N = min(nd), so any
// cross event it generates has deadline ≥ N + lookahead = W — deliverable
// at the next barrier, never into a shard's past. Liveness: after the
// epoch all remaining deadlines are ≥ W (local events < W fired, mailed
// events are ≥ W by the invariant), so the next window is ≥ W +
// lookahead — windows grow by at least the lookahead per epoch and the
// run terminates without null messages; the barrier itself plays the
// null-message role by publishing every shard's clock floor at once.
// A positive lookahead is therefore required (NewShardSet rejects 0).
//
// # Memory model
//
// All cross-shard state — mailboxes, published deadlines, the epoch
// callback's view of per-shard data — is handed off through the
// sense-reversing atomic barrier, whose Add/Load pairs give the
// happens-before edges; the race detector sees them, which is what makes
// `go test -race` meaningful over this layer. Mailbox mail[src][dst] is
// written only by src between barriers and drained only by dst in the
// phase a barrier separates from the writes, so each slice has exactly
// one owner at any instant.

// crossEvent is one timestamped event in flight between shards. origin
// is the instant the sending shard scheduled it, carried so the
// receiving engine can slot it into its (deadline, origin, seq) order
// exactly where a single merged engine would have (AtSinkFrom).
type crossEvent struct {
	origin   Time
	deadline Time
	sink     EventSink
	arg      EventArg
}

// ShardSet coordinates K per-shard engines through conservative epoch
// synchronization. Build one per partitioned run (or reuse across runs —
// Run leaves the set ready for the next call), deposit cross-shard
// events with Send from inside event handlers, and drive the whole
// simulation with Run.
type ShardSet struct {
	engines   []*Engine
	lookahead Time

	// mail[src][dst]: events sent by shard src to shard dst this epoch.
	mail [][][]crossEvent
	// nd[i] is shard i's published next-event deadline (Infinity = empty
	// queue), refreshed in the drain phase of every epoch.
	nd []Time

	barrier epochBarrier
	// aborted flips when any worker panics, releasing the others from
	// their spin loops instead of deadlocking the barrier.
	aborted atomic.Bool

	// end is the run's inclusive horizon (set by Run; Send drops events
	// beyond it, mirroring the single-engine run that never fires them).
	end Time
}

// NewShardSet builds a coordinator over the given engines. lookahead is
// the minimum virtual delay of any cross-shard event, measured from the
// instant of the event that sends it; it must be positive — with zero
// lookahead conservative windows cannot advance.
func NewShardSet(engines []*Engine, lookahead time.Duration) (*ShardSet, error) {
	if len(engines) == 0 {
		return nil, fmt.Errorf("sim: shard set needs ≥1 engine")
	}
	if lookahead <= 0 {
		return nil, fmt.Errorf("sim: shard lookahead must be positive, got %v", lookahead)
	}
	k := len(engines)
	s := &ShardSet{
		engines:   engines,
		lookahead: Time(lookahead),
		mail:      make([][][]crossEvent, k),
		nd:        make([]Time, k),
	}
	for i := range s.mail {
		s.mail[i] = make([][]crossEvent, k)
	}
	return s, nil
}

// Shards returns the shard count.
func (s *ShardSet) Shards() int { return len(s.engines) }

// Engine returns shard i's engine.
func (s *ShardSet) Engine(i int) *Engine { return s.engines[i] }

// Send deposits a cross-shard event: sink.OnEvent(deadline, arg) will
// fire on shard dst's engine. It must be called from shard src's worker
// (inside an event handler running on engines[src]) during Run. origin
// is the instant the event counts as scheduled at for the destination's
// same-deadline tie-break (normally the sending event's own instant, ≤
// deadline); it is what keeps sharded firing order equal to the
// single-engine order even when the hand-off is adopted epochs later.
// Events with deadlines beyond the run's horizon are dropped — the
// single-engine run would never fire them either.
func (s *ShardSet) Send(src, dst int, origin, deadline Time, sink EventSink, arg EventArg) {
	if now := s.engines[src].Now(); deadline < now.Add(time.Duration(s.lookahead)) {
		panic(fmt.Sprintf("sim: cross-shard event at %v violates lookahead %v from shard %d at %v",
			deadline, time.Duration(s.lookahead), src, now))
	}
	if origin > deadline {
		panic(fmt.Sprintf("sim: cross-shard origin %v after deadline %v", origin, deadline))
	}
	if deadline > s.end {
		return
	}
	s.mail[src][dst] = append(s.mail[src][dst], crossEvent{origin: origin, deadline: deadline, sink: sink, arg: arg})
}

// Run executes all shards until the inclusive horizon end, exactly as
// Engine.RunUntil(end) would on a single merged engine: every shard's
// clock finishes at end. onEpoch, when non-nil, runs on worker 0 at
// every epoch barrier (including once after the final epoch) — the hook
// per-shard recorder merging hangs off. Its watermark argument is the
// epoch's window bound: every event with deadline < watermark has fired
// on every shard, and no future event anywhere can fire below it
// (Infinity after the final epoch). The hook runs during the drain
// phase: other workers may concurrently refill their own engines from
// mailboxes, but they execute no events, so state written during the
// epoch's event processing is safely readable. Worker panics propagate
// to the caller after all workers have stopped.
func (s *ShardSet) Run(end Time, onEpoch func(watermark Time)) {
	k := len(s.engines)
	s.end = end
	s.aborted.Store(false)
	s.barrier.reset(k, &s.aborted)

	// K=1 degenerates gracefully: no goroutines are spawned, but the
	// same epoch/mailbox protocol runs, so every cross-shard code path
	// is exercised even single-sharded.
	panics := make([]any, k)
	var wg sync.WaitGroup
	for i := 1; i < k; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			defer func() {
				if p := recover(); p != nil {
					panics[i] = p
					s.aborted.Store(true)
				}
			}()
			s.runWorker(i, end, onEpoch)
		}(i)
	}
	func() {
		defer func() {
			if p := recover(); p != nil {
				panics[0] = p
				s.aborted.Store(true)
			}
		}()
		s.runWorker(0, end, onEpoch)
	}()
	wg.Wait()
	s.rethrow(panics)
}

// abortPanic is the secondary panic wait raises to release workers
// blocked on a barrier a panicked peer will never reach.
const abortPanic = "sim: shard set aborted by a peer worker panic"

// rethrow clears run state and re-raises a worker panic, preferring the
// original fault over the secondary abort panics it released peers with.
func (s *ShardSet) rethrow(panics []any) {
	for src := range s.mail {
		for dst := range s.mail[src] {
			s.mail[src][dst] = s.mail[src][dst][:0]
		}
	}
	var fallback any
	for _, p := range panics {
		if p == nil {
			continue
		}
		if p != any(abortPanic) {
			panic(p)
		}
		fallback = p
	}
	if fallback != nil {
		panic(fallback)
	}
}

// runWorker is one shard's epoch loop. The window computation is
// replicated (not elected): every worker derives the same W from the
// same published nd[] snapshot, so no extra barrier is needed to share
// it.
func (s *ShardSet) runWorker(i int, end Time, onEpoch func(watermark Time)) {
	eng := s.engines[i]
	// Publish the setup-scheduled state and align before the first epoch.
	s.nd[i] = eng.NextDeadline()
	s.barrier.wait()
	for {
		n := s.nd[0]
		for _, d := range s.nd[1:] {
			if d < n {
				n = d
			}
		}
		final := n == Infinity || n > end-s.lookahead // saturating n+lookahead > end
		if final {
			// No shard can generate a cross event with deadline ≤ end
			// anymore (every future event is ≥ n, its cross offspring
			// ≥ n + lookahead > end): finish inclusively, like RunUntil.
			eng.RunUntil(end)
		} else {
			eng.RunBefore(n + s.lookahead) // same window in every worker
		}
		s.barrier.wait()
		// Drain phase: adopt this epoch's inbound events and republish.
		for src := 0; src < len(s.engines); src++ {
			box := s.mail[src][i]
			for _, ce := range box {
				eng.AtSinkFrom(ce.origin, ce.deadline, ce.sink, ce.arg)
			}
			s.mail[src][i] = box[:0]
		}
		s.nd[i] = eng.NextDeadline()
		if i == 0 && onEpoch != nil {
			// Everything below the executed window has fired everywhere;
			// remaining local events and all mailed events are ≥ it.
			watermark := n + s.lookahead
			if final {
				watermark = Infinity
			}
			onEpoch(watermark)
		}
		s.barrier.wait()
		if final {
			return
		}
	}
}

// epochBarrier is a sense-reversing spin barrier. Spinning (with
// Gosched backoff) beats a sync.Cond here: epochs are microseconds
// apart and the workers are the only runnable goroutines, so parking
// through the scheduler would dominate the epoch cost.
type epochBarrier struct {
	parties int32
	arrived atomic.Int32
	sense   atomic.Uint32
	aborted *atomic.Bool
}

func (b *epochBarrier) reset(parties int, aborted *atomic.Bool) {
	b.parties = int32(parties)
	b.arrived.Store(0)
	b.sense.Store(0)
	b.aborted = aborted
}

// wait blocks until all parties arrive (or the set aborts on a worker
// panic, which releases everyone so the panic can propagate instead of
// deadlocking the survivors).
func (b *epochBarrier) wait() {
	sense := b.sense.Load()
	if b.arrived.Add(1) == b.parties {
		b.arrived.Store(0)
		b.sense.Store(sense + 1)
		return
	}
	for spins := 0; b.sense.Load() == sense; spins++ {
		if b.aborted.Load() {
			panic(abortPanic)
		}
		if spins%64 == 63 {
			// Yield so single-core hosts (and oversubscribed ones) make
			// progress instead of livelocking the spin loop.
			runtime.Gosched()
		}
	}
}
