package sim

import (
	"context"
	"fmt"
	"runtime"
	"runtime/pprof"
	"strconv"
	"sync"
	"sync/atomic"
	"time"
)

// This file is the conservative parallel-DES runtime: a ShardSet runs K
// engines — one per shard of a partitioned simulation — in lockstep
// epochs, exchanging timestamped cross-shard events through per-edge
// mailboxes.
//
// # Lookahead invariant
//
// The single correctness obligation on the caller: every cross-shard
// event sent while the sending shard executes an event at virtual time t
// must carry a deadline ≥ t + lookahead. In this codebase cross-shard
// traffic crosses only netmodel.Link boundaries, whose delay is bounded
// below by netmodel.Config.MinDelay — the link's base latency shrunk by
// the smallest realizable jitter multiplier — so the link structure
// itself supplies the lookahead. Send enforces the invariant with a
// panic rather than silently corrupting causality.
//
// # Epoch protocol and deadlock freedom
//
// Each epoch grants every shard the window [W_prev, W) where
// W = min over shards of published floor + lookahead, computed
// identically by every worker from the published floors. Safety: every
// event fired inside the epoch has deadline ≥ N = min(ndOut), so any
// cross event it generates has deadline ≥ N + lookahead = W —
// deliverable next epoch, never into a shard's past. Liveness: after
// the epoch all remaining deadlines are ≥ W (local events < W fired,
// mailed events are ≥ W by the invariant), so the next window is ≥ W +
// lookahead — windows grow by at least the lookahead per epoch and the
// run terminates without null messages; the barrier itself plays the
// null-message role by publishing every shard's clock floor at once.
// A positive lookahead is therefore required (NewShardSet rejects 0).
//
// # Fused single-barrier epochs
//
// A naive epoch needs two barriers: one after the run phase (so mail is
// complete before receivers drain and republish their deadlines), and
// one after the drain (so the republished deadlines are complete before
// anyone computes the next window). This runtime fuses them to ONE
// barrier per epoch by making each shard publish, at the end of its run
// phase, ndOut[i] = min(local NextDeadline, min deadline of the mail it
// SENT this epoch). Every pending event in the system is either in some
// shard's queue or in some mailbox — where its sender counts it — so
// min(ndOut) equals the post-drain min the two-barrier protocol
// computed, and the windows (hence the simulation) are byte-identical.
// Inbound mail is adopted at the START of the next epoch instead, which
// is safe: it carries deadlines ≥ the receiver's parked clock (= the
// previous window bound) and is drained before any event of the new
// window fires. Mailboxes are double-buffered by epoch parity so a
// sender appending to mail[src][dst][e&1] never touches the buffer the
// receiver is draining (parity (e-1)&1); a buffer is reused only one
// full barrier after it was drained. The published floors need the same
// treatment: with a single barrier a fast worker can finish epoch e+1
// and republish its floor while a slow peer is still reading floors to
// compute epoch e+1's window — if they shared one slot the peers would
// derive different windows (and different `final` verdicts, stranding a
// worker at a barrier its peers have exited). So floors are also
// parity-buffered: epoch e reads ndOut[e&1] and publishes ndOut[(e+1)&1].
//
// The onEpoch hook is the exception: it may mutate other shards' state
// (the loadgen recorder merge compacts per-worker buffers), so a hook
// epoch keeps the quiescent two-barrier shape — run, barrier, hook on
// worker 0 while everyone else idles, barrier. Hooks run every
// hookEvery-th epoch and always on the final one, with the same
// watermark sequence (ending in Infinity) as before; merging is
// deferred, never lost, and the record backlog is bounded by rate ×
// lookahead × hookEvery.
//
// # Memory model
//
// All cross-shard state — mailboxes, published floors, the epoch
// callback's view of per-shard data — is handed off through the
// barrier, whose atomic Add/Load pairs (and, on the park path, the
// mutex) give the happens-before edges; the race detector sees them,
// which is what makes `go test -race` meaningful over this layer. Each
// mailbox parity buffer has exactly one owner at any instant: src
// appends to parity e&1 during epoch e, dst drains parity e&1 at the
// start of epoch e+1 (one barrier later), and src next appends to it in
// epoch e+2 (another barrier later).

// crossEvent is one timestamped event in flight between shards. origin
// is the instant the sending shard scheduled it, carried so the
// receiving engine can slot it into its (deadline, origin, seq) order
// exactly where a single merged engine would have (AtSinkFrom).
type crossEvent struct {
	origin   Time
	deadline Time
	sink     EventSink
	arg      EventArg
}

// ShardSet coordinates K per-shard engines through conservative epoch
// synchronization. Build one per partitioned run (or reuse across runs —
// Run leaves the set ready for the next call), deposit cross-shard
// events with Send from inside event handlers, and drive the whole
// simulation with Run.
type ShardSet struct {
	engines   []*Engine
	lookahead Time

	// mail[src][dst][p]: events sent by shard src to shard dst during an
	// epoch of parity p. Buffers are grow-only and zeroed on drain, so
	// steady-state epochs append into warm capacity without allocating.
	mail [][][2][]crossEvent
	// ndOut[p][i] is shard i's published clock floor: the minimum of its
	// next local deadline and of every mail deadline it sent this epoch
	// (Infinity = nothing pending). Double-buffered by the parity of the
	// epoch that READS it — a worker finishing epoch e publishes into
	// ndOut[(e+1)&1], so a fast worker racing ahead into epoch e+1 never
	// clobbers the floors a slow peer is still reading to compute epoch
	// e+1's window. See "Fused single-barrier epochs".
	ndOut [2][]Time
	// sentMin[i] accumulates the min deadline shard i mailed this epoch;
	// parity[i] is the mailbox buffer it is writing. Both are owned by
	// worker i's goroutine.
	sentMin []Time
	parity  []uint32

	barrier epochBarrier
	// aborted flips when any worker panics, releasing the others from
	// their barrier waits instead of deadlocking the survivors.
	aborted atomic.Bool

	// end is the run's inclusive horizon (set by Run; Send drops events
	// beyond it, mirroring the single-engine run that never fires them).
	end Time
}

// hookEvery is the quiescent-epoch period: onEpoch runs on every
// hookEvery-th epoch (and on the final one). Larger values amortize the
// hook's extra barrier further but buffer more per-shard records
// between merges.
const hookEvery = 16

// NewShardSet builds a coordinator over the given engines. lookahead is
// the minimum virtual delay of any cross-shard event, measured from the
// instant of the event that sends it; it must be positive — with zero
// lookahead conservative windows cannot advance.
func NewShardSet(engines []*Engine, lookahead time.Duration) (*ShardSet, error) {
	if len(engines) == 0 {
		return nil, fmt.Errorf("sim: shard set needs ≥1 engine")
	}
	if lookahead <= 0 {
		return nil, fmt.Errorf("sim: shard lookahead must be positive, got %v", lookahead)
	}
	k := len(engines)
	s := &ShardSet{
		engines:   engines,
		lookahead: Time(lookahead),
		mail:      make([][][2][]crossEvent, k),
		ndOut:     [2][]Time{make([]Time, k), make([]Time, k)},
		sentMin:   make([]Time, k),
		parity:    make([]uint32, k),
	}
	for i := range s.mail {
		s.mail[i] = make([][2][]crossEvent, k)
	}
	return s, nil
}

// Shards returns the shard count.
func (s *ShardSet) Shards() int { return len(s.engines) }

// Engine returns shard i's engine.
func (s *ShardSet) Engine(i int) *Engine { return s.engines[i] }

// Send deposits a cross-shard event: sink.OnEvent(deadline, arg) will
// fire on shard dst's engine. It must be called from shard src's worker
// (inside an event handler running on engines[src]) during Run. origin
// is the instant the event counts as scheduled at for the destination's
// same-deadline tie-break (normally the sending event's own instant, ≤
// deadline); it is what keeps sharded firing order equal to the
// single-engine order even when the hand-off is adopted epochs later.
// Events with deadlines beyond the run's horizon are dropped — the
// single-engine run would never fire them either.
func (s *ShardSet) Send(src, dst int, origin, deadline Time, sink EventSink, arg EventArg) {
	if now := s.engines[src].Now(); deadline < now.Add(time.Duration(s.lookahead)) {
		panic(fmt.Sprintf("sim: cross-shard event at %v violates lookahead %v from shard %d at %v",
			deadline, time.Duration(s.lookahead), src, now))
	}
	if origin > deadline {
		panic(fmt.Sprintf("sim: cross-shard origin %v after deadline %v", origin, deadline))
	}
	if deadline > s.end {
		return
	}
	if deadline < s.sentMin[src] {
		s.sentMin[src] = deadline
	}
	p := s.parity[src]
	s.mail[src][dst][p] = append(s.mail[src][dst][p], crossEvent{origin: origin, deadline: deadline, sink: sink, arg: arg})
}

// Run executes all shards until the inclusive horizon end, exactly as
// Engine.RunUntil(end) would on a single merged engine: every shard's
// clock finishes at end. onEpoch, when non-nil, runs on worker 0 at a
// quiescent barrier every hookEvery-th epoch and once after the final
// epoch — the hook per-shard recorder merging hangs off. Its watermark
// argument is that epoch's window bound: every event with deadline <
// watermark has fired on every shard, and no future event anywhere can
// fire below it (Infinity after the final epoch). While the hook runs,
// every other worker idles at a barrier, so the hook may read — and
// compact — any shard's state. Worker panics propagate to the caller
// after all workers have stopped.
func (s *ShardSet) Run(end Time, onEpoch func(watermark Time)) {
	k := len(s.engines)
	s.end = end
	s.aborted.Store(false)
	s.barrier.reset(k, &s.aborted)

	// K=1 degenerates gracefully: no goroutines are spawned, but the
	// same epoch/mailbox protocol runs, so every cross-shard code path
	// is exercised even single-sharded.
	panics := make([]any, k)
	var wg sync.WaitGroup
	for i := 1; i < k; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			defer func() {
				if p := recover(); p != nil {
					panics[i] = p
					s.abort()
				}
			}()
			// The label makes profiles attribute per-shard time (barrier
			// wait vs mailbox drain vs event execution) to shard workers:
			// `go tool pprof -tagfocus shard=1 cpu.pprof`.
			pprof.Do(context.Background(), pprof.Labels("shard", strconv.Itoa(i)), func(context.Context) {
				s.runWorker(i, end, onEpoch)
			})
		}(i)
	}
	func() {
		defer func() {
			if p := recover(); p != nil {
				panics[0] = p
				s.abort()
			}
		}()
		pprof.Do(context.Background(), pprof.Labels("shard", "0"), func(context.Context) {
			s.runWorker(0, end, onEpoch)
		})
	}()
	wg.Wait()
	s.rethrow(panics)
}

// abort releases every worker from the barrier: spinners observe the
// flag; parked workers are woken to observe it.
func (s *ShardSet) abort() {
	s.aborted.Store(true)
	s.barrier.wake()
}

// abortPanic is the secondary panic wait raises to release workers
// blocked on a barrier a panicked peer will never reach.
const abortPanic = "sim: shard set aborted by a peer worker panic"

// rethrow clears run state and re-raises a worker panic, preferring the
// original fault over the secondary abort panics it released peers with.
func (s *ShardSet) rethrow(panics []any) {
	for src := range s.mail {
		for dst := range s.mail[src] {
			for p := 0; p < 2; p++ {
				box := s.mail[src][dst][p]
				for j := range box {
					box[j] = crossEvent{}
				}
				s.mail[src][dst][p] = box[:0]
			}
		}
	}
	var fallback any
	for _, p := range panics {
		if p == nil {
			continue
		}
		if p != any(abortPanic) {
			panic(p)
		}
		fallback = p
	}
	if fallback != nil {
		panic(fallback)
	}
}

// runWorker is one shard's epoch loop. The window computation is
// replicated (not elected): every worker derives the same W from the
// same published ndOut[] snapshot, so no extra barrier is needed to
// share it. One barrier per epoch; hook epochs take a second (see
// "Fused single-barrier epochs" above).
func (s *ShardSet) runWorker(i int, end Time, onEpoch func(watermark Time)) {
	eng := s.engines[i]
	// Publish the setup-scheduled state and align before the first epoch
	// (no mail is in flight yet, so the floor is just the local queue).
	s.ndOut[0][i] = eng.NextDeadline()
	s.sentMin[i] = Infinity
	s.barrier.wait()
	for epoch := uint64(0); ; epoch++ {
		floors := s.ndOut[epoch&1]
		n := floors[0]
		for _, d := range floors[1:] {
			if d < n {
				n = d
			}
		}
		final := n == Infinity || n > end-s.lookahead // saturating n+lookahead > end
		// Adopt the previous epoch's inbound mail before firing anything:
		// it may hold this window's earliest events. (Epoch 0 drains the
		// empty opposite-parity buffers.)
		s.parity[i] = uint32(epoch & 1)
		s.drainInbox(i, uint32((epoch+1)&1))
		if final {
			// No shard can generate a cross event with deadline ≤ end
			// anymore (every future event is ≥ n, its cross offspring
			// ≥ n + lookahead > end): finish inclusively, like RunUntil.
			eng.RunUntil(end)
		} else {
			eng.RunBefore(n + s.lookahead) // same window in every worker
		}
		// Publish the clock floor — local queue plus the mail sent this
		// epoch (its receivers don't know about it until they drain) —
		// into the buffer the NEXT epoch reads.
		nd := eng.NextDeadline()
		if sm := s.sentMin[i]; sm < nd {
			nd = sm
		}
		s.ndOut[(epoch+1)&1][i] = nd
		s.sentMin[i] = Infinity
		hook := onEpoch != nil && (final || epoch%hookEvery == hookEvery-1)
		s.barrier.wait()
		if hook {
			// Quiescent epoch: every worker idles at the next barrier
			// while worker 0 merges; the hook may touch any shard's state.
			if i == 0 {
				watermark := n + s.lookahead
				if final {
					watermark = Infinity
				}
				onEpoch(watermark)
			}
			s.barrier.wait()
		}
		if final {
			return
		}
	}
}

// drainInbox adopts every mailbox of parity p addressed to shard i,
// zeroing drained entries so sinks and payload pointers are not pinned
// until the buffer's next reuse. A named method so CPU profiles split
// mailbox time from barrier and event-execution time.
func (s *ShardSet) drainInbox(i int, p uint32) {
	eng := s.engines[i]
	for src := 0; src < len(s.engines); src++ {
		box := s.mail[src][i][p]
		if len(box) == 0 {
			continue
		}
		for j := range box {
			ce := &box[j]
			eng.AtSinkFrom(ce.origin, ce.deadline, ce.sink, ce.arg)
			*ce = crossEvent{}
		}
		s.mail[src][i][p] = box[:0]
	}
}

// epochBarrier is a sense-reversing barrier with adaptive
// spin-then-park waiting. Waiters spin (with Gosched backoff) for a
// budget tuned to the observed arrival skew between workers — epochs
// are microseconds apart, so for well-matched shards a short spin beats
// parking through the scheduler — and park on a sync.Cond beyond it, so
// a stalled peer (OS preemption, a long hook, a skewed partition) costs
// the survivors a core park instead of a hot spin.
//
// Park/wake correctness: the releaser stores the new sense and THEN
// checks parked; a parker increments parked and THEN re-checks the
// sense under mu before Wait. Both orders are sequentially consistent
// atomics, so either the releaser observes parked ≠ 0 and broadcasts
// (under mu: it cannot interleave between the parker's check and its
// Wait), or the parker observes the new sense and never parks. Aborts
// take the same path: ShardSet.abort stores the flag and broadcasts
// under mu, and a woken parker whose sense never advanced re-raises
// abortPanic.
type epochBarrier struct {
	parties int32
	arrived atomic.Int32
	sense   atomic.Uint32
	parked  atomic.Int32
	// spinBudget ≈ 4× an EWMA of observed spins-until-release, clamped
	// to [barrierMinSpin, barrierMaxSpin]. Concurrent adapt updates may
	// lose increments — it is a host-time tuning knob, deliberately kept
	// off the determinism surface (virtual time never reads it).
	spinBudget atomic.Int64
	aborted    *atomic.Bool
	mu         sync.Mutex
	cond       *sync.Cond
}

const (
	barrierMinSpin = 1 << 8
	barrierMaxSpin = 1 << 16
)

func (b *epochBarrier) reset(parties int, aborted *atomic.Bool) {
	b.parties = int32(parties)
	b.arrived.Store(0)
	b.sense.Store(0)
	b.aborted = aborted
	if b.cond == nil {
		b.cond = sync.NewCond(&b.mu)
	}
	if b.spinBudget.Load() == 0 {
		b.spinBudget.Store(1 << 12)
	}
	// spinBudget survives reset: across reuse (sweeps run many times
	// back to back) the observed skew is the best prior available.
}

// adapt folds one observed wait (in spins) into the budget EWMA.
func (b *epochBarrier) adapt(spins int64) {
	budget := b.spinBudget.Load()
	budget += spins - budget>>2 // steady state ≈ 4× typical wait
	if budget < barrierMinSpin {
		budget = barrierMinSpin
	} else if budget > barrierMaxSpin {
		budget = barrierMaxSpin
	}
	b.spinBudget.Store(budget)
}

// wait blocks until all parties arrive (or the set aborts on a worker
// panic, which releases everyone so the panic can propagate instead of
// deadlocking the survivors).
func (b *epochBarrier) wait() {
	sense := b.sense.Load()
	if b.arrived.Add(1) == b.parties {
		b.arrived.Store(0)
		b.sense.Store(sense + 1)
		if b.parked.Load() != 0 {
			b.mu.Lock()
			b.cond.Broadcast()
			b.mu.Unlock()
		}
		return
	}
	budget := b.spinBudget.Load()
	for spins := int64(0); spins < budget; spins++ {
		if b.sense.Load() != sense {
			b.adapt(spins)
			return
		}
		if b.aborted.Load() {
			panic(abortPanic)
		}
		if spins&63 == 63 {
			// Yield so single-core hosts (and oversubscribed ones) make
			// progress instead of livelocking the spin loop.
			runtime.Gosched()
		}
	}
	b.adapt(budget)
	b.parked.Add(1)
	b.mu.Lock()
	for b.sense.Load() == sense && !b.aborted.Load() {
		b.cond.Wait()
	}
	b.mu.Unlock()
	b.parked.Add(-1)
	if b.sense.Load() == sense {
		// Woken by an abort, not a release: propagate so the survivors
		// unwind (a release that raced the abort proceeds normally and
		// observes the flag at the next wait).
		panic(abortPanic)
	}
}

// wake broadcasts to parked waiters; call after flipping state they
// re-check (the abort flag). Locking mu first means a parker that
// checked the flag before wake cannot miss the broadcast: it is either
// inside Wait (mu released) or has not yet acquired mu and will see the
// flag when it does.
func (b *epochBarrier) wake() {
	if b.cond == nil {
		return
	}
	b.mu.Lock()
	b.cond.Broadcast()
	b.mu.Unlock()
}
