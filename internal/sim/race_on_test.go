//go:build race

package sim

// raceEnabled reports whether the race detector is compiled in. Timing
// and zero-allocation gates skip under -race: the instrumentation both
// slows hot paths unevenly and allocates shadow state, so the gates
// would measure the detector, not the code.
const raceEnabled = true
