package sim

import (
	"math/rand"
	"testing"
	"time"
)

// This file differential-tests the production timer wheel against the
// reference binary heap: both implement pendingQueue, and the engine's
// observable behaviour — firing order, clocks, cancellation semantics —
// must be byte-identical between them. The random drivers below exercise
// schedule/cancel/reschedule interleavings, including stale-ID (ABA)
// cancels against recycled wheel slots, and the pending-population
// benchmarks measure the O(log n) → O(1) win the wheel exists for.

// firing is one observed event execution.
type firing struct {
	at  Time
	tag int
}

// dualOp is one scripted queue operation, applied identically to both
// engines.
type dualOp struct {
	kind    int // 0 schedule, 1 cancel live, 2 cancel stale, 3 step, 4 runUntil, 5 reschedule
	delay   time.Duration
	pick    int // index into live (cancel/reschedule) or retired (stale cancel) IDs
	horizon time.Duration
}

// genOps builds a deterministic random op script. Delays are drawn from
// mixed magnitudes (same-tick collisions up to multi-millisecond jumps)
// so events land on every wheel level and same-deadline FIFO ordering is
// exercised hard.
func genOps(rng *rand.Rand, n int) []dualOp {
	ops := make([]dualOp, n)
	for i := range ops {
		op := dualOp{kind: weightedKind(rng)}
		switch rng.Intn(4) {
		case 0:
			op.delay = time.Duration(rng.Intn(4)) // same-tick pileups
		case 1:
			op.delay = time.Duration(rng.Intn(2000)) * time.Nanosecond
		case 2:
			op.delay = time.Duration(rng.Intn(200)) * time.Microsecond
		default:
			op.delay = time.Duration(rng.Intn(8)) * time.Millisecond
		}
		op.pick = rng.Int()
		op.horizon = time.Duration(1+rng.Intn(500)) * time.Microsecond
		ops[i] = op
	}
	return ops
}

func weightedKind(rng *rand.Rand) int {
	switch v := rng.Intn(100); {
	case v < 45:
		return 0 // schedule
	case v < 55:
		return 1 // cancel a live event
	case v < 62:
		return 2 // cancel a stale (fired/canceled) ID — ABA probe
	case v < 80:
		return 3 // step
	case v < 90:
		return 4 // run until a horizon
	default:
		return 5 // reschedule: cancel live + schedule replacement
	}
}

// dualDriver applies an op script to one engine and records its firings.
type dualDriver struct {
	e       *Engine
	fired   []firing
	live    []EventID
	liveTag []int
	retired []EventID
	nextTag int
}

func (d *dualDriver) OnEvent(now Time, arg EventArg) {
	d.fired = append(d.fired, firing{at: now, tag: int(arg.U64)})
}

func (d *dualDriver) schedule(delay time.Duration) {
	id := d.e.AfterSink(delay, d, EventArg{U64: uint64(d.nextTag)})
	d.live = append(d.live, id)
	d.liveTag = append(d.liveTag, d.nextTag)
	d.nextTag++
}

// compact drops IDs whose events have fired, moving them to the retired
// list (stale-cancel fodder). Called between ops so the live list stays
// meaningful.
func (d *dualDriver) compact() {
	keep := d.live[:0]
	keepTag := d.liveTag[:0]
	for i, id := range d.live {
		if id.Valid() {
			keep = append(keep, id)
			keepTag = append(keepTag, d.liveTag[i])
		} else {
			d.retired = append(d.retired, id)
		}
	}
	d.live, d.liveTag = keep, keepTag
}

func (d *dualDriver) apply(op dualOp) {
	d.compact()
	switch op.kind {
	case 0:
		d.schedule(op.delay)
	case 1:
		if len(d.live) > 0 {
			i := op.pick % len(d.live)
			d.e.Cancel(d.live[i])
			d.retired = append(d.retired, d.live[i])
			d.live = append(d.live[:i], d.live[i+1:]...)
			d.liveTag = append(d.liveTag[:i], d.liveTag[i+1:]...)
		}
	case 2:
		if len(d.retired) > 0 {
			// Stale cancel: the slot may have been recycled by a newer
			// event — a no-op on both queues (generation check), and on
			// the wheel specifically it must not unlink the slot's new
			// occupant from its bucket chain.
			d.e.Cancel(d.retired[op.pick%len(d.retired)])
		}
	case 3:
		d.e.Step()
	case 4:
		d.e.RunUntil(d.e.Now().Add(op.horizon))
	case 5:
		if len(d.live) > 0 {
			i := op.pick % len(d.live)
			d.e.Cancel(d.live[i])
			d.retired = append(d.retired, d.live[i])
			d.live = append(d.live[:i], d.live[i+1:]...)
			d.liveTag = append(d.liveTag[:i], d.liveTag[i+1:]...)
			d.schedule(op.delay)
		}
	}
}

// TestWheelHeapIdenticalOrder is the determinism pin for the wheel: for
// randomized schedule/cancel/reschedule/run interleavings, the wheel
// engine fires exactly the events the heap engine fires, at the same
// instants, in the same order.
func TestWheelHeapIdenticalOrder(t *testing.T) {
	seeds := 40
	opsPerSeed := 1500
	if testing.Short() {
		seeds = 10
	}
	for seed := 0; seed < seeds; seed++ {
		ops := genOps(rand.New(rand.NewSource(int64(seed))), opsPerSeed)
		wheelD := &dualDriver{e: NewEngine()}
		heapD := &dualDriver{e: newHeapEngine()}
		for i, op := range ops {
			wheelD.apply(op)
			heapD.apply(op)
			if wheelD.e.Now() != heapD.e.Now() {
				t.Fatalf("seed %d op %d: clocks diverge: wheel %v heap %v", seed, i, wheelD.e.Now(), heapD.e.Now())
			}
			if wheelD.e.Pending() != heapD.e.Pending() {
				t.Fatalf("seed %d op %d: pending diverge: wheel %d heap %d", seed, i, wheelD.e.Pending(), heapD.e.Pending())
			}
		}
		// Drain both completely.
		wheelD.e.Run()
		heapD.e.Run()
		if len(wheelD.fired) != len(heapD.fired) {
			t.Fatalf("seed %d: wheel fired %d events, heap %d", seed, len(wheelD.fired), len(heapD.fired))
		}
		for i := range wheelD.fired {
			if wheelD.fired[i] != heapD.fired[i] {
				t.Fatalf("seed %d: firing %d diverges: wheel %+v heap %+v",
					seed, i, wheelD.fired[i], heapD.fired[i])
			}
		}
	}
}

// TestWheelHeapIdenticalAcrossReset extends the differential pin across
// Engine.Reset: a reset wheel engine (recycled events, rewound cursor)
// must replay a schedule identically to a reset heap engine.
func TestWheelHeapIdenticalAcrossReset(t *testing.T) {
	for seed := 0; seed < 8; seed++ {
		ops := genOps(rand.New(rand.NewSource(int64(1000+seed))), 600)
		wheelD := &dualDriver{e: NewEngine()}
		heapD := &dualDriver{e: newHeapEngine()}
		for round := 0; round < 3; round++ {
			wheelD.fired, heapD.fired = nil, nil
			wheelD.live, wheelD.liveTag, wheelD.retired = nil, nil, nil
			heapD.live, heapD.liveTag, heapD.retired = nil, nil, nil
			wheelD.nextTag, heapD.nextTag = 0, 0
			for _, op := range ops {
				wheelD.apply(op)
				heapD.apply(op)
			}
			wheelD.e.RunUntil(wheelD.e.Now().Add(time.Millisecond))
			heapD.e.RunUntil(heapD.e.Now().Add(time.Millisecond))
			if len(wheelD.fired) != len(heapD.fired) {
				t.Fatalf("seed %d round %d: wheel fired %d, heap %d", seed, round, len(wheelD.fired), len(heapD.fired))
			}
			for i := range wheelD.fired {
				if wheelD.fired[i] != heapD.fired[i] {
					t.Fatalf("seed %d round %d: firing %d diverges", seed, round, i)
				}
			}
			// Reset with events still pending: both engines recycle and
			// must replay the next round identically.
			wheelD.e.Reset()
			heapD.e.Reset()
		}
	}
}

// TestWheelDeepDeadlines pins placement and cascading for deadlines that
// land on the wheel's top levels: hour-scale and day-scale deltas (the
// hour-long preset regime) interleaved with nanosecond traffic.
func TestWheelDeepDeadlines(t *testing.T) {
	e := NewEngine()
	var got []Time
	rec := func(now Time) { got = append(got, now) }
	e.After(24*time.Hour, rec)
	e.After(time.Nanosecond, rec)
	e.After(time.Hour, rec)
	e.After(3*time.Microsecond, rec)
	e.After(time.Hour, rec) // same deep deadline: FIFO pair
	e.Run()
	want := []Time{
		Time(0).Add(time.Nanosecond),
		Time(0).Add(3 * time.Microsecond),
		Time(0).Add(time.Hour),
		Time(0).Add(time.Hour),
		Time(0).Add(24 * time.Hour),
	}
	if len(got) != len(want) {
		t.Fatalf("fired %d events, want %d", len(got), len(want))
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("firing %d at %v, want %v (full: %v)", i, got[i], want[i], got)
		}
	}
}

// pendingBench runs the steady-state schedule+fire loop with a constant
// pending population of n events: every Step that fires the earliest
// event is paired with a schedule that replaces it, deltas drawn from a
// deterministic xorshift so both queue implementations (and every run)
// see the identical schedule. Deltas mirror the simulator's real mix —
// mostly µs-scale per-request timers churning over a standing population
// spread across a wide horizon (in-flight requests, hiccups, run-end
// timers). The population is what separates the queues: the heap pays
// O(log n) per operation, the wheel O(1) amortized.
func pendingBench(b *testing.B, e *Engine, n int) {
	b.Helper()
	s := &countSink{}
	// Mean inter-deadline spacing of 1µs at any population keeps the
	// deadline density realistic for the simulator's µs-scale traffic.
	horizon := uint64(n) * 1000
	rng := uint64(0x9E3779B97F4A7C15)
	next := func() uint64 {
		rng ^= rng << 13
		rng ^= rng >> 7
		rng ^= rng << 17
		return rng
	}
	delta := func() time.Duration {
		v := next()
		if v&7 == 0 {
			return time.Duration(1 + v%horizon) // far timer: run-end, hiccup
		}
		return time.Duration(1 + v%64_000) // near timer: µs-scale request event
	}
	for i := 0; i < n; i++ {
		e.AfterSink(time.Duration(1+next()%horizon), s, EventArg{U64: 1})
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		e.Step()
		e.AfterSink(delta(), s, EventArg{U64: 1})
	}
	b.StopTimer()
	if e.Pending() != n {
		b.Fatalf("population drifted: %d pending, want %d", e.Pending(), n)
	}
}

func benchmarkEnginePending(b *testing.B, n int) {
	b.Run("wheel", func(b *testing.B) { pendingBench(b, NewEngine(), n) })
	b.Run("heap", func(b *testing.B) { pendingBench(b, newHeapEngine(), n) })
}

// BenchmarkEnginePending{1k,100k,1M} measure one schedule+fire at a
// steady pending population — the regime the ROADMAP's million-QPS and
// hour-long scenarios put the engine in (pending ≈ in-flight requests ×
// per-request timers). Run with -benchmem: both paths must be 0 B/op in
// steady state.
func BenchmarkEnginePending1k(b *testing.B)   { benchmarkEnginePending(b, 1_000) }
func BenchmarkEnginePending100k(b *testing.B) { benchmarkEnginePending(b, 100_000) }
func BenchmarkEnginePending1M(b *testing.B)   { benchmarkEnginePending(b, 1_000_000) }

// measurePending times one steady-state schedule+fire at population n
// via the benchmark harness and reports ns/op and bytes/op.
func measurePending(newEngine func() *Engine, n int) (nsPerOp float64, bytesPerOp int64) {
	res := testing.Benchmark(func(b *testing.B) { pendingBench(b, newEngine(), n) })
	return float64(res.T.Nanoseconds()) / float64(res.N), res.AllocedBytesPerOp()
}

// TestWheelFasterThanHeapAt100kPending is the acceptance gate for the
// wheel: at a 100k pending population, schedule+fire must be at least 2×
// faster than the heap (measured ~5-6×; the 2× bar absorbs host noise)
// with zero steady-state allocations. Retries absorb scheduler hiccups
// on loaded CI hosts.
func TestWheelFasterThanHeapAt100kPending(t *testing.T) {
	if testing.Short() {
		t.Skip("timing gate: skipped in -short")
	}
	const n = 100_000
	var wheelNs, heapNs float64
	for attempt := 0; attempt < 3; attempt++ {
		var wheelB, heapB int64
		wheelNs, wheelB = measurePending(NewEngine, n)
		heapNs, heapB = measurePending(newHeapEngine, n)
		if wheelB != 0 || heapB != 0 {
			t.Fatalf("steady state allocates: wheel %d B/op, heap %d B/op, want 0", wheelB, heapB)
		}
		if heapNs >= 2*wheelNs {
			t.Logf("pending=100k: wheel %.1f ns/op, heap %.1f ns/op (%.1f×)", wheelNs, heapNs, heapNs/wheelNs)
			return
		}
	}
	t.Errorf("pending=100k: wheel %.1f ns/op vs heap %.1f ns/op — below the 2× bar", wheelNs, heapNs)
}

// TestWheelNoSlowerThanHeapAt1kPending guards the small-population end:
// the wheel's constant factor must not regress the common case where the
// heap's O(log n) is still cheap. The 1.15 tolerance absorbs run-to-run
// host noise; the wheel typically wins outright here too.
func TestWheelNoSlowerThanHeapAt1kPending(t *testing.T) {
	if testing.Short() {
		t.Skip("timing gate: skipped in -short")
	}
	const n = 1_000
	var wheelNs, heapNs float64
	for attempt := 0; attempt < 3; attempt++ {
		wheelNs, _ = measurePending(NewEngine, n)
		heapNs, _ = measurePending(newHeapEngine, n)
		if wheelNs <= heapNs*1.15 {
			t.Logf("pending=1k: wheel %.1f ns/op, heap %.1f ns/op", wheelNs, heapNs)
			return
		}
	}
	t.Errorf("pending=1k: wheel %.1f ns/op vs heap %.1f ns/op — wheel slower than the heap at small populations", wheelNs, heapNs)
}
