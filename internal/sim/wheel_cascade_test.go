package sim

import (
	"math/rand"
	"testing"
	"time"
)

// This file pins the cascade-hysteresis path (wheel.go cascadeChain):
// deep-horizon schedules spanning every wheel level, phase-program-shaped
// batch bursts at far deadlines, a differential property test against
// both the retained heap and the legacy per-event cascade, a
// cascade-work assertion proving hysteresis splices instead of
// re-pushing, and the dense-deep-horizon benchmark with its ≥1.5× gate.

// genDeepOps builds an op script whose delays are drawn per wheel level:
// a random level l ∈ [0, 11) and a delay in [2^(6l), 2^min(6l+6, 62)),
// so schedules land on every level including the top (decade-scale
// virtual deltas). A third of schedules extend a burst — a run of
// identical far delays back to back, the shape a phase-program batch
// arrival or an autoscaler tick fan-out produces — so cascades see long
// same-deadline chains.
func genDeepOps(rng *rand.Rand, n int) []dualOp {
	ops := make([]dualOp, 0, n)
	for len(ops) < n {
		op := dualOp{kind: weightedKind(rng)}
		op.pick = rng.Int()
		op.horizon = time.Duration(1+rng.Intn(500)) * time.Microsecond
		if op.kind == 0 || op.kind == 5 {
			l := rng.Intn(wheelLevels)
			lo := uint(6 * l)
			hi := uint(6*l + 6)
			if hi > 62 {
				hi = 62
			}
			span := int64(1)<<hi - int64(1)<<lo
			op.delay = time.Duration(int64(1)<<lo + rng.Int63n(span))
			if op.kind == 0 && l >= 3 && rng.Intn(3) == 0 {
				// Burst: replicate the same far deadline 8–128 times.
				for burst := 8 + rng.Intn(120); burst > 0 && len(ops) < n; burst-- {
					ops = append(ops, op)
				}
				continue
			}
		} else {
			op.delay = time.Duration(1+rng.Intn(2000)) * time.Nanosecond
		}
		ops = append(ops, op)
	}
	return ops
}

// TestWheelDeepHorizonDifferential runs the deep-horizon script op by op
// on the production wheel, the legacy per-event-cascade wheel, and the
// reference heap: clocks, pending counts, and the complete firing
// sequence must be identical across all three, and the production wheel
// must have actually exercised the splice path (otherwise the test
// proves nothing about hysteresis).
func TestWheelDeepHorizonDifferential(t *testing.T) {
	seeds := 25
	opsPerSeed := 1200
	if testing.Short() {
		seeds = 6
	}
	splices := uint64(0)
	for seed := 0; seed < seeds; seed++ {
		ops := genDeepOps(rand.New(rand.NewSource(int64(7000+seed))), opsPerSeed)
		wheelD := &dualDriver{e: NewEngine()}
		legacyD := &dualDriver{e: newLegacyCascadeEngine()}
		heapD := &dualDriver{e: newHeapEngine()}
		for i, op := range ops {
			wheelD.apply(op)
			legacyD.apply(op)
			heapD.apply(op)
			if wheelD.e.Now() != heapD.e.Now() || legacyD.e.Now() != heapD.e.Now() {
				t.Fatalf("seed %d op %d: clocks diverge: wheel %v legacy %v heap %v",
					seed, i, wheelD.e.Now(), legacyD.e.Now(), heapD.e.Now())
			}
			if wheelD.e.Pending() != heapD.e.Pending() || legacyD.e.Pending() != heapD.e.Pending() {
				t.Fatalf("seed %d op %d: pending diverge: wheel %d legacy %d heap %d",
					seed, i, wheelD.e.Pending(), legacyD.e.Pending(), heapD.e.Pending())
			}
		}
		wheelD.e.Run()
		legacyD.e.Run()
		heapD.e.Run()
		if len(wheelD.fired) != len(heapD.fired) || len(legacyD.fired) != len(heapD.fired) {
			t.Fatalf("seed %d: fired wheel %d legacy %d heap %d",
				seed, len(wheelD.fired), len(legacyD.fired), len(heapD.fired))
		}
		for i := range heapD.fired {
			if wheelD.fired[i] != heapD.fired[i] || legacyD.fired[i] != heapD.fired[i] {
				t.Fatalf("seed %d: firing %d diverges: wheel %+v legacy %+v heap %+v",
					seed, i, wheelD.fired[i], legacyD.fired[i], heapD.fired[i])
			}
		}
		splices += wheelD.e.queue.(*wheel).cascadeRuns
	}
	if splices == 0 {
		t.Fatal("deep-horizon script never took the splice path — workload not exercising hysteresis")
	}
}

// denseDriver drives a steady-state batch workload through an engine:
// each iteration schedules one batch of same-deadline events at a far
// (millisecond-to-seconds) horizon and fires one whole batch — the
// phase-program spike shape, which makes every event cascade down
// several levels in long same-deadline runs before firing. Construction
// primes a standing population of 64 batches so iterations are
// allocation-free steady state.
type denseDriver struct {
	e     *Engine
	s     countSink
	batch int
	rng   uint64
}

func newDenseDriver(e *Engine, batch int) *denseDriver {
	d := &denseDriver{e: e, batch: batch, rng: 0x9E3779B97F4A7C15}
	for i := 0; i < 64; i++ {
		d.scheduleBatch()
	}
	return d
}

func (d *denseDriver) far() time.Duration {
	d.rng ^= d.rng << 13
	d.rng ^= d.rng >> 7
	d.rng ^= d.rng << 17
	// 4 ms floor keeps every batch at least ~4 levels deep; the 2 h
	// span reaches level 7 (hour-long timers). Cascade work dominates
	// push/pop.
	return 4*time.Millisecond + time.Duration(d.rng%uint64(2*time.Hour))
}

func (d *denseDriver) scheduleBatch() {
	delay := d.far()
	for j := 0; j < d.batch; j++ {
		d.e.AfterSink(delay, &d.s, EventArg{U64: 1})
	}
}

// iter is one steady-state step: schedule one batch, fire one batch.
func (d *denseDriver) iter() {
	d.scheduleBatch()
	for j := 0; j < d.batch; j++ {
		d.e.Step()
	}
}

// TestWheelCascadeHysteresisReducesWork is the cascade-count assertion:
// on the dense-deep-horizon workload both wheels perform identical
// bucket splits and walk identical chains (hysteresis never changes
// placement), but the hysteresis wheel re-pushes almost nothing —
// same-deadline runs are spliced — where the legacy wheel re-pushes
// every walked event.
func TestWheelCascadeHysteresisReducesWork(t *testing.T) {
	prod := NewEngine()
	legacy := newLegacyCascadeEngine()
	for d, i := newDenseDriver(prod, 256), 0; i < 200; i++ {
		d.iter()
	}
	for d, i := newDenseDriver(legacy, 256), 0; i < 200; i++ {
		d.iter()
	}
	if prod.Now() != legacy.Now() || prod.Pending() != legacy.Pending() {
		t.Fatalf("engines diverge: now %v vs %v, pending %d vs %d",
			prod.Now(), legacy.Now(), prod.Pending(), legacy.Pending())
	}
	pw := prod.queue.(*wheel)
	lw := legacy.queue.(*wheel)
	if pw.cascades != lw.cascades || pw.cascadeEvents != lw.cascadeEvents {
		t.Fatalf("cascade structure diverges: splits %d vs %d, events walked %d vs %d",
			pw.cascades, lw.cascades, pw.cascadeEvents, lw.cascadeEvents)
	}
	if lw.cascadePushes != lw.cascadeEvents {
		t.Fatalf("legacy wheel spliced: %d pushes for %d walked", lw.cascadePushes, lw.cascadeEvents)
	}
	if pw.cascadeRuns == 0 {
		t.Fatal("hysteresis wheel never spliced a run")
	}
	if pw.cascadePushes*10 > lw.cascadePushes {
		t.Errorf("hysteresis re-pushed %d of %d walked events (legacy re-pushed all %d) — want <10%%",
			pw.cascadePushes, pw.cascadeEvents, lw.cascadePushes)
	}
	t.Logf("cascades=%d walked=%d: hysteresis spliced %d runs, re-pushed %d; legacy re-pushed %d",
		pw.cascades, pw.cascadeEvents, pw.cascadeRuns, pw.cascadePushes, lw.cascadePushes)
}

func benchmarkCascadeDense(b *testing.B, newEngine func() *Engine) {
	d := newDenseDriver(newEngine(), 256)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		d.iter()
	}
}

// BenchmarkCascadeDense measures one schedule+fire batch (256 events at
// one far deadline) on the dense-deep-horizon workload — the regime
// phase-program spikes and hour-long timers put the wheel in, where
// cascade cost dominates. hysteresis vs legacy is the PR 9 headline.
func BenchmarkCascadeDense(b *testing.B) {
	b.Run("hysteresis", func(b *testing.B) { benchmarkCascadeDense(b, NewEngine) })
	b.Run("legacy", func(b *testing.B) { benchmarkCascadeDense(b, newLegacyCascadeEngine) })
}

// TestWheelCascadeHysteresisFaster is the PR 9 wheel gate: on the
// dense-deep-horizon workload, cascade hysteresis must be ≥1.5× faster
// than the legacy per-event cascade (measured ~1.6×; the 1.5× bar sits
// just under it — retries absorb scheduler hiccups on loaded CI hosts),
// allocation-free on both paths.
func TestWheelCascadeHysteresisFaster(t *testing.T) {
	if testing.Short() {
		t.Skip("timing gate: skipped in -short")
	}
	if raceEnabled {
		t.Skip("timing/alloc gate: skipped under -race (instrumentation skews both)")
	}
	measure := func(newEngine func() *Engine) (float64, int64) {
		res := testing.Benchmark(func(b *testing.B) { benchmarkCascadeDense(b, newEngine) })
		return float64(res.T.Nanoseconds()) / float64(res.N), res.AllocedBytesPerOp()
	}
	var hystNs, legacyNs float64
	for attempt := 0; attempt < 3; attempt++ {
		var hystB, legacyB int64
		hystNs, hystB = measure(NewEngine)
		legacyNs, legacyB = measure(newLegacyCascadeEngine)
		if hystB != 0 || legacyB != 0 {
			t.Fatalf("steady state allocates: hysteresis %d B/op, legacy %d B/op, want 0", hystB, legacyB)
		}
		if legacyNs >= 1.5*hystNs {
			t.Logf("dense deep horizon: hysteresis %.0f ns/batch, legacy %.0f ns/batch (%.2f×)",
				hystNs, legacyNs, legacyNs/hystNs)
			return
		}
	}
	t.Errorf("dense deep horizon: hysteresis %.0f ns/batch vs legacy %.0f ns/batch — below the 1.5× bar",
		hystNs, legacyNs)
}
