// Package sim implements a deterministic discrete-event simulation engine.
//
// The engine advances a virtual clock with nanosecond resolution. Events
// scheduled for the same instant fire in the order they were scheduled
// (FIFO tie-breaking), which makes every simulation bit-reproducible for a
// given seed regardless of map iteration order or host scheduling.
//
// All timestamps and durations are virtual time: they have no relation to
// wall-clock time, so a two-minute experiment run completes in milliseconds
// of host time. This is what makes self-benchmarking noise (host OS jitter,
// GC pauses) irrelevant to the measured results.
package sim

import (
	"container/heap"
	"fmt"
	"math"
	"time"
)

// Time is a virtual timestamp in nanoseconds since the start of the
// simulation. It is a distinct type from time.Duration to prevent mixing
// virtual instants with durations in arithmetic.
type Time int64

// Infinity is a sentinel virtual time later than any schedulable event.
const Infinity Time = math.MaxInt64

// Add returns the instant d after t.
func (t Time) Add(d time.Duration) Time { return t + Time(d) }

// Sub returns the duration elapsed from u to t.
func (t Time) Sub(u Time) time.Duration { return time.Duration(t - u) }

// Seconds reports t as fractional seconds since simulation start.
func (t Time) Seconds() float64 { return float64(t) / 1e9 }

// Microseconds reports t as fractional microseconds since simulation start.
func (t Time) Microseconds() float64 { return float64(t) / 1e3 }

func (t Time) String() string {
	return time.Duration(t).String()
}

// Handler is the callback attached to a scheduled event. It runs when the
// virtual clock reaches the event's deadline.
type Handler func(now Time)

// Event is a scheduled callback. The zero Event is invalid; obtain events
// through Engine.At or Engine.After.
type event struct {
	deadline Time
	seq      uint64 // FIFO tie-breaker among equal deadlines
	fn       Handler
	canceled bool
	index    int // heap index, -1 once popped
}

// EventID identifies a scheduled event so it can be canceled. The zero
// EventID is never issued.
type EventID struct {
	ev *event
}

// Valid reports whether the ID refers to a scheduled (possibly already
// fired) event.
func (id EventID) Valid() bool { return id.ev != nil }

// eventQueue is a min-heap ordered by (deadline, seq).
type eventQueue []*event

func (q eventQueue) Len() int { return len(q) }

func (q eventQueue) Less(i, j int) bool {
	if q[i].deadline != q[j].deadline {
		return q[i].deadline < q[j].deadline
	}
	return q[i].seq < q[j].seq
}

func (q eventQueue) Swap(i, j int) {
	q[i], q[j] = q[j], q[i]
	q[i].index = i
	q[j].index = j
}

func (q *eventQueue) Push(x any) {
	ev := x.(*event)
	ev.index = len(*q)
	*q = append(*q, ev)
}

func (q *eventQueue) Pop() any {
	old := *q
	n := len(old)
	ev := old[n-1]
	old[n-1] = nil
	ev.index = -1
	*q = old[:n-1]
	return ev
}

// Engine is a single-threaded discrete-event simulator. It is not safe for
// concurrent use; the simulated world is single-clocked by design.
type Engine struct {
	now     Time
	queue   eventQueue
	nextSeq uint64
	fired   uint64
	running bool
}

// NewEngine returns an engine with the clock at zero and an empty queue.
func NewEngine() *Engine {
	return &Engine{}
}

// Now returns the current virtual time.
func (e *Engine) Now() Time { return e.now }

// Pending returns the number of events still scheduled (including canceled
// events not yet drained).
func (e *Engine) Pending() int { return len(e.queue) }

// Fired returns the total number of events that have executed.
func (e *Engine) Fired() uint64 { return e.fired }

// At schedules fn to run at the absolute virtual instant t. Scheduling in
// the past (t < Now) panics: in a DES that is always a logic bug, and
// silently clamping would corrupt causality.
func (e *Engine) At(t Time, fn Handler) EventID {
	if t < e.now {
		panic(fmt.Sprintf("sim: scheduling event at %v before now %v", t, e.now))
	}
	if fn == nil {
		panic("sim: nil event handler")
	}
	ev := &event{deadline: t, seq: e.nextSeq, fn: fn}
	e.nextSeq++
	heap.Push(&e.queue, ev)
	return EventID{ev: ev}
}

// After schedules fn to run d after the current instant. Negative d panics.
func (e *Engine) After(d time.Duration, fn Handler) EventID {
	if d < 0 {
		panic(fmt.Sprintf("sim: negative delay %v", d))
	}
	return e.At(e.now.Add(d), fn)
}

// Cancel prevents a scheduled event from firing. Canceling an event that
// has already fired or been canceled is a no-op. Cancel is O(log n) when the
// event is still queued.
func (e *Engine) Cancel(id EventID) {
	ev := id.ev
	if ev == nil || ev.canceled || ev.index < 0 {
		if ev != nil {
			ev.canceled = true
		}
		return
	}
	ev.canceled = true
	heap.Remove(&e.queue, ev.index)
}

// Step executes the earliest pending event and advances the clock to its
// deadline. It reports false when the queue is empty.
func (e *Engine) Step() bool {
	for len(e.queue) > 0 {
		ev := heap.Pop(&e.queue).(*event)
		if ev.canceled {
			continue
		}
		e.now = ev.deadline
		e.fired++
		ev.fn(e.now)
		return true
	}
	return false
}

// Run executes events until the queue drains.
func (e *Engine) Run() {
	e.running = true
	defer func() { e.running = false }()
	for e.Step() {
	}
}

// RunUntil executes events with deadlines ≤ limit, then advances the clock
// to limit. Events scheduled beyond limit remain queued.
func (e *Engine) RunUntil(limit Time) {
	e.running = true
	defer func() { e.running = false }()
	for len(e.queue) > 0 {
		// Peek without popping.
		if e.queue[0].canceled {
			heap.Pop(&e.queue)
			continue
		}
		if e.queue[0].deadline > limit {
			break
		}
		e.Step()
	}
	if e.now < limit {
		e.now = limit
	}
}

// RunFor executes events for a span of virtual time starting now.
func (e *Engine) RunFor(d time.Duration) {
	e.RunUntil(e.now.Add(d))
}
