// Package sim implements a deterministic discrete-event simulation engine.
//
// The engine advances a virtual clock with nanosecond resolution. Events
// scheduled for the same instant fire in the order they were scheduled
// (FIFO tie-breaking), which makes every simulation bit-reproducible for a
// given seed regardless of map iteration order or host scheduling.
//
// All timestamps and durations are virtual time: they have no relation to
// wall-clock time, so a two-minute experiment run completes in milliseconds
// of host time. This is what makes self-benchmarking noise (host OS jitter,
// GC pauses) irrelevant to the measured results.
//
// # Allocation-free scheduling
//
// Event objects live on an engine-internal free list: firing or canceling
// an event returns it to the list, and the next At/After reuses it, so
// steady-state scheduling performs zero heap allocations. EventIDs carry a
// generation counter so an ID that outlives its event's reuse can never
// cancel the slot's new occupant (ABA safety).
//
// The closure form (At/After with a Handler) still allocates one closure
// per call site capture; hot paths use the typed form (AtSink/AfterSink
// with an EventSink and an opaque EventArg), which allocates nothing when
// the sink is a pointer and the arg's Ptr field holds a pointer.
//
// # O(1) event scheduling
//
// Pending events live in a hierarchical timer wheel (wheel.go): schedule,
// cancel and fire are O(1) amortized at any pending-event population,
// where the historical binary min-heap paid O(log n) per operation — the
// dominant engine cost once hundreds of thousands of events are pending
// (million-QPS scenarios, hour-long virtual runs). The heap survives as a
// second implementation of the internal queue interface so differential
// tests can pin that the wheel fires events in byte-identical order; only
// the wheel is on the production path.
package sim

import (
	"container/heap"
	"fmt"
	"math"
	"time"
)

// Time is a virtual timestamp in nanoseconds since the start of the
// simulation. It is a distinct type from time.Duration to prevent mixing
// virtual instants with durations in arithmetic.
type Time int64

// Infinity is a sentinel virtual time later than any schedulable event.
const Infinity Time = math.MaxInt64

// Add returns the instant d after t.
func (t Time) Add(d time.Duration) Time { return t + Time(d) }

// Sub returns the duration elapsed from u to t.
func (t Time) Sub(u Time) time.Duration { return time.Duration(t - u) }

// Seconds reports t as fractional seconds since simulation start.
func (t Time) Seconds() float64 { return float64(t) / 1e9 }

// Microseconds reports t as fractional microseconds since simulation start.
func (t Time) Microseconds() float64 { return float64(t) / 1e3 }

func (t Time) String() string {
	return time.Duration(t).String()
}

// Handler is the callback attached to a scheduled event. It runs when the
// virtual clock reaches the event's deadline.
type Handler func(now Time)

// EventSink is the typed-dispatch alternative to Handler: a long-lived
// object whose OnEvent method is invoked with the opaque argument the
// event was scheduled with. Scheduling through a sink avoids the
// per-event closure allocation of the Handler form — the sink is built
// once (per run, per tier, per generator) and every event reuses it.
type EventSink interface {
	OnEvent(now Time, arg EventArg)
}

// EventArg is the opaque argument carried by a typed event. Ptr holds a
// pointer-shaped payload (storing a pointer in an interface does not
// allocate); U64 carries a scalar — callers typically pack an event-kind
// tag and small indices into it.
type EventArg struct {
	Ptr any
	U64 uint64
}

// event is a scheduled callback. Events are pooled: the zero event is a
// valid free-list entry, and gen counts how many times the slot has been
// recycled so stale EventIDs can be detected.
//
// An event is linked into exactly one pending-queue structure at a time:
// the heap uses index, the timer wheel uses the intrusive next/prev chain
// plus the (lvl, slot) bucket position.
type event struct {
	deadline Time
	at       Time   // schedule-origin instant: first tie-breaker among equal deadlines
	seq      uint64 // FIFO tie-breaker among equal (deadline, at)
	fn       Handler
	sink     EventSink
	arg      EventArg
	gen      uint64 // incremented on every release back to the free list
	index    int    // heap index, -1 once popped

	// Timer-wheel linkage: doubly linked bucket chain and the bucket the
	// event currently occupies (meaningful only while queued in a wheel).
	next, prev *event
	lvl        int8
	slot       uint8
}

// EventID identifies a scheduled event so it can be canceled. The zero
// EventID is never issued. IDs are generation-stamped: once the event
// fires or is canceled its slot may be reused, and the stale ID becomes
// inert — Cancel through it is a no-op and Valid reports false.
type EventID struct {
	ev  *event
	gen uint64
}

// Valid reports whether the ID still refers to a pending (scheduled, not
// yet fired or canceled) event. Under pooling this is the only stable
// meaning: after the event fires or is canceled, the slot may already
// belong to a different event, so a fired ID must read as invalid.
func (id EventID) Valid() bool { return id.ev != nil && id.ev.gen == id.gen }

// less reports whether a fires before b: the engine's total event order
// is (deadline, at, seq). For events scheduled through At/AtSink the
// origin instant `at` equals the clock at scheduling time, so seq order
// implies at order and the key collapses to the classic (deadline, seq)
// FIFO tie-break — byte-identical to the pre-`at` engine. The extra
// component only separates events scheduled *as of* an earlier instant
// (AtSinkFrom), which the sharded runtime uses to slot cross-shard
// hand-offs exactly where the single-engine run would have scheduled
// them.
func (a *event) less(b *event) bool {
	if a.deadline != b.deadline {
		return a.deadline < b.deadline
	}
	if a.at != b.at {
		return a.at < b.at
	}
	return a.seq < b.seq
}

// pendingQueue is the engine's set of scheduled events, totally ordered
// by (deadline, at, seq). Two implementations exist: the production
// hierarchical timer wheel (wheel.go, O(1) amortized per operation) and
// the binary min-heap reference (heapQueue below, O(log n)) retained so
// differential tests can pin that both fire events in identical order.
//
// Contract: pop returns the (deadline, at, seq)-minimal event; minDeadline
// reports its deadline without popping and must not observably mutate;
// remove detaches an event known to be queued; drain empties the queue
// through the callback (in no particular order) and rewinds any internal
// clock so the queue is ready for a fresh run.
type pendingQueue interface {
	push(ev *event)
	pop() *event
	minDeadline() (Time, bool)
	remove(ev *event)
	size() int
	drain(release func(*event))
}

// eventHeap is a min-heap ordered by (deadline, at, seq) — the
// reference pendingQueue implementation.
type eventHeap []*event

func (q eventHeap) Len() int { return len(q) }

func (q eventHeap) Less(i, j int) bool { return q[i].less(q[j]) }

func (q eventHeap) Swap(i, j int) {
	q[i], q[j] = q[j], q[i]
	q[i].index = i
	q[j].index = j
}

func (q *eventHeap) Push(x any) {
	ev := x.(*event)
	ev.index = len(*q)
	*q = append(*q, ev)
}

func (q *eventHeap) Pop() any {
	old := *q
	n := len(old)
	ev := old[n-1]
	old[n-1] = nil
	ev.index = -1
	*q = old[:n-1]
	return ev
}

// heapQueue adapts eventHeap to the pendingQueue interface.
type heapQueue struct{ h eventHeap }

func (q *heapQueue) push(ev *event) { heap.Push(&q.h, ev) }

func (q *heapQueue) pop() *event {
	if len(q.h) == 0 {
		return nil
	}
	return heap.Pop(&q.h).(*event)
}

func (q *heapQueue) minDeadline() (Time, bool) {
	if len(q.h) == 0 {
		return 0, false
	}
	return q.h[0].deadline, true
}

func (q *heapQueue) remove(ev *event) { heap.Remove(&q.h, ev.index) }

func (q *heapQueue) size() int { return len(q.h) }

func (q *heapQueue) drain(release func(*event)) {
	for _, ev := range q.h {
		ev.index = -1
		release(ev)
	}
	q.h = q.h[:0]
}

// Engine is a single-threaded discrete-event simulator. It is not safe for
// concurrent use; the simulated world is single-clocked by design.
type Engine struct {
	now     Time
	queue   pendingQueue
	free    []*event // recycled event objects, LIFO
	nextSeq uint64
	fired   uint64
	grown   uint64 // events allocated fresh (free list empty)
	running bool
}

// NewEngine returns an engine with the clock at zero and an empty queue,
// backed by the hierarchical timer wheel (the production event queue).
func NewEngine() *Engine {
	return &Engine{queue: newWheel()}
}

// newHeapEngine returns an engine on the binary-heap queue — the
// reference implementation the wheel is differential-tested and
// benchmarked against. Not a production path.
func newHeapEngine() *Engine {
	return &Engine{queue: &heapQueue{}}
}

// newLegacyCascadeEngine returns an engine on a wheel with cascade
// hysteresis disabled — the per-event cascade the hysteresis path is
// differential-tested and benchmarked against. Not a production path.
func newLegacyCascadeEngine() *Engine {
	return &Engine{queue: newWheelLegacyCascade()}
}

// Now returns the current virtual time.
func (e *Engine) Now() Time { return e.now }

// Pending returns the number of events still scheduled.
func (e *Engine) Pending() int { return e.queue.size() }

// Fired returns the total number of events that have executed.
func (e *Engine) Fired() uint64 { return e.fired }

// EventAllocs returns how many event objects the engine has allocated
// fresh (as opposed to reusing from the free list) over its lifetime.
// In steady state this stops growing — the regression tests pin it.
func (e *Engine) EventAllocs() uint64 { return e.grown }

// Reset returns the engine to its initial state — clock at zero, empty
// queue, sequence counter rezeroed — while keeping the event free list
// and queue capacity, so one engine can serve many runs without
// re-allocating its hot-path structures. A reset engine is
// indistinguishable from a fresh one to simulation code: the per-run
// event sequence (and thus FIFO tie-breaking) restarts identically.
func (e *Engine) Reset() {
	e.queue.drain(e.release)
	e.now = 0
	e.nextSeq = 0
	e.fired = 0
}

// alloc pops a recycled event or grows the pool by one.
func (e *Engine) alloc() *event {
	if n := len(e.free); n > 0 {
		ev := e.free[n-1]
		e.free[n-1] = nil
		e.free = e.free[:n-1]
		return ev
	}
	e.grown++
	return &event{}
}

// release returns ev to the free list. Bumping the generation first makes
// every outstanding EventID for this slot stale, so a later Cancel through
// one cannot touch the slot's next occupant.
func (e *Engine) release(ev *event) {
	ev.gen++
	ev.fn = nil
	ev.sink = nil
	ev.arg = EventArg{}
	e.free = append(e.free, ev)
}

// schedule is the shared body of the scheduling forms. origin is the
// instant the event counts as scheduled at for tie-breaking — the
// current clock everywhere except AtSinkFrom.
func (e *Engine) schedule(origin, t Time, fn Handler, sink EventSink, arg EventArg) EventID {
	if t < e.now {
		panic(fmt.Sprintf("sim: scheduling event at %v before now %v", t, e.now))
	}
	ev := e.alloc()
	ev.deadline = t
	ev.at = origin
	ev.seq = e.nextSeq
	ev.fn = fn
	ev.sink = sink
	ev.arg = arg
	e.nextSeq++
	e.queue.push(ev)
	return EventID{ev: ev, gen: ev.gen}
}

// At schedules fn to run at the absolute virtual instant t. Scheduling in
// the past (t < Now) panics: in a DES that is always a logic bug, and
// silently clamping would corrupt causality.
func (e *Engine) At(t Time, fn Handler) EventID {
	if fn == nil {
		panic("sim: nil event handler")
	}
	return e.schedule(e.now, t, fn, nil, EventArg{})
}

// After schedules fn to run d after the current instant. Negative d panics.
func (e *Engine) After(d time.Duration, fn Handler) EventID {
	if d < 0 {
		panic(fmt.Sprintf("sim: negative delay %v", d))
	}
	return e.At(e.now.Add(d), fn)
}

// AtSink schedules sink.OnEvent(t, arg) at the absolute instant t — the
// typed, allocation-free counterpart of At. FIFO tie-breaking is shared
// with the closure form: events fire in scheduling order regardless of
// which form scheduled them.
func (e *Engine) AtSink(t Time, sink EventSink, arg EventArg) EventID {
	if sink == nil {
		panic("sim: nil event sink")
	}
	return e.schedule(e.now, t, nil, sink, arg)
}

// AtSinkFrom schedules sink.OnEvent(t, arg) with tie-breaking as of the
// instant origin instead of the current clock: among equal deadlines,
// events fire in (origin, scheduling order), and At/AtSink events count
// their own scheduling instant as origin. This is the sharded runtime's
// replay primitive — an event handed off across a shard boundary (or
// deferred within one) is scheduled later than the single-engine run
// would have scheduled it, and passing the original instant here puts
// it back in exactly the slot the single engine's FIFO tie-break would
// have given it. origin must not exceed the deadline; it may lie in the
// past.
func (e *Engine) AtSinkFrom(origin, t Time, sink EventSink, arg EventArg) EventID {
	if sink == nil {
		panic("sim: nil event sink")
	}
	if origin > t {
		panic(fmt.Sprintf("sim: schedule origin %v after deadline %v", origin, t))
	}
	return e.schedule(origin, t, nil, sink, arg)
}

// AfterSink schedules sink.OnEvent d after the current instant. Negative
// d panics.
func (e *Engine) AfterSink(d time.Duration, sink EventSink, arg EventArg) EventID {
	if d < 0 {
		panic(fmt.Sprintf("sim: negative delay %v", d))
	}
	return e.AtSink(e.now.Add(d), sink, arg)
}

// Cancel prevents a scheduled event from firing. Canceling an event that
// has already fired or been canceled — including one whose slot has been
// reused by a newer event — is a no-op. Cancel is O(1) on the wheel
// (O(log n) on the reference heap) when the event is still queued.
func (e *Engine) Cancel(id EventID) {
	ev := id.ev
	// A matching generation implies the event is still queued: release —
	// the only way out of the queue — bumps the generation first.
	if ev == nil || ev.gen != id.gen {
		return
	}
	e.queue.remove(ev)
	e.release(ev)
}

// Step executes the earliest pending event and advances the clock to its
// deadline. It reports false when the queue is empty. The event object is
// recycled before its callback runs, so handlers scheduling new events
// reuse the slot immediately; the fired event's ID is already stale by
// the time the callback observes anything.
func (e *Engine) Step() bool {
	ev := e.queue.pop()
	if ev == nil {
		return false
	}
	fn, sink, arg, deadline := ev.fn, ev.sink, ev.arg, ev.deadline
	e.release(ev)
	e.now = deadline
	e.fired++
	if sink != nil {
		sink.OnEvent(e.now, arg)
	} else {
		fn(e.now)
	}
	return true
}

// Run executes events until the queue drains.
func (e *Engine) Run() {
	e.running = true
	defer func() { e.running = false }()
	for e.Step() {
	}
}

// RunUntil executes events with deadlines ≤ limit, then advances the clock
// to limit. Events scheduled beyond limit remain queued.
func (e *Engine) RunUntil(limit Time) {
	e.running = true
	defer func() { e.running = false }()
	for {
		d, ok := e.queue.minDeadline()
		if !ok || d > limit {
			break
		}
		e.Step()
	}
	if e.now < limit {
		e.now = limit
	}
}

// RunBefore executes events with deadlines strictly earlier than limit,
// then advances the clock to limit. It is the epoch primitive of the
// sharded runtime (shard.go): a shard granted the window [now, limit)
// fires exactly the events it owns inside it, and stops with its clock
// parked on the barrier instant so cross-shard events arriving *at*
// limit are still schedulable.
func (e *Engine) RunBefore(limit Time) {
	e.running = true
	defer func() { e.running = false }()
	for {
		d, ok := e.queue.minDeadline()
		if !ok || d >= limit {
			break
		}
		e.Step()
	}
	if e.now < limit {
		e.now = limit
	}
}

// RunFor executes events for a span of virtual time starting now.
func (e *Engine) RunFor(d time.Duration) {
	e.RunUntil(e.now.Add(d))
}

// NextDeadline returns the earliest pending event's deadline, or
// Infinity when the queue is empty — the per-shard clock the sharded
// runtime's window computation takes the minimum over.
func (e *Engine) NextDeadline() Time {
	if d, ok := e.queue.minDeadline(); ok {
		return d
	}
	return Infinity
}

// Scheduled returns the number of events ever scheduled on this engine
// (the per-run sequence counter; Reset rezeroes it). It advances on
// every At/After/AtSink/AfterSink call, which makes it a watermark for
// "has anything been scheduled since": netmodel's link batching uses it
// to append to a pending flush only when no other event could have
// claimed a sequence number between the batch's entries — the condition
// under which batching is exactly order-preserving.
func (e *Engine) Scheduled() uint64 { return e.nextSeq }
