package sim

import (
	"sync"
	"testing"
	"time"
)

// recordingSink collects typed dispatches for assertions.
type recordingSink struct {
	times []Time
	args  []EventArg
}

func (s *recordingSink) OnEvent(now Time, arg EventArg) {
	s.times = append(s.times, now)
	s.args = append(s.args, arg)
}

func TestTypedDispatchDeliversArg(t *testing.T) {
	e := NewEngine()
	s := &recordingSink{}
	payload := &struct{ v int }{v: 7}
	e.AfterSink(3*time.Microsecond, s, EventArg{Ptr: payload, U64: 42})
	e.AtSink(Time(1000), s, EventArg{U64: 1})
	e.Run()
	if len(s.times) != 2 {
		t.Fatalf("dispatched %d events, want 2", len(s.times))
	}
	if s.times[0] != Time(1000) || s.args[0].U64 != 1 {
		t.Errorf("first event: now=%v arg=%+v", s.times[0], s.args[0])
	}
	if s.times[1] != Time(3000) || s.args[1].U64 != 42 || s.args[1].Ptr != payload {
		t.Errorf("second event: now=%v arg=%+v", s.times[1], s.args[1])
	}
}

func TestTypedAndClosureShareFIFOOrder(t *testing.T) {
	e := NewEngine()
	var order []int
	s := sinkFunc(func(_ Time, arg EventArg) { order = append(order, int(arg.U64)) })
	e.AtSink(Time(50), s, EventArg{U64: 0})
	e.At(Time(50), func(Time) { order = append(order, 1) })
	e.AtSink(Time(50), s, EventArg{U64: 2})
	e.At(Time(50), func(Time) { order = append(order, 3) })
	e.Run()
	for i, v := range order {
		if v != i {
			t.Fatalf("mixed-form same-deadline order = %v, want scheduling order", order)
		}
	}
}

// sinkFunc adapts a func to EventSink for tests (allocates; fine here).
type sinkFunc func(now Time, arg EventArg)

func (f sinkFunc) OnEvent(now Time, arg EventArg) { f(now, arg) }

func TestNilSinkPanics(t *testing.T) {
	e := NewEngine()
	defer func() {
		if recover() == nil {
			t.Error("nil sink did not panic")
		}
	}()
	e.AtSink(Time(1), nil, EventArg{})
}

// TestCancelAfterFire pins ABA safety: once an event fires, its ID is
// stale, and canceling it must not touch the pooled slot's next occupant.
func TestCancelAfterFire(t *testing.T) {
	e := NewEngine()
	id := e.After(time.Microsecond, func(Time) {})
	if !id.Valid() {
		t.Fatal("pending event ID reports invalid")
	}
	e.Run()
	if id.Valid() {
		t.Error("fired event ID still reports valid")
	}

	// The freed slot is reused by the next scheduling; the stale ID must
	// not cancel the new event.
	fired := false
	id2 := e.After(time.Microsecond, func(Time) { fired = true })
	e.Cancel(id) // stale: different generation, same (reused) slot
	if !id2.Valid() {
		t.Fatal("stale cancel invalidated the slot's new occupant")
	}
	e.Run()
	if !fired {
		t.Error("event canceled through a stale ID from a previous occupant")
	}
}

// TestCancelAfterReuse drives a slot through several fire/cancel/reuse
// cycles and checks every retired ID stays inert.
func TestCancelAfterReuse(t *testing.T) {
	e := NewEngine()
	var stale []EventID
	fired := 0
	for cycle := 0; cycle < 5; cycle++ {
		id := e.After(time.Microsecond, func(Time) { fired++ })
		for _, s := range stale {
			e.Cancel(s) // must all be no-ops
			if s.Valid() {
				t.Fatalf("cycle %d: retired ID reports valid", cycle)
			}
		}
		if !id.Valid() {
			t.Fatalf("cycle %d: live ID reports invalid", cycle)
		}
		e.Run()
		stale = append(stale, id)
	}
	if fired != 5 {
		t.Errorf("fired %d of 5 events; a stale cancel hit a live event", fired)
	}

	// Canceled (never fired) events also retire their IDs.
	id := e.After(time.Microsecond, func(Time) { t.Error("canceled event fired") })
	e.Cancel(id)
	if id.Valid() {
		t.Error("canceled event ID still valid")
	}
	e.Cancel(id) // double cancel: no-op
	replacement := e.After(time.Microsecond, func(Time) {})
	e.Cancel(id) // stale cancel against the reused slot: no-op
	if !replacement.Valid() {
		t.Error("stale cancel after cancel-reuse invalidated new event")
	}
	e.Run()
}

func TestCancelFromOwnHandlerIsNoop(t *testing.T) {
	e := NewEngine()
	var id EventID
	ran := false
	id = e.After(time.Microsecond, func(Time) {
		ran = true
		e.Cancel(id) // the event is firing: already retired, must no-op
	})
	e.Run()
	if !ran {
		t.Fatal("event did not run")
	}
	// The slot freed by the fired event must be reusable afterwards.
	again := false
	e.After(time.Microsecond, func(Time) { again = true })
	e.Run()
	if !again {
		t.Error("slot unusable after self-cancel")
	}
}

// TestEngineResetReusesPool pins that Reset preserves the free list (no
// fresh allocations on the next run) while restoring run-visible state.
func TestEngineResetReusesPool(t *testing.T) {
	e := NewEngine()
	run := func() []Time {
		var fired []Time
		for i := 1; i <= 50; i++ {
			e.After(time.Duration(i)*time.Microsecond, func(now Time) { fired = append(fired, now) })
		}
		// Leave some events pending past the horizon, as real runs do.
		e.RunUntil(Time(0).Add(40 * time.Microsecond))
		return fired
	}
	first := run()
	grownAfterFirst := e.EventAllocs()
	e.Reset()
	if e.Now() != 0 || e.Pending() != 0 || e.Fired() != 0 {
		t.Fatalf("reset engine: now=%v pending=%d fired=%d, want zeros", e.Now(), e.Pending(), e.Fired())
	}
	second := run()
	if e.EventAllocs() != grownAfterFirst {
		t.Errorf("second run allocated %d new events, want 0 (free-list reuse)",
			e.EventAllocs()-grownAfterFirst)
	}
	if len(first) != len(second) {
		t.Fatalf("runs fired %d vs %d events", len(first), len(second))
	}
	for i := range first {
		if first[i] != second[i] {
			t.Fatalf("reset broke determinism at event %d: %v vs %v", i, first[i], second[i])
		}
	}
}

// TestEngineReuseAcrossRunsParallel exercises independent engines being
// reset and reused concurrently, so the race detector would flag any
// accidentally shared pool state.
func TestEngineReuseAcrossRunsParallel(t *testing.T) {
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			e := NewEngine()
			s := &recordingSink{}
			for run := 0; run < 20; run++ {
				for i := 0; i < 100; i++ {
					e.AfterSink(time.Duration(i+1)*time.Nanosecond, s, EventArg{U64: uint64(i)})
				}
				e.Run()
				e.Reset()
			}
		}()
	}
	wg.Wait()
}

// TestTypedSchedulingZeroAllocSteadyState is the regression gate for the
// engine hot path: once the pool is warm, scheduling and firing typed
// events allocates nothing.
func TestTypedSchedulingZeroAllocSteadyState(t *testing.T) {
	e := NewEngine()
	s := &recordingSink{}
	s.times = make([]Time, 0, 4096)
	s.args = make([]EventArg, 0, 4096)
	arg := EventArg{Ptr: s, U64: 9}
	// Warm the pool and the heap slice.
	for i := 0; i < 64; i++ {
		e.AfterSink(time.Nanosecond, s, arg)
	}
	for e.Step() {
	}
	s.times, s.args = s.times[:0], s.args[:0]

	allocs := testing.AllocsPerRun(1000, func() {
		e.AfterSink(time.Nanosecond, s, arg)
		e.Step()
		if len(s.times) > 2048 {
			s.times, s.args = s.times[:0], s.args[:0]
		}
	})
	if allocs != 0 {
		t.Fatalf("typed schedule+fire allocates %.1f objects/op, want 0", allocs)
	}
}

// BenchmarkEngineHotLoop contrasts the closure and typed scheduling forms
// on the schedule→fire hot loop. Run with -benchmem: the closure form
// pays one closure allocation per event; the typed form is 0 B/op in
// steady state.
func BenchmarkEngineHotLoop(b *testing.B) {
	b.Run("closure", func(b *testing.B) {
		e := NewEngine()
		n := 0
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			v := i // captured: forces the per-event closure allocation real call sites pay
			e.After(time.Nanosecond, func(Time) { n += v })
			e.Step()
		}
	})
	b.Run("typed", func(b *testing.B) {
		e := NewEngine()
		s := &countSink{}
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			e.AfterSink(time.Nanosecond, s, EventArg{U64: uint64(i)})
			e.Step()
		}
	})
}

type countSink struct{ n uint64 }

func (s *countSink) OnEvent(_ Time, arg EventArg) { s.n += arg.U64 }
