package sim

import (
	"testing"
	"testing/quick"
	"time"
)

func TestEngineStartsAtZero(t *testing.T) {
	e := NewEngine()
	if e.Now() != 0 {
		t.Fatalf("new engine clock = %v, want 0", e.Now())
	}
	if e.Pending() != 0 {
		t.Fatalf("new engine pending = %d, want 0", e.Pending())
	}
}

func TestAfterAdvancesClock(t *testing.T) {
	e := NewEngine()
	var fired Time = -1
	e.After(5*time.Microsecond, func(now Time) { fired = now })
	e.Run()
	if fired != Time(5000) {
		t.Errorf("event fired at %v, want 5µs", fired)
	}
	if e.Now() != Time(5000) {
		t.Errorf("clock = %v, want 5µs", e.Now())
	}
}

func TestEventOrderingByDeadline(t *testing.T) {
	e := NewEngine()
	var order []int
	e.After(30*time.Nanosecond, func(Time) { order = append(order, 3) })
	e.After(10*time.Nanosecond, func(Time) { order = append(order, 1) })
	e.After(20*time.Nanosecond, func(Time) { order = append(order, 2) })
	e.Run()
	want := []int{1, 2, 3}
	for i, v := range want {
		if order[i] != v {
			t.Fatalf("order = %v, want %v", order, want)
		}
	}
}

func TestFIFOTieBreaking(t *testing.T) {
	e := NewEngine()
	var order []int
	for i := 0; i < 100; i++ {
		i := i
		e.At(Time(42), func(Time) { order = append(order, i) })
	}
	e.Run()
	for i, v := range order {
		if v != i {
			t.Fatalf("same-deadline events fired out of scheduling order at %d: got %d", i, v)
		}
	}
}

func TestCancel(t *testing.T) {
	e := NewEngine()
	fired := false
	id := e.After(time.Microsecond, func(Time) { fired = true })
	e.Cancel(id)
	e.Run()
	if fired {
		t.Error("canceled event fired")
	}
	// Cancel of an already-canceled event must be a no-op.
	e.Cancel(id)
	// Cancel of the zero ID must be a no-op.
	e.Cancel(EventID{})
}

func TestCancelOneOfMany(t *testing.T) {
	e := NewEngine()
	var fired []int
	var ids []EventID
	for i := 0; i < 10; i++ {
		i := i
		ids = append(ids, e.After(time.Duration(i+1)*time.Microsecond, func(Time) {
			fired = append(fired, i)
		}))
	}
	e.Cancel(ids[3])
	e.Cancel(ids[7])
	e.Run()
	if len(fired) != 8 {
		t.Fatalf("fired %d events, want 8", len(fired))
	}
	for _, v := range fired {
		if v == 3 || v == 7 {
			t.Errorf("canceled event %d fired", v)
		}
	}
}

func TestEventSchedulingFromHandler(t *testing.T) {
	e := NewEngine()
	var ticks []Time
	var tick Handler
	tick = func(now Time) {
		ticks = append(ticks, now)
		if len(ticks) < 5 {
			e.After(time.Millisecond, tick)
		}
	}
	e.After(time.Millisecond, tick)
	e.Run()
	if len(ticks) != 5 {
		t.Fatalf("got %d ticks, want 5", len(ticks))
	}
	for i, tk := range ticks {
		want := Time(int64(i+1) * 1e6)
		if tk != want {
			t.Errorf("tick %d at %v, want %v", i, tk, want)
		}
	}
}

func TestRunUntilStopsAtLimit(t *testing.T) {
	e := NewEngine()
	var fired []Time
	for i := 1; i <= 10; i++ {
		e.After(time.Duration(i)*time.Second, func(now Time) { fired = append(fired, now) })
	}
	e.RunUntil(Time(4_500_000_000))
	if len(fired) != 4 {
		t.Fatalf("fired %d events before limit, want 4", len(fired))
	}
	if e.Now() != Time(4_500_000_000) {
		t.Errorf("clock after RunUntil = %v, want 4.5s", e.Now())
	}
	if e.Pending() != 6 {
		t.Errorf("pending after RunUntil = %d, want 6", e.Pending())
	}
	e.Run()
	if len(fired) != 10 {
		t.Errorf("after Run, fired = %d, want 10", len(fired))
	}
}

func TestRunForIsRelative(t *testing.T) {
	e := NewEngine()
	e.RunFor(time.Second)
	if e.Now() != Time(1e9) {
		t.Fatalf("clock = %v, want 1s", e.Now())
	}
	e.RunFor(time.Second)
	if e.Now() != Time(2e9) {
		t.Fatalf("clock = %v, want 2s", e.Now())
	}
}

func TestSchedulingInPastPanics(t *testing.T) {
	e := NewEngine()
	e.After(time.Second, func(Time) {})
	e.Run()
	defer func() {
		if recover() == nil {
			t.Error("scheduling in the past did not panic")
		}
	}()
	e.At(Time(1), func(Time) {})
}

func TestNegativeDelayPanics(t *testing.T) {
	e := NewEngine()
	defer func() {
		if recover() == nil {
			t.Error("negative delay did not panic")
		}
	}()
	e.After(-time.Second, func(Time) {})
}

func TestNilHandlerPanics(t *testing.T) {
	e := NewEngine()
	defer func() {
		if recover() == nil {
			t.Error("nil handler did not panic")
		}
	}()
	e.After(time.Second, nil)
}

func TestFiredCounter(t *testing.T) {
	e := NewEngine()
	for i := 0; i < 25; i++ {
		e.After(time.Duration(i)*time.Microsecond, func(Time) {})
	}
	e.Run()
	if e.Fired() != 25 {
		t.Errorf("Fired() = %d, want 25", e.Fired())
	}
}

func TestTimeArithmetic(t *testing.T) {
	var base Time = 1000
	got := base.Add(2 * time.Microsecond)
	if got != 3000 {
		t.Errorf("Add = %v, want 3000", got)
	}
	if got.Sub(base) != 2*time.Microsecond {
		t.Errorf("Sub = %v, want 2µs", got.Sub(base))
	}
	if Time(2.5e9).Seconds() != 2.5 {
		t.Errorf("Seconds = %v, want 2.5", Time(2.5e9).Seconds())
	}
	if Time(1500).Microseconds() != 1.5 {
		t.Errorf("Microseconds = %v, want 1.5", Time(1500).Microseconds())
	}
}

// Property: for any set of non-negative delays, events fire in
// non-decreasing deadline order and the clock never moves backwards.
func TestPropertyMonotonicClock(t *testing.T) {
	f := func(delays []uint16) bool {
		e := NewEngine()
		var last Time = -1
		ok := true
		for _, d := range delays {
			e.After(time.Duration(d)*time.Nanosecond, func(now Time) {
				if now < last {
					ok = false
				}
				last = now
			})
		}
		e.Run()
		return ok && e.Pending() == 0
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

// Property: two engines fed the same schedule produce identical firing
// sequences (determinism).
func TestPropertyDeterminism(t *testing.T) {
	f := func(delays []uint16) bool {
		run := func() []Time {
			e := NewEngine()
			var seq []Time
			for _, d := range delays {
				e.After(time.Duration(d)*time.Nanosecond, func(now Time) { seq = append(seq, now) })
			}
			e.Run()
			return seq
		}
		a, b := run(), run()
		if len(a) != len(b) {
			return false
		}
		for i := range a {
			if a[i] != b[i] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Error(err)
	}
}

func BenchmarkScheduleAndFire(b *testing.B) {
	e := NewEngine()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		e.After(time.Nanosecond, func(Time) {})
		e.Step()
	}
}
