package sim

import (
	"fmt"
	"reflect"
	"sort"
	"strings"
	"sync"
	"sync/atomic"
	"testing"
	"time"
)

// shardTrace records (shard, time, tag) triples as events fire, the
// observable the differential tests compare.
type shardTrace struct {
	entries []string
}

type traceSink struct {
	tr *shardTrace
	id int
}

func (s *traceSink) OnEvent(now Time, arg EventArg) {
	s.tr.entries = append(s.tr.entries, fmt.Sprintf("w%d@%v#%d", s.id, now, arg.U64))
}

// pingPong bounces a message between two shards through the mailbox at
// a fixed hop delay, counting hops.
type pingPong struct {
	set   *ShardSet
	shard int
	peer  *pingPong
	hop   time.Duration
	seen  []Time
}

func (p *pingPong) OnEvent(now Time, arg EventArg) {
	p.seen = append(p.seen, now)
	p.set.Send(p.shard, p.peer.shard, now, now.Add(p.hop), p.peer, EventArg{U64: arg.U64 + 1})
}

// TestShardSetPingPongCrossTraffic pins the mailbox/epoch machinery on
// pure cross-shard traffic: every event generates one cross event, so
// nothing fires unless the drain/republish protocol is right.
func TestShardSetPingPongCrossTraffic(t *testing.T) {
	for _, k := range []int{1, 2} {
		engines := []*Engine{NewEngine()}
		if k == 2 {
			engines = append(engines, NewEngine())
		}
		set, err := NewShardSet(engines, 10*time.Microsecond)
		if err != nil {
			t.Fatal(err)
		}
		a := &pingPong{set: set, shard: 0, hop: 10 * time.Microsecond}
		b := &pingPong{set: set, shard: k - 1, hop: 10 * time.Microsecond}
		a.peer, b.peer = b, a
		// Seed: a fires at 10µs on its own engine.
		engines[0].AtSink(Time(10*time.Microsecond), a, EventArg{})
		end := Time(1 * time.Millisecond)
		set.Run(end, nil)

		for i, e := range engines {
			if e.Now() != end {
				t.Fatalf("k=%d shard %d clock %v, want %v", k, i, e.Now(), end)
			}
		}
		// Hops at 10, 20, ..., 1000µs alternate a, b, a, ...
		total := len(a.seen) + len(b.seen)
		if total != 100 {
			t.Fatalf("k=%d: %d hops fired, want 100", k, total)
		}
		for i, at := range a.seen {
			if want := Time((2*i + 1) * 10_000); at != want {
				t.Fatalf("k=%d a hop %d at %v, want %v", k, i, at, want)
			}
		}
		for i, at := range b.seen {
			if want := Time((2*i + 2) * 10_000); at != want {
				t.Fatalf("k=%d b hop %d at %v, want %v", k, i, at, want)
			}
		}
	}
}

// randomWorld is one partition of a randomized workload: a
// self-rescheduling local process that occasionally emits cross-shard
// events at ≥ lookahead. Its behaviour is a pure function of
// (id, event time, event tag) — no mutable draw state — so the merged
// trace is independent of how equal-time events interleave across
// shards, and must equal the single-engine reference at any K.
type randomWorld struct {
	set       *ShardSet
	id        int
	shard     int
	sinks     []*randomWorld
	entries   []string // per-world: appended only by the owning shard
	lookahead time.Duration
}

// draw hashes the event identity splitmix64-style.
func (w *randomWorld) draw(now Time, tag uint64) uint64 {
	z := uint64(w.id)*0x9e3779b97f4a7c15 ^ uint64(now)<<1 ^ tag<<40
	z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
	z = (z ^ (z >> 27)) * 0x94d049bb133111eb
	return z ^ (z >> 31)
}

func (w *randomWorld) OnEvent(now Time, arg EventArg) {
	w.entries = append(w.entries, fmt.Sprintf("w%d@%v#%d", w.id, now, arg.U64&0xffff))
	r := w.draw(now, arg.U64)
	// Every event spawns exactly one successor (constant population):
	// usually a local follow-up, every fourth draw a cross-shard hand-off
	// to a deterministic peer at ≥ lookahead.
	if r%4 == 0 {
		dst := w.sinks[int(r>>32)%len(w.sinks)]
		gap := w.lookahead + time.Duration(r%10_000)*time.Nanosecond
		w.set.Send(w.shard, dst.shard, now, now.Add(gap), dst, EventArg{U64: arg.U64 + 100})
		return
	}
	localGap := time.Duration(1+r%5_000) * time.Nanosecond
	w.set.Engine(w.shard).AtSink(now.Add(localGap), w, EventArg{U64: arg.U64 + 1})
}

// runRandomWorld executes the workload at shard count k and returns the
// sorted-merged trace. Sorting key is (time, shard, tag): within one
// shard events append in fire order; across shards equal-time entries
// are ordered by shard, the same deterministic rule at any k.
func runRandomWorld(t *testing.T, k int, end Time) []string {
	t.Helper()
	lookahead := 2 * time.Microsecond
	engines := make([]*Engine, k)
	for i := range engines {
		engines[i] = NewEngine()
	}
	set, err := NewShardSet(engines, lookahead)
	if err != nil {
		t.Fatal(err)
	}
	worlds := make([]*randomWorld, 3) // world count fixed; shard of world w = w % k
	for i := range worlds {
		worlds[i] = &randomWorld{set: set, id: i, shard: i % k, lookahead: lookahead}
	}
	for i := range worlds {
		worlds[i].sinks = worlds
		engines[i%k].AtSink(Time(time.Duration(i+1)*time.Microsecond), worlds[i], EventArg{})
	}
	set.Run(end, nil)
	for i, e := range engines {
		if e.Now() != end {
			t.Fatalf("k=%d shard %d clock %v, want %v", k, i, e.Now(), end)
		}
	}
	// Canonical order: merge all worlds' entries by (time, world, tag) —
	// the same deterministic rule at any shard count.
	var entries []string
	for _, w := range worlds {
		entries = append(entries, w.entries...)
	}
	sortByTimeShard(entries)
	return entries
}

// sortByTimeShard orders trace entries by (virtual time, world, tag).
func sortByTimeShard(entries []string) {
	key := func(s string) int64 {
		at := strings.Index(s, "@")
		d, err := time.ParseDuration(s[at+1 : strings.Index(s, "#")])
		if err != nil {
			panic(err)
		}
		return int64(d)
	}
	keys := make(map[string]int64, len(entries))
	for _, e := range entries {
		keys[e] = key(e)
	}
	sort.Slice(entries, func(i, j int) bool {
		ti, tj := keys[entries[i]], keys[entries[j]]
		if ti != tj {
			return ti < tj
		}
		return entries[i] < entries[j]
	})
}

// TestShardSetMatchesSingleEngine is the sharded analogue of the
// wheel-vs-heap differential harness: the same randomized workload at
// K ∈ {1, 2, 3} produces the identical merged event trace.
func TestShardSetMatchesSingleEngine(t *testing.T) {
	end := Time(2 * time.Millisecond)
	ref := runRandomWorld(t, 1, end)
	if len(ref) < 1000 {
		t.Fatalf("reference trace suspiciously small: %d entries", len(ref))
	}
	for _, k := range []int{2, 3} {
		got := runRandomWorld(t, k, end)
		if !reflect.DeepEqual(ref, got) {
			i := 0
			for i < len(ref) && i < len(got) && ref[i] == got[i] {
				i++
			}
			t.Fatalf("k=%d trace diverges from single-engine at entry %d: ref=%v got=%v",
				k, i, at(ref, i), at(got, i))
		}
	}
}

func at(s []string, i int) string {
	if i < len(s) {
		return s[i]
	}
	return "<end>"
}

// TestShardSetReuseAcrossRuns pins that a set (and its engines) can run
// repeatedly with identical results — the generator reuses one set per
// scenario exactly like it reuses one engine.
func TestShardSetReuseAcrossRuns(t *testing.T) {
	end := Time(500 * time.Microsecond)
	lookahead := 2 * time.Microsecond
	engines := []*Engine{NewEngine(), NewEngine()}
	set, err := NewShardSet(engines, lookahead)
	if err != nil {
		t.Fatal(err)
	}
	var runs [][]string
	for rep := 0; rep < 2; rep++ {
		for _, e := range engines {
			e.Reset()
		}
		worlds := make([]*randomWorld, 2)
		for i := range worlds {
			worlds[i] = &randomWorld{set: set, id: i, shard: i, lookahead: lookahead}
		}
		for i := range worlds {
			worlds[i].sinks = worlds
			engines[i].AtSink(Time(time.Duration(i+1)*time.Microsecond), worlds[i], EventArg{})
		}
		set.Run(end, nil)
		var entries []string
		for _, w := range worlds {
			entries = append(entries, w.entries...)
		}
		sortByTimeShard(entries)
		runs = append(runs, entries)
	}
	if !reflect.DeepEqual(runs[0], runs[1]) {
		t.Fatal("identical reruns on a reused shard set diverged")
	}
}

// TestShardSetOnEpochQuiescence pins the onEpoch contract: the callback
// runs with every shard stopped, and at least once per run.
func TestShardSetOnEpochQuiescence(t *testing.T) {
	engines := []*Engine{NewEngine(), NewEngine()}
	set, err := NewShardSet(engines, 5*time.Microsecond)
	if err != nil {
		t.Fatal(err)
	}
	a := &pingPong{set: set, shard: 0, hop: 5 * time.Microsecond}
	b := &pingPong{set: set, shard: 1, hop: 5 * time.Microsecond}
	a.peer, b.peer = b, a
	engines[0].AtSink(Time(5*time.Microsecond), a, EventArg{})
	epochs := 0
	var lastA, lastB int
	lastMark := Time(-1)
	sawFinal := false
	set.Run(Time(200*time.Microsecond), func(watermark Time) {
		epochs++
		// Quiescent: per-shard state is safe to read here. Progress must
		// be monotone (never observe fewer hops than a previous epoch),
		// and the watermark must grow monotonically to Infinity.
		if len(a.seen) < lastA || len(b.seen) < lastB {
			panic("epoch observed rolled-back shard state")
		}
		if watermark <= lastMark {
			panic("non-increasing epoch watermark")
		}
		lastMark = watermark
		sawFinal = watermark == Infinity
		lastA, lastB = len(a.seen), len(b.seen)
	})
	if epochs == 0 {
		t.Fatal("onEpoch never ran")
	}
	if !sawFinal {
		t.Fatal("final epoch did not report an Infinity watermark")
	}
	if len(a.seen)+len(b.seen) != 40 {
		t.Fatalf("hops = %d, want 40", len(a.seen)+len(b.seen))
	}
}

// TestShardSetLookaheadViolationPanics pins the causality guard.
func TestShardSetLookaheadViolationPanics(t *testing.T) {
	engines := []*Engine{NewEngine(), NewEngine()}
	set, err := NewShardSet(engines, 10*time.Microsecond)
	if err != nil {
		t.Fatal(err)
	}
	sink := &traceSink{tr: &shardTrace{}, id: 1}
	violate := sinkFunc(func(now Time, _ EventArg) {
		set.Send(0, 1, now, now.Add(time.Microsecond), sink, EventArg{}) // < lookahead
	})
	engines[0].AtSink(Time(time.Microsecond), violate, EventArg{})
	defer func() {
		if recover() == nil {
			t.Fatal("lookahead violation did not panic")
		}
	}()
	set.Run(Time(time.Millisecond), nil)
}

// TestShardSetRejectsBadConfig pins constructor validation.
func TestShardSetRejectsBadConfig(t *testing.T) {
	if _, err := NewShardSet(nil, time.Microsecond); err == nil {
		t.Fatal("empty engine set accepted")
	}
	if _, err := NewShardSet([]*Engine{NewEngine()}, 0); err == nil {
		t.Fatal("zero lookahead accepted (conservative windows could not advance)")
	}
}

// TestEpochBarrierSpinAndParkPaths drives the adaptive barrier through
// both waiting regimes: matched arrivals that resolve inside the spin
// budget, and a deliberately stalled party that forces its peer past
// the budget (barrierMaxSpin resolves in well under a millisecond of
// wall time) into the sync.Cond park. The stalled party verifies its
// peer actually parked before releasing it, so the park→broadcast→
// resume hand-off is exercised, not just possible.
func TestEpochBarrierSpinAndParkPaths(t *testing.T) {
	var aborted atomic.Bool
	var b epochBarrier
	b.reset(2, &aborted)
	const iters = 40
	sawParked := false
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		for i := 0; i < iters; i++ {
			b.wait() // fast party: spins, then parks while the peer stalls
		}
	}()
	for i := 0; i < iters; i++ {
		if i%10 == 9 {
			// Stall long enough that the peer exhausts any legal spin
			// budget and parks; observe the parked count before arriving.
			deadline := time.Now().Add(2 * time.Second)
			for b.parked.Load() == 0 && time.Now().Before(deadline) {
				time.Sleep(time.Millisecond)
			}
			if b.parked.Load() != 0 {
				sawParked = true
			}
		}
		b.wait()
	}
	wg.Wait()
	if !sawParked {
		t.Fatal("peer never parked despite a stalled party — park path untested")
	}
	if p := b.parked.Load(); p != 0 {
		t.Fatalf("parked count %d after all releases, want 0", p)
	}
}

// TestShardSetPanicDuringPeerParkAborts mirrors the aborted-peer
// lookahead test, but times the fault so the surviving worker is parked
// (not spinning) when the panic lands: shard 1 has no work and reaches
// the epoch barrier immediately, shard 0's handler stalls past every
// legal spin budget, confirms the peer is parked, and then panics. The
// abort must wake the parked worker and Run must re-raise the original
// fault, not the secondary abort panic.
func TestShardSetPanicDuringPeerParkAborts(t *testing.T) {
	engines := []*Engine{NewEngine(), NewEngine()}
	set, err := NewShardSet(engines, 10*time.Microsecond)
	if err != nil {
		t.Fatal(err)
	}
	peerParked := false
	boom := sinkFunc(func(now Time, _ EventArg) {
		deadline := time.Now().Add(2 * time.Second)
		for set.barrier.parked.Load() == 0 && time.Now().Before(deadline) {
			time.Sleep(time.Millisecond)
		}
		peerParked = set.barrier.parked.Load() != 0
		panic("boom")
	})
	engines[0].AtSink(Time(10*time.Microsecond), boom, EventArg{})
	func() {
		defer func() {
			if r := recover(); r != "boom" {
				t.Fatalf("Run re-raised %v, want the original worker fault", r)
			}
		}()
		set.Run(Time(time.Millisecond), nil)
	}()
	if !peerParked {
		t.Fatal("peer worker never parked before the fault — abort-during-park untested")
	}
}

// hopCounter is an allocation-free ping-pong sink for the epoch
// overhead measurements: every event sends exactly one cross-shard
// successor one hop ahead and counts it — no trace appends.
type hopCounter struct {
	set   *ShardSet
	shard int
	peer  *hopCounter
	hop   Time
	n     uint64
}

func (h *hopCounter) OnEvent(now Time, arg EventArg) {
	h.n++
	h.set.Send(h.shard, h.peer.shard, now, now.Add(time.Duration(h.hop)), h.peer, arg)
}

// epochHarness builds a 2-shard ping-pong at hop = lookahead, the
// worst-case epoch shape: every window fires exactly one event, so the
// run's cost is ~all barrier + mailbox overhead. reset re-arms it for
// another Run on the same set.
type epochHarness struct {
	set     *ShardSet
	engines []*Engine
	a, b    *hopCounter
}

const epochHop = Time(10 * time.Microsecond)

func newEpochHarness(tb testing.TB) *epochHarness {
	tb.Helper()
	engines := []*Engine{NewEngine(), NewEngine()}
	set, err := NewShardSet(engines, time.Duration(epochHop))
	if err != nil {
		tb.Fatal(err)
	}
	h := &epochHarness{set: set, engines: engines}
	h.a = &hopCounter{set: set, shard: 0, hop: epochHop}
	h.b = &hopCounter{set: set, shard: 1, hop: epochHop}
	h.a.peer, h.b.peer = h.b, h.a
	return h
}

func (h *epochHarness) reset() {
	for _, e := range h.engines {
		e.Reset()
	}
	h.a.n, h.b.n = 0, 0
	h.engines[0].AtSink(epochHop, h.a, EventArg{})
}

// BenchmarkShardEpoch measures steady-state per-epoch overhead of the
// fused barrier protocol: one event per window means ns/epoch ≈ barrier
// + mailbox cost. One epoch fires one hop here, so epochs ≈ end/hop.
func BenchmarkShardEpoch(b *testing.B) {
	h := newEpochHarness(b)
	const end = Time(10 * time.Millisecond)
	const epochs = int64(end / epochHop)
	h.reset()
	h.set.Run(end, nil) // warm mailboxes, wheel arrays, spin budget
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		h.reset()
		h.set.Run(end, nil)
	}
	b.StopTimer()
	b.ReportMetric(float64(b.Elapsed().Nanoseconds())/float64(int64(b.N)*epochs), "ns/epoch")
	if got := h.a.n + h.b.n; got != uint64(end/epochHop) {
		b.Fatalf("hops = %d, want %d", got, end/epochHop)
	}
}

// TestShardEpochAllocFree is the PR 9 epoch-overhead gate: a warm
// thousand-epoch Run may allocate only its fixed per-Run scaffolding
// (worker goroutine, pprof labels — well under 100 allocations), so the
// steady-state epoch loop (barrier waits, floor publishes, mailbox
// append/drain) allocates nothing. Any per-epoch allocation would show
// up ~1000×.
func TestShardEpochAllocFree(t *testing.T) {
	if raceEnabled {
		t.Skip("alloc gate: skipped under -race (instrumentation allocates)")
	}
	h := newEpochHarness(t)
	const end = Time(10 * time.Millisecond) // 1000 epochs
	h.reset()
	h.set.Run(end, nil) // warm
	allocs := testing.AllocsPerRun(3, func() {
		h.reset()
		h.set.Run(end, nil)
	})
	if allocs > 100 {
		t.Fatalf("warm 1000-epoch run allocates %.0f times — per-epoch state is not being reused", allocs)
	}
}

// TestRunBefore pins the epoch primitive: strictly-before firing, clock
// parked on the limit, and events at the limit left queued.
func TestRunBefore(t *testing.T) {
	e := NewEngine()
	var fired []uint64
	sink := sinkFunc(func(_ Time, arg EventArg) { fired = append(fired, arg.U64) })
	e.AtSink(10, sink, EventArg{U64: 1})
	e.AtSink(20, sink, EventArg{U64: 2})
	e.AtSink(30, sink, EventArg{U64: 3})
	e.RunBefore(20)
	if len(fired) != 1 || fired[0] != 1 {
		t.Fatalf("RunBefore(20) fired %v, want [1]", fired)
	}
	if e.Now() != 20 {
		t.Fatalf("clock %v, want 20", e.Now())
	}
	// The event at exactly 20 must still be schedulable-equal: it fires
	// on the next window.
	e.RunBefore(31)
	if len(fired) != 3 {
		t.Fatalf("second window fired %v, want all three", fired)
	}
	if e.Pending() != 0 {
		t.Fatalf("pending %d, want 0", e.Pending())
	}
}
