//go:build !race

package sim

// raceEnabled reports whether the race detector is compiled in. See
// race_on_test.go.
const raceEnabled = false
