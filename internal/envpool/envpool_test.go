package envpool_test

import (
	"context"
	"fmt"
	"reflect"
	"testing"

	"repro/internal/envpool"
	"repro/internal/experiment"
	"repro/internal/figures"
	"repro/internal/hw"
	"repro/internal/sched"
	"repro/internal/services"
)

func synthKey() envpool.Key {
	return envpool.Key{Service: "synthetic", Server: hw.ServerBaselineConfig()}
}

func buildSynth() (services.Backend, error) {
	return services.NewSynthetic(services.DefaultSyntheticConfig())
}

func TestPoolLeaseReuseAndKeying(t *testing.T) {
	p := envpool.New()
	key := synthKey()

	a, err := p.Lease(key, buildSynth)
	if err != nil {
		t.Fatal(err)
	}
	b, err := p.Lease(key, buildSynth)
	if err != nil {
		t.Fatal(err)
	}
	if a == b {
		t.Fatal("two live leases share an instance")
	}
	if builds, reuses := p.Stats(); builds != 2 || reuses != 0 {
		t.Errorf("stats = %d builds / %d reuses, want 2/0", builds, reuses)
	}

	p.Release(key, a)
	c, err := p.Lease(key, buildSynth)
	if err != nil {
		t.Fatal(err)
	}
	if c != a {
		t.Error("idle instance not reused")
	}
	if builds, reuses := p.Stats(); builds != 2 || reuses != 1 {
		t.Errorf("stats = %d builds / %d reuses, want 2/1", builds, reuses)
	}

	// A different key never reuses another key's instances.
	other := synthKey()
	other.Server = hw.ServerBaselineConfig().WithSMT(true)
	p.Release(key, c)
	p.Release(key, b)
	d, err := p.Lease(other, buildSynth)
	if err != nil {
		t.Fatal(err)
	}
	if d == a || d == b {
		t.Error("lease crossed configuration keys")
	}
	if got := p.IdleCount(); got != 2 {
		t.Errorf("idle count = %d, want 2", got)
	}
}

func TestPoolLeaseBuildError(t *testing.T) {
	p := envpool.New()
	boom := fmt.Errorf("no backend")
	if _, err := p.Lease(synthKey(), func() (services.Backend, error) { return nil, boom }); err != boom {
		t.Fatalf("err = %v, want %v", err, boom)
	}
	if builds, _ := p.Stats(); builds != 0 {
		t.Errorf("failed build counted: %d", builds)
	}
}

func TestContextPlumbing(t *testing.T) {
	if envpool.From(context.Background()) != nil {
		t.Error("empty context carries a pool")
	}
	ctx := envpool.NewContext(context.Background(), 3)
	if envpool.From(ctx) == nil {
		t.Error("NewContext carries no backend pool")
	}
	b := sched.BudgetFrom(ctx)
	if b == nil || b.Capacity() != 3 {
		t.Errorf("NewContext budget = %+v, want capacity 3", b)
	}
}

// sweepOpts sizes an envpool-layer sweep for test runtimes: 2 clients ×
// 2 server variants × 2 rates, with enough repetitions per cell that the
// nested (cell × run) fan-out genuinely competes for the budget.
func sweepOpts(workers int) figures.SweepOptions {
	return figures.SweepOptions{Runs: 4, Seed: 9, TargetSamples: 400, Workers: workers}
}

func runSweep(t *testing.T, opts figures.SweepOptions) *figures.Sweep {
	t.Helper()
	sw, err := figures.RunServiceSweep(experiment.ServiceMemcached,
		experiment.SMTVariants(), []float64{50_000, 200_000}, opts)
	if err != nil {
		t.Fatal(err)
	}
	return sw
}

// TestNestedFanOutRespectsBudget is the oversubscription regression
// test: a sweep dispatching cells and scenarios dispatching runs both
// draw from one budget, so with "-parallel 3" the concurrency high-water
// mark across both levels must never exceed 3 (not 3×runs).
func TestNestedFanOutRespectsBudget(t *testing.T) {
	budget := sched.NewBudget(3)
	opts := sweepOpts(3)
	opts.Budget = budget
	opts.Backends = envpool.New()
	runSweep(t, opts)

	if got := budget.HighWater(); got > 3 {
		t.Errorf("high water = %d workers, exceeds global budget 3 (nested fan-out oversubscribed)", got)
	}
	if got := budget.HighWater(); got == 0 {
		t.Error("budget never used — fan-out did not run under it")
	}
	if got := budget.InUse(); got != 0 {
		t.Errorf("tokens leaked: %d still in use", got)
	}
}

// TestEnvPoolSweepDeterministic pins the byte-identical guarantee at the
// envpool layer: sequential and parallel sweeps — with backend leasing
// and nested budget scheduling active — produce DeepEqual grids, and the
// pooled backends really are reused rather than rebuilt per cell.
func TestEnvPoolSweepDeterministic(t *testing.T) {
	if testing.Short() {
		t.Skip("covered in short mode by figures.TestParallelSweepByteIdentical, which sweeps through the same envpool path")
	}
	seqPool := envpool.New()
	seqOpts := sweepOpts(1)
	seqOpts.Backends = seqPool
	seq := runSweep(t, seqOpts)

	parPool := envpool.New()
	parOpts := sweepOpts(4)
	parOpts.Backends = parPool
	par := runSweep(t, parOpts)

	if !reflect.DeepEqual(seq, par) {
		t.Error("parallel envpool sweep differs from sequential")
	}

	// 8 cells over 2 distinct backend keys: a sequential sweep needs at
	// most one backend per key live at a time, so leasing must have
	// reused instances across cells.
	builds, reuses := seqPool.Stats()
	if builds != 2 {
		t.Errorf("sequential sweep built %d backends, want 2 (one per server config)", builds)
	}
	if reuses == 0 {
		t.Error("sequential sweep never reused a pooled backend")
	}
	// The parallel sweep may build up to min(Runs, budget) instances per
	// concurrently active cell, but never more than cells × runs — and
	// every lease must come back.
	pb, pr := parPool.Stats()
	if pb+pr == 0 {
		t.Error("parallel sweep never touched the backend pool")
	}
	if pb > 8*4 {
		t.Errorf("parallel sweep built %d backends for 8 cells × 4 runs", pb)
	}
	if got := parPool.IdleCount(); got != pb {
		t.Errorf("leases leaked: %d idle of %d built", got, pb)
	}
}

// TestScenarioLeasesReleased pins that RunContext returns every lease:
// after two scenarios sharing a key, the second run builds nothing new
// when its worker count fits the idle list.
func TestScenarioLeasesReleased(t *testing.T) {
	pool := envpool.New()
	ctx := envpool.WithPool(context.Background(), pool)
	s := experiment.Scenario{
		Service:       experiment.ServiceSynthetic,
		Label:         "lease",
		Client:        hw.LPConfig(),
		Server:        hw.ServerBaselineConfig(),
		RateQPS:       5_000,
		Runs:          3,
		TargetSamples: 200,
		Seed:          21,
		Workers:       2,
	}
	first, err := experiment.RunContext(ctx, s)
	if err != nil {
		t.Fatal(err)
	}
	builds, _ := pool.Stats()
	if builds == 0 || builds > 2 {
		t.Fatalf("first scenario built %d backends, want 1–2 (one per worker)", builds)
	}
	if got := pool.IdleCount(); got != builds {
		t.Fatalf("leases not returned: %d idle of %d built", got, builds)
	}

	second, err := experiment.RunContext(ctx, s)
	if err != nil {
		t.Fatal(err)
	}
	// The second scenario's first lease always finds an idle instance; at
	// most it adds workers the first scenario never spawned, so the total
	// can never exceed the per-scenario worker cap.
	builds2, reuses := pool.Stats()
	if builds2 > 2 {
		t.Errorf("total builds = %d, want ≤2 (scenario worker cap)", builds2)
	}
	if reuses == 0 {
		t.Error("second scenario never reused the pooled backends")
	}

	// Leasing must not perturb results: same scenario, same Result.
	if !reflect.DeepEqual(first, second) {
		t.Error("two pooled executions of the same scenario differ")
	}
}
