package envpool

import (
	"reflect"
	"testing"

	"repro/internal/hw"
	"repro/internal/loadgen"
	"repro/internal/services"
)

func testKey(name string) Key {
	return Key{Service: name, Server: hw.ServerBaselineConfig()}
}

func newSynthetic(t *testing.T) func() (services.Backend, error) {
	t.Helper()
	return func() (services.Backend, error) {
		return services.NewSynthetic(services.DefaultSyntheticConfig())
	}
}

// TestIdleListBounded pins the per-key idle cap: releases beyond
// MaxIdlePerKey drop the instance and count as evictions, so a long
// many-configuration sweep cannot grow pool residency unboundedly.
func TestIdleListBounded(t *testing.T) {
	p := New()
	p.MaxIdlePerKey = 2
	key := testKey("synthetic")

	var backends []services.Backend
	for i := 0; i < 5; i++ {
		b, err := p.Lease(key, newSynthetic(t))
		if err != nil {
			t.Fatal(err)
		}
		backends = append(backends, b)
	}
	for _, b := range backends {
		p.Release(key, b)
	}
	if got := p.IdleCount(); got != 2 {
		t.Errorf("idle count = %d, want cap of 2", got)
	}
	if got := p.Evictions(); got != 3 {
		t.Errorf("evictions = %d, want 3", got)
	}
	// The cap is per key: a second key gets its own allowance.
	b, err := p.Lease(testKey("other"), newSynthetic(t))
	if err != nil {
		t.Fatal(err)
	}
	p.Release(testKey("other"), b)
	if got := p.IdleCount(); got != 3 {
		t.Errorf("idle count across keys = %d, want 3", got)
	}
}

func TestDefaultIdleCap(t *testing.T) {
	p := New()
	key := testKey("synthetic")
	var backends []services.Backend
	for i := 0; i < DefaultMaxIdlePerKey+3; i++ {
		b, err := p.Lease(key, newSynthetic(t))
		if err != nil {
			t.Fatal(err)
		}
		backends = append(backends, b)
	}
	for _, b := range backends {
		p.Release(key, b)
	}
	if got := p.IdleCount(); got != DefaultMaxIdlePerKey {
		t.Errorf("idle count = %d, want default cap %d", got, DefaultMaxIdlePerKey)
	}
	if got := p.Evictions(); got != 3 {
		t.Errorf("evictions = %d, want 3", got)
	}
}

// TestMachineLeasing covers the generator-pooling path: machine sets are
// leased by (client config, deployment shape) key, reused across
// lessees, and bounded by the same idle cap.
func TestMachineLeasing(t *testing.T) {
	p := New()
	cfg := loadgen.Config{
		Machines: 2, ThreadsPerMachine: 2, ConnsPerThread: 5,
		RateQPS: 1000, ClientHW: hw.HPConfig(), TimeSensitive: true,
	}
	count, cores := cfg.MachineSpec()
	key := MachineKey{Client: cfg.ClientHW, Machines: count, Cores: cores}

	build := func() ([]*hw.Machine, error) { return loadgen.BuildMachines(cfg) }
	ms, err := p.LeaseMachines(key, build)
	if err != nil {
		t.Fatal(err)
	}
	if len(ms) != count || ms[0].NumPhysicalCores() != cores {
		t.Fatalf("built %d machines × %d cores, want %d × %d", len(ms), ms[0].NumPhysicalCores(), count, cores)
	}
	p.ReleaseMachines(key, ms)
	if got := p.IdleMachineSets(); got != 1 {
		t.Fatalf("idle machine sets = %d, want 1", got)
	}

	ms2, err := p.LeaseMachines(key, build)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(ms, ms2) {
		t.Error("second lease did not reuse the idle machine set")
	}
	if builds, reuses := p.MachineStats(); builds != 1 || reuses != 1 {
		t.Errorf("machine stats = %d builds / %d reuses, want 1/1", builds, reuses)
	}

	// A different client config never reuses another key's machines.
	lpKey := key
	lpKey.Client = hw.LPConfig()
	if _, err := p.LeaseMachines(lpKey, func() ([]*hw.Machine, error) {
		lpCfg := cfg
		lpCfg.ClientHW = hw.LPConfig()
		return loadgen.BuildMachines(lpCfg)
	}); err != nil {
		t.Fatal(err)
	}
	if builds, _ := p.MachineStats(); builds != 2 {
		t.Errorf("distinct key should build: %d builds, want 2", builds)
	}
}
