// Package envpool manages the expensive resources parallel experiments
// share: prebuilt service backends leased by configuration key, and (via
// package sched) the global worker budget bounding total fan-out.
//
// A sweep is a grid of scenarios, many of which differ only in client
// configuration or offered load — dimensions a backend is blind to.
// Without pooling, every grid cell rebuilds its service from scratch
// (preload, index construction, graph seeding, tier wiring); with
// pooling, cells that share a (service, server-config) key lease an idle
// prebuilt instance and return it when done, so the build cost is paid
// once per distinct key per concurrency slot rather than once per cell.
//
// Leasing is sound because of the Backend contract (services.Backend):
// ResetRun is complete, so a leased instance — even one returned dirty by
// the previous scenario — produces results that are a pure function of
// (configuration, run stream). The pool hands each instance to at most
// one lessee at a time; it never inspects or resets instances itself.
//
// The same contract holds for client machines (hw.Machine.ResetRun), so
// the pool also leases prebuilt client-machine sets by MachineKey:
// scenarios that share a client hardware configuration and deployment
// shape reuse machines instead of rebuilding them per cell. Idle lists
// are bounded per key (MaxIdlePerKey, default DefaultMaxIdlePerKey);
// releases beyond the bound drop the instance and count as evictions,
// so long many-configuration sweeps cannot grow residency unboundedly.
//
// Both resources travel by context: WithPool / sched.WithBudget attach
// them, experiment.RunContext and the figures sweeps pick them up.
// NewContext bundles the standard environment for a "-parallel N" fan-out.
package envpool

import (
	"context"
	"sync"
	"time"

	"repro/internal/hw"
	"repro/internal/sched"
	"repro/internal/services"
)

// DefaultMaxIdlePerKey bounds each key's idle list. Releases beyond the
// bound drop the instance instead of pooling it, so a long sweep over
// many distinct configurations cannot grow resident memory without
// bound: per-key residency is capped at the bound and dropped
// instances return to the garbage collector. The default comfortably
// covers one machine's worth of concurrent lessees per key.
const DefaultMaxIdlePerKey = 8

// Key identifies a backend configuration: two scenarios with equal keys
// build interchangeable backends. Client configuration, offered load,
// repetition count and sampling are deliberately absent — backends are
// blind to all of them.
type Key struct {
	// Service is the benchmark name (experiment.Service values).
	Service string
	// Server is the server-side hardware configuration.
	Server hw.Config
	// SynthDelay is the synthetic service's added busy-wait (zero for
	// the other services).
	SynthDelay time.Duration
	// Cluster encodes the replication shape (replica count, router
	// policy, autoscaler bounds) for clustered scenarios, empty for the
	// single-backend path — a clustered backend and a bare one are never
	// interchangeable, even on the same service and server config.
	Cluster string
	// Faults is the fault plan's fingerprint (faults.Plan.Fingerprint),
	// empty when the scenario injects nothing. A faulty fleet and a
	// healthy one must never share pooled backends: the plan is installed
	// on the ReplicaSet at build time.
	Faults string
	// HiccupRate / HiccupMean are the scenario's tier-hiccup overrides
	// (zero = service defaults), baked into every tier at construction.
	HiccupRate float64
	HiccupMean time.Duration
}

// MachineKey identifies an interchangeable set of client machines: the
// hardware configuration plus the deployment shape
// (loadgen.Config.MachineSpec). Offered load, pacing discipline and
// payloads are absent on purpose — machines are blind to all of them,
// and every run resets its machines fully (hw.Machine.ResetRun).
type MachineKey struct {
	// Client is the client-side hardware configuration.
	Client hw.Config
	// Machines is the machine count of the deployment.
	Machines int
	// Cores is the physical core count per machine.
	Cores int
}

// cache is one keyed idle list with its counters; Pool methods serialize
// access under Pool.mu.
type cache[K comparable, V any] struct {
	idle                      map[K][]V
	builds, reuses, evictions int
}

func newCache[K comparable, V any]() cache[K, V] {
	return cache[K, V]{idle: make(map[K][]V)}
}

// take pops an idle instance for key, if any.
func (c *cache[K, V]) take(key K) (V, bool) {
	list := c.idle[key]
	if len(list) == 0 {
		var zero V
		return zero, false
	}
	v := list[len(list)-1]
	c.idle[key] = list[:len(list)-1]
	c.reuses++
	return v, true
}

// put returns an instance to key's idle list, dropping it when the list
// is at the cap.
func (c *cache[K, V]) put(key K, v V, maxIdle int) {
	if len(c.idle[key]) >= maxIdle {
		c.evictions++
		return
	}
	c.idle[key] = append(c.idle[key], v)
}

func (c *cache[K, V]) idleCount() int {
	n := 0
	for _, list := range c.idle {
		n += len(list)
	}
	return n
}

// Pool caches idle prebuilt backends by configuration key, and idle
// client-machine sets by machine key. It is safe for concurrent use;
// every instance is leased exclusively.
type Pool struct {
	// MaxIdlePerKey caps each key's idle list; releases beyond the cap
	// drop the instance (counted in Evictions). 0 selects
	// DefaultMaxIdlePerKey. Set before first use.
	MaxIdlePerKey int

	mu       sync.Mutex
	backends cache[Key, services.Backend]
	machines cache[MachineKey, []*hw.Machine]
}

// New returns an empty pool.
func New() *Pool {
	return &Pool{
		backends: newCache[Key, services.Backend](),
		machines: newCache[MachineKey, []*hw.Machine](),
	}
}

func (p *Pool) maxIdle() int {
	if p.MaxIdlePerKey > 0 {
		return p.MaxIdlePerKey
	}
	return DefaultMaxIdlePerKey
}

// Lease returns an exclusive backend for key, reusing an idle instance
// when one is available and building a fresh one with build otherwise.
// Return the instance with Release when the lease ends.
func (p *Pool) Lease(key Key, build func() (services.Backend, error)) (services.Backend, error) {
	p.mu.Lock()
	if b, ok := p.backends.take(key); ok {
		p.mu.Unlock()
		return b, nil
	}
	p.backends.builds++
	p.mu.Unlock()

	// Build outside the lock so distinct keys construct concurrently.
	b, err := build()
	if err != nil {
		p.mu.Lock()
		p.backends.builds--
		p.mu.Unlock()
		return nil, err
	}
	return b, nil
}

// Release returns a leased backend to the idle list under its key. The
// instance may be dirty; the next lessee's run reset restores it (the
// ResetRun-completeness contract). At the per-key idle cap the instance
// is dropped instead, bounding pool residency.
func (p *Pool) Release(key Key, b services.Backend) {
	if b == nil {
		return
	}
	p.mu.Lock()
	p.backends.put(key, b, p.maxIdle())
	p.mu.Unlock()
}

// LeaseMachines returns an exclusive client-machine set for key, reusing
// an idle set when one is available and building a fresh one otherwise.
// Return the set with ReleaseMachines when the lease ends. Leasing is
// sound for the same reason backend leasing is: every run resets its
// machines completely, so a reused set produces results identical to a
// fresh build.
func (p *Pool) LeaseMachines(key MachineKey, build func() ([]*hw.Machine, error)) ([]*hw.Machine, error) {
	p.mu.Lock()
	if ms, ok := p.machines.take(key); ok {
		p.mu.Unlock()
		return ms, nil
	}
	p.machines.builds++
	p.mu.Unlock()

	ms, err := build()
	if err != nil {
		p.mu.Lock()
		p.machines.builds--
		p.mu.Unlock()
		return nil, err
	}
	return ms, nil
}

// ReleaseMachines returns a leased machine set to the idle list under
// its key, subject to the same per-key idle cap as backends.
func (p *Pool) ReleaseMachines(key MachineKey, ms []*hw.Machine) {
	if len(ms) == 0 {
		return
	}
	p.mu.Lock()
	p.machines.put(key, ms, p.maxIdle())
	p.mu.Unlock()
}

// Stats reports how many backends were built versus leased from the
// idle list.
func (p *Pool) Stats() (builds, reuses int) {
	p.mu.Lock()
	defer p.mu.Unlock()
	return p.backends.builds, p.backends.reuses
}

// MachineStats reports how many client-machine sets were built versus
// leased from the idle list.
func (p *Pool) MachineStats() (builds, reuses int) {
	p.mu.Lock()
	defer p.mu.Unlock()
	return p.machines.builds, p.machines.reuses
}

// Evictions reports how many instances (backends plus machine sets)
// were dropped at the per-key idle cap.
func (p *Pool) Evictions() int {
	p.mu.Lock()
	defer p.mu.Unlock()
	return p.backends.evictions + p.machines.evictions
}

// IdleCount returns the number of idle backends currently pooled.
func (p *Pool) IdleCount() int {
	p.mu.Lock()
	defer p.mu.Unlock()
	return p.backends.idleCount()
}

// IdleMachineSets returns the number of idle machine sets currently
// pooled.
func (p *Pool) IdleMachineSets() int {
	p.mu.Lock()
	defer p.mu.Unlock()
	return p.machines.idleCount()
}

type poolCtxKey struct{}

// WithPool returns a context carrying p. experiment.RunContext leases
// its workers' backends from the carried pool.
func WithPool(ctx context.Context, p *Pool) context.Context {
	return context.WithValue(ctx, poolCtxKey{}, p)
}

// From returns the backend pool the context carries, or nil.
func From(ctx context.Context) *Pool {
	p, _ := ctx.Value(poolCtxKey{}).(*Pool)
	return p
}

// NewContext returns a context carrying a fresh backend pool and a
// worker budget "workers" wide (sched.Resolve semantics: 0 or 1 means
// one worker, negative means one per available CPU) — the standard
// envpool environment for experiment fan-out. Every
// pool dispatched under the returned context, at any nesting level,
// shares the one budget and the one backend cache.
func NewContext(parent context.Context, workers int) context.Context {
	ctx := sched.WithBudget(parent, sched.NewBudget(sched.Resolve(workers)))
	return WithPool(ctx, New())
}
