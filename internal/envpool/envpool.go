// Package envpool manages the expensive resources parallel experiments
// share: prebuilt service backends leased by configuration key, and (via
// package sched) the global worker budget bounding total fan-out.
//
// A sweep is a grid of scenarios, many of which differ only in client
// configuration or offered load — dimensions a backend is blind to.
// Without pooling, every grid cell rebuilds its service from scratch
// (preload, index construction, graph seeding, tier wiring); with
// pooling, cells that share a (service, server-config) key lease an idle
// prebuilt instance and return it when done, so the build cost is paid
// once per distinct key per concurrency slot rather than once per cell.
//
// Leasing is sound because of the Backend contract (services.Backend):
// ResetRun is complete, so a leased instance — even one returned dirty by
// the previous scenario — produces results that are a pure function of
// (configuration, run stream). The pool hands each instance to at most
// one lessee at a time; it never inspects or resets instances itself.
//
// Both resources travel by context: WithPool / sched.WithBudget attach
// them, experiment.RunContext and the figures sweeps pick them up.
// NewContext bundles the standard environment for a "-parallel N" fan-out.
package envpool

import (
	"context"
	"sync"
	"time"

	"repro/internal/hw"
	"repro/internal/sched"
	"repro/internal/services"
)

// Key identifies a backend configuration: two scenarios with equal keys
// build interchangeable backends. Client configuration, offered load,
// repetition count and sampling are deliberately absent — backends are
// blind to all of them.
type Key struct {
	// Service is the benchmark name (experiment.Service values).
	Service string
	// Server is the server-side hardware configuration.
	Server hw.Config
	// SynthDelay is the synthetic service's added busy-wait (zero for
	// the other services).
	SynthDelay time.Duration
}

// Pool caches idle prebuilt backends by configuration key. It is safe
// for concurrent use; every instance is leased exclusively.
type Pool struct {
	mu   sync.Mutex
	idle map[Key][]services.Backend

	builds, reuses int
}

// New returns an empty backend pool.
func New() *Pool {
	return &Pool{idle: make(map[Key][]services.Backend)}
}

// Lease returns an exclusive backend for key, reusing an idle instance
// when one is available and building a fresh one with build otherwise.
// Return the instance with Release when the lease ends.
func (p *Pool) Lease(key Key, build func() (services.Backend, error)) (services.Backend, error) {
	p.mu.Lock()
	if list := p.idle[key]; len(list) > 0 {
		b := list[len(list)-1]
		p.idle[key] = list[:len(list)-1]
		p.reuses++
		p.mu.Unlock()
		return b, nil
	}
	p.builds++
	p.mu.Unlock()

	// Build outside the lock so distinct keys construct concurrently.
	b, err := build()
	if err != nil {
		p.mu.Lock()
		p.builds--
		p.mu.Unlock()
		return nil, err
	}
	return b, nil
}

// Release returns a leased backend to the idle list under its key. The
// instance may be dirty; the next lessee's run reset restores it (the
// ResetRun-completeness contract).
func (p *Pool) Release(key Key, b services.Backend) {
	if b == nil {
		return
	}
	p.mu.Lock()
	p.idle[key] = append(p.idle[key], b)
	p.mu.Unlock()
}

// Stats reports how many backends were built versus leased from the
// idle list.
func (p *Pool) Stats() (builds, reuses int) {
	p.mu.Lock()
	defer p.mu.Unlock()
	return p.builds, p.reuses
}

// IdleCount returns the number of idle instances currently pooled.
func (p *Pool) IdleCount() int {
	p.mu.Lock()
	defer p.mu.Unlock()
	n := 0
	for _, list := range p.idle {
		n += len(list)
	}
	return n
}

type poolCtxKey struct{}

// WithPool returns a context carrying p. experiment.RunContext leases
// its workers' backends from the carried pool.
func WithPool(ctx context.Context, p *Pool) context.Context {
	return context.WithValue(ctx, poolCtxKey{}, p)
}

// From returns the backend pool the context carries, or nil.
func From(ctx context.Context) *Pool {
	p, _ := ctx.Value(poolCtxKey{}).(*Pool)
	return p
}

// NewContext returns a context carrying a fresh backend pool and a
// worker budget "workers" wide (sched.Resolve semantics: 0 or 1 means
// one worker, negative means one per available CPU) — the standard
// envpool environment for experiment fan-out. Every
// pool dispatched under the returned context, at any nesting level,
// shares the one budget and the one backend cache.
func NewContext(parent context.Context, workers int) context.Context {
	ctx := sched.WithBudget(parent, sched.NewBudget(sched.Resolve(workers)))
	return WithPool(ctx, New())
}
