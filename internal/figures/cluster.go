package figures

import (
	"fmt"
	"strings"

	"repro/internal/cluster"
	"repro/internal/experiment"
)

// Cluster figures: the two renderings the replicated-fleet preset feeds.
// LoadBalanceTable is the load-balance-skew figure — how unevenly each
// routing policy spreads the hot-key ETC trace over the replicas — and
// ScaleOutTable is the scale-out latency table: tail latency versus
// offered load for a fleet a single instance could not serve.

// Clustered reports whether any run of the preset carries replica-set
// stats — the gate CLIs use to decide whether the cluster tables have
// anything to show.
func (pr *PresetResult) Clustered() bool {
	for _, res := range pr.Results {
		if len(clusterStats(res)) > 0 {
			return true
		}
	}
	return false
}

// clusterStats collects one result's per-run cluster snapshots, skipping
// runs without them (the single-backend path leaves Cluster nil).
func clusterStats(res experiment.Result) []*cluster.RunStats {
	var sts []*cluster.RunStats
	for _, rm := range res.Runs {
		if rm.Cluster != nil {
			sts = append(sts, rm.Cluster)
		}
	}
	return sts
}

// meanSkew averages RunStats.Skew over a result's runs; 0 when no run
// carries cluster stats.
func meanSkew(sts []*cluster.RunStats) float64 {
	if len(sts) == 0 {
		return 0
	}
	var total float64
	for _, st := range sts {
		total += st.Skew()
	}
	return total / float64(len(sts))
}

// replicaShares sums routed counts per replica across runs and returns
// each replica's share of the total (index = replica). Replica counts
// are identical across a scenario's runs, so the slice length is the
// fleet capacity.
func replicaShares(sts []*cluster.RunStats) []float64 {
	var routed []uint64
	var total uint64
	for _, st := range sts {
		if len(st.Replicas) > len(routed) {
			grown := make([]uint64, len(st.Replicas))
			copy(grown, routed)
			routed = grown
		}
		for i, r := range st.Replicas {
			routed[i] += r.Routed
			total += r.Routed
		}
	}
	shares := make([]float64, len(routed))
	if total == 0 {
		return shares
	}
	for i, n := range routed {
		shares[i] = float64(n) / float64(total)
	}
	return shares
}

// maxQueueDepths returns the deepest shared-FIFO and per-connection
// affinity backlog seen on any replica across the runs.
func maxQueueDepths(sts []*cluster.RunStats) (shared, conn int) {
	for _, st := range sts {
		for _, r := range st.Replicas {
			if r.MaxSharedQueue > shared {
				shared = r.MaxSharedQueue
			}
			if r.MaxConnQueue > conn {
				conn = r.MaxConnQueue
			}
		}
	}
	return shared, conn
}

// LoadBalanceTable renders the load-balance-skew figure: one row per
// offered rate with the mean skew (max routed / mean routed over active
// replicas; 1.0 = perfect balance), each replica's share of routed
// requests, and the deepest queue backlogs the imbalance produced.
// Results without cluster stats render a placeholder row, so the table
// is safe on any preset.
func (pr *PresetResult) LoadBalanceTable() string {
	var b strings.Builder
	p := pr.Preset
	fmt.Fprintf(&b, "%s: routed-load balance by replica (%s router)\n", p.Name, routerLabel(pr))
	fmt.Fprintf(&b, "%-12s %8s %10s %10s  %s\n", "rate", "skew", "maxShared", "maxConn", "replica shares")
	for i, rate := range p.Rates {
		sts := clusterStats(pr.Results[i])
		if len(sts) == 0 {
			fmt.Fprintf(&b, "%-12s %8s %10s %10s  %s\n", FormatRate(rate), "-", "-", "-", "(no cluster stats)")
			continue
		}
		shared, conn := maxQueueDepths(sts)
		var shares []string
		for ri, s := range replicaShares(sts) {
			shares = append(shares, fmt.Sprintf("r%d=%.1f%%", ri, s*100))
		}
		fmt.Fprintf(&b, "%-12s %8.3f %10d %10d  %s\n",
			FormatRate(rate), meanSkew(sts), shared, conn, strings.Join(shares, " "))
	}
	return strings.TrimRight(b.String(), "\n")
}

// ScaleOutTable renders scale-out latency versus offered load: one row
// per rate with the active/capacity replica count serving it and the
// sweep's latency statistics. On an autoscaled preset the replica column
// reflects each rate's end-of-run active count — the control loop's
// answer to that offered load.
func (pr *PresetResult) ScaleOutTable() string {
	var b strings.Builder
	p := pr.Preset
	fmt.Fprintf(&b, "%s: scale-out latency vs offered load (%s router)\n", p.Name, routerLabel(pr))
	fmt.Fprintf(&b, "%-12s %10s %12s %12s %12s %10s\n",
		"rate", "replicas", "avg(µs)", "p99(µs)", "stddev(µs)", "samples")
	for i, rate := range p.Rates {
		res := pr.Results[i]
		replicas := "-"
		if sts := clusterStats(res); len(sts) > 0 {
			last := sts[len(sts)-1]
			replicas = fmt.Sprintf("%d/%d", last.Active, last.Capacity)
		}
		samples := 0
		if len(res.Runs) > 0 {
			samples = res.Runs[0].Samples
		}
		fmt.Fprintf(&b, "%-12s %10s %12.2f %12.2f %12.2f %10d\n",
			FormatRate(rate), replicas, res.MedianAvgUs(), res.MedianP99Us(), res.StdDevAvgUs, samples)
	}
	return strings.TrimRight(b.String(), "\n")
}

// routerLabel names the routing policy a preset result ran under,
// preferring the recorded run stats over the preset's declaration (the
// options may have overridden it).
func routerLabel(pr *PresetResult) string {
	for _, res := range pr.Results {
		if sts := clusterStats(res); len(sts) > 0 {
			return sts[0].Router
		}
	}
	if pr.Preset.Router != "" {
		return pr.Preset.Router
	}
	return "none"
}
