package figures

import (
	"flag"
	"os"
	"path/filepath"
	"testing"

	"repro/internal/experiment"
)

// Golden-file regression tests: every renderer's output over a small
// fixed-seed sweep is committed under testdata/ and compared byte for
// byte. They pin two things at once — the renderers themselves, and the
// whole simulation path beneath them: any change to scheduling, backend
// pooling or the store layer that perturbed a single latency sample
// would shift the rendered medians. Regenerate after an intentional
// change with:
//
//	go test ./internal/figures -run TestGolden -update
var update = flag.Bool("update", false, "rewrite golden files under testdata/")

func checkGolden(t *testing.T, name, got string) {
	t.Helper()
	path := filepath.Join("testdata", name)
	if *update {
		if err := os.MkdirAll("testdata", 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(path, []byte(got), 0o644); err != nil {
			t.Fatal(err)
		}
		return
	}
	want, err := os.ReadFile(path)
	if err != nil {
		t.Fatalf("missing golden file (run with -update to create): %v", err)
	}
	if got != string(want) {
		t.Errorf("%s: output differs from golden file (rerun with -update if the change is intentional)\ngot:\n%s", name, got)
	}
}

// goldenSweep is the reduced Memcached study the sweep-backed goldens
// render: all three server variants at two load points, three runs each.
func goldenSweep(t *testing.T) *Sweep {
	t.Helper()
	variants := []experiment.ServerVariant{
		experiment.SMTVariants()[0], // SMToff == C1Eoff baseline
		experiment.SMTVariants()[1],
		experiment.C1EVariants()[1],
	}
	sw, err := RunServiceSweep(experiment.ServiceMemcached, variants,
		[]float64{50_000, 200_000},
		SweepOptions{Runs: 3, Seed: 2024, TargetSamples: 500, Workers: -1})
	if err != nil {
		t.Fatal(err)
	}
	return sw
}

func TestGoldenMemcachedFigures(t *testing.T) {
	sw := goldenSweep(t)
	checkGolden(t, "fig2_small.golden", Fig2(sw))
	checkGolden(t, "fig3_small.golden", Fig3(sw))
	checkGolden(t, "fig8_small.golden", Fig8(sw))
	checkGolden(t, "table4_small.golden", TableIV(sw, 2024).Render())
}

func TestGoldenStaticTables(t *testing.T) {
	checkGolden(t, "table1.golden", TableI().Render())
	checkGolden(t, "table2.golden", TableII().Render())
	checkGolden(t, "table3.golden", TableIII().Render())
	checkGolden(t, "recommendations.golden", RecommendationsTable().Render())
	checkGolden(t, "table2.csv.golden", TableII().CSV())
}
