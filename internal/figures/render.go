// Package figures regenerates every table and figure of the paper's
// evaluation from simulation results: orchestration of the experiment
// sweeps, plus text renderers (aligned tables and ASCII charts) that print
// the same rows and series the paper plots.
package figures

import (
	"fmt"
	"math"
	"strings"
)

// Table is a simple aligned text table.
type Table struct {
	Title   string
	Headers []string
	Rows    [][]string
	Notes   []string
}

// AddRow appends a row.
func (t *Table) AddRow(cells ...string) {
	t.Rows = append(t.Rows, cells)
}

// Render formats the table with aligned columns.
func (t *Table) Render() string {
	widths := make([]int, len(t.Headers))
	for i, h := range t.Headers {
		widths[i] = len([]rune(h))
	}
	for _, row := range t.Rows {
		for i, c := range row {
			if i < len(widths) && len([]rune(c)) > widths[i] {
				widths[i] = len([]rune(c))
			}
		}
	}
	var sb strings.Builder
	if t.Title != "" {
		fmt.Fprintf(&sb, "%s\n", t.Title)
	}
	writeRow := func(cells []string) {
		for i, c := range cells {
			if i > 0 {
				sb.WriteString("  ")
			}
			fmt.Fprintf(&sb, "%-*s", widths[i], c)
		}
		sb.WriteByte('\n')
	}
	writeRow(t.Headers)
	total := len(t.Headers) - 1
	for _, w := range widths {
		total += w + 1
	}
	sb.WriteString(strings.Repeat("-", total))
	sb.WriteByte('\n')
	for _, row := range t.Rows {
		writeRow(row)
	}
	for _, n := range t.Notes {
		fmt.Fprintf(&sb, "note: %s\n", n)
	}
	return sb.String()
}

// CSV renders the table as comma-separated values.
func (t *Table) CSV() string {
	var sb strings.Builder
	esc := func(s string) string {
		if strings.ContainsAny(s, ",\"\n") {
			return `"` + strings.ReplaceAll(s, `"`, `""`) + `"`
		}
		return s
	}
	cells := make([]string, len(t.Headers))
	for i, h := range t.Headers {
		cells[i] = esc(h)
	}
	sb.WriteString(strings.Join(cells, ","))
	sb.WriteByte('\n')
	for _, row := range t.Rows {
		cells = cells[:0]
		for _, c := range row {
			cells = append(cells, esc(c))
		}
		sb.WriteString(strings.Join(cells, ","))
		sb.WriteByte('\n')
	}
	return sb.String()
}

// Series is one line of an ASCII chart.
type Series struct {
	Name   string
	Points []float64 // y values aligned with the chart's x labels
}

// Chart is a multi-series ASCII line chart (the paper's figure panels).
type Chart struct {
	Title   string
	XLabel  string
	YLabel  string
	XLabels []string
	Series  []Series
	Height  int // rows; default 12
}

var seriesMarks = []byte{'*', 'o', '+', 'x', '#', '@'}

// Render draws the chart with one mark per series.
func (c *Chart) Render() string {
	height := c.Height
	if height <= 0 {
		height = 12
	}
	ymin, ymax := math.Inf(1), math.Inf(-1)
	n := 0
	for _, s := range c.Series {
		for _, v := range s.Points {
			if math.IsNaN(v) {
				continue
			}
			ymin = math.Min(ymin, v)
			ymax = math.Max(ymax, v)
		}
		if len(s.Points) > n {
			n = len(s.Points)
		}
	}
	if n == 0 || math.IsInf(ymin, 1) {
		return c.Title + "\n(no data)\n"
	}
	if ymin > 0 && ymin < ymax/3 {
		ymin = 0 // anchor at zero like the paper's axes when sensible
	}
	if ymax == ymin {
		ymax = ymin + 1
	}

	colWidth := 6
	grid := make([][]byte, height)
	for i := range grid {
		grid[i] = []byte(strings.Repeat(" ", n*colWidth))
	}
	for si, s := range c.Series {
		mark := seriesMarks[si%len(seriesMarks)]
		for xi, v := range s.Points {
			if math.IsNaN(v) {
				continue
			}
			row := int(math.Round((v - ymin) / (ymax - ymin) * float64(height-1)))
			if row < 0 {
				row = 0
			}
			if row >= height {
				row = height - 1
			}
			col := xi*colWidth + colWidth/2
			grid[height-1-row][col] = mark
		}
	}

	var sb strings.Builder
	if c.Title != "" {
		fmt.Fprintf(&sb, "%s\n", c.Title)
	}
	for i, line := range grid {
		y := ymax - (ymax-ymin)*float64(i)/float64(height-1)
		fmt.Fprintf(&sb, "%10.4g |%s\n", y, string(line))
	}
	sb.WriteString(strings.Repeat(" ", 11) + "+" + strings.Repeat("-", n*colWidth) + "\n")
	sb.WriteString(strings.Repeat(" ", 12))
	for _, xl := range c.XLabels {
		fmt.Fprintf(&sb, "%-*s", colWidth, truncate(xl, colWidth-1))
	}
	sb.WriteByte('\n')
	if c.XLabel != "" || c.YLabel != "" {
		fmt.Fprintf(&sb, "%12sx: %s   y: %s\n", "", c.XLabel, c.YLabel)
	}
	for si, s := range c.Series {
		fmt.Fprintf(&sb, "%12s%c = %s\n", "", seriesMarks[si%len(seriesMarks)], s.Name)
	}
	return sb.String()
}

func truncate(s string, n int) string {
	if len(s) <= n {
		return s
	}
	if n <= 0 {
		return ""
	}
	return s[:n]
}

// FormatRate renders a QPS value the way the paper's axes do (10K, 500, …).
func FormatRate(rate float64) string {
	if rate >= 1000 {
		return fmt.Sprintf("%gK", rate/1000)
	}
	return fmt.Sprintf("%g", rate)
}
