package figures

import (
	"strings"
	"testing"

	"repro/internal/experiment"
)

func TestTableRender(t *testing.T) {
	tb := &Table{Title: "T", Headers: []string{"a", "bb"}, Notes: []string{"n1"}}
	tb.AddRow("1", "2")
	tb.AddRow("333", "4")
	out := tb.Render()
	for _, want := range []string{"T\n", "a", "bb", "333", "note: n1"} {
		if !strings.Contains(out, want) {
			t.Errorf("render missing %q:\n%s", want, out)
		}
	}
}

func TestTableCSV(t *testing.T) {
	tb := &Table{Headers: []string{"x", "y"}}
	tb.AddRow("a,b", `say "hi"`)
	csv := tb.CSV()
	if !strings.Contains(csv, `"a,b"`) {
		t.Errorf("comma cell not quoted: %s", csv)
	}
	if !strings.Contains(csv, `"say ""hi"""`) {
		t.Errorf("quote cell not escaped: %s", csv)
	}
	if !strings.HasPrefix(csv, "x,y\n") {
		t.Errorf("header row wrong: %s", csv)
	}
}

func TestChartRender(t *testing.T) {
	ch := &Chart{
		Title:   "latency",
		XLabels: []string{"10K", "50K", "100K"},
		XLabel:  "QPS",
		YLabel:  "µs",
		Series: []Series{
			{Name: "LP", Points: []float64{50, 60, 90}},
			{Name: "HP", Points: []float64{25, 26, 30}},
		},
	}
	out := ch.Render()
	if !strings.Contains(out, "*") || !strings.Contains(out, "o") {
		t.Errorf("chart missing series marks:\n%s", out)
	}
	if !strings.Contains(out, "LP") || !strings.Contains(out, "HP") {
		t.Error("chart missing legend")
	}
	if !strings.Contains(out, "10K") {
		t.Error("chart missing x labels")
	}
}

func TestChartEmpty(t *testing.T) {
	ch := &Chart{Title: "empty"}
	if out := ch.Render(); !strings.Contains(out, "no data") {
		t.Errorf("empty chart rendered: %s", out)
	}
}

func TestFormatRate(t *testing.T) {
	if FormatRate(10000) != "10K" {
		t.Errorf("FormatRate(10000) = %s", FormatRate(10000))
	}
	if FormatRate(500) != "500" {
		t.Errorf("FormatRate(500) = %s", FormatRate(500))
	}
	if FormatRate(2500) != "2.5K" {
		t.Errorf("FormatRate(2500) = %s", FormatRate(2500))
	}
}

func TestStaticTables(t *testing.T) {
	t1 := TableI().Render()
	for _, want := range []string{"Client only", "0", "Server only", "8", "Total", "20"} {
		if !strings.Contains(t1, want) {
			t.Errorf("Table I missing %q", want)
		}
	}
	t2 := TableII().Render()
	for _, want := range []string{"intel_pstate", "acpi-cpufreq", "powersave", "performance", "idle=poll", "dynamic", "fixed"} {
		if !strings.Contains(t2, want) {
			t.Errorf("Table II missing %q", want)
		}
	}
	t3 := TableIII().Render()
	if !strings.Contains(t3, "wrong-conclusions") {
		t.Error("Table III missing the risk flag")
	}
	if strings.Count(t3, "low") < 3 {
		t.Error("Table III should have three low-risk rows")
	}
}

// tinyOpts runs minimal sweeps so figure rendering is exercised end-to-end.
func tinyOpts() SweepOptions {
	return SweepOptions{Runs: 2, Seed: 11, TargetSamples: 400}
}

func tinySweep(t *testing.T) *Sweep {
	t.Helper()
	sw, err := RunServiceSweep(experiment.ServiceMemcached,
		[]experiment.ServerVariant{
			experiment.SMTVariants()[0],
			experiment.SMTVariants()[1],
			experiment.C1EVariants()[1],
		},
		[]float64{50_000, 200_000}, tinyOpts())
	if err != nil {
		t.Fatal(err)
	}
	return sw
}

func TestFig2And3Render(t *testing.T) {
	sw := tinySweep(t)
	f2 := Fig2(sw)
	for _, want := range []string{"Figure 2", "LP-SMToff", "HP-SMTon", "(a)", "(b)", "(c)", "(d)", "CI overlap"} {
		if !strings.Contains(f2, want) {
			t.Errorf("Fig2 missing %q", want)
		}
	}
	f3 := Fig3(sw)
	for _, want := range []string{"Figure 3", "C1E_ON / C1E_OFF"} {
		if !strings.Contains(f3, want) {
			t.Errorf("Fig3 missing %q", want)
		}
	}
}

func TestFig8Fig9TableIVRender(t *testing.T) {
	// Needs ≥3 runs for Shapiro–Wilk and ≥10 for CONFIRM floor behaviour;
	// use 12 runs on a tiny sample size.
	sw, err := RunServiceSweep(experiment.ServiceMemcached,
		[]experiment.ServerVariant{
			experiment.SMTVariants()[0],
			experiment.SMTVariants()[1],
			experiment.C1EVariants()[1],
		},
		[]float64{100_000}, SweepOptions{Runs: 12, Seed: 12, TargetSamples: 300})
	if err != nil {
		t.Fatal(err)
	}
	f8 := Fig8(sw)
	if !strings.Contains(f8, "LP-C1Eon") || !strings.Contains(f8, "consistent with normality") {
		t.Errorf("Fig8 incomplete:\n%s", f8)
	}
	f9, err := Fig9(sw, "HP", "SMToff", 0)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(f9, "median") {
		t.Errorf("Fig9 missing median marker:\n%s", f9)
	}
	t4 := TableIV(sw, 12).Render()
	for _, want := range []string{"Parametric", "CONFIRM", "Shapiro–Wilk", "HP-SMTon"} {
		if !strings.Contains(t4, want) {
			t.Errorf("Table IV missing %q", want)
		}
	}
}

func TestSweepProgressCallback(t *testing.T) {
	var lines []string
	opts := tinyOpts()
	opts.Progress = func(l string) { lines = append(lines, l) }
	_, err := RunServiceSweep(experiment.ServiceMemcached,
		experiment.SMTVariants()[:1], []float64{50_000}, opts)
	if err != nil {
		t.Fatal(err)
	}
	if len(lines) != 2 { // LP + HP
		t.Errorf("progress lines = %d, want 2", len(lines))
	}
}

func TestSyntheticSweepAndFig7(t *testing.T) {
	// Shrink the grid via options; full grid is exercised by cmd/repro.
	sw := &SyntheticSweep{}
	var err error
	sw, err = RunSyntheticStudy(SweepOptions{Runs: 2, Seed: 13, TargetSamples: 200})
	if err != nil {
		t.Fatal(err)
	}
	out := Fig7(sw)
	for _, want := range []string{"Figure 7", "(a)", "(f)", "LP / HP"} {
		if !strings.Contains(out, want) {
			t.Errorf("Fig7 missing %q", want)
		}
	}
}
