package figures

import (
	"fmt"
	"strings"

	"repro/internal/experiment"
	"repro/internal/rng"
	"repro/internal/stats"
)

// featureFigure renders the Fig. 2 / Fig. 3 layout: absolute avg and p99
// medians per client × variant, plus the per-client slowdown ratios.
func featureFigure(title string, sw *Sweep, offVariant, onVariant, ratioName string, invertRatio bool) string {
	var sb strings.Builder
	fmt.Fprintf(&sb, "%s\n%s\n\n", title, strings.Repeat("=", len(title)))

	rateLabels := make([]string, len(sw.Rates))
	for i, r := range sw.Rates {
		rateLabels[i] = FormatRate(r)
	}

	mkPanel := func(panel, metric string, value func(experiment.Result) float64) {
		tb := &Table{
			Title:   fmt.Sprintf("(%s) %s (median over runs, µs)", panel, metric),
			Headers: append([]string{"Config \\ QPS"}, rateLabels...),
		}
		ch := &Chart{Title: "", XLabel: "Request Rate (QPS)", YLabel: metric + " (µs)", XLabels: rateLabels}
		for _, cl := range sw.Clients {
			for _, v := range []string{offVariant, onVariant} {
				row := []string{cl + "-" + v}
				pts := make([]float64, len(sw.Rates))
				for i := range sw.Rates {
					val := value(sw.Get(cl, v, i))
					row = append(row, fmt.Sprintf("%.1f", val))
					pts[i] = val
				}
				tb.AddRow(row...)
				ch.Series = append(ch.Series, Series{Name: cl + "-" + v, Points: pts})
			}
		}
		sb.WriteString(tb.Render())
		sb.WriteByte('\n')
		sb.WriteString(ch.Render())
		sb.WriteByte('\n')
	}

	mkPanel("a", "Average Response Time", func(r experiment.Result) float64 { return r.MedianAvgUs() })
	mkPanel("b", "99th Percentile Latency", func(r experiment.Result) float64 { return r.MedianP99Us() })

	mkRatio := func(panel, metric string, value func(experiment.Result) float64) {
		tb := &Table{
			Title:   fmt.Sprintf("(%s) %s (%s)", panel, ratioName, metric),
			Headers: append([]string{"Client \\ QPS"}, rateLabels...),
		}
		for _, cl := range sw.Clients {
			row := []string{cl}
			for i := range sw.Rates {
				off := value(sw.Get(cl, offVariant, i))
				on := value(sw.Get(cl, onVariant, i))
				ratio := off / on
				if invertRatio {
					ratio = on / off
				}
				row = append(row, fmt.Sprintf("%.3f", ratio))
			}
			tb.AddRow(row...)
		}
		sb.WriteString(tb.Render())
		sb.WriteByte('\n')
	}
	mkRatio("c", "avg", func(r experiment.Result) float64 { return stats.Mean(r.PerRunAvgUs) })
	mkRatio("d", "99th", func(r experiment.Result) float64 { return stats.Mean(r.PerRunP99Us) })

	// CI-overlap verdicts at each rate — the basis of the paper's
	// conclusion-flip discussion.
	tb := &Table{
		Title:   "CI overlap (avg): does " + onVariant + " differ significantly from " + offVariant + "?",
		Headers: append([]string{"Client \\ QPS"}, rateLabels...),
	}
	for _, cl := range sw.Clients {
		row := []string{cl}
		for i := range sw.Rates {
			off := sw.Get(cl, offVariant, i).AvgCI
			on := sw.Get(cl, onVariant, i).AvgCI
			if off.Overlaps(on) {
				row = append(row, "same")
			} else if on.Point > off.Point {
				row = append(row, "worse")
			} else {
				row = append(row, "better")
			}
		}
		tb.AddRow(row...)
	}
	sb.WriteString(tb.Render())
	return sb.String()
}

// Fig2 renders the SMT study on Memcached.
func Fig2(sw *Sweep) string {
	return featureFigure(
		"Figure 2: SMT impact on Memcached service latency with LP and HP clients",
		sw, "SMToff", "SMTon", "Slowdown of disabling SMT (SMT_OFF / SMT_ON)", false)
}

// Fig3 renders the C1E study on Memcached. The SMToff baseline is the
// C1E-disabled configuration.
func Fig3(sw *Sweep) string {
	return featureFigure(
		"Figure 3: C1E impact on Memcached service latency with LP and HP clients",
		sw, "SMToff", "C1Eon", "Slowdown of enabling C1E (C1E_ON / C1E_OFF)", true)
}

// Fig4 renders the HDSearch study: absolute latencies under SMT and C1E
// variants for both clients (the paper's four panels).
func Fig4(sw *Sweep) string {
	var sb strings.Builder
	title := "Figure 4: SMT and C1E impact on HDSearch service latency with LP and HP clients"
	fmt.Fprintf(&sb, "%s\n%s\n\n", title, strings.Repeat("=", len(title)))
	rateLabels := make([]string, len(sw.Rates))
	for i, r := range sw.Rates {
		rateLabels[i] = FormatRate(r)
	}
	panel := func(p, metric, offV, onV string, value func(experiment.Result) float64) {
		tb := &Table{
			Title:   fmt.Sprintf("(%s) %s (median over runs, ms)", p, metric),
			Headers: append([]string{"Config \\ QPS"}, rateLabels...),
		}
		for _, cl := range sw.Clients {
			for _, v := range []string{offV, onV} {
				row := []string{cl + "-" + v}
				for i := range sw.Rates {
					row = append(row, fmt.Sprintf("%.3f", value(sw.Get(cl, v, i))/1000))
				}
				tb.AddRow(row...)
			}
		}
		sb.WriteString(tb.Render())
		sb.WriteByte('\n')
	}
	panel("a", "Average Response Time — SMT", "SMToff", "SMTon", func(r experiment.Result) float64 { return r.MedianAvgUs() })
	panel("b", "99th Percentile Latency — SMT", "SMToff", "SMTon", func(r experiment.Result) float64 { return r.MedianP99Us() })
	panel("c", "Average Response Time — C1E", "SMToff", "C1Eon", func(r experiment.Result) float64 { return r.MedianAvgUs() })
	panel("d", "99th Percentile Latency — C1E", "SMToff", "C1Eon", func(r experiment.Result) float64 { return r.MedianP99Us() })
	return sb.String()
}

// Fig5 renders the run-to-run standard deviation of the average response
// time for Memcached and HDSearch under the SMT variants.
func Fig5(memcached, hdsearch *Sweep) string {
	var sb strings.Builder
	title := "Figure 5: Standard deviation of the average response time across runs"
	fmt.Fprintf(&sb, "%s\n%s\n\n", title, strings.Repeat("=", len(title)))
	panel := func(p string, sw *Sweep) {
		rateLabels := make([]string, len(sw.Rates))
		for i, r := range sw.Rates {
			rateLabels[i] = FormatRate(r)
		}
		tb := &Table{
			Title:   fmt.Sprintf("(%s) %s stddev of avg response time (µs)", p, sw.Service),
			Headers: append([]string{"Config \\ QPS"}, rateLabels...),
		}
		ch := &Chart{XLabel: "Request Rate (QPS)", YLabel: "stddev (µs)", XLabels: rateLabels}
		for _, cl := range sw.Clients {
			for _, v := range []string{"SMToff", "SMTon"} {
				row := []string{cl + "-" + v}
				pts := make([]float64, len(sw.Rates))
				for i := range sw.Rates {
					sd := sw.Get(cl, v, i).StdDevAvgUs
					row = append(row, fmt.Sprintf("%.2f", sd))
					pts[i] = sd
				}
				tb.AddRow(row...)
				ch.Series = append(ch.Series, Series{Name: cl + "-" + v, Points: pts})
			}
		}
		sb.WriteString(tb.Render())
		sb.WriteByte('\n')
		sb.WriteString(ch.Render())
		sb.WriteByte('\n')
	}
	panel("a", memcached)
	panel("b", hdsearch)
	return sb.String()
}

// Fig6 renders the Social Network study: LP/HP ratios and absolute
// latencies.
func Fig6(sw *Sweep) string {
	var sb strings.Builder
	title := "Figure 6: Performance evaluation of HP and LP clients for Social Network"
	fmt.Fprintf(&sb, "%s\n%s\n\n", title, strings.Repeat("=", len(title)))
	rateLabels := make([]string, len(sw.Rates))
	for i, r := range sw.Rates {
		rateLabels[i] = FormatRate(r)
	}
	baseline := sw.Variants[0]

	tb := &Table{
		Title:   "(a) LP / HP ratio",
		Headers: append([]string{"Metric \\ QPS"}, rateLabels...),
	}
	for _, metric := range []string{"avg", "99th"} {
		row := []string{"LP/HP (" + metric + ")"}
		for i := range sw.Rates {
			lp := sw.Get("LP", baseline, i)
			hp := sw.Get("HP", baseline, i)
			var ratio float64
			if metric == "avg" {
				ratio = stats.Mean(lp.PerRunAvgUs) / stats.Mean(hp.PerRunAvgUs)
			} else {
				ratio = stats.Mean(lp.PerRunP99Us) / stats.Mean(hp.PerRunP99Us)
			}
			row = append(row, fmt.Sprintf("%.3f", ratio))
		}
		tb.AddRow(row...)
	}
	sb.WriteString(tb.Render())
	sb.WriteByte('\n')

	abs := func(p, metric string, value func(experiment.Result) float64) {
		tb := &Table{
			Title:   fmt.Sprintf("(%s) %s (median over runs, ms)", p, metric),
			Headers: append([]string{"Client \\ QPS"}, rateLabels...),
		}
		for _, cl := range sw.Clients {
			row := []string{cl}
			for i := range sw.Rates {
				row = append(row, fmt.Sprintf("%.3f", value(sw.Get(cl, baseline, i))/1000))
			}
			tb.AddRow(row...)
		}
		sb.WriteString(tb.Render())
		sb.WriteByte('\n')
	}
	abs("b", "Average Response Time", func(r experiment.Result) float64 { return r.MedianAvgUs() })
	abs("c", "99th Percentile Latency", func(r experiment.Result) float64 { return r.MedianP99Us() })
	return sb.String()
}

// Fig7 renders the synthetic sensitivity study: the LP/HP gap versus added
// service delay (panels a–b) and absolute latencies at the lowest and
// highest rates (panels c–f).
func Fig7(sw *SyntheticSweep) string {
	var sb strings.Builder
	title := "Figure 7: HP and LP clients across service processing times (synthetic workload)"
	fmt.Fprintf(&sb, "%s\n%s\n\n", title, strings.Repeat("=", len(title)))
	delayLabels := make([]string, len(sw.Delays))
	for i, d := range sw.Delays {
		delayLabels[i] = fmt.Sprintf("%d", d.Microseconds())
	}

	ratio := func(p, metric string, value func(experiment.Result) float64) {
		tb := &Table{
			Title:   fmt.Sprintf("(%s) LP / HP (%s) vs added delay (µs)", p, metric),
			Headers: append([]string{"QPS \\ Delay"}, delayLabels...),
		}
		for ri, rate := range sw.Rates {
			row := []string{FormatRate(rate)}
			for di := range sw.Delays {
				lp := value(sw.Results["LP"][di][ri])
				hp := value(sw.Results["HP"][di][ri])
				row = append(row, fmt.Sprintf("%.2f", lp/hp))
			}
			tb.AddRow(row...)
		}
		sb.WriteString(tb.Render())
		sb.WriteByte('\n')
	}
	ratio("a", "avg", func(r experiment.Result) float64 { return stats.Mean(r.PerRunAvgUs) })
	ratio("b", "99th", func(r experiment.Result) float64 { return stats.Mean(r.PerRunP99Us) })

	abs := func(p string, rateIdx int, metric string, value func(experiment.Result) float64) {
		tb := &Table{
			Title:   fmt.Sprintf("(%s) %s at %s QPS (µs)", p, metric, FormatRate(sw.Rates[rateIdx])),
			Headers: append([]string{"Client \\ Delay"}, delayLabels...),
		}
		for _, cl := range []string{"HP", "LP"} {
			row := []string{cl}
			for di := range sw.Delays {
				row = append(row, fmt.Sprintf("%.1f", value(sw.Results[cl][di][rateIdx])))
			}
			tb.AddRow(row...)
		}
		sb.WriteString(tb.Render())
		sb.WriteByte('\n')
	}
	lastRate := len(sw.Rates) - 1
	abs("c", 0, "Average Response Time (median)", func(r experiment.Result) float64 { return r.MedianAvgUs() })
	abs("d", 0, "99th Percentile Latency (median)", func(r experiment.Result) float64 { return r.MedianP99Us() })
	abs("e", lastRate, "Average Response Time (median)", func(r experiment.Result) float64 { return r.MedianAvgUs() })
	abs("f", lastRate, "99th Percentile Latency (median)", func(r experiment.Result) float64 { return r.MedianP99Us() })
	return sb.String()
}

// fig8Configs lists the six scenarios of Figure 8 / Table IV in the
// paper's order.
var fig8Configs = []struct{ client, variant string }{
	{"LP", "SMToff"},
	{"LP", "SMTon"},
	{"HP", "SMToff"},
	{"HP", "SMTon"},
	{"LP", "C1Eon"},
	{"HP", "C1Eon"},
}

// Fig8 renders the Shapiro–Wilk p-values for the 42 Memcached
// configurations (6 scenarios × 7 rates).
func Fig8(sw *Sweep) string {
	var sb strings.Builder
	title := "Figure 8: Shapiro–Wilk p-value per configuration (42 configurations)"
	fmt.Fprintf(&sb, "%s\n%s\n\n", title, strings.Repeat("=", len(title)))
	rateLabels := make([]string, len(sw.Rates))
	for i, r := range sw.Rates {
		rateLabels[i] = FormatRate(r)
	}
	tb := &Table{
		Headers: append([]string{"Config \\ QPS"}, rateLabels...),
		Notes:   []string{"values < 0.05 (threshold) reject normality; computed over per-run average response times"},
	}
	normal, total := 0, 0
	for _, cfg := range fig8Configs {
		row := []string{cfg.client + "-" + cfg.variant}
		for i := range sw.Rates {
			res := sw.Get(cfg.client, cfg.variant, i)
			swr, err := stats.ShapiroWilk(res.PerRunAvgUs)
			if err != nil {
				row = append(row, "n/a")
				continue
			}
			total++
			mark := ""
			if swr.PValue < 0.05 {
				mark = "*"
			} else {
				normal++
			}
			row = append(row, fmt.Sprintf("%.2g%s", swr.PValue, mark))
		}
		tb.AddRow(row...)
	}
	sb.WriteString(tb.Render())
	fmt.Fprintf(&sb, "\n%d of %d configurations consistent with normality (paper: ≈50%%); * = rejected at 5%%\n",
		normal, total)
	return sb.String()
}

// Fig9 renders the frequency chart of per-run average response times for
// one configuration (the paper uses HP-SMToff at 400K).
func Fig9(sw *Sweep, client, variant string, rateIdx int) (string, error) {
	res := sw.Get(client, variant, rateIdx)
	h, err := stats.NewHistogram(res.PerRunAvgUs, 16, 0)
	if err != nil {
		return "", err
	}
	title := fmt.Sprintf("Figure 9: Frequency chart for %s-%s %s configuration (per-run average response time, µs)",
		client, variant, FormatRate(sw.Rates[rateIdx]))
	return title + "\n" + strings.Repeat("=", len(title)) + "\n\n" + h.Render("Average Response Time (µs)", 40), nil
}

// TableIV renders the repetition-count analysis: parametric (Jain Eq. 3)
// and CONFIRM iteration estimates plus the Shapiro–Wilk verdict for every
// configuration.
func TableIV(sw *Sweep, seed uint64) *Table {
	tb := &Table{
		Title:   "Table IV: Iterations to reach a 95% CI with ≤1% error, and Shapiro–Wilk result",
		Headers: []string{"Configuration", "QPS", "Parametric", "CONFIRM", "Shapiro–Wilk"},
		Notes: []string{
			fmt.Sprintf("CONFIRM reports \">%d\" when no subset of the collected runs meets the error target", maxRuns(sw)),
			"parametric = Jain Eq. 3 on the per-run averages; CONFIRM = non-parametric subset resampling",
		},
	}
	stream := rng.NewLabeled(seed, "tableIV-confirm")
	for _, cfg := range fig8Configs {
		for i, rate := range sw.Rates {
			res := sw.Get(cfg.client, cfg.variant, i)
			param := "n/a"
			if n, err := stats.JainIterations(res.PerRunAvgUs, 0.95, 1); err == nil {
				param = fmt.Sprintf("%d", n)
			}
			conf := "n/a"
			if cr, err := stats.Confirm(res.PerRunAvgUs, stats.DefaultConfirmConfig(), stream); err == nil {
				if cr.Converged {
					conf = fmt.Sprintf("%d", cr.Iterations)
				} else {
					conf = fmt.Sprintf(">%d", len(res.PerRunAvgUs))
				}
			}
			swv := "n/a"
			if swr, err := stats.ShapiroWilk(res.PerRunAvgUs); err == nil {
				if swr.Normal(0.05) {
					swv = "pass"
				} else {
					swv = "fail"
				}
			}
			tb.AddRow(cfg.client+"-"+cfg.variant, FormatRate(rate), param, conf, swv)
		}
	}
	return tb
}

func maxRuns(sw *Sweep) int {
	n := 0
	for _, byVariant := range sw.Results {
		for _, results := range byVariant {
			for _, r := range results {
				if len(r.Runs) > n {
					n = len(r.Runs)
				}
			}
		}
	}
	return n
}
