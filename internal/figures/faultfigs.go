package figures

import (
	"fmt"
	"strings"
	"time"

	"repro/internal/experiment"
)

// Fault figures: the renderings the faulty-cluster preset feeds. The
// AvailabilityTable is the tail-latency-under-faults figure — what the
// client's resilience stack delivered while replicas were dark — and
// the FaultTimelineTable is the server-side accounting of where the
// injected fault time actually went (crash windows, straggler windows,
// background hiccups), per replica.

// Faulty reports whether any run of the preset carries resilience
// metrics — the gate CLIs use to decide whether the fault tables have
// anything to show.
func (pr *PresetResult) Faulty() bool {
	for _, res := range pr.Results {
		if len(resilienceMetrics(res)) > 0 {
			return true
		}
	}
	return false
}

// resilienceMetrics collects one result's per-run resilience blocks,
// skipping runs without them (fault-free scenarios leave them nil).
func resilienceMetrics(res experiment.Result) []*experiment.ResilienceMetrics {
	var ms []*experiment.ResilienceMetrics
	for _, rm := range res.Runs {
		if rm.Resilience != nil {
			ms = append(ms, rm.Resilience)
		}
	}
	return ms
}

// AvailabilityTable renders availability and tail latency under faults:
// one row per offered rate with the mean availability across runs, the
// summed fault-handling counters, the retry amplification the
// resilience stack put on the fleet, and the latency the surviving
// capacity delivered. Results without resilience metrics render a
// placeholder row, so the table is safe on any preset.
func (pr *PresetResult) AvailabilityTable() string {
	var b strings.Builder
	p := pr.Preset
	fmt.Fprintf(&b, "%s: availability and tail latency under faults\n", p.Name)
	fmt.Fprintf(&b, "%-12s %8s %8s %8s %8s %8s %8s %6s %12s\n",
		"rate", "avail", "timeout", "retry", "failed", "exhaust", "late", "amp", "p99(µs)")
	for i, rate := range p.Rates {
		res := pr.Results[i]
		ms := resilienceMetrics(res)
		if len(ms) == 0 {
			fmt.Fprintf(&b, "%-12s %8s %8s %8s %8s %8s %8s %6s %12s\n",
				FormatRate(rate), "-", "-", "-", "-", "-", "-", "-", "(no resilience stats)")
			continue
		}
		var avail, amp float64
		var timeouts, retries, failed, exhausted, late int
		for _, m := range ms {
			avail += m.Availability
			amp += m.RetryAmplification
			timeouts += m.Stats.Timeouts
			retries += m.Stats.Retries
			failed += m.Stats.Failed
			exhausted += m.Stats.Exhausted
			late += m.Stats.LateDrops
		}
		n := float64(len(ms))
		fmt.Fprintf(&b, "%-12s %7.3f%% %8d %8d %8d %8d %8d %6.3f %12.2f\n",
			FormatRate(rate), avail/n*100, timeouts, retries, failed, exhausted, late,
			amp/n, res.MedianP99Us())
	}
	return strings.TrimRight(b.String(), "\n")
}

// FaultTimelineTable renders the server-side fault timeline: one row
// per replica and rate with the crash windows the schedule dealt it,
// its total downtime, the in-flight requests the crashes failed, its
// straggler-degraded time, and the background hiccup interference —
// all summed over the rate's runs, so the injected fault budget is
// visible end to end.
func (pr *PresetResult) FaultTimelineTable() string {
	var b strings.Builder
	p := pr.Preset
	fmt.Fprintf(&b, "%s: per-replica fault timeline (summed over runs)\n", p.Name)
	fmt.Fprintf(&b, "%-12s %8s %8s %12s %10s %12s %8s %12s\n",
		"rate", "replica", "crashes", "downtime", "failed", "straggle", "hiccups", "hiccup time")
	for i, rate := range p.Rates {
		sts := clusterStats(pr.Results[i])
		if len(sts) == 0 {
			fmt.Fprintf(&b, "%-12s %8s %8s %12s %10s %12s %8s %12s\n",
				FormatRate(rate), "-", "-", "-", "-", "-", "-", "(no cluster stats)")
			continue
		}
		capacity := 0
		for _, st := range sts {
			if len(st.Replicas) > capacity {
				capacity = len(st.Replicas)
			}
		}
		for rep := 0; rep < capacity; rep++ {
			var crashes int
			var down, straggle, hiccupTime time.Duration
			var failed, hiccups uint64
			for _, st := range sts {
				if rep >= len(st.Replicas) {
					continue
				}
				r := st.Replicas[rep]
				crashes += r.CrashWindows
				down += r.DownTime
				failed += r.CrashFailed
				straggle += r.StragglerTime
				hiccups += r.HiccupCount
				hiccupTime += r.HiccupTime
			}
			fmt.Fprintf(&b, "%-12s %8d %8d %12s %10d %12s %8d %12s\n",
				FormatRate(rate), rep, crashes, down, failed, straggle, hiccups, hiccupTime)
		}
	}
	return strings.TrimRight(b.String(), "\n")
}
