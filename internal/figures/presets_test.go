package figures

import (
	"strings"
	"testing"

	"repro/internal/metrics"
)

func TestPresetByName(t *testing.T) {
	for _, want := range []string{"million-qps", "hour-long"} {
		p, ok := PresetByName(want)
		if !ok || p.Name != want {
			t.Errorf("PresetByName(%q) = %+v, %v", want, p, ok)
		}
		if len(p.Rates) == 0 || p.Runs < 1 || p.TargetSamples < 1 {
			t.Errorf("preset %s under-specified: %+v", want, p)
		}
	}
	if _, ok := PresetByName("terabit-qps"); ok {
		t.Error("unknown preset resolved")
	}
	if u := PresetUsage(); !strings.Contains(u, "million-qps") || !strings.Contains(u, "hour-long") {
		t.Errorf("usage text incomplete:\n%s", u)
	}
}

// TestRunPresetSmoke runs both presets at smoke scale — the shape CI
// exercises per commit — and pins determinism: the same options render
// byte-identical reports on repeat runs (and, by the shared fan-out
// machinery, for any worker count).
func TestRunPresetSmoke(t *testing.T) {
	for _, name := range []string{"million-qps", "hour-long"} {
		p, ok := PresetByName(name)
		if !ok {
			t.Fatalf("preset %s missing", name)
		}
		render := func(workers int) string {
			pr, err := RunPreset(p, SweepOptions{Runs: 1, Seed: 3, TargetSamples: 500, Workers: workers})
			if err != nil {
				t.Fatalf("preset %s: %v", name, err)
			}
			return pr.Render()
		}
		seq := render(1)
		if !strings.Contains(seq, name) {
			t.Errorf("preset %s render missing header:\n%s", name, seq)
		}
		for _, rate := range p.Rates {
			if !strings.Contains(seq, FormatRate(rate)) {
				t.Errorf("preset %s render missing rate %s:\n%s", name, FormatRate(rate), seq)
			}
		}
		if par := render(4); par != seq {
			t.Errorf("preset %s output differs between 1 and 4 workers:\n--- seq\n%s\n--- par\n%s", name, seq, par)
		}
	}
}

// TestPresetFullSizeSelectsStreaming pins that the full-size sample
// targets put every preset in the streaming regime: the whole point of
// the presets is scale that exact retention cannot afford.
func TestPresetFullSizeSelectsStreaming(t *testing.T) {
	for _, p := range Presets() {
		sc := presetScenario(p, p.Rates[0], SweepOptions{})
		if got := sc.EffectiveSampleMode(); got != metrics.SampleStreaming {
			t.Errorf("preset %s full-size sample mode = %v, want streaming", p.Name, got)
		}
	}
}
