package figures

import (
	"strings"
	"testing"

	"repro/internal/experiment"
)

// TestPresetProgressLineZeroRuns is the regression test for the progress
// callback's unguarded Runs[0] index: a zero-run result must format, not
// panic, exactly as Render already guarantees.
func TestPresetProgressLineZeroRuns(t *testing.T) {
	p, ok := PresetByName("cluster")
	if !ok {
		t.Fatal("cluster preset missing")
	}
	line := presetProgressLine(p, p.Rates[0], experiment.Result{})
	if !strings.Contains(line, "0 runs × 0 samples") {
		t.Errorf("zero-run progress line = %q", line)
	}
}

// TestClusterPresetSmoke runs the replicated-fleet preset at smoke scale
// (the CI shape), checks both cluster renderings, and pins determinism
// across worker counts like the other presets.
func TestClusterPresetSmoke(t *testing.T) {
	p, ok := PresetByName("cluster")
	if !ok {
		t.Fatal("cluster preset missing")
	}
	run := func(workers int) *PresetResult {
		pr, err := RunPreset(p, SweepOptions{Runs: 1, Seed: 3, TargetSamples: 400, Workers: workers})
		if err != nil {
			t.Fatal(err)
		}
		return pr
	}
	pr := run(1)
	for i, res := range pr.Results {
		if len(clusterStats(res)) != len(res.Runs) {
			t.Fatalf("rate %d: %d of %d runs carry cluster stats", i, len(clusterStats(res)), len(res.Runs))
		}
	}

	lb := pr.LoadBalanceTable()
	if !strings.Contains(lb, "consistent-hash") || !strings.Contains(lb, "r3=") {
		t.Errorf("load-balance table incomplete:\n%s", lb)
	}
	so := pr.ScaleOutTable()
	if !strings.Contains(so, "4/4") {
		t.Errorf("scale-out table missing replica column:\n%s", so)
	}
	for _, rate := range p.Rates {
		for name, table := range map[string]string{"balance": lb, "scale-out": so} {
			if !strings.Contains(table, FormatRate(rate)) {
				t.Errorf("%s table missing rate %s:\n%s", name, FormatRate(rate), table)
			}
		}
	}

	par := run(4)
	if lb != par.LoadBalanceTable() || so != par.ScaleOutTable() {
		t.Error("cluster preset tables differ between 1 and 4 workers")
	}
}

// TestClusterTablesWithoutStats pins the renderers' placeholder path: a
// single-backend preset result renders both tables without panicking.
func TestClusterTablesWithoutStats(t *testing.T) {
	p, _ := PresetByName("million-qps")
	pr := &PresetResult{Preset: p, Results: make([]experiment.Result, len(p.Rates))}
	if lb := pr.LoadBalanceTable(); !strings.Contains(lb, "(no cluster stats)") {
		t.Errorf("placeholder missing:\n%s", lb)
	}
	if so := pr.ScaleOutTable(); !strings.Contains(so, "-") || !strings.Contains(so, "none router") {
		t.Errorf("scale-out placeholder missing:\n%s", so)
	}
}
