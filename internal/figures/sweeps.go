package figures

import (
	"context"
	"fmt"
	"time"

	"repro/internal/envpool"
	"repro/internal/experiment"
	"repro/internal/hw"
	"repro/internal/metrics"
	"repro/internal/sched"
)

// SweepOptions size a figure regeneration.
type SweepOptions struct {
	// Runs per configuration point (paper: 50; the synthetic study: 20).
	Runs int
	// Seed derives all randomness.
	Seed uint64
	// TargetSamples overrides the per-run sample count (0 = default).
	TargetSamples int
	// Progress, when non-nil, receives one line per finished scenario.
	// Lines arrive in grid order regardless of the worker count.
	Progress func(line string)
	// Workers is the sweep's global worker budget, with the same value
	// semantics as experiment.Scenario.Workers: 0 or 1 means one worker,
	// negative selects runtime.GOMAXPROCS(0). The budget is shared
	// between the sweep's two fan-out levels — grid cells and the
	// repetitions inside each cell — so total live workers never exceed
	// it. Every cell derives its randomness from its own labeled
	// streams, so the sweep — results and progress output — is
	// byte-identical for any worker count.
	Workers int
	// Budget, when non-nil, supplies the worker budget instead of a
	// fresh one Workers wide — share one across sweeps (as cmd/repro
	// does) or inspect its high-water mark in tests. With Workers == 0
	// the sweep inherits the supplied budget's width, mirroring
	// experiment.Scenario.Workers under a budget.
	Budget *sched.Budget
	// Backends, when non-nil, supplies the backend pool cells lease
	// prebuilt backends from instead of a fresh per-sweep pool. Sharing
	// one across sweeps reuses backends whenever server configurations
	// recur.
	Backends *envpool.Pool
	// SampleMode selects every cell's per-run measurement reduction
	// (experiment.Scenario.SampleMode): exact, streaming, or — the
	// default — automatic selection by per-run sample count.
	SampleMode metrics.Mode
	// Replicas and Router override the preset/sweep cluster shape
	// (experiment.Scenario semantics): every cell runs its backend as a
	// replica set behind the named policy. Zero values keep each
	// preset's own shape — the single-backend path for the paper sweeps.
	Replicas int
	Router   string
	// Shards overrides the preset/sweep engine partitioning
	// (experiment.Scenario.Shards): every cell's runs execute across
	// this many conservatively-synchronized engines, byte-identical to
	// the single-engine path. Zero keeps each preset's own shape.
	Shards int
	// Timeout, Retries and Hedge override the preset's client-side
	// resilience knobs (loadgen.ResilienceConfig semantics): a positive
	// Timeout enables resilience and sets the per-request deadline, a
	// positive Retries bounds re-sends, a positive Hedge issues a hedged
	// clone after that delay. Zero values keep each preset's own
	// resilience shape, like Replicas and Shards.
	Timeout time.Duration
	Retries int
	Hedge   time.Duration
}

// envContext assembles the sweep's environment — its worker budget and
// backend pool, defaulted when the options don't share existing ones —
// and returns the cell-level pool width: a supplied budget sets the
// width when Workers is unset, mirroring experiment.RunContext.
func (o SweepOptions) envContext() (context.Context, int) {
	budget := o.Budget
	if budget == nil {
		budget = sched.NewBudget(sched.Resolve(o.Workers))
	}
	workers := sched.Resolve(o.Workers)
	if o.Workers == 0 && o.Budget != nil {
		workers = budget.Capacity()
	}
	backends := o.Backends
	if backends == nil {
		backends = envpool.New()
	}
	return envpool.WithPool(sched.WithBudget(context.Background(), budget), backends), workers
}

func (o SweepOptions) runs(def int) int {
	if o.Runs > 0 {
		return o.Runs
	}
	return def
}

func (o SweepOptions) progress(format string, args ...any) {
	if o.Progress != nil {
		o.Progress(fmt.Sprintf(format, args...))
	}
}

// Sweep holds results for clients × variants × rates of one service.
type Sweep struct {
	Service  experiment.Service
	Clients  []string
	Variants []string
	Rates    []float64
	// Results[client][variant][i] corresponds to Rates[i].
	Results map[string]map[string][]experiment.Result
}

// Get returns one configuration point's result.
func (s *Sweep) Get(client, variant string, rateIdx int) experiment.Result {
	return s.Results[client][variant][rateIdx]
}

// clientList returns LP and HP in stable order.
func clientList() []struct {
	Name string
	Cfg  hw.Config
} {
	return []struct {
		Name string
		Cfg  hw.Config
	}{
		{"LP", hw.LPConfig()},
		{"HP", hw.HPConfig()},
	}
}

// sweepCell is one (client, variant, rate) grid point of a service sweep.
type sweepCell struct {
	client  string
	cfg     hw.Config
	variant experiment.ServerVariant
	rateIdx int
	rate    float64
}

// RunServiceSweep runs a client × server-variant × rate sweep for one
// service. Cells are dispatched through the sched worker pool under a
// global worker budget (SweepOptions.Workers wide) shared with the
// repetitions inside each cell, and cells lease prebuilt backends from
// the sweep's envpool instead of rebuilding per cell; because every
// cell's scenario derives its randomness from its own labeled streams,
// the parallel sweep is byte-identical to the sequential one.
func RunServiceSweep(service experiment.Service, variants []experiment.ServerVariant, rates []float64, opts SweepOptions) (*Sweep, error) {
	sw := &Sweep{
		Service: service,
		Rates:   rates,
		Results: make(map[string]map[string][]experiment.Result),
	}
	for _, v := range variants {
		sw.Variants = append(sw.Variants, v.Name)
	}
	var cells []sweepCell
	for _, cl := range clientList() {
		sw.Clients = append(sw.Clients, cl.Name)
		sw.Results[cl.Name] = make(map[string][]experiment.Result, len(variants))
		for _, v := range variants {
			sw.Results[cl.Name][v.Name] = make([]experiment.Result, len(rates))
			for ri, rate := range rates {
				cells = append(cells, sweepCell{client: cl.Name, cfg: cl.Cfg, variant: v, rateIdx: ri, rate: rate})
			}
		}
	}

	envCtx, width := opts.envContext()
	pool := sched.Pool{Workers: width}
	results, err := sched.MapWorkers(envCtx, pool, len(cells),
		func(int) (struct{}, error) { return struct{}{}, nil },
		func(ctx context.Context, _ struct{}, i int) (experiment.Result, error) {
			c := cells[i]
			res, err := experiment.RunContext(ctx, experiment.Scenario{
				Service:       service,
				Label:         c.client + "-" + c.variant.Name,
				Client:        c.cfg,
				Server:        c.variant.Cfg,
				RateQPS:       c.rate,
				Runs:          opts.runs(50),
				TargetSamples: opts.TargetSamples,
				Seed:          opts.Seed,
				SampleMode:    opts.SampleMode,
				Replicas:      opts.Replicas,
				Router:        opts.Router,
				Shards:        opts.Shards,
			})
			if err != nil {
				return experiment.Result{}, fmt.Errorf("figures: %s %s-%s @%s: %w", service, c.client, c.variant.Name, FormatRate(c.rate), err)
			}
			return res, nil
		},
		func(i int, res experiment.Result) {
			c := cells[i]
			opts.progress("%s %s-%s @%s: avg=%.1fµs p99=%.1fµs (%d runs)",
				service, c.client, c.variant.Name, FormatRate(c.rate), res.MedianAvgUs(), res.MedianP99Us(), len(res.Runs))
		})
	if err != nil {
		return nil, sched.Unwrap(err)
	}
	for i, res := range results {
		c := cells[i]
		sw.Results[c.client][c.variant.Name][c.rateIdx] = res
	}
	return sw, nil
}

// RunMemcachedStudy runs the combined Figure 2 + Figure 3 sweep: the SMToff
// baseline doubles as C1Eoff, so three variants cover both figures
// (the paper's six scenarios of Fig. 8 / Table IV).
func RunMemcachedStudy(opts SweepOptions) (*Sweep, error) {
	variants := []experiment.ServerVariant{
		experiment.SMTVariants()[0], // SMToff == C1Eoff baseline
		experiment.SMTVariants()[1], // SMTon
		experiment.C1EVariants()[1], // C1Eon
	}
	return RunServiceSweep(experiment.ServiceMemcached, variants, experiment.MemcachedRates(), opts)
}

// RunHDSearchStudy runs the Figure 4 sweep.
func RunHDSearchStudy(opts SweepOptions) (*Sweep, error) {
	variants := []experiment.ServerVariant{
		experiment.SMTVariants()[0],
		experiment.SMTVariants()[1],
		experiment.C1EVariants()[1],
	}
	return RunServiceSweep(experiment.ServiceHDSearch, variants, experiment.HDSearchRates(), opts)
}

// RunSocialNetStudy runs the Figure 6 sweep (baseline server only).
func RunSocialNetStudy(opts SweepOptions) (*Sweep, error) {
	return RunServiceSweep(experiment.ServiceSocialNet,
		experiment.SMTVariants()[:1], experiment.SocialNetRates(), opts)
}

// SyntheticSweep holds the Figure 7 grid: delays × rates × clients.
type SyntheticSweep struct {
	Delays []time.Duration
	Rates  []float64
	// Results[client][delayIdx][rateIdx].
	Results map[string][][]experiment.Result
}

// RunSyntheticStudy runs the Figure 7 sensitivity grid (paper: 20 runs).
// Like RunServiceSweep, the grid's cells fan out over the sched pool —
// under the shared worker budget, leasing pooled backends — with results
// and progress independent of the worker count.
func RunSyntheticStudy(opts SweepOptions) (*SyntheticSweep, error) {
	sw := &SyntheticSweep{
		Delays:  experiment.SyntheticDelays(),
		Rates:   experiment.SyntheticRates(),
		Results: make(map[string][][]experiment.Result),
	}
	type synthCell struct {
		client  string
		cfg     hw.Config
		delay   time.Duration
		dIdx    int
		rate    float64
		rateIdx int
	}
	var cells []synthCell
	for _, cl := range clientList() {
		grid := make([][]experiment.Result, len(sw.Delays))
		for di, delay := range sw.Delays {
			grid[di] = make([]experiment.Result, len(sw.Rates))
			for ri, rate := range sw.Rates {
				cells = append(cells, synthCell{client: cl.Name, cfg: cl.Cfg, delay: delay, dIdx: di, rate: rate, rateIdx: ri})
			}
		}
		sw.Results[cl.Name] = grid
	}

	envCtx, width := opts.envContext()
	pool := sched.Pool{Workers: width}
	results, err := sched.MapWorkers(envCtx, pool, len(cells),
		func(int) (struct{}, error) { return struct{}{}, nil },
		func(ctx context.Context, _ struct{}, i int) (experiment.Result, error) {
			c := cells[i]
			res, err := experiment.RunContext(ctx, experiment.Scenario{
				Service:       experiment.ServiceSynthetic,
				Label:         fmt.Sprintf("%s-d%d", c.client, c.delay.Microseconds()),
				Client:        c.cfg,
				Server:        hw.ServerBaselineConfig(),
				RateQPS:       c.rate,
				Runs:          opts.runs(20),
				TargetSamples: opts.TargetSamples,
				SynthDelay:    c.delay,
				Seed:          opts.Seed,
				SampleMode:    opts.SampleMode,
				Replicas:      opts.Replicas,
				Router:        opts.Router,
				Shards:        opts.Shards,
			})
			if err != nil {
				return experiment.Result{}, fmt.Errorf("figures: synthetic %s delay=%v @%s: %w", c.client, c.delay, FormatRate(c.rate), err)
			}
			return res, nil
		},
		func(i int, res experiment.Result) {
			c := cells[i]
			opts.progress("synthetic %s delay=%v @%s: avg=%.1fµs", c.client, c.delay, FormatRate(c.rate), res.MedianAvgUs())
		})
	if err != nil {
		return nil, sched.Unwrap(err)
	}
	for i, res := range results {
		c := cells[i]
		sw.Results[c.client][c.dIdx][c.rateIdx] = res
	}
	return sw, nil
}
