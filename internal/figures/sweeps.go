package figures

import (
	"fmt"
	"time"

	"repro/internal/experiment"
	"repro/internal/hw"
)

// SweepOptions size a figure regeneration.
type SweepOptions struct {
	// Runs per configuration point (paper: 50; the synthetic study: 20).
	Runs int
	// Seed derives all randomness.
	Seed uint64
	// TargetSamples overrides the per-run sample count (0 = default).
	TargetSamples int
	// Progress, when non-nil, receives one line per finished scenario.
	Progress func(line string)
}

func (o SweepOptions) runs(def int) int {
	if o.Runs > 0 {
		return o.Runs
	}
	return def
}

func (o SweepOptions) progress(format string, args ...any) {
	if o.Progress != nil {
		o.Progress(fmt.Sprintf(format, args...))
	}
}

// Sweep holds results for clients × variants × rates of one service.
type Sweep struct {
	Service  experiment.Service
	Clients  []string
	Variants []string
	Rates    []float64
	// Results[client][variant][i] corresponds to Rates[i].
	Results map[string]map[string][]experiment.Result
}

// Get returns one configuration point's result.
func (s *Sweep) Get(client, variant string, rateIdx int) experiment.Result {
	return s.Results[client][variant][rateIdx]
}

// clientList returns LP and HP in stable order.
func clientList() []struct {
	Name string
	Cfg  hw.Config
} {
	return []struct {
		Name string
		Cfg  hw.Config
	}{
		{"LP", hw.LPConfig()},
		{"HP", hw.HPConfig()},
	}
}

// RunServiceSweep runs a client × server-variant × rate sweep for one
// service.
func RunServiceSweep(service experiment.Service, variants []experiment.ServerVariant, rates []float64, opts SweepOptions) (*Sweep, error) {
	sw := &Sweep{
		Service: service,
		Rates:   rates,
		Results: make(map[string]map[string][]experiment.Result),
	}
	for _, v := range variants {
		sw.Variants = append(sw.Variants, v.Name)
	}
	for _, cl := range clientList() {
		sw.Clients = append(sw.Clients, cl.Name)
		sw.Results[cl.Name] = make(map[string][]experiment.Result)
		for _, v := range variants {
			for _, rate := range rates {
				res, err := experiment.Run(experiment.Scenario{
					Service:       service,
					Label:         cl.Name + "-" + v.Name,
					Client:        cl.Cfg,
					Server:        v.Cfg,
					RateQPS:       rate,
					Runs:          opts.runs(50),
					TargetSamples: opts.TargetSamples,
					Seed:          opts.Seed,
				})
				if err != nil {
					return nil, fmt.Errorf("figures: %s %s-%s @%s: %w", service, cl.Name, v.Name, FormatRate(rate), err)
				}
				sw.Results[cl.Name][v.Name] = append(sw.Results[cl.Name][v.Name], res)
				opts.progress("%s %s-%s @%s: avg=%.1fµs p99=%.1fµs (%d runs)",
					service, cl.Name, v.Name, FormatRate(rate), res.MedianAvgUs(), res.MedianP99Us(), len(res.Runs))
			}
		}
	}
	return sw, nil
}

// RunMemcachedStudy runs the combined Figure 2 + Figure 3 sweep: the SMToff
// baseline doubles as C1Eoff, so three variants cover both figures
// (the paper's six scenarios of Fig. 8 / Table IV).
func RunMemcachedStudy(opts SweepOptions) (*Sweep, error) {
	variants := []experiment.ServerVariant{
		experiment.SMTVariants()[0], // SMToff == C1Eoff baseline
		experiment.SMTVariants()[1], // SMTon
		experiment.C1EVariants()[1], // C1Eon
	}
	return RunServiceSweep(experiment.ServiceMemcached, variants, experiment.MemcachedRates(), opts)
}

// RunHDSearchStudy runs the Figure 4 sweep.
func RunHDSearchStudy(opts SweepOptions) (*Sweep, error) {
	variants := []experiment.ServerVariant{
		experiment.SMTVariants()[0],
		experiment.SMTVariants()[1],
		experiment.C1EVariants()[1],
	}
	return RunServiceSweep(experiment.ServiceHDSearch, variants, experiment.HDSearchRates(), opts)
}

// RunSocialNetStudy runs the Figure 6 sweep (baseline server only).
func RunSocialNetStudy(opts SweepOptions) (*Sweep, error) {
	return RunServiceSweep(experiment.ServiceSocialNet,
		experiment.SMTVariants()[:1], experiment.SocialNetRates(), opts)
}

// SyntheticSweep holds the Figure 7 grid: delays × rates × clients.
type SyntheticSweep struct {
	Delays []time.Duration
	Rates  []float64
	// Results[client][delayIdx][rateIdx].
	Results map[string][][]experiment.Result
}

// RunSyntheticStudy runs the Figure 7 sensitivity grid (paper: 20 runs).
func RunSyntheticStudy(opts SweepOptions) (*SyntheticSweep, error) {
	sw := &SyntheticSweep{
		Delays:  experiment.SyntheticDelays(),
		Rates:   experiment.SyntheticRates(),
		Results: make(map[string][][]experiment.Result),
	}
	for _, cl := range clientList() {
		grid := make([][]experiment.Result, len(sw.Delays))
		for di, delay := range sw.Delays {
			grid[di] = make([]experiment.Result, len(sw.Rates))
			for ri, rate := range sw.Rates {
				res, err := experiment.Run(experiment.Scenario{
					Service:       experiment.ServiceSynthetic,
					Label:         fmt.Sprintf("%s-d%d", cl.Name, delay.Microseconds()),
					Client:        cl.Cfg,
					Server:        hw.ServerBaselineConfig(),
					RateQPS:       rate,
					Runs:          opts.runs(20),
					TargetSamples: opts.TargetSamples,
					SynthDelay:    delay,
					Seed:          opts.Seed,
				})
				if err != nil {
					return nil, fmt.Errorf("figures: synthetic %s delay=%v @%s: %w", cl.Name, delay, FormatRate(rate), err)
				}
				grid[di][ri] = res
				opts.progress("synthetic %s delay=%v @%s: avg=%.1fµs", cl.Name, delay, FormatRate(rate), res.MedianAvgUs())
			}
		}
		sw.Results[cl.Name] = grid
	}
	return sw, nil
}
