package figures

import (
	"fmt"

	"repro/internal/core"
	"repro/internal/hw"
)

// TableI reproduces the paper's survey of hardware characterization in
// prior work (Table I): of twenty recent publications surveyed across
// ISPASS, IISWC and MICRO (2021–2023), none describe the client side alone,
// eight describe only the server, two describe both, and ten describe
// neither — i.e. only 10 % specify the client-side hardware at all.
func TableI() *Table {
	t := &Table{
		Title:   "Table I: Hardware characterization in previous work",
		Headers: []string{"Characterization", "Publications"},
	}
	t.AddRow("Client only", "0")
	t.AddRow("Server only", "8")
	t.AddRow("Client and server", "2")
	t.AddRow("None", "10")
	t.AddRow("Total", "20")
	t.Notes = append(t.Notes, "survey data reproduced verbatim from the paper (2021–2023 venues incl. ISPASS, IISWC, MICRO)")
	return t
}

// TableII renders the client- and server-side hardware configurations
// (Table II) from the live presets, so the table always reflects the
// configurations the experiments actually run.
func TableII() *Table {
	lp, hp, srv := hw.LPConfig(), hw.HPConfig(), hw.ServerBaselineConfig()
	t := &Table{
		Title:   "Table II: Client- and server-side hardware configurations",
		Headers: []string{"Knob", "Client LP", "Client HP", "Server baseline"},
	}
	cstates := func(c hw.Config) string {
		switch c.MaxCState {
		case "C0":
			return "off (idle=poll)"
		case "C1":
			return "C0,C1"
		case "C1E":
			return "C0,C1,C1E"
		default:
			return "C0,C1,C1E,C6"
		}
	}
	onOff := func(b bool) string {
		if b {
			return "on"
		}
		return "off"
	}
	uncore := func(b bool) string {
		if b {
			return "dynamic"
		}
		return "fixed"
	}
	t.AddRow("C-states", cstates(lp), cstates(hp), cstates(srv))
	t.AddRow("Frequency driver", lp.Driver.String(), hp.Driver.String(), srv.Driver.String())
	t.AddRow("Frequency governor", lp.Governor.String(), hp.Governor.String(), srv.Governor.String())
	t.AddRow("Turbo", onOff(lp.Turbo), onOff(hp.Turbo), onOff(srv.Turbo))
	t.AddRow("SMT", onOff(lp.SMT), onOff(hp.SMT), onOff(srv.SMT))
	t.AddRow("Uncore frequency", uncore(lp.UncoreDynamic), uncore(hp.UncoreDynamic), uncore(srv.UncoreDynamic))
	t.AddRow("Tickless", onOff(lp.Tickless), onOff(hp.Tickless), onOff(srv.Tickless))
	return t
}

// TableIII renders the scenario taxonomy and risk classification
// (Table III) from the core package's classifier.
func TableIII() *Table {
	t := &Table{
		Title: "Table III: Scenarios tested",
		Headers: []string{"Workload generator design", "Point of meas.", "Client conf.",
			"Response time", "Risk", "Sections"},
	}
	type row struct {
		design   core.GeneratorDesign
		client   core.ClientTuning
		resp     core.ResponseTimeClass
		sections string
	}
	rows := []row{
		{core.GeneratorDesign{Loop: core.OpenLoop, Pacing: core.TimeSensitive, Point: core.InApp}, core.Tuned, core.SmallResponseTime, "5.1, 5.3"},
		{core.GeneratorDesign{Loop: core.OpenLoop, Pacing: core.TimeSensitive, Point: core.InApp}, core.Untuned, core.SmallResponseTime, "5.1, 5.3"},
		{core.GeneratorDesign{Loop: core.OpenLoop, Pacing: core.TimeInsensitive, Point: core.InApp}, core.Tuned, core.BigResponseTime, "5.2"},
		{core.GeneratorDesign{Loop: core.OpenLoop, Pacing: core.TimeInsensitive, Point: core.InApp}, core.Untuned, core.BigResponseTime, "5.2"},
	}
	for _, r := range rows {
		risk := core.Classify(core.Scenario{Design: r.design, Client: r.client, ResponseTime: r.resp})
		mark := ""
		if risk == core.RiskWrongConclusions {
			mark = "✗ "
		}
		t.AddRow(
			fmt.Sprintf("%s %s", r.design.Loop, r.design.Pacing),
			r.design.Point.String(),
			r.client.String(),
			r.resp.String(),
			mark+risk.String(),
			r.sections,
		)
	}
	return t
}

// RecommendationsTable renders the §VI decision procedure for every
// generator-design cell — the paper's closing guidance as a table.
func RecommendationsTable() *Table {
	t := &Table{
		Title:   "Configuration recommendations (paper §VI)",
		Headers: []string{"Inter-arrival pacing", "Target known?", "Client configuration", "Rationale"},
	}
	cases := []struct {
		pacing      core.Pacing
		targetKnown bool
		knownLabel  string
	}{
		{core.TimeSensitive, false, "—"},
		{core.TimeInsensitive, true, "yes"},
		{core.TimeInsensitive, false, "no"},
	}
	for _, c := range cases {
		rec := core.Recommend(core.GeneratorDesign{Loop: core.OpenLoop, Pacing: c.pacing, Point: core.InApp}, c.targetKnown)
		t.AddRow(c.pacing.String(), c.knownLabel, rec.ClientConfig, rec.Rationale)
	}
	t.Notes = append(t.Notes,
		"time-sensitive caveat: an HP client may under-estimate end-to-end latency of a power-managed production fleet",
		"repetition counts: use Jain (normal data) or CONFIRM (non-parametric) per §III — see cmd/confirmtool")
	return t
}
