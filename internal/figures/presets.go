package figures

import (
	"context"
	"fmt"
	"strings"
	"time"

	"repro/internal/cluster"
	"repro/internal/experiment"
	"repro/internal/faults"
	"repro/internal/hw"
	"repro/internal/loadgen"
	"repro/internal/metrics"
	"repro/internal/sched"
	"repro/internal/spec"
)

// Presets are the beyond-the-paper scale scenarios the engine work
// unlocked: PR 3 removed the per-run memory ceiling (streaming
// reduction), PR 4 the allocation-rate ceiling (pooled lifecycle), and
// the timer-wheel queue removed the O(log n) scheduling term that would
// otherwise dominate exactly here — hundreds of thousands of events
// pending at once. Each preset is a rate sweep of one service with
// paper-faithful client/server configurations but run sizes the paper's
// testbed could not have afforded.
//
// Full-size presets are deliberately big (minutes of host time); both
// CLIs let -runs and -samples scale them down, which is how CI smokes
// them per commit.

// Preset is a named large-scale sweep: one service, one client, one
// server, a rate axis.
type Preset struct {
	// Name is the CLI spelling (repro -experiment NAME, labsim -preset NAME).
	Name string
	// Description is one line for usage text.
	Description string
	Service     experiment.Service
	Client      hw.Config
	ClientName  string
	Server      hw.Config
	// Rates is the sweep axis.
	Rates []float64
	// Runs and TargetSamples are the full-size defaults; SweepOptions
	// overrides scale them down for smoke runs.
	Runs          int
	TargetSamples int
	// Replicas and Router select the cluster path (experiment.Scenario
	// semantics): a replicated backend fleet behind the named routing
	// policy. Zero keeps the single-backend path.
	Replicas int
	Router   string
	// Duration fixes the measurement window instead of TargetSamples
	// (experiment.Scenario.Duration semantics); spec-driven phase
	// programs use it.
	Duration time.Duration
	// SynthDelay is the synthetic service's added busy-wait.
	SynthDelay time.Duration
	// Classes, Phases and PhasesRepeat are the workload mix and load
	// program (experiment.Scenario semantics). Built-in presets leave
	// them empty; specs populate them.
	Classes      []loadgen.ClassConfig
	Phases       []loadgen.PhaseConfig
	PhasesRepeat bool
	// Autoscale enables the cluster's control loop.
	Autoscale *cluster.AutoscalerConfig
	// Shards partitions each run across this many conservatively-
	// synchronized engines (experiment.Scenario.Shards semantics),
	// byte-identical to the single-engine path. Zero keeps the legacy
	// single-engine run.
	Shards int
	// Faults is the deterministic fault plan (experiment.Scenario.Faults
	// semantics): crash windows, stragglers, link degradation, injected
	// byte-identically at any -parallel and -shards.
	Faults *faults.Plan
	// Resilience is the client-side fault handling (timeouts, bounded
	// retries, hedging); nil keeps the legacy fire-and-forget client.
	Resilience *loadgen.ResilienceConfig
	// HiccupRate / HiccupMean override the tiers' background-
	// interference model (zero = service defaults).
	HiccupRate float64
	HiccupMean time.Duration
}

// Presets returns the built-in large-scale presets.
func Presets() []Preset {
	return []Preset{
		{
			Name:        "million-qps",
			Description: "Memcached load sweep to 1M QPS (2× the paper's peak), 1M streamed samples per run",
			Service:     experiment.ServiceMemcached,
			Client:      hw.HPConfig(),
			ClientName:  "HP",
			Server:      hw.ServerBaselineConfig(),
			Rates:       []float64{250_000, 500_000, 750_000, 1_000_000},
			Runs:        5,
			// 1M post-warmup samples per run: far past the streaming
			// threshold, so each run reduces in O(1) memory while the
			// wheel keeps per-event cost flat at ~10^5 pending events.
			TargetSamples: 1_000_000,
		},
		{
			Name:        "cluster",
			Description: "Replicated Memcached fleet: 4 replicas behind consistent hashing, to 2M QPS offered",
			Service:     experiment.ServiceMemcached,
			Client:      hw.HPConfig(),
			ClientName:  "HP",
			Server:      hw.ServerBaselineConfig(),
			// One instance saturates near 900K QPS; the upper rates only
			// stay serviceable because the router spreads them over the
			// fleet — the scale-out table's axis.
			Rates:         []float64{250_000, 500_000, 1_000_000, 2_000_000},
			Runs:          5,
			TargetSamples: 250_000,
			Replicas:      4,
			Router:        cluster.RouterConsistentHash,
		},
		{
			Name:        "sharded",
			Description: "Replicated Memcached fleet across 4 sharded engines: the cluster sweep, parallelized in-run",
			Service:     experiment.ServiceMemcached,
			Client:      hw.HPConfig(),
			ClientName:  "HP",
			Server:      hw.ServerBaselineConfig(),
			// The cluster preset's shape — consistent hashing is the one
			// routing policy the sharded path admits (send-time routing) —
			// with each run partitioned over 4 engines: 4 client machines
			// + 4 replicas = 8 partitions, 2 per shard.
			Rates:         []float64{250_000, 500_000, 1_000_000, 2_000_000},
			Runs:          5,
			TargetSamples: 250_000,
			Replicas:      4,
			Router:        cluster.RouterConsistentHash,
			Shards:        4,
		},
		{
			Name:        "faulty-cluster",
			Description: "Replicated Memcached fleet with a mid-run replica crash, client timeouts and bounded retries",
			Service:     experiment.ServiceMemcached,
			Client:      hw.HPConfig(),
			ClientName:  "HP",
			Server:      hw.ServerBaselineConfig(),
			// The cluster preset's fleet with one replica crashed for the
			// middle third of every run. Consistent hashing keeps the run
			// shardable, so the fault path is exercised by both execution
			// modes; the resilience stack turns the dark replica's share
			// into retries against the survivors instead of lost requests.
			Rates:         []float64{250_000, 500_000, 1_000_000},
			Runs:          5,
			TargetSamples: 250_000,
			Replicas:      4,
			Router:        cluster.RouterConsistentHash,
			Faults: &faults.Plan{
				Crashes: []faults.CrashWindow{{Replica: 1, Start: 0.35, End: 0.65}},
			},
			Resilience: &loadgen.ResilienceConfig{
				Timeout:   2 * time.Millisecond,
				Retries:   2,
				RetryBase: 200 * time.Microsecond,
				RetryCap:  2 * time.Millisecond,
			},
		},
		{
			Name:        "hour-long",
			Description: "Memcached at 100K QPS for one virtual hour per run (360M samples, streamed)",
			Service:     experiment.ServiceMemcached,
			Client:      hw.HPConfig(),
			ClientName:  "HP",
			Server:      hw.ServerBaselineConfig(),
			Rates:       []float64{100_000},
			Runs:        3,
			// TargetSamples sets the measurement window: samples/rate =
			// 3600 virtual seconds. Only streaming reduction makes the
			// run's memory independent of those 3.6e8 samples.
			TargetSamples: 360_000_000,
		},
	}
}

// PresetByName resolves a preset by its CLI spelling.
func PresetByName(name string) (Preset, bool) {
	for _, p := range Presets() {
		if p.Name == name {
			return p, true
		}
	}
	return Preset{}, false
}

// PresetUsage renders one line per preset for CLI help text.
func PresetUsage() string {
	var b strings.Builder
	for _, p := range Presets() {
		fmt.Fprintf(&b, "  %-12s %s\n", p.Name, p.Description)
	}
	return strings.TrimRight(b.String(), "\n")
}

// PresetResult holds one preset sweep's outcome, rate-indexed.
type PresetResult struct {
	Preset  Preset
	Results []experiment.Result // index-aligned with Preset.Rates
}

// presetScenario assembles the scenario for one rate of a preset under
// the given options: the preset supplies full-size defaults, the
// options' Runs/TargetSamples override them (the smoke knob CI uses).
func presetScenario(p Preset, rate float64, opts SweepOptions) experiment.Scenario {
	samples := p.TargetSamples
	if opts.TargetSamples > 0 {
		samples = opts.TargetSamples
	}
	replicas, router := p.Replicas, p.Router
	if opts.Replicas > 0 {
		replicas = opts.Replicas
	}
	if opts.Router != "" {
		router = opts.Router
	}
	shards := p.Shards
	if opts.Shards > 0 {
		shards = opts.Shards
	}
	duration := p.Duration
	if opts.TargetSamples > 0 {
		// The smoke knob wins outright: an explicit sample target also
		// shrinks duration-sized (phase-program) presets to smoke scale.
		duration = 0
	}
	resilience := p.Resilience
	if opts.Timeout > 0 || opts.Retries > 0 || opts.Hedge > 0 {
		res := loadgen.ResilienceConfig{}
		if resilience != nil {
			res = *resilience
		}
		if opts.Timeout > 0 {
			res.Timeout = opts.Timeout
		}
		if opts.Retries > 0 {
			res.Retries = opts.Retries
		}
		if opts.Hedge > 0 {
			res.Hedge = opts.Hedge
		}
		resilience = &res
	}
	return experiment.Scenario{
		Service:       p.Service,
		Label:         p.ClientName + "-" + p.Name,
		Client:        p.Client,
		Server:        p.Server,
		RateQPS:       rate,
		Runs:          opts.runs(p.Runs),
		TargetSamples: samples,
		Duration:      duration,
		Classes:       p.Classes,
		Phases:        p.Phases,
		PhasesRepeat:  p.PhasesRepeat,
		SynthDelay:    p.SynthDelay,
		Seed:          opts.Seed,
		SampleMode:    opts.SampleMode,
		Replicas:      replicas,
		Router:        router,
		Autoscale:     p.Autoscale,
		Shards:        shards,
		Faults:        p.Faults,
		Resilience:    resilience,
		HiccupRate:    p.HiccupRate,
		HiccupMean:    p.HiccupMean,
	}
}

// PresetFromSpec compiles a loaded workload spec into a Preset, the
// unit both CLIs sweep. A spec re-expressing a built-in preset compiles
// to a Preset equal to the built-in one — the parity the golden tests
// pin — so -spec is a superset of -experiment/-preset.
func PresetFromSpec(s *spec.Spec) Preset {
	client, clientName := s.ClientConfig()
	p := Preset{
		Name:          s.Name,
		Description:   s.Description,
		Service:       experiment.Service(s.Service),
		Client:        client,
		ClientName:    clientName,
		Server:        s.ServerConfig(),
		Rates:         s.SweepRates(),
		Runs:          s.Runs,
		TargetSamples: s.Samples,
		Replicas:      s.Replicas,
		Router:        s.Router,
		Duration:      s.Duration.Std(),
		SynthDelay:    s.SynthDelay.Std(),
		Classes:       s.LoadgenClasses(),
		Phases:        s.LoadgenPhases(),
		PhasesRepeat:  s.PhasesRepeat,
		Autoscale:     s.AutoscalerConfig(),
		Shards:        s.Shards,
	}
	sc := s.Scenario(s.SweepRates()[0])
	p.Faults = sc.Faults
	p.Resilience = sc.Resilience
	p.HiccupRate = sc.HiccupRate
	p.HiccupMean = sc.HiccupMean
	return p
}

// RunPreset executes a preset sweep. Rates fan out through the sched
// worker pool under the options' shared budget and backend pool exactly
// like the paper's sweeps, so output is byte-identical for any -parallel
// value. opts.Runs and opts.TargetSamples, when set, override the
// preset's full-size defaults — the smoke knob CI uses. The sample mode
// defaults to the scenario's auto selection, which at full-size counts
// always chooses the streaming reduction.
func RunPreset(p Preset, opts SweepOptions) (*PresetResult, error) {
	pr := &PresetResult{Preset: p, Results: make([]experiment.Result, len(p.Rates))}
	envCtx, width := opts.envContext()
	pool := sched.Pool{Workers: width}
	results, err := sched.MapWorkers(envCtx, pool, len(p.Rates),
		func(int) (struct{}, error) { return struct{}{}, nil },
		func(ctx context.Context, _ struct{}, i int) (experiment.Result, error) {
			res, err := experiment.RunContext(ctx, presetScenario(p, p.Rates[i], opts))
			if err != nil {
				return experiment.Result{}, fmt.Errorf("figures: preset %s @%s: %w", p.Name, FormatRate(p.Rates[i]), err)
			}
			return res, nil
		},
		func(i int, res experiment.Result) {
			opts.progress("%s", presetProgressLine(p, p.Rates[i], res))
		})
	if err != nil {
		return nil, sched.Unwrap(err)
	}
	pr.Results = results
	return pr, nil
}

// presetProgressLine formats one finished rate's progress line. Like
// Render, it must guard the per-run sample count: a result can carry
// zero runs, and the progress path used to index Runs[0] unguarded.
func presetProgressLine(p Preset, rate float64, res experiment.Result) string {
	samples := 0
	if len(res.Runs) > 0 {
		samples = res.Runs[0].Samples
	}
	return fmt.Sprintf("%s @%s: avg=%.1fµs p99=%.1fµs (%d runs × %d samples)",
		p.Name, FormatRate(rate), res.MedianAvgUs(), res.MedianP99Us(), len(res.Runs), samples)
}

// Render formats the preset sweep as a rate table in the style of the
// paper's figures.
func (pr *PresetResult) Render() string {
	var b strings.Builder
	p := pr.Preset
	mode := metrics.SampleAuto
	if len(pr.Results) > 0 {
		mode = pr.Results[0].Scenario.EffectiveSampleMode()
	}
	fmt.Fprintf(&b, "%s: %s (%s client, %s server, %s reduction)\n",
		p.Name, p.Description, p.ClientName, p.Server.Name, mode)
	fmt.Fprintf(&b, "%-12s %10s %12s %12s %12s %10s\n",
		"rate", "runs", "avg(µs)", "p99(µs)", "stddev(µs)", "samples")
	for i, rate := range p.Rates {
		res := pr.Results[i]
		samples := 0
		if len(res.Runs) > 0 {
			samples = res.Runs[0].Samples
		}
		fmt.Fprintf(&b, "%-12s %10d %12.2f %12.2f %12.2f %10d\n",
			FormatRate(rate), len(res.Runs), res.MedianAvgUs(), res.MedianP99Us(), res.StdDevAvgUs, samples)
	}
	return strings.TrimRight(b.String(), "\n")
}
