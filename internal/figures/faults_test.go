package figures

import (
	"reflect"
	"strings"
	"testing"

	"repro/internal/experiment"
)

// runFaulty executes the faulty-cluster preset at smoke scale (the CI
// shape) under the given worker and shard counts.
func runFaulty(t *testing.T, workers, shards int) *PresetResult {
	t.Helper()
	p, ok := PresetByName("faulty-cluster")
	if !ok {
		t.Fatal("faulty-cluster preset missing")
	}
	pr, err := RunPreset(p, SweepOptions{Runs: 2, Seed: 7, TargetSamples: 400, Workers: workers, Shards: shards})
	if err != nil {
		t.Fatal(err)
	}
	return pr
}

// TestGoldenFaultyClusterTables pins the fault renderings — and the
// whole fault-injection and resilience path beneath them — over the
// smoke-scale faulty-cluster preset.
func TestGoldenFaultyClusterTables(t *testing.T) {
	pr := runFaulty(t, 1, 0)
	if !pr.Faulty() {
		t.Fatal("faulty-cluster preset produced no resilience metrics")
	}
	for i, res := range pr.Results {
		if len(resilienceMetrics(res)) != len(res.Runs) {
			t.Fatalf("rate %d: %d of %d runs carry resilience metrics",
				i, len(resilienceMetrics(res)), len(res.Runs))
		}
		if len(clusterStats(res)) != len(res.Runs) {
			t.Fatalf("rate %d: %d of %d runs carry cluster stats",
				i, len(clusterStats(res)), len(res.Runs))
		}
	}
	checkGolden(t, "availability_small.golden", pr.AvailabilityTable())
	checkGolden(t, "fault_timeline_small.golden", pr.FaultTimelineTable())
}

// TestFaultyClusterByteIdentical is the PR's acceptance invariant: the
// faulty-cluster preset — crash window, health-aware routing, timeouts
// and retries — produces byte-identical run metrics and renderings at
// any repetition-worker count and any shard count.
func TestFaultyClusterByteIdentical(t *testing.T) {
	base := runFaulty(t, 1, 0)
	cases := []struct {
		name            string
		workers, shards int
	}{
		{"parallel-4", 4, 0},
		{"shards-2", 1, 2},
		{"parallel-4-shards-4", 4, 4},
	}
	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) {
			got := runFaulty(t, c.workers, c.shards)
			for i := range base.Results {
				if !reflect.DeepEqual(base.Results[i].Runs, got.Results[i].Runs) {
					t.Errorf("rate %s: run metrics differ from the sequential single-engine baseline",
						FormatRate(base.Preset.Rates[i]))
				}
			}
			if base.AvailabilityTable() != got.AvailabilityTable() {
				t.Error("availability tables differ")
			}
			if base.FaultTimelineTable() != got.FaultTimelineTable() {
				t.Error("fault-timeline tables differ")
			}
		})
	}
}

// TestFaultTablesWithoutStats pins the renderers' placeholder path: a
// fault-free preset result renders both tables without panicking.
func TestFaultTablesWithoutStats(t *testing.T) {
	p, _ := PresetByName("million-qps")
	pr := &PresetResult{Preset: p, Results: make([]experiment.Result, len(p.Rates))}
	if pr.Faulty() {
		t.Error("fault-free result reports Faulty")
	}
	if av := pr.AvailabilityTable(); !strings.Contains(av, "(no resilience stats)") {
		t.Errorf("availability placeholder missing:\n%s", av)
	}
	if ft := pr.FaultTimelineTable(); !strings.Contains(ft, "(no cluster stats)") {
		t.Errorf("timeline placeholder missing:\n%s", ft)
	}
}
