package figures

import (
	"reflect"
	"testing"

	"repro/internal/experiment"
)

// sweepOpts returns options sized for test-suite runtimes.
func sweepOpts(workers int) SweepOptions {
	return SweepOptions{Runs: 2, Seed: 5, TargetSamples: 600, Workers: workers}
}

// TestParallelSweepByteIdentical locks in the scheduler guarantee at the
// sweep layer: the whole result grid AND the progress stream must be
// identical whether cells run on one worker or several.
func TestParallelSweepByteIdentical(t *testing.T) {
	variants := experiment.SMTVariants()
	rates := []float64{50_000, 200_000}

	runSweep := func(workers int) (*Sweep, []string) {
		var lines []string
		opts := sweepOpts(workers)
		opts.Progress = func(line string) { lines = append(lines, line) }
		sw, err := RunServiceSweep(experiment.ServiceMemcached, variants, rates, opts)
		if err != nil {
			t.Fatal(err)
		}
		return sw, lines
	}

	seq, seqLines := runSweep(1)
	par, parLines := runSweep(3)

	if !reflect.DeepEqual(seq, par) {
		t.Error("parallel sweep grid differs from sequential")
	}
	if !reflect.DeepEqual(seqLines, parLines) {
		t.Errorf("progress output differs:\nseq: %q\npar: %q", seqLines, parLines)
	}

	par2, _ := runSweep(3)
	if !reflect.DeepEqual(par, par2) {
		t.Error("two parallel sweeps differ")
	}
}

// TestParallelSyntheticStudyByteIdentical covers the second sweep shape
// (the client × delay × rate grid of Figure 7).
func TestParallelSyntheticStudyByteIdentical(t *testing.T) {
	if testing.Short() {
		t.Skip("grid covered by TestParallelSweepByteIdentical in short mode")
	}
	run := func(workers int) *SyntheticSweep {
		// Runs ≥ 2: with a single run StdDevAvgUs is NaN and
		// reflect.DeepEqual(NaN, NaN) is false.
		opts := SweepOptions{Runs: 2, Seed: 3, TargetSamples: 150, Workers: workers}
		sw, err := RunSyntheticStudy(opts)
		if err != nil {
			t.Fatal(err)
		}
		return sw
	}
	if !reflect.DeepEqual(run(1), run(4)) {
		t.Error("parallel synthetic study differs from sequential")
	}
}
