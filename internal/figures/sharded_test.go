package figures

import (
	"reflect"
	"testing"

	"repro/internal/experiment"
)

// stripScenario clears each result's Scenario so differentials compare
// measurements only — the scenarios necessarily differ in the Shards
// field itself.
func stripScenario(pr *PresetResult) []experiment.Result {
	out := make([]experiment.Result, len(pr.Results))
	copy(out, pr.Results)
	for i := range out {
		out[i].Scenario = experiment.Scenario{}
	}
	return out
}

// TestShardedPresetDifferential pins the tentpole guarantee end to end
// through the experiment layer: the million-qps and cluster presets and
// the phase-program example spec produce byte-identical results —
// every run metric, CI bound and rendered table — at every shard count,
// including the cluster stats on the replicated path.
func TestShardedPresetDifferential(t *testing.T) {
	var presets []Preset
	for _, name := range []string{"million-qps", "cluster"} {
		p, ok := PresetByName(name)
		if !ok {
			t.Fatalf("no built-in preset %s", name)
		}
		presets = append(presets, p)
	}
	presets = append(presets, PresetFromSpec(loadExampleSpec(t, "phases-spike.yaml")))

	for _, p := range presets {
		p := p
		t.Run(p.Name, func(t *testing.T) {
			if len(p.Rates) > 2 {
				p.Rates = p.Rates[:2] // differential scale: two rates suffice
			}
			opts := SweepOptions{Runs: 2, Seed: 9, TargetSamples: 300}
			base := p
			base.Shards = 0
			ref, err := RunPreset(base, opts)
			if err != nil {
				t.Fatal(err)
			}
			refResults, refRender := stripScenario(ref), ref.Render()
			for _, k := range []int{1, 2, 4} {
				sp := p
				sp.Shards = k
				got, err := RunPreset(sp, opts)
				if err != nil {
					t.Fatalf("shards=%d: %v", k, err)
				}
				if !reflect.DeepEqual(stripScenario(got), refResults) {
					t.Errorf("shards=%d: results diverge from single-engine run", k)
				}
				if r := got.Render(); r != refRender {
					t.Errorf("shards=%d: rendered table diverges:\n%s\n--- vs ---\n%s", k, r, refRender)
				}
			}
		})
	}
}

// TestShardedWorkerParity pins that repetition-level parallelism
// composes with in-run sharding: the sharded preset (4 replicas × 4
// engines) yields identical results sequentially and at -parallel 4.
func TestShardedWorkerParity(t *testing.T) {
	p, ok := PresetByName("sharded")
	if !ok {
		t.Fatal("no built-in preset sharded")
	}
	p.Rates = p.Rates[:2]
	var renders []string
	var results [][]experiment.Result
	for _, workers := range []int{1, 4} {
		pr, err := RunPreset(p, SweepOptions{Runs: 2, Seed: 21, TargetSamples: 300, Workers: workers})
		if err != nil {
			t.Fatalf("workers=%d: %v", workers, err)
		}
		renders = append(renders, pr.Render())
		results = append(results, stripScenario(pr))
	}
	if !reflect.DeepEqual(results[0], results[1]) {
		t.Error("sharded preset results differ between sequential and parallel dispatch")
	}
	if renders[0] != renders[1] {
		t.Errorf("sharded preset renders differ:\n%s\n--- vs ---\n%s", renders[0], renders[1])
	}
}
