package figures

import (
	"path/filepath"
	"reflect"
	"testing"

	"repro/internal/spec"
)

// loadExampleSpec loads one spec from the repository's examples tree.
func loadExampleSpec(t *testing.T, name string) *spec.Spec {
	t.Helper()
	s, err := spec.Load(filepath.Join("..", "..", "examples", name))
	if err != nil {
		t.Fatal(err)
	}
	return s
}

// TestSpecPresetParity pins that the spec re-expressions of the
// built-in presets compile to exactly the hard-coded Preset values:
// the declarative format loses nothing the code path had.
func TestSpecPresetParity(t *testing.T) {
	for _, name := range []string{"million-qps", "cluster", "hour-long", "sharded"} {
		t.Run(name, func(t *testing.T) {
			want, ok := PresetByName(name)
			if !ok {
				t.Fatalf("no built-in preset %s", name)
			}
			got := PresetFromSpec(loadExampleSpec(t, name+".yaml"))
			if !reflect.DeepEqual(got, want) {
				t.Fatalf("spec-compiled preset differs from built-in:\ngot  %+v\nwant %+v", got, want)
			}
		})
	}
}

// TestSpecPresetRenderParity is the end-to-end golden: running the
// spec-compiled preset produces byte-identical rendered output to the
// built-in preset, sequentially and at -parallel 4.
func TestSpecPresetRenderParity(t *testing.T) {
	for _, name := range []string{"million-qps", "cluster", "sharded"} {
		t.Run(name, func(t *testing.T) {
			builtin, _ := PresetByName(name)
			fromSpec := PresetFromSpec(loadExampleSpec(t, name+".yaml"))
			var renders []string
			for _, p := range []Preset{builtin, fromSpec} {
				for _, workers := range []int{1, 4} {
					pr, err := RunPreset(p, SweepOptions{Runs: 2, Seed: 7, TargetSamples: 300, Workers: workers})
					if err != nil {
						t.Fatal(err)
					}
					renders = append(renders, pr.Render())
				}
			}
			for i, r := range renders[1:] {
				if r != renders[0] {
					t.Fatalf("render %d differs from sequential built-in run:\n%s\n--- vs ---\n%s", i+1, r, renders[0])
				}
			}
		})
	}
}
