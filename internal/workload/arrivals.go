package workload

import (
	"fmt"
	"math"
	"time"

	"repro/internal/rng"
)

// Arrival process names — the workload-spec spellings of the load
// intensity models a generator can replay. Poisson and fixed pacing are
// the paper's processes; gamma, Weibull and ON/OFF extend the taxonomy
// toward the bursty session traffic production fleets see.
const (
	ArrivalPoisson = "poisson"
	ArrivalFixed   = "fixed"
	ArrivalGamma   = "gamma"
	ArrivalWeibull = "weibull"
	ArrivalOnOff   = "onoff"
)

// ArrivalConfig is a declarative arrival-process description: a process
// name plus its shape parameters. The zero value selects Poisson
// arrivals, the historical default.
type ArrivalConfig struct {
	// Process names the inter-arrival model (Arrival* constants;
	// "" = poisson).
	Process string
	// CV is the gamma process's coefficient of variation of inter-arrival
	// times: >1 bursty, <1 regular, 1 = Poisson.
	CV float64
	// Shape is the Weibull shape parameter k: <1 heavy-tailed bursts,
	// >1 near-deterministic pacing, 1 = Poisson.
	Shape float64
	// OnMean / OffMean are the ON/OFF user-state machine's mean state
	// durations. During ON the user emits Poisson arrivals at a burst
	// rate inflated so the long-run average matches the nominal rate;
	// during OFF the user is silent (think time between sessions).
	OnMean, OffMean time.Duration
}

// process resolves the default.
func (c ArrivalConfig) process() string {
	if c.Process == "" {
		return ArrivalPoisson
	}
	return c.Process
}

// Validate reports configuration errors without needing a rate, so spec
// loaders can fail fast before a generator exists.
func (c ArrivalConfig) Validate() error {
	switch c.process() {
	case ArrivalPoisson, ArrivalFixed:
	case ArrivalGamma:
		if c.CV <= 0 || math.IsNaN(c.CV) || math.IsInf(c.CV, 0) {
			return fmt.Errorf("workload: gamma arrivals need cv > 0, got %v", c.CV)
		}
	case ArrivalWeibull:
		if c.Shape <= 0 || math.IsNaN(c.Shape) || math.IsInf(c.Shape, 0) {
			return fmt.Errorf("workload: weibull arrivals need shape > 0, got %v", c.Shape)
		}
	case ArrivalOnOff:
		if c.OnMean <= 0 || c.OffMean <= 0 {
			return fmt.Errorf("workload: onoff arrivals need positive on/off means, got %v/%v", c.OnMean, c.OffMean)
		}
	default:
		return fmt.Errorf("workload: unknown arrival process %q (want %s|%s|%s|%s|%s)",
			c.Process, ArrivalPoisson, ArrivalFixed, ArrivalGamma, ArrivalWeibull, ArrivalOnOff)
	}
	return nil
}

// New builds the configured inter-arrival source at the given nominal
// rate (QPS), drawing from stream.
func (c ArrivalConfig) New(rate float64, stream *rng.Stream) (Interarrival, error) {
	if err := c.Validate(); err != nil {
		return nil, err
	}
	switch c.process() {
	case ArrivalPoisson:
		return NewExponentialArrivals(rate, stream)
	case ArrivalFixed:
		return NewFixedArrivals(rate)
	case ArrivalGamma:
		return NewGammaArrivals(rate, c.CV, stream)
	case ArrivalWeibull:
		return NewWeibullArrivals(rate, c.Shape, stream)
	default: // ArrivalOnOff, per Validate
		return NewOnOffArrivals(rate, c.OnMean, c.OffMean, stream)
	}
}

// gammaArrivals draws gamma-distributed inter-arrival gaps with mean
// 1/rate and the given coefficient of variation: shape k = 1/cv²,
// scale θ = cv²/rate, so E = kθ = 1/rate and CV = 1/√k = cv. cv > 1
// clusters requests into bursts (temporary overloads at constant average
// load); cv = 1 degenerates to Poisson.
type gammaArrivals struct {
	rate, shape, scale float64
	stream             *rng.Stream
}

// NewGammaArrivals returns gamma inter-arrivals at the given rate (QPS)
// with the given coefficient of variation.
func NewGammaArrivals(rate, cv float64, stream *rng.Stream) (Interarrival, error) {
	if rate <= 0 {
		return nil, fmt.Errorf("workload: arrival rate must be positive, got %v", rate)
	}
	if cv <= 0 || math.IsNaN(cv) || math.IsInf(cv, 0) {
		return nil, fmt.Errorf("workload: gamma arrivals need cv > 0, got %v", cv)
	}
	return &gammaArrivals{rate: rate, shape: 1 / (cv * cv), scale: cv * cv / rate, stream: stream}, nil
}

func (g *gammaArrivals) Next() time.Duration {
	return time.Duration(g.stream.Gamma(g.shape, g.scale) * float64(time.Second))
}

func (g *gammaArrivals) Rate() float64 { return g.rate }

// weibullArrivals draws Weibull inter-arrival gaps with mean 1/rate and
// the given shape k: scale λ = 1/(rate·Γ(1+1/k)). k < 1 is heavy-tailed
// (long silences separating clusters), k > 1 approaches fixed pacing.
type weibullArrivals struct {
	rate, shape, scale float64
	stream             *rng.Stream
}

// NewWeibullArrivals returns Weibull inter-arrivals at the given rate
// (QPS) with the given shape parameter.
func NewWeibullArrivals(rate, shape float64, stream *rng.Stream) (Interarrival, error) {
	if rate <= 0 {
		return nil, fmt.Errorf("workload: arrival rate must be positive, got %v", rate)
	}
	if shape <= 0 || math.IsNaN(shape) || math.IsInf(shape, 0) {
		return nil, fmt.Errorf("workload: weibull arrivals need shape > 0, got %v", shape)
	}
	return &weibullArrivals{rate: rate, shape: shape, scale: 1 / (rate * math.Gamma(1+1/shape)), stream: stream}, nil
}

func (w *weibullArrivals) Next() time.Duration {
	return time.Duration(w.stream.Weibull(w.shape, w.scale) * float64(time.Second))
}

func (w *weibullArrivals) Rate() float64 { return w.rate }

// onOffArrivals is a two-state user session machine: exponentially
// distributed ON periods during which requests arrive as a Poisson
// burst, separated by exponentially distributed silent OFF periods. The
// burst rate is inflated by (on+off)/on so the long-run average rate is
// the nominal one — the aggregate load matches a plain Poisson source,
// but arrivals cluster into sessions.
type onOffArrivals struct {
	rate      float64
	burstRate float64 // arrivals/second while ON
	onRate    float64 // 1/mean ON duration (per second)
	offRate   float64 // 1/mean OFF duration (per second)
	stream    *rng.Stream

	remainingOn float64 // seconds left in the current ON period
}

// NewOnOffArrivals returns ON/OFF session arrivals averaging the given
// rate (QPS), with exponential ON and OFF periods of the given means.
func NewOnOffArrivals(rate float64, onMean, offMean time.Duration, stream *rng.Stream) (Interarrival, error) {
	if rate <= 0 {
		return nil, fmt.Errorf("workload: arrival rate must be positive, got %v", rate)
	}
	if onMean <= 0 || offMean <= 0 {
		return nil, fmt.Errorf("workload: onoff arrivals need positive on/off means, got %v/%v", onMean, offMean)
	}
	on, off := onMean.Seconds(), offMean.Seconds()
	o := &onOffArrivals{
		rate:      rate,
		burstRate: rate * (on + off) / on,
		onRate:    1 / on,
		offRate:   1 / off,
		stream:    stream,
	}
	// The machine starts mid-ON so the first session is already live.
	o.remainingOn = o.stream.Exp(o.onRate)
	return o, nil
}

func (o *onOffArrivals) Next() time.Duration {
	gap := 0.0
	for {
		g := o.stream.Exp(o.burstRate)
		if g <= o.remainingOn {
			o.remainingOn -= g
			gap += g
			return time.Duration(gap * float64(time.Second))
		}
		// The session ends before the next arrival: skip to the end of
		// the OFF period and start a new ON period. The memoryless burst
		// process restarts with a fresh draw.
		gap += o.remainingOn + o.stream.Exp(o.offRate)
		o.remainingOn = o.stream.Exp(o.onRate)
	}
}

func (o *onOffArrivals) Rate() float64 { return o.rate }
