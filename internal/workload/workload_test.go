package workload

import (
	"math"
	"strings"
	"testing"
	"time"

	"repro/internal/rng"
)

func newETC(t *testing.T, seed uint64) *ETC {
	t.Helper()
	e, err := NewETC(DefaultETCConfig(), rng.New(seed))
	if err != nil {
		t.Fatal(err)
	}
	return e
}

func TestETCGetSetRatio(t *testing.T) {
	e := newETC(t, 1)
	gets := 0
	const n = 100000
	for i := 0; i < n; i++ {
		if e.Next().Op == OpGet {
			gets++
		}
	}
	ratio := float64(gets) / n
	if math.Abs(ratio-0.967) > 0.01 {
		t.Errorf("GET ratio = %v, want ≈0.967 (ETC)", ratio)
	}
}

func TestETCPopularitySkew(t *testing.T) {
	e := newETC(t, 2)
	counts := make(map[string]int)
	const n = 50000
	for i := 0; i < n; i++ {
		counts[e.Next().Key]++
	}
	// Hot key dominates: rank 0 should be far above a uniform share.
	hot := counts["etc-000000000000"]
	uniform := float64(n) / float64(DefaultETCConfig().Keys)
	if float64(hot) < 100*uniform {
		t.Errorf("hot-key count %d not Zipf-skewed (uniform share %.2f)", hot, uniform)
	}
}

func TestETCValueSizes(t *testing.T) {
	e := newETC(t, 3)
	var sum float64
	const n = 100000
	for i := 0; i < n; i++ {
		v := e.ValueSize()
		if v < 1 || v > 1<<20 {
			t.Fatalf("value size %d out of [1, 1MiB]", v)
		}
		sum += float64(v)
	}
	mean := sum / n
	// GPD(0, 214.476, 0.348) has mean σ/(1−k) ≈ 329 B.
	if mean < 250 || mean > 450 {
		t.Errorf("mean value size = %v B, want ≈330 B (ETC)", mean)
	}
}

func TestETCMeanValueSize(t *testing.T) {
	cfg := DefaultETCConfig()
	// Analytic value: σ/(1−k) + 1 for the published ETC constants.
	want := cfg.ValueScale/(1-cfg.ValueShape) + 1
	if got := cfg.MeanValueSize(); got != want {
		t.Errorf("MeanValueSize = %v, want %v", got, want)
	}
	if got := cfg.MeanValueSize(); got < 329 || got > 331 {
		t.Errorf("MeanValueSize = %v B, want ≈330 B (ETC)", got)
	}

	// The analytic mean must agree with the empirical draw it models.
	e := newETC(t, 17)
	var sum float64
	const n = 200000
	for i := 0; i < n; i++ {
		sum += float64(e.ValueSize())
	}
	empirical := sum / n
	if math.Abs(empirical-cfg.MeanValueSize())/cfg.MeanValueSize() > 0.05 {
		t.Errorf("empirical mean %v differs from analytic %v by >5%%", empirical, cfg.MeanValueSize())
	}

	// A shape ≥ 1 has no finite mean.
	cfg.ValueShape = 1
	if !math.IsInf(cfg.MeanValueSize(), 1) {
		t.Errorf("MeanValueSize with shape 1 = %v, want +Inf", cfg.MeanValueSize())
	}
}

func TestETCKeySizes(t *testing.T) {
	e := newETC(t, 4)
	for i := 0; i < 10000; i++ {
		k := e.KeySize()
		if k < 16 || k > 250 {
			t.Fatalf("key size %d out of ETC range [16, 250]", k)
		}
	}
}

func TestETCSetsCarryValueSize(t *testing.T) {
	e := newETC(t, 5)
	for i := 0; i < 10000; i++ {
		r := e.Next()
		if r.Op == OpSet && r.ValueSize < 1 {
			t.Fatal("SET without value size")
		}
		if r.Op == OpGet && r.ValueSize != 0 {
			t.Fatal("GET with value size")
		}
		if !strings.HasPrefix(r.Key, "etc-") {
			t.Fatalf("unexpected key %q", r.Key)
		}
	}
}

func TestETCConfigValidation(t *testing.T) {
	bad := DefaultETCConfig()
	bad.Keys = 0
	if _, err := NewETC(bad, rng.New(1)); err == nil {
		t.Error("zero keys accepted")
	}
	bad = DefaultETCConfig()
	bad.GetRatio = 1.5
	if _, err := NewETC(bad, rng.New(1)); err == nil {
		t.Error("GET ratio >1 accepted")
	}
	bad = DefaultETCConfig()
	bad.ZipfAlpha = 0
	if _, err := NewETC(bad, rng.New(1)); err == nil {
		t.Error("zero alpha accepted")
	}
}

func TestExponentialArrivalsMeanRate(t *testing.T) {
	ia, err := NewExponentialArrivals(100000, rng.New(6)) // 100 KQPS → mean 10µs
	if err != nil {
		t.Fatal(err)
	}
	var total time.Duration
	const n = 100000
	for i := 0; i < n; i++ {
		d := ia.Next()
		if d < 0 {
			t.Fatal("negative interarrival")
		}
		total += d
	}
	mean := total / n
	if mean < 9700*time.Nanosecond || mean > 10300*time.Nanosecond {
		t.Errorf("mean interarrival = %v, want ≈10µs", mean)
	}
	if ia.Rate() != 100000 {
		t.Errorf("Rate = %v", ia.Rate())
	}
}

func TestFixedArrivals(t *testing.T) {
	ia, err := NewFixedArrivals(1000)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 10; i++ {
		if got := ia.Next(); got != time.Millisecond {
			t.Fatalf("fixed interarrival = %v, want 1ms", got)
		}
	}
	if math.Abs(ia.Rate()-1000) > 1e-9 {
		t.Errorf("Rate = %v, want 1000", ia.Rate())
	}
}

func TestArrivalValidation(t *testing.T) {
	if _, err := NewExponentialArrivals(0, rng.New(1)); err == nil {
		t.Error("zero rate accepted")
	}
	if _, err := NewFixedArrivals(-5); err == nil {
		t.Error("negative rate accepted")
	}
}

func TestLittleLaw(t *testing.T) {
	// The paper's synthetic setup: 20K QPS at 410µs residence → L = 8.2,
	// below the 10 available cores.
	l := LittleLawConcurrency(20000, 410*time.Microsecond)
	if math.Abs(l-8.2) > 1e-9 {
		t.Errorf("L = %v, want 8.2", l)
	}
	r := MaxRateForConcurrency(10, 410*time.Microsecond)
	if math.Abs(r-10/410e-6) > 1e-6 {
		t.Errorf("max rate = %v", r)
	}
	if !math.IsInf(MaxRateForConcurrency(10, 0), 1) {
		t.Error("zero residence should allow infinite rate")
	}
}

func TestUtilization(t *testing.T) {
	// Paper: Memcached at 500 KQPS with ~10µs service on 10 workers ≈ 50%.
	u := Utilization(500000, 10*time.Microsecond, 10)
	if math.Abs(u-0.5) > 1e-9 {
		t.Errorf("utilization = %v, want 0.5", u)
	}
	if !math.IsInf(Utilization(1, time.Second, 0), 1) {
		t.Error("zero servers should be infinite utilization")
	}
}

func TestOpString(t *testing.T) {
	if OpGet.String() != "GET" || OpSet.String() != "SET" {
		t.Error("op names wrong")
	}
}
