package workload

import (
	"math"
	"testing"
	"time"

	"repro/internal/rng"
)

// drawGaps collects n inter-arrival gaps in seconds.
func drawGaps(t *testing.T, src Interarrival, n int) []float64 {
	t.Helper()
	gaps := make([]float64, n)
	for i := range gaps {
		gaps[i] = src.Next().Seconds()
	}
	return gaps
}

func meanStd(xs []float64) (mean, std float64) {
	for _, x := range xs {
		mean += x
	}
	mean /= float64(len(xs))
	for _, x := range xs {
		std += (x - mean) * (x - mean)
	}
	return mean, math.Sqrt(std / float64(len(xs)))
}

// TestArrivalProcessMeanRates checks every process averages its nominal
// rate: the property that lets a spec swap the process without changing
// the offered load.
func TestArrivalProcessMeanRates(t *testing.T) {
	const rate = 1000.0
	cases := []struct {
		name string
		cfg  ArrivalConfig
	}{
		{"poisson", ArrivalConfig{}},
		{"fixed", ArrivalConfig{Process: ArrivalFixed}},
		{"gamma-bursty", ArrivalConfig{Process: ArrivalGamma, CV: 3}},
		{"gamma-regular", ArrivalConfig{Process: ArrivalGamma, CV: 0.5}},
		{"weibull-heavy", ArrivalConfig{Process: ArrivalWeibull, Shape: 0.6}},
		{"weibull-regular", ArrivalConfig{Process: ArrivalWeibull, Shape: 2}},
		{"onoff", ArrivalConfig{Process: ArrivalOnOff, OnMean: 100 * time.Millisecond, OffMean: 300 * time.Millisecond}},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			src, err := tc.cfg.New(rate, rng.NewLabeled(7, tc.name))
			if err != nil {
				t.Fatal(err)
			}
			// ON/OFF averages over session cycles, not individual gaps,
			// so it needs far more draws for the rate to settle.
			n := 200_000
			if tc.cfg.Process == ArrivalOnOff {
				n = 1_500_000
			}
			gaps := drawGaps(t, src, n)
			mean, _ := meanStd(gaps)
			if got := 1 / mean; math.Abs(got-rate)/rate > 0.05 {
				t.Errorf("empirical rate %.1f, want %.1f ±5%%", got, rate)
			}
			if src.Rate() != rate {
				t.Errorf("Rate() = %v, want %v", src.Rate(), rate)
			}
		})
	}
}

// TestGammaArrivalsCV pins the burstiness knob: the empirical
// coefficient of variation of the gaps tracks the configured cv.
func TestGammaArrivalsCV(t *testing.T) {
	for _, cv := range []float64{0.5, 1, 2, 4} {
		src, err := NewGammaArrivals(500, cv, rng.NewLabeled(11, "gamma-cv"))
		if err != nil {
			t.Fatal(err)
		}
		gaps := drawGaps(t, src, 100_000)
		mean, std := meanStd(gaps)
		if got := std / mean; math.Abs(got-cv)/cv > 0.08 {
			t.Errorf("cv=%v: empirical CV %.3f, want within 8%%", cv, got)
		}
	}
}

// TestOnOffArrivalsBurstier checks that session arrivals are burstier
// than Poisson at the same average rate: the gap CV must exceed 1 by a
// clear margin.
func TestOnOffArrivalsBurstier(t *testing.T) {
	src, err := NewOnOffArrivals(1000, 50*time.Millisecond, 450*time.Millisecond, rng.NewLabeled(13, "onoff"))
	if err != nil {
		t.Fatal(err)
	}
	gaps := drawGaps(t, src, 200_000)
	mean, std := meanStd(gaps)
	if cv := std / mean; cv < 1.5 {
		t.Errorf("ON/OFF gap CV %.2f, want clearly burstier than Poisson (>1.5)", cv)
	}
}

// TestWeibullArrivalsShape checks the tail ordering: a sub-1 shape has a
// larger gap CV than Poisson (cv 1), a super-1 shape a smaller one.
func TestWeibullArrivalsShape(t *testing.T) {
	cvOf := func(shape float64) float64 {
		src, err := NewWeibullArrivals(500, shape, rng.NewLabeled(17, "weibull-shape"))
		if err != nil {
			t.Fatal(err)
		}
		gaps := drawGaps(t, src, 100_000)
		mean, std := meanStd(gaps)
		return std / mean
	}
	if heavy := cvOf(0.5); heavy < 1.5 {
		t.Errorf("shape 0.5 CV %.2f, want heavy-tailed (>1.5)", heavy)
	}
	if regular := cvOf(3); regular > 0.5 {
		t.Errorf("shape 3 CV %.2f, want near-regular (<0.5)", regular)
	}
}

// TestArrivalConfigDeterministic pins that equal configs on equal
// streams replay identical gap sequences — the labeled-stream property
// every determinism guarantee above this layer depends on.
func TestArrivalConfigDeterministic(t *testing.T) {
	cfg := ArrivalConfig{Process: ArrivalOnOff, OnMean: 20 * time.Millisecond, OffMean: 80 * time.Millisecond}
	a, err := cfg.New(2000, rng.NewLabeled(3, "det"))
	if err != nil {
		t.Fatal(err)
	}
	b, err := cfg.New(2000, rng.NewLabeled(3, "det"))
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 10_000; i++ {
		if ga, gb := a.Next(), b.Next(); ga != gb {
			t.Fatalf("draw %d: %v != %v", i, ga, gb)
		}
	}
}

// TestArrivalConfigValidate covers the spec-hardening table: parameter
// domains that would produce NaN gaps or a generator that never fires
// must be rejected with descriptive errors.
func TestArrivalConfigValidate(t *testing.T) {
	bad := []ArrivalConfig{
		{Process: "bogus"},
		{Process: ArrivalGamma},                                    // cv unset
		{Process: ArrivalGamma, CV: -1},                            // cv negative
		{Process: ArrivalGamma, CV: math.NaN()},                    // cv NaN
		{Process: ArrivalWeibull},                                  // shape unset
		{Process: ArrivalWeibull, Shape: -0.5},                     // shape negative
		{Process: ArrivalWeibull, Shape: math.Inf(1)},              // shape inf
		{Process: ArrivalOnOff},                                    // means unset
		{Process: ArrivalOnOff, OnMean: time.Second},               // off unset
		{Process: ArrivalOnOff, OnMean: -time.Second, OffMean: 1},  // on negative
		{Process: ArrivalOnOff, OnMean: time.Second, OffMean: -1},  // off negative
	}
	for _, cfg := range bad {
		if err := cfg.Validate(); err == nil {
			t.Errorf("%+v: validated, want error", cfg)
		}
		if _, err := cfg.New(100, rng.New(1)); err == nil {
			t.Errorf("%+v: New succeeded, want error", cfg)
		}
	}
	// Zero and negative rates are rejected for every process.
	for _, cfg := range []ArrivalConfig{{}, {Process: ArrivalGamma, CV: 2}, {Process: ArrivalWeibull, Shape: 0.7}, {Process: ArrivalOnOff, OnMean: time.Second, OffMean: time.Second}} {
		for _, rate := range []float64{0, -10} {
			if _, err := cfg.New(rate, rng.New(1)); err == nil {
				t.Errorf("%+v rate=%v: New succeeded, want error", cfg, rate)
			}
		}
	}
}

// TestGammaWeibullSamplerMoments sanity-checks the new rng samplers the
// arrival processes are built on.
func TestGammaWeibullSamplerMoments(t *testing.T) {
	s := rng.NewLabeled(23, "moments")
	const n = 200_000
	var sum float64
	for i := 0; i < n; i++ {
		sum += s.Gamma(0.5, 2)
	}
	if mean := sum / n; math.Abs(mean-1) > 0.05 {
		t.Errorf("Gamma(0.5,2) mean %.3f, want ≈1", mean)
	}
	sum = 0
	for i := 0; i < n; i++ {
		sum += s.Weibull(2, 1)
	}
	want := math.Gamma(1.5) // ≈0.8862
	if mean := sum / n; math.Abs(mean-want) > 0.02 {
		t.Errorf("Weibull(2,1) mean %.4f, want ≈%.4f", mean, want)
	}
}
