// Package workload models the request populations the paper's generators
// replay: the Facebook ETC key-value workload for Memcached (Atikoglu et
// al., SIGMETRICS'12 [5], the workload Mutilate is configured to recreate,
// §IV-B), feature-vector queries for HDSearch, read-user-timeline requests
// for Social Network, and the tunable-delay synthetic workload. It also
// provides the inter-arrival time distributions (the paper's "load
// intensity") and Little's-law helpers used to size experiments (§V-B).
package workload

import (
	"fmt"
	"math"
	"sync"
	"time"

	"repro/internal/rng"
)

// Op is a key-value operation type.
type Op int

const (
	OpGet Op = iota
	OpSet
)

func (o Op) String() string {
	if o == OpGet {
		return "GET"
	}
	return "SET"
}

// KVRequest is one generated key-value request.
type KVRequest struct {
	Op        Op
	Key       string
	ValueSize int // bytes; 0 for GET
}

// ETCConfig parameterizes the ETC workload model. The constants follow the
// published characterization: small keys (16–250 B, mostly 20–45 B),
// generalized-Pareto value sizes, a ~30:1 GET:SET ratio, and a Zipfian
// popularity skew.
type ETCConfig struct {
	Keys       int     // key-space size
	GetRatio   float64 // fraction of GETs (ETC: ≈0.97)
	ZipfAlpha  float64 // popularity skew (≈0.99 for caching workloads)
	ValueScale float64 // GPD σ for value sizes (ETC: 214.476)
	ValueShape float64 // GPD k for value sizes (ETC: 0.348238)
}

// DefaultETCConfig returns the ETC parameters from the SIGMETRICS'12
// characterization with a 1M-key space.
func DefaultETCConfig() ETCConfig {
	return ETCConfig{
		Keys:       1 << 20,
		GetRatio:   0.967,
		ZipfAlpha:  0.99,
		ValueScale: 214.476,
		ValueShape: 0.348238,
	}
}

// Validate reports configuration errors.
func (c ETCConfig) Validate() error {
	if c.Keys < 1 {
		return fmt.Errorf("workload: key space must be ≥1, got %d", c.Keys)
	}
	if c.GetRatio < 0 || c.GetRatio > 1 {
		return fmt.Errorf("workload: GET ratio %v outside [0,1]", c.GetRatio)
	}
	if c.ZipfAlpha <= 0 {
		return fmt.Errorf("workload: Zipf alpha must be positive, got %v", c.ZipfAlpha)
	}
	return nil
}

// Interned ETC key table. Key strings are a pure function of rank
// ("etc-%012d"), so every generator thread, every run and the Memcached
// preload can share one immutable table instead of fmt.Sprintf-ing a
// fresh string per request — the last per-request allocation on the
// key-value hot path. The table grows monotonically to the largest key
// space requested and is never mutated after publication; ETCKeys hands
// out sub-slices of it.
var (
	keyTableMu sync.Mutex
	keyTable   []string
)

// ETCKeys returns the interned key strings for ranks [0, n): index i is
// the key for rank i. The returned slice is shared and must not be
// modified. Building is deterministic, so concurrent callers always
// agree on the contents.
func ETCKeys(n int) []string {
	keyTableMu.Lock()
	defer keyTableMu.Unlock()
	if n > len(keyTable) {
		grown := make([]string, n)
		copy(grown, keyTable)
		for i := len(keyTable); i < n; i++ {
			grown[i] = fmt.Sprintf("etc-%012d", i)
		}
		keyTable = grown
	}
	return keyTable[:n:n]
}

// ETC draws requests following the ETC model. Not safe for concurrent use;
// derive one per generator connection group.
type ETC struct {
	cfg    ETCConfig
	stream *rng.Stream
	zipf   *rng.Zipf
	keys   []string // interned key table, index = popularity rank
}

// NewETC builds an ETC request source.
func NewETC(cfg ETCConfig, stream *rng.Stream) (*ETC, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	return &ETC{cfg: cfg, stream: stream, zipf: rng.NewZipf(stream, cfg.Keys, cfg.ZipfAlpha),
		keys: ETCKeys(cfg.Keys)}, nil
}

// Next draws one request. The key is an interned string from the shared
// table — drawing a request allocates nothing.
func (e *ETC) Next() KVRequest {
	rank := e.zipf.Draw()
	key := e.keys[rank]
	if e.stream.Float64() < e.cfg.GetRatio {
		return KVRequest{Op: OpGet, Key: key}
	}
	return KVRequest{Op: OpSet, Key: key, ValueSize: e.ValueSize()}
}

// ValueSize draws a value size in bytes from the generalized-Pareto ETC
// model, clamped to [1 B, 1 MiB] (memcached's item limit).
func (e *ETC) ValueSize() int {
	v := e.stream.GeneralizedPareto(0, e.cfg.ValueScale, e.cfg.ValueShape)
	size := int(v) + 1
	if size < 1 {
		size = 1
	}
	if size > 1<<20 {
		size = 1 << 20
	}
	return size
}

// MeanValueSize returns the expected value size in bytes under the
// configuration's generalized-Pareto model: E[GPD(0, σ, k)] = σ/(1−k)
// for k < 1, plus the +1 the draw in ValueSize applies. The [1 B, 1 MiB]
// clamp is ignored (its probability mass is negligible at the ETC
// parameters). For the published ETC constants this is ≈330 B — the mean
// response payload behind Memcached's calibrated ~10 µs service time.
func (c ETCConfig) MeanValueSize() float64 {
	if c.ValueShape >= 1 {
		return math.Inf(1) // heavy-tailed beyond a finite mean
	}
	return c.ValueScale/(1-c.ValueShape) + 1
}

// KeySize draws an ETC-like key size in bytes (16–250, centered ≈31).
func (e *ETC) KeySize() int {
	k := int(e.stream.LogNormal(3.43, 0.25)) // median ≈ 31 bytes
	if k < 16 {
		k = 16
	}
	if k > 250 {
		k = 250
	}
	return k
}

// Interarrival produces the time between successive requests — the paper's
// "load intensity" dimension of a workload generator (§II).
type Interarrival interface {
	// Next returns the gap before the next request.
	Next() time.Duration
	// Rate returns the nominal request rate in requests/second.
	Rate() float64
}

// exponentialArrivals models a Poisson arrival process (open-loop
// generators in the paper: Mutilate, the HDSearch client, wrk2).
type exponentialArrivals struct {
	rate   float64
	stream *rng.Stream
}

// NewExponentialArrivals returns Poisson arrivals at the given rate (QPS).
func NewExponentialArrivals(rate float64, stream *rng.Stream) (Interarrival, error) {
	if rate <= 0 {
		return nil, fmt.Errorf("workload: arrival rate must be positive, got %v", rate)
	}
	return &exponentialArrivals{rate: rate, stream: stream}, nil
}

func (e *exponentialArrivals) Next() time.Duration {
	return time.Duration(e.stream.Exp(e.rate) * float64(time.Second))
}

func (e *exponentialArrivals) Rate() float64 { return e.rate }

// fixedArrivals emits requests at exact intervals (deterministic pacing).
type fixedArrivals struct {
	interval time.Duration
}

// NewFixedArrivals returns deterministic arrivals at the given rate (QPS).
func NewFixedArrivals(rate float64) (Interarrival, error) {
	if rate <= 0 {
		return nil, fmt.Errorf("workload: arrival rate must be positive, got %v", rate)
	}
	return &fixedArrivals{interval: time.Duration(float64(time.Second) / rate)}, nil
}

func (f *fixedArrivals) Next() time.Duration { return f.interval }
func (f *fixedArrivals) Rate() float64       { return float64(time.Second) / float64(f.interval) }

// LittleLawConcurrency returns the mean number of in-flight requests for an
// open system with arrival rate λ (QPS) and mean residence time W — the
// L = λ·W rule the paper uses to choose synthetic-workload QPS values where
// concurrency stays below the worker count (§V-B).
func LittleLawConcurrency(rate float64, meanResidence time.Duration) float64 {
	return rate * meanResidence.Seconds()
}

// MaxRateForConcurrency inverts Little's law: the largest arrival rate that
// keeps mean concurrency at or below maxConcurrency.
func MaxRateForConcurrency(maxConcurrency float64, meanResidence time.Duration) float64 {
	if meanResidence <= 0 {
		return math.Inf(1)
	}
	return maxConcurrency / meanResidence.Seconds()
}

// Utilization returns offered utilization λ·S/k for arrival rate λ, mean
// service time S and k servers — the 5 %–55 % figures the paper quotes for
// the Memcached sweeps.
func Utilization(rate float64, meanService time.Duration, servers int) float64 {
	if servers <= 0 {
		return math.Inf(1)
	}
	return rate * meanService.Seconds() / float64(servers)
}
