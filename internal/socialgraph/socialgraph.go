// Package socialgraph implements the data layer of the DeathStarBench
// Social Network application the paper evaluates (§IV-B): a follow graph,
// post storage, and materialized per-user home timelines, supporting the
// compose-post and read-user-timeline operations the paper's client issues.
//
// The paper initializes the social graph from the "Reed98 Facebook
// Networks" dataset (962 vertices, ~18.8k edges); GenerateReed98Like
// synthesizes a graph with the same scale and a comparable skewed degree
// distribution, since the original dataset is not redistributable here.
package socialgraph

import (
	"errors"
	"fmt"
	"sort"
	"sync"

	"repro/internal/rng"
)

// Common errors.
var (
	ErrNoSuchUser = errors.New("socialgraph: no such user")
	ErrNoSuchPost = errors.New("socialgraph: no such post")
)

// UserID identifies a user.
type UserID int

// PostID identifies a post.
type PostID int64

// Post is one stored post.
type Post struct {
	ID        PostID
	Author    UserID
	Text      string
	Timestamp int64 // virtual nanoseconds
}

// Graph is the social-network data store. It is safe for concurrent use.
type Graph struct {
	mu sync.RWMutex

	followers map[UserID][]UserID // who follows u
	following map[UserID][]UserID // whom u follows
	edges     int
	posts     map[PostID]Post
	nextPost  PostID

	// userTimeline holds a user's own posts, newest first.
	userTimeline map[UserID][]PostID
	// homeTimeline holds the posts of everyone a user follows (fan-out on
	// write, as the real Social Network's write path materializes
	// home timelines into Redis), newest first.
	homeTimeline map[UserID][]PostID

	numUsers int
}

// TimelineCap bounds materialized timelines, like the benchmark's Redis
// timeline trimming.
const TimelineCap = 1000

// New creates a graph with n users (IDs 0..n−1) and no edges.
func New(n int) (*Graph, error) {
	if n < 1 {
		return nil, fmt.Errorf("socialgraph: need ≥1 user, got %d", n)
	}
	return &Graph{
		followers:    make(map[UserID][]UserID),
		following:    make(map[UserID][]UserID),
		posts:        make(map[PostID]Post),
		userTimeline: make(map[UserID][]PostID),
		homeTimeline: make(map[UserID][]PostID),
		numUsers:     n,
		nextPost:     1,
	}, nil
}

// NumUsers returns the number of registered users.
func (g *Graph) NumUsers() int { return g.numUsers }

func (g *Graph) checkUser(u UserID) error {
	if u < 0 || int(u) >= g.numUsers {
		return fmt.Errorf("%w: %d", ErrNoSuchUser, u)
	}
	return nil
}

// Follow adds a directed follow edge (follower → followee). Duplicate
// edges and self-follows are ignored.
func (g *Graph) Follow(follower, followee UserID) error {
	if err := g.checkUser(follower); err != nil {
		return err
	}
	if err := g.checkUser(followee); err != nil {
		return err
	}
	if follower == followee {
		return nil
	}
	g.mu.Lock()
	defer g.mu.Unlock()
	for _, f := range g.following[follower] {
		if f == followee {
			return nil
		}
	}
	g.following[follower] = append(g.following[follower], followee)
	g.followers[followee] = append(g.followers[followee], follower)
	g.edges++
	return nil
}

// Followers returns who follows u.
func (g *Graph) Followers(u UserID) ([]UserID, error) {
	if err := g.checkUser(u); err != nil {
		return nil, err
	}
	g.mu.RLock()
	defer g.mu.RUnlock()
	return append([]UserID(nil), g.followers[u]...), nil
}

// Following returns whom u follows.
func (g *Graph) Following(u UserID) ([]UserID, error) {
	if err := g.checkUser(u); err != nil {
		return nil, err
	}
	g.mu.RLock()
	defer g.mu.RUnlock()
	return append([]UserID(nil), g.following[u]...), nil
}

// NumEdges returns the number of follow edges.
func (g *Graph) NumEdges() int {
	g.mu.RLock()
	defer g.mu.RUnlock()
	return g.edges
}

// ComposePost stores a post by author and fans it out to the author's
// followers' home timelines. It returns the new post's ID and the fan-out
// size (work proportional to follower count — the service model uses this
// to scale compose latency).
func (g *Graph) ComposePost(author UserID, text string, now int64) (PostID, int, error) {
	if err := g.checkUser(author); err != nil {
		return 0, 0, err
	}
	g.mu.Lock()
	defer g.mu.Unlock()
	id := g.nextPost
	g.nextPost++
	g.posts[id] = Post{ID: id, Author: author, Text: text, Timestamp: now}

	g.userTimeline[author] = prependCapped(g.userTimeline[author], id)
	fanout := g.followers[author]
	for _, f := range fanout {
		g.homeTimeline[f] = prependCapped(g.homeTimeline[f], id)
	}
	return id, len(fanout), nil
}

func prependCapped(tl []PostID, id PostID) []PostID {
	tl = append(tl, 0)
	copy(tl[1:], tl)
	tl[0] = id
	if len(tl) > TimelineCap {
		tl = tl[:TimelineCap]
	}
	return tl
}

// ReadUserTimeline returns up to limit of u's own posts, newest first —
// the read-user-timeline request type the paper's client issues
// exclusively (§IV-B).
func (g *Graph) ReadUserTimeline(u UserID, limit int) ([]Post, error) {
	if err := g.checkUser(u); err != nil {
		return nil, err
	}
	g.mu.RLock()
	defer g.mu.RUnlock()
	return g.materialize(g.userTimeline[u], limit), nil
}

// ReadHomeTimeline returns up to limit posts from u's home timeline.
func (g *Graph) ReadHomeTimeline(u UserID, limit int) ([]Post, error) {
	if err := g.checkUser(u); err != nil {
		return nil, err
	}
	g.mu.RLock()
	defer g.mu.RUnlock()
	return g.materialize(g.homeTimeline[u], limit), nil
}

func (g *Graph) materialize(ids []PostID, limit int) []Post {
	if limit <= 0 || limit > len(ids) {
		limit = len(ids)
	}
	out := make([]Post, 0, limit)
	for _, id := range ids[:limit] {
		if p, ok := g.posts[id]; ok {
			out = append(out, p)
		}
	}
	return out
}

// GetPost returns one post by ID.
func (g *Graph) GetPost(id PostID) (Post, error) {
	g.mu.RLock()
	defer g.mu.RUnlock()
	p, ok := g.posts[id]
	if !ok {
		return Post{}, fmt.Errorf("%w: %d", ErrNoSuchPost, id)
	}
	return p, nil
}

// NumPosts returns the number of stored posts.
func (g *Graph) NumPosts() int {
	g.mu.RLock()
	defer g.mu.RUnlock()
	return len(g.posts)
}

// DegreeStats summarizes the follower-degree distribution.
type DegreeStats struct {
	MaxDegree  int
	MeanDegree float64
}

// Degrees returns follower-degree statistics.
func (g *Graph) Degrees() DegreeStats {
	g.mu.RLock()
	defer g.mu.RUnlock()
	var ds DegreeStats
	total := 0
	for _, f := range g.followers {
		d := len(f)
		total += d
		if d > ds.MaxDegree {
			ds.MaxDegree = d
		}
	}
	if g.numUsers > 0 {
		ds.MeanDegree = float64(total) / float64(g.numUsers)
	}
	return ds
}

// GenerateReed98Like builds a synthetic graph with the scale of the Reed98
// Facebook network (962 users, ≈18.8k directed edges) and a skewed degree
// distribution, using preferential attachment so a few users have many
// followers — the property that makes compose-post fan-out variable.
func GenerateReed98Like(seed uint64) (*Graph, error) {
	const users = 962
	const targetEdges = 18812
	g, err := New(users)
	if err != nil {
		return nil, err
	}
	stream := rng.NewLabeled(seed, "reed98-graph")
	// Preferential attachment over a random backbone: each user follows
	// ~targetEdges/users others, biased toward already-popular users via a
	// Zipf rank draw over a shuffled popularity order.
	perm := make([]UserID, users)
	for i := range perm {
		perm[i] = UserID(i)
	}
	for i := users - 1; i > 0; i-- {
		j := stream.Intn(i + 1)
		perm[i], perm[j] = perm[j], perm[i]
	}
	zipf := rng.NewZipf(stream, users, 0.8)
	edges := 0
	for edges < targetEdges {
		follower := UserID(stream.Intn(users))
		followee := perm[zipf.Draw()]
		if follower == followee {
			continue
		}
		before := g.NumEdges()
		if err := g.Follow(follower, followee); err != nil {
			return nil, err
		}
		if g.NumEdges() > before {
			edges++
		}
	}
	return g, nil
}

// SeedPosts fills the database with posts before a run, as the paper does
// ("before each run we fill the database of the application with posts
// using compose-post queries"). Every user receives at least minPerUser
// posts on their user timeline.
func (g *Graph) SeedPosts(minPerUser int, stream *rng.Stream, now int64) error {
	for u := 0; u < g.numUsers; u++ {
		for p := 0; p < minPerUser; p++ {
			text := fmt.Sprintf("seed post %d by user %d", p, u)
			if _, _, err := g.ComposePost(UserID(u), text, now); err != nil {
				return err
			}
		}
	}
	return nil
}

// TopUsersByFollowers returns the n most-followed users, for examples and
// diagnostics.
func (g *Graph) TopUsersByFollowers(n int) []UserID {
	g.mu.RLock()
	defer g.mu.RUnlock()
	ids := make([]UserID, 0, len(g.followers))
	for u := range g.followers {
		ids = append(ids, u)
	}
	sort.Slice(ids, func(a, b int) bool {
		la, lb := len(g.followers[ids[a]]), len(g.followers[ids[b]])
		if la != lb {
			return la > lb
		}
		return ids[a] < ids[b]
	})
	if n > len(ids) {
		n = len(ids)
	}
	return ids[:n]
}
