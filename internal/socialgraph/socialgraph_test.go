package socialgraph

import (
	"errors"
	"fmt"
	"sync"
	"testing"

	"repro/internal/rng"
)

func newGraph(t *testing.T, n int) *Graph {
	t.Helper()
	g, err := New(n)
	if err != nil {
		t.Fatal(err)
	}
	return g
}

func TestNewValidation(t *testing.T) {
	if _, err := New(0); err == nil {
		t.Error("zero users accepted")
	}
}

func TestFollowAndQueries(t *testing.T) {
	g := newGraph(t, 3)
	if err := g.Follow(0, 1); err != nil {
		t.Fatal(err)
	}
	if err := g.Follow(2, 1); err != nil {
		t.Fatal(err)
	}
	followers, err := g.Followers(1)
	if err != nil {
		t.Fatal(err)
	}
	if len(followers) != 2 {
		t.Errorf("followers of 1 = %v, want 2 users", followers)
	}
	following, err := g.Following(0)
	if err != nil {
		t.Fatal(err)
	}
	if len(following) != 1 || following[0] != 1 {
		t.Errorf("following of 0 = %v, want [1]", following)
	}
	if g.NumEdges() != 2 {
		t.Errorf("edges = %d, want 2", g.NumEdges())
	}
}

func TestFollowIgnoresDuplicatesAndSelf(t *testing.T) {
	g := newGraph(t, 2)
	g.Follow(0, 1)
	g.Follow(0, 1)
	g.Follow(0, 0)
	if g.NumEdges() != 1 {
		t.Errorf("edges = %d, want 1", g.NumEdges())
	}
}

func TestFollowUnknownUser(t *testing.T) {
	g := newGraph(t, 2)
	if err := g.Follow(0, 5); !errors.Is(err, ErrNoSuchUser) {
		t.Errorf("want ErrNoSuchUser, got %v", err)
	}
	if err := g.Follow(-1, 0); !errors.Is(err, ErrNoSuchUser) {
		t.Errorf("want ErrNoSuchUser, got %v", err)
	}
}

func TestComposePostFanout(t *testing.T) {
	g := newGraph(t, 4)
	g.Follow(1, 0)
	g.Follow(2, 0)
	g.Follow(3, 0)
	id, fanout, err := g.ComposePost(0, "hello", 100)
	if err != nil {
		t.Fatal(err)
	}
	if fanout != 3 {
		t.Errorf("fanout = %d, want 3", fanout)
	}
	p, err := g.GetPost(id)
	if err != nil {
		t.Fatal(err)
	}
	if p.Author != 0 || p.Text != "hello" || p.Timestamp != 100 {
		t.Errorf("post = %+v", p)
	}
	// All three followers see the post on their home timeline.
	for u := UserID(1); u <= 3; u++ {
		tl, err := g.ReadHomeTimeline(u, 10)
		if err != nil {
			t.Fatal(err)
		}
		if len(tl) != 1 || tl[0].ID != id {
			t.Errorf("home timeline of %d = %v", u, tl)
		}
	}
	// A non-follower does not.
	tl, _ := g.ReadHomeTimeline(0, 10)
	if len(tl) != 0 {
		t.Errorf("author's home timeline = %v, want empty", tl)
	}
}

func TestReadUserTimelineNewestFirst(t *testing.T) {
	g := newGraph(t, 1)
	for i := 0; i < 5; i++ {
		if _, _, err := g.ComposePost(0, fmt.Sprintf("p%d", i), int64(i)); err != nil {
			t.Fatal(err)
		}
	}
	tl, err := g.ReadUserTimeline(0, 3)
	if err != nil {
		t.Fatal(err)
	}
	if len(tl) != 3 {
		t.Fatalf("timeline length = %d, want 3", len(tl))
	}
	if tl[0].Text != "p4" || tl[1].Text != "p3" || tl[2].Text != "p2" {
		t.Errorf("timeline order wrong: %v", tl)
	}
	// limit 0 → all posts.
	all, _ := g.ReadUserTimeline(0, 0)
	if len(all) != 5 {
		t.Errorf("unlimited timeline = %d posts, want 5", len(all))
	}
}

func TestTimelineCap(t *testing.T) {
	g := newGraph(t, 2)
	g.Follow(1, 0)
	for i := 0; i < TimelineCap+50; i++ {
		g.ComposePost(0, "x", int64(i))
	}
	tl, _ := g.ReadHomeTimeline(1, 0)
	if len(tl) != TimelineCap {
		t.Errorf("home timeline = %d posts, want capped at %d", len(tl), TimelineCap)
	}
	utl, _ := g.ReadUserTimeline(0, 0)
	if len(utl) != TimelineCap {
		t.Errorf("user timeline = %d posts, want capped at %d", len(utl), TimelineCap)
	}
	// Newest survives the cap.
	if tl[0].Timestamp != int64(TimelineCap+49) {
		t.Errorf("newest post timestamp = %d", tl[0].Timestamp)
	}
}

func TestGetPostMissing(t *testing.T) {
	g := newGraph(t, 1)
	if _, err := g.GetPost(42); !errors.Is(err, ErrNoSuchPost) {
		t.Errorf("want ErrNoSuchPost, got %v", err)
	}
}

func TestTimelineOfUnknownUser(t *testing.T) {
	g := newGraph(t, 1)
	if _, err := g.ReadUserTimeline(7, 1); !errors.Is(err, ErrNoSuchUser) {
		t.Errorf("want ErrNoSuchUser, got %v", err)
	}
	if _, err := g.ReadHomeTimeline(7, 1); !errors.Is(err, ErrNoSuchUser) {
		t.Errorf("want ErrNoSuchUser, got %v", err)
	}
}

func TestGenerateReed98LikeScale(t *testing.T) {
	g, err := GenerateReed98Like(1)
	if err != nil {
		t.Fatal(err)
	}
	if g.NumUsers() != 962 {
		t.Errorf("users = %d, want 962", g.NumUsers())
	}
	if got := g.NumEdges(); got != 18812 {
		t.Errorf("edges = %d, want 18812", got)
	}
	// Skew: the most-followed user should have far more than the mean.
	ds := g.Degrees()
	if ds.MaxDegree < int(3*ds.MeanDegree) {
		t.Errorf("degree distribution not skewed: max=%d mean=%.1f", ds.MaxDegree, ds.MeanDegree)
	}
}

func TestGenerateReed98LikeDeterministic(t *testing.T) {
	a, err := GenerateReed98Like(7)
	if err != nil {
		t.Fatal(err)
	}
	b, err := GenerateReed98Like(7)
	if err != nil {
		t.Fatal(err)
	}
	fa, _ := a.Followers(0)
	fb, _ := b.Followers(0)
	if len(fa) != len(fb) {
		t.Error("same seed produced different graphs")
	}
}

func TestSeedPosts(t *testing.T) {
	g := newGraph(t, 10)
	if err := g.SeedPosts(3, rng.New(1), 0); err != nil {
		t.Fatal(err)
	}
	if g.NumPosts() != 30 {
		t.Errorf("posts = %d, want 30", g.NumPosts())
	}
	for u := 0; u < 10; u++ {
		tl, err := g.ReadUserTimeline(UserID(u), 0)
		if err != nil {
			t.Fatal(err)
		}
		if len(tl) != 3 {
			t.Errorf("user %d timeline = %d posts, want 3", u, len(tl))
		}
	}
}

func TestTopUsersByFollowers(t *testing.T) {
	g := newGraph(t, 5)
	g.Follow(1, 0)
	g.Follow(2, 0)
	g.Follow(3, 0)
	g.Follow(2, 1)
	top := g.TopUsersByFollowers(2)
	if len(top) != 2 || top[0] != 0 || top[1] != 1 {
		t.Errorf("top = %v, want [0 1]", top)
	}
}

func TestConcurrentComposeAndRead(t *testing.T) {
	g, err := GenerateReed98Like(3)
	if err != nil {
		t.Fatal(err)
	}
	var wg sync.WaitGroup
	for w := 0; w < 4; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < 200; i++ {
				u := UserID((w*200 + i) % g.NumUsers())
				if i%3 == 0 {
					g.ComposePost(u, "concurrent", int64(i))
				} else {
					g.ReadUserTimeline(u, 10)
					g.ReadHomeTimeline(u, 10)
				}
			}
		}(w)
	}
	wg.Wait()
}

func BenchmarkComposePost(b *testing.B) {
	g, err := GenerateReed98Like(1)
	if err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		g.ComposePost(UserID(i%g.NumUsers()), "bench post", int64(i))
	}
}

func BenchmarkReadUserTimeline(b *testing.B) {
	g, err := GenerateReed98Like(1)
	if err != nil {
		b.Fatal(err)
	}
	g.SeedPosts(10, rng.New(1), 0)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		g.ReadUserTimeline(UserID(i%g.NumUsers()), 10)
	}
}
