package netmodel

import (
	"testing"
	"time"

	"repro/internal/rng"
	"repro/internal/sim"
)

func TestDelayAroundBase(t *testing.T) {
	l, err := New(DefaultConfig(), rng.New(1))
	if err != nil {
		t.Fatal(err)
	}
	var total time.Duration
	const n = 10000
	for i := 0; i < n; i++ {
		d := l.Delay(0)
		if d <= 0 {
			t.Fatalf("non-positive delay %v", d)
		}
		total += d
	}
	mean := total / n
	if mean < 4500*time.Nanosecond || mean > 5700*time.Nanosecond {
		t.Errorf("mean zero-byte delay = %v, want ≈5µs", mean)
	}
	if l.Delivered() != n {
		t.Errorf("delivered = %d, want %d", l.Delivered(), n)
	}
}

func TestDelayGrowsWithSize(t *testing.T) {
	cfg := DefaultConfig()
	cfg.JitterSD = 0 // deterministic for the comparison
	l, err := New(cfg, rng.New(2))
	if err != nil {
		t.Fatal(err)
	}
	small := l.Delay(64)
	big := l.Delay(64 * 1024)
	if big <= small {
		t.Errorf("64KiB delay %v not above 64B delay %v", big, small)
	}
	// 64 KiB at 0.8 ns/B ≈ 52µs of serialization on top of 5µs base.
	if big < 40*time.Microsecond || big > 80*time.Microsecond {
		t.Errorf("64KiB delay = %v, want ≈57µs", big)
	}
}

func TestDeterministicWithoutJitter(t *testing.T) {
	cfg := DefaultConfig()
	cfg.JitterSD = 0
	l, _ := New(cfg, rng.New(3))
	if l.Delay(100) != l.Delay(100) {
		t.Error("jitter-free link not deterministic")
	}
}

func TestConfigValidation(t *testing.T) {
	if _, err := New(Config{Base: -time.Microsecond}, rng.New(1)); err == nil {
		t.Error("negative base accepted")
	}
	if _, err := New(Config{JitterSD: -1}, rng.New(1)); err == nil {
		t.Error("negative jitter accepted")
	}
}

func TestLoopbackSlowerBaseThanRack(t *testing.T) {
	lo := Loopback(rng.New(4))
	rack, _ := New(DefaultConfig(), rng.New(5))
	var loTotal, rackTotal time.Duration
	for i := 0; i < 1000; i++ {
		loTotal += lo.Delay(200)
		rackTotal += rack.Delay(200)
	}
	if loTotal <= rackTotal {
		t.Error("loopback/bridge path should be slower than the rack link (container networking overhead)")
	}
}

// deliverSink counts typed deliveries for the benchmark below.
type deliverSink struct{ n uint64 }

func (s *deliverSink) OnEvent(_ sim.Time, arg sim.EventArg) { s.n += arg.U64 }

// BenchmarkLinkDeliver measures one typed delivery end to end — jitter
// draw, schedule on the engine's timer wheel, fire into the sink — the
// per-message cost every simulated request pays twice (request and
// response links). Steady state must be 0 B/op: the event comes from
// the engine pool and the sink argument carries no boxed values.
// Re-benchmarked for the timer-wheel queue, which replaced the binary
// heap this path previously scheduled through.
func BenchmarkLinkDeliver(b *testing.B) {
	for _, pending := range []int{0, 10_000} {
		name := "idle"
		if pending > 0 {
			name = "pending10k"
		}
		b.Run(name, func(b *testing.B) {
			engine := sim.NewEngine()
			l, err := New(DefaultConfig(), rng.New(9))
			if err != nil {
				b.Fatal(err)
			}
			s := &deliverSink{}
			// A standing event population puts the schedule on the
			// wheel's realistic operating point (in-flight requests).
			// Fillers sit beyond the measured deliveries so every Step
			// below fires a delivery, never a filler.
			for i := 0; i < pending; i++ {
				engine.AfterSink(time.Hour+time.Duration(i)*time.Microsecond, s, sim.EventArg{})
			}
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				l.Deliver(engine, engine.Now(), 128, s, sim.EventArg{U64: 1})
				engine.Step()
			}
			b.StopTimer()
			if s.n == 0 {
				b.Fatal("no deliveries fired")
			}
		})
	}
}
