package netmodel

import (
	"fmt"
	"testing"
	"time"

	"repro/internal/rng"
	"repro/internal/sim"
)

func TestDelayAroundBase(t *testing.T) {
	l, err := New(DefaultConfig(), rng.New(1))
	if err != nil {
		t.Fatal(err)
	}
	var total time.Duration
	const n = 10000
	for i := 0; i < n; i++ {
		d := l.Delay(0)
		if d <= 0 {
			t.Fatalf("non-positive delay %v", d)
		}
		total += d
	}
	mean := total / n
	if mean < 4500*time.Nanosecond || mean > 5700*time.Nanosecond {
		t.Errorf("mean zero-byte delay = %v, want ≈5µs", mean)
	}
	if l.Delivered() != n {
		t.Errorf("delivered = %d, want %d", l.Delivered(), n)
	}
}

func TestDelayGrowsWithSize(t *testing.T) {
	cfg := DefaultConfig()
	cfg.JitterSD = 0 // deterministic for the comparison
	l, err := New(cfg, rng.New(2))
	if err != nil {
		t.Fatal(err)
	}
	small := l.Delay(64)
	big := l.Delay(64 * 1024)
	if big <= small {
		t.Errorf("64KiB delay %v not above 64B delay %v", big, small)
	}
	// 64 KiB at 0.8 ns/B ≈ 52µs of serialization on top of 5µs base.
	if big < 40*time.Microsecond || big > 80*time.Microsecond {
		t.Errorf("64KiB delay = %v, want ≈57µs", big)
	}
}

func TestDeterministicWithoutJitter(t *testing.T) {
	cfg := DefaultConfig()
	cfg.JitterSD = 0
	l, _ := New(cfg, rng.New(3))
	if l.Delay(100) != l.Delay(100) {
		t.Error("jitter-free link not deterministic")
	}
}

func TestConfigValidation(t *testing.T) {
	if _, err := New(Config{Base: -time.Microsecond}, rng.New(1)); err == nil {
		t.Error("negative base accepted")
	}
	if _, err := New(Config{JitterSD: -1}, rng.New(1)); err == nil {
		t.Error("negative jitter accepted")
	}
}

func TestLoopbackSlowerBaseThanRack(t *testing.T) {
	lo := Loopback(rng.New(4))
	rack, _ := New(DefaultConfig(), rng.New(5))
	var loTotal, rackTotal time.Duration
	for i := 0; i < 1000; i++ {
		loTotal += lo.Delay(200)
		rackTotal += rack.Delay(200)
	}
	if loTotal <= rackTotal {
		t.Error("loopback/bridge path should be slower than the rack link (container networking overhead)")
	}
}

// deliverSink counts typed deliveries for the benchmark below.
type deliverSink struct{ n uint64 }

func (s *deliverSink) OnEvent(_ sim.Time, arg sim.EventArg) { s.n += arg.U64 }

// BenchmarkLinkDeliver measures one typed delivery end to end — jitter
// draw, schedule on the engine's timer wheel, fire into the sink — the
// per-message cost every simulated request pays twice (request and
// response links). Steady state must be 0 B/op: the event comes from
// the engine pool and the sink argument carries no boxed values.
// Re-benchmarked for the timer-wheel queue, which replaced the binary
// heap this path previously scheduled through.
func BenchmarkLinkDeliver(b *testing.B) {
	for _, pending := range []int{0, 10_000} {
		name := "idle"
		if pending > 0 {
			name = "pending10k"
		}
		b.Run(name, func(b *testing.B) {
			engine := sim.NewEngine()
			l, err := New(DefaultConfig(), rng.New(9))
			if err != nil {
				b.Fatal(err)
			}
			s := &deliverSink{}
			// A standing event population puts the schedule on the
			// wheel's realistic operating point (in-flight requests).
			// Fillers sit beyond the measured deliveries so every Step
			// below fires a delivery, never a filler.
			for i := 0; i < pending; i++ {
				engine.AfterSink(time.Hour+time.Duration(i)*time.Microsecond, s, sim.EventArg{})
			}
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				l.Deliver(engine, engine.Now(), 128, s, sim.EventArg{U64: 1})
				engine.Step()
			}
			b.StopTimer()
			if s.n == 0 {
				b.Fatal("no deliveries fired")
			}
		})
	}
}

func TestMinDelayFloor(t *testing.T) {
	cfg := DefaultConfig()
	if got, want := cfg.MinDelay(), time.Duration(float64(cfg.Base)*0.527292); got < want-time.Nanosecond || got > want+time.Nanosecond {
		t.Errorf("MinDelay() = %v, want ≈%v (base·exp(-8·0.08))", got, want)
	}
	cfg.JitterSD = 0
	if cfg.MinDelay() != cfg.Base {
		t.Errorf("jitter-free MinDelay() = %v, want base %v", cfg.MinDelay(), cfg.Base)
	}
	l, err := New(DefaultConfig(), rng.New(11))
	if err != nil {
		t.Fatal(err)
	}
	floor := DefaultConfig().MinDelay()
	for i := 0; i < 100_000; i++ {
		if d := l.Delay(0); d < floor {
			t.Fatalf("Delay() = %v below MinDelay floor %v", d, floor)
		}
	}
}

// orderSink records the firing order of tagged deliveries.
type orderSink struct {
	fired []uint64
	at    []sim.Time
}

func (s *orderSink) OnEvent(now sim.Time, arg sim.EventArg) {
	s.fired = append(s.fired, arg.U64)
	s.at = append(s.at, now)
}

// TestDeliverBatchingPreservesOrder pins the batching watermark
// guarantee: with a jitter-free link, back-to-back same-deadline
// deliveries share one flush event, yet fire in exactly Deliver-call
// order — and an unrelated event scheduled between deliveries both
// breaks the batch and keeps the same total order (its seq separates
// the two flushes, just as it would separate per-delivery events).
func TestDeliverBatchingPreservesOrder(t *testing.T) {
	cfg := DefaultConfig()
	cfg.JitterSD = 0
	engine := sim.NewEngine()
	l, err := New(cfg, rng.New(12))
	if err != nil {
		t.Fatal(err)
	}
	s := &orderSink{}

	// Three consecutive deliveries: one engine event for all three.
	before := engine.Scheduled()
	for tag := uint64(1); tag <= 3; tag++ {
		l.Deliver(engine, engine.Now(), 0, s, sim.EventArg{U64: tag})
	}
	if got := engine.Scheduled() - before; got != 1 {
		t.Fatalf("3 same-deadline deliveries scheduled %d events, want 1", got)
	}
	// An unrelated event at the same deadline, then two more deliveries:
	// the watermark moved, so a second flush must be scheduled after it.
	engine.AtSink(engine.Now().Add(cfg.Base), s, sim.EventArg{U64: 99})
	l.Deliver(engine, engine.Now(), 0, s, sim.EventArg{U64: 4})
	l.Deliver(engine, engine.Now(), 0, s, sim.EventArg{U64: 5})

	engine.Run()
	want := []uint64{1, 2, 3, 99, 4, 5}
	if len(s.fired) != len(want) {
		t.Fatalf("fired %v, want %v", s.fired, want)
	}
	for i, tag := range want {
		if s.fired[i] != tag {
			t.Fatalf("firing order %v, want %v", s.fired, want)
		}
	}
	for _, at := range s.at {
		if at != sim.Time(0).Add(cfg.Base) {
			t.Fatalf("delivery fired at %v, want %v", at, cfg.Base)
		}
	}
}

// TestDeliverBatchMatchesJitteredPath checks the batch guard never
// *changes* behavior on a jittered link: every delivery fires exactly
// once at its drawn deadline regardless of accidental deadline
// collisions.
func TestDeliverBatchMatchesJitteredPath(t *testing.T) {
	engine := sim.NewEngine()
	l, err := New(DefaultConfig(), rng.New(13))
	if err != nil {
		t.Fatal(err)
	}
	s := &orderSink{}
	const n = 5000
	for tag := uint64(0); tag < n; tag++ {
		l.Deliver(engine, engine.Now(), 64, s, sim.EventArg{U64: tag})
	}
	engine.Run()
	if len(s.fired) != n {
		t.Fatalf("fired %d deliveries, want %d", len(s.fired), n)
	}
	seen := make(map[uint64]bool, n)
	for _, tag := range s.fired {
		if seen[tag] {
			t.Fatalf("delivery %d fired twice", tag)
		}
		seen[tag] = true
	}
	for i := 1; i < len(s.at); i++ {
		if s.at[i] < s.at[i-1] {
			t.Fatal("deliveries fired out of time order")
		}
	}
}

// TestDeliverPendingInvalidatedByReset is a regression guard for the
// stale-batch hazard: a flush left pending past a run (never fired),
// then Engine.Reset, then a later run reaching the *same* deadline with
// the *same* sequence watermark. Without the EventID.Valid() check the
// new delivery would fold into the drained batch and vanish.
func TestDeliverPendingInvalidatedByReset(t *testing.T) {
	cfg := DefaultConfig()
	cfg.JitterSD = 0
	engine := sim.NewEngine()
	l, err := New(cfg, rng.New(14))
	if err != nil {
		t.Fatal(err)
	}
	s := &orderSink{}
	l.Deliver(engine, engine.Now(), 0, s, sim.EventArg{U64: 1})
	engine.Reset() // flush never fires; batch is now stale
	l.Deliver(engine, engine.Now(), 0, s, sim.EventArg{U64: 2})
	engine.Run()
	if len(s.fired) != 1 || s.fired[0] != 2 {
		t.Fatalf("post-reset delivery fired %v, want [2]", s.fired)
	}
}

// BenchmarkLinkDeliverBatch measures the same-deadline batching win: a
// jitter-free link carrying bursts of deliveries that all land on one
// deadline. batch=1 is the degenerate case (every delivery pays its own
// flush event); batch=16 amortizes one engine event over 16 deliveries.
// Steady state must stay 0 B/op — batches are recycled through the
// link's free list.
func BenchmarkLinkDeliverBatch(b *testing.B) {
	for _, batch := range []int{1, 16} {
		b.Run(fmt.Sprintf("batch%d", batch), func(b *testing.B) {
			cfg := DefaultConfig()
			cfg.JitterSD = 0
			engine := sim.NewEngine()
			l, err := New(cfg, rng.New(15))
			if err != nil {
				b.Fatal(err)
			}
			s := &deliverSink{}
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i += batch {
				for j := 0; j < batch; j++ {
					l.Deliver(engine, engine.Now(), 128, s, sim.EventArg{U64: 1})
				}
				engine.Run()
			}
			b.StopTimer()
			if s.n == 0 {
				b.Fatal("no deliveries fired")
			}
		})
	}
}
