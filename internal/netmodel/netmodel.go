// Package netmodel models the network path between client and server
// machines in the test cluster: a fixed propagation+switching base latency
// with small lognormal jitter, plus a serialization term proportional to
// message size.
//
// The paper's experiments hold the network fixed (same rack-scale testbed
// for every configuration), so this model deliberately has no contention
// state — cross-run network variability is not the effect under study
// (the paper cites it as a separate source investigated by [44], [47]).
package netmodel

import (
	"fmt"
	"time"

	"repro/internal/rng"
	"repro/internal/sim"
)

// Link is one direction of a client↔server network path.
type Link struct {
	base      time.Duration
	jitterSD  float64 // sigma of the lognormal jitter multiplier
	perByteNs float64
	stream    *rng.Stream
	delivered uint64
}

// Config parameterizes a link.
type Config struct {
	// Base is the zero-byte one-way latency (propagation + switch + NIC).
	// A rack-scale 10 GbE path is ≈5 µs.
	Base time.Duration
	// JitterSD is the standard deviation of the log of the jitter
	// multiplier (0 = deterministic).
	JitterSD float64
	// PerByteNs is the serialization cost per payload byte in
	// nanoseconds (10 GbE ≈ 0.8 ns/B).
	PerByteNs float64
}

// DefaultConfig returns a rack-scale 10 GbE link: 5 µs base, mild jitter.
func DefaultConfig() Config {
	return Config{Base: 5 * time.Microsecond, JitterSD: 0.08, PerByteNs: 0.8}
}

// New creates a link drawing jitter from stream.
func New(cfg Config, stream *rng.Stream) (*Link, error) {
	if cfg.Base < 0 || cfg.PerByteNs < 0 || cfg.JitterSD < 0 {
		return nil, fmt.Errorf("netmodel: negative parameter in %+v", cfg)
	}
	return &Link{base: cfg.Base, jitterSD: cfg.JitterSD, perByteNs: cfg.PerByteNs, stream: stream}, nil
}

// Delay returns the one-way delay for a message of the given payload size.
func (l *Link) Delay(payloadBytes int) time.Duration {
	l.delivered++
	d := l.base + time.Duration(float64(payloadBytes)*l.perByteNs)
	if l.jitterSD > 0 {
		d = time.Duration(float64(d) * l.stream.LogNormal(0, l.jitterSD))
	}
	return d
}

// Deliver schedules a typed delivery event: a message of payloadBytes
// enters the link at from, and sink.OnEvent(arrival, arg) fires when it
// reaches the far end. This is the allocation-free companion to Delay for
// callers on the engine's typed-dispatch path — the jitter draw happens
// at scheduling time, exactly as the closure form drew it.
func (l *Link) Deliver(engine *sim.Engine, from sim.Time, payloadBytes int, sink sim.EventSink, arg sim.EventArg) sim.EventID {
	return engine.AtSink(from.Add(l.Delay(payloadBytes)), sink, arg)
}

// Delivered returns the number of messages carried.
func (l *Link) Delivered() uint64 { return l.delivered }

// Loopback returns a link modelling same-host container-to-container
// communication (the Social Network deployment uses Docker Swarm on a
// single node, §IV-B): ≈15 µs through the loopback/bridge stack.
func Loopback(stream *rng.Stream) *Link {
	l, err := New(Config{Base: 15 * time.Microsecond, JitterSD: 0.10, PerByteNs: 0.5}, stream)
	if err != nil {
		panic(err) // static config cannot fail
	}
	return l
}
