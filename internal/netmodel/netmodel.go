// Package netmodel models the network path between client and server
// machines in the test cluster: a fixed propagation+switching base latency
// with small lognormal jitter, plus a serialization term proportional to
// message size.
//
// The paper's experiments hold the network fixed (same rack-scale testbed
// for every configuration), so this model deliberately has no contention
// state — cross-run network variability is not the effect under study
// (the paper cites it as a separate source investigated by [44], [47]).
package netmodel

import (
	"fmt"
	"math"
	"time"

	"repro/internal/faults"
	"repro/internal/rng"
	"repro/internal/sim"
)

// Link is one direction of a client↔server network path.
type Link struct {
	base      time.Duration
	jitterSD  float64 // sigma of the lognormal jitter multiplier
	perByteNs float64
	min       time.Duration // hard delay floor (= Config.MinDelay)
	stream    *rng.Stream
	delivered uint64

	// deg, when set, degrades the link per the fault layer's compiled
	// windows: a delay multiplier ≥ 1 (so MinDelay — and with it the
	// sharding lookahead — still lower-bounds every delay) and a loss
	// probability. Nil on the fault-free path.
	deg *faults.LinkSchedule

	// Same-deadline delivery batching (see Deliver): at most one flush
	// event is pending per link at a time, holding the most recent batch.
	pendingBatch  *deliveryBatch
	pendingEngine *sim.Engine
	pendingFrom   sim.Time
	pendingTime   sim.Time
	pendingID     sim.EventID
	pendingSeq    uint64
	freeBatches   []*deliveryBatch
}

// Config parameterizes a link.
type Config struct {
	// Base is the zero-byte one-way latency (propagation + switch + NIC).
	// A rack-scale 10 GbE path is ≈5 µs.
	Base time.Duration
	// JitterSD is the standard deviation of the log of the jitter
	// multiplier (0 = deterministic).
	JitterSD float64
	// PerByteNs is the serialization cost per payload byte in
	// nanoseconds (10 GbE ≈ 0.8 ns/B).
	PerByteNs float64
}

// DefaultConfig returns a rack-scale 10 GbE link: 5 µs base, mild jitter.
func DefaultConfig() Config {
	return Config{Base: 5 * time.Microsecond, JitterSD: 0.08, PerByteNs: 0.8}
}

// MinDelay returns a hard lower bound on any delay the link can produce:
// the zero-byte base latency shrunk by the smallest realizable jitter
// multiplier, exp(-8·JitterSD). A lognormal draw below -8σ has
// probability ~1e-15 and Delay clamps to this floor, so the bound is
// exact, not probabilistic — which is what lets sharded runs use it as
// conservative lookahead (sim.ShardSet).
func (c Config) MinDelay() time.Duration {
	if c.JitterSD <= 0 {
		return c.Base
	}
	return time.Duration(float64(c.Base) * math.Exp(-8*c.JitterSD))
}

// New creates a link drawing jitter from stream.
func New(cfg Config, stream *rng.Stream) (*Link, error) {
	if cfg.Base < 0 || cfg.PerByteNs < 0 || cfg.JitterSD < 0 {
		return nil, fmt.Errorf("netmodel: negative parameter in %+v", cfg)
	}
	return &Link{base: cfg.Base, jitterSD: cfg.JitterSD, perByteNs: cfg.PerByteNs,
		min: cfg.MinDelay(), stream: stream}, nil
}

// SetDegrade installs (or with nil clears) a link-degradation schedule.
// Links are created fresh per run, so the fault-free path never carries
// one.
func (l *Link) SetDegrade(d *faults.LinkSchedule) { l.deg = d }

// Delay returns the one-way delay for a message of the given payload size.
// The result never falls below Config.MinDelay (the clamp fires with
// probability ~1e-15 per draw, so it is unobservable in practice but
// makes the sharding lookahead invariant unconditional).
func (l *Link) Delay(payloadBytes int) time.Duration {
	l.delivered++
	d := l.base + time.Duration(float64(payloadBytes)*l.perByteNs)
	if l.jitterSD > 0 {
		d = time.Duration(float64(d) * l.stream.LogNormal(0, l.jitterSD))
		if d < l.min {
			d = l.min
		}
	}
	return d
}

// DelayAt is Delay evaluated under the degradation schedule at the
// message's entry instant: the jitter draw happens as usual, then the
// window's delay factor (≥ 1) stretches the result. Both execution
// modes evaluate the factor at the same explicit instant, keeping
// sharded runs byte-identical to the single-engine path.
func (l *Link) DelayAt(from sim.Time, payloadBytes int) time.Duration {
	d := l.Delay(payloadBytes)
	if l.deg != nil {
		if f := l.deg.FactorAt(from); f > 1 {
			d = time.Duration(float64(d) * f)
		}
	}
	return d
}

// LostAt reports whether a message entering the link at from is dropped
// by the degradation schedule. The loss draw consumes the link's stream
// only when the instant's loss probability is positive, so fault-free
// runs (and degraded runs outside loss windows) keep their exact stream
// positions. Callers must draw delay first, then loss — both paths
// follow that order.
func (l *Link) LostAt(from sim.Time) bool {
	if l.deg == nil {
		return false
	}
	p := l.deg.LossAt(from)
	if p <= 0 {
		return false
	}
	return l.stream.Float64() < p
}

// batchEntry is one delivery folded into a shared flush event.
type batchEntry struct {
	sink sim.EventSink
	arg  sim.EventArg
}

// deliveryBatch is the payload of one flush event: the deliveries that
// share its (link, deadline), in Deliver-call order.
type deliveryBatch struct {
	entries []batchEntry
}

// Deliver schedules a typed delivery event: a message of payloadBytes
// enters the link at from, and sink.OnEvent(arrival, arg) fires when it
// reaches the far end. The jitter draw happens at scheduling time,
// exactly as the closure form drew it.
//
// Same-deadline deliveries are batched: when this delivery lands on the
// (deadline, origin) of the link's still-pending flush event AND the
// engine has issued no event sequence numbers since that flush was
// scheduled (engine.Scheduled() unchanged), the delivery rides the
// existing flush instead of costing its own event. The guards make
// batching invisible to execution order: batch members share the
// flush's (deadline, origin) ordering key and would have held exactly
// the sequence numbers after the flush's — no other event's tie-break
// can fall between them — and events scheduled *during* the flush
// dispatch get later numbers than every member, just as they would have
// unbatched. Batched deliveries share the flush's EventID (Cancel
// through it cancels the whole batch; all current call sites ignore the
// return).
func (l *Link) Deliver(engine *sim.Engine, from sim.Time, payloadBytes int, sink sim.EventSink, arg sim.EventArg) sim.EventID {
	return l.DeliverFrom(engine, engine.Now(), from, payloadBytes, sink, arg)
}

// DeliverFrom is Deliver with an explicit schedule origin: the delivery
// event's same-deadline tie-break counts it as scheduled at origin
// (sim.Engine.AtSinkFrom) rather than at the current clock. Deliver
// passes Now() — for it, nothing changes. The sharded response path
// passes the response's departure instant: the single-engine run
// scheduled that delivery (and drew its jitter) at the departure, while
// the sharded run replays it on the owning thread's shard one lookahead
// later, and carrying the original instant restores the single engine's
// exact FIFO slot among equal deadlines.
func (l *Link) DeliverFrom(engine *sim.Engine, origin, from sim.Time, payloadBytes int, sink sim.EventSink, arg sim.EventArg) sim.EventID {
	deadline := from.Add(l.DelayAt(from, payloadBytes))
	if l.LostAt(from) {
		// Dropped by the degradation schedule: the arrival never happens.
		// The caller's resilience timers are what notice.
		return sim.EventID{}
	}
	if l.pendingBatch != nil && l.pendingEngine == engine && l.pendingTime == deadline &&
		l.pendingFrom == origin && engine.Scheduled() == l.pendingSeq && l.pendingID.Valid() {
		l.pendingBatch.entries = append(l.pendingBatch.entries, batchEntry{sink: sink, arg: arg})
		return l.pendingID
	}
	var b *deliveryBatch
	if n := len(l.freeBatches); n > 0 {
		b = l.freeBatches[n-1]
		l.freeBatches = l.freeBatches[:n-1]
	} else {
		b = &deliveryBatch{}
	}
	b.entries = append(b.entries, batchEntry{sink: sink, arg: arg})
	id := engine.AtSinkFrom(origin, deadline, l, sim.EventArg{Ptr: b})
	l.pendingBatch, l.pendingEngine, l.pendingFrom, l.pendingTime = b, engine, origin, deadline
	l.pendingID, l.pendingSeq = id, engine.Scheduled()
	return id
}

// OnEvent fires a flush: it dispatches the batch's deliveries in the
// order Deliver folded them in, then recycles the batch. Link is its own
// sink so batching needs no extra allocation per flush.
func (l *Link) OnEvent(now sim.Time, arg sim.EventArg) {
	b := arg.Ptr.(*deliveryBatch)
	if b == l.pendingBatch {
		l.pendingBatch = nil
	}
	for i := range b.entries {
		b.entries[i].sink.OnEvent(now, b.entries[i].arg)
	}
	for i := range b.entries {
		b.entries[i] = batchEntry{}
	}
	b.entries = b.entries[:0]
	l.freeBatches = append(l.freeBatches, b)
}

// Delivered returns the number of messages carried.
func (l *Link) Delivered() uint64 { return l.delivered }

// Loopback returns a link modelling same-host container-to-container
// communication (the Social Network deployment uses Docker Swarm on a
// single node, §IV-B): ≈15 µs through the loopback/bridge stack.
func Loopback(stream *rng.Stream) *Link {
	l, err := New(Config{Base: 15 * time.Microsecond, JitterSD: 0.10, PerByteNs: 0.5}, stream)
	if err != nil {
		panic(err) // static config cannot fail
	}
	return l
}
