package loadgen

import (
	"context"
	"reflect"
	"testing"
	"time"

	"repro/internal/hw"
	"repro/internal/rng"
	"repro/internal/sched"
)

// TestConcurrentRunOnceViaPool exercises the scheduler's worker-state
// contract at the generator layer: one private Generator per worker, many
// RunOnce repetitions in flight at once. Run with -race this verifies the
// simulation stack (loadgen, services, hw, sim, netmodel, workload) has
// no hidden shared state between independent generators, and that the
// per-run labeled streams make the collected results independent of the
// schedule.
func TestConcurrentRunOnceViaPool(t *testing.T) {
	const runs = 8
	duration := 80 * time.Millisecond

	collect := func(workers int) [][]float64 {
		res, err := sched.MapWorkers(context.Background(), sched.Pool{Workers: workers}, runs,
			func(int) (*Generator, error) {
				return syntheticGen(t, hw.LPConfig(), 10_000, true), nil
			},
			func(_ context.Context, gen *Generator, run int) ([]float64, error) {
				rr, err := gen.RunOnce(rng.NewLabeled(21, "race-run"+string(rune('0'+run))), duration)
				if err != nil {
					return nil, err
				}
				return rr.LatenciesUs, nil
			}, nil)
		if err != nil {
			t.Fatal(err)
		}
		return res
	}

	seq := collect(1)
	par := collect(4)
	if !reflect.DeepEqual(seq, par) {
		t.Error("concurrent RunOnce results differ from sequential")
	}
}
