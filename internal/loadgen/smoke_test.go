package loadgen

import (
	"testing"
	"time"

	"repro/internal/hw"
	"repro/internal/netmodel"
	"repro/internal/rng"
	"repro/internal/services"
	"repro/internal/stats"
	"repro/internal/workload"
)

// etcSource adapts the ETC workload model to the generator.
type etcSource struct{ etc *workload.ETC }

func (s etcSource) Next() (any, int) {
	req := s.etc.Next()
	size := 40 + len(req.Key)
	if req.Op == workload.OpSet {
		size += req.ValueSize
	}
	return req, size
}

func memcachedGen(t testing.TB, clientHW hw.Config, rate float64) *Generator {
	t.Helper()
	backend, err := services.NewMemcached(services.DefaultMemcachedConfig())
	if err != nil {
		t.Fatal(err)
	}
	etcCfg := backend.ETCConfig()
	g, err := New(Config{
		Machines:          4,
		ThreadsPerMachine: 1,
		ConnsPerThread:    40,
		RateQPS:           rate,
		ClientHW:          clientHW,
		TimeSensitive:     true,
		Warmup:            50 * time.Millisecond,
		Net:               netmodel.DefaultConfig(),
		Payloads: func(stream *rng.Stream) PayloadSource {
			etc, err := workload.NewETC(etcCfg, stream)
			if err != nil {
				t.Fatal(err)
			}
			return etcSource{etc}
		},
	}, backend)
	if err != nil {
		t.Fatal(err)
	}
	return g
}

func TestSmokeMemcachedLPvsHP(t *testing.T) {
	// Short mode keeps the calibration check but trims the rate grid and
	// run length; seeded, so the reduced soak is deterministic.
	rates, duration := []float64{10_000, 100_000, 500_000}, 500*time.Millisecond
	if testing.Short() {
		rates, duration = []float64{10_000, 500_000}, 200*time.Millisecond
	}
	for _, rate := range rates {
		lp := memcachedGen(t, hw.LPConfig(), rate)
		hp := memcachedGen(t, hw.HPConfig(), rate)
		lpRes, err := lp.RunOnce(rng.New(1), duration)
		if err != nil {
			t.Fatal(err)
		}
		hpRes, err := hp.RunOnce(rng.New(1), duration)
		if err != nil {
			t.Fatal(err)
		}
		lpS := stats.Summarize(lpRes.LatenciesUs)
		hpS := stats.Summarize(hpRes.LatenciesUs)
		t.Logf("rate=%v LP: n=%d avg=%.1fus p99=%.1fus | HP: n=%d avg=%.1fus p99=%.1fus | ratio avg=%.2f p99=%.2f",
			rate, lpS.N, lpS.Mean, lpS.P99, hpS.N, hpS.Mean, hpS.P99, lpS.Mean/hpS.Mean, lpS.P99/hpS.P99)
		t.Logf("  LP wakes=%v sendlag avg=%.1fus | HP wakes=%v",
			lpRes.ClientWakes, stats.Mean(lpRes.SendLagUs), hpRes.ClientWakes)
		if lpS.Mean <= hpS.Mean {
			t.Errorf("rate=%v: LP avg %.1f not above HP avg %.1f", rate, lpS.Mean, hpS.Mean)
		}
	}
}
