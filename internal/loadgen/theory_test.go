package loadgen

import (
	"math"
	"testing"
	"time"

	"repro/internal/core"
	"repro/internal/hw"
	"repro/internal/netmodel"
	"repro/internal/qmodel"
	"repro/internal/rng"
	"repro/internal/services"
	"repro/internal/stats"
)

// TestSimulatorMatchesQueueingTheory validates the discrete-event engine
// against the M/G/c closed form: a synthetic service (shared queue, low
// service variability) driven by an HP client measured at the NIC (so no
// client overhead pollutes the comparison) must land near the
// Allen–Cunneen prediction for its residence time.
func TestSimulatorMatchesQueueingTheory(t *testing.T) {
	cfg := services.DefaultSyntheticConfig()
	cfg.Delay = 100 * time.Microsecond // service ≈ 109.5µs, CV small
	backend, err := services.NewSynthetic(cfg)
	if err != nil {
		t.Fatal(err)
	}

	const rate = 60_000 // util ≈ 60000 × 110µs / 10 ≈ 0.66
	net := netmodel.DefaultConfig()
	net.JitterSD = 0 // deterministic links for a clean subtraction
	g, err := New(Config{
		Machines:          4,
		ThreadsPerMachine: 2,
		ConnsPerThread:    10,
		RateQPS:           rate,
		ClientHW:          hw.HPConfig(),
		TimeSensitive:     true,
		Point:             core.NICHardware,
		Warmup:            40 * time.Millisecond,
		Net:               net,
		Payloads:          func(*rng.Stream) PayloadSource { return staticSource{} },
	}, backend)
	if err != nil {
		t.Fatal(err)
	}
	res, err := g.RunOnce(rng.New(7), 600*time.Millisecond)
	if err != nil {
		t.Fatal(err)
	}

	measured := stats.Mean(res.LatenciesUs)
	// Subtract the deterministic network (2 × (5µs + 64B·0.8ns ≈ 0.05µs))
	// to isolate server residence.
	serverResidence := measured - 2*5.05

	// Theory: service = base(9µs, lognormal σ=0.10 ⇒ scv≈0.01) + 100µs
	// delay + stack(1.8µs) with mild contention inflation at ~6 busy
	// workers (×(1+0.02×5) ≈ 1.10 applied mid-queue; approximate the mean
	// service accordingly).
	meanService := (9.0*1.005 + 100 + 1.8) * 1.07e-6 // seconds, with contention
	scv := 0.02
	want, err := qmodel.MGcApprox(rate, meanService, scv, 10)
	if err != nil {
		t.Fatal(err)
	}
	wantUs := want * 1e6

	t.Logf("simulated server residence %.1fµs vs M/G/c prediction %.1fµs (util %.2f)",
		serverResidence, wantUs, qmodel.Utilization(rate, meanService, 10))
	ratio := serverResidence / wantUs
	if ratio < 0.75 || ratio > 1.35 {
		t.Errorf("simulation/theory ratio = %.2f, want ≈1 (sim %.1fµs theory %.1fµs)",
			ratio, serverResidence, wantUs)
	}
}

// TestSimulatorLightLoadMatchesServiceTime: with negligible load the
// residence time must equal the bare service time (no queueing) — the
// degenerate case every queueing model agrees on.
func TestSimulatorLightLoadMatchesServiceTime(t *testing.T) {
	cfg := services.DefaultSyntheticConfig()
	cfg.Delay = 200 * time.Microsecond
	backend, err := services.NewSynthetic(cfg)
	if err != nil {
		t.Fatal(err)
	}
	net := netmodel.DefaultConfig()
	net.JitterSD = 0
	g, err := New(Config{
		Machines:          1,
		ThreadsPerMachine: 1,
		ConnsPerThread:    4,
		RateQPS:           500, // util ≈ 0.01
		ClientHW:          hw.HPConfig(),
		TimeSensitive:     true,
		Point:             core.NICHardware,
		Warmup:            50 * time.Millisecond,
		Net:               net,
		Payloads:          func(*rng.Stream) PayloadSource { return staticSource{} },
	}, backend)
	if err != nil {
		t.Fatal(err)
	}
	res, err := g.RunOnce(rng.New(8), time.Second)
	if err != nil {
		t.Fatal(err)
	}
	serverResidence := stats.Mean(res.LatenciesUs) - 2*5.05
	// Bare service ≈ 9 + 200 + 1.8 ≈ 211µs (plus C1 wake ≈ 2–4µs).
	if math.Abs(serverResidence-213) > 10 {
		t.Errorf("light-load residence %.1fµs, want ≈211–215µs", serverResidence)
	}
}
