package loadgen

import (
	"runtime"
	"testing"
	"time"

	"repro/internal/hw"
	"repro/internal/rng"
	"repro/internal/services"
	"repro/internal/sim"
	"repro/internal/workload"
)

// allocBenchConfig is the reference deployment the request-path
// allocation benchmarks drive: a small open-loop generator against the
// synthetic service, so the numbers isolate the request lifecycle
// (events, requests, completions) rather than payload construction.
func allocBenchConfig(rate float64) Config {
	return Config{
		Machines:          1,
		ThreadsPerMachine: 2,
		ConnsPerThread:    4,
		RateQPS:           rate,
		ClientHW:          hw.HPConfig(),
		TimeSensitive:     true,
		Payloads:          func(*rng.Stream) PayloadSource { return staticPayload{} },
	}
}

type staticPayload struct{}

func (staticPayload) Next() (any, int) { return struct{}{}, 64 }

// etcPayload is the Memcached payload source the experiment layer builds
// (mirrored here; importing experiment would cycle): ETC draws delivered
// through the inline-KV form, with keys from the interned table.
type etcPayload struct{ etc *workload.ETC }

func (p etcPayload) Next() (any, int) {
	kv, size := p.NextKV()
	return kv, size
}

func (p etcPayload) NextKV() (workload.KVRequest, int) {
	req := p.etc.Next()
	size := 40 + len(req.Key)
	if req.Op == workload.OpSet {
		size += req.ValueSize
	}
	return req, size
}

// memcachedAllocConfig mirrors the experiment layer's Mutilate-style
// Memcached deployment at reduced scale, with the KV fast path active.
func memcachedAllocConfig(rate float64, backend *services.Memcached) Config {
	cfg := allocBenchConfig(rate)
	etcCfg := backend.ETCConfig()
	cfg.Payloads = func(stream *rng.Stream) PayloadSource {
		etc, err := workload.NewETC(etcCfg, stream)
		if err != nil {
			panic(err)
		}
		return etcPayload{etc}
	}
	return cfg
}

// closureDriver replays the pre-pooling request lifecycle against the
// same backend: a fresh services.Request and a closure per event
// (send, completion, receive), scheduled through the engine's retained
// closure form. It is the in-tree baseline BenchmarkRequestPathAllocs
// and TestRequestPathAllocReduction compare the typed path against.
type closureDriver struct {
	engine   *sim.Engine
	backend  services.Backend
	sent     int
	received int
	latSum   time.Duration
}

func newClosureDriver(b services.Backend) *closureDriver {
	return &closureDriver{engine: sim.NewEngine(), backend: b}
}

// run issues n open-loop requests at the given interval and drains the
// simulation. Every request allocates: the send closure, the request
// object, the arrive closure, the completion closure and the receive
// closure — the shape of the retired hot path.
func (d *closureDriver) run(stream *rng.Stream, n int, interval time.Duration) {
	d.engine.Reset()
	for _, m := range d.backend.Machines() {
		m.ResetRun(stream.Split())
	}
	d.backend.ResetRun(d.engine, stream.Split())
	var sendNext func(i int, at sim.Time)
	sendNext = func(i int, at sim.Time) {
		if i >= n {
			return
		}
		d.engine.At(at, func(now sim.Time) {
			req := &services.Request{ID: uint64(i), Thread: 0, Conn: i & 7,
				Scheduled: now, SentAt: now, Payload: struct{}{}}
			d.sent++
			req.SetCompletion(func(req *services.Request, departed sim.Time) {
				d.engine.At(departed.Add(5*time.Microsecond), func(done sim.Time) {
					d.received++
					d.latSum += done.Sub(req.SentAt)
				})
			})
			d.engine.At(now.Add(5*time.Microsecond), func(t sim.Time) { d.backend.Arrive(req, t) })
			sendNext(i+1, now.Add(interval))
		})
	}
	sendNext(0, 0)
	d.engine.Run()
}

// BenchmarkRequestPathAllocs reports heap allocations per simulated
// request (run with -benchmem; the allocs/req metric is normalized per
// request) for the two lifecycles:
//
//   - typed: the production path — pooled events, pooled requests, typed
//     dispatch end to end (engine → netmodel → backend tier → generator).
//   - closure: the pre-refactor lifecycle replayed through the retained
//     closure APIs, a fresh request + closures per event.
//
// The typed path's residual per-run allocations are setup (threads, RNG
// splits, recorders), amortized across every request of the run.
func BenchmarkRequestPathAllocs(b *testing.B) {
	b.Run("typed", func(b *testing.B) {
		backend, err := services.NewSynthetic(services.DefaultSyntheticConfig())
		if err != nil {
			b.Fatal(err)
		}
		g, err := New(allocBenchConfig(200_000), backend)
		if err != nil {
			b.Fatal(err)
		}
		const runDur = 100 * time.Millisecond
		b.ReportAllocs()
		b.ResetTimer()
		totalReqs := 0
		var ms0, ms1 runtime.MemStats
		runtime.ReadMemStats(&ms0)
		for i := 0; i < b.N; i++ {
			res, err := g.RunOnce(rng.NewLabeled(42, "alloc-bench"), runDur)
			if err != nil {
				b.Fatal(err)
			}
			totalReqs += res.Sent
		}
		runtime.ReadMemStats(&ms1)
		b.StopTimer()
		if totalReqs > 0 {
			b.ReportMetric(float64(ms1.Mallocs-ms0.Mallocs)/float64(totalReqs), "allocs/req")
		}
	})
	b.Run("memcached", func(b *testing.B) {
		// The KV path: ETC payloads over the real store. With the
		// interned key table, inline KV bodies, and the size-only store
		// lookup this is as allocation-free as the synthetic path.
		backend, err := services.NewMemcached(services.DefaultMemcachedConfig())
		if err != nil {
			b.Fatal(err)
		}
		g, err := New(memcachedAllocConfig(200_000, backend), backend)
		if err != nil {
			b.Fatal(err)
		}
		const runDur = 100 * time.Millisecond
		b.ReportAllocs()
		b.ResetTimer()
		totalReqs := 0
		var ms0, ms1 runtime.MemStats
		runtime.ReadMemStats(&ms0)
		for i := 0; i < b.N; i++ {
			res, err := g.RunOnce(rng.NewLabeled(42, "alloc-bench-kv"), runDur)
			if err != nil {
				b.Fatal(err)
			}
			totalReqs += res.Sent
		}
		runtime.ReadMemStats(&ms1)
		b.StopTimer()
		if totalReqs > 0 {
			b.ReportMetric(float64(ms1.Mallocs-ms0.Mallocs)/float64(totalReqs), "allocs/req")
		}
	})
	b.Run("closure", func(b *testing.B) {
		backend, err := services.NewSynthetic(services.DefaultSyntheticConfig())
		if err != nil {
			b.Fatal(err)
		}
		d := newClosureDriver(backend)
		const reqsPerRun = 20_000
		b.ReportAllocs()
		b.ResetTimer()
		var ms0, ms1 runtime.MemStats
		runtime.ReadMemStats(&ms0)
		for i := 0; i < b.N; i++ {
			d.run(rng.NewLabeled(42, "alloc-bench-closure"), reqsPerRun, 5*time.Microsecond)
		}
		runtime.ReadMemStats(&ms1)
		b.StopTimer()
		if d.sent > 0 {
			b.ReportMetric(float64(ms1.Mallocs-ms0.Mallocs)/float64(d.sent), "allocs/req")
		}
	})
}

// TestRequestPathAllocReduction is the acceptance gate for the pooled
// lifecycle: the typed path must allocate at least 5× less per simulated
// request than the closure lifecycle. (Measured: ~0.01 vs ~5 allocs/req,
// a ~400× reduction; the 5× bar leaves room for platform variance.)
func TestRequestPathAllocReduction(t *testing.T) {
	backend, err := services.NewSynthetic(services.DefaultSyntheticConfig())
	if err != nil {
		t.Fatal(err)
	}
	g, err := New(allocBenchConfig(100_000), backend)
	if err != nil {
		t.Fatal(err)
	}
	const runDur = 50 * time.Millisecond
	// Warm the generator's engine and request pool.
	warm, err := g.RunOnce(rng.NewLabeled(7, "alloc-warm"), runDur)
	if err != nil {
		t.Fatal(err)
	}
	reqs := warm.Sent
	if reqs < 1000 {
		t.Fatalf("warmup sent only %d requests", reqs)
	}
	typedPerRun := testing.AllocsPerRun(3, func() {
		if _, err := g.RunOnce(rng.NewLabeled(7, "alloc-warm"), runDur); err != nil {
			t.Fatal(err)
		}
	})
	typedPerReq := typedPerRun / float64(reqs)

	d := newClosureDriver(backend)
	const closureReqs = 5000
	closurePerRun := testing.AllocsPerRun(3, func() {
		d.run(rng.NewLabeled(7, "alloc-closure"), closureReqs, 10*time.Microsecond)
	})
	closurePerReq := closurePerRun / float64(closureReqs)

	t.Logf("allocs per simulated request: typed=%.4f closure=%.4f (%.0f× reduction)",
		typedPerReq, closurePerReq, closurePerReq/typedPerReq)
	if typedPerReq*5 > closurePerReq {
		t.Errorf("typed path allocates %.4f/req, closure path %.4f/req: reduction below the 5× bar",
			typedPerReq, closurePerReq)
	}
}

// TestMemcachedKVPathAllocFree is the regression gate for the key-value
// hot path: with the interned ETC key table, inline KV request bodies,
// and the size-only store lookup, a warm Memcached run must stay below
// 0.2 heap allocations per simulated request — the residue is per-run
// setup (threads, RNG splits, recorders) plus first-touch overlay
// entries for SET keys, all amortizing toward zero as runs lengthen.
// Before this path existed the same run paid ≥3 allocs/request (key
// Sprintf, payload boxing, store copy-out).
func TestMemcachedKVPathAllocFree(t *testing.T) {
	backend, err := services.NewMemcached(services.DefaultMemcachedConfig())
	if err != nil {
		t.Fatal(err)
	}
	g, err := New(memcachedAllocConfig(100_000, backend), backend)
	if err != nil {
		t.Fatal(err)
	}
	const runDur = 50 * time.Millisecond
	// Warm the engine, request pool and store overlay map.
	warm, err := g.RunOnce(rng.NewLabeled(11, "kv-alloc-warm"), runDur)
	if err != nil {
		t.Fatal(err)
	}
	reqs := warm.Sent
	if reqs < 1000 {
		t.Fatalf("warmup sent only %d requests", reqs)
	}
	perRun := testing.AllocsPerRun(3, func() {
		if _, err := g.RunOnce(rng.NewLabeled(11, "kv-alloc-warm"), runDur); err != nil {
			t.Fatal(err)
		}
	})
	perReq := perRun / float64(reqs)
	t.Logf("memcached KV path: %.4f allocs/request (%.0f allocs/run over %d requests)", perReq, perRun, reqs)
	if perReq > 0.2 {
		t.Errorf("memcached KV path allocates %.4f/request, want ≤ 0.2", perReq)
	}
}

// TestRunOnceEngineReuseDeterministic pins that reusing one generator's
// engine and request pool across runs is invisible to results: the same
// run stream produces bit-identical measurements on a cold and a hot
// generator.
func TestRunOnceEngineReuseDeterministic(t *testing.T) {
	build := func() *Generator {
		backend, err := services.NewSynthetic(services.DefaultSyntheticConfig())
		if err != nil {
			t.Fatal(err)
		}
		g, err := New(allocBenchConfig(50_000), backend)
		if err != nil {
			t.Fatal(err)
		}
		return g
	}
	cold := build()
	coldRes, err := cold.RunOnce(rng.NewLabeled(99, "reuse"), 40*time.Millisecond)
	if err != nil {
		t.Fatal(err)
	}

	hot := build()
	// Heat the engine, pool and free lists with unrelated runs first.
	for i := 0; i < 3; i++ {
		if _, err := hot.RunOnce(rng.NewLabeled(1000+uint64(i), "heat"), 25*time.Millisecond); err != nil {
			t.Fatal(err)
		}
	}
	hotRes, err := hot.RunOnce(rng.NewLabeled(99, "reuse"), 40*time.Millisecond)
	if err != nil {
		t.Fatal(err)
	}

	if coldRes.Sent != hotRes.Sent || coldRes.Received != hotRes.Received {
		t.Fatalf("cold sent/received %d/%d, hot %d/%d",
			coldRes.Sent, coldRes.Received, hotRes.Sent, hotRes.Received)
	}
	if coldRes.Latency != hotRes.Latency || coldRes.SendLag != hotRes.SendLag {
		t.Errorf("engine reuse changed summaries:\ncold %+v\nhot  %+v", coldRes.Latency, hotRes.Latency)
	}
	if len(coldRes.LatenciesUs) != len(hotRes.LatenciesUs) {
		t.Fatalf("sample counts differ: %d vs %d", len(coldRes.LatenciesUs), len(hotRes.LatenciesUs))
	}
	for i := range coldRes.LatenciesUs {
		if coldRes.LatenciesUs[i] != hotRes.LatenciesUs[i] {
			t.Fatalf("sample %d differs: %v vs %v", i, coldRes.LatenciesUs[i], hotRes.LatenciesUs[i])
		}
	}
}
