package loadgen

import (
	"repro/internal/hw"
	"repro/internal/services"
	"repro/internal/sim"
)

// Client-side event-dispatch kinds, packed into sim.EventArg.U64. The low
// evKindBits carry the kind; closed-loop issue events pack the connection
// id above them. Both generators' runs implement sim.EventSink over these
// kinds — the typed, allocation-free replacement for the per-request
// closures the pre-refactor hot path scheduled.
const (
	evSendTimer uint64 = iota // Ptr: *thread — inter-arrival timer fired
	evArrive                  // Ptr: *services.Request — request reached the server
	evReceive                 // Ptr: *services.Request — response reached the client NIC
	evDrainPace               // Ptr: *thread — pacing core ran out of work
	evDrainRecv               // Ptr: *thread — receive core ran out of work
	evIssue                   // Ptr: *thread — closed-loop client issues its next request
	evRespCross               // Ptr: *services.Request — sharded-run response hand-off to the
	//                           owning thread's shard; the departure instant (ns) rides above
	//                           the kind bits so the s2c jitter draw happens in the thread's
	//                           shard, in departure order (see sharded.go)
	evTimeout // Ptr: *services.Request — the attempt's response deadline passed (resilience.go)
	evRetry   // Ptr: *services.Request — a retry's backoff expired; re-send the attempt
	evHedge   // Ptr: *services.Request — the hedge delay expired; clone the attempt
)

// evKindBits is the width of the kind field in EventArg.U64.
const evKindBits = 8

// evKindMask extracts the kind from a packed scalar.
const evKindMask = (1 << evKindBits) - 1

// fillPayload draws the thread's next payload into the pooled request
// and returns the request's wire size. Key-value sources that implement
// KVPayloadSource store the body inline in req.KV (no interface boxing);
// everything else goes through req.Payload. Shared by the open- and
// closed-loop generators.
func (th *thread) fillPayload(req *services.Request) int {
	if th.kvSource != nil {
		kv, reqBytes := th.kvSource.NextKV()
		req.KV = kv
		req.HasKV = true
		return reqBytes
	}
	payload, reqBytes := th.payloads.Next()
	req.Payload = payload
	return reqBytes
}

// reuseEngine returns a generator's persistent engine: created on the
// first run, reset (keeping its event free list) on every later one.
func reuseEngine(enginep **sim.Engine) *sim.Engine {
	if *enginep == nil {
		*enginep = sim.NewEngine()
	} else {
		(*enginep).Reset()
	}
	return *enginep
}

// clientLoopStart returns when the event loop on core can begin processing
// an event that became runnable at t, paying wake and dispatch costs. It
// is the single implementation shared by the open- and closed-loop
// generators.
func clientLoopStart(core *hw.Core, t sim.Time) sim.Time {
	if core.Idle() {
		fromDeep := core.CurrentCState() != "C0"
		ready := core.Wake(t)
		if fromDeep {
			// Full scheduler context switch after a hardware sleep.
			return ready.Add(hw.CtxSwitchCost)
		}
		// idle=poll: the polling loop hands off cheaply.
		return ready.Add(pollDispatch)
	}
	if core.BusyUntil() > t {
		return core.BusyUntil() // loop busy: the event queues behind it
	}
	return t
}

// clientReceive is the receive-path bookkeeping both generators share —
// the mechanism behind the paper's client-side measurement distortion.
// A response reaching the client NIC at now pays IRQ delivery and any
// uncore ramp before the event loop can see it (eligible), then the
// loop's wake/dispatch cost (start = when parsing begins), then the
// response parse itself (done = the in-app timestamp instant).
// wakeState is the C-state the receive core was in when the response
// arrived ("C0" = awake or polling).
func clientReceive(machine *hw.Machine, core *hw.Core, now sim.Time) (wakeState string, eligible, start, done sim.Time) {
	wakeState = core.CurrentCState()
	eligible = now.Add(hw.IRQDeliveryCost + machine.UncoreRXPenalty())
	start = clientLoopStart(core, eligible)
	done = core.Execute(start, recvWork)
	return wakeState, eligible, start, done
}
