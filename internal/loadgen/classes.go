package loadgen

import (
	"fmt"
	"math"
	"time"

	"repro/internal/rng"
	"repro/internal/sim"
	"repro/internal/workload"
)

// This file is the generator's declarative-mix layer: client classes
// (rate fractions with per-class arrival processes, think times and
// size distributions) and phase programs (virtual-clock-driven load
// modulation). Both are the compile target of the workload-spec format
// (internal/spec). A Config with neither classes nor phases takes the
// legacy single-Poisson path untouched, byte for byte.

// Distribution names shared by think-time and size distributions.
const (
	DistFixed       = "fixed"
	DistExponential = "exponential"
	DistLognormal   = "lognormal"
)

// SizeConfig optionally overrides a class's request wire size with a
// drawn one. The payload content still comes from the service's own
// source — only the bytes crossing the modelled network change, which
// is what per-class size mixes affect in this testbed.
type SizeConfig struct {
	// Dist is the distribution ("" disables the override): fixed,
	// exponential, or lognormal.
	Dist string
	// Mean is the mean wire size in bytes.
	Mean float64
	// Sigma is the lognormal shape (σ of the underlying normal).
	Sigma float64
}

func (c SizeConfig) enabled() bool { return c.Dist != "" }

// Validate reports configuration errors.
func (c SizeConfig) Validate() error {
	if !c.enabled() {
		return nil
	}
	if c.Mean <= 0 || math.IsNaN(c.Mean) || math.IsInf(c.Mean, 0) {
		return fmt.Errorf("loadgen: size distribution needs mean > 0 bytes, got %v", c.Mean)
	}
	switch c.Dist {
	case DistFixed, DistExponential:
	case DistLognormal:
		if c.Sigma <= 0 || math.IsNaN(c.Sigma) || math.IsInf(c.Sigma, 0) {
			return fmt.Errorf("loadgen: lognormal size needs sigma > 0, got %v", c.Sigma)
		}
	default:
		return fmt.Errorf("loadgen: unknown size distribution %q (want %s|%s|%s)",
			c.Dist, DistFixed, DistExponential, DistLognormal)
	}
	return nil
}

// draw returns a wire size in bytes (≥1).
func (c SizeConfig) draw(stream *rng.Stream) int {
	var v float64
	switch c.Dist {
	case DistExponential:
		v = stream.Exp(1 / c.Mean)
	case DistLognormal:
		// µ chosen so the lognormal's mean is c.Mean.
		v = stream.LogNormal(math.Log(c.Mean)-c.Sigma*c.Sigma/2, c.Sigma)
	default: // DistFixed
		v = c.Mean
	}
	if v < 1 {
		return 1
	}
	return int(v)
}

// ThinkConfig optionally superimposes a think time on a class's
// inter-arrival gaps: each gap is lengthened by a drawn pause,
// modelling users who wait between requests. The class's effective rate
// drops below its nominal fraction accordingly — think time is user
// behaviour, not pacing error, so it is deliberately not charged to
// send lag.
type ThinkConfig struct {
	// Dist is the distribution ("" disables): fixed or exponential.
	Dist string
	// Mean is the mean think time.
	Mean time.Duration
}

func (c ThinkConfig) enabled() bool { return c.Dist != "" }

// Validate reports configuration errors.
func (c ThinkConfig) Validate() error {
	if !c.enabled() {
		return nil
	}
	switch c.Dist {
	case DistFixed, DistExponential:
	default:
		return fmt.Errorf("loadgen: unknown think-time distribution %q (want %s|%s)",
			c.Dist, DistFixed, DistExponential)
	}
	if c.Mean <= 0 {
		return fmt.Errorf("loadgen: think time needs mean > 0, got %v", c.Mean)
	}
	return nil
}

// draw returns one think-time pause.
func (c ThinkConfig) draw(stream *rng.Stream) time.Duration {
	if c.Dist == DistExponential {
		return time.Duration(stream.Exp(1/c.Mean.Seconds()) * float64(time.Second))
	}
	return c.Mean
}

// ClassConfig is one client class of a workload mix: a fraction of the
// aggregate offered load with its own arrival process, think time and
// request-size distribution. Every generator thread runs every class —
// a class's per-thread rate is Fraction × RateQPS / threads — so class
// mixes do not change the deployment shape.
type ClassConfig struct {
	// Name labels the class in specs and diagnostics.
	Name string
	// Fraction is the class's share of Config.RateQPS. The fractions of
	// a mix must sum to 1.
	Fraction float64
	// Arrival selects the class's inter-arrival process (zero value =
	// Poisson).
	Arrival workload.ArrivalConfig
	// Think optionally adds a per-request think-time pause.
	Think ThinkConfig
	// Size optionally draws the request wire size instead of using the
	// payload's own.
	Size SizeConfig
}

// Validate reports configuration errors for one class.
func (c ClassConfig) Validate() error {
	if c.Fraction <= 0 || math.IsNaN(c.Fraction) || c.Fraction > 1 {
		return fmt.Errorf("loadgen: class %q fraction %v outside (0, 1]", c.Name, c.Fraction)
	}
	if err := c.Arrival.Validate(); err != nil {
		return fmt.Errorf("loadgen: class %q: %w", c.Name, err)
	}
	if err := c.Think.Validate(); err != nil {
		return fmt.Errorf("loadgen: class %q: %w", c.Name, err)
	}
	if err := c.Size.Validate(); err != nil {
		return fmt.Errorf("loadgen: class %q: %w", c.Name, err)
	}
	return nil
}

// ValidateClasses reports errors for a whole mix: every class valid and
// the fractions summing to 1 (±1e-6), so no share of the offered load
// is silently dropped or double-counted.
func ValidateClasses(classes []ClassConfig) error {
	if len(classes) == 0 {
		return nil
	}
	var sum float64
	for _, c := range classes {
		if err := c.Validate(); err != nil {
			return err
		}
		sum += c.Fraction
	}
	if math.Abs(sum-1) > 1e-6 {
		return fmt.Errorf("loadgen: class fractions sum to %v, want 1", sum)
	}
	return nil
}

// PhaseConfig is one phase of a load program: for Duration of virtual
// time the offered rate is multiplied by RateScale (ramping linearly to
// EndScale when set). Phases compose into baseline → intervention →
// recovery experiments and, with EndScale ramps plus Config.PhasesRepeat,
// diurnal load curves.
type PhaseConfig struct {
	// Name labels the phase.
	Name string
	// Duration is the phase length in virtual time; must be positive.
	Duration time.Duration
	// RateScale multiplies the configured rate during this phase
	// (1 = nominal). Must be positive: a phase cannot silence the
	// generator entirely, or open-loop pacing would never fire again.
	RateScale float64
	// EndScale, when positive, ramps the scale linearly from RateScale
	// to EndScale across the phase. 0 keeps RateScale constant.
	EndScale float64
}

// Validate reports configuration errors for one phase.
func (p PhaseConfig) Validate() error {
	if p.Duration <= 0 {
		return fmt.Errorf("loadgen: phase %q duration %v must be positive", p.Name, p.Duration)
	}
	if p.RateScale <= 0 || math.IsNaN(p.RateScale) || math.IsInf(p.RateScale, 0) {
		return fmt.Errorf("loadgen: phase %q rate scale %v must be positive and finite", p.Name, p.RateScale)
	}
	if p.EndScale < 0 || math.IsNaN(p.EndScale) || math.IsInf(p.EndScale, 0) {
		return fmt.Errorf("loadgen: phase %q end scale %v must be positive (or 0 for constant)", p.Name, p.EndScale)
	}
	return nil
}

// ValidatePhases reports errors for a phase program.
func ValidatePhases(phases []PhaseConfig) error {
	for _, p := range phases {
		if err := p.Validate(); err != nil {
			return err
		}
	}
	return nil
}

// PhasesTotal returns the program's total duration (one cycle when
// repeating).
func PhasesTotal(phases []PhaseConfig) time.Duration {
	var total time.Duration
	for _, p := range phases {
		total += p.Duration
	}
	return total
}

// phaseSchedule is the run-scoped compiled phase program: cumulative
// boundaries for O(len) scale lookup. It is pure configuration — no
// randomness — so it cannot perturb any stream.
type phaseSchedule struct {
	phases []PhaseConfig
	starts []time.Duration // starts[i] = offset of phase i from virtual 0
	total  time.Duration
	repeat bool
}

func newPhaseSchedule(phases []PhaseConfig, repeat bool) *phaseSchedule {
	if len(phases) == 0 {
		return nil
	}
	ps := &phaseSchedule{phases: phases, repeat: repeat, starts: make([]time.Duration, len(phases))}
	var off time.Duration
	for i, p := range phases {
		ps.starts[i] = off
		off += p.Duration
	}
	ps.total = off
	return ps
}

// scaleAt returns the rate multiplier at virtual instant t. Past the end
// of a non-repeating program the last phase's final scale persists.
func (ps *phaseSchedule) scaleAt(t sim.Time) float64 {
	off := t.Sub(sim.Time(0))
	if off < 0 {
		off = 0
	}
	if ps.repeat {
		off %= ps.total
	} else if off >= ps.total {
		last := ps.phases[len(ps.phases)-1]
		if last.EndScale > 0 {
			return last.EndScale
		}
		return last.RateScale
	}
	for i := len(ps.phases) - 1; i >= 0; i-- {
		if off >= ps.starts[i] {
			p := ps.phases[i]
			if p.EndScale <= 0 {
				return p.RateScale
			}
			frac := float64(off-ps.starts[i]) / float64(p.Duration)
			return p.RateScale + (p.EndScale-p.RateScale)*frac
		}
	}
	return ps.phases[0].RateScale // unreachable: off ≥ 0 = starts[0]
}

// scaleGap divides an inter-arrival gap by the phase scale in force at
// the scheduled instant: a 3× phase packs arrivals 3× closer.
func (ps *phaseSchedule) scaleGap(gap time.Duration, at sim.Time) time.Duration {
	return time.Duration(float64(gap) / ps.scaleAt(at))
}

// classState is one thread's run-scoped state for one class of the mix.
type classState struct {
	cfg      *ClassConfig
	arrivals workload.Interarrival
	stream   *rng.Stream // think + size draws
	nextSend sim.Time
}

// scheduleClassSend arms the next send timer for class ci of th, packing
// the class index above the event-kind bits.
func (r *run) scheduleClassSend(th *thread, ci int) {
	cs := &th.classes[ci]
	if cs.nextSend > r.duration {
		return
	}
	r.engine.AtSink(cs.nextSend, r, sim.EventArg{Ptr: th, U64: evSendTimer | uint64(ci)<<evKindBits})
}

// earliestNextSend returns the thread's next scheduled send across its
// classes — the pacing core's sleep-deadline hint.
func (th *thread) earliestNextSend() sim.Time {
	if th.classes == nil {
		return th.nextSend
	}
	earliest := sim.Time(math.MaxInt64)
	for i := range th.classes {
		if ns := th.classes[i].nextSend; ns < earliest {
			earliest = ns
		}
	}
	return earliest
}

// setupClasses builds th's class states for the mix path, consuming
// per-class streams in class order. classes is the synthesized mix (a
// single implicit Poisson class when the config has phases only).
func (r *run) setupClasses(th *thread, classes []ClassConfig, perThreadRate float64, stream *rng.Stream) error {
	th.classes = make([]classState, len(classes))
	for ci := range classes {
		c := &classes[ci]
		arr, err := c.Arrival.New(perThreadRate*c.Fraction, stream.Split())
		if err != nil {
			return err
		}
		th.classes[ci] = classState{cfg: c, arrivals: arr, stream: stream.Split()}
	}
	return nil
}
