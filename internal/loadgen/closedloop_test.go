package loadgen

import (
	"math"
	"testing"
	"time"

	"repro/internal/hw"
	"repro/internal/netmodel"
	"repro/internal/rng"
	"repro/internal/services"
	"repro/internal/stats"
)

func closedGen(t testing.TB, clientHW hw.Config, clients int, think time.Duration) *ClosedLoopGenerator {
	t.Helper()
	backend, err := services.NewSynthetic(services.DefaultSyntheticConfig())
	if err != nil {
		t.Fatal(err)
	}
	g, err := NewClosedLoop(ClosedLoopConfig{
		Machines:          2,
		ThreadsPerMachine: 2,
		ClientsPerThread:  clients,
		ThinkTime:         think,
		ClientHW:          clientHW,
		Warmup:            20 * time.Millisecond,
		Net:               netmodel.DefaultConfig(),
		Payloads: func(stream *rng.Stream) PayloadSource {
			return staticSource{}
		},
	}, backend)
	if err != nil {
		t.Fatal(err)
	}
	return g
}

func TestClosedLoopValidation(t *testing.T) {
	base := ClosedLoopConfig{
		Machines: 1, ThreadsPerMachine: 1, ClientsPerThread: 1,
		ClientHW: hw.HPConfig(),
		Payloads: func(*rng.Stream) PayloadSource { return staticSource{} },
	}
	if err := base.Validate(); err != nil {
		t.Fatalf("valid config rejected: %v", err)
	}
	bad := base
	bad.ClientsPerThread = 0
	if bad.Validate() == nil {
		t.Error("zero clients accepted")
	}
	bad = base
	bad.ThinkTime = -time.Second
	if bad.Validate() == nil {
		t.Error("negative think time accepted")
	}
	bad = base
	bad.Payloads = nil
	if bad.Validate() == nil {
		t.Error("nil payloads accepted")
	}
	if _, err := NewClosedLoop(base, nil); err == nil {
		t.Error("nil backend accepted")
	}
}

func TestClosedLoopPopulation(t *testing.T) {
	g := closedGen(t, hw.HPConfig(), 5, 0)
	if g.Population() != 2*2*5 {
		t.Errorf("population = %d, want 20", g.Population())
	}
}

func TestClosedLoopThroughputFollowsLittlesLaw(t *testing.T) {
	// 20 clients, zero think: throughput ≈ N / latency.
	g := closedGen(t, hw.HPConfig(), 5, 0)
	res, err := g.RunOnce(rng.New(1), 500*time.Millisecond)
	if err != nil {
		t.Fatal(err)
	}
	if res.ThroughputQPS <= 0 {
		t.Fatal("no throughput measured")
	}
	meanLatency := time.Duration(res.MeanLatencyUs() * 1e3)
	predicted := ExpectedThroughput(g.Population(), meanLatency, 0)
	ratio := res.ThroughputQPS / predicted
	if math.Abs(ratio-1) > 0.15 {
		t.Errorf("throughput %.0f vs Little's-law prediction %.0f (ratio %.2f)",
			res.ThroughputQPS, predicted, ratio)
	}
}

func TestClosedLoopThinkTimeReducesThroughput(t *testing.T) {
	noThink := closedGen(t, hw.HPConfig(), 5, 0)
	thinking := closedGen(t, hw.HPConfig(), 5, 500*time.Microsecond)
	a, err := noThink.RunOnce(rng.New(2), 300*time.Millisecond)
	if err != nil {
		t.Fatal(err)
	}
	b, err := thinking.RunOnce(rng.New(2), 300*time.Millisecond)
	if err != nil {
		t.Fatal(err)
	}
	if b.ThroughputQPS >= a.ThroughputQPS/2 {
		t.Errorf("think time barely reduced throughput: %.0f vs %.0f", b.ThroughputQPS, a.ThroughputQPS)
	}
}

func TestClosedLoopLPMeasuresHigherAndThrottlesItself(t *testing.T) {
	// §II: in a closed loop, client timing inaccuracy also shifts the
	// next request. The LP client both measures higher latency AND
	// achieves lower throughput for the same population.
	lp := closedGen(t, hw.LPConfig(), 5, time.Millisecond)
	hp := closedGen(t, hw.HPConfig(), 5, time.Millisecond)
	lpRes, err := lp.RunOnce(rng.New(3), 500*time.Millisecond)
	if err != nil {
		t.Fatal(err)
	}
	hpRes, err := hp.RunOnce(rng.New(3), 500*time.Millisecond)
	if err != nil {
		t.Fatal(err)
	}
	if lpRes.MeanLatencyUs() <= hpRes.MeanLatencyUs() {
		t.Errorf("closed-loop LP latency %.1f not above HP %.1f",
			lpRes.MeanLatencyUs(), hpRes.MeanLatencyUs())
	}
	if lpRes.ThroughputQPS >= hpRes.ThroughputQPS {
		t.Errorf("closed-loop LP throughput %.0f not below HP %.0f (workload distortion)",
			lpRes.ThroughputQPS, hpRes.ThroughputQPS)
	}
}

func TestClosedLoopDeterministic(t *testing.T) {
	a := closedGen(t, hw.LPConfig(), 3, 0)
	b := closedGen(t, hw.LPConfig(), 3, 0)
	ra, err := a.RunOnce(rng.New(4), 200*time.Millisecond)
	if err != nil {
		t.Fatal(err)
	}
	rb, err := b.RunOnce(rng.New(4), 200*time.Millisecond)
	if err != nil {
		t.Fatal(err)
	}
	if ra.ThroughputQPS != rb.ThroughputQPS || len(ra.LatenciesUs) != len(rb.LatenciesUs) {
		t.Error("closed-loop runs not reproducible")
	}
}

func TestClosedLoopLatenciesSane(t *testing.T) {
	g := closedGen(t, hw.LPConfig(), 4, 200*time.Microsecond)
	res, err := g.RunOnce(rng.New(5), 300*time.Millisecond)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.LatenciesUs) == 0 {
		t.Fatal("no samples")
	}
	if min := stats.Min(res.LatenciesUs); min < 15 {
		t.Errorf("min latency %.1fµs below physical floor", min)
	}
}

func TestClosedLoopRejectsBadDuration(t *testing.T) {
	g := closedGen(t, hw.HPConfig(), 1, 0)
	if _, err := g.RunOnce(rng.New(1), 0); err == nil {
		t.Error("zero duration accepted")
	}
}
