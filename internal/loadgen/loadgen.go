// Package loadgen implements the client side of the paper's methodology:
// workload generators running on simulated client machines, following the
// taxonomy of §II — open-loop request generation with time-sensitive
// (block-wait) or time-insensitive (busy-wait) inter-arrival pacing, with
// the point of measurement inside the generator itself.
//
// Because the point of measurement is in-application, every response
// timestamp includes whatever the client hardware puts in its way: C-state
// exit latency, the DVFS ramp after a wake, and the context switch to the
// generator thread. This package is where the paper's client-caused
// measurement distortion physically happens.
package loadgen

import (
	"fmt"
	"time"

	"repro/internal/core"
	"repro/internal/faults"
	"repro/internal/hw"
	"repro/internal/metrics"
	"repro/internal/netmodel"
	"repro/internal/rng"
	"repro/internal/services"
	"repro/internal/sim"
	"repro/internal/stats"
	"repro/internal/workload"
)

// Client-side event-loop processing costs (nominal at the 2.2 GHz base
// frequency; the hardware model stretches them under DVFS).
const (
	sendWork = 2500 * time.Nanosecond // build + timestamp + write a request
	recvWork = 3500 * time.Nanosecond // read + parse + timestamp a response

	// pollDispatch is the cost to hand an event to the generator thread
	// when the core was busy-polling (idle=poll or spinning): no C-state
	// exit and no full context switch, just a queue hand-off.
	pollDispatch = 1500 * time.Nanosecond
)

// PayloadSource produces service-specific request payloads.
type PayloadSource interface {
	// Next returns the payload and the request's wire size in bytes.
	Next() (payload any, requestBytes int)
}

// KVPayloadSource is an optional PayloadSource extension for key-value
// workloads: NextKV returns the request body by value so the generator
// can store it inline in the pooled services.Request (Request.KV)
// instead of boxing it into the Payload interface — the boxing was the
// last per-request heap allocation on the Memcached path. Sources that
// implement it must draw from their stream exactly as Next would, so
// the two forms simulate identical systems.
type KVPayloadSource interface {
	NextKV() (kv workload.KVRequest, requestBytes int)
}

// PayloadFactory builds a per-thread payload source from a per-run stream.
type PayloadFactory func(stream *rng.Stream) PayloadSource

// Config describes a workload-generator deployment (Fig. 1: a set of
// client machines running generator threads against the service).
type Config struct {
	// Machines is the number of client machines (paper: 4 workload
	// generator clients for Memcached).
	Machines int
	// ThreadsPerMachine is the number of event-loop threads per machine,
	// each pinned to its own core.
	ThreadsPerMachine int
	// ConnsPerThread is how many connections each thread multiplexes
	// (4 machines × 4 threads × 10 conns = the paper's 160 connections).
	ConnsPerThread int
	// RateQPS is the aggregate offered load.
	RateQPS float64
	// ClientHW is the client hardware configuration (LP or HP, Table II).
	ClientHW hw.Config
	// TimeSensitive selects block-wait pacing (Mutilate, wrk2) when true,
	// busy-wait polling (the HDSearch client) when false.
	TimeSensitive bool
	// Point selects where latency is timestamped (§II, after Lancet's
	// taxonomy). InApp (the default, and what every generator the paper
	// studies does) exposes the measurement to all client-side hardware
	// overheads; KernelSocket stops the clock at softirq delivery;
	// NICHardware stops it at the wire and excludes the client entirely.
	Point core.MeasurementPoint
	// AdaptivePacing enables Lancet-style self-correction (§VII-C): each
	// thread monitors its own send lag and, when the recent mean exceeds
	// AdaptiveLagThreshold, stops sleeping before sends (busy-waits) until
	// the lag subsides. This trades client energy for workload fidelity —
	// an automated version of the paper's §VI recommendation.
	AdaptivePacing bool
	// AdaptiveLagThreshold is the mean send lag that triggers spinning
	// (default 10µs).
	AdaptiveLagThreshold time.Duration
	// CorrectCoordinatedOmission measures latency from the *scheduled*
	// send time instead of the actual one (wrk2's correction): when the
	// generator falls behind its schedule, the delay a real open-loop
	// client would have suffered is charged to the measurement rather
	// than silently dropped. With an accurate client the two coincide;
	// on an untuned client they diverge by the send lag.
	CorrectCoordinatedOmission bool
	// TraceEvery records a full per-request timeline for every Nth
	// request (0 disables tracing). Traces attribute each measured
	// microsecond to its mechanism: send wake, network, server residence,
	// receive wake, parse.
	TraceEvery int
	// Payloads builds each thread's request source.
	Payloads PayloadFactory
	// Warmup discards samples measured before this offset into the run.
	Warmup time.Duration
	// Net configures the client↔server links.
	Net netmodel.Config
	// Recorders builds each run's measurement recorders (latency and
	// send lag) from the run's RNG stream. Nil selects
	// metrics.ExactFactory: retain-everything recorders whose raw
	// samples surface in RunResult.LatenciesUs/SendLagUs, the historical
	// behaviour. Streaming factories reduce in O(1) memory instead; see
	// package metrics.
	Recorders metrics.Factory
	// Classes optionally splits RateQPS into a workload mix: every
	// thread runs every class at Fraction × its per-thread rate, each
	// class with its own arrival process, think time and size
	// distribution. Empty keeps the legacy single Poisson process,
	// byte-identical to pre-mix results.
	Classes []ClassConfig
	// Phases optionally modulates the offered rate over virtual time
	// (see PhaseConfig). Empty applies no modulation.
	Phases []PhaseConfig
	// PhasesRepeat cycles the phase program for the whole run (diurnal
	// load curves) instead of holding the last phase's scale after one
	// pass.
	PhasesRepeat bool
	// Resilience enables client-side fault tolerance — per-attempt
	// timeouts, bounded retries with decorrelated-jitter backoff, and
	// optional hedged requests (see resilience.go). The zero value
	// disables it and keeps the request path allocation-free and
	// byte-identical to pre-resilience releases.
	Resilience ResilienceConfig
	// LinkFaults degrades the client↔server links over fractions of the
	// run (delay stretch and/or message loss); empty leaves them healthy.
	// Windows apply to both directions of every thread's link pair. Loss
	// windows require Resilience.Timeout (a lost request otherwise never
	// completes).
	LinkFaults []faults.LinkWindow
	// Shards partitions each run across this many per-shard simulation
	// engines running in parallel under conservative synchronization
	// (see sharded.go). 0 keeps the legacy single-engine path; K ≥ 1
	// shards whole client machines (and backend replicas) round-robin
	// across K engines, with the network link's minimum delay as
	// lookahead. Sharded output is byte-identical to the single-engine
	// run. Requires Net.Base > 0 and TraceEvery == 0; K must not exceed
	// the machine+replica partition count (checked at run time).
	Shards int
}

// mixed reports whether the config takes the class/phase path; false is
// the legacy single-Poisson path, untouched byte for byte.
func (c Config) mixed() bool { return len(c.Classes) > 0 || len(c.Phases) > 0 }

// mixClasses returns the mix the run simulates: the configured classes,
// or one implicit full-rate Poisson class when only phases are set.
func (c Config) mixClasses() []ClassConfig {
	if len(c.Classes) > 0 {
		return c.Classes
	}
	return []ClassConfig{{Name: "default", Fraction: 1}}
}

// recorders returns the configured factory, defaulting to exact.
func (c Config) recorders() metrics.Factory {
	if c.Recorders != nil {
		return c.Recorders
	}
	return metrics.ExactFactory
}

// Validate reports configuration errors.
func (c Config) Validate() error {
	if c.Machines < 1 || c.ThreadsPerMachine < 1 || c.ConnsPerThread < 1 {
		return fmt.Errorf("loadgen: need ≥1 machine/thread/conn, got %d/%d/%d",
			c.Machines, c.ThreadsPerMachine, c.ConnsPerThread)
	}
	if c.RateQPS <= 0 {
		return fmt.Errorf("loadgen: rate must be positive, got %v", c.RateQPS)
	}
	if c.Payloads == nil {
		return fmt.Errorf("loadgen: payload factory is required")
	}
	if c.Warmup < 0 {
		return fmt.Errorf("loadgen: negative warmup %v", c.Warmup)
	}
	if err := ValidateClasses(c.Classes); err != nil {
		return err
	}
	if err := ValidatePhases(c.Phases); err != nil {
		return err
	}
	if err := c.Resilience.Validate(); err != nil {
		return err
	}
	if err := faults.ValidateLinkWindows(c.LinkFaults); err != nil {
		return err
	}
	if !c.Resilience.Enabled() {
		for _, w := range c.LinkFaults {
			if w.Loss > 0 {
				return fmt.Errorf("loadgen: link loss windows require a request timeout (lost requests never complete)")
			}
		}
	}
	if c.Shards < 0 {
		return fmt.Errorf("loadgen: negative shard count %d", c.Shards)
	}
	if c.Shards > 0 {
		if c.Net.MinDelay() <= 0 {
			return fmt.Errorf("loadgen: sharding needs a positive link base delay for lookahead, got %v", c.Net.Base)
		}
		if c.TraceEvery > 0 {
			return fmt.Errorf("loadgen: per-request tracing is not supported on the sharded path (TraceEvery=%d, Shards=%d)", c.TraceEvery, c.Shards)
		}
	}
	return c.ClientHW.Validate()
}

// Generator drives one service from a set of client machines. Create once
// per scenario; call RunOnce per repetition. A generator is not safe for
// concurrent RunOnce calls: it owns a persistent simulation engine and
// request free list that successive runs reuse, which is what keeps
// steady-state request traffic allocation-free.
type Generator struct {
	cfg      Config
	backend  services.Backend
	machines []*hw.Machine

	// engine and pool persist across runs: Reset restores run-visible
	// state while keeping the event free list and the recycled requests.
	engine *sim.Engine
	pool   services.RequestPool

	// sharded holds the per-shard engines/pools and the shard
	// coordinator when cfg.Shards > 0 (see sharded.go); they persist
	// across runs exactly like engine/pool above.
	sharded *shardedState
}

// MachineSpec returns the client-machine deployment shape New builds
// for cfg: the machine count and the physical cores per machine. Two
// configs with equal specs (and equal ClientHW) need interchangeable
// machine sets — the key the envpool machine cache leases by.
func (c Config) MachineSpec() (machines, coresPerMachine int) {
	coresNeeded := c.ThreadsPerMachine
	if !c.TimeSensitive {
		coresNeeded *= 2 // separate spin-pacing and blocking-receive cores
	}
	if coresNeeded < 10 {
		coresNeeded = 10 // testbed machines have a 10-core socket
	}
	return c.Machines, coresNeeded
}

// BuildMachines constructs the client machines New would build for cfg:
// each machine gets enough physical cores for its event-loop threads
// (plus receive threads in busy-wait mode), mirroring per-core pinning
// on the testbed.
func BuildMachines(cfg Config) ([]*hw.Machine, error) {
	count, cores := cfg.MachineSpec()
	machines := make([]*hw.Machine, 0, count)
	for i := 0; i < count; i++ {
		m, err := hw.NewMachine(fmt.Sprintf("client-%d", i), cores, cfg.ClientHW)
		if err != nil {
			return nil, err
		}
		machines = append(machines, m)
	}
	return machines, nil
}

// New builds the generator and its client machines.
func New(cfg Config, backend services.Backend) (*Generator, error) {
	machines, err := BuildMachines(cfg)
	if err != nil {
		return nil, err
	}
	return NewWithMachines(cfg, backend, machines)
}

// NewWithMachines is New on prebuilt client machines — e.g. a set
// leased from an envpool so that scenarios sharing a client
// configuration reuse machines instead of rebuilding them. The
// machines must match cfg.MachineSpec(); every run resets them fully
// (hw.Machine.ResetRun), so reuse never changes results.
func NewWithMachines(cfg Config, backend services.Backend, machines []*hw.Machine) (*Generator, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	if backend == nil {
		return nil, fmt.Errorf("loadgen: backend is required")
	}
	count, cores := cfg.MachineSpec()
	if len(machines) != count {
		return nil, fmt.Errorf("loadgen: got %d machines, config needs %d", len(machines), count)
	}
	for _, m := range machines {
		if m.NumPhysicalCores() != cores {
			return nil, fmt.Errorf("loadgen: machine %s has %d cores, config needs %d", m.Name(), m.NumPhysicalCores(), cores)
		}
		if m.Config() != cfg.ClientHW {
			return nil, fmt.Errorf("loadgen: machine %s hardware config differs from ClientHW", m.Name())
		}
	}
	return &Generator{cfg: cfg, backend: backend, machines: machines}, nil
}

// Config returns the generator configuration.
func (g *Generator) Config() Config { return g.cfg }

// Backend returns the service under test — e.g. for collecting
// backend-side statistics (cluster routing, queue depths) after RunOnce.
func (g *Generator) Backend() services.Backend { return g.backend }

// Connections returns the total connection count.
func (g *Generator) Connections() int {
	return g.cfg.Machines * g.cfg.ThreadsPerMachine * g.cfg.ConnsPerThread
}

// RequestTrace is one request's full timeline, in microseconds since the
// start of the run. It makes the paper's overhead chain visible per
// request: everything between ClientNICUs and MeasuredUs is client-side
// receive overhead (IRQ, C-state exit, context switch, DVFS-stretched
// parsing).
type RequestTrace struct {
	ID            uint64
	ScheduledUs   float64 // target send per the inter-arrival schedule
	SentUs        float64 // generator timestamp / wire departure
	ServerArrive  float64
	ServerDepart  float64
	ClientNICUs   float64 // response reaches the client NIC
	MeasuredUs    float64 // generator's response timestamp
	RecvWakeState string  // C-state the receive core exited ("C0" = was awake/polling)
	RecvWakeUs    float64 // wake + dispatch cost paid on the receive path
}

// SendLagUs returns the workload distortion for this request.
func (t RequestTrace) SendLagUs() float64 { return t.SentUs - t.ScheduledUs }

// ClientRxOverheadUs returns the receive-path share of the measurement —
// the µs the paper's Figure 2/3 gap is made of.
func (t RequestTrace) ClientRxOverheadUs() float64 { return t.MeasuredUs - t.ClientNICUs }

// String renders a one-request waterfall.
func (t RequestTrace) String() string {
	return fmt.Sprintf(
		"req %d: sched %.1f → sent %.1f (lag %.1f) → srv %.1f..%.1f → nic %.1f → measured %.1f (rx overhead %.1f, wake %s %.1fµs)",
		t.ID, t.ScheduledUs, t.SentUs, t.SendLagUs(), t.ServerArrive, t.ServerDepart,
		t.ClientNICUs, t.MeasuredUs, t.ClientRxOverheadUs(), t.RecvWakeState, t.RecvWakeUs)
}

// RunResult holds one repetition's measurements.
type RunResult struct {
	// Latency summarizes the post-warmup end-to-end latencies in
	// microseconds as the generator measured them (point of measurement
	// in-app), reduced by the run's recorder: bit-exact under
	// metrics.Exact, within the documented error bound under
	// metrics.Streaming.
	Latency stats.Summary
	// SendLag summarizes the per-request send distortion (actual −
	// scheduled transmit time) in microseconds: how far the generated
	// workload deviated from the target inter-arrival process.
	SendLag stats.Summary
	// LatenciesUs are the recorder's retained raw latencies: every
	// post-warmup sample (in arrival order) in exact mode, a
	// deterministic fixed-size reservoir subsample in streaming mode.
	// The reservoir preserves the distribution but not arrival order:
	// fine for Shapiro–Wilk-style tests, not for serial-dependence
	// diagnostics — use exact mode (or per-run sequences) for those.
	LatenciesUs []float64
	// SendLagUs is the retained send-lag series, with the same
	// exact/reservoir semantics as LatenciesUs.
	SendLagUs []float64
	// Sent and Received count requests issued and responses measured
	// (including warmup). Sent counts schedule-driven first attempts
	// only; retries and hedges are in Resilience.
	Sent, Received int
	// Resilience counts the run's client-side fault handling (all zero
	// on fault-free runs with resilience off).
	Resilience ResilienceStats
	// ClientWakes aggregates client-core C-state exits by state.
	ClientWakes map[string]int
	// ServerWakes aggregates server-core C-state exits by state.
	ServerWakes map[string]int
	// ClientEnergyProxy is the power-weighted residency integral of the
	// client machines (LP saves energy — the trade-off of §VI).
	ClientEnergyProxy float64
	// Traces holds sampled per-request timelines when Config.TraceEvery
	// is set.
	Traces []RequestTrace
}

// thread is one generator event-loop thread (plus an optional separate
// receive core in busy-wait mode).
type thread struct {
	id       int
	pace     *hw.Core
	recv     *hw.Core // == pace for block-wait designs
	arrivals workload.Interarrival
	payloads PayloadSource
	kvSource KVPayloadSource // non-nil when payloads supports the inline KV form
	nextSend sim.Time
	c2s, s2c *netmodel.Link
	connBase int // first connection id owned by this thread
	connSeq  int // round-robin cursor over the thread's connections
	conns    int

	// classes is the thread's per-class pacing state on the mix path
	// (Config.Classes / Phases); nil on the legacy single-process path,
	// where arrivals/nextSend above carry the schedule.
	classes []classState

	// Adaptive-pacing state: EWMA of recent send lag and whether the
	// thread is currently spinning instead of sleeping between sends.
	lagEWMA  float64 // µs
	spinning bool

	// res is the thread's resilience stream (backoff jitter draws), split
	// at setup only when resilience is on so the fault-free path's draw
	// sequence stays untouched.
	res *rng.Stream
}

// run carries one repetition's mutable state. On the legacy path there
// is exactly one per repetition; on the sharded path there is one per
// shard, and the sharding fields below are set — each shard's run owns
// the threads of its shard's machines, its own request pool and ID
// space, and buffers measurements for the epoch merge instead of
// recording directly.
type run struct {
	g        *Generator
	engine   *sim.Engine
	threads  []*thread // all threads, shared across shard runs (disjoint ownership)
	rec      *recorder
	duration sim.Time
	nextID   uint64
	sent     int
	// phases is the compiled phase program (nil without one).
	phases *phaseSchedule

	// res is the run's resolved resilience config (nil when disabled —
	// the timeout/retry/hedge stages are wired only when set), rp the
	// backend's route previewer for hedge aiming (nil without one), and
	// fstats the run's resilience counters (per shard on the sharded
	// path; plain sums, so they merge order-independently).
	res    *ResilienceConfig
	rp     routePreviewer
	fstats ResilienceStats

	// pool is the run's request free list: &Generator.pool on the legacy
	// path, the shard's persistent pool on the sharded path.
	pool *services.RequestPool
	// sr/shard identify the sharded run this is one shard of (sr nil on
	// the legacy path).
	sr    *shardedRun
	shard int
	// buf is the shard's time-ordered measurement buffer, merged into
	// the global recorder at epoch barriers (sharded path only).
	buf []shardRecord
}

// recorder routes post-warmup measurements into the run's metrics
// recorders (exact or streaming, per Config.Recorders).
type recorder struct {
	warmupUntil sim.Time
	lat, lag    metrics.Recorder
	received    int
	traces      []RequestTrace
}

func (r *recorder) record(measuredAt sim.Time, latency, lag time.Duration) {
	r.received++
	if measuredAt < r.warmupUntil {
		return
	}
	r.lat.Record(float64(latency) / 1e3)
	r.lag.Record(float64(lag) / 1e3)
}

// result assembles the recorder's reductions into a RunResult.
func (r *recorder) result() RunResult {
	return RunResult{
		Latency:     r.lat.Summary(),
		SendLag:     r.lag.Summary(),
		LatenciesUs: r.lat.Samples(),
		SendLagUs:   r.lag.Samples(),
		Received:    r.received,
		Traces:      r.traces,
	}
}

// RunOnce executes one independent repetition of the given duration and
// returns its measurements. The environment — client and server machines,
// service state, RNG streams — is reset first, matching the paper's
// methodology of resetting between runs so samples are iid (§III).
func (g *Generator) RunOnce(stream *rng.Stream, duration time.Duration) (RunResult, error) {
	if duration <= 0 {
		return RunResult{}, fmt.Errorf("loadgen: non-positive run duration %v", duration)
	}
	if g.cfg.Shards > 0 {
		return g.runSharded(stream, duration)
	}
	engine := reuseEngine(&g.engine)
	for _, m := range g.machines {
		m.ResetRun(stream.Split())
	}
	for _, m := range g.backend.Machines() {
		m.ResetRun(stream.Split())
	}
	g.backend.ResetRun(engine, stream.Split())

	end := sim.Time(0).Add(duration)
	g.backend.StartRun(end)

	r := &run{
		g:        g,
		engine:   engine,
		duration: end,
		rec:      &recorder{warmupUntil: sim.Time(0).Add(g.cfg.Warmup)},
		phases:   newPhaseSchedule(g.cfg.Phases, g.cfg.PhasesRepeat),
		pool:     &g.pool,
	}
	if g.cfg.Resilience.Enabled() {
		res := g.cfg.Resilience.resolved()
		r.res = &res
		r.rp, _ = g.backend.(routePreviewer)
	}
	lsched := faults.CompileLink(g.cfg.LinkFaults, end)

	mixed := g.cfg.mixed()
	var mix []ClassConfig
	if mixed {
		mix = g.cfg.mixClasses()
	}

	nThreads := g.cfg.Machines * g.cfg.ThreadsPerMachine
	perThreadRate := g.cfg.RateQPS / float64(nThreads)
	for i := 0; i < nThreads; i++ {
		machine := g.machines[i/g.cfg.ThreadsPerMachine]
		slot := i % g.cfg.ThreadsPerMachine
		th := &thread{id: i, pace: machine.Core(slot), connBase: i * g.cfg.ConnsPerThread, conns: g.cfg.ConnsPerThread}
		if g.cfg.TimeSensitive {
			th.recv = th.pace
		} else {
			th.recv = machine.Core(g.cfg.ThreadsPerMachine + slot)
		}
		if mixed {
			// Mix path: one arrival source + draw stream per class, in
			// class order, before the payload and link streams.
			if err := r.setupClasses(th, mix, perThreadRate, stream); err != nil {
				return RunResult{}, err
			}
		} else {
			arr, err := workload.NewExponentialArrivals(perThreadRate, stream.Split())
			if err != nil {
				return RunResult{}, err
			}
			th.arrivals = arr
		}
		th.payloads = g.cfg.Payloads(stream.Split())
		th.kvSource, _ = th.payloads.(KVPayloadSource)
		linkStream := stream.Split()
		var err error
		th.c2s, err = netmodel.New(g.cfg.Net, linkStream)
		if err != nil {
			return RunResult{}, err
		}
		th.s2c, err = netmodel.New(g.cfg.Net, linkStream.Split())
		if err != nil {
			return RunResult{}, err
		}
		if lsched != nil {
			th.c2s.SetDegrade(lsched)
			th.s2c.SetDegrade(lsched)
		}
		if r.res != nil {
			th.res = stream.Split()
		}
		r.threads = append(r.threads, th)

		if !g.cfg.TimeSensitive {
			// The pacing core spins from the start of the run and never
			// sleeps: time-insensitive busy-wait pacing.
			th.pace.Wake(0)
		}
		if mixed {
			// Random initial phase per class avoids synchronized starts
			// across both threads and classes.
			for ci := range th.classes {
				cs := &th.classes[ci]
				cs.nextSend = sim.Time(0).Add(time.Duration(stream.Float64() * float64(time.Second) / (perThreadRate * cs.cfg.Fraction)))
				r.scheduleClassSend(th, ci)
			}
		} else {
			// Random initial phase avoids synchronized thread starts.
			th.nextSend = sim.Time(0).Add(time.Duration(stream.Float64() * float64(time.Second) / perThreadRate))
			r.scheduleSend(th)
		}
	}

	// The recorder factory runs after the environment has drawn all its
	// streams, so an exact run's simulation is byte-identical to a
	// streaming run's — only the measurement reduction differs.
	var err error
	if r.rec.lat, r.rec.lag, err = g.cfg.recorders()(stream); err != nil {
		return RunResult{}, err
	}

	engine.RunUntil(end)

	res := r.rec.result()
	res.Sent = r.sent
	res.Resilience = r.fstats
	res.ClientWakes = make(map[string]int)
	res.ServerWakes = make(map[string]int)
	for _, m := range g.machines {
		for s, n := range m.IdleDistribution() {
			res.ClientWakes[s] += n
		}
		res.ClientEnergyProxy += m.EnergyProxy(duration)
	}
	for _, m := range g.backend.Machines() {
		for s, n := range m.IdleDistribution() {
			res.ServerWakes[s] += n
		}
	}
	return res, nil
}

// OnEvent implements sim.EventSink: the run is one state machine over the
// client-side event kinds, with the pooled request (or its thread) as the
// event argument — no per-request closures.
func (r *run) OnEvent(now sim.Time, arg sim.EventArg) {
	switch arg.U64 & evKindMask {
	case evSendTimer:
		// The class index of the mix path rides above the kind bits
		// (0 on the legacy path).
		r.onSendTimer(arg.Ptr.(*thread), int(arg.U64>>evKindBits), now)
	case evArrive:
		req := arg.Ptr.(*services.Request)
		if r.sr != nil && r.sr.cluster != nil {
			// Sharded cluster: the replica was picked at send time (so the
			// sender knew the destination shard); deliver without re-routing.
			r.sr.cluster.ArriveRouted(req, now)
		} else {
			r.g.backend.Arrive(req, now)
		}
	case evRespCross:
		// Sharded path only: a completion handed off to this (the owning
		// thread's) shard at departure + lookahead. Drawing the s2c jitter
		// here — instead of at the completion, which may run on another
		// shard — keeps each thread's s2c stream consumed in departure
		// order, exactly as the single-engine run consumes it.
		req := arg.Ptr.(*services.Request)
		departed := sim.Time(0).Add(time.Duration(arg.U64 >> evKindBits))
		th := r.threads[req.Thread]
		th.s2c.DeliverFrom(r.engine, departed, departed, req.ResponseBytes, r, sim.EventArg{Ptr: req, U64: evReceive})
	case evReceive:
		req := arg.Ptr.(*services.Request)
		r.onReceive(r.threads[req.Thread], req, now)
	case evDrainPace:
		th := arg.Ptr.(*thread)
		r.drainNow(th, th.pace, now)
	case evDrainRecv:
		th := arg.Ptr.(*thread)
		r.drainNow(th, th.recv, now)
	case evTimeout:
		r.onTimeout(arg.Ptr.(*services.Request), now)
	case evRetry:
		r.resend(arg.Ptr.(*services.Request), now)
	case evHedge:
		r.onHedge(arg.Ptr.(*services.Request), now)
	}
}

// OnComplete implements services.CompletionSink: the response leaves the
// server and crosses the return link to the owning thread's NIC. On the
// sharded path this executes on the replica's shard (the request's sink
// is the replica-shard run), and the response is handed off to the
// owning thread's shard instead of delivered directly.
func (r *run) OnComplete(req *services.Request, departed sim.Time) {
	if r.sr != nil {
		r.sr.completeSharded(r, req, departed)
		return
	}
	th := r.threads[req.Thread]
	th.s2c.Deliver(r.engine, departed, req.ResponseBytes, r, sim.EventArg{Ptr: req, U64: evReceive})
}

// scheduleSend arms the next send timer for th.
func (r *run) scheduleSend(th *thread) {
	if th.nextSend > r.duration {
		return
	}
	r.engine.AtSink(th.nextSend, r, sim.EventArg{Ptr: th, U64: evSendTimer})
}

// onSendTimer fires when the inter-arrival schedule says the next request
// is due. On a block-wait generator the thread may have to wake from a
// C-state and ramp its frequency first, shifting the actual transmit time —
// the workload distortion of §II. classIdx selects the mix class whose
// timer fired; it is 0 (and ignored) on the legacy path.
func (r *run) onSendTimer(th *thread, classIdx int, now sim.Time) {
	conn := th.connBase + th.connSeq%th.conns
	th.connSeq++
	req := r.pool.Get()
	reqBytes := th.fillPayload(req)
	var cs *classState
	if th.classes != nil {
		cs = &th.classes[classIdx]
		if cs.cfg.Size.enabled() {
			reqBytes = cs.cfg.Size.draw(cs.stream)
		}
	}
	req.ID = r.nextID
	req.Thread = th.id
	req.Conn = conn
	req.Scheduled = now
	r.nextID++
	r.sent++

	start := clientLoopStart(th.pace, now)
	sent := th.pace.Execute(start, sendWork)
	req.SentAt = sent
	req.FirstSent = sent
	r.dispatch(th, req, sent, reqBytes)

	// Open loop: the next send is scheduled from the target schedule, not
	// from this send's completion.
	if cs == nil {
		th.nextSend = now.Add(th.arrivals.Next())
		r.scheduleSend(th)
	} else {
		gap := cs.arrivals.Next()
		if r.phases != nil {
			gap = r.phases.scaleGap(gap, now)
		}
		if cs.cfg.Think.enabled() {
			gap += cs.cfg.Think.draw(cs.stream)
		}
		cs.nextSend = now.Add(gap)
		r.scheduleClassSend(th, classIdx)
	}

	if r.g.cfg.AdaptivePacing {
		lagUs := float64(sent.Sub(req.Scheduled)) / 1e3
		th.lagEWMA = 0.8*th.lagEWMA + 0.2*lagUs
		threshold := r.g.cfg.AdaptiveLagThreshold
		if threshold <= 0 {
			threshold = 10 * time.Microsecond
		}
		// Hysteresis: start spinning above the threshold, relax below half.
		if th.lagEWMA > float64(threshold)/1e3 {
			th.spinning = true
		} else if th.lagEWMA < float64(threshold)/2e3 {
			th.spinning = false
		}
	}
	r.drainCheck(th, th.pace, sent)
}

// onReceive fires when a response reaches the client NIC. With the
// default in-app measurement point, the measured latency includes IRQ
// delivery, any C-state exit and context switch, and the (possibly
// DVFS-stretched) response processing — everything between the wire and
// the generator's timestamp. Kernel-socket and NIC timestamping stop the
// clock earlier; the processing still happens (the generator must parse
// the response either way), it just no longer pollutes the measurement.
func (r *run) onReceive(th *thread, req *services.Request, now sim.Time) {
	if req.Abandoned {
		// A response for an attempt the client already gave up on — timed
		// out, or its hedge peer settled the pair first. The stale
		// response is discarded without waking the generator; the arrival
		// only returns the request to the pool (the recycle that the
		// timer-side bookkeeping must never perform itself).
		if req.Outcome == services.OutcomeTimedOut {
			r.fstats.LateDrops++
		}
		r.pool.Put(req)
		return
	}
	if r.res != nil {
		r.settle(req)
	}
	if req.Outcome == services.OutcomeFailed {
		// An error response: the replica crashed with the request in
		// flight, or no healthy replica existed to route to. Not a served
		// latency — count it, retry if the budget allows, and recycle
		// (this response IS the attempt's arrival; nothing else holds it).
		r.fstats.Failed++
		if r.res != nil {
			r.giveUpOrRetry(req, now)
		} else {
			r.fstats.Exhausted++
		}
		r.pool.Put(req)
		return
	}
	machine := r.g.machines[th.id/r.g.cfg.ThreadsPerMachine]
	wakeState, eligible, start, done := clientReceive(machine, th.recv, now)
	var stamped sim.Time
	switch r.g.cfg.Point {
	case core.NICHardware:
		stamped = now
	case core.KernelSocket:
		stamped = eligible
	default: // core.InApp
		stamped = done
	}
	// Latency is measured from the first attempt's departure (== SentAt
	// without retries), so a retried request's measurement includes the
	// timeouts and backoffs the client actually sat through; send lag
	// likewise reflects the first send against its schedule.
	origin := req.FirstSent
	if r.g.cfg.CorrectCoordinatedOmission {
		origin = req.Scheduled
	}
	r.fstats.Succeeded++
	if req.Hedged {
		r.fstats.HedgeWins++
	}
	if r.sr != nil {
		// Sharded: buffer under the receive event's instant (the global
		// merge key — see shardedRun.mergeRecords) instead of recording
		// directly; the epoch merge replays buffers in single-engine order.
		r.buf = append(r.buf, shardRecord{at: now, done: done, lat: stamped.Sub(origin), lag: req.FirstSent.Sub(req.Scheduled)})
	} else {
		r.rec.record(done, stamped.Sub(origin), req.FirstSent.Sub(req.Scheduled))
	}
	if n := r.g.cfg.TraceEvery; n > 0 && req.ID%uint64(n) == 0 && done >= r.rec.warmupUntil {
		r.rec.traces = append(r.rec.traces, RequestTrace{
			ID:            req.ID,
			ScheduledUs:   req.Scheduled.Microseconds(),
			SentUs:        req.SentAt.Microseconds(),
			ServerArrive:  req.ServerArrive.Microseconds(),
			ServerDepart:  req.ServerDepart.Microseconds(),
			ClientNICUs:   now.Microseconds(),
			MeasuredUs:    done.Microseconds(),
			RecvWakeState: wakeState,
			RecvWakeUs:    float64(start.Sub(eligible)) / 1e3,
		})
	}
	r.drainCheck(th, th.recv, done)
	// The request is fully measured: recycle it for the next send. On the
	// sharded path it returns to the pool of the shard that issued it —
	// the thread's shard, which is exactly where evReceive fires.
	r.pool.Put(req)
}

// drainCheck puts the event-loop core to sleep once it runs out of work.
// Block-wait threads sleep with the next send timer as the governor's
// deadline hint; dedicated receive cores sleep with no hint. Spinning
// pacing cores never sleep.
func (r *run) drainCheck(th *thread, core *hw.Core, at sim.Time) {
	if !r.g.cfg.TimeSensitive && core == th.pace {
		return // busy-wait pacing core spins
	}
	if th.spinning && core == th.pace {
		return // adaptive pacing has switched this thread to spinning
	}
	kind := evDrainRecv
	if core == th.pace {
		kind = evDrainPace
	}
	r.engine.AtSink(at, r, sim.EventArg{Ptr: th, U64: kind})
}

// drainNow is the drain event's body: sleep the core if it is still out
// of work when the event fires.
func (r *run) drainNow(th *thread, core *hw.Core, now sim.Time) {
	if core.Idle() || core.BusyUntil() > now {
		return
	}
	var hint time.Duration
	if next := th.earliestNextSend(); core == th.pace && next > now {
		hint = next.Sub(now)
	}
	core.Sleep(now, hint)
}

// ClientMachines exposes the generator's machines for diagnostics.
func (g *Generator) ClientMachines() []*hw.Machine { return g.machines }
