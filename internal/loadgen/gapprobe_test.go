package loadgen

import (
	"testing"
	"time"

	"repro/internal/hw"
	"repro/internal/rng"
	"repro/internal/stats"
)

// TestProbeServerIdleGaps reports the server-worker idle-gap distribution
// under LP vs HP clients — the mechanism behind the paper's Figure 3
// conclusion flip. Diagnostic; assertions are loose.
func TestProbeServerIdleGaps(t *testing.T) {
	if testing.Short() {
		t.Skip("diagnostic probe")
	}
	probe := func(client hw.Config) (gaps []float64, load string) {
		g := memcachedGen(t, client, 400_000)
		for _, m := range g.backend.Machines() {
			m.SetRecordIdleGaps(true)
		}
		if _, err := g.RunOnce(rng.New(4), 150*time.Millisecond); err != nil {
			t.Fatal(err)
		}
		for _, m := range g.backend.Machines() {
			for _, d := range m.AllIdleGaps() {
				gaps = append(gaps, float64(d)/1e3)
			}
		}
		return gaps, ""
	}
	lp, _ := probe(hw.LPConfig())
	hp, _ := probe(hw.HPConfig())
	ls, hs := stats.Summarize(lp), stats.Summarize(hp)
	t.Logf("LP-driven server idle gaps (µs): n=%d mean=%.1f median=%.1f p90=%.1f p99=%.1f",
		ls.N, ls.Mean, ls.Median, ls.P90, ls.P99)
	t.Logf("HP-driven server idle gaps (µs): n=%d mean=%.1f median=%.1f p90=%.1f p99=%.1f",
		hs.N, hs.Mean, hs.Median, hs.P90, hs.P99)
	if ls.Mean <= hs.Mean {
		t.Errorf("LP-driven idle gaps (mean %.1fµs) not longer than HP-driven (%.1fµs)", ls.Mean, hs.Mean)
	}
}
