package loadgen

import (
	"testing"
	"time"

	"repro/internal/core"
	"repro/internal/hw"
	"repro/internal/netmodel"
	"repro/internal/rng"
	"repro/internal/services"
	"repro/internal/stats"
)

func genWithPoint(t *testing.T, clientHW hw.Config, point core.MeasurementPoint) *Generator {
	t.Helper()
	backend, err := services.NewSynthetic(services.DefaultSyntheticConfig())
	if err != nil {
		t.Fatal(err)
	}
	g, err := New(Config{
		Machines:          2,
		ThreadsPerMachine: 2,
		ConnsPerThread:    5,
		RateQPS:           5_000,
		ClientHW:          clientHW,
		TimeSensitive:     true,
		Point:             point,
		Warmup:            20 * time.Millisecond,
		Net:               netmodel.DefaultConfig(),
		Payloads:          func(*rng.Stream) PayloadSource { return staticSource{} },
	}, backend)
	if err != nil {
		t.Fatal(err)
	}
	return g
}

func meanAt(t *testing.T, clientHW hw.Config, point core.MeasurementPoint) float64 {
	t.Helper()
	g := genWithPoint(t, clientHW, point)
	res, err := g.RunOnce(rng.New(77), 300*time.Millisecond)
	if err != nil {
		t.Fatal(err)
	}
	return stats.Mean(res.LatenciesUs)
}

func TestMeasurementPointsOrdering(t *testing.T) {
	// For the same LP client, the three measurement points must be strictly
	// nested: NIC < kernel-socket < in-app, since each later point adds
	// client-side path segments to the measurement.
	nic := meanAt(t, hw.LPConfig(), core.NICHardware)
	kernel := meanAt(t, hw.LPConfig(), core.KernelSocket)
	inApp := meanAt(t, hw.LPConfig(), core.InApp)
	t.Logf("LP measured means: NIC=%.1fµs kernel=%.1fµs in-app=%.1fµs", nic, kernel, inApp)
	if !(nic < kernel && kernel < inApp) {
		t.Errorf("measurement points not nested: NIC=%.1f kernel=%.1f in-app=%.1f", nic, kernel, inApp)
	}
	// The kernel point adds only IRQ + uncore DMA (a few µs); the in-app
	// point adds the wake/ctx/parse chain (tens of µs on LP).
	if inApp-kernel < 5*(kernel-nic) {
		t.Errorf("in-app overhead (%.1fµs) should dwarf kernel-point overhead (%.1fµs) on LP",
			inApp-kernel, kernel-nic)
	}
}

func TestNICTimestampingHidesClientConfig(t *testing.T) {
	// §II: with a NIC point of measurement, the client configuration
	// cannot pollute the measurement — LP and HP should agree closely.
	lp := meanAt(t, hw.LPConfig(), core.NICHardware)
	hp := meanAt(t, hw.HPConfig(), core.NICHardware)
	t.Logf("NIC-measured: LP=%.1fµs HP=%.1fµs", lp, hp)
	ratio := lp / hp
	if ratio > 1.35 {
		t.Errorf("NIC-measured LP/HP ratio = %.2f, want ≈1 (client invisible)", ratio)
	}
	// Contrast: in-app measurement shows the full gap.
	lpApp := meanAt(t, hw.LPConfig(), core.InApp)
	hpApp := meanAt(t, hw.HPConfig(), core.InApp)
	if lpApp/hpApp < ratio+0.3 {
		t.Errorf("in-app ratio %.2f not clearly above NIC ratio %.2f", lpApp/hpApp, ratio)
	}
}

func TestCoordinatedOmissionCorrection(t *testing.T) {
	// The corrected measurement charges send lag to latency. On an LP
	// client (large lag) the corrected numbers must exceed the raw ones
	// by roughly the mean send lag; on HP the two nearly coincide.
	run := func(clientHW hw.Config, correct bool) (lat, lag float64) {
		backend, err := services.NewSynthetic(services.DefaultSyntheticConfig())
		if err != nil {
			t.Fatal(err)
		}
		g, err := New(Config{
			Machines:                   2,
			ThreadsPerMachine:          2,
			ConnsPerThread:             5,
			RateQPS:                    10_000,
			ClientHW:                   clientHW,
			TimeSensitive:              true,
			CorrectCoordinatedOmission: correct,
			Warmup:                     20 * time.Millisecond,
			Net:                        netmodel.DefaultConfig(),
			Payloads:                   func(*rng.Stream) PayloadSource { return staticSource{} },
		}, backend)
		if err != nil {
			t.Fatal(err)
		}
		res, err := g.RunOnce(rng.New(88), 300*time.Millisecond)
		if err != nil {
			t.Fatal(err)
		}
		return stats.Mean(res.LatenciesUs), stats.Mean(res.SendLagUs)
	}
	lpRaw, lpLag := run(hw.LPConfig(), false)
	lpCorr, _ := run(hw.LPConfig(), true)
	hpRaw, _ := run(hw.HPConfig(), false)
	hpCorr, _ := run(hw.HPConfig(), true)
	t.Logf("LP raw=%.1f corrected=%.1f (lag %.1f) | HP raw=%.1f corrected=%.1f",
		lpRaw, lpCorr, lpLag, hpRaw, hpCorr)
	diff := lpCorr - lpRaw
	if diff < lpLag*0.7 || diff > lpLag*1.3 {
		t.Errorf("LP correction added %.1fµs, want ≈ mean send lag %.1fµs", diff, lpLag)
	}
	if hpCorr-hpRaw > 5 {
		t.Errorf("HP correction added %.1fµs, want small (accurate sends)", hpCorr-hpRaw)
	}
	if lpCorr-lpRaw < 5*(hpCorr-hpRaw) {
		t.Error("correction should matter far more on the untuned client")
	}
}
