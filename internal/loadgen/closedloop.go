package loadgen

import (
	"fmt"
	"time"

	"repro/internal/hw"
	"repro/internal/metrics"
	"repro/internal/netmodel"
	"repro/internal/rng"
	"repro/internal/services"
	"repro/internal/sim"
)

// ClosedLoopConfig describes a closed-loop workload generator (§II): a
// finite population of blocking clients, each holding one outstanding
// request and optionally thinking between response and next request.
// Because the next send depends on when the previous response arrived,
// client-side timing inaccuracy compounds: a late-measured response delays
// the next request, shifting the whole sequence (the paper: "any timing
// inaccuracy can further impact the time when a successive request is
// sent").
type ClosedLoopConfig struct {
	Machines          int
	ThreadsPerMachine int
	// ClientsPerThread is the number of blocking clients a thread
	// multiplexes; total population = Machines × Threads × Clients.
	ClientsPerThread int
	// ThinkTime is the mean exponential pause between receiving a
	// response and issuing the next request (0 = immediate re-issue).
	ThinkTime time.Duration
	ClientHW  hw.Config
	Payloads  PayloadFactory
	Warmup    time.Duration
	Net       netmodel.Config
	// Recorders builds each run's measurement recorders; nil selects
	// metrics.ExactFactory (see Config.Recorders).
	Recorders metrics.Factory
}

// recorders returns the configured factory, defaulting to exact.
func (c ClosedLoopConfig) recorders() metrics.Factory {
	if c.Recorders != nil {
		return c.Recorders
	}
	return metrics.ExactFactory
}

// Validate reports configuration errors.
func (c ClosedLoopConfig) Validate() error {
	if c.Machines < 1 || c.ThreadsPerMachine < 1 || c.ClientsPerThread < 1 {
		return fmt.Errorf("loadgen: closed loop needs ≥1 machine/thread/client, got %d/%d/%d",
			c.Machines, c.ThreadsPerMachine, c.ClientsPerThread)
	}
	if c.ThinkTime < 0 {
		return fmt.Errorf("loadgen: negative think time %v", c.ThinkTime)
	}
	if c.Payloads == nil {
		return fmt.Errorf("loadgen: payload factory is required")
	}
	if c.Warmup < 0 {
		return fmt.Errorf("loadgen: negative warmup %v", c.Warmup)
	}
	return c.ClientHW.Validate()
}

// ClosedLoopGenerator drives a service with a fixed client population.
// Like Generator, it owns a persistent engine and request free list that
// successive RunOnce calls reuse; it is not safe for concurrent runs.
type ClosedLoopGenerator struct {
	cfg      ClosedLoopConfig
	backend  services.Backend
	machines []*hw.Machine

	engine *sim.Engine
	pool   services.RequestPool
}

// NewClosedLoop builds the generator.
func NewClosedLoop(cfg ClosedLoopConfig, backend services.Backend) (*ClosedLoopGenerator, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	if backend == nil {
		return nil, fmt.Errorf("loadgen: backend is required")
	}
	g := &ClosedLoopGenerator{cfg: cfg, backend: backend}
	cores := cfg.ThreadsPerMachine
	if cores < 10 {
		cores = 10
	}
	for i := 0; i < cfg.Machines; i++ {
		m, err := hw.NewMachine(fmt.Sprintf("closed-client-%d", i), cores, cfg.ClientHW)
		if err != nil {
			return nil, err
		}
		g.machines = append(g.machines, m)
	}
	return g, nil
}

// Population returns the total number of blocking clients.
func (g *ClosedLoopGenerator) Population() int {
	return g.cfg.Machines * g.cfg.ThreadsPerMachine * g.cfg.ClientsPerThread
}

// ClosedLoopResult extends RunResult with throughput, the closed-loop
// system's dependent variable (rate is not controlled, it emerges from
// population, think time and latency via Little's law).
type ClosedLoopResult struct {
	RunResult
	// ThroughputQPS is the measured completion rate over the measurement
	// window.
	ThroughputQPS float64
}

// RunOnce executes one repetition of the given duration.
func (g *ClosedLoopGenerator) RunOnce(stream *rng.Stream, duration time.Duration) (ClosedLoopResult, error) {
	if duration <= 0 {
		return ClosedLoopResult{}, fmt.Errorf("loadgen: non-positive run duration %v", duration)
	}
	engine := reuseEngine(&g.engine)
	for _, m := range g.machines {
		m.ResetRun(stream.Split())
	}
	for _, m := range g.backend.Machines() {
		m.ResetRun(stream.Split())
	}
	g.backend.ResetRun(engine, stream.Split())
	end := sim.Time(0).Add(duration)
	g.backend.StartRun(end)

	r := &closedRun{
		g:      g,
		engine: engine,
		end:    end,
		rec:    &recorder{warmupUntil: sim.Time(0).Add(g.cfg.Warmup)},
		think:  stream.Split(),
	}

	nThreads := g.cfg.Machines * g.cfg.ThreadsPerMachine
	for ti := 0; ti < nThreads; ti++ {
		machine := g.machines[ti/g.cfg.ThreadsPerMachine]
		th := &thread{
			id:       ti,
			pace:     machine.Core(ti % g.cfg.ThreadsPerMachine),
			payloads: g.cfg.Payloads(stream.Split()),
			connBase: ti * g.cfg.ClientsPerThread,
			conns:    g.cfg.ClientsPerThread,
		}
		th.kvSource, _ = th.payloads.(KVPayloadSource)
		th.recv = th.pace
		linkStream := stream.Split()
		var err error
		th.c2s, err = netmodel.New(g.cfg.Net, linkStream)
		if err != nil {
			return ClosedLoopResult{}, err
		}
		th.s2c, err = netmodel.New(g.cfg.Net, linkStream.Split())
		if err != nil {
			return ClosedLoopResult{}, err
		}
		r.threads = append(r.threads, th)
		// Stagger client start-up like a ramping connection pool.
		for c := 0; c < g.cfg.ClientsPerThread; c++ {
			conn := th.connBase + c
			at := sim.Time(0).Add(time.Duration(stream.Float64() * float64(time.Millisecond)))
			engine.AtSink(at, r, sim.EventArg{Ptr: th, U64: packIssue(conn)})
		}
	}

	// As in Generator.RunOnce, recorders come last so the environment's
	// stream draws are independent of the measurement mode.
	var err error
	if r.rec.lat, r.rec.lag, err = g.cfg.recorders()(stream); err != nil {
		return ClosedLoopResult{}, err
	}

	engine.RunUntil(end)

	measureSpan := duration - g.cfg.Warmup
	rr := r.rec.result()
	rr.Sent = r.sent
	rr.ClientWakes = make(map[string]int)
	rr.ServerWakes = make(map[string]int)
	res := ClosedLoopResult{
		RunResult:     rr,
		ThroughputQPS: float64(r.rec.lat.N()) / measureSpan.Seconds(),
	}
	for _, m := range g.machines {
		for s, n := range m.IdleDistribution() {
			res.ClientWakes[s] += n
		}
		res.ClientEnergyProxy += m.EnergyProxy(duration)
	}
	for _, m := range g.backend.Machines() {
		for s, n := range m.IdleDistribution() {
			res.ServerWakes[s] += n
		}
	}
	return res, nil
}

type closedRun struct {
	g       *ClosedLoopGenerator
	engine  *sim.Engine
	threads []*thread
	rec     *recorder
	end     sim.Time
	think   *rng.Stream
	nextID  uint64
	sent    int
}

// packIssue packs the connection id of a closed-loop issue event above
// the kind bits of the typed event's scalar argument.
func packIssue(conn int) uint64 { return evIssue | uint64(conn)<<evKindBits }

// OnEvent implements sim.EventSink: the closed-loop run's state machine
// over pooled requests — issue, server arrival, NIC receive, core drain.
func (r *closedRun) OnEvent(now sim.Time, arg sim.EventArg) {
	switch arg.U64 & evKindMask {
	case evIssue:
		r.issue(arg.Ptr.(*thread), int(arg.U64>>evKindBits), now)
	case evArrive:
		r.g.backend.Arrive(arg.Ptr.(*services.Request), now)
	case evReceive:
		req := arg.Ptr.(*services.Request)
		r.receive(r.threads[req.Thread], req, now)
	case evDrainPace:
		th := arg.Ptr.(*thread)
		if th.pace.Idle() || th.pace.BusyUntil() > now {
			return
		}
		// A closed-loop thread has no send timer: no deadline hint.
		th.pace.Sleep(now, 0)
	}
}

// OnComplete implements services.CompletionSink: the response leaves the
// server and crosses the return link.
func (r *closedRun) OnComplete(req *services.Request, departed sim.Time) {
	th := r.threads[req.Thread]
	th.s2c.Deliver(r.engine, departed, req.ResponseBytes, r, sim.EventArg{Ptr: req, U64: evReceive})
}

// issue sends one request for a blocking client and schedules the next on
// its completion (+ think time).
func (r *closedRun) issue(th *thread, conn int, now sim.Time) {
	if now > r.end {
		return
	}
	req := r.g.pool.Get()
	reqBytes := th.fillPayload(req)
	req.ID = r.nextID
	req.Thread = th.id
	req.Conn = conn
	req.Scheduled = now
	req.SetCompletionSink(r)
	r.nextID++
	r.sent++

	start := clientLoopStart(th.pace, now)
	sent := th.pace.Execute(start, sendWork)
	req.SentAt = sent

	th.c2s.Deliver(r.engine, sent, reqBytes, r, sim.EventArg{Ptr: req, U64: evArrive})
	r.drainCheck(th, sent)
}

// receive measures the response, thinks, then issues the next request —
// the closed-loop dependency the paper describes: measurement delay feeds
// directly into the next send time.
func (r *closedRun) receive(th *thread, req *services.Request, now sim.Time) {
	machine := r.g.machines[th.id/r.g.cfg.ThreadsPerMachine]
	_, _, _, done := clientReceive(machine, th.recv, now)
	r.rec.record(done, done.Sub(req.SentAt), 0)
	r.drainCheck(th, done)

	conn := req.Conn
	r.g.pool.Put(req)
	next := done
	if r.g.cfg.ThinkTime > 0 {
		next = next.Add(time.Duration(r.think.Exp(1) * float64(r.g.cfg.ThinkTime)))
	}
	if next <= r.end {
		r.engine.AtSink(next, r, sim.EventArg{Ptr: th, U64: packIssue(conn)})
	}
}

// drainCheck sleeps the event-loop core once idle (via the typed drain
// event shared with the open-loop generator).
func (r *closedRun) drainCheck(th *thread, at sim.Time) {
	r.engine.AtSink(at, r, sim.EventArg{Ptr: th, U64: evDrainPace})
}

// ExpectedThroughput predicts the closed-loop completion rate from
// Little's law: N clients / (latency + think time).
func ExpectedThroughput(population int, meanLatency, thinkTime time.Duration) float64 {
	cycle := meanLatency + thinkTime
	if cycle <= 0 {
		return 0
	}
	return float64(population) / cycle.Seconds()
}

// MeanLatencyUs is a convenience over a result's latency summary.
func (r ClosedLoopResult) MeanLatencyUs() float64 { return r.Latency.Mean }
