package loadgen

import (
	"fmt"
	"time"

	"repro/internal/rng"
	"repro/internal/services"
	"repro/internal/sim"
)

// This file is the client-side resilience layer: per-request timeouts,
// bounded retries with exponential backoff and decorrelated jitter, and
// optional hedged requests — new stages on the pooled-request state
// machine of loadgen.go, paired with the fault injection in
// internal/faults. Everything here is gated on ResilienceConfig.Timeout
// being set: a zero config leaves the fault-free request path untouched,
// branch for branch and allocation for allocation (the alloc benchmarks
// pin this).
//
// Ownership protocol. A pooled request may only be recycled by the
// arrival of its own response (onReceive), never by a timer: when an
// attempt times out, the server — or the in-flight response — may still
// hold the pointer, so the request is marked Abandoned and recycled when
// the stale response eventually lands. An attempt whose message was lost
// on a degraded link has no response and leaks from the pool until the
// run ends; that is bounded by the loss window and accepted (the
// zero-alloc gate covers only the resilience-off path). Timers always
// live on the primary attempt of a hedge pair and fire on the owning
// thread's shard, so every Cancel is engine-local on the sharded path.
//
// Determinism. Backoff jitter draws come from a per-thread resilience
// stream split at setup only when resilience is on (preserving the
// fault-free draw sequence), and every timer is scheduled from events
// that fire on the thread's own shard at instants both execution modes
// share — so sharded runs stay byte-identical to single-engine runs with
// the full timeout/retry/hedge machinery active.

// ResilienceConfig enables client-side fault tolerance on the request
// path. The zero value disables it entirely.
type ResilienceConfig struct {
	// Timeout is the per-attempt response deadline, measured from the
	// attempt's wire departure. 0 disables the whole resilience layer
	// (and is the only valid setting for Retries/Hedge = 0 configs).
	Timeout time.Duration
	// Retries is the maximum number of re-sends after the first attempt.
	// Retries are triggered by timeouts and by failed (error) responses.
	Retries int
	// RetryBase is the backoff floor before the first retry (default
	// 100 µs when retries are enabled).
	RetryBase time.Duration
	// RetryCap bounds the decorrelated-jitter backoff growth (default
	// 50 × RetryBase).
	RetryCap time.Duration
	// Hedge, when positive, issues a duplicate of a still-unanswered
	// first attempt after this delay, aimed away from the primary's
	// replica; the first response of the pair wins. Must be below
	// Timeout. Retries are never hedged.
	Hedge time.Duration
}

// Enabled reports whether the resilience layer is active.
func (c ResilienceConfig) Enabled() bool { return c.Timeout > 0 }

// Validate reports configuration errors.
func (c ResilienceConfig) Validate() error {
	if c.Timeout < 0 {
		return fmt.Errorf("loadgen: negative request timeout %v", c.Timeout)
	}
	if c.Retries < 0 {
		return fmt.Errorf("loadgen: negative retry budget %d", c.Retries)
	}
	if c.RetryBase < 0 || c.RetryCap < 0 {
		return fmt.Errorf("loadgen: negative retry backoff (base %v, cap %v)", c.RetryBase, c.RetryCap)
	}
	if c.Hedge < 0 {
		return fmt.Errorf("loadgen: negative hedge delay %v", c.Hedge)
	}
	if c.Timeout == 0 {
		switch {
		case c.Retries > 0:
			return fmt.Errorf("loadgen: retries require a request timeout (retries %d, timeout 0)", c.Retries)
		case c.Hedge > 0:
			return fmt.Errorf("loadgen: hedged requests require a request timeout (hedge %v, timeout 0)", c.Hedge)
		case c.RetryBase > 0 || c.RetryCap > 0:
			return fmt.Errorf("loadgen: retry backoff configured without a timeout")
		}
		return nil
	}
	if c.RetryBase > 0 && c.RetryCap > 0 && c.RetryCap < c.RetryBase {
		return fmt.Errorf("loadgen: retry backoff cap %v below base %v", c.RetryCap, c.RetryBase)
	}
	if c.Hedge > 0 && c.Hedge >= c.Timeout {
		return fmt.Errorf("loadgen: hedge delay %v must be below the timeout %v", c.Hedge, c.Timeout)
	}
	return nil
}

// resolved returns the config with backoff defaults filled in, so the
// per-event handlers never branch on unset fields.
func (c ResilienceConfig) resolved() ResilienceConfig {
	if c.RetryBase <= 0 {
		c.RetryBase = 100 * time.Microsecond
	}
	if c.RetryCap <= 0 {
		c.RetryCap = 50 * c.RetryBase
	}
	return c
}

// decorrelated draws the next backoff: uniform in [base, 3·prev], capped
// — exponential backoff with decorrelated jitter, which grows like plain
// exponential backoff in expectation but desynchronizes retry storms.
func (c ResilienceConfig) decorrelated(stream *rng.Stream, prev time.Duration) time.Duration {
	d := c.RetryBase
	if hi := 3 * prev; hi > c.RetryBase {
		d = c.RetryBase + time.Duration(stream.Float64()*float64(hi-c.RetryBase))
	}
	if d > c.RetryCap {
		d = c.RetryCap
	}
	return d
}

// ResilienceStats counts one run's client-side fault handling. All
// fields are plain sums, so shard counters merge order-independently.
type ResilienceStats struct {
	// Timeouts counts attempts abandoned by the per-attempt timeout.
	Timeouts int
	// Retries counts re-sends issued after timeouts or failed responses.
	Retries int
	// Hedges counts hedge clones issued; HedgeWins counts the clones
	// whose response beat the primary's.
	Hedges, HedgeWins int
	// Failed counts error responses received (crashed replica, or no
	// healthy replica to route to).
	Failed int
	// Exhausted counts requests given up on terminally: the retry budget
	// ran out (or, with resilience off, a failure had no budget at all).
	Exhausted int
	// LateDrops counts responses that arrived after their attempt had
	// already timed out.
	LateDrops int
	// Succeeded counts requests measured OK (including warmup).
	Succeeded int
}

// add accumulates other into s (the sharded path's epoch-free merge).
func (s *ResilienceStats) add(other ResilienceStats) {
	s.Timeouts += other.Timeouts
	s.Retries += other.Retries
	s.Hedges += other.Hedges
	s.HedgeWins += other.HedgeWins
	s.Failed += other.Failed
	s.Exhausted += other.Exhausted
	s.LateDrops += other.LateDrops
	s.Succeeded += other.Succeeded
}

// routePreviewer is the optional backend capability hedging needs: the
// replica a request was (or will deterministically be) routed to, so the
// hedge clone can aim away from it. cluster.ReplicaSet implements it;
// the answer is only authoritative under pure routing (consistent
// hashing), which the experiment layer enforces for hedged cluster runs.
type routePreviewer interface {
	RouteFor(req *services.Request) int
}

// dispatch sends an attempt — first send, retry or hedge clone — across
// the thread's c2s link and, when resilience is on, arms the per-attempt
// timeout and the primary's hedge timer. Timers are scheduled on the
// thread's own shard so later cancels and fires stay engine-local.
func (r *run) dispatch(th *thread, req *services.Request, sent sim.Time, reqBytes int) {
	if r.sr != nil {
		r.sr.deliverArrive(r, th, req, sent, reqBytes)
	} else {
		req.SetCompletionSink(r)
		th.c2s.Deliver(r.engine, sent, reqBytes, r, sim.EventArg{Ptr: req, U64: evArrive})
	}
	if r.res == nil {
		return
	}
	req.WireBytes = reqBytes
	if req.Hedged {
		return // the primary's timeout covers the pair
	}
	req.TimeoutEv = r.engine.AtSink(sent.Add(r.res.Timeout), r, sim.EventArg{Ptr: req, U64: evTimeout})
	if r.res.Hedge > 0 && req.Attempt == 0 {
		req.HedgeEv = r.engine.AtSink(sent.Add(r.res.Hedge), r, sim.EventArg{Ptr: req, U64: evHedge})
	}
}

// onTimeout fires when an attempt's response deadline passes without an
// answer: abandon the attempt (and its hedge clone, if one is in
// flight), then retry or give up. The request is NOT recycled here — the
// response may still arrive and recycles it on landing.
func (r *run) onTimeout(req *services.Request, now sim.Time) {
	req.TimeoutEv = sim.EventID{}
	req.Abandoned = true
	req.Outcome = services.OutcomeTimedOut
	r.fstats.Timeouts++
	r.engine.Cancel(req.HedgeEv)
	req.HedgeEv = sim.EventID{}
	if c := req.Peer; c != nil {
		c.Abandoned = true
		c.Outcome = services.OutcomeTimedOut
		c.Peer = nil
		req.Peer = nil
	}
	r.giveUpOrRetry(req, now)
}

// giveUpOrRetry either schedules a fresh retry attempt after a backoff
// or records the request as terminally failed. The retry is a new pooled
// request carrying the original's identity; the old attempt keeps its
// own pointer lifecycle (see the ownership protocol above).
func (r *run) giveUpOrRetry(req *services.Request, now sim.Time) {
	if req.Attempt >= r.res.Retries {
		r.fstats.Exhausted++
		return
	}
	th := r.threads[req.Thread]
	prev := req.Backoff
	if prev <= 0 {
		prev = r.res.RetryBase
	}
	backoff := r.res.decorrelated(th.res, prev)
	nr := r.pool.Get()
	nr.ID = req.ID
	nr.Thread = req.Thread
	nr.Conn = req.Conn
	nr.Scheduled = req.Scheduled
	nr.FirstSent = req.FirstSent
	nr.WireBytes = req.WireBytes
	nr.Payload = req.Payload
	nr.KV = req.KV
	nr.HasKV = req.HasKV
	nr.Attempt = req.Attempt + 1
	nr.Backoff = backoff
	r.fstats.Retries++
	r.engine.AtSink(now.Add(backoff), r, sim.EventArg{Ptr: nr, U64: evRetry})
}

// resend fires when a retry's backoff expires: the attempt pays the same
// client-side send work as a first send and goes back on the wire.
func (r *run) resend(req *services.Request, now sim.Time) {
	th := r.threads[req.Thread]
	start := clientLoopStart(th.pace, now)
	sent := th.pace.Execute(start, sendWork)
	req.SentAt = sent
	r.dispatch(th, req, sent, req.WireBytes)
	r.drainCheck(th, th.pace, sent)
}

// onHedge fires when a first attempt is still unanswered after the hedge
// delay: issue a duplicate aimed away from the primary's replica. The
// pair settles on whichever response arrives first.
func (r *run) onHedge(req *services.Request, now sim.Time) {
	req.HedgeEv = sim.EventID{}
	if req.Abandoned {
		return
	}
	th := r.threads[req.Thread]
	c := r.pool.Get()
	c.ID = req.ID
	c.Thread = req.Thread
	c.Conn = req.Conn
	c.Scheduled = req.Scheduled
	c.FirstSent = req.FirstSent
	c.WireBytes = req.WireBytes
	c.Payload = req.Payload
	c.KV = req.KV
	c.HasKV = req.HasKV
	c.Attempt = req.Attempt
	c.Hedged = true
	if r.rp != nil {
		if rep := r.rp.RouteFor(req); rep >= 0 {
			c.Avoid = rep + 1
		}
	}
	c.Peer = req
	req.Peer = c
	r.fstats.Hedges++
	start := clientLoopStart(th.pace, now)
	sent := th.pace.Execute(start, sendWork)
	c.SentAt = sent
	r.dispatch(th, c, sent, c.WireBytes)
	r.drainCheck(th, th.pace, sent)
}

// settle finalizes an attempt pair when its first response lands: cancel
// the primary's pending timers and abandon the peer so its later
// response is discarded. Safe for unhedged attempts too (Peer nil, and
// cancelling an already-fired or zero event is a no-op).
func (r *run) settle(req *services.Request) {
	p := req
	if req.Hedged && req.Peer != nil {
		p = req.Peer // timers always live on the primary
	}
	r.engine.Cancel(p.TimeoutEv)
	r.engine.Cancel(p.HedgeEv)
	p.TimeoutEv, p.HedgeEv = sim.EventID{}, sim.EventID{}
	if other := req.Peer; other != nil {
		other.Abandoned = true
		other.Outcome = services.OutcomeHedgeWon
		other.Peer = nil
		req.Peer = nil
	}
}
