package loadgen

import (
	"math"
	"testing"
	"time"

	"repro/internal/hw"
	"repro/internal/netmodel"
	"repro/internal/rng"
	"repro/internal/services"
	"repro/internal/stats"
)

func syntheticGen(t testing.TB, clientHW hw.Config, rate float64, timeSensitive bool) *Generator {
	t.Helper()
	backend, err := services.NewSynthetic(services.DefaultSyntheticConfig())
	if err != nil {
		t.Fatal(err)
	}
	g, err := New(Config{
		Machines:          2,
		ThreadsPerMachine: 2,
		ConnsPerThread:    5,
		RateQPS:           rate,
		ClientHW:          clientHW,
		TimeSensitive:     timeSensitive,
		Warmup:            20 * time.Millisecond,
		Net:               netmodel.DefaultConfig(),
		Payloads: func(stream *rng.Stream) PayloadSource {
			return staticSource{}
		},
	}, backend)
	if err != nil {
		t.Fatal(err)
	}
	return g
}

type staticSource struct{}

func (staticSource) Next() (any, int) { return struct{}{}, 64 }

func TestConfigValidation(t *testing.T) {
	base := Config{
		Machines: 1, ThreadsPerMachine: 1, ConnsPerThread: 1,
		RateQPS: 1000, ClientHW: hw.HPConfig(),
		Payloads: func(*rng.Stream) PayloadSource { return staticSource{} },
	}
	if err := base.Validate(); err != nil {
		t.Fatalf("valid config rejected: %v", err)
	}
	bad := base
	bad.Machines = 0
	if bad.Validate() == nil {
		t.Error("zero machines accepted")
	}
	bad = base
	bad.RateQPS = 0
	if bad.Validate() == nil {
		t.Error("zero rate accepted")
	}
	bad = base
	bad.Payloads = nil
	if bad.Validate() == nil {
		t.Error("nil payloads accepted")
	}
	bad = base
	bad.Warmup = -time.Second
	if bad.Validate() == nil {
		t.Error("negative warmup accepted")
	}
	bad = base
	bad.ClientHW.MaxCState = "C9"
	if bad.Validate() == nil {
		t.Error("invalid HW config accepted")
	}
}

func TestNewRequiresBackend(t *testing.T) {
	cfg := Config{
		Machines: 1, ThreadsPerMachine: 1, ConnsPerThread: 1,
		RateQPS: 1000, ClientHW: hw.HPConfig(),
		Payloads: func(*rng.Stream) PayloadSource { return staticSource{} },
	}
	if _, err := New(cfg, nil); err == nil {
		t.Error("nil backend accepted")
	}
}

func TestRunOnceRejectsBadDuration(t *testing.T) {
	g := syntheticGen(t, hw.HPConfig(), 5000, true)
	if _, err := g.RunOnce(rng.New(1), 0); err == nil {
		t.Error("zero duration accepted")
	}
}

func TestOpenLoopMaintainsRate(t *testing.T) {
	g := syntheticGen(t, hw.HPConfig(), 10_000, true)
	res, err := g.RunOnce(rng.New(2), 500*time.Millisecond)
	if err != nil {
		t.Fatal(err)
	}
	// An open-loop generator must deliver the offered load: 10K QPS over
	// 0.5s ≈ 5000 requests (±5%).
	if res.Sent < 4700 || res.Sent > 5300 {
		t.Errorf("sent %d requests in 0.5s at 10K QPS, want ≈5000", res.Sent)
	}
	if res.Received < res.Sent*95/100 {
		t.Errorf("received %d of %d", res.Received, res.Sent)
	}
}

func TestWarmupFiltering(t *testing.T) {
	g := syntheticGen(t, hw.HPConfig(), 10_000, true)
	res, err := g.RunOnce(rng.New(3), 100*time.Millisecond)
	if err != nil {
		t.Fatal(err)
	}
	// 20ms warmup of a 100ms run: recorded ≈ 80% of received.
	if len(res.LatenciesUs) >= res.Received {
		t.Error("warmup samples were not discarded")
	}
	frac := float64(len(res.LatenciesUs)) / float64(res.Received)
	if frac < 0.7 || frac > 0.9 {
		t.Errorf("post-warmup fraction = %v, want ≈0.8", frac)
	}
}

func TestLatenciesPositiveAndOrdered(t *testing.T) {
	g := syntheticGen(t, hw.LPConfig(), 20_000, true)
	res, err := g.RunOnce(rng.New(4), 200*time.Millisecond)
	if err != nil {
		t.Fatal(err)
	}
	for _, v := range res.LatenciesUs {
		if v <= 0 || math.IsNaN(v) {
			t.Fatalf("invalid latency %v", v)
		}
	}
	// End-to-end must exceed the 2×5µs network floor plus ~9µs service.
	if min := stats.Min(res.LatenciesUs); min < 15 {
		t.Errorf("min latency %vµs below physical floor", min)
	}
	// Send lag is non-negative by construction (sends can only be late).
	for _, v := range res.SendLagUs {
		if v < -1e-9 {
			t.Fatalf("negative send lag %v", v)
		}
	}
}

func TestDeterministicRuns(t *testing.T) {
	a := syntheticGen(t, hw.LPConfig(), 10_000, true)
	b := syntheticGen(t, hw.LPConfig(), 10_000, true)
	ra, err := a.RunOnce(rng.New(7), 100*time.Millisecond)
	if err != nil {
		t.Fatal(err)
	}
	rb, err := b.RunOnce(rng.New(7), 100*time.Millisecond)
	if err != nil {
		t.Fatal(err)
	}
	if len(ra.LatenciesUs) != len(rb.LatenciesUs) {
		t.Fatalf("sample counts differ: %d vs %d", len(ra.LatenciesUs), len(rb.LatenciesUs))
	}
	for i := range ra.LatenciesUs {
		if ra.LatenciesUs[i] != rb.LatenciesUs[i] {
			t.Fatalf("sample %d differs: %v vs %v", i, ra.LatenciesUs[i], rb.LatenciesUs[i])
		}
	}
}

func TestLPClientSleepsHPPolls(t *testing.T) {
	lp := syntheticGen(t, hw.LPConfig(), 5_000, true)
	hp := syntheticGen(t, hw.HPConfig(), 5_000, true)
	lpRes, err := lp.RunOnce(rng.New(8), 200*time.Millisecond)
	if err != nil {
		t.Fatal(err)
	}
	hpRes, err := hp.RunOnce(rng.New(8), 200*time.Millisecond)
	if err != nil {
		t.Fatal(err)
	}
	deep := lpRes.ClientWakes["C1E"] + lpRes.ClientWakes["C6"]
	if deep == 0 {
		t.Error("LP client never entered a deep C-state at low load")
	}
	if hpRes.ClientWakes["C1E"]+hpRes.ClientWakes["C6"]+hpRes.ClientWakes["C1"] != 0 {
		t.Errorf("HP client entered sleep states: %v", hpRes.ClientWakes)
	}
	// The LP client's point is saving energy: its proxy must be lower.
	if lpRes.ClientEnergyProxy >= hpRes.ClientEnergyProxy {
		t.Errorf("LP energy proxy %.3f not below HP %.3f", lpRes.ClientEnergyProxy, hpRes.ClientEnergyProxy)
	}
}

func TestBusyWaitPacingSendsAccurately(t *testing.T) {
	// Time-insensitive (busy-wait) pacing keeps sends on schedule even on
	// the LP client — the §VI rationale for its recommendation.
	block := syntheticGen(t, hw.LPConfig(), 10_000, true)
	spin := syntheticGen(t, hw.LPConfig(), 10_000, false)
	blockRes, err := block.RunOnce(rng.New(9), 200*time.Millisecond)
	if err != nil {
		t.Fatal(err)
	}
	spinRes, err := spin.RunOnce(rng.New(9), 200*time.Millisecond)
	if err != nil {
		t.Fatal(err)
	}
	blockLag := stats.Mean(blockRes.SendLagUs)
	spinLag := stats.Mean(spinRes.SendLagUs)
	if spinLag >= blockLag {
		t.Errorf("busy-wait send lag %vµs not below block-wait %vµs", spinLag, blockLag)
	}
	if spinLag > 10 {
		t.Errorf("busy-wait send lag %vµs, want small", spinLag)
	}
}

func TestConnectionsCount(t *testing.T) {
	g := syntheticGen(t, hw.HPConfig(), 1000, true)
	if g.Connections() != 2*2*5 {
		t.Errorf("connections = %d, want 20", g.Connections())
	}
	if len(g.ClientMachines()) != 2 {
		t.Errorf("machines = %d, want 2", len(g.ClientMachines()))
	}
	if g.Config().RateQPS != 1000 {
		t.Error("config not preserved")
	}
}
