package loadgen

import (
	"math"
	"runtime"
	"testing"
	"time"

	"repro/internal/hw"
	"repro/internal/metrics"
	"repro/internal/rng"
)

// streamingGen is syntheticGen with streaming recorders.
func streamingGen(t testing.TB, rate float64) *Generator {
	t.Helper()
	g := syntheticGen(t, hw.HPConfig(), rate, true)
	g.cfg.Recorders = metrics.StreamingFactory(metrics.StreamingConfig{})
	return g
}

// TestStreamingRunMatchesExact verifies the layering invariant the
// recorder-factory placement buys: exact and streaming runs simulate the
// identical system (same requests, same timings) and differ only in the
// measurement reduction, which must stay within the documented bound.
func TestStreamingRunMatchesExact(t *testing.T) {
	const dur = 900 * time.Millisecond
	exact := syntheticGen(t, hw.HPConfig(), 20_000, true)
	streaming := streamingGen(t, 20_000)

	er, err := exact.RunOnce(rng.New(7), dur)
	if err != nil {
		t.Fatal(err)
	}
	sr, err := streaming.RunOnce(rng.New(7), dur)
	if err != nil {
		t.Fatal(err)
	}

	// Same simulation: identical request counts and send-lag sample
	// counts (the reduction sees the same stream of measurements).
	if er.Sent != sr.Sent || er.Received != sr.Received || er.Latency.N != sr.Latency.N {
		t.Fatalf("simulations diverged: exact sent/recv/N = %d/%d/%d, streaming %d/%d/%d",
			er.Sent, er.Received, er.Latency.N, sr.Sent, sr.Received, sr.Latency.N)
	}
	// Exact moments agree to floating point; quantiles within the bound.
	if rel := math.Abs(sr.Latency.Mean-er.Latency.Mean) / er.Latency.Mean; rel > 1e-9 {
		t.Errorf("mean rel err %.2e", rel)
	}
	if sr.Latency.Min != er.Latency.Min || sr.Latency.Max != er.Latency.Max {
		t.Errorf("min/max differ: %v/%v vs %v/%v", sr.Latency.Min, sr.Latency.Max, er.Latency.Min, er.Latency.Max)
	}
	tol := metrics.DefaultRelativeAccuracy + 5e-3 // sketch bound + rank-convention slack at this N
	for _, q := range []struct {
		name     string
		got, ref float64
	}{
		{"P50", sr.Latency.Median, er.Latency.Median},
		{"P99", sr.Latency.P99, er.Latency.P99},
	} {
		if rel := math.Abs(q.got-q.ref) / q.ref; rel > tol {
			t.Errorf("%s = %v, exact %v (rel err %.4f > %.4f)", q.name, q.got, q.ref, rel, tol)
		}
	}

	// Retention: exact keeps everything, streaming a bounded reservoir.
	if len(er.LatenciesUs) != er.Latency.N {
		t.Errorf("exact retained %d of %d", len(er.LatenciesUs), er.Latency.N)
	}
	if len(sr.LatenciesUs) != metrics.DefaultReservoirSize {
		t.Errorf("streaming retained %d, want reservoir of %d", len(sr.LatenciesUs), metrics.DefaultReservoirSize)
	}
}

func TestStreamingRunDeterministic(t *testing.T) {
	const dur = 300 * time.Millisecond
	run := func() RunResult {
		g := streamingGen(t, 10_000)
		res, err := g.RunOnce(rng.New(3), dur)
		if err != nil {
			t.Fatal(err)
		}
		return res
	}
	a, b := run(), run()
	if a.Latency != b.Latency || a.SendLag != b.SendLag {
		t.Error("streaming summaries differ across identical runs")
	}
	for i := range a.LatenciesUs {
		if a.LatenciesUs[i] != b.LatenciesUs[i] {
			t.Fatalf("reservoir sample %d differs", i)
		}
	}
}

// retainedBytes reports the live-heap growth attributable to keeping
// res alive after a full GC — the per-run memory the sample path pins.
func retainedBytes(t testing.TB, run func() RunResult) (uint64, RunResult) {
	t.Helper()
	runtime.GC()
	var before runtime.MemStats
	runtime.ReadMemStats(&before)
	res := run()
	runtime.GC()
	var after runtime.MemStats
	runtime.ReadMemStats(&after)
	if after.HeapAlloc < before.HeapAlloc {
		return 0, res
	}
	return after.HeapAlloc - before.HeapAlloc, res
}

// BenchmarkRunMemoryPerSample pins the streaming pipeline's O(1) claim
// end to end: the heap retained per post-warmup sample after a full run.
// Exact mode retains ≥16 B/sample (two float64 series); streaming mode's
// retained bytes are a fixed cost (sketch + reservoir), so its per-sample
// figure falls toward zero as runs grow.
func BenchmarkRunMemoryPerSample(b *testing.B) {
	const (
		rate = 40_000
		dur  = 1 * time.Second
	)
	bench := func(b *testing.B, gen func(testing.TB) *Generator) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			g := gen(b)
			bytes, res := retainedBytes(b, func() RunResult {
				res, err := g.RunOnce(rng.New(uint64(i)+1), dur)
				if err != nil {
					b.Fatal(err)
				}
				return res
			})
			if res.Latency.N == 0 {
				b.Fatal("no samples")
			}
			b.ReportMetric(float64(bytes)/float64(res.Latency.N), "retainedB/sample")
			runtime.KeepAlive(res)
		}
	}
	b.Run("exact", func(b *testing.B) {
		bench(b, func(t testing.TB) *Generator { return syntheticGen(t, hw.HPConfig(), rate, true) })
	})
	b.Run("streaming", func(b *testing.B) {
		bench(b, func(t testing.TB) *Generator { return streamingGen(t, rate) })
	})
}
