package loadgen

import (
	"runtime"
	"testing"
	"time"

	"repro/internal/cluster"
	"repro/internal/hw"
	"repro/internal/metrics"
	"repro/internal/netmodel"
	"repro/internal/rng"
	"repro/internal/services"
)

// benchShardedCfg is the million-QPS replicated shape the sharding layer
// targets (the `sharded` figure preset's topology): 4 client machines ×
// 2 threads × 8 conns against 4 Memcached replicas behind consistent
// hashing — 8 partitions, so K=4 balances two per shard. Streaming
// recorders keep the per-iteration footprint flat, as the hour-long
// preset does.
func benchShardedCfg(k int) Config {
	return Config{
		Machines:          4,
		ThreadsPerMachine: 2,
		ConnsPerThread:    8,
		RateQPS:           1_000_000,
		ClientHW:          hw.HPConfig(),
		TimeSensitive:     true,
		Warmup:            2 * time.Millisecond,
		Net:               netmodel.DefaultConfig(),
		Payloads:          func(*rng.Stream) PayloadSource { return staticSource{} },
		Recorders:         metrics.StreamingFactory(metrics.StreamingConfig{}),
		Shards:            k,
	}
}

func benchCluster(tb testing.TB, replicas int) *cluster.ReplicaSet {
	tb.Helper()
	var backends []services.Backend
	for i := 0; i < replicas; i++ {
		b, err := services.NewSynthetic(services.DefaultSyntheticConfig())
		if err != nil {
			tb.Fatal(err)
		}
		backends = append(backends, b)
	}
	router, err := cluster.NewRouter(cluster.RouterConsistentHash)
	if err != nil {
		tb.Fatal(err)
	}
	rs, err := cluster.New(backends, replicas, router, nil)
	if err != nil {
		tb.Fatal(err)
	}
	return rs
}

// benchmarkShardedRun drives repeated 20 ms-virtual runs (~20K requests
// each at 1M QPS) through one generator, reusing machines and backend
// across iterations exactly as a sweep does.
func benchmarkShardedRun(b *testing.B, k int) {
	g, err := New(benchShardedCfg(k), benchCluster(b, 4))
	if err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := g.RunOnce(rng.New(uint64(i)+1), 20*time.Millisecond); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkShardedRun1(b *testing.B) { benchmarkShardedRun(b, 1) }
func BenchmarkShardedRun2(b *testing.B) { benchmarkShardedRun(b, 2) }
func BenchmarkShardedRun4(b *testing.B) { benchmarkShardedRun(b, 4) }

// benchmarkShardedLowRate is the break-even tracker for the epoch
// barrier work: at 100K QPS only ~0.26 events land per epoch per shard
// (rate × 2.6 µs lookahead), so the run is nearly all barrier + mailbox
// overhead and the 1-vs-4-shard ratio locates the sharding break-even.
// Tracked through benchdiff across BENCH_*.json rather than hard-gated
// — the crossover point is a hardware fact, not a correctness one. 50 ms
// virtual per iteration → ~5K requests, enough epochs to dominate setup.
func benchmarkShardedLowRate(b *testing.B, k int) {
	cfg := benchShardedCfg(k)
	cfg.RateQPS = 100_000
	g, err := New(cfg, benchCluster(b, 4))
	if err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := g.RunOnce(rng.New(uint64(i)+1), 50*time.Millisecond); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkShardedRunLowRate1(b *testing.B) { benchmarkShardedLowRate(b, 1) }
func BenchmarkShardedRunLowRate4(b *testing.B) { benchmarkShardedLowRate(b, 4) }

// TestShardedLowRateBreakEven reports (never gates) where the 100K-QPS
// shape sits relative to break-even, so the ROADMAP numbers have a
// reproducible source. A ratio ≥ 1 means 4 shards already pay for the
// barrier at this rate.
func TestShardedLowRateBreakEven(t *testing.T) {
	if testing.Short() {
		t.Skip("timing report skipped in -short mode")
	}
	if runtime.NumCPU() < 4 {
		t.Skipf("need ≥4 CPUs for a meaningful ratio, have %d", runtime.NumCPU())
	}
	run := func(k int) float64 {
		cfg := benchShardedCfg(k)
		cfg.RateQPS = 100_000
		g, err := New(cfg, benchCluster(t, 4))
		if err != nil {
			t.Fatal(err)
		}
		if _, err := g.RunOnce(rng.New(99), 10*time.Millisecond); err != nil { // warm pools
			t.Fatal(err)
		}
		best := 0.0
		for rep := 0; rep < 3; rep++ {
			start := time.Now()
			if _, err := g.RunOnce(rng.New(uint64(rep)+1), 200*time.Millisecond); err != nil {
				t.Fatal(err)
			}
			if s := time.Since(start).Seconds(); rep == 0 || s < best {
				best = s
			}
		}
		return best
	}
	serial := run(1)
	sharded := run(4)
	t.Logf("100K QPS: 1-shard %.3fs, 4-shard %.3fs — ratio %.2f× (≥1 means sharding pays at this rate)",
		serial, sharded, serial/sharded)
}

// shardedRunSeconds times one warm run of dur virtual time at K shards,
// best of three to shed scheduler noise.
func shardedRunSeconds(t *testing.T, k int, dur time.Duration) float64 {
	t.Helper()
	g, err := New(benchShardedCfg(k), benchCluster(t, 4))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := g.RunOnce(rng.New(99), 5*time.Millisecond); err != nil { // warm pools
		t.Fatal(err)
	}
	best := 0.0
	for rep := 0; rep < 3; rep++ {
		start := time.Now()
		if _, err := g.RunOnce(rng.New(uint64(rep)+1), dur); err != nil {
			t.Fatal(err)
		}
		if s := time.Since(start).Seconds(); rep == 0 || s < best {
			best = s
		}
	}
	return best
}

// TestShardedRunSpeedupAt4Shards is the PR's wall-clock gate: a
// million-QPS replicated run must complete ≥2× faster at -shards 4 than
// at -shards 1. The win scales with events-per-epoch ≈ event rate ×
// lookahead (~2.6 µs for the default link), so the gate pins the
// high-rate replicated shape sharding exists for; single-backend
// topologies such as hour-long's concentrate all server work on one
// shard and cap below this bar (see ROADMAP "Sharded engines" — use
// -parallel across reps there). Skipped below 4 hardware threads:
// conservative sync cannot beat 2× without ≥4 cores to run the shards.
func TestShardedRunSpeedupAt4Shards(t *testing.T) {
	if testing.Short() {
		t.Skip("timing gate skipped in -short mode")
	}
	if runtime.NumCPU() < 4 {
		t.Skipf("need ≥4 CPUs for a 4-shard speedup gate, have %d", runtime.NumCPU())
	}
	const dur = 100 * time.Millisecond // ~100K requests at 1M QPS
	serial := shardedRunSeconds(t, 1, dur)
	sharded := shardedRunSeconds(t, 4, dur)
	speedup := serial / sharded
	t.Logf("1-shard %.3fs, 4-shard %.3fs: speedup %.2f×", serial, sharded, speedup)
	if speedup < 2 {
		t.Errorf("4-shard speedup %.2f× below the 2× gate (1 shard %.3fs, 4 shards %.3fs)",
			speedup, serial, sharded)
	}
}
