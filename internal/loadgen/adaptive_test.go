package loadgen

import (
	"testing"
	"time"

	"repro/internal/hw"
	"repro/internal/netmodel"
	"repro/internal/rng"
	"repro/internal/services"
	"repro/internal/stats"
)

func adaptiveGen(t *testing.T, adaptive bool) *Generator {
	t.Helper()
	backend, err := services.NewSynthetic(services.DefaultSyntheticConfig())
	if err != nil {
		t.Fatal(err)
	}
	g, err := New(Config{
		Machines:          2,
		ThreadsPerMachine: 2,
		ConnsPerThread:    5,
		RateQPS:           20_000,
		ClientHW:          hw.LPConfig(),
		TimeSensitive:     true,
		AdaptivePacing:    adaptive,
		Warmup:            20 * time.Millisecond,
		Net:               netmodel.DefaultConfig(),
		Payloads:          func(*rng.Stream) PayloadSource { return staticSource{} },
	}, backend)
	if err != nil {
		t.Fatal(err)
	}
	return g
}

// TestAdaptivePacingRestoresSendAccuracy: the Lancet-style self-correcting
// extension — an LP client that notices its own send lag and switches to
// spinning should generate a workload nearly as faithful as a busy-wait
// design, without being configured for it up front.
func TestAdaptivePacingRestoresSendAccuracy(t *testing.T) {
	plain := adaptiveGen(t, false)
	adaptive := adaptiveGen(t, true)
	plainRes, err := plain.RunOnce(rng.New(31), 400*time.Millisecond)
	if err != nil {
		t.Fatal(err)
	}
	adaptiveRes, err := adaptive.RunOnce(rng.New(31), 400*time.Millisecond)
	if err != nil {
		t.Fatal(err)
	}
	plainLag := stats.Mean(plainRes.SendLagUs)
	adaptiveLag := stats.Mean(adaptiveRes.SendLagUs)
	t.Logf("LP send lag: plain=%.1fµs adaptive=%.1fµs", plainLag, adaptiveLag)
	if adaptiveLag >= plainLag/2 {
		t.Errorf("adaptive pacing lag %.1fµs not well below plain %.1fµs", adaptiveLag, plainLag)
	}
	// The cost: the adaptive client burns more energy (spinning cores).
	if adaptiveRes.ClientEnergyProxy <= plainRes.ClientEnergyProxy {
		t.Error("adaptive pacing should cost energy (spinning)")
	}
}

func TestAdaptivePacingOffByDefault(t *testing.T) {
	g := adaptiveGen(t, false)
	res, err := g.RunOnce(rng.New(32), 200*time.Millisecond)
	if err != nil {
		t.Fatal(err)
	}
	// Plain LP block-wait keeps sleeping: deep wakes present.
	if res.ClientWakes["C1E"]+res.ClientWakes["C6"] == 0 {
		t.Error("plain LP client never slept deeply")
	}
}
