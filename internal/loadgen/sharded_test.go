package loadgen

import (
	"reflect"
	"testing"
	"time"

	"repro/internal/cluster"
	"repro/internal/hw"
	"repro/internal/metrics"
	"repro/internal/netmodel"
	"repro/internal/rng"
	"repro/internal/services"
	"repro/internal/workload"
)

// shardedCfg is the differential-test base: small but exercising every
// client-side mechanism (multiple machines, multiplexed connections,
// warmup filtering).
func shardedCfg(timeSensitive bool) Config {
	return Config{
		Machines:          3,
		ThreadsPerMachine: 2,
		ConnsPerThread:    4,
		RateQPS:           30_000,
		ClientHW:          hw.HPConfig(),
		TimeSensitive:     timeSensitive,
		Warmup:            10 * time.Millisecond,
		Net:               netmodel.DefaultConfig(),
		Payloads:          func(*rng.Stream) PayloadSource { return staticSource{} },
	}
}

func newSynthetic(t *testing.T) services.Backend {
	t.Helper()
	b, err := services.NewSynthetic(services.DefaultSyntheticConfig())
	if err != nil {
		t.Fatal(err)
	}
	return b
}

// runCfg executes two repetitions (reuse across runs is part of the
// contract) and returns both results.
func runCfg(t *testing.T, cfg Config, backend services.Backend, seed uint64) []RunResult {
	t.Helper()
	g, err := New(cfg, backend)
	if err != nil {
		t.Fatal(err)
	}
	var out []RunResult
	for rep := 0; rep < 2; rep++ {
		res, err := g.RunOnce(rng.New(seed+uint64(rep)), 60*time.Millisecond)
		if err != nil {
			t.Fatal(err)
		}
		out = append(out, res)
	}
	return out
}

func diffResults(t *testing.T, label string, ref, got []RunResult) {
	t.Helper()
	if !reflect.DeepEqual(ref, got) {
		for rep := range ref {
			if ref[rep].Sent != got[rep].Sent || ref[rep].Received != got[rep].Received {
				t.Fatalf("%s rep %d: sent/received %d/%d, want %d/%d",
					label, rep, got[rep].Sent, got[rep].Received, ref[rep].Sent, ref[rep].Received)
			}
			for i := range ref[rep].LatenciesUs {
				if i < len(got[rep].LatenciesUs) && got[rep].LatenciesUs[i] != ref[rep].LatenciesUs[i] {
					t.Fatalf("%s rep %d: latency sample %d = %v, want %v",
						label, rep, i, got[rep].LatenciesUs[i], ref[rep].LatenciesUs[i])
				}
			}
		}
		t.Fatalf("%s: sharded run result diverges from single-engine", label)
	}
}

// TestShardedMatchesSingleEngine pins the tentpole guarantee at the
// generator level: a sharded run's RunResult — every retained sample, in
// order — is byte-identical to the legacy single-engine run at any K,
// for both pacing designs.
func TestShardedMatchesSingleEngine(t *testing.T) {
	for _, ts := range []bool{true, false} {
		cfg := shardedCfg(ts)
		ref := runCfg(t, cfg, newSynthetic(t), 7)
		for _, k := range []int{1, 2, 4} { // partitions = 3 machines + 1 backend
			cfg.Shards = k
			got := runCfg(t, cfg, newSynthetic(t), 7)
			label := "block-wait"
			if !ts {
				label = "busy-wait"
			}
			diffResults(t, label, ref, got)
		}
	}
}

// TestShardedMatchesSingleEngineStreaming repeats the differential with
// streaming recorders: the deterministic reservoir is order-sensitive,
// so this pins that the epoch merge replays samples in exactly the
// single-engine recording order, not merely the same multiset.
func TestShardedMatchesSingleEngineStreaming(t *testing.T) {
	cfg := shardedCfg(true)
	cfg.Recorders = metrics.StreamingFactory(metrics.StreamingConfig{})
	ref := runCfg(t, cfg, newSynthetic(t), 11)
	for _, k := range []int{2, 4} {
		cfg.Shards = k
		diffResults(t, "streaming", ref, runCfg(t, cfg, newSynthetic(t), 11))
	}
}

// TestShardedMatchesSingleEngineMixed covers the class/phase machinery
// through the sharded path.
func TestShardedMatchesSingleEngineMixed(t *testing.T) {
	cfg := shardedCfg(true)
	cfg.Classes = []ClassConfig{
		{Name: "get", Fraction: 0.8},
		{Name: "set", Fraction: 0.2, Arrival: workload.ArrivalConfig{Process: "gamma", CV: 2}},
	}
	cfg.Phases = []PhaseConfig{
		{Duration: 20 * time.Millisecond, RateScale: 1.0},
		{Duration: 20 * time.Millisecond, RateScale: 1.5},
	}
	ref := runCfg(t, cfg, newSynthetic(t), 13)
	for _, k := range []int{2, 4} {
		cfg.Shards = k
		diffResults(t, "mixed", ref, runCfg(t, cfg, newSynthetic(t), 13))
	}
}

func newCluster(t *testing.T, replicas int) *cluster.ReplicaSet {
	t.Helper()
	var backends []services.Backend
	for i := 0; i < replicas; i++ {
		backends = append(backends, newSynthetic(t))
	}
	router, err := cluster.NewRouter(cluster.RouterConsistentHash)
	if err != nil {
		t.Fatal(err)
	}
	rs, err := cluster.New(backends, replicas, router, nil)
	if err != nil {
		t.Fatal(err)
	}
	return rs
}

// TestShardedMatchesSingleEngineCluster pins the replicated-backend
// path: replicas spread over shards, requests routed at send time, and
// the cluster's routed accounting identical to the single-engine run.
func TestShardedMatchesSingleEngineCluster(t *testing.T) {
	cfg := shardedCfg(true)
	refRS := newCluster(t, 3)
	ref := runCfg(t, cfg, refRS, 17)
	refStats := refRS.Stats()
	for _, k := range []int{1, 2, 4} { // partitions = 3 machines + 3 replicas
		cfg.Shards = k
		rs := newCluster(t, 3)
		got := runCfg(t, cfg, rs, 17)
		diffResults(t, "cluster", ref, got)
		if !reflect.DeepEqual(refStats, rs.Stats()) {
			t.Fatalf("k=%d: cluster stats diverge: %+v vs %+v", k, rs.Stats(), refStats)
		}
	}
}

// TestShardedValidation pins the fail-fast paths.
func TestShardedValidation(t *testing.T) {
	cfg := shardedCfg(true)
	cfg.Shards = -1
	if cfg.Validate() == nil {
		t.Error("negative shard count accepted")
	}
	cfg.Shards = 2
	cfg.TraceEvery = 100
	if cfg.Validate() == nil {
		t.Error("tracing accepted on the sharded path")
	}
	cfg = shardedCfg(true)
	cfg.Shards = 2
	cfg.Net.Base = 0
	if cfg.Validate() == nil {
		t.Error("zero-lookahead network accepted on the sharded path")
	}

	// More shards than machine+replica partitions: run-time error.
	cfg = shardedCfg(true)
	cfg.Shards = 5 // 3 machines + 1 backend = 4 partitions
	g, err := New(cfg, newSynthetic(t))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := g.RunOnce(rng.New(1), 10*time.Millisecond); err == nil {
		t.Error("shard count above partition count accepted")
	}

	// Stateful routing policies cannot run sharded.
	cfg = shardedCfg(true)
	cfg.Shards = 2
	router, err := cluster.NewRouter(cluster.RouterRoundRobin)
	if err != nil {
		t.Fatal(err)
	}
	rs, err := cluster.New([]services.Backend{newSynthetic(t), newSynthetic(t)}, 2, router, nil)
	if err != nil {
		t.Fatal(err)
	}
	g, err = New(cfg, rs)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := g.RunOnce(rng.New(1), 10*time.Millisecond); err == nil {
		t.Error("round-robin router accepted on the sharded path")
	}
}
