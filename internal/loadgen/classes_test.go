package loadgen

import (
	"math"
	"reflect"
	"testing"
	"time"

	"repro/internal/hw"
	"repro/internal/netmodel"
	"repro/internal/rng"
	"repro/internal/services"
	"repro/internal/sim"
	"repro/internal/workload"
)

// synthGen builds a synthetic-service generator with the given mix.
func synthGen(t testing.TB, rate float64, classes []ClassConfig, phases []PhaseConfig, repeat bool) *Generator {
	t.Helper()
	backend, err := services.NewSynthetic(services.DefaultSyntheticConfig())
	if err != nil {
		t.Fatal(err)
	}
	g, err := New(Config{
		Machines:          2,
		ThreadsPerMachine: 1,
		ConnsPerThread:    10,
		RateQPS:           rate,
		ClientHW:          hw.HPConfig(),
		TimeSensitive:     true,
		Warmup:            10 * time.Millisecond,
		Net:               netmodel.DefaultConfig(),
		Payloads: func(*rng.Stream) PayloadSource {
			return fixedSource{bytes: 64}
		},
		Classes:      classes,
		Phases:       phases,
		PhasesRepeat: repeat,
	}, backend)
	if err != nil {
		t.Fatal(err)
	}
	return g
}

type fixedSource struct{ bytes int }

func (s fixedSource) Next() (any, int) { return struct{}{}, s.bytes }

// TestClassMixDeterministic pins that a mix run is a pure function of
// its stream: two generators with identical configs replay identical
// results, including the new per-class draws.
func TestClassMixDeterministic(t *testing.T) {
	classes := []ClassConfig{
		{Name: "interactive", Fraction: 0.6, Arrival: workload.ArrivalConfig{Process: workload.ArrivalGamma, CV: 2}},
		{Name: "batch", Fraction: 0.4, Arrival: workload.ArrivalConfig{Process: workload.ArrivalOnOff, OnMean: 20 * time.Millisecond, OffMean: 60 * time.Millisecond},
			Think: ThinkConfig{Dist: DistExponential, Mean: 500 * time.Microsecond},
			Size:  SizeConfig{Dist: DistLognormal, Mean: 512, Sigma: 0.5}},
	}
	phases := []PhaseConfig{
		{Name: "baseline", Duration: 100 * time.Millisecond, RateScale: 1},
		{Name: "spike", Duration: 50 * time.Millisecond, RateScale: 2.5},
	}
	a := synthGen(t, 20_000, classes, phases, true)
	b := synthGen(t, 20_000, classes, phases, true)
	ra, err := a.RunOnce(rng.New(42), 300*time.Millisecond)
	if err != nil {
		t.Fatal(err)
	}
	rb, err := b.RunOnce(rng.New(42), 300*time.Millisecond)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(ra, rb) {
		t.Fatal("identical mix configs produced different results")
	}
	if ra.Sent == 0 || ra.Received == 0 {
		t.Fatalf("mix run produced no traffic: sent=%d received=%d", ra.Sent, ra.Received)
	}
	// Reuse determinism: a second run on the same generator with a fresh
	// equal stream must also match (pooled requests and engine reuse).
	ra2, err := a.RunOnce(rng.New(42), 300*time.Millisecond)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(ra, ra2) {
		t.Fatal("engine/pool reuse changed mix results")
	}
}

// TestLegacyPathUnchangedByMixCode pins the tentpole's backward
// guarantee at this layer: a config without classes or phases must
// produce byte-identical results to the pre-mix code, which the
// figure-level goldens also verify end to end. Here we check the
// internal invariant the guarantee rests on: the legacy path never
// builds class state.
func TestLegacyPathUnchangedByMixCode(t *testing.T) {
	g := synthGen(t, 20_000, nil, nil, false)
	if _, err := g.RunOnce(rng.New(7), 100*time.Millisecond); err != nil {
		t.Fatal(err)
	}
	if g.cfg.mixed() {
		t.Fatal("config without classes/phases reports mixed")
	}
}

// TestPhaseProgramModulatesRate checks the phase engine end to end: a
// 3× intervention phase must deliver roughly 3× the arrivals of the
// baseline phase around it.
func TestPhaseProgramModulatesRate(t *testing.T) {
	phases := []PhaseConfig{
		{Name: "baseline", Duration: 100 * time.Millisecond, RateScale: 1},
		{Name: "intervention", Duration: 100 * time.Millisecond, RateScale: 3},
		{Name: "recovery", Duration: 100 * time.Millisecond, RateScale: 1},
	}
	g := synthGen(t, 20_000, nil, phases, false)
	res, err := g.RunOnce(rng.New(11), 300*time.Millisecond)
	if err != nil {
		t.Fatal(err)
	}
	// Expected sends: 0.1s·20k·(1+3+1) = 100ms-equivalents of 1×,3×,1×.
	want := 20_000 * 0.1 * 5
	if got := float64(res.Sent); math.Abs(got-want)/want > 0.10 {
		t.Errorf("phase program sent %v requests, want ≈%v", got, want)
	}
	// And a flat run at the same nominal rate sends ~3/5 of that.
	flat := synthGen(t, 20_000, nil, nil, false)
	fres, err := flat.RunOnce(rng.New(11), 300*time.Millisecond)
	if err != nil {
		t.Fatal(err)
	}
	if ratio := float64(res.Sent) / float64(fres.Sent); ratio < 1.5 {
		t.Errorf("phased/flat sent ratio %.2f, want ≈1.67", ratio)
	}
}

// TestPhaseScheduleScaleAt unit-tests the compiled program: boundaries,
// ramps, repetition, and the hold-last-scale tail.
func TestPhaseScheduleScaleAt(t *testing.T) {
	ps := newPhaseSchedule([]PhaseConfig{
		{Name: "up", Duration: 10 * time.Second, RateScale: 1, EndScale: 3},
		{Name: "down", Duration: 10 * time.Second, RateScale: 3, EndScale: 1},
	}, false)
	at := func(d time.Duration) float64 { return ps.scaleAt(sim.Time(0).Add(d)) }
	if got := at(0); got != 1 {
		t.Errorf("scale at 0 = %v, want 1", got)
	}
	if got := at(5 * time.Second); math.Abs(got-2) > 1e-9 {
		t.Errorf("scale mid-ramp = %v, want 2", got)
	}
	if got := at(10 * time.Second); math.Abs(got-3) > 1e-9 {
		t.Errorf("scale at phase boundary = %v, want 3", got)
	}
	if got := at(25 * time.Second); math.Abs(got-1) > 1e-9 {
		t.Errorf("scale past program end = %v, want last end scale 1", got)
	}

	cyc := newPhaseSchedule([]PhaseConfig{
		{Name: "day", Duration: 10 * time.Second, RateScale: 2},
		{Name: "night", Duration: 10 * time.Second, RateScale: 0.5},
	}, true)
	if got := cyc.scaleAt(sim.Time(0).Add(35 * time.Second)); got != 0.5 {
		t.Errorf("repeating scale at 35s = %v, want 0.5 (night of cycle 2)", got)
	}
}

// TestClassSizeOverrideChangesWireBytes checks the per-class size
// distribution reaches the network: a mix whose only difference is a
// much larger fixed request size must measure higher latency (bigger
// transfers on the same links).
func TestClassSizeOverrideChangesWireBytes(t *testing.T) {
	small := []ClassConfig{{Name: "s", Fraction: 1, Size: SizeConfig{Dist: DistFixed, Mean: 64}}}
	big := []ClassConfig{{Name: "b", Fraction: 1, Size: SizeConfig{Dist: DistFixed, Mean: 64 * 1024}}}
	gs := synthGen(t, 5_000, small, nil, false)
	gb := synthGen(t, 5_000, big, nil, false)
	rs, err := gs.RunOnce(rng.New(3), 200*time.Millisecond)
	if err != nil {
		t.Fatal(err)
	}
	rb, err := gb.RunOnce(rng.New(3), 200*time.Millisecond)
	if err != nil {
		t.Fatal(err)
	}
	if rb.Latency.Mean <= rs.Latency.Mean {
		t.Errorf("64KiB requests measured %.1fµs mean, 64B %.1fµs — size override not reaching the wire",
			rb.Latency.Mean, rs.Latency.Mean)
	}
}

// TestThinkTimeLowersEffectiveRate checks think time is superimposed on
// the schedule: with 1/rate-scale think pauses the class sends roughly
// half as many requests.
func TestThinkTimeLowersEffectiveRate(t *testing.T) {
	rate := 10_000.0
	perThread := rate / 2 // 2 machines × 1 thread
	think := time.Duration(float64(time.Second) / perThread)
	classes := []ClassConfig{{Name: "think", Fraction: 1, Think: ThinkConfig{Dist: DistFixed, Mean: think}}}
	g := synthGen(t, rate, classes, nil, false)
	res, err := g.RunOnce(rng.New(5), 400*time.Millisecond)
	if err != nil {
		t.Fatal(err)
	}
	flat := synthGen(t, rate, nil, nil, false)
	fres, err := flat.RunOnce(rng.New(5), 400*time.Millisecond)
	if err != nil {
		t.Fatal(err)
	}
	ratio := float64(res.Sent) / float64(fres.Sent)
	if math.Abs(ratio-0.5) > 0.05 {
		t.Errorf("think-time send ratio %.3f, want ≈0.5", ratio)
	}
}

// TestMixValidation covers the mix-hardening table at the loadgen layer.
func TestMixValidation(t *testing.T) {
	bad := [][]ClassConfig{
		{{Name: "neg", Fraction: -0.5}},
		{{Name: "zero", Fraction: 0}},
		{{Name: "half", Fraction: 0.5}}, // doesn't sum to 1
		{{Name: "a", Fraction: 0.7}, {Name: "b", Fraction: 0.7}},
		{{Name: "nan", Fraction: math.NaN()}},
		{{Name: "badarr", Fraction: 1, Arrival: workload.ArrivalConfig{Process: "bogus"}}},
		{{Name: "badgamma", Fraction: 1, Arrival: workload.ArrivalConfig{Process: workload.ArrivalGamma, CV: -2}}},
		{{Name: "badthink", Fraction: 1, Think: ThinkConfig{Dist: "weird", Mean: time.Second}}},
		{{Name: "badsize", Fraction: 1, Size: SizeConfig{Dist: DistLognormal, Mean: 100}}}, // sigma unset
	}
	for _, classes := range bad {
		if err := ValidateClasses(classes); err == nil {
			t.Errorf("classes %+v validated, want error", classes)
		}
	}
	badPhases := [][]PhaseConfig{
		{{Name: "zerodur", Duration: 0, RateScale: 1}},
		{{Name: "negdur", Duration: -time.Second, RateScale: 1}},
		{{Name: "zeroscale", Duration: time.Second, RateScale: 0}},
		{{Name: "negscale", Duration: time.Second, RateScale: -2}},
		{{Name: "nanscale", Duration: time.Second, RateScale: math.NaN()}},
		{{Name: "negend", Duration: time.Second, RateScale: 1, EndScale: -1}},
	}
	for _, phases := range badPhases {
		if err := ValidatePhases(phases); err == nil {
			t.Errorf("phases %+v validated, want error", phases)
		}
	}
}
