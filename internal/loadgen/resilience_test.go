package loadgen

import (
	"reflect"
	"testing"
	"time"

	"repro/internal/faults"
	"repro/internal/rng"
	"repro/internal/services"
)

// resilientCfg is the fault-path differential base: the sharded config
// plus the full client resilience stack — timeouts, bounded retries
// with backoff, hedging — and a link-degradation window with loss.
func resilientCfg() Config {
	cfg := shardedCfg(true)
	cfg.Resilience = ResilienceConfig{
		Timeout:   500 * time.Microsecond,
		Retries:   2,
		RetryBase: 50 * time.Microsecond,
		RetryCap:  500 * time.Microsecond,
		Hedge:     300 * time.Microsecond,
	}
	cfg.LinkFaults = []faults.LinkWindow{
		{Start: 0.4, End: 0.6, DelayFactor: 3, Loss: 0.05},
	}
	return cfg
}

// faultPlan is the server-side half of the differential: an explicit
// crash window, a straggler window, and randomly drawn crashes, so the
// compiled schedule exercises every window source.
func faultPlan() *faults.Plan {
	return &faults.Plan{
		Crashes:       []faults.CrashWindow{{Replica: 1, Start: 0.3, End: 0.6}},
		Stragglers:    []faults.StragglerWindow{{Replica: 2, Start: 0.2, End: 0.8, Factor: 4}},
		RandomCrashes: &faults.RandomCrashes{RatePerSec: 5, MeanDowntime: 2 * time.Millisecond},
	}
}

// TestShardedMatchesSingleEngineFaults pins the tentpole guarantee over
// the whole fault stack: a replicated fleet with crash, straggler and
// randomly drawn fault windows, link delay and loss, and the client's
// timeout/retry/hedge machinery produces byte-identical results — every
// retained sample and every resilience counter — at any shard count.
func TestShardedMatchesSingleEngineFaults(t *testing.T) {
	cfg := resilientCfg()
	refRS := newCluster(t, 3)
	refRS.InstallFaults(faultPlan())
	ref := runCfg(t, cfg, refRS, 29)
	refStats := refRS.Stats()
	if ref[0].Resilience == (ResilienceStats{}) {
		t.Fatal("fault plan produced no resilience activity; differential is vacuous")
	}
	for _, k := range []int{1, 2, 4} { // partitions = 3 machines + 3 replicas
		cfg.Shards = k
		rs := newCluster(t, 3)
		rs.InstallFaults(faultPlan())
		got := runCfg(t, cfg, rs, 29)
		diffResults(t, "faults", ref, got)
		if !reflect.DeepEqual(refStats, rs.Stats()) {
			t.Fatalf("k=%d: cluster fault stats diverge: %+v vs %+v", k, rs.Stats(), refStats)
		}
	}
}

// TestRetryAmplificationAllCrashed is the pinned-regression satellite:
// with every replica crashed for the whole run and a retry budget of 1,
// every scheduled request fails fast at the balancer, retries once, and
// exhausts — so the hand-computed expectations are exact invariants:
// nothing succeeds, every failure is either retried or exhausted, no
// timeout ever fires (failures return in microseconds), and the retry
// amplification is 2.0 minus only the end-of-run tail whose failure
// chains did not complete before the horizon.
func TestRetryAmplificationAllCrashed(t *testing.T) {
	cfg := shardedCfg(true)
	cfg.Resilience = ResilienceConfig{
		Timeout:   2 * time.Millisecond,
		Retries:   1,
		RetryBase: 50 * time.Microsecond,
		RetryCap:  200 * time.Microsecond,
	}
	rs := newCluster(t, 2)
	rs.InstallFaults(&faults.Plan{Crashes: []faults.CrashWindow{
		{Replica: 0, Start: 0, End: 1},
		{Replica: 1, Start: 0, End: 1},
	}})
	g, err := New(cfg, rs)
	if err != nil {
		t.Fatal(err)
	}
	res, err := g.RunOnce(rng.New(23), 60*time.Millisecond)
	if err != nil {
		t.Fatal(err)
	}
	fs := res.Resilience
	if fs.Succeeded != 0 {
		t.Errorf("succeeded = %d on an all-crashed fleet, want 0", fs.Succeeded)
	}
	if res.Latency.N != 0 {
		t.Errorf("collected %d latency samples on an all-crashed fleet", res.Latency.N)
	}
	if fs.Timeouts != 0 {
		t.Errorf("timeouts = %d, want 0 (balancer failures return fast)", fs.Timeouts)
	}
	if fs.Failed != fs.Retries+fs.Exhausted {
		t.Errorf("failure accounting broken: %d failed != %d retries + %d exhausted",
			fs.Failed, fs.Retries, fs.Exhausted)
	}
	amp := float64(res.Sent+fs.Retries+fs.Hedges) / float64(res.Sent)
	if amp < 1.95 || amp > 2.0 {
		t.Errorf("retry amplification = %.4f, want ≈2.0 (tail-adjusted)", amp)
	}
	// Determinism: the same seed reproduces the counters exactly.
	rs2 := newCluster(t, 2)
	rs2.InstallFaults(&faults.Plan{Crashes: []faults.CrashWindow{
		{Replica: 0, Start: 0, End: 1},
		{Replica: 1, Start: 0, End: 1},
	}})
	g2, err := New(cfg, rs2)
	if err != nil {
		t.Fatal(err)
	}
	res2, err := g2.RunOnce(rng.New(23), 60*time.Millisecond)
	if err != nil {
		t.Fatal(err)
	}
	if res2.Resilience != fs || res2.Sent != res.Sent {
		t.Errorf("retry accounting not deterministic: %+v vs %+v", res2.Resilience, fs)
	}
}

// TestResilienceOffAllocFree is the zero-overhead gate for the
// resilience stack: with no timeout configured the timeout/retry/hedge
// state machines must never engage — no resilience counters move — and
// the warm request path stays under 0.2 heap allocations per simulated
// request, the same bar the path cleared before resilience existed.
func TestResilienceOffAllocFree(t *testing.T) {
	backend, err := services.NewMemcached(services.DefaultMemcachedConfig())
	if err != nil {
		t.Fatal(err)
	}
	cfg := memcachedAllocConfig(100_000, backend)
	if cfg.Resilience.Enabled() {
		t.Fatal("alloc gate must run resilience-off")
	}
	g, err := New(cfg, backend)
	if err != nil {
		t.Fatal(err)
	}
	const runDur = 50 * time.Millisecond
	warm, err := g.RunOnce(rng.NewLabeled(13, "res-off-alloc"), runDur)
	if err != nil {
		t.Fatal(err)
	}
	if fs := warm.Resilience; fs != (ResilienceStats{Succeeded: fs.Succeeded}) {
		t.Fatalf("resilience counters moved with the stack off: %+v", fs)
	}
	reqs := warm.Sent
	if reqs < 1000 {
		t.Fatalf("warmup sent only %d requests", reqs)
	}
	perRun := testing.AllocsPerRun(3, func() {
		if _, err := g.RunOnce(rng.NewLabeled(13, "res-off-alloc"), runDur); err != nil {
			t.Fatal(err)
		}
	})
	perReq := perRun / float64(reqs)
	t.Logf("resilience-off path: %.4f allocs/request (%.0f allocs/run over %d requests)", perReq, perRun, reqs)
	if perReq > 0.2 {
		t.Errorf("resilience-off path allocates %.4f/request, want ≤ 0.2", perReq)
	}
}

// TestResilienceValidation pins the fail-fast paths of the new config
// surface.
func TestResilienceValidation(t *testing.T) {
	cases := []struct {
		name string
		mut  func(*Config)
	}{
		{"negative-timeout", func(c *Config) { c.Resilience.Timeout = -time.Millisecond }},
		{"retries-without-timeout", func(c *Config) { c.Resilience = ResilienceConfig{Retries: 2} }},
		{"hedge-without-timeout", func(c *Config) { c.Resilience = ResilienceConfig{Hedge: time.Millisecond} }},
		{"backoff-without-timeout", func(c *Config) { c.Resilience = ResilienceConfig{RetryBase: time.Millisecond} }},
		{"negative-retries", func(c *Config) {
			c.Resilience = ResilienceConfig{Timeout: time.Millisecond, Retries: -1}
		}},
		{"cap-below-base", func(c *Config) {
			c.Resilience = ResilienceConfig{Timeout: time.Millisecond, RetryBase: 2 * time.Millisecond, RetryCap: time.Millisecond}
		}},
		{"hedge-at-timeout", func(c *Config) {
			c.Resilience = ResilienceConfig{Timeout: time.Millisecond, Hedge: time.Millisecond}
		}},
		{"bad-link-window", func(c *Config) {
			c.LinkFaults = []faults.LinkWindow{{Start: 0.6, End: 0.3}}
		}},
		{"link-loss-without-timeout", func(c *Config) {
			c.LinkFaults = []faults.LinkWindow{{Start: 0.1, End: 0.2, Loss: 0.5}}
		}},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			cfg := shardedCfg(true)
			tc.mut(&cfg)
			if cfg.Validate() == nil {
				t.Error("invalid resilience config accepted")
			}
		})
	}
	ok := shardedCfg(true)
	ok.Resilience = ResilienceConfig{Timeout: time.Millisecond, Retries: 3, Hedge: 500 * time.Microsecond}
	ok.LinkFaults = []faults.LinkWindow{{Start: 0.1, End: 0.9, DelayFactor: 2, Loss: 0.01}}
	if err := ok.Validate(); err != nil {
		t.Errorf("valid resilience config rejected: %v", err)
	}
}
