package loadgen

import (
	"strings"
	"testing"
	"time"

	"repro/internal/hw"
	"repro/internal/netmodel"
	"repro/internal/rng"
	"repro/internal/services"
)

func tracedGen(t *testing.T, clientHW hw.Config) *Generator {
	t.Helper()
	backend, err := services.NewSynthetic(services.DefaultSyntheticConfig())
	if err != nil {
		t.Fatal(err)
	}
	g, err := New(Config{
		Machines:          2,
		ThreadsPerMachine: 2,
		ConnsPerThread:    5,
		RateQPS:           5_000,
		ClientHW:          clientHW,
		TimeSensitive:     true,
		TraceEvery:        7,
		Warmup:            20 * time.Millisecond,
		Net:               netmodel.DefaultConfig(),
		Payloads:          func(*rng.Stream) PayloadSource { return staticSource{} },
	}, backend)
	if err != nil {
		t.Fatal(err)
	}
	return g
}

func TestTracesCaptured(t *testing.T) {
	g := tracedGen(t, hw.LPConfig())
	res, err := g.RunOnce(rng.New(60), 300*time.Millisecond)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Traces) == 0 {
		t.Fatal("no traces captured")
	}
	// Sampling every 7th of ≈1500 requests → ≈200 traces.
	if len(res.Traces) < 50 {
		t.Errorf("only %d traces for TraceEvery=7", len(res.Traces))
	}
	for _, tr := range res.Traces {
		// Timeline must be monotone.
		if !(tr.ScheduledUs <= tr.SentUs && tr.SentUs < tr.ServerArrive &&
			tr.ServerArrive < tr.ServerDepart && tr.ServerDepart < tr.ClientNICUs &&
			tr.ClientNICUs < tr.MeasuredUs) {
			t.Fatalf("non-monotone trace: %s", tr)
		}
		if tr.SendLagUs() < 0 {
			t.Fatalf("negative send lag: %s", tr)
		}
		if tr.ClientRxOverheadUs() <= 0 {
			t.Fatalf("non-positive rx overhead: %s", tr)
		}
		if tr.ID%7 != 0 {
			t.Fatalf("trace of unsampled request %d", tr.ID)
		}
	}
}

func TestTracesExposeWakeStates(t *testing.T) {
	lp := tracedGen(t, hw.LPConfig())
	res, err := lp.RunOnce(rng.New(61), 300*time.Millisecond)
	if err != nil {
		t.Fatal(err)
	}
	deep := 0
	for _, tr := range res.Traces {
		switch tr.RecvWakeState {
		case "C1E", "C6":
			deep++
			if tr.RecvWakeUs < 5 {
				t.Errorf("deep wake %s with only %.1fµs cost: %s", tr.RecvWakeState, tr.RecvWakeUs, tr)
			}
		}
	}
	if deep == 0 {
		t.Error("LP traces show no deep-state receive wakes at low load")
	}

	hp := tracedGen(t, hw.HPConfig())
	hpRes, err := hp.RunOnce(rng.New(61), 300*time.Millisecond)
	if err != nil {
		t.Fatal(err)
	}
	for _, tr := range hpRes.Traces {
		if tr.RecvWakeState != "C0" {
			t.Fatalf("HP trace woke from %s", tr.RecvWakeState)
		}
	}
}

func TestTraceString(t *testing.T) {
	tr := RequestTrace{ID: 3, ScheduledUs: 1, SentUs: 2, ServerArrive: 7, ServerDepart: 18,
		ClientNICUs: 23, MeasuredUs: 60, RecvWakeState: "C1E", RecvWakeUs: 35}
	s := tr.String()
	for _, want := range []string{"req 3", "C1E", "rx overhead 37.0"} {
		if !strings.Contains(s, want) {
			t.Errorf("trace string missing %q: %s", want, s)
		}
	}
}

func TestTracingOffByDefault(t *testing.T) {
	g := syntheticGen(t, hw.HPConfig(), 5_000, true)
	res, err := g.RunOnce(rng.New(62), 100*time.Millisecond)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Traces) != 0 {
		t.Errorf("traces captured with TraceEvery=0")
	}
}
