package loadgen

import (
	"fmt"
	"time"

	"repro/internal/faults"
	"repro/internal/netmodel"
	"repro/internal/rng"
	"repro/internal/services"
	"repro/internal/sim"
	"repro/internal/workload"
)

// This file is the sharded run path: Config.Shards > 0 partitions one
// repetition across K per-shard sim.Engines driven in parallel by a
// sim.ShardSet, with the network link's minimum delay as conservative
// lookahead. The partition unit is a whole machine — client machines and
// backend replicas each carry machine-local mutable state (cores, DVFS,
// stores), so a machine never straddles shards. Partition p of the
// M+R-long list (client machines 0..M-1, then replicas 0..R-1) runs on
// shard p mod K.
//
// Cross-shard traffic crosses exactly where the model has a network
// link, so the link delay bounds it below:
//
//   - request:  client shard draws the c2s delay at send and mails the
//     arrival (deadline = sent + delay ≥ now + MinDelay);
//   - response: the replica shard mails an evRespCross hand-off at
//     departed + lookahead, and the thread's shard draws the s2c delay
//     when it fires — so each thread's s2c stream is consumed in
//     departure order, exactly as the single-engine run consumes it.
//
// Byte-identity with the single-engine run rests on four invariants:
// every RNG stream is owned by one shard and consumed in the same order
// the single engine consumes it; the setup draws from the master stream
// in exactly RunOnce's order; every deferred or cross-shard event
// carries its single-engine schedule instant as its ordering origin
// (sim.Engine.AtSinkFrom / ShardSet.Send), so the engines' (deadline,
// origin, seq) order reproduces the single engine's same-deadline FIFO
// tie-break — the mailed evArrive counts as scheduled at the send-timer
// instant, the evRespCross hand-off and its s2c draw at the departure
// instant — exactly the instants the single engine scheduled them at;
// and measurements are buffered per shard and merged at epoch barriers
// by (receive instant, shard) — the single-engine firing order — before
// replaying into one recorder, so even order-sensitive reductions
// (streaming reservoirs) see the exact single-engine sample sequence.
// The one residual approximation: two events originated on *different*
// shards in the same nanosecond AND bound for the same deadline
// nanosecond tie on the full (deadline, origin) key and fall back to
// adoption order rather than the single engine's scheduling sequence —
// a double same-ns coincidence the differential tests (which cover
// rates to 2M QPS, where single-ns coincidences are routine) never hit.

// ShardedBackend is the optional services.Backend extension the sharded
// path needs from a partitioned (replicated) backend. cluster.ReplicaSet
// implements it; plain single-instance backends don't and are placed on
// one shard whole.
type ShardedBackend interface {
	services.Backend
	// ShardPartitions returns the backend's partition count (replicas).
	ShardPartitions() int
	// ShardRoute picks and records (req.Replica) the serving replica at
	// send time. It must be safe to call from any shard's worker: routing
	// must be a pure function of the request and run-scoped read-only
	// state (consistent hashing qualifies; cursor- or load-based policies
	// do not).
	ShardRoute(req *services.Request) int
	// ArriveRouted delivers a request to the replica ShardRoute picked,
	// on that replica's own shard.
	ArriveRouted(req *services.Request, now sim.Time)
	// ResetRunSharded is ResetRun with per-replica engines: replica i
	// lives on engines[shardOf[i]]. It must consume stream exactly as
	// ResetRun would, and reject configurations whose routing or control
	// loops cannot run partitioned.
	ResetRunSharded(engines []*sim.Engine, shardOf []int, stream *rng.Stream) error
}

// shardedState is the Generator's persistent sharding machinery, reused
// across runs like the legacy engine and pool.
type shardedState struct {
	engines []*sim.Engine
	pools   []services.RequestPool
	set     *sim.ShardSet
}

// shardRecord is one buffered measurement awaiting the epoch merge.
type shardRecord struct {
	at       sim.Time // the evReceive instant: the global replay-order key
	done     sim.Time // the in-app measurement timestamp (warmup cutoff key)
	lat, lag time.Duration
}

// shardedRun ties one repetition's K shard runs together.
type shardedRun struct {
	g       *Generator
	set     *sim.ShardSet
	workers []*run // one per shard; workers[i] handles every event on shard i
	rec     *recorder
	// threadShard maps thread id → shard (all threads of a machine map
	// to the machine's shard).
	threadShard []int
	// cluster is the partitioned backend (nil for a single-instance
	// backend, which lives whole on backendShard).
	cluster      ShardedBackend
	replicaShard []int
	backendShard int
	lookahead    time.Duration
	// heads[i] is the merge cursor into workers[i].buf.
	heads []int
}

// shardOfMachine places client machine m: partition m of M+R.
func (sr *shardedRun) shardOfMachine(m int) int { return m % len(sr.workers) }

// deliverArrive routes a freshly sent request: pick the replica (fixing
// the destination shard), install the completion sink of the replica's
// shard, and deliver across the c2s link — locally when the replica
// shares the sender's shard, through the shard mailbox otherwise. The
// jitter draw happens here either way, on the sending thread's stream in
// send order, exactly like the single-engine path.
func (sr *shardedRun) deliverArrive(w *run, th *thread, req *services.Request, sent sim.Time, reqBytes int) {
	dst := sr.backendShard
	if sr.cluster != nil {
		if rep := sr.cluster.ShardRoute(req); rep >= 0 {
			dst = sr.replicaShard[rep]
		} else {
			// No healthy replica at send time: the "arrival" (the load
			// balancer's error) fires on the sender's own shard, after the
			// same c2s delay draw the single-engine path consumes.
			dst = w.shard
		}
	}
	wd := sr.workers[dst]
	req.SetCompletionSink(wd)
	if dst == w.shard {
		th.c2s.Deliver(w.engine, sent, reqBytes, wd, sim.EventArg{Ptr: req, U64: evArrive})
		return
	}
	// Cross-shard: same draw order as Link.DeliverFrom — delay first,
	// then the loss check (consumed only inside loss windows).
	deadline := sent.Add(th.c2s.DelayAt(sent, reqBytes))
	if th.c2s.LostAt(sent) {
		return // dropped on the wire; the sender's timeout notices
	}
	sr.set.Send(w.shard, dst, w.engine.Now(), deadline, wd, sim.EventArg{Ptr: req, U64: evArrive})
}

// completeSharded runs on the replica's shard when the response leaves
// the server: hand the request to the owning thread's shard at
// departed + lookahead (the earliest instant any response could reach
// the client anyway). Local completions take the same hand-off so a
// thread's responses are processed strictly in departure order no matter
// which shards its replicas live on.
func (sr *shardedRun) completeSharded(w *run, req *services.Request, departed sim.Time) {
	dst := sr.threadShard[req.Thread]
	deadline := departed.Add(sr.lookahead)
	arg := sim.EventArg{Ptr: req, U64: evRespCross | uint64(departed.Sub(sim.Time(0)))<<evKindBits}
	if dst == w.shard {
		w.engine.AtSink(deadline, sr.workers[dst], arg)
		return
	}
	sr.set.Send(w.shard, dst, departed, deadline, sr.workers[dst], arg)
}

// mergeRecords is the epoch hook: replay every buffered measurement
// below the watermark into the global recorder, in (receive instant,
// shard) order — the order the single engine would have recorded them.
// It runs on worker 0 with all shards quiescent below the watermark; the
// barrier's happens-before edges make the cross-shard buffer reads (and
// the cursor writes the next epoch's appends follow) race-free.
func (sr *shardedRun) mergeRecords(watermark sim.Time) {
	for {
		best := -1
		for i, w := range sr.workers {
			h := sr.heads[i]
			if h == len(w.buf) || w.buf[h].at >= watermark {
				continue
			}
			if best < 0 || w.buf[h].at < sr.workers[best].buf[sr.heads[best]].at {
				best = i
			}
		}
		if best < 0 {
			break
		}
		e := sr.workers[best].buf[sr.heads[best]]
		sr.heads[best]++
		sr.rec.record(e.done, e.lat, e.lag)
	}
	// Compact consumed prefixes so buffers stay small: only records at or
	// above the watermark (few — they are within one epoch window of the
	// horizon) are retained.
	for i, w := range sr.workers {
		if h := sr.heads[i]; h > 0 {
			n := copy(w.buf, w.buf[h:])
			w.buf = w.buf[:n]
			sr.heads[i] = 0
		}
	}
}

// runSharded is RunOnce's sharded twin: identical setup draws from the
// master stream, K engines instead of one, and a ShardSet run instead of
// RunUntil. See the file comment for the synchronization design.
func (g *Generator) runSharded(stream *rng.Stream, duration time.Duration) (RunResult, error) {
	k := g.cfg.Shards
	lookahead := g.cfg.Net.MinDelay()

	// Partition check: every shard needs at least one machine or replica.
	partitions := g.cfg.Machines
	cb, _ := g.backend.(ShardedBackend)
	if cb != nil {
		partitions += cb.ShardPartitions()
	} else {
		partitions++
	}
	if k > partitions {
		return RunResult{}, fmt.Errorf("loadgen: %d shards exceed the %d machine+replica partitions", k, partitions)
	}

	// Persistent per-shard machinery, built on the first run.
	if g.sharded == nil {
		st := &shardedState{
			engines: make([]*sim.Engine, k),
			pools:   make([]services.RequestPool, k),
		}
		for i := range st.engines {
			st.engines[i] = sim.NewEngine()
		}
		set, err := sim.NewShardSet(st.engines, lookahead)
		if err != nil {
			return RunResult{}, err
		}
		st.set = set
		g.sharded = st
	}
	engines := g.sharded.engines
	for _, e := range engines {
		e.Reset()
	}

	// From here the setup mirrors RunOnce draw for draw; only the engine
	// each consumer lands on differs.
	for _, m := range g.machines {
		m.ResetRun(stream.Split())
	}
	for _, m := range g.backend.Machines() {
		m.ResetRun(stream.Split())
	}

	sr := &shardedRun{
		g:            g,
		set:          g.sharded.set,
		rec:          &recorder{warmupUntil: sim.Time(0).Add(g.cfg.Warmup)},
		lookahead:    lookahead,
		heads:        make([]int, k),
		backendShard: g.cfg.Machines % k,
	}
	if cb != nil {
		sr.cluster = cb
		sr.replicaShard = make([]int, cb.ShardPartitions())
		for i := range sr.replicaShard {
			sr.replicaShard[i] = (g.cfg.Machines + i) % k
		}
		if err := cb.ResetRunSharded(engines, sr.replicaShard, stream.Split()); err != nil {
			return RunResult{}, err
		}
	} else {
		g.backend.ResetRun(engines[sr.backendShard], stream.Split())
	}

	end := sim.Time(0).Add(duration)
	g.backend.StartRun(end)

	phases := newPhaseSchedule(g.cfg.Phases, g.cfg.PhasesRepeat)
	var res *ResilienceConfig
	var rp routePreviewer
	if g.cfg.Resilience.Enabled() {
		rc := g.cfg.Resilience.resolved()
		res = &rc
		rp, _ = g.backend.(routePreviewer)
	}
	lsched := faults.CompileLink(g.cfg.LinkFaults, end)
	sr.workers = make([]*run, k)
	threads := make([]*thread, 0, g.cfg.Machines*g.cfg.ThreadsPerMachine)
	for s := 0; s < k; s++ {
		sr.workers[s] = &run{
			g:        g,
			engine:   engines[s],
			duration: end,
			phases:   phases,
			res:      res,
			rp:       rp,
			pool:     &g.sharded.pools[s],
			sr:       sr,
			shard:    s,
			// Disjoint per-shard ID spaces keep request IDs unique without
			// cross-shard coordination (IDs only feed diagnostics).
			nextID: uint64(s) << 48,
		}
	}

	mixed := g.cfg.mixed()
	var mix []ClassConfig
	if mixed {
		mix = g.cfg.mixClasses()
	}

	nThreads := g.cfg.Machines * g.cfg.ThreadsPerMachine
	sr.threadShard = make([]int, nThreads)
	perThreadRate := g.cfg.RateQPS / float64(nThreads)
	for i := 0; i < nThreads; i++ {
		mi := i / g.cfg.ThreadsPerMachine
		shard := sr.shardOfMachine(mi)
		sr.threadShard[i] = shard
		w := sr.workers[shard]
		machine := g.machines[mi]
		slot := i % g.cfg.ThreadsPerMachine
		th := &thread{id: i, pace: machine.Core(slot), connBase: i * g.cfg.ConnsPerThread, conns: g.cfg.ConnsPerThread}
		if g.cfg.TimeSensitive {
			th.recv = th.pace
		} else {
			th.recv = machine.Core(g.cfg.ThreadsPerMachine + slot)
		}
		if mixed {
			if err := w.setupClasses(th, mix, perThreadRate, stream); err != nil {
				return RunResult{}, err
			}
		} else {
			arr, err := workload.NewExponentialArrivals(perThreadRate, stream.Split())
			if err != nil {
				return RunResult{}, err
			}
			th.arrivals = arr
		}
		th.payloads = g.cfg.Payloads(stream.Split())
		th.kvSource, _ = th.payloads.(KVPayloadSource)
		linkStream := stream.Split()
		var err error
		th.c2s, err = netmodel.New(g.cfg.Net, linkStream)
		if err != nil {
			return RunResult{}, err
		}
		th.s2c, err = netmodel.New(g.cfg.Net, linkStream.Split())
		if err != nil {
			return RunResult{}, err
		}
		if lsched != nil {
			th.c2s.SetDegrade(lsched)
			th.s2c.SetDegrade(lsched)
		}
		if res != nil {
			th.res = stream.Split()
		}
		threads = append(threads, th)

		if !g.cfg.TimeSensitive {
			th.pace.Wake(0)
		}
		if mixed {
			for ci := range th.classes {
				cs := &th.classes[ci]
				cs.nextSend = sim.Time(0).Add(time.Duration(stream.Float64() * float64(time.Second) / (perThreadRate * cs.cfg.Fraction)))
				w.scheduleClassSend(th, ci)
			}
		} else {
			th.nextSend = sim.Time(0).Add(time.Duration(stream.Float64() * float64(time.Second) / perThreadRate))
			w.scheduleSend(th)
		}
	}
	// Every worker indexes the full thread table (responses are looked up
	// by req.Thread), but only ever fires events for its own shard's.
	for _, w := range sr.workers {
		w.threads = threads
	}

	// Recorder factory last, after all environment draws — same position
	// as the single-engine path.
	var err error
	if sr.rec.lat, sr.rec.lag, err = g.cfg.recorders()(stream); err != nil {
		return RunResult{}, err
	}

	sr.set.Run(end, sr.mergeRecords)

	out := sr.rec.result()
	for _, w := range sr.workers {
		out.Sent += w.sent
		out.Resilience.add(w.fstats)
	}
	out.ClientWakes = make(map[string]int)
	out.ServerWakes = make(map[string]int)
	for _, m := range g.machines {
		for s, n := range m.IdleDistribution() {
			out.ClientWakes[s] += n
		}
		out.ClientEnergyProxy += m.EnergyProxy(duration)
	}
	for _, m := range g.backend.Machines() {
		for s, n := range m.IdleDistribution() {
			out.ServerWakes[s] += n
		}
	}
	return out, nil
}
