package loadgen

import (
	"testing"
	"time"

	"repro/internal/hw"
	"repro/internal/rng"
	"repro/internal/stats"
)

// Ablation tests: each verifies that one deliberate modelling choice
// (DESIGN.md §5) is load-bearing — removing it measurably changes the
// behaviour the paper depends on.

// Ablation 1: the client ladder governor (periodic-tick kernels) is what
// produces deep C6 sleeps on the alternating response-wait/pacing-idle
// pattern. A menu governor with perfect timer hints stays shallow, killing
// the paper's deep-sleep measurement penalty.
func TestAblationLadderVsMenuClientGovernor(t *testing.T) {
	run := func(tickless bool) map[string]int {
		cfg := hw.LPConfig()
		cfg.Tickless = tickless // true → menu governor on the client
		g := syntheticGen(t, cfg, 5_000, true)
		res, err := g.RunOnce(rng.New(42), 300*time.Millisecond)
		if err != nil {
			t.Fatal(err)
		}
		return res.ClientWakes
	}
	ladder := run(false)
	menu := run(true)
	t.Logf("ladder wakes: %v", ladder)
	t.Logf("menu wakes:   %v", menu)
	if ladder["C6"] == 0 {
		t.Error("ladder governor produced no C6 wakes at low load")
	}
	if menu["C6"] >= ladder["C6"] {
		t.Errorf("menu governor C6 wakes (%d) not below ladder (%d) — ablation ineffective",
			menu["C6"], ladder["C6"])
	}
}

// Ablation 2: the dynamic-uncore DMA penalty contributes a measurable
// share of the LP receive path; pinning the uncore (the HP/server tuning
// the paper applies via MSR 0x620) removes it.
func TestAblationDynamicUncore(t *testing.T) {
	run := func(dynamic bool) float64 {
		cfg := hw.LPConfig()
		cfg.UncoreDynamic = dynamic
		g := syntheticGen(t, cfg, 5_000, true)
		res, err := g.RunOnce(rng.New(43), 300*time.Millisecond)
		if err != nil {
			t.Fatal(err)
		}
		return stats.Mean(res.LatenciesUs)
	}
	withUncore := run(true)
	pinned := run(false)
	diff := withUncore - pinned
	t.Logf("dynamic uncore: %.1fµs, pinned: %.1fµs (Δ %.1fµs)", withUncore, pinned, diff)
	if diff < 2 {
		t.Errorf("dynamic-uncore penalty Δ = %.1fµs, want ≥2µs", diff)
	}
}

// Ablation 3: the powersave P-state model is what slows LP response
// parsing; pinning the governor to performance while keeping C-states
// recovers part of the gap (the knob_ablation example's middle step).
func TestAblationPowersaveGovernor(t *testing.T) {
	run := func(gov hw.Governor) float64 {
		cfg := hw.LPConfig()
		cfg.Governor = gov
		g := syntheticGen(t, cfg, 5_000, true)
		res, err := g.RunOnce(rng.New(44), 300*time.Millisecond)
		if err != nil {
			t.Fatal(err)
		}
		return stats.Mean(res.LatenciesUs)
	}
	powersave := run(hw.GovernorPowersave)
	performance := run(hw.GovernorPerformance)
	t.Logf("powersave: %.1fµs, performance: %.1fµs", powersave, performance)
	if performance >= powersave {
		t.Error("performance governor did not reduce measured latency")
	}
}

// Ablation 4: the separate receive core of the busy-wait design still pays
// sleep-state penalties — only the *send* path is protected. This is why
// the paper's HDSearch LP measurements remain inflated (7–17%) even though
// its client busy-waits.
func TestAblationBusyWaitRecvPathStillExposed(t *testing.T) {
	g := syntheticGen(t, hw.LPConfig(), 5_000, false) // busy-wait pacing
	res, err := g.RunOnce(rng.New(45), 300*time.Millisecond)
	if err != nil {
		t.Fatal(err)
	}
	deep := res.ClientWakes["C1E"] + res.ClientWakes["C6"]
	if deep == 0 {
		t.Error("busy-wait LP client's receive cores never slept — receive-path exposure lost")
	}
	if lag := stats.Mean(res.SendLagUs); lag > 10 {
		t.Errorf("busy-wait send lag %.1fµs — send-path protection lost", lag)
	}
}
