// Package core encodes the paper's primary intellectual contribution as a
// reusable library: the workload-generator taxonomy of §II, the scenario
// risk classification of Table III, the client-configuration
// recommendations of §VI, and a variability-attribution report that ties a
// measured experiment back to the hardware mechanisms responsible.
package core

import (
	"fmt"
	"time"

	"repro/internal/hw"
	"repro/internal/stats"
)

// LoopModel distinguishes open- and closed-loop generators (§II).
type LoopModel int

const (
	// OpenLoop models an infinite client population: requests follow an
	// inter-arrival time distribution regardless of outstanding responses.
	OpenLoop LoopModel = iota
	// ClosedLoop models a finite set of blocking clients: the next request
	// waits for the previous response.
	ClosedLoop
)

func (l LoopModel) String() string {
	if l == OpenLoop {
		return "open-loop"
	}
	return "closed-loop"
}

// Pacing distinguishes how the generator waits out inter-arrival gaps.
type Pacing int

const (
	// TimeSensitive pacing block-waits for the next send (Mutilate, wrk2):
	// the thread sleeps, so client C-states and DVFS distort send times.
	TimeSensitive Pacing = iota
	// TimeInsensitive pacing busy-waits, actively polling for elapsed time
	// (the HDSearch client): sends stay accurate at the cost of a core.
	TimeInsensitive
)

func (p Pacing) String() string {
	if p == TimeSensitive {
		return "time-sensitive"
	}
	return "time-insensitive"
}

// MeasurementPoint is where end-to-end latency is timestamped (§II cites
// Lancet's taxonomy: NIC, kernel socket layer, or the application).
type MeasurementPoint int

const (
	// InApp timestamps inside the generator — the common case, and the one
	// exposed to every client-side hardware overhead.
	InApp MeasurementPoint = iota
	// KernelSocket timestamps at the socket layer (SO_TIMESTAMPING),
	// excluding generator scheduling but not IRQ delivery.
	KernelSocket
	// NICHardware timestamps in the NIC, excluding the host entirely.
	NICHardware
)

func (m MeasurementPoint) String() string {
	switch m {
	case InApp:
		return "in-app"
	case KernelSocket:
		return "kernel-socket"
	case NICHardware:
		return "nic-hardware"
	}
	return fmt.Sprintf("MeasurementPoint(%d)", int(m))
}

// GeneratorDesign places a workload generator in the paper's taxonomy.
type GeneratorDesign struct {
	Loop   LoopModel
	Pacing Pacing
	Point  MeasurementPoint
}

// KnownGenerators classifies the generators the paper uses (§IV-B).
func KnownGenerators() map[string]GeneratorDesign {
	return map[string]GeneratorDesign{
		"mutilate":        {Loop: OpenLoop, Pacing: TimeSensitive, Point: InApp},
		"hdsearch-client": {Loop: OpenLoop, Pacing: TimeInsensitive, Point: InApp},
		"wrk2":            {Loop: OpenLoop, Pacing: TimeSensitive, Point: InApp},
		"synthetic":       {Loop: OpenLoop, Pacing: TimeSensitive, Point: InApp},
	}
}

// ClientTuning classifies a client hardware configuration as tuned
// (overhead-minimizing) or not, per the paper's LP/HP distinction.
type ClientTuning int

const (
	// Untuned is the system default (the paper's LP): C-states enabled,
	// powersave frequency scaling.
	Untuned ClientTuning = iota
	// Tuned is an empirically performance-tuned client (the paper's HP).
	Tuned
)

func (t ClientTuning) String() string {
	if t == Tuned {
		return "tuned"
	}
	return "not-tuned"
}

// ClassifyClient derives the tuning class from a hardware configuration:
// a client is tuned when no idle state deeper than C1 is reachable, the
// governor pins full frequency, and the uncore is fixed.
func ClassifyClient(cfg hw.Config) ClientTuning {
	deepIdle := cfg.MaxCState != "C0" && cfg.MaxCState != "C1"
	slowFreq := cfg.Governor != hw.GovernorPerformance
	if deepIdle || slowFreq || cfg.UncoreDynamic {
		return Untuned
	}
	return Tuned
}

// ResponseTimeClass partitions services by latency scale, the axis of the
// paper's Finding 3.
type ResponseTimeClass int

const (
	// SmallResponseTime is microsecond-scale (Memcached: tens of µs).
	SmallResponseTime ResponseTimeClass = iota
	// BigResponseTime is ≥ milliseconds (HDSearch, Social Network).
	BigResponseTime
)

func (c ResponseTimeClass) String() string {
	if c == SmallResponseTime {
		return "small"
	}
	return "big"
}

// ClassifyResponseTime buckets a mean end-to-end latency. The paper's
// synthetic study (§V-B) finds the client impact drops below 10 % once the
// average response time exceeds roughly 1 ms.
func ClassifyResponseTime(mean time.Duration) ResponseTimeClass {
	if mean >= time.Millisecond {
		return BigResponseTime
	}
	return SmallResponseTime
}

// Scenario is a row of the paper's Table III: a generator design crossed
// with a client tuning class and the service's response-time class.
type Scenario struct {
	Design       GeneratorDesign
	Client       ClientTuning
	ResponseTime ResponseTimeClass
}

// Risk is the verdict of Table III's last column.
type Risk int

const (
	// RiskLow means conclusions are insensitive to the client configuration.
	RiskLow Risk = iota
	// RiskWrongConclusions marks the scenario Table III flags (✗): a
	// time-sensitive generator on an untuned client measuring a
	// microsecond-scale service can invert conclusions.
	RiskWrongConclusions
)

func (r Risk) String() string {
	if r == RiskWrongConclusions {
		return "wrong-conclusions"
	}
	return "low"
}

// Classify reproduces Table III's risk column: the dangerous cell is
// time-sensitive pacing × untuned client × small response time.
func Classify(s Scenario) Risk {
	if s.Design.Pacing == TimeSensitive && s.Client == Untuned && s.ResponseTime == SmallResponseTime {
		return RiskWrongConclusions
	}
	return RiskLow
}

// Recommendation is configuration advice per §VI.
type Recommendation struct {
	ClientConfig string // which client configuration to run
	Rationale    string
	Caveat       string
}

// Recommend implements the paper's §VI decision procedure.
//
// For time-sensitive inter-arrival implementations the client should be
// tuned for performance so the generator sends on schedule; the caveat is
// representativeness if the production fleet runs power-managed clients.
// For time-insensitive implementations the client should match the target
// environment, exploring the space when the target is unknown.
func Recommend(design GeneratorDesign, targetKnown bool) Recommendation {
	if design.Pacing == TimeSensitive {
		return Recommendation{
			ClientConfig: "performance-tuned (HP)",
			Rationale: "a block-wait generator must wake and ramp before sending; " +
				"C-state and DVFS overheads shift requests off the target inter-arrival distribution",
			Caveat: "if the target environment power-manages clients, an HP client under-estimates " +
				"end-to-end latency and can mis-size provisioning",
		}
	}
	if targetKnown {
		return Recommendation{
			ClientConfig: "match the target environment",
			Rationale: "busy-wait pacing keeps send times accurate regardless of configuration, " +
				"so the client should reproduce the deployment it stands in for",
		}
	}
	return Recommendation{
		ClientConfig: "space exploration (run both LP and HP, homogeneous and heterogeneous)",
		Rationale:    "with no known target, report results under the span of plausible client configurations",
	}
}

// AttributionReport quantifies how much of a measured latency difference
// between two client configurations each hardware mechanism explains.
type AttributionReport struct {
	// DeltaUs is the total measured difference (untuned − tuned mean).
	DeltaUs float64
	// Components in microseconds.
	CStateExitUs  float64
	CtxSwitchUs   float64
	DVFSStretchUs float64
	UncoreUs      float64
	ResidualUs    float64 // queueing and interaction effects
}

// Attribute decomposes a measured LP−HP gap using wake statistics from the
// untuned client: wake counts per state over the number of measured
// responses. It is an estimate — residual captures event-loop queueing and
// server-side interaction.
func Attribute(meanTunedUs, meanUntunedUs float64, wakesByState map[string]int, responses int, cfg hw.Config) AttributionReport {
	rep := AttributionReport{DeltaUs: meanUntunedUs - meanTunedUs}
	if responses <= 0 {
		return rep
	}
	totalWakes := 0
	for name, n := range wakesByState {
		if name == "C0" {
			continue
		}
		cs, ok := hw.CStateByName(name)
		if !ok {
			continue
		}
		rep.CStateExitUs += float64(cs.ExitLatency.Microseconds()) * float64(n) / float64(responses)
		totalWakes += n
	}
	rep.CtxSwitchUs = float64(hw.CtxSwitchCost.Microseconds()) * float64(totalWakes) / float64(responses)
	if cfg.Governor == hw.GovernorPowersave {
		// Post-wake work runs at MinFreq instead of nominal; the stretch
		// on a few µs of receive processing.
		stretch := (cfg.NominalFreqGHz/cfg.MinFreqGHz - 1) * 3.5 // µs of nominal recv work
		rep.DVFSStretchUs = stretch * float64(totalWakes) / float64(responses)
	}
	if cfg.UncoreDynamic {
		rep.UncoreUs = 6.0
	}
	rep.ResidualUs = rep.DeltaUs - rep.CStateExitUs - rep.CtxSwitchUs - rep.DVFSStretchUs - rep.UncoreUs
	return rep
}

// ConclusionCheck compares a feature's effect under two clients, the way
// the paper contrasts LP- and HP-measured speedups (Findings 1–2).
type ConclusionCheck struct {
	// SpeedupTuned / SpeedupUntuned are baseline/variant ratios (>1 means
	// the variant is faster).
	SpeedupTuned   float64
	SpeedupUntuned float64
	// TunedSignificant / UntunedSignificant report whether each client's
	// CIs for baseline and variant are disjoint.
	TunedSignificant   bool
	UntunedSignificant bool
}

// Conflicting reports whether the two clients support different
// conclusions: one sees a significant effect the other does not, or the
// effects point in opposite directions.
func (c ConclusionCheck) Conflicting() bool {
	if c.TunedSignificant != c.UntunedSignificant {
		return true
	}
	if c.TunedSignificant && c.UntunedSignificant &&
		(c.SpeedupTuned-1)*(c.SpeedupUntuned-1) < 0 {
		return true
	}
	return false
}

// CheckConclusions builds a ConclusionCheck from per-run samples of a
// baseline and variant under each client.
func CheckConclusions(tunedBase, tunedVar, untunedBase, untunedVar []float64) (ConclusionCheck, error) {
	var out ConclusionCheck
	tb, err := stats.NonParametricCI(tunedBase, 0.95)
	if err != nil {
		return out, fmt.Errorf("core: tuned baseline: %w", err)
	}
	tv, err := stats.NonParametricCI(tunedVar, 0.95)
	if err != nil {
		return out, fmt.Errorf("core: tuned variant: %w", err)
	}
	ub, err := stats.NonParametricCI(untunedBase, 0.95)
	if err != nil {
		return out, fmt.Errorf("core: untuned baseline: %w", err)
	}
	uv, err := stats.NonParametricCI(untunedVar, 0.95)
	if err != nil {
		return out, fmt.Errorf("core: untuned variant: %w", err)
	}
	out.SpeedupTuned = tb.Point / tv.Point
	out.SpeedupUntuned = ub.Point / uv.Point
	out.TunedSignificant = !tb.Overlaps(tv)
	out.UntunedSignificant = !ub.Overlaps(uv)
	return out, nil
}
