package core

import (
	"testing"
	"time"

	"repro/internal/hw"
	"repro/internal/rng"
)

func TestTaxonomyStrings(t *testing.T) {
	if OpenLoop.String() != "open-loop" || ClosedLoop.String() != "closed-loop" {
		t.Error("loop names wrong")
	}
	if TimeSensitive.String() != "time-sensitive" || TimeInsensitive.String() != "time-insensitive" {
		t.Error("pacing names wrong")
	}
	if InApp.String() != "in-app" || KernelSocket.String() != "kernel-socket" || NICHardware.String() != "nic-hardware" {
		t.Error("measurement point names wrong")
	}
	if Tuned.String() != "tuned" || Untuned.String() != "not-tuned" {
		t.Error("tuning names wrong")
	}
	if SmallResponseTime.String() != "small" || BigResponseTime.String() != "big" {
		t.Error("response class names wrong")
	}
	if RiskLow.String() != "low" || RiskWrongConclusions.String() != "wrong-conclusions" {
		t.Error("risk names wrong")
	}
}

func TestKnownGeneratorsMatchPaper(t *testing.T) {
	k := KnownGenerators()
	// §IV-B: Mutilate — open-loop, time-sensitive, in-app.
	if d := k["mutilate"]; d.Loop != OpenLoop || d.Pacing != TimeSensitive || d.Point != InApp {
		t.Errorf("mutilate = %+v", d)
	}
	// HDSearch client — open-loop, time-insensitive (busy-wait), in-app.
	if d := k["hdsearch-client"]; d.Loop != OpenLoop || d.Pacing != TimeInsensitive || d.Point != InApp {
		t.Errorf("hdsearch client = %+v", d)
	}
	// wrk2 — open-loop, time-sensitive, in-app.
	if d := k["wrk2"]; d.Loop != OpenLoop || d.Pacing != TimeSensitive {
		t.Errorf("wrk2 = %+v", d)
	}
}

func TestClassifyClient(t *testing.T) {
	if got := ClassifyClient(hw.LPConfig()); got != Untuned {
		t.Errorf("LP classified as %v", got)
	}
	if got := ClassifyClient(hw.HPConfig()); got != Tuned {
		t.Errorf("HP classified as %v", got)
	}
	// C1-only with performance governor and fixed uncore is still tuned.
	cfg := hw.HPConfig()
	cfg.MaxCState = "C1"
	if got := ClassifyClient(cfg); got != Tuned {
		t.Errorf("C1/performance/fixed classified as %v", got)
	}
	// Powersave alone makes it untuned.
	cfg = hw.HPConfig()
	cfg.Governor = hw.GovernorPowersave
	if got := ClassifyClient(cfg); got != Untuned {
		t.Errorf("powersave classified as %v", got)
	}
}

func TestClassifyResponseTime(t *testing.T) {
	if ClassifyResponseTime(30*time.Microsecond) != SmallResponseTime {
		t.Error("memcached-scale latency not small")
	}
	if ClassifyResponseTime(2*time.Millisecond) != BigResponseTime {
		t.Error("socialnet-scale latency not big")
	}
	if ClassifyResponseTime(time.Millisecond) != BigResponseTime {
		t.Error("1ms boundary should be big")
	}
}

func TestClassifyTableIII(t *testing.T) {
	mutilate := KnownGenerators()["mutilate"]
	busyWait := KnownGenerators()["hdsearch-client"]

	// Row 2 of Table III: time-sensitive, not-tuned, small → ✗.
	if got := Classify(Scenario{Design: mutilate, Client: Untuned, ResponseTime: SmallResponseTime}); got != RiskWrongConclusions {
		t.Errorf("dangerous cell classified %v", got)
	}
	// Row 1: tuned client → low risk.
	if got := Classify(Scenario{Design: mutilate, Client: Tuned, ResponseTime: SmallResponseTime}); got != RiskLow {
		t.Errorf("tuned small classified %v", got)
	}
	// Rows 3-4: time-insensitive with big response time → low risk either way.
	for _, c := range []ClientTuning{Tuned, Untuned} {
		if got := Classify(Scenario{Design: busyWait, Client: c, ResponseTime: BigResponseTime}); got != RiskLow {
			t.Errorf("busy-wait big %v classified %v", c, got)
		}
	}
	// Untuned but big response time → low risk (Finding 3).
	if got := Classify(Scenario{Design: mutilate, Client: Untuned, ResponseTime: BigResponseTime}); got != RiskLow {
		t.Errorf("untuned big classified %v", got)
	}
}

func TestRecommend(t *testing.T) {
	ts := Recommend(GeneratorDesign{Pacing: TimeSensitive}, false)
	if ts.ClientConfig != "performance-tuned (HP)" {
		t.Errorf("time-sensitive recommendation = %q", ts.ClientConfig)
	}
	if ts.Caveat == "" {
		t.Error("time-sensitive recommendation should carry the representativeness caveat")
	}
	tiKnown := Recommend(GeneratorDesign{Pacing: TimeInsensitive}, true)
	if tiKnown.ClientConfig != "match the target environment" {
		t.Errorf("time-insensitive known-target = %q", tiKnown.ClientConfig)
	}
	tiUnknown := Recommend(GeneratorDesign{Pacing: TimeInsensitive}, false)
	if tiUnknown.ClientConfig == tiKnown.ClientConfig {
		t.Error("unknown target should recommend space exploration")
	}
}

func TestAttributeDecomposition(t *testing.T) {
	wakes := map[string]int{"C1E": 800, "C6": 100, "C0": 50}
	rep := Attribute(30, 90, wakes, 1000, hw.LPConfig())
	if rep.DeltaUs != 60 {
		t.Errorf("delta = %v", rep.DeltaUs)
	}
	// C-state exits: (10µs×800 + 133µs×100)/1000 = 21.3µs.
	if rep.CStateExitUs < 20 || rep.CStateExitUs > 23 {
		t.Errorf("C-state component = %v, want ≈21.3", rep.CStateExitUs)
	}
	// Context switches: 25µs × 900/1000 = 22.5.
	if rep.CtxSwitchUs < 21 || rep.CtxSwitchUs > 24 {
		t.Errorf("ctx component = %v, want ≈22.5", rep.CtxSwitchUs)
	}
	if rep.DVFSStretchUs <= 0 {
		t.Error("powersave config should have a DVFS component")
	}
	if rep.UncoreUs != 6 {
		t.Errorf("uncore component = %v, want 6", rep.UncoreUs)
	}
	sum := rep.CStateExitUs + rep.CtxSwitchUs + rep.DVFSStretchUs + rep.UncoreUs + rep.ResidualUs
	if diff := sum - rep.DeltaUs; diff > 1e-9 || diff < -1e-9 {
		t.Errorf("components sum to %v, delta %v", sum, rep.DeltaUs)
	}
}

func TestAttributeEdgeCases(t *testing.T) {
	rep := Attribute(10, 20, nil, 0, hw.HPConfig())
	if rep.DeltaUs != 10 || rep.CStateExitUs != 0 {
		t.Errorf("zero responses: %+v", rep)
	}
	rep = Attribute(10, 20, map[string]int{"C0": 100}, 100, hw.HPConfig())
	if rep.CStateExitUs != 0 || rep.CtxSwitchUs != 0 || rep.DVFSStretchUs != 0 || rep.UncoreUs != 0 {
		t.Errorf("HP poll wakes should contribute nothing: %+v", rep)
	}
}

func TestConclusionCheck(t *testing.T) {
	s := rng.New(1)
	mk := func(mean, sd float64) []float64 {
		x := make([]float64, 30)
		for i := range x {
			x[i] = s.Normal(mean, sd)
		}
		return x
	}
	// Tuned sees a clear effect (100 → 80), untuned sees none (150 ≈ 150).
	check, err := CheckConclusions(mk(100, 1), mk(80, 1), mk(150, 10), mk(150, 10))
	if err != nil {
		t.Fatal(err)
	}
	if !check.TunedSignificant {
		t.Error("clear tuned effect not significant")
	}
	if check.UntunedSignificant {
		t.Error("null untuned effect reported significant")
	}
	if !check.Conflicting() {
		t.Error("differing significance should conflict")
	}
	if check.SpeedupTuned < 1.2 {
		t.Errorf("tuned speedup = %v, want ≈1.25", check.SpeedupTuned)
	}

	// Both agree → no conflict.
	check, err = CheckConclusions(mk(100, 1), mk(80, 1), mk(100, 1), mk(80, 1))
	if err != nil {
		t.Fatal(err)
	}
	if check.Conflicting() {
		t.Error("agreeing clients reported conflicting")
	}

	// Opposite significant directions → conflict.
	check, err = CheckConclusions(mk(100, 1), mk(80, 1), mk(80, 1), mk(100, 1))
	if err != nil {
		t.Fatal(err)
	}
	if !check.Conflicting() {
		t.Error("opposite directions not conflicting")
	}

	// Errors propagate.
	if _, err := CheckConclusions(nil, mk(1, 1), mk(1, 1), mk(1, 1)); err == nil {
		t.Error("empty sample set accepted")
	}
}
