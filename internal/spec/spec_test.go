package spec

import (
	"strings"
	"testing"
	"time"

	"repro/internal/cluster"
	"repro/internal/experiment"
	"repro/internal/workload"
)

const fullSpec = `
version: 1
name: everything
description: one of each section
service: synthetic
client: LP
server: smt
rates: [5000, 10000]
runs: 3
duration: 250ms
synth_delay: 100us
replicas: 4
router: least-outstanding
autoscale:
  min: 2
  max: 4
  interval: 5ms
  signal: latency
  scale_up_at: 200
  scale_down_at: 50
  cooldown: 20ms
classes:
  - name: interactive
    fraction: 0.7
    arrival:
      process: gamma
      cv: 3
    think:
      dist: exponential
      mean: 2ms
    size:
      dist: lognormal
      mean: 512
      sigma: 0.8
  - name: sessions
    fraction: 0.3
    arrival:
      process: onoff
      on_mean: 50ms
      off_mean: 150ms
phases:
  - name: ramp
    duration: 100ms
    rate_scale: 1
    end_scale: 2
  - name: peak
    duration: 150ms
    rate_scale: 2
phases_repeat: true
faults:
  crashes:
    - replica: 1
      start_frac: 0.35
      end_frac: 0.65
  stragglers:
    - replica: 2
      start_frac: 0.2
      end_frac: 0.8
      factor: 4
  link:
    - start_frac: 0.4
      end_frac: 0.6
      delay_factor: 10
resilience:
  timeout: 2ms
  retries: 2
  retry_base: 200us
  retry_cap: 2ms
hiccups:
  rate_per_sec: 2.4
  mean_duration: 700us
`

func TestParseFullSpec(t *testing.T) {
	s, err := Parse([]byte(fullSpec))
	if err != nil {
		t.Fatal(err)
	}
	sc := s.Scenario(s.SweepRates()[0])
	if sc.Service != experiment.ServiceSynthetic || sc.RateQPS != 5000 {
		t.Errorf("scenario service/rate = %v/%v", sc.Service, sc.RateQPS)
	}
	if sc.Label != "LP-everything" {
		t.Errorf("label = %q, want LP-everything", sc.Label)
	}
	if sc.Duration != 250*time.Millisecond || sc.SynthDelay != 100*time.Microsecond {
		t.Errorf("duration/delay = %v/%v", sc.Duration, sc.SynthDelay)
	}
	if !sc.Client.SMT && !sc.Server.SMT {
		t.Errorf("server: smt did not enable SMT: %+v", sc.Server)
	}
	if len(sc.Classes) != 2 || sc.Classes[1].Arrival.Process != workload.ArrivalOnOff ||
		sc.Classes[1].Arrival.OffMean != 150*time.Millisecond {
		t.Errorf("classes did not compile: %+v", sc.Classes)
	}
	if len(sc.Phases) != 2 || sc.Phases[0].EndScale != 2 || !sc.PhasesRepeat {
		t.Errorf("phases did not compile: %+v", sc.Phases)
	}
	if sc.Replicas != 4 || sc.Router != cluster.RouterLeastOutstanding {
		t.Errorf("cluster shape = %d/%q", sc.Replicas, sc.Router)
	}
	if sc.Autoscale == nil || sc.Autoscale.Signal != cluster.SignalLatency || sc.Autoscale.ScaleUpAt != 200 {
		t.Errorf("autoscale did not compile: %+v", sc.Autoscale)
	}
	if sc.Faults.Empty() || len(sc.Faults.Crashes) != 1 || sc.Faults.Crashes[0].Replica != 1 ||
		len(sc.Faults.Stragglers) != 1 || sc.Faults.Stragglers[0].Factor != 4 ||
		len(sc.Faults.Link) != 1 || sc.Faults.Link[0].DelayFactor != 10 {
		t.Errorf("faults did not compile: %+v", sc.Faults)
	}
	if sc.Resilience == nil || sc.Resilience.Timeout != 2*time.Millisecond ||
		sc.Resilience.Retries != 2 || sc.Resilience.RetryBase != 200*time.Microsecond {
		t.Errorf("resilience did not compile: %+v", sc.Resilience)
	}
	if sc.HiccupRate != 2.4 || sc.HiccupMean != 700*time.Microsecond {
		t.Errorf("hiccups did not compile: %g/%v", sc.HiccupRate, sc.HiccupMean)
	}
	if err := sc.Validate(); err != nil {
		t.Errorf("compiled scenario invalid: %v", err)
	}
}

func TestParseJSONSpec(t *testing.T) {
	s, err := Parse([]byte(`{
		"version": 1, "name": "js", "service": "memcached",
		"rates": [100000], "runs": 2, "samples": 5000
	}`))
	if err != nil {
		t.Fatal(err)
	}
	if s.Name != "js" || s.Samples != 5000 {
		t.Errorf("json decode: %+v", s)
	}
}

func TestSpecDefaults(t *testing.T) {
	s, err := Parse([]byte("version: 1\nname: d\nservice: memcached\nrate: 1000\nruns: 1\n"))
	if err != nil {
		t.Fatal(err)
	}
	if _, name := s.ClientConfig(); name != "HP" {
		t.Errorf("default client %q, want HP", name)
	}
	if got := s.ServerConfig().Name; got == "" {
		t.Errorf("default server unresolved")
	}
	if rates := s.SweepRates(); len(rates) != 1 || rates[0] != 1000 {
		t.Errorf("rate shorthand: %v", rates)
	}
}

// TestSpecValidationTable is the loader-hardening satellite: every
// malformed document must fail with a descriptive error, not load and
// misbehave later.
func TestSpecValidationTable(t *testing.T) {
	base := "version: 1\nname: t\nservice: synthetic\nrate: 1000\nruns: 1\n"
	cases := []struct {
		name, doc, want string
	}{
		{"version", strings.Replace(base, "version: 1", "version: 2", 1), "unsupported version"},
		{"no-name", strings.Replace(base, "name: t\n", "", 1), "missing name"},
		{"no-service", strings.Replace(base, "service: synthetic\n", "", 1), "missing service"},
		{"bad-service", strings.Replace(base, "synthetic", "redis", 1), "unknown service"},
		{"bad-client", base + "client: XP\n", "unknown client"},
		{"bad-server", base + "server: zen\n", "unknown server"},
		{"no-rates", strings.Replace(base, "rate: 1000\n", "", 1), "missing rates"},
		{"zero-rate", strings.Replace(base, "rate: 1000", "rate: 0", 1), "missing rates"},
		{"negative-rate", strings.Replace(base, "rate: 1000", "rate: -5", 1), "must be positive"},
		{"rate-and-rates", base + "rates: [1, 2]\n", "mutually exclusive"},
		{"zero-runs", strings.Replace(base, "runs: 1", "runs: 0", 1), "runs must be"},
		{"negative-samples", base + "samples: -1\n", "negative samples"},
		{"samples-and-duration", base + "samples: 10\nduration: 1s\n", "mutually exclusive"},
		{"bad-duration", base + "duration: fast\n", "bad duration"},
		{"numeric-duration", base + "duration: 30\n", "must be a string"},
		{"delay-on-memcached", strings.Replace(base, "synthetic", "memcached", 1) + "synth_delay: 1ms\n", "only applies"},
		{"unknown-key", base + "ratez: 5\n", "unknown field"},
		{"unknown-nested-key", base + "classes:\n  - name: a\n    fraction: 1\n    color: red\n", "unknown field"},
		{"router-no-replicas", base + "router: round-robin\n", "without replicas"},
		{"bad-router", base + "replicas: 2\nrouter: random\n", "router"},
		{"fractions", base + "classes:\n  - name: a\n    fraction: 0.5\n", "sum to"},
		{"zero-fraction", base + "classes:\n  - name: a\n    fraction: 0\n", "fraction"},
		{"gamma-cv", base + "classes:\n  - name: a\n    fraction: 1\n    arrival:\n      process: gamma\n      cv: -1\n", "cv > 0"},
		{"weibull-shape", base + "classes:\n  - name: a\n    fraction: 1\n    arrival:\n      process: weibull\n      shape: 0\n", "shape > 0"},
		{"bad-process", base + "classes:\n  - name: a\n    fraction: 1\n    arrival:\n      process: pareto\n", "unknown arrival process"},
		{"zero-phase", base + "phases:\n  - name: p\n    duration: 0s\n    rate_scale: 1\n", "must be positive"},
		{"zero-scale", base + "phases:\n  - name: p\n    duration: 1s\n    rate_scale: 0\n", "rate scale"},
		{"repeat-no-phases", base + "phases_repeat: true\n", "phases_repeat"},
		{"bad-autoscale", base + "replicas: 2\nautoscale:\n  min: 3\n  max: 1\n", "bounds"},
		{"faults-no-replicas", base + "faults:\n  crashes:\n    - replica: 0\n      start_frac: 0.1\n      end_frac: 0.2\n", "replicated fleet"},
		{"faults-bad-window", base + "replicas: 2\nfaults:\n  crashes:\n    - replica: 0\n      start_frac: 0.5\n      end_frac: 0.2\n", "must satisfy"},
		{"faults-bad-replica", base + "replicas: 2\nfaults:\n  crashes:\n    - replica: 9\n      start_frac: 0.1\n      end_frac: 0.2\n", "out of range"},
		{"straggler-factor", base + "replicas: 2\nfaults:\n  stragglers:\n    - replica: 0\n      start_frac: 0.1\n      end_frac: 0.2\n      factor: 0.5\n", "must be ≥ 1"},
		{"loss-no-timeout", base + "replicas: 2\nfaults:\n  link:\n    - start_frac: 0.1\n      end_frac: 0.2\n      loss: 0.1\n", "require a request timeout"},
		{"retries-no-timeout", base + "resilience:\n  retries: 2\n", "retries require a request timeout"},
		{"hedge-no-timeout", base + "resilience:\n  hedge: 1ms\n", "hedged requests require"},
		{"hedge-above-timeout", base + "resilience:\n  timeout: 1ms\n  hedge: 2ms\n", "must be below the timeout"},
		{"hedge-bad-router", base + "replicas: 2\nrouter: round-robin\nresilience:\n  timeout: 2ms\n  hedge: 1ms\n", "hedged requests on a cluster"},
		{"negative-timeout", base + "resilience:\n  timeout: -1ms\n", "timeout"},
		{"negative-hiccup-rate", base + "hiccups:\n  rate_per_sec: -1\n", "negative hiccup rate_per_sec"},
		{"negative-hiccup-mean", base + "hiccups:\n  rate_per_sec: 1\n  mean_duration: -1ms\n", "negative hiccup mean_duration"},
		{"random-crash-rate", base + "replicas: 2\nfaults:\n  random_crashes:\n    rate_per_sec: 0\n    mean_downtime: 1ms\n", "must be > 0"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			_, err := Parse([]byte(tc.doc))
			if err == nil {
				t.Fatalf("spec loaded, want error containing %q", tc.want)
			}
			if !strings.Contains(err.Error(), tc.want) {
				t.Fatalf("error %q does not contain %q", err, tc.want)
			}
		})
	}
	if _, err := Parse([]byte(base)); err != nil {
		t.Fatalf("base spec rejected: %v", err)
	}
}

// FuzzParseSpec checks the whole pipeline — lexer, parser, JSON
// round-trip, validators — never panics on arbitrary input.
func FuzzParseSpec(f *testing.F) {
	f.Add(fullSpec)
	f.Add("version: 1\nname: t\nservice: synthetic\nrate: 1000\nruns: 1\n")
	f.Add(`{"version": 1, "name": "j", "service": "memcached", "rate": 1, "runs": 1}`)
	f.Add("version: -1e308\nrate: [\n")
	f.Add("version: 1\nname: f\nservice: memcached\nrate: 1000\nruns: 1\nreplicas: 2\nfaults:\n  crashes:\n    - replica: 1\n      start_frac: 0.3\n      end_frac: 0.6\nresilience:\n  timeout: 2ms\n  retries: 1\n")
	f.Add("version: 1\nname: h\nservice: synthetic\nrate: 1000\nruns: 1\nhiccups:\n  rate_per_sec: 0.5\n  mean_duration: 1ms\nresilience:\n  timeout: 5ms\n  hedge: 1ms\n")
	f.Fuzz(func(t *testing.T, doc string) {
		s, err := Parse([]byte(doc))
		if err != nil {
			return
		}
		// Whatever loads must also compile to a valid scenario.
		sc := s.Scenario(s.SweepRates()[0])
		sc.Runs = 1
		if err := sc.Validate(); err != nil {
			t.Fatalf("loaded spec compiles to invalid scenario: %v", err)
		}
	})
}
