package spec

import (
	"path/filepath"
	"testing"
	"time"

	"repro/internal/experiment"
)

// TestExampleSpecs validates every spec shipped under examples/: each
// must load (parse + full validation) and survive a one-run smoke at
// its first rate. This is the CI gate that keeps the examples honest as
// the schema evolves.
func TestExampleSpecs(t *testing.T) {
	paths, err := filepath.Glob(filepath.Join("..", "..", "examples", "*.yaml"))
	if err != nil {
		t.Fatal(err)
	}
	if len(paths) < 8 {
		t.Fatalf("found %d example specs, want the shipped set (≥8)", len(paths))
	}
	for _, path := range paths {
		t.Run(filepath.Base(path), func(t *testing.T) {
			t.Parallel()
			s, err := Load(path)
			if err != nil {
				t.Fatal(err)
			}
			sc := s.Scenario(s.SweepRates()[0])
			sc.Runs = 1
			sc.Seed = 1
			// Shrink to smoke scale: duration-sized specs keep their shape
			// but capped, sample-sized ones run a few hundred requests.
			if sc.Duration > 0 {
				if sc.Duration > 200*time.Millisecond {
					sc.Duration = 200 * time.Millisecond
				}
			} else {
				sc.TargetSamples = 500
			}
			res, err := experiment.Run(sc)
			if err != nil {
				t.Fatal(err)
			}
			if len(res.Runs) != 1 || res.Runs[0].Samples == 0 {
				t.Fatalf("smoke run collected no samples: %+v", res.Runs)
			}
		})
	}
}
