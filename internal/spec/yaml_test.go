package spec

import (
	"reflect"
	"strings"
	"testing"
)

func TestParseYAMLDocument(t *testing.T) {
	doc := `
# A comment-heavy document exercising the whole subset.
---
version: 1
name: "quoted name"   # trailing comment
flag: true
nothing: null
rates: [250000, 1e6]  # flow sequence with scientific notation
nested:
  inner: 2.5
  deeper:
    leaf: 'single # not a comment'
items:
  - name: a
    weight: 0.5
    sub:
      k: v
  - name: b
    weight: 0.5
scalars:
  - 100ms
  - -5
  - plain string
`
	got, err := parseYAML([]byte(doc))
	if err != nil {
		t.Fatal(err)
	}
	want := map[string]any{
		"version": 1.0,
		"name":    "quoted name",
		"flag":    true,
		"nothing": nil,
		"rates":   []any{250000.0, 1e6},
		"nested": map[string]any{
			"inner":  2.5,
			"deeper": map[string]any{"leaf": "single # not a comment"},
		},
		"items": []any{
			map[string]any{"name": "a", "weight": 0.5, "sub": map[string]any{"k": "v"}},
			map[string]any{"name": "b", "weight": 0.5},
		},
		"scalars": []any{"100ms", -5.0, "plain string"},
	}
	if !reflect.DeepEqual(got, want) {
		t.Fatalf("parse mismatch:\ngot  %#v\nwant %#v", got, want)
	}
}

func TestParseYAMLErrors(t *testing.T) {
	cases := []struct {
		name, doc, want string
	}{
		{"empty", "\n# only comments\n", "empty document"},
		{"tab-indent", "a:\n\tb: 1\n", "tab in indentation"},
		{"bad-line", "just words\n", "expected \"key: value\""},
		{"duplicate-key", "a: 1\na: 2\n", "duplicate key"},
		{"stray-indent", "a: 1\n  b: 2\n", "unexpected indentation"},
		{"dash-in-map", "a: 1\n- b\n", "sequence item in mapping"},
		{"unterminated-flow", "a: [1, 2\n", "unterminated flow sequence"},
		{"empty-flow-elem", "a: [1, , 2]\n", "empty element"},
		{"nested-flow", "a: [[1], 2]\n", "nested flow sequences"},
		{"empty-seq-item", "a:\n  -\n", "empty sequence item"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			_, err := parseYAML([]byte(tc.doc))
			if err == nil {
				t.Fatalf("parsed, want error containing %q", tc.want)
			}
			if !strings.Contains(err.Error(), tc.want) {
				t.Fatalf("error %q does not contain %q", err, tc.want)
			}
		})
	}
}

// FuzzParseYAML checks the parser never panics and, when it accepts a
// document, produces a tree the JSON round-trip can always marshal.
func FuzzParseYAML(f *testing.F) {
	f.Add("a: 1\nb:\n  - x\n  - y: 2\n")
	f.Add("rates: [1, 2, 3]\n")
	f.Add(":\n")
	f.Add("- - -\n")
	f.Add("a: \"unclosed\n")
	f.Fuzz(func(t *testing.T, doc string) {
		tree, err := parseYAML([]byte(doc))
		if err != nil {
			return
		}
		if _, err := Parse([]byte(doc)); err == nil {
			t.Skip() // full valid spec from fuzz input: nothing to check
		}
		_ = tree
	})
}
