// Package spec defines the versioned, declarative workload-spec format:
// a YAML (or JSON) document describing one sweep — service, hardware
// configurations, rate axis, repetition counts — plus the workload-mix
// vocabulary the generator understands: client classes with per-class
// arrival processes (poisson, fixed, gamma, weibull, onoff), think-time
// and size distributions, multi-phase load programs driven by the
// virtual clock, and replicated/autoscaled backends.
//
// A spec compiles to the same experiment.Scenario values the built-in
// presets construct in code, so everything the harness guarantees —
// byte-identical results at any -parallel width, labeled per-run RNG
// streams — holds for spec-driven runs unchanged. Both CLIs load specs
// via -spec file.yaml; the built-in presets are re-expressed as specs
// under examples/, with golden tests pinning the parity.
//
// # Schema (version 1)
//
//	version: 1                  # required, must be 1
//	name: my-sweep              # required; names the sweep in output
//	description: one line       # optional usage/report text
//	service: memcached          # memcached|hdsearch|socialnet|synthetic
//	client: HP                  # LP|HP               (default HP)
//	server: baseline            # baseline|smt|c1e    (default baseline)
//	rates: [250000, 1000000]    # sweep axis in QPS (or "rate:" for one)
//	runs: 5                     # repetitions per rate
//	samples: 1000000            # post-warmup samples per run, or:
//	duration: 30s               # fixed measurement window instead
//	synth_delay: 100us          # synthetic service added delay
//	replicas: 4                 # cluster path: replica count
//	router: consistent-hash     # round-robin|least-outstanding|consistent-hash
//	autoscale:                  # cluster control loop (optional)
//	  min: 2
//	  max: 8
//	  interval: 10ms
//	  signal: utilization       # utilization|latency
//	  scale_up_at: 0.7
//	  scale_down_at: 0.25
//	  cooldown: 20ms
//	classes:                    # workload mix (fractions sum to 1)
//	  - name: interactive
//	    fraction: 0.7
//	    arrival: {…}            # see below
//	    think: {dist: exponential, mean: 2ms}
//	    size: {dist: lognormal, mean: 512, sigma: 0.8}
//	phases:                     # load program on the virtual clock
//	  - name: baseline
//	    duration: 100ms
//	    rate_scale: 1
//	    end_scale: 2            # optional linear ramp target
//	phases_repeat: true         # loop the program (diurnal curves)
//	faults:                     # deterministic fault plan (needs replicas ≥ 2)
//	  crashes:                  # explicit crash windows, horizon fractions
//	    - {replica: 1, start_frac: 0.35, end_frac: 0.65}
//	  stragglers:               # degraded replicas (factor ≥ 1)
//	    - {replica: 2, start_frac: 0.2, end_frac: 0.8, factor: 4}
//	  link:                     # client↔server link degradation
//	    - {start_frac: 0.4, end_frac: 0.6, delay_factor: 10, loss: 0.05}
//	  random_crashes:           # or draw windows from the run's RNG stream
//	    rate_per_sec: 0.5
//	    mean_downtime: 200ms
//	resilience:                 # client-side fault handling
//	  timeout: 2ms              # per-request timeout (enables the rest)
//	  retries: 2                # bounded retry budget
//	  retry_base: 200us         # backoff base (decorrelated jitter)
//	  retry_cap: 2ms            # backoff cap
//	  hedge: 1ms                # hedged-request delay (consistent-hash only)
//	hiccups:                    # tier background-interference override
//	  rate_per_sec: 2.4         # occurrences per second (0 = default)
//	  mean_duration: 700us      # mean stall length
//
// Arrival processes: {process: poisson} (default), {process: fixed},
// {process: gamma, cv: 3}, {process: weibull, shape: 0.6}, and
// {process: onoff, on_mean: 50ms, off_mean: 450ms}.
//
// Durations are strings in Go syntax ("250ms", "1h"). Unknown keys
// anywhere in the document are errors, as are rates ≤ 0, fractions not
// summing to 1, non-positive distribution parameters, and zero-length
// phases — a spec that loads is a spec that runs.
package spec

import (
	"bytes"
	"encoding/json"
	"fmt"
	"math"
	"os"
	"time"

	"repro/internal/cluster"
	"repro/internal/experiment"
	"repro/internal/faults"
	"repro/internal/hw"
	"repro/internal/loadgen"
	"repro/internal/workload"
)

// Version is the schema version this package reads and writes.
const Version = 1

// Duration is a time.Duration that unmarshals from Go duration strings
// ("250ms"); bare numbers are rejected as ambiguous.
type Duration time.Duration

// UnmarshalJSON implements json.Unmarshaler.
func (d *Duration) UnmarshalJSON(b []byte) error {
	var v any
	if err := json.Unmarshal(b, &v); err != nil {
		return err
	}
	s, ok := v.(string)
	if !ok {
		return fmt.Errorf("duration must be a string like \"250ms\", got %s", b)
	}
	dur, err := time.ParseDuration(s)
	if err != nil {
		return fmt.Errorf("bad duration %q: %w", s, err)
	}
	*d = Duration(dur)
	return nil
}

// MarshalJSON implements json.Marshaler.
func (d Duration) MarshalJSON() ([]byte, error) {
	return json.Marshal(time.Duration(d).String())
}

// Std returns the plain time.Duration.
func (d Duration) Std() time.Duration { return time.Duration(d) }

// ArrivalSpec selects a class's inter-arrival process.
type ArrivalSpec struct {
	Process string   `json:"process,omitempty"`
	CV      float64  `json:"cv,omitempty"`
	Shape   float64  `json:"shape,omitempty"`
	OnMean  Duration `json:"on_mean,omitempty"`
	OffMean Duration `json:"off_mean,omitempty"`
}

func (a ArrivalSpec) compile() workload.ArrivalConfig {
	return workload.ArrivalConfig{
		Process: a.Process,
		CV:      a.CV,
		Shape:   a.Shape,
		OnMean:  a.OnMean.Std(),
		OffMean: a.OffMean.Std(),
	}
}

// ThinkSpec adds per-request think time to a class.
type ThinkSpec struct {
	Dist string   `json:"dist,omitempty"`
	Mean Duration `json:"mean,omitempty"`
}

// SizeSpec overrides a class's request wire-size distribution.
type SizeSpec struct {
	Dist  string  `json:"dist,omitempty"`
	Mean  float64 `json:"mean,omitempty"`
	Sigma float64 `json:"sigma,omitempty"`
}

// ClassSpec is one client class of the workload mix.
type ClassSpec struct {
	Name     string      `json:"name"`
	Fraction float64     `json:"fraction"`
	Arrival  ArrivalSpec `json:"arrival,omitempty"`
	Think    ThinkSpec   `json:"think,omitempty"`
	Size     SizeSpec    `json:"size,omitempty"`
}

func (c ClassSpec) compile() loadgen.ClassConfig {
	return loadgen.ClassConfig{
		Name:     c.Name,
		Fraction: c.Fraction,
		Arrival:  c.Arrival.compile(),
		Think:    loadgen.ThinkConfig{Dist: c.Think.Dist, Mean: c.Think.Mean.Std()},
		Size:     loadgen.SizeConfig{Dist: c.Size.Dist, Mean: c.Size.Mean, Sigma: c.Size.Sigma},
	}
}

// PhaseSpec is one phase of the load program.
type PhaseSpec struct {
	Name      string   `json:"name,omitempty"`
	Duration  Duration `json:"duration"`
	RateScale float64  `json:"rate_scale"`
	EndScale  float64  `json:"end_scale,omitempty"`
}

func (p PhaseSpec) compile() loadgen.PhaseConfig {
	return loadgen.PhaseConfig{
		Name:      p.Name,
		Duration:  p.Duration.Std(),
		RateScale: p.RateScale,
		EndScale:  p.EndScale,
	}
}

// AutoscaleSpec configures the cluster's scaling loop.
type AutoscaleSpec struct {
	Min         int      `json:"min"`
	Max         int      `json:"max"`
	Interval    Duration `json:"interval,omitempty"`
	Signal      string   `json:"signal,omitempty"`
	ScaleUpAt   float64  `json:"scale_up_at,omitempty"`
	ScaleDownAt float64  `json:"scale_down_at,omitempty"`
	Cooldown    Duration `json:"cooldown,omitempty"`
}

func (a *AutoscaleSpec) compile() *cluster.AutoscalerConfig {
	if a == nil {
		return nil
	}
	cfg := cluster.DefaultAutoscalerConfig(a.Min, a.Max)
	if a.Interval > 0 {
		cfg.Interval = a.Interval.Std()
	}
	if a.Signal != "" {
		cfg.Signal = cluster.Signal(a.Signal)
	}
	if a.ScaleUpAt != 0 {
		cfg.ScaleUpAt = a.ScaleUpAt
	}
	if a.ScaleDownAt != 0 {
		cfg.ScaleDownAt = a.ScaleDownAt
	}
	if a.Cooldown > 0 {
		cfg.Cooldown = a.Cooldown.Std()
	}
	return &cfg
}

// CrashSpec is one explicit replica crash window; start_frac/end_frac
// are fractions of the run horizon in [0, 1].
type CrashSpec struct {
	Replica   int     `json:"replica"`
	StartFrac float64 `json:"start_frac"`
	EndFrac   float64 `json:"end_frac"`
}

// StragglerSpec degrades one replica's service rate by factor (≥ 1)
// over a window of the run.
type StragglerSpec struct {
	Replica   int     `json:"replica"`
	StartFrac float64 `json:"start_frac"`
	EndFrac   float64 `json:"end_frac"`
	Factor    float64 `json:"factor"`
}

// LinkSpec degrades the client↔server links over a window:
// delay_factor (≥ 1) multiplies propagation delay, loss drops each
// message independently with that probability.
type LinkSpec struct {
	StartFrac   float64 `json:"start_frac"`
	EndFrac     float64 `json:"end_frac"`
	DelayFactor float64 `json:"delay_factor,omitempty"`
	Loss        float64 `json:"loss,omitempty"`
}

// RandomCrashSpec draws per-replica crash windows from the run's RNG
// stream: a Poisson process at rate_per_sec with exponential downtimes.
type RandomCrashSpec struct {
	RatePerSec   float64  `json:"rate_per_sec"`
	MeanDowntime Duration `json:"mean_downtime"`
}

// FaultsSpec is the spec's deterministic fault plan.
type FaultsSpec struct {
	Crashes       []CrashSpec      `json:"crashes,omitempty"`
	Stragglers    []StragglerSpec  `json:"stragglers,omitempty"`
	Link          []LinkSpec       `json:"link,omitempty"`
	RandomCrashes *RandomCrashSpec `json:"random_crashes,omitempty"`
}

func (f *FaultsSpec) compile() *faults.Plan {
	if f == nil {
		return nil
	}
	p := &faults.Plan{}
	for _, c := range f.Crashes {
		p.Crashes = append(p.Crashes, faults.CrashWindow{Replica: c.Replica, Start: c.StartFrac, End: c.EndFrac})
	}
	for _, w := range f.Stragglers {
		p.Stragglers = append(p.Stragglers, faults.StragglerWindow{Replica: w.Replica, Start: w.StartFrac, End: w.EndFrac, Factor: w.Factor})
	}
	for _, l := range f.Link {
		p.Link = append(p.Link, faults.LinkWindow{Start: l.StartFrac, End: l.EndFrac, DelayFactor: l.DelayFactor, Loss: l.Loss})
	}
	if f.RandomCrashes != nil {
		p.RandomCrashes = &faults.RandomCrashes{RatePerSec: f.RandomCrashes.RatePerSec, MeanDowntime: f.RandomCrashes.MeanDowntime.Std()}
	}
	return p
}

// ResilienceSpec is the client-side fault handling: a per-request
// timeout gates the whole feature; retries and hedging require it.
type ResilienceSpec struct {
	Timeout   Duration `json:"timeout"`
	Retries   int      `json:"retries,omitempty"`
	RetryBase Duration `json:"retry_base,omitempty"`
	RetryCap  Duration `json:"retry_cap,omitempty"`
	Hedge     Duration `json:"hedge,omitempty"`
}

func (r *ResilienceSpec) compile() *loadgen.ResilienceConfig {
	if r == nil {
		return nil
	}
	return &loadgen.ResilienceConfig{
		Timeout:   r.Timeout.Std(),
		Retries:   r.Retries,
		RetryBase: r.RetryBase.Std(),
		RetryCap:  r.RetryCap.Std(),
		Hedge:     r.Hedge.Std(),
	}
}

// HiccupSpec overrides the server tiers' background-interference model
// (zero fields keep each service's defaults).
type HiccupSpec struct {
	RatePerSec   float64  `json:"rate_per_sec"`
	MeanDuration Duration `json:"mean_duration,omitempty"`
}

// Spec is one workload-spec document.
type Spec struct {
	Version     int    `json:"version"`
	Name        string `json:"name"`
	Description string `json:"description,omitempty"`
	Service     string `json:"service"`
	Client      string `json:"client,omitempty"`
	Server      string `json:"server,omitempty"`

	Rate  float64   `json:"rate,omitempty"`
	Rates []float64 `json:"rates,omitempty"`

	Runs       int      `json:"runs"`
	Samples    int      `json:"samples,omitempty"`
	Duration   Duration `json:"duration,omitempty"`
	SynthDelay Duration `json:"synth_delay,omitempty"`

	Replicas  int            `json:"replicas,omitempty"`
	Router    string         `json:"router,omitempty"`
	Autoscale *AutoscaleSpec `json:"autoscale,omitempty"`
	Shards    int            `json:"shards,omitempty"`

	Classes      []ClassSpec `json:"classes,omitempty"`
	Phases       []PhaseSpec `json:"phases,omitempty"`
	PhasesRepeat bool        `json:"phases_repeat,omitempty"`

	Faults     *FaultsSpec     `json:"faults,omitempty"`
	Resilience *ResilienceSpec `json:"resilience,omitempty"`
	Hiccups    *HiccupSpec     `json:"hiccups,omitempty"`
}

// Load reads and validates a spec file (YAML or JSON by content).
func Load(path string) (*Spec, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, fmt.Errorf("spec: %w", err)
	}
	s, err := Parse(data)
	if err != nil {
		return nil, fmt.Errorf("%w (in %s)", err, path)
	}
	return s, nil
}

// Parse decodes and validates one spec document. A document whose first
// significant byte is '{' is decoded as JSON; anything else goes through
// the YAML-subset parser. Unknown fields are errors either way.
func Parse(data []byte) (*Spec, error) {
	payload := data
	if !bytes.HasPrefix(bytes.TrimLeft(data, " \t\r\n"), []byte("{")) {
		tree, err := parseYAML(data)
		if err != nil {
			return nil, err
		}
		payload, err = json.Marshal(tree)
		if err != nil {
			return nil, fmt.Errorf("spec: %w", err)
		}
	}
	var s Spec
	dec := json.NewDecoder(bytes.NewReader(payload))
	dec.DisallowUnknownFields()
	if err := dec.Decode(&s); err != nil {
		return nil, fmt.Errorf("spec: %w", err)
	}
	if err := s.Validate(); err != nil {
		return nil, err
	}
	return &s, nil
}

// clientConfigs maps spec client names to hardware configurations.
func clientConfigs() map[string]hw.Config {
	return map[string]hw.Config{"LP": hw.LPConfig(), "HP": hw.HPConfig()}
}

// serverConfigs maps spec server names to hardware configurations.
func serverConfigs() map[string]hw.Config {
	return map[string]hw.Config{
		"baseline": hw.ServerBaselineConfig(),
		"smt":      hw.ServerBaselineConfig().WithSMT(true),
		"c1e":      hw.ServerBaselineConfig().WithMaxCState("C1E"),
	}
}

// clientName resolves the default.
func (s *Spec) clientName() string {
	if s.Client == "" {
		return "HP"
	}
	return s.Client
}

// serverName resolves the default.
func (s *Spec) serverName() string {
	if s.Server == "" {
		return "baseline"
	}
	return s.Server
}

// Validate checks the whole document, compiling the mix and cluster
// sections through their owning packages' validators so a spec that
// loads is guaranteed to run.
func (s *Spec) Validate() error {
	if s.Version != Version {
		return fmt.Errorf("spec: unsupported version %d (this build reads version %d)", s.Version, Version)
	}
	if s.Name == "" {
		return fmt.Errorf("spec: missing name")
	}
	switch experiment.Service(s.Service) {
	case experiment.ServiceMemcached, experiment.ServiceHDSearch, experiment.ServiceSocialNet, experiment.ServiceSynthetic:
	case "":
		return fmt.Errorf("spec: missing service")
	default:
		return fmt.Errorf("spec: unknown service %q (want memcached|hdsearch|socialnet|synthetic)", s.Service)
	}
	if _, ok := clientConfigs()[s.clientName()]; !ok {
		return fmt.Errorf("spec: unknown client %q (want LP|HP)", s.Client)
	}
	if _, ok := serverConfigs()[s.serverName()]; !ok {
		return fmt.Errorf("spec: unknown server %q (want baseline|smt|c1e)", s.Server)
	}
	if s.Rate != 0 && len(s.Rates) > 0 {
		return fmt.Errorf("spec: rate and rates are mutually exclusive")
	}
	rates := s.SweepRates()
	if len(rates) == 0 {
		return fmt.Errorf("spec: missing rates (or a single rate)")
	}
	for _, r := range rates {
		if r <= 0 || math.IsNaN(r) || math.IsInf(r, 0) {
			return fmt.Errorf("spec: rate %v must be positive and finite", r)
		}
	}
	if s.Runs < 1 {
		return fmt.Errorf("spec: runs must be ≥ 1, got %d", s.Runs)
	}
	if s.Samples < 0 {
		return fmt.Errorf("spec: negative samples %d", s.Samples)
	}
	if s.Duration < 0 {
		return fmt.Errorf("spec: negative duration %v", s.Duration.Std())
	}
	if s.Samples > 0 && s.Duration > 0 {
		return fmt.Errorf("spec: samples and duration are mutually exclusive")
	}
	if s.SynthDelay < 0 {
		return fmt.Errorf("spec: negative synth_delay %v", s.SynthDelay.Std())
	}
	if s.SynthDelay > 0 && experiment.Service(s.Service) != experiment.ServiceSynthetic {
		return fmt.Errorf("spec: synth_delay only applies to the synthetic service")
	}
	if s.Replicas < 0 {
		return fmt.Errorf("spec: negative replicas %d", s.Replicas)
	}
	if s.Router != "" {
		if _, err := cluster.NewRouter(s.Router); err != nil {
			return fmt.Errorf("spec: %w", err)
		}
		if s.Replicas <= 1 && s.Autoscale == nil {
			return fmt.Errorf("spec: router %q set without replicas", s.Router)
		}
	}
	if s.Shards < 0 {
		return fmt.Errorf("spec: negative shards %d", s.Shards)
	}
	if s.PhasesRepeat && len(s.Phases) == 0 {
		return fmt.Errorf("spec: phases_repeat set without phases")
	}
	if s.Faults != nil && s.Faults.compile().Empty() {
		return fmt.Errorf("spec: faults section is empty (want crashes, stragglers, link, or random_crashes)")
	}
	if s.Hiccups != nil {
		if s.Hiccups.RatePerSec < 0 {
			return fmt.Errorf("spec: negative hiccup rate_per_sec %g", s.Hiccups.RatePerSec)
		}
		if s.Hiccups.MeanDuration < 0 {
			return fmt.Errorf("spec: negative hiccup mean_duration %v", s.Hiccups.MeanDuration.Std())
		}
	}
	// The scenario validator re-checks everything below, but compiling
	// through it here turns "spec loads" into "spec runs".
	sc := s.Scenario(rates[0])
	sc.Runs = 1
	if err := sc.Validate(); err != nil {
		return fmt.Errorf("spec: %w", err)
	}
	return nil
}

// SweepRates returns the rate axis (the rate shorthand normalized).
func (s *Spec) SweepRates() []float64 {
	if s.Rate != 0 {
		return []float64{s.Rate}
	}
	return s.Rates
}

// ClientConfig returns the resolved client hardware configuration and
// its name.
func (s *Spec) ClientConfig() (hw.Config, string) {
	name := s.clientName()
	return clientConfigs()[name], name
}

// ServerConfig returns the resolved server hardware configuration.
func (s *Spec) ServerConfig() hw.Config { return serverConfigs()[s.serverName()] }

// LoadgenClasses compiles the class mix.
func (s *Spec) LoadgenClasses() []loadgen.ClassConfig {
	if len(s.Classes) == 0 {
		return nil
	}
	classes := make([]loadgen.ClassConfig, len(s.Classes))
	for i, c := range s.Classes {
		classes[i] = c.compile()
	}
	return classes
}

// LoadgenPhases compiles the phase program.
func (s *Spec) LoadgenPhases() []loadgen.PhaseConfig {
	if len(s.Phases) == 0 {
		return nil
	}
	phases := make([]loadgen.PhaseConfig, len(s.Phases))
	for i, p := range s.Phases {
		phases[i] = p.compile()
	}
	return phases
}

// AutoscalerConfig compiles the autoscale section (nil when absent).
func (s *Spec) AutoscalerConfig() *cluster.AutoscalerConfig { return s.Autoscale.compile() }

// Scenario compiles the spec at one rate of its sweep, with the same
// label convention the built-in presets use.
func (s *Spec) Scenario(rate float64) experiment.Scenario {
	client, clientName := s.ClientConfig()
	sc := experiment.Scenario{
		Service:       experiment.Service(s.Service),
		Label:         clientName + "-" + s.Name,
		Client:        client,
		Server:        s.ServerConfig(),
		RateQPS:       rate,
		Runs:          s.Runs,
		TargetSamples: s.Samples,
		Duration:      s.Duration.Std(),
		Classes:       s.LoadgenClasses(),
		Phases:        s.LoadgenPhases(),
		PhasesRepeat:  s.PhasesRepeat,
		SynthDelay:    s.SynthDelay.Std(),
		Replicas:      s.Replicas,
		Router:        s.Router,
		Autoscale:     s.AutoscalerConfig(),
		Shards:        s.Shards,
		Faults:        s.Faults.compile(),
		Resilience:    s.Resilience.compile(),
	}
	if s.Hiccups != nil {
		sc.HiccupRate = s.Hiccups.RatePerSec
		sc.HiccupMean = s.Hiccups.MeanDuration.Std()
	}
	return sc
}
