package spec

import (
	"fmt"
	"strconv"
	"strings"
)

// This file is a hand-written parser for the small YAML subset workload
// specs use. The repository deliberately has no dependencies, so rather
// than vendoring a full YAML implementation the spec format is defined
// as exactly the subset below, and anything outside it is a parse
// error — a spec either round-trips through this parser or fails fast
// with a line number:
//
//   - mappings by indentation (spaces only; tabs are rejected)
//   - block sequences ("- item", including "- key: value" map items)
//   - flow sequences ("[1, 2, 3]") of scalars
//   - scalars: double/single-quoted strings, booleans, null, numbers;
//     everything else is a plain string (durations like "250ms" ride
//     through as strings for the typed layer to parse)
//   - "#" comments and blank lines
//
// The parse result is the generic tree JSON unmarshalling would produce
// (map[string]any / []any / float64 / bool / string / nil), which the
// typed layer re-marshals through encoding/json to get strict
// unknown-field checking for free.

type yamlLine struct {
	indent int
	text   string
	num    int // 1-based source line
}

type yamlParser struct {
	lines []yamlLine
	pos   int
}

// parseYAML parses one document into a generic tree.
func parseYAML(data []byte) (any, error) {
	lines, err := lexYAML(data)
	if err != nil {
		return nil, err
	}
	if len(lines) == 0 {
		return nil, fmt.Errorf("spec: empty document")
	}
	p := &yamlParser{lines: lines}
	root, err := p.parseBlock(lines[0].indent)
	if err != nil {
		return nil, err
	}
	if p.pos != len(p.lines) {
		l := p.lines[p.pos]
		return nil, fmt.Errorf("spec: line %d: unexpected content %q after document", l.num, l.text)
	}
	return root, nil
}

// lexYAML splits the input into significant lines: comments stripped,
// blanks dropped, indentation measured.
func lexYAML(data []byte) ([]yamlLine, error) {
	var lines []yamlLine
	for num, raw := range strings.Split(string(data), "\n") {
		indent := 0
		for indent < len(raw) && raw[indent] == ' ' {
			indent++
		}
		if indent < len(raw) && raw[indent] == '\t' {
			return nil, fmt.Errorf("spec: line %d: tab in indentation (use spaces)", num+1)
		}
		text := strings.TrimRight(stripComment(raw[indent:]), " \t")
		if text == "" || text == "---" {
			continue
		}
		lines = append(lines, yamlLine{indent: indent, text: text, num: num + 1})
	}
	return lines, nil
}

// stripComment removes a trailing "# ..." comment, honouring quotes. A
// '#' starts a comment at the start of content or after whitespace.
func stripComment(s string) string {
	var quote byte
	for i := 0; i < len(s); i++ {
		switch c := s[i]; {
		case quote != 0:
			if c == quote {
				quote = 0
			}
		case c == '"' || c == '\'':
			quote = c
		case c == '#' && (i == 0 || s[i-1] == ' ' || s[i-1] == '\t'):
			return s[:i]
		}
	}
	return s
}

func (p *yamlParser) peek() yamlLine { return p.lines[p.pos] }

// parseBlock parses the collection starting at the current line, whose
// members sit at exactly the given indent.
func (p *yamlParser) parseBlock(indent int) (any, error) {
	if line := p.peek(); line.text == "-" || strings.HasPrefix(line.text, "- ") {
		return p.parseSequence(indent)
	}
	return p.parseMapping(indent)
}

func (p *yamlParser) parseMapping(indent int) (any, error) {
	m := map[string]any{}
	for p.pos < len(p.lines) {
		line := p.peek()
		if line.indent < indent {
			break
		}
		if line.indent > indent {
			return nil, fmt.Errorf("spec: line %d: unexpected indentation", line.num)
		}
		if line.text == "-" || strings.HasPrefix(line.text, "- ") {
			return nil, fmt.Errorf("spec: line %d: sequence item in mapping", line.num)
		}
		key, rest, err := splitKey(line)
		if err != nil {
			return nil, err
		}
		if _, dup := m[key]; dup {
			return nil, fmt.Errorf("spec: line %d: duplicate key %q", line.num, key)
		}
		p.pos++
		if rest != "" {
			v, err := parseScalarOrFlow(rest, line.num)
			if err != nil {
				return nil, err
			}
			m[key] = v
			continue
		}
		// "key:" introduces a nested block (or an explicit null when
		// nothing more-indented follows).
		if p.pos < len(p.lines) && p.lines[p.pos].indent > indent {
			v, err := p.parseBlock(p.lines[p.pos].indent)
			if err != nil {
				return nil, err
			}
			m[key] = v
		} else {
			m[key] = nil
		}
	}
	return m, nil
}

func (p *yamlParser) parseSequence(indent int) (any, error) {
	seq := []any{}
	for p.pos < len(p.lines) {
		line := p.peek()
		if line.indent < indent {
			break
		}
		if line.indent > indent {
			return nil, fmt.Errorf("spec: line %d: unexpected indentation", line.num)
		}
		if line.text != "-" && !strings.HasPrefix(line.text, "- ") {
			break
		}
		rest := strings.TrimLeft(strings.TrimPrefix(line.text, "-"), " ")
		switch {
		case rest == "":
			// "-" alone: the item is the more-indented block below.
			p.pos++
			if p.pos >= len(p.lines) || p.lines[p.pos].indent <= indent {
				return nil, fmt.Errorf("spec: line %d: empty sequence item", line.num)
			}
			v, err := p.parseBlock(p.lines[p.pos].indent)
			if err != nil {
				return nil, err
			}
			seq = append(seq, v)
		case isMappingStart(rest):
			// "- key: value": rewrite the line as the first key of a map
			// item indented at the key's column, then parse the mapping —
			// its remaining keys are the following lines at that indent.
			itemIndent := line.indent + len(line.text) - len(rest)
			p.lines[p.pos] = yamlLine{indent: itemIndent, text: rest, num: line.num}
			v, err := p.parseMapping(itemIndent)
			if err != nil {
				return nil, err
			}
			seq = append(seq, v)
		default:
			p.pos++
			v, err := parseScalarOrFlow(rest, line.num)
			if err != nil {
				return nil, err
			}
			seq = append(seq, v)
		}
	}
	return seq, nil
}

// isMappingStart reports whether a sequence item's content begins a map
// ("key: value" or "key:") rather than being a scalar.
func isMappingStart(s string) bool {
	if strings.HasPrefix(s, "\"") || strings.HasPrefix(s, "'") || strings.HasPrefix(s, "[") {
		return false
	}
	i := strings.Index(s, ":")
	return i > 0 && (i == len(s)-1 || s[i+1] == ' ')
}

// splitKey splits "key: value" / "key:" into key and raw value.
func splitKey(line yamlLine) (key, rest string, err error) {
	i := strings.Index(line.text, ":")
	if i <= 0 || (i < len(line.text)-1 && line.text[i+1] != ' ') {
		return "", "", fmt.Errorf("spec: line %d: expected \"key: value\", got %q", line.num, line.text)
	}
	key = strings.TrimSpace(line.text[:i])
	if strings.HasPrefix(key, "\"") || strings.HasPrefix(key, "'") {
		key = unquote(key)
	}
	return key, strings.TrimSpace(line.text[i+1:]), nil
}

// parseScalarOrFlow parses a scalar or an inline "[a, b, c]" sequence.
func parseScalarOrFlow(s string, num int) (any, error) {
	if !strings.HasPrefix(s, "[") {
		return parseScalar(s), nil
	}
	if !strings.HasSuffix(s, "]") {
		return nil, fmt.Errorf("spec: line %d: unterminated flow sequence %q", num, s)
	}
	inner := strings.TrimSpace(s[1 : len(s)-1])
	seq := []any{}
	if inner == "" {
		return seq, nil
	}
	for _, part := range strings.Split(inner, ",") {
		part = strings.TrimSpace(part)
		if part == "" {
			return nil, fmt.Errorf("spec: line %d: empty element in flow sequence %q", num, s)
		}
		if strings.HasPrefix(part, "[") {
			return nil, fmt.Errorf("spec: line %d: nested flow sequences are not supported", num)
		}
		seq = append(seq, parseScalar(part))
	}
	return seq, nil
}

// parseScalar types a scalar the way JSON unmarshalling would: bool,
// null, float64, else string. Unrecognised words (durations, names)
// stay strings for the typed layer.
func parseScalar(s string) any {
	if strings.HasPrefix(s, "\"") || strings.HasPrefix(s, "'") {
		return unquote(s)
	}
	switch s {
	case "true":
		return true
	case "false":
		return false
	case "null", "~":
		return nil
	}
	if f, err := strconv.ParseFloat(s, 64); err == nil {
		return f
	}
	return s
}

// unquote strips matched quotes; inside double quotes \" and \\ escape.
func unquote(s string) string {
	if len(s) < 2 {
		return s
	}
	q := s[0]
	if (q != '"' && q != '\'') || s[len(s)-1] != q {
		return s
	}
	body := s[1 : len(s)-1]
	if q == '\'' {
		return strings.ReplaceAll(body, "''", "'")
	}
	var b strings.Builder
	for i := 0; i < len(body); i++ {
		if body[i] == '\\' && i+1 < len(body) {
			i++
		}
		b.WriteByte(body[i])
	}
	return b.String()
}
