package experiment

import (
	"fmt"

	"repro/internal/loadgen"
	"repro/internal/rng"
	"repro/internal/stats"
)

// OrderingStudy implements the OrderSage methodology the paper cites
// (Duplyakin et al., ATC'23 [12], §VII): execute the same set of scenarios
// in their natural grouped order and in a randomized interleaved order, and
// compare per-scenario results. Disagreement means state leaks between
// experiments (caches, stores, thermal state) and the execution order
// biases conclusions — the "ordering trap".
//
// In this harness the environment resets between runs, so agreement is the
// expected outcome; the study doubles as a regression test that the reset
// really is complete (a backend that forgot to clear run-scoped state
// shows up here).
type OrderingStudy struct {
	// Scenarios under comparison. Runs in each scenario is the number of
	// repetitions per ordering arm.
	Scenarios []Scenario
	// Seed controls both arms' randomness and the shuffle.
	Seed uint64
}

// OrderingArm is one execution order's outcome.
type OrderingArm struct {
	// MedianAvgUs per scenario, index-aligned with Scenarios.
	MedianAvgUs []float64
	// CIs per scenario.
	CIs []stats.Interval
}

// OrderingResult compares the two arms.
type OrderingResult struct {
	Grouped     OrderingArm
	Interleaved OrderingArm
	// MaxDiscrepancyPct is the largest |grouped − interleaved| median
	// difference relative to the grouped median, across scenarios.
	MaxDiscrepancyPct float64
	// Biased reports whether any scenario's grouped and interleaved CIs
	// are disjoint — the ordering-trap signal.
	Biased bool
}

// Run executes the study. Each scenario contributes Runs repetitions per
// arm; the grouped arm runs them scenario by scenario, the interleaved arm
// shuffles all (scenario, repetition) pairs.
func (o OrderingStudy) Run() (OrderingResult, error) {
	if len(o.Scenarios) < 2 {
		return OrderingResult{}, fmt.Errorf("experiment: ordering study needs ≥2 scenarios, have %d", len(o.Scenarios))
	}
	for i, s := range o.Scenarios {
		if err := s.Validate(); err != nil {
			return OrderingResult{}, fmt.Errorf("experiment: ordering scenario %d: %w", i, err)
		}
	}

	type job struct{ scenario, rep int }
	var jobs []job
	for si, s := range o.Scenarios {
		for r := 0; r < s.Runs; r++ {
			jobs = append(jobs, job{si, r})
		}
	}

	execute := func(order []job, label string) (OrderingArm, error) {
		// Backends persist across a whole arm (like a testbed that stays
		// up between experiments), so leaked state would carry over.
		gens := make([]*scenarioRunner, len(o.Scenarios))
		samples := make([][]float64, len(o.Scenarios))
		for _, j := range order {
			if gens[j.scenario] == nil {
				g, err := newScenarioRunner(o.Scenarios[j.scenario])
				if err != nil {
					return OrderingArm{}, err
				}
				gens[j.scenario] = g
			}
			stream := rng.NewLabeled(o.Seed, fmt.Sprintf("ordering/%s/s%d/r%d", label, j.scenario, j.rep))
			avg, err := gens[j.scenario].runOnce(stream)
			if err != nil {
				return OrderingArm{}, err
			}
			samples[j.scenario] = append(samples[j.scenario], avg)
		}
		arm := OrderingArm{}
		for _, x := range samples {
			arm.MedianAvgUs = append(arm.MedianAvgUs, stats.Median(x))
			if iv, err := stats.NonParametricCI(x, 0.95); err == nil {
				arm.CIs = append(arm.CIs, iv)
			} else {
				arm.CIs = append(arm.CIs, stats.Interval{
					Point: stats.Median(x), Lower: stats.Min(x), Upper: stats.Max(x), Confidence: 0.95,
				})
			}
		}
		return arm, nil
	}

	grouped, err := execute(jobs, "grouped")
	if err != nil {
		return OrderingResult{}, err
	}

	shuffled := append([]job(nil), jobs...)
	shuffleStream := rng.NewLabeled(o.Seed, "ordering/shuffle")
	for i := len(shuffled) - 1; i > 0; i-- {
		j := shuffleStream.Intn(i + 1)
		shuffled[i], shuffled[j] = shuffled[j], shuffled[i]
	}
	interleaved, err := execute(shuffled, "interleaved")
	if err != nil {
		return OrderingResult{}, err
	}

	res := OrderingResult{Grouped: grouped, Interleaved: interleaved}
	for i := range o.Scenarios {
		g, iv := grouped.MedianAvgUs[i], interleaved.MedianAvgUs[i]
		if g != 0 {
			d := 100 * abs(g-iv) / g
			if d > res.MaxDiscrepancyPct {
				res.MaxDiscrepancyPct = d
			}
		}
		if !grouped.CIs[i].Overlaps(interleaved.CIs[i]) {
			res.Biased = true
		}
	}
	return res, nil
}

func abs(x float64) float64 {
	if x < 0 {
		return -x
	}
	return x
}

// scenarioRunner holds a built backend+generator for repeated runs.
type scenarioRunner struct {
	s   Scenario
	run func(stream *rng.Stream) (float64, error)
}

func newScenarioRunner(s Scenario) (*scenarioRunner, error) {
	backend, err := s.buildBackend()
	if err != nil {
		return nil, err
	}
	warmup, total := s.runTiming()
	gen, err := loadgen.New(s.generatorConfig(backend, warmup), backend)
	if err != nil {
		return nil, err
	}
	return &scenarioRunner{
		s: s,
		run: func(stream *rng.Stream) (float64, error) {
			rr, err := gen.RunOnce(stream, total)
			if err != nil {
				return 0, err
			}
			if rr.Latency.N == 0 {
				return 0, fmt.Errorf("experiment: ordering run collected no samples")
			}
			return rr.Latency.Mean, nil
		},
	}, nil
}

func (r *scenarioRunner) runOnce(stream *rng.Stream) (float64, error) { return r.run(stream) }
