package experiment

import (
	"testing"

	"repro/internal/hw"
	"repro/internal/stats"
)

// TestRunsAreIID verifies the harness's statistical foundation (§III):
// per-run samples must be independent and identically distributed, since
// the non-parametric CIs assume it. The environment reset between runs is
// what guarantees it; this test checks the observable consequences.
func TestRunsAreIID(t *testing.T) {
	if testing.Short() {
		t.Skip("statistical verification")
	}
	res, err := Run(Scenario{
		Service:       ServiceMemcached,
		Label:         "iid",
		Client:        hw.LPConfig(),
		Server:        hw.ServerBaselineConfig(),
		RateQPS:       100_000,
		Runs:          30,
		TargetSamples: 2_000,
		Seed:          321,
	})
	if err != nil {
		t.Fatal(err)
	}

	// Independence: lag-1 autocorrelation of the run sequence ≈ 0. For 30
	// iid samples the 95% band is ≈ ±2/√30 ≈ ±0.37.
	acf, err := stats.Autocorrelation(res.PerRunAvgUs, 1)
	if err != nil {
		t.Fatal(err)
	}
	if acf > 0.4 || acf < -0.5 {
		t.Errorf("lag-1 autocorrelation of runs = %.3f, want ≈0 (iid violated)", acf)
	}

	// Randomness: turning-point test must not reject.
	tp, err := stats.TurningPointTest(res.PerRunAvgUs)
	if err != nil {
		t.Fatal(err)
	}
	if !tp.Random(0.01) {
		t.Errorf("turning-point test rejects randomness: %d points, p=%.4f", tp.TurningPoints, tp.PValue)
	}

	// No drift: the run sequence is stationary (there is no warm-up trend
	// leaking across runs, because each run resets the environment).
	adf, err := stats.ADF(res.PerRunAvgUs, 1)
	if err != nil {
		t.Fatal(err)
	}
	if !adf.Stationary() {
		t.Errorf("run sequence non-stationary: ADF t=%.2f (state leaks across runs?)", adf.Statistic)
	}
}
