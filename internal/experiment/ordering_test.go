package experiment

import (
	"testing"

	"repro/internal/hw"
)

func TestOrderingStudyValidation(t *testing.T) {
	if _, err := (OrderingStudy{}).Run(); err == nil {
		t.Error("empty study accepted")
	}
	bad := OrderingStudy{Scenarios: []Scenario{
		{Service: "bogus", RateQPS: 1, Runs: 1},
		{Service: ServiceSynthetic, RateQPS: 1, Runs: 1},
	}}
	if _, err := bad.Run(); err == nil {
		t.Error("invalid scenario accepted")
	}
}

func TestOrderingStudyNoBiasWithCleanResets(t *testing.T) {
	// The harness resets the environment per run, so grouped and
	// interleaved execution must agree — the OrderSage null result, and a
	// regression test that backend resets are complete.
	mk := func(label string, rate float64) Scenario {
		return Scenario{
			Service:       ServiceSynthetic,
			Label:         label,
			Client:        hw.LPConfig(),
			Server:        hw.ServerBaselineConfig(),
			RateQPS:       rate,
			Runs:          12,
			TargetSamples: 800,
			Seed:          5,
		}
	}
	res, err := OrderingStudy{
		Scenarios: []Scenario{mk("a", 5_000), mk("b", 15_000)},
		Seed:      6,
	}.Run()
	if err != nil {
		t.Fatal(err)
	}
	t.Logf("grouped medians: %v", res.Grouped.MedianAvgUs)
	t.Logf("interleaved medians: %v", res.Interleaved.MedianAvgUs)
	t.Logf("max discrepancy: %.2f%%", res.MaxDiscrepancyPct)
	if res.Biased {
		t.Error("ordering bias detected — run-scoped state leaks between runs")
	}
	if res.MaxDiscrepancyPct > 5 {
		t.Errorf("ordering discrepancy %.2f%%, want <5%%", res.MaxDiscrepancyPct)
	}
}
