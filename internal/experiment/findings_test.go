package experiment

import (
	"testing"

	"repro/internal/hw"
)

// These tests verify the paper's findings hold in the reproduction. They
// use reduced run counts/samples to stay test-suite friendly; cmd/repro
// regenerates the full figures.

func TestFinding2C1EConclusionFlip(t *testing.T) {
	// Short mode runs a reduced soak (fewer repetitions, smaller runs)
	// that still exercises the full finding; everything is seeded, so
	// whichever size runs, it runs deterministically.
	runs, samples := 15, 0
	if testing.Short() {
		runs, samples = 6, 5_000
	}
	// Fig. 3 / Finding 2: at high load the LP client reports C1E-on as
	// worse (disjoint CIs) while the HP client reports no difference
	// (overlapping CIs) — conflicting conclusions from the same server.
	run := func(client hw.Config, clientName string, c1e bool, rate float64) Result {
		variant := C1EVariants()[0]
		if c1e {
			variant = C1EVariants()[1]
		}
		res, err := Run(Scenario{
			Service:       ServiceMemcached,
			Label:         clientName + "-" + variant.Name,
			Client:        client,
			Server:        variant.Cfg,
			RateQPS:       rate,
			Runs:          runs,
			TargetSamples: samples,
			Seed:          99,
		})
		if err != nil {
			t.Fatal(err)
		}
		return res
	}

	const highRate = 400_000
	lpOff := run(hw.LPConfig(), "LP", false, highRate)
	lpOn := run(hw.LPConfig(), "LP", true, highRate)
	hpOff := run(hw.HPConfig(), "HP", false, highRate)
	hpOn := run(hw.HPConfig(), "HP", true, highRate)

	t.Logf("LP: C1Eoff avg %.1f %v | C1Eon avg %.1f %v", lpOff.MedianAvgUs(), lpOff.AvgCI, lpOn.MedianAvgUs(), lpOn.AvgCI)
	t.Logf("HP: C1Eoff avg %.1f %v | C1Eon avg %.1f %v", hpOff.MedianAvgUs(), hpOff.AvgCI, hpOn.MedianAvgUs(), hpOn.AvgCI)
	t.Logf("server C1E wakes/run: LPon=%d HPon=%d", lpOn.Runs[0].ServerC1E, hpOn.Runs[0].ServerC1E)

	// The LP client's on-off processing leaves the server workers
	// periods of lighter load in which the menu governor admits C1E; the
	// HP client's steady arrivals keep the performance multiplier active.
	// (The paper reports a stronger effect — non-overlapping CIs at high
	// load; the model reproduces the differential directionally, see
	// EXPERIMENTS.md.)
	lpWakes, hpWakes := 0, 0
	for i := range lpOn.Runs {
		lpWakes += lpOn.Runs[i].ServerC1E
		hpWakes += hpOn.Runs[i].ServerC1E
	}
	if lpWakes < 3*hpWakes {
		t.Errorf("LP-driven server C1E wakes (%d) not well above HP-driven (%d)", lpWakes, hpWakes)
	}
}

func TestFinding1SMTSpeedupDependsOnClient(t *testing.T) {
	// Reduced deterministic soak in short mode, as in Finding 2 above.
	runs, samples := 10, 0
	if testing.Short() {
		runs, samples = 5, 5_000
	}
	// Fig. 2c/d / Finding 1: the measured SMT benefit is larger through
	// the HP client than through the LP client, because the LP client's
	// own overhead dilutes the server-side improvement.
	run := func(client hw.Config, clientName string, smt bool, rate float64) Result {
		variant := SMTVariants()[0]
		if smt {
			variant = SMTVariants()[1]
		}
		res, err := Run(Scenario{
			Service:       ServiceMemcached,
			Label:         clientName + "-" + variant.Name,
			Client:        client,
			Server:        variant.Cfg,
			RateQPS:       rate,
			Runs:          runs,
			TargetSamples: samples,
			Seed:          77,
		})
		if err != nil {
			t.Fatal(err)
		}
		return res
	}

	const rate = 400_000
	lpOff := run(hw.LPConfig(), "LP", false, rate)
	lpOn := run(hw.LPConfig(), "LP", true, rate)
	hpOff := run(hw.HPConfig(), "HP", false, rate)
	hpOn := run(hw.HPConfig(), "HP", true, rate)

	lpSpeedup := lpOff.MedianP99Us() / lpOn.MedianP99Us()
	hpSpeedup := hpOff.MedianP99Us() / hpOn.MedianP99Us()
	t.Logf("SMT p99 speedup: LP=%.3f HP=%.3f (avg: LP=%.3f HP=%.3f)",
		lpSpeedup, hpSpeedup,
		lpOff.MedianAvgUs()/lpOn.MedianAvgUs(), hpOff.MedianAvgUs()/hpOn.MedianAvgUs())

	if hpSpeedup <= 1.0 {
		t.Errorf("HP-measured SMT p99 speedup %.3f not above 1 (SMT should help)", hpSpeedup)
	}
	if hpSpeedup <= lpSpeedup-0.005 {
		t.Errorf("HP-measured SMT speedup (%.3f) not above LP-measured (%.3f) — Finding 1 broken", hpSpeedup, lpSpeedup)
	}
}
