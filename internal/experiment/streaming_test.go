package experiment

import (
	"math"
	"reflect"
	"testing"

	"repro/internal/hw"
	"repro/internal/metrics"
)

func TestEffectiveSampleMode(t *testing.T) {
	base := Scenario{Service: ServiceMemcached, RateQPS: 1, Runs: 1}

	s := base
	s.TargetSamples = 1_000
	if got := s.EffectiveSampleMode(); got != metrics.SampleExact {
		t.Errorf("auto below threshold = %v, want exact", got)
	}
	s.TargetSamples = DefaultStreamingThreshold + 1
	if got := s.EffectiveSampleMode(); got != metrics.SampleStreaming {
		t.Errorf("auto above threshold = %v, want streaming", got)
	}
	s.StreamingThreshold = 500
	s.TargetSamples = 1_000
	if got := s.EffectiveSampleMode(); got != metrics.SampleStreaming {
		t.Errorf("auto above custom threshold = %v, want streaming", got)
	}
	s.SampleMode = metrics.SampleExact
	if got := s.EffectiveSampleMode(); got != metrics.SampleExact {
		t.Errorf("explicit exact overridden: %v", got)
	}
	s.SampleMode = metrics.SampleStreaming
	s.TargetSamples = 10
	if got := s.EffectiveSampleMode(); got != metrics.SampleStreaming {
		t.Errorf("explicit streaming overridden: %v", got)
	}
}

// streamingScenario mirrors detScenario but forces the streaming
// reduction.
func streamingScenario(workers int) Scenario {
	s := detScenario(workers)
	s.SampleMode = metrics.SampleStreaming
	return s
}

// TestStreamingParallelByteIdentical extends the scheduler's core
// regression to the streaming path: the reservoir draws from the run's
// own labeled stream, so the full Result must stay identical for every
// worker count.
func TestStreamingParallelByteIdentical(t *testing.T) {
	seq, err := Run(streamingScenario(1))
	if err != nil {
		t.Fatal(err)
	}
	par, err := Run(streamingScenario(4))
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(normalize(seq), normalize(par)) {
		t.Errorf("streaming parallel Result differs from sequential:\nseq: %+v\npar: %+v", seq.Runs, par.Runs)
	}
	par2, err := Run(streamingScenario(4))
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(par, par2) {
		t.Error("two parallel streaming executions differ")
	}
}

// TestStreamingScenarioWithinBound compares a scenario's per-run
// reductions under the two modes: identical simulations, sketch-bounded
// quantiles.
func TestStreamingScenarioWithinBound(t *testing.T) {
	exactS := detScenario(1)
	exactS.Runs = 3
	exactS.TargetSamples = 8_000 // tail order statistics dense enough to compare estimators
	exactS.SampleMode = metrics.SampleExact
	streamS := exactS
	streamS.SampleMode = metrics.SampleStreaming

	er, err := Run(exactS)
	if err != nil {
		t.Fatal(err)
	}
	sr, err := Run(streamS)
	if err != nil {
		t.Fatal(err)
	}
	if len(er.Runs) != len(sr.Runs) {
		t.Fatalf("run counts differ: %d vs %d", len(er.Runs), len(sr.Runs))
	}
	// The sketch bound α holds against the floor-rank order statistic;
	// the exact P99 interpolates between adjacent order statistics, whose
	// gap at this N adds up to ≈1% on top.
	tol := metrics.DefaultRelativeAccuracy + 1e-2
	for i := range er.Runs {
		e, s := er.Runs[i], sr.Runs[i]
		if e.Samples != s.Samples || e.ClientC6 != s.ClientC6 || e.ServerC1E != s.ServerC1E {
			t.Fatalf("run %d: simulations diverged between modes: %+v vs %+v", i, e, s)
		}
		if rel := math.Abs(s.AvgUs-e.AvgUs) / e.AvgUs; rel > 1e-9 {
			t.Errorf("run %d: mean rel err %.2e", i, rel)
		}
		if rel := math.Abs(s.P99Us-e.P99Us) / e.P99Us; rel > tol {
			t.Errorf("run %d: P99 %.2f vs exact %.2f (rel err %.4f > %.4f)", i, s.P99Us, e.P99Us, rel, tol)
		}
	}
}

// TestAutoModeThresholdCrossing runs one scenario just under and one
// just over a tiny custom threshold and checks both succeed — the
// auto-selection path end to end.
func TestAutoModeThresholdCrossing(t *testing.T) {
	s := Scenario{
		Service:            ServiceSynthetic,
		Label:              "auto",
		Client:             hw.HPConfig(),
		Server:             hw.ServerBaselineConfig(),
		RateQPS:            5_000,
		Runs:               2,
		TargetSamples:      800,
		Seed:               6,
		StreamingThreshold: 500, // 800 > 500 ⇒ streaming
	}
	if s.EffectiveSampleMode() != metrics.SampleStreaming {
		t.Fatal("scenario should auto-select streaming")
	}
	res, err := Run(s)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Runs) != 2 || res.Runs[0].Samples == 0 {
		t.Errorf("streaming auto run incomplete: %+v", res.Runs)
	}
}
