package experiment

import (
	"reflect"
	"testing"
	"time"

	"repro/internal/cluster"
	"repro/internal/envpool"
	"repro/internal/hw"
)

// clusterScenario is a small replicated Memcached scenario.
func clusterScenario(workers int) Scenario {
	s := detScenario(workers)
	s.Label = "cluster-det"
	s.Replicas = 3
	s.Router = cluster.RouterConsistentHash
	return s
}

// TestClusterParallelByteIdentical extends the scheduler's core
// determinism guarantee to the replicated path: the full Result —
// including every run's per-replica cluster stats — must be identical
// for any worker count.
func TestClusterParallelByteIdentical(t *testing.T) {
	seq, err := Run(clusterScenario(1))
	if err != nil {
		t.Fatal(err)
	}
	par, err := Run(clusterScenario(4))
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(normalize(seq), normalize(par)) {
		t.Errorf("parallel clustered Result differs from sequential:\nseq: %+v\npar: %+v", seq.Runs, par.Runs)
	}
	for i, rm := range seq.Runs {
		if rm.Cluster == nil {
			t.Fatalf("run %d has no cluster stats", i)
		}
		if rm.Cluster.Active != 3 || rm.Cluster.Capacity != 3 {
			t.Errorf("run %d: active/capacity = %d/%d, want 3/3", i, rm.Cluster.Active, rm.Cluster.Capacity)
		}
	}
}

// TestSingleReplicaScenarioByteIdentical pins the acceptance guarantee
// at the harness level: Replicas: 1 must not take the cluster path, and
// its Result (modulo the replica fields themselves) must equal the
// legacy scenario's byte for byte — for sequential and parallel
// execution alike.
func TestSingleReplicaScenarioByteIdentical(t *testing.T) {
	for _, workers := range []int{1, 4} {
		legacy, err := Run(detScenario(workers))
		if err != nil {
			t.Fatal(err)
		}
		s := detScenario(workers)
		s.Replicas = 1
		s.Router = cluster.RouterRoundRobin
		single, err := Run(s)
		if err != nil {
			t.Fatal(err)
		}
		if s.Clustered() {
			t.Fatal("Replicas: 1 classified as clustered")
		}
		single.Scenario.Replicas = 0
		single.Scenario.Router = ""
		if !reflect.DeepEqual(normalize(legacy), normalize(single)) {
			t.Errorf("workers=%d: single-replica scenario diverged from the legacy path", workers)
		}
	}
}

// TestClusterSkewOrdering pins the load-balance acceptance property end
// to end through the harness: a replicated Memcached sweep under the
// hot-key ETC trace shows higher routed-load skew with consistent
// hashing than with round-robin.
func TestClusterSkewOrdering(t *testing.T) {
	skew := func(router string) float64 {
		s := clusterScenario(2)
		s.Label = "skew-" + router
		s.Router = router
		s.Runs = 2
		res, err := Run(s)
		if err != nil {
			t.Fatal(err)
		}
		var total float64
		for _, rm := range res.Runs {
			if rm.Cluster == nil {
				t.Fatal("missing cluster stats")
			}
			total += rm.Cluster.Skew()
		}
		return total / float64(len(res.Runs))
	}
	rr := skew(cluster.RouterRoundRobin)
	ch := skew(cluster.RouterConsistentHash)
	if rr > 1.05 {
		t.Errorf("round-robin skew %.3f, want ≈1.0", rr)
	}
	if ch <= rr {
		t.Errorf("consistent-hash skew %.3f not above round-robin %.3f", ch, rr)
	}
}

// TestClusterAutoscaleScenario runs the harness with a control loop and
// checks the scale log lands in the metrics.
func TestClusterAutoscaleScenario(t *testing.T) {
	s := detScenario(2)
	s.Label = "cluster-auto"
	s.RateQPS = 700_000
	s.TargetSamples = 8_000
	s.Runs = 2
	auto := cluster.AutoscalerConfig{
		Min: 1, Max: 3,
		Interval:    2 * time.Millisecond,
		ScaleUpAt:   0.55,
		ScaleDownAt: 0.10,
	}
	s.Autoscale = &auto
	s.Replicas = 1
	if !s.Clustered() {
		t.Fatal("autoscaled scenario not classified as clustered")
	}
	res, err := Run(s)
	if err != nil {
		t.Fatal(err)
	}
	for i, rm := range res.Runs {
		if rm.Cluster == nil {
			t.Fatalf("run %d has no cluster stats", i)
		}
		if rm.Cluster.Capacity != 3 {
			t.Errorf("run %d capacity = %d, want 3", i, rm.Cluster.Capacity)
		}
		if len(rm.Cluster.ScaleEvents) == 0 {
			t.Errorf("run %d: autoscaler never scaled at 700K QPS on one replica", i)
		}
	}
}

// TestClusterBackendKeySeparation: clustered and bare scenarios must
// never share an envpool lease.
func TestClusterBackendKeySeparation(t *testing.T) {
	bare := detScenario(1)
	clustered := clusterScenario(1)
	if bare.backendKey() == clustered.backendKey() {
		t.Error("clustered scenario leases with the bare backend key")
	}
	other := clusterScenario(1)
	other.Router = cluster.RouterRoundRobin
	if clustered.backendKey() == other.backendKey() {
		t.Error("different router policies share a lease key")
	}
	if bare.backendKey() != (envpool.Key{Service: "memcached", Server: hw.ServerBaselineConfig()}) {
		t.Error("bare scenario's key changed — legacy leases would be invalidated")
	}
}

// TestClusterValidate covers the new scenario validation paths.
func TestClusterValidate(t *testing.T) {
	s := detScenario(1)
	s.Replicas = -1
	if err := s.Validate(); err == nil {
		t.Error("negative replicas accepted")
	}
	s = detScenario(1)
	s.Router = "bogus"
	if err := s.Validate(); err == nil {
		t.Error("unknown router accepted")
	}
	s = detScenario(1)
	auto := cluster.DefaultAutoscalerConfig(2, 4)
	s.Autoscale = &auto
	s.Replicas = 1 // below Min
	if err := s.Validate(); err == nil {
		t.Error("replicas below autoscaler min accepted")
	}
	s.Replicas = 3
	if err := s.Validate(); err != nil {
		t.Errorf("valid autoscaled scenario rejected: %v", err)
	}
}
