// Package experiment is the repetition harness of the paper's methodology
// (§IV): it runs a scenario — one service, one client configuration, one
// server configuration, one load point — for N independent runs with the
// environment reset in between, and reduces the per-run samples with the
// statistics of §III (non-parametric CIs, normality tests, repetition
// estimators).
package experiment

import (
	"context"
	"fmt"
	"sync"
	"time"

	"repro/internal/cluster"
	"repro/internal/core"
	"repro/internal/envpool"
	"repro/internal/faults"
	"repro/internal/hw"
	"repro/internal/loadgen"
	"repro/internal/metrics"
	"repro/internal/netmodel"
	"repro/internal/rng"
	"repro/internal/sched"
	"repro/internal/services"
	"repro/internal/stats"
	"repro/internal/workload"
)

// Service identifies a benchmark.
type Service string

// The paper's four benchmarks (§IV-B).
const (
	ServiceMemcached Service = "memcached"
	ServiceHDSearch  Service = "hdsearch"
	ServiceSocialNet Service = "socialnet"
	ServiceSynthetic Service = "synthetic"
)

// Scenario is one experimental configuration point.
type Scenario struct {
	Service Service
	// Label names the configuration in tables ("LP-SMToff" etc.).
	Label string
	// Client and Server are the hardware configurations under test.
	Client hw.Config
	Server hw.Config
	// RateQPS is the offered load.
	RateQPS float64
	// Runs is the repetition count (paper: 50; 20 for the synthetic study).
	Runs int
	// TargetSamples is the post-warmup request count to collect per run;
	// it sets the virtual run duration (the paper uses fixed 2-minute
	// runs; we size runs by sample count to keep simulation time
	// proportionate across rates).
	TargetSamples int
	// Duration, when positive, fixes the post-warmup measurement window
	// in virtual time instead of deriving it from TargetSamples — the
	// natural sizing for phase programs, whose shape is a time axis, not
	// a sample count. TargetSamples (or its per-service default scaled by
	// the duration) still steers the sample-mode choice.
	Duration time.Duration
	// Classes is the workload mix: client classes splitting RateQPS by
	// fraction, each with its own arrival process, think time and size
	// distribution. Empty keeps the paper's single-Poisson client.
	Classes []loadgen.ClassConfig
	// Phases is the load program modulating RateQPS over virtual time
	// (baseline → intervention → recovery, diurnal ramps). Empty holds
	// the rate constant.
	Phases []loadgen.PhaseConfig
	// PhasesRepeat loops the phase program for the whole run.
	PhasesRepeat bool
	// SynthDelay is the added busy-wait for the synthetic service.
	SynthDelay time.Duration
	// Point selects where latency is timestamped (default: in-app, the
	// design of every generator the paper studies).
	Point core.MeasurementPoint
	// Seed derives all randomness; same seed ⇒ identical results.
	Seed uint64
	// Workers caps how many repetitions execute concurrently. 0 or 1 runs
	// sequentially; negative selects runtime.GOMAXPROCS(0). Every run
	// draws from its own labeled RNG stream and executes on a private
	// environment (its worker's service + client machines), so the Result
	// is identical for any worker count.
	Workers int
	// SampleMode selects the per-run measurement reduction (package
	// metrics): SampleExact retains every post-warmup sample (the
	// reference behaviour), SampleStreaming reduces online in O(1)
	// memory per run, and SampleAuto — the default — picks streaming
	// when the per-run sample target exceeds StreamingThreshold.
	SampleMode metrics.Mode
	// StreamingThreshold is the per-run sample count above which
	// SampleAuto switches to streaming; 0 selects
	// DefaultStreamingThreshold.
	StreamingThreshold int
	// Replicas runs the backend as a cluster.ReplicaSet of this many
	// identical instances behind Router. 0 or 1 (with no Autoscale)
	// selects the legacy single-backend path, which stays byte-identical
	// to pre-cluster results.
	Replicas int
	// Router is the cluster routing policy (cluster.Router* names;
	// empty = round-robin). Ignored on the single-backend path.
	Router string
	// Autoscale enables the cluster's control loop. The replica capacity
	// is max(Replicas, Autoscale.Max); Replicas (default Autoscale.Min)
	// is the active count at the start of each run.
	Autoscale *cluster.AutoscalerConfig
	// Shards partitions each run's simulation across this many
	// conservatively-synchronized engines (package sim), cutting
	// wall-clock on multi-core hosts while keeping every run
	// byte-identical to the single-engine path (loadgen.Config.Shards).
	// 0 or 1 selects the legacy single-engine run. Sharding composes
	// with Workers: each repetition worker drives its own shard set.
	// Incompatible with Autoscale and with non-consistent-hash routers
	// (stateful routing cannot be decided at send time).
	Shards int
	// Faults is the run's deterministic fault plan: replica crash windows,
	// degraded-replica stragglers, link degradation. Nil or empty injects
	// nothing. Fault plans require a clustered backend (Replicas ≥ 2) —
	// crashing the only backend is a run with no service. Windows are
	// fractions of the run horizon, so one plan scales across rates.
	Faults *faults.Plan
	// Resilience is the client-side fault handling: per-request timeouts,
	// bounded retries with decorrelated-jitter backoff, optional hedging.
	// Nil (or a zero Timeout) keeps the legacy fire-and-forget client,
	// whose hot path stays allocation-free and byte-identical.
	Resilience *loadgen.ResilienceConfig
	// HiccupRate / HiccupMean tune the server tiers' background-
	// interference hiccup model (occurrences per second / mean stall).
	// Zero keeps each tier's built-in default; the fields exist so fault
	// studies can amplify or silence the baseline jitter.
	HiccupRate float64
	HiccupMean time.Duration
}

// Clustered reports whether the scenario runs on the cluster path (a
// ReplicaSet wrapping the backend) rather than the legacy single-backend
// path.
func (s Scenario) Clustered() bool { return s.Replicas > 1 || s.Autoscale != nil }

// DefaultStreamingThreshold is the per-run sample target above which
// SampleAuto selects the streaming reduction. Below it, a run's raw
// slice costs at most a few MB and keeping exact samples (and exact
// quantiles) is the better trade; above it, retained memory would grow
// past what long runs can afford.
const DefaultStreamingThreshold = 200_000

// EffectiveSampleMode resolves SampleAuto against the scenario's sample
// target: the mode the runs will actually use.
func (s Scenario) EffectiveSampleMode() metrics.Mode {
	switch s.SampleMode {
	case metrics.SampleExact, metrics.SampleStreaming:
		return s.SampleMode
	}
	threshold := s.StreamingThreshold
	if threshold <= 0 {
		threshold = DefaultStreamingThreshold
	}
	if s.targetSamples() > threshold {
		return metrics.SampleStreaming
	}
	return metrics.SampleExact
}

// sampleFactory returns the per-run recorder factory for the resolved
// sample mode.
func (s Scenario) sampleFactory() metrics.Factory {
	if s.EffectiveSampleMode() == metrics.SampleStreaming {
		return metrics.StreamingFactory(metrics.StreamingConfig{})
	}
	return metrics.ExactFactory
}

// Validate reports scenario errors.
func (s Scenario) Validate() error {
	switch s.Service {
	case ServiceMemcached, ServiceHDSearch, ServiceSocialNet, ServiceSynthetic:
	default:
		return fmt.Errorf("experiment: unknown service %q", s.Service)
	}
	if s.RateQPS <= 0 {
		return fmt.Errorf("experiment: rate must be positive, got %v", s.RateQPS)
	}
	if s.Runs < 1 {
		return fmt.Errorf("experiment: need ≥1 run, got %d", s.Runs)
	}
	if s.Duration < 0 {
		return fmt.Errorf("experiment: negative duration %v", s.Duration)
	}
	if err := loadgen.ValidateClasses(s.Classes); err != nil {
		return err
	}
	if err := loadgen.ValidatePhases(s.Phases); err != nil {
		return err
	}
	if s.PhasesRepeat && len(s.Phases) == 0 {
		return fmt.Errorf("experiment: phases repeat set without phases")
	}
	if s.Replicas < 0 {
		return fmt.Errorf("experiment: negative replica count %d", s.Replicas)
	}
	if s.Router != "" {
		if _, err := cluster.NewRouter(s.Router); err != nil {
			return err
		}
	}
	if s.Autoscale != nil {
		if err := s.Autoscale.Validate(); err != nil {
			return err
		}
		if s.Replicas != 0 && (s.Replicas < s.Autoscale.Min || s.Replicas > s.Autoscale.Max) {
			return fmt.Errorf("experiment: %d replicas outside autoscaler bounds [%d, %d]",
				s.Replicas, s.Autoscale.Min, s.Autoscale.Max)
		}
	}
	if s.Shards < 0 {
		return fmt.Errorf("experiment: negative shard count %d", s.Shards)
	}
	if s.Shards > 1 {
		if s.Autoscale != nil {
			return fmt.Errorf("experiment: autoscaling cannot run sharded")
		}
		if s.Clustered() {
			router := s.Router
			if router == "" {
				router = cluster.RouterRoundRobin
			}
			if router != cluster.RouterConsistentHash {
				return fmt.Errorf("experiment: router %q cannot run sharded (stateful pick); use %q",
					router, cluster.RouterConsistentHash)
			}
		}
		if p := s.shardPartitions(); s.Shards > p {
			return fmt.Errorf("experiment: %d shards exceed the %d machine+replica partitions", s.Shards, p)
		}
	}
	if s.HiccupRate < 0 {
		return fmt.Errorf("experiment: negative hiccup rate %g", s.HiccupRate)
	}
	if s.HiccupMean < 0 {
		return fmt.Errorf("experiment: negative hiccup mean duration %v", s.HiccupMean)
	}
	if s.Resilience != nil {
		if err := s.Resilience.Validate(); err != nil {
			return err
		}
		if s.Resilience.Hedge > 0 && s.Clustered() {
			router := s.Router
			if router == "" {
				router = cluster.RouterRoundRobin
			}
			if router != cluster.RouterConsistentHash {
				return fmt.Errorf("experiment: hedged requests on a cluster require the %q router (hedges must preview their primary's route)", cluster.RouterConsistentHash)
			}
		}
	}
	if !s.Faults.Empty() {
		capacity, _ := s.clusterShape()
		if err := s.Faults.Validate(capacity); err != nil {
			return err
		}
		if s.Faults.MaxLoss() > 0 && (s.Resilience == nil || !s.Resilience.Enabled()) {
			return fmt.Errorf("experiment: link loss faults require a request timeout (lost requests never complete)")
		}
	}
	return nil
}

// clientMachines mirrors generatorConfig's per-service deployment: the
// client machine count the scenario will run with.
func (s Scenario) clientMachines() int {
	switch s.Service {
	case ServiceHDSearch, ServiceSocialNet:
		return 1
	}
	return 4 // mutilate-style deployments (Memcached, Synthetic)
}

// shardPartitions is the scenario's shard-assignable unit count: client
// machines plus backend replicas (one for a bare backend). Shards above
// it would own no simulation state.
func (s Scenario) shardPartitions() int {
	replicas := 1
	if s.Clustered() {
		_, replicas = s.clusterShape()
	}
	return s.clientMachines() + replicas
}

// clusterShape resolves the replica capacity to build and the active
// count at the start of each run.
func (s Scenario) clusterShape() (capacity, initial int) {
	if s.Autoscale != nil {
		initial = s.Replicas
		if initial == 0 {
			initial = s.Autoscale.Min
		}
		return s.Autoscale.Max, initial
	}
	return s.Replicas, s.Replicas
}

// RunMetrics are one repetition's reduced measurements.
type RunMetrics struct {
	AvgUs      float64
	P99Us      float64
	Samples    int
	SendLagUs  float64 // mean send distortion
	ClientC6   int     // deep wakes on the client
	ServerC1E  int     // C1E wakes on the server
	EnergyProx float64
	// Cluster is the run's replica-set accounting (per-replica routed
	// counts, queue depths, scale events); nil on the single-backend
	// path.
	Cluster *cluster.RunStats
	// Resilience is the run's fault-handling accounting; nil unless the
	// scenario injects faults or enables client resilience, so fault-free
	// results stay byte-identical to the pre-fault harness.
	Resilience *ResilienceMetrics
}

// ResilienceMetrics reduce one run's client-side fault handling.
type ResilienceMetrics struct {
	// Stats are the generator's raw counters (timeouts, retries, hedges,
	// failures, late drops).
	Stats loadgen.ResilienceStats
	// Availability is the fraction of settled requests that succeeded:
	// Succeeded / (Succeeded + Exhausted). 1 when nothing settled.
	Availability float64
	// ErrorRate is 1 − Availability.
	ErrorRate float64
	// RetryAmplification is attempts issued per scheduled request:
	// (Sent + Retries + Hedges) / Sent — the extra load resilience puts
	// on a faulty fleet.
	RetryAmplification float64
	// GoodputQPS is succeeded requests per virtual second over the whole
	// run (warmup included); ThroughputQPS additionally counts error
	// responses and late arrivals — the offered work that produced no
	// useful answer.
	GoodputQPS    float64
	ThroughputQPS float64
}

// reduceResilience derives the run's availability metrics from the raw
// counters.
func reduceResilience(rs loadgen.ResilienceStats, sent int, total time.Duration) *ResilienceMetrics {
	m := &ResilienceMetrics{Stats: rs, Availability: 1}
	if settled := rs.Succeeded + rs.Exhausted; settled > 0 {
		m.Availability = float64(rs.Succeeded) / float64(settled)
	}
	m.ErrorRate = 1 - m.Availability
	m.RetryAmplification = 1
	if sent > 0 {
		m.RetryAmplification = float64(sent+rs.Retries+rs.Hedges) / float64(sent)
	}
	if secs := total.Seconds(); secs > 0 {
		m.GoodputQPS = float64(rs.Succeeded) / secs
		m.ThroughputQPS = float64(rs.Succeeded+rs.Failed+rs.LateDrops) / secs
	}
	return m
}

// Result is the scenario's full outcome.
type Result struct {
	Scenario Scenario
	Runs     []RunMetrics

	// PerRunAvgUs / PerRunP99Us are the per-run reductions — the sample
	// sets the paper's statistics operate on (one sample per run, §III).
	PerRunAvgUs []float64
	PerRunP99Us []float64

	// Medians with non-parametric 95% CIs (Eqs. 1–2), as the paper plots.
	AvgCI stats.Interval
	P99CI stats.Interval

	// StdDevAvgUs is the run-to-run standard deviation of the average
	// response time — Figure 5's metric.
	StdDevAvgUs float64
}

// MedianAvgUs returns the median per-run average latency.
func (r Result) MedianAvgUs() float64 { return stats.Median(r.PerRunAvgUs) }

// MedianP99Us returns the median per-run 99th-percentile latency.
func (r Result) MedianP99Us() float64 { return stats.Median(r.PerRunP99Us) }

// defaultTargetSamples sizes runs per service. With an explicit
// Duration the count is the expected yield of that window — it no
// longer sets the run length, but the sample-mode choice still needs
// it.
func (s Scenario) targetSamples() int {
	if s.TargetSamples > 0 {
		return s.TargetSamples
	}
	if s.Duration > 0 {
		return int(s.RateQPS * s.Duration.Seconds())
	}
	switch s.Service {
	case ServiceMemcached:
		return 20_000
	case ServiceSynthetic:
		return 10_000
	case ServiceHDSearch:
		return 4_000
	case ServiceSocialNet:
		return 2_000
	}
	return 10_000
}

// runTiming derives the warmup and total duration from rate and samples
// (or directly from an explicit Duration).
func (s Scenario) runTiming() (warmup, total time.Duration) {
	measure := s.Duration
	if measure <= 0 {
		measure = time.Duration(float64(s.targetSamples()) / s.RateQPS * float64(time.Second))
	}
	warmup = measure / 10
	if warmup < 30*time.Millisecond {
		warmup = 30 * time.Millisecond
	}
	return warmup, warmup + measure
}

// buildBackend constructs the service under the scenario's server
// config: a bare instance on the legacy path, a cluster.ReplicaSet of
// identical instances on the cluster path. Replicated Memcached is
// near-free to build — every instance forks the one shared preload
// snapshot.
func (s Scenario) buildBackend() (services.Backend, error) {
	if !s.Clustered() {
		return s.buildInstance()
	}
	capacity, initial := s.clusterShape()
	replicas := make([]services.Backend, capacity)
	for i := range replicas {
		b, err := s.buildInstance()
		if err != nil {
			return nil, err
		}
		replicas[i] = b
	}
	router, err := cluster.NewRouter(s.Router)
	if err != nil {
		return nil, err
	}
	rs, err := cluster.New(replicas, initial, router, s.Autoscale)
	if err != nil {
		return nil, err
	}
	rs.InstallFaults(s.Faults)
	return rs, nil
}

// buildInstance constructs one backend instance.
func (s Scenario) buildInstance() (services.Backend, error) {
	switch s.Service {
	case ServiceMemcached:
		cfg := services.DefaultMemcachedConfig()
		cfg.ServerHW = s.Server
		cfg.HiccupRate, cfg.HiccupMean = s.HiccupRate, s.HiccupMean
		return services.NewMemcached(cfg)
	case ServiceHDSearch:
		cfg := services.DefaultHDSearchConfig()
		cfg.ServerHW = s.Server
		cfg.HiccupRate, cfg.HiccupMean = s.HiccupRate, s.HiccupMean
		return services.NewHDSearch(cfg)
	case ServiceSocialNet:
		cfg := services.DefaultSocialNetConfig()
		cfg.ServerHW = s.Server
		cfg.HiccupRate, cfg.HiccupMean = s.HiccupRate, s.HiccupMean
		return services.NewSocialNet(cfg)
	case ServiceSynthetic:
		cfg := services.DefaultSyntheticConfig()
		cfg.ServerHW = s.Server
		cfg.Delay = s.SynthDelay
		cfg.HiccupRate, cfg.HiccupMean = s.HiccupRate, s.HiccupMean
		return services.NewSynthetic(cfg)
	}
	return nil, fmt.Errorf("experiment: unknown service %q", s.Service)
}

// generatorConfig assembles the paper's per-service client deployment.
// A clustered backend contributes its primary replica's workload
// accessors — replicas are identical by construction.
func (s Scenario) generatorConfig(backend services.Backend, warmup time.Duration) loadgen.Config {
	if rs, ok := backend.(*cluster.ReplicaSet); ok {
		backend = rs.Primary()
	}
	cfg := loadgen.Config{
		RateQPS:      s.RateQPS,
		ClientHW:     s.Client,
		Warmup:       warmup,
		Net:          netmodel.DefaultConfig(),
		Point:        s.Point,
		Recorders:    s.sampleFactory(),
		Classes:      s.Classes,
		Phases:       s.Phases,
		PhasesRepeat: s.PhasesRepeat,
		Shards:       s.Shards,
	}
	if s.Resilience != nil {
		cfg.Resilience = *s.Resilience
	}
	if s.Faults.HasLink() {
		cfg.LinkFaults = s.Faults.Link
	}
	switch b := backend.(type) {
	case *services.Memcached:
		// Mutilate: 4 client machines, 160 connections, block-wait
		// time-sensitive pacing (§IV-B).
		cfg.Machines = 4
		cfg.ThreadsPerMachine = 1
		cfg.ConnsPerThread = 40
		cfg.TimeSensitive = true
		etcCfg := b.ETCConfig()
		cfg.Payloads = func(stream *rng.Stream) loadgen.PayloadSource {
			etc, err := workload.NewETC(etcCfg, stream)
			if err != nil {
				panic(err) // validated config cannot fail
			}
			return etcSource{etc}
		}
	case *services.HDSearch:
		// MicroSuite client: one machine, busy-wait time-insensitive
		// pacing with Poisson arrivals (§IV-B).
		cfg.Machines = 1
		cfg.ThreadsPerMachine = 2
		cfg.ConnsPerThread = 8
		cfg.TimeSensitive = false
		cfg.Payloads = func(stream *rng.Stream) loadgen.PayloadSource {
			return querySource{h: b, stream: stream}
		}
	case *services.SocialNet:
		// wrk2: one machine, 20 connections, block-wait exponential
		// pacing, read-user-timeline only (§IV-B).
		cfg.Machines = 1
		cfg.ThreadsPerMachine = 2
		cfg.ConnsPerThread = 10
		cfg.TimeSensitive = true
		cfg.Payloads = func(stream *rng.Stream) loadgen.PayloadSource {
			return userSource{s: b, stream: stream}
		}
	case *services.Synthetic:
		// Same mutilate-style deployment as Memcached.
		cfg.Machines = 4
		cfg.ThreadsPerMachine = 1
		cfg.ConnsPerThread = 40
		cfg.TimeSensitive = true
		cfg.Payloads = func(stream *rng.Stream) loadgen.PayloadSource {
			return fixedSource{bytes: 64}
		}
	}
	return cfg
}

// Payload adapters.

type etcSource struct{ etc *workload.ETC }

func (s etcSource) Next() (any, int) {
	req, size := s.NextKV()
	return req, size
}

// NextKV implements loadgen.KVPayloadSource: the same draw as Next with
// the body returned by value, so the generator stores it inline in the
// pooled request — with the interned key table this makes issuing a
// Memcached request allocation-free.
func (s etcSource) NextKV() (workload.KVRequest, int) {
	req := s.etc.Next()
	size := 40 + len(req.Key)
	if req.Op == workload.OpSet {
		size += req.ValueSize
	}
	return req, size
}

type querySource struct {
	h      *services.HDSearch
	stream *rng.Stream
}

func (s querySource) Next() (any, int) {
	q := s.h.NewQuery(s.stream)
	return q, len(q) * 8
}

type userSource struct {
	s      *services.SocialNet
	stream *rng.Stream
}

func (s userSource) Next() (any, int) {
	return s.s.RandomUser(s.stream), 180
}

type fixedSource struct{ bytes int }

func (s fixedSource) Next() (any, int) { return struct{}{}, s.bytes }

// Run executes the scenario: Runs independent repetitions, each on a fresh
// environment, reduced per the paper's statistics. Repetitions are
// dispatched through the sched worker pool (Scenario.Workers wide); each
// worker owns a private backend and generator, and every repetition's
// randomness comes from its own labeled stream, so the Result is
// byte-identical whether the runs execute sequentially or in parallel.
func Run(s Scenario) (Result, error) { return RunContext(context.Background(), s) }

// backendKey is the scenario's envpool leasing key: everything a backend
// is built from, nothing it is blind to.
func (s Scenario) backendKey() envpool.Key {
	key := envpool.Key{
		Service: string(s.Service), Server: s.Server, SynthDelay: s.SynthDelay,
		Faults: s.Faults.Fingerprint(), HiccupRate: s.HiccupRate, HiccupMean: s.HiccupMean,
	}
	if s.Clustered() {
		capacity, initial := s.clusterShape()
		router := s.Router
		if router == "" {
			router = cluster.RouterRoundRobin
		}
		key.Cluster = fmt.Sprintf("%d/%d/%s", capacity, initial, router)
		if s.Autoscale != nil {
			key.Cluster += fmt.Sprintf("/auto:%+v", *s.Autoscale)
		}
	}
	return key
}

// RunContext is Run under a context. Cancellation stops the repetitions
// promptly; in addition, envpool resources carried by the context are
// honoured:
//
//   - A worker budget (sched.WithBudget) caps how many repetitions
//     actually execute at once, shared with every other pool under the
//     same budget — nested sweep×scenario fan-out stays within one
//     global "-parallel N" bound. With Workers == 0 under a budget the
//     scenario inherits the budget's width instead of running
//     sequentially (the budget already bounds real concurrency).
//   - A backend pool (envpool.WithPool) supplies the workers' backends:
//     idle instances with this scenario's key are leased instead of
//     rebuilt, and every lease is returned when the scenario finishes.
//
// Neither resource affects the Result — leased backends are fully reset
// per run and the budget only schedules — so the byte-identical
// guarantee is unchanged.
func RunContext(ctx context.Context, s Scenario) (Result, error) {
	if err := s.Validate(); err != nil {
		return Result{}, err
	}
	warmup, total := s.runTiming()

	backends := envpool.From(ctx)
	key := s.backendKey()
	type machineLease struct {
		key      envpool.MachineKey
		machines []*hw.Machine
	}
	var (
		leaseMu        sync.Mutex
		leased         []services.Backend
		leasedMachines []machineLease
	)
	defer func() {
		if backends == nil {
			return
		}
		leaseMu.Lock()
		defer leaseMu.Unlock()
		for _, b := range leased {
			backends.Release(key, b)
		}
		for _, ml := range leasedMachines {
			backends.ReleaseMachines(ml.key, ml.machines)
		}
	}()

	// Each worker owns one generator for all the repetitions it executes,
	// so the generator's persistent simulation engine and request free
	// list are reused run over run: after the worker's first repetition,
	// steady-state simulation allocates nothing. Reuse is invisible to
	// results (the engine resets fully; pooled requests are zeroed), which
	// the byte-identical-for-every-worker-count tests pin.
	newWorker := func(int) (*loadgen.Generator, error) {
		var backend services.Backend
		var err error
		if backends != nil {
			backend, err = backends.Lease(key, s.buildBackend)
		} else {
			backend, err = s.buildBackend()
		}
		if err != nil {
			return nil, err
		}
		if backends != nil {
			leaseMu.Lock()
			leased = append(leased, backend)
			leaseMu.Unlock()
		}
		genCfg := s.generatorConfig(backend, warmup)
		if backends == nil {
			return loadgen.New(genCfg, backend)
		}
		// Lease the worker's client machines alongside its backend:
		// scenarios sharing a client configuration reuse machine sets
		// instead of rebuilding them per sweep cell. Machines are fully
		// reset per run, so reuse never changes results.
		count, cores := genCfg.MachineSpec()
		mkey := envpool.MachineKey{Client: genCfg.ClientHW, Machines: count, Cores: cores}
		machines, err := backends.LeaseMachines(mkey, func() ([]*hw.Machine, error) {
			return loadgen.BuildMachines(genCfg)
		})
		if err != nil {
			return nil, err
		}
		leaseMu.Lock()
		leasedMachines = append(leasedMachines, machineLease{key: mkey, machines: machines})
		leaseMu.Unlock()
		return loadgen.NewWithMachines(genCfg, backend, machines)
	}

	workers := sched.Resolve(s.Workers)
	if b := sched.BudgetFrom(ctx); b != nil && s.Workers == 0 {
		workers = b.Capacity()
		if s.Shards > 1 {
			// A sharded repetition runs Shards engine goroutines, not
			// one, so an inherited budget width is divided by the shard
			// count to keep "-parallel N" an honest bound on live
			// simulation goroutines.
			if workers = workers / s.Shards; workers < 1 {
				workers = 1
			}
		}
	}
	pool := sched.Pool{Workers: workers}
	runs, err := sched.MapWorkers(ctx, pool, s.Runs, newWorker,
		func(_ context.Context, gen *loadgen.Generator, run int) (RunMetrics, error) {
			stream := rng.NewLabeled(s.Seed, fmt.Sprintf("%s/%s/%.0f/run%d", s.Service, s.Label, s.RateQPS, run))
			rr, err := gen.RunOnce(stream, total)
			if err != nil {
				return RunMetrics{}, fmt.Errorf("experiment: run %d: %w", run, err)
			}
			if rr.Latency.N == 0 {
				return RunMetrics{}, fmt.Errorf("experiment: run %d collected no samples", run)
			}
			m := RunMetrics{
				AvgUs:      rr.Latency.Mean,
				P99Us:      rr.Latency.P99,
				Samples:    rr.Latency.N,
				SendLagUs:  rr.SendLag.Mean,
				ClientC6:   rr.ClientWakes["C6"],
				ServerC1E:  rr.ServerWakes["C1E"],
				EnergyProx: rr.ClientEnergyProxy,
			}
			if rs, ok := gen.Backend().(*cluster.ReplicaSet); ok {
				st := rs.Stats()
				m.Cluster = &st
			}
			if !s.Faults.Empty() || (s.Resilience != nil && s.Resilience.Enabled()) {
				m.Resilience = reduceResilience(rr.Resilience, rr.Sent, total)
			}
			return m, nil
		}, nil)
	if err != nil {
		// Run errors already carry their index.
		return Result{}, sched.Unwrap(err)
	}

	res := Result{Scenario: s, Runs: runs}
	for _, rm := range runs {
		res.PerRunAvgUs = append(res.PerRunAvgUs, rm.AvgUs)
		res.PerRunP99Us = append(res.PerRunP99Us, rm.P99Us)
	}

	res.StdDevAvgUs = stats.StdDev(res.PerRunAvgUs)
	if iv, err := stats.NonParametricCI(res.PerRunAvgUs, 0.95); err == nil {
		res.AvgCI = iv
	} else {
		res.AvgCI = stats.Interval{Point: stats.Median(res.PerRunAvgUs), Lower: stats.Min(res.PerRunAvgUs), Upper: stats.Max(res.PerRunAvgUs), Confidence: 0.95}
	}
	if iv, err := stats.NonParametricCI(res.PerRunP99Us, 0.95); err == nil {
		res.P99CI = iv
	} else {
		res.P99CI = stats.Interval{Point: stats.Median(res.PerRunP99Us), Lower: stats.Min(res.PerRunP99Us), Upper: stats.Max(res.PerRunP99Us), Confidence: 0.95}
	}
	return res, nil
}

// ClientConfigs returns the paper's two client configurations (Table II).
func ClientConfigs() map[string]hw.Config {
	return map[string]hw.Config{"LP": hw.LPConfig(), "HP": hw.HPConfig()}
}

// ServerVariant derives the server configuration for a feature study.
type ServerVariant struct {
	Name string
	Cfg  hw.Config
}

// SMTVariants returns the Fig. 2 server configurations.
func SMTVariants() []ServerVariant {
	return []ServerVariant{
		{Name: "SMToff", Cfg: hw.ServerBaselineConfig()},
		{Name: "SMTon", Cfg: hw.ServerBaselineConfig().WithSMT(true)},
	}
}

// C1EVariants returns the Fig. 3 server configurations: the baseline
// (C-states up to C1) versus C1E enabled.
func C1EVariants() []ServerVariant {
	return []ServerVariant{
		{Name: "C1Eoff", Cfg: hw.ServerBaselineConfig()},
		{Name: "C1Eon", Cfg: hw.ServerBaselineConfig().WithMaxCState("C1E")},
	}
}

// MemcachedRates is the paper's Memcached load sweep (10 K–500 K QPS).
func MemcachedRates() []float64 {
	return []float64{10_000, 50_000, 100_000, 200_000, 300_000, 400_000, 500_000}
}

// HDSearchRates is the paper's HDSearch load sweep (500–2500 QPS).
func HDSearchRates() []float64 { return []float64{500, 1000, 1500, 2000, 2500} }

// SocialNetRates is the paper's Social Network load sweep (100–600 QPS).
func SocialNetRates() []float64 { return []float64{100, 200, 300, 400, 500, 600} }

// SyntheticDelays is the paper's added-delay sweep (0–400 µs).
func SyntheticDelays() []time.Duration {
	return []time.Duration{0, 100 * time.Microsecond, 200 * time.Microsecond, 300 * time.Microsecond, 400 * time.Microsecond}
}

// SyntheticRates is the paper's synthetic QPS sweep (5 K–20 K), chosen via
// Little's law to keep concurrency under the worker count (§V-B).
func SyntheticRates() []float64 { return []float64{5_000, 10_000, 15_000, 20_000} }
