package experiment

import (
	"testing"
	"time"

	"repro/internal/hw"
)

func runQuick(t *testing.T, s Scenario) Result {
	t.Helper()
	if s.Runs == 0 {
		s.Runs = 3
	}
	if s.TargetSamples == 0 {
		s.TargetSamples = 2000
	}
	if s.Label == "" {
		s.Label = "test"
	}
	if s.Client.Name == "" {
		s.Client = hw.HPConfig()
	}
	if s.Server.Name == "" {
		s.Server = hw.ServerBaselineConfig()
	}
	res, err := Run(s)
	if err != nil {
		t.Fatal(err)
	}
	return res
}

func TestScenarioValidation(t *testing.T) {
	if err := (Scenario{Service: "bogus", RateQPS: 1, Runs: 1}).Validate(); err == nil {
		t.Error("bogus service accepted")
	}
	if err := (Scenario{Service: ServiceMemcached, RateQPS: 0, Runs: 1}).Validate(); err == nil {
		t.Error("zero rate accepted")
	}
	if err := (Scenario{Service: ServiceMemcached, RateQPS: 1, Runs: 0}).Validate(); err == nil {
		t.Error("zero runs accepted")
	}
}

func TestMemcachedLatencyBand(t *testing.T) {
	res := runQuick(t, Scenario{Service: ServiceMemcached, RateQPS: 100_000, Seed: 1})
	avg := res.MedianAvgUs()
	if avg < 15 || avg > 120 {
		t.Errorf("memcached HP avg = %.1fµs, want tens of µs", avg)
	}
	if res.MedianP99Us() <= avg {
		t.Error("p99 not above avg")
	}
	if len(res.PerRunAvgUs) != 3 {
		t.Errorf("runs = %d, want 3", len(res.PerRunAvgUs))
	}
}

func TestHDSearchLatencyBand(t *testing.T) {
	res := runQuick(t, Scenario{Service: ServiceHDSearch, RateQPS: 1000, TargetSamples: 800, Seed: 2})
	avg := res.MedianAvgUs()
	// The paper's HDSearch runs at several hundred µs to ~2 ms.
	if avg < 300 || avg > 3000 {
		t.Errorf("hdsearch avg = %.1fµs, want ≈400–2000µs", avg)
	}
}

func TestSocialNetLatencyBand(t *testing.T) {
	res := runQuick(t, Scenario{Service: ServiceSocialNet, RateQPS: 300, TargetSamples: 400, Seed: 3})
	avg := res.MedianAvgUs()
	// The paper's Social Network averages ≈2–4 ms.
	if avg < 1500 || avg > 6000 {
		t.Errorf("socialnet avg = %.1fµs, want ≈2000–4000µs", avg)
	}
}

func TestSyntheticDelayShiftsLatency(t *testing.T) {
	base := runQuick(t, Scenario{Service: ServiceSynthetic, RateQPS: 5000, TargetSamples: 1500, Seed: 4})
	delayed := runQuick(t, Scenario{Service: ServiceSynthetic, RateQPS: 5000, TargetSamples: 1500, Seed: 4,
		SynthDelay: 200 * time.Microsecond})
	diff := delayed.MedianAvgUs() - base.MedianAvgUs()
	// At low QPS with no queueing, latency grows linearly with the added
	// delay — the paper's validity check for the synthetic service (§V-B).
	if diff < 180 || diff > 260 {
		t.Errorf("added 200µs delay moved avg by %.1fµs, want ≈200µs", diff)
	}
}

func TestDeterministicResults(t *testing.T) {
	s := Scenario{Service: ServiceSynthetic, RateQPS: 5000, TargetSamples: 800, Seed: 42, Runs: 2,
		Label: "det", Client: hw.HPConfig(), Server: hw.ServerBaselineConfig()}
	a, err := Run(s)
	if err != nil {
		t.Fatal(err)
	}
	b, err := Run(s)
	if err != nil {
		t.Fatal(err)
	}
	for i := range a.PerRunAvgUs {
		if a.PerRunAvgUs[i] != b.PerRunAvgUs[i] {
			t.Fatalf("run %d: %v != %v (not reproducible)", i, a.PerRunAvgUs[i], b.PerRunAvgUs[i])
		}
	}
}

func TestRunsAreIndependentButDiffer(t *testing.T) {
	res := runQuick(t, Scenario{Service: ServiceMemcached, RateQPS: 100_000, Seed: 5, Runs: 4})
	seen := map[float64]bool{}
	for _, v := range res.PerRunAvgUs {
		seen[v] = true
	}
	if len(seen) < 4 {
		t.Errorf("per-run averages collided: %v", res.PerRunAvgUs)
	}
}

func TestLPAboveHPForMemcached(t *testing.T) {
	lp := runQuick(t, Scenario{Service: ServiceMemcached, RateQPS: 100_000, Seed: 6, Client: hw.LPConfig(), Label: "LP"})
	hp := runQuick(t, Scenario{Service: ServiceMemcached, RateQPS: 100_000, Seed: 6, Client: hw.HPConfig(), Label: "HP"})
	if lp.MedianAvgUs() <= hp.MedianAvgUs() {
		t.Errorf("LP avg %.1f not above HP avg %.1f (Finding 1)", lp.MedianAvgUs(), hp.MedianAvgUs())
	}
	if lp.MedianP99Us() <= hp.MedianP99Us() {
		t.Errorf("LP p99 %.1f not above HP p99 %.1f (Finding 1)", lp.MedianP99Us(), hp.MedianP99Us())
	}
}

func TestSweepHelpers(t *testing.T) {
	if len(MemcachedRates()) != 7 {
		t.Error("memcached sweep should have 7 load points (paper)")
	}
	if len(HDSearchRates()) != 5 || len(SocialNetRates()) != 6 {
		t.Error("sweep sizes wrong")
	}
	if len(SyntheticDelays()) != 5 || len(SyntheticRates()) != 4 {
		t.Error("synthetic sweep sizes wrong")
	}
	if len(SMTVariants()) != 2 || len(C1EVariants()) != 2 {
		t.Error("variant helpers wrong")
	}
	if !C1EVariants()[1].Cfg.SMT == false && C1EVariants()[1].Cfg.MaxCState != "C1E" {
		t.Error("C1E variant misconfigured")
	}
	cc := ClientConfigs()
	if cc["LP"].Governor != hw.GovernorPowersave || cc["HP"].Governor != hw.GovernorPerformance {
		t.Error("client configs wrong")
	}
}
