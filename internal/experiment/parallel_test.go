package experiment

import (
	"reflect"
	"testing"

	"repro/internal/hw"
)

// detScenario is a scenario small enough for short-mode -race runs but
// with enough repetitions that parallel workers genuinely interleave.
func detScenario(workers int) Scenario {
	return Scenario{
		Service:       ServiceMemcached,
		Label:         "par-det",
		Client:        hw.LPConfig(),
		Server:        hw.ServerBaselineConfig(),
		RateQPS:       100_000,
		Runs:          6,
		TargetSamples: 1_500,
		Seed:          7,
		Workers:       workers,
	}
}

// normalize strips the one field that legitimately differs between the
// sequential and parallel invocation of the same scenario.
func normalize(r Result) Result {
	r.Scenario.Workers = 0
	return r
}

// TestParallelRunByteIdentical is the scheduler's core regression test:
// the full Result — every per-run metric, not just the medians — must be
// identical whether the repetitions run on one worker or several, and
// repeated parallel executions must agree with each other.
func TestParallelRunByteIdentical(t *testing.T) {
	seq, err := Run(detScenario(1))
	if err != nil {
		t.Fatal(err)
	}
	par, err := Run(detScenario(4))
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(normalize(seq), normalize(par)) {
		t.Errorf("parallel Result differs from sequential:\nseq: %+v\npar: %+v", seq.Runs, par.Runs)
	}

	par2, err := Run(detScenario(4))
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(par, par2) {
		t.Error("two parallel executions of the same scenario differ")
	}
}

// TestParallelRunByteIdenticalAllServices pins the guarantee on every
// backend, since run isolation depends on each service's ResetRun being
// complete (Memcached in particular must restore its store).
func TestParallelRunByteIdenticalAllServices(t *testing.T) {
	if testing.Short() {
		t.Skip("memcached covered by TestParallelRunByteIdentical")
	}
	cases := []Scenario{
		{Service: ServiceHDSearch, RateQPS: 1_000, TargetSamples: 400},
		{Service: ServiceSocialNet, RateQPS: 300, TargetSamples: 200},
		{Service: ServiceSynthetic, RateQPS: 5_000, TargetSamples: 800},
	}
	for _, s := range cases {
		s.Label = "par-" + string(s.Service)
		s.Client = hw.LPConfig()
		s.Server = hw.ServerBaselineConfig()
		s.Runs = 4
		s.Seed = 11
		t.Run(string(s.Service), func(t *testing.T) {
			s.Workers = 1
			seq, err := Run(s)
			if err != nil {
				t.Fatal(err)
			}
			s.Workers = 4
			par, err := Run(s)
			if err != nil {
				t.Fatal(err)
			}
			if !reflect.DeepEqual(normalize(seq), normalize(par)) {
				t.Errorf("%s: parallel Result differs from sequential", s.Service)
			}
		})
	}
}

// TestParallelRunErrorDeterministic verifies error propagation picks the
// lowest failing run regardless of worker count. Runs=0 is caught by
// Validate, so force a runtime failure instead: a synthetic scenario with
// so few samples that no run collects anything after warmup cannot be
// built deterministically here, so exercise the Validate path plus the
// worker-init path.
func TestParallelRunErrorDeterministic(t *testing.T) {
	s := detScenario(4)
	s.Service = "bogus"
	if _, err := Run(s); err == nil {
		t.Error("invalid service not rejected")
	}

	s = detScenario(4)
	s.Client = hw.Config{} // invalid hardware config fails generator construction
	_, errPar := Run(s)
	s.Workers = 1
	_, errSeq := Run(s)
	if errPar == nil || errSeq == nil {
		t.Fatalf("invalid client accepted: par=%v seq=%v", errPar, errSeq)
	}
	if errPar.Error() != errSeq.Error() {
		t.Errorf("parallel error %q differs from sequential %q", errPar, errSeq)
	}
}
