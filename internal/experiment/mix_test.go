package experiment

import (
	"reflect"
	"testing"
	"time"

	"repro/internal/hw"
	"repro/internal/loadgen"
	"repro/internal/metrics"
	"repro/internal/workload"
)

// TestScenarioMixAndDuration runs a spec-shaped scenario — explicit
// duration, two classes, a phase program — end to end through the
// harness and pins that it is deterministic across worker counts like
// every other scenario.
func TestScenarioMixAndDuration(t *testing.T) {
	s := Scenario{
		Service:  ServiceSynthetic,
		Label:    "mix",
		Client:   hw.HPConfig(),
		Server:   hw.ServerBaselineConfig(),
		RateQPS:  20_000,
		Runs:     3,
		Duration: 150 * time.Millisecond,
		Seed:     9,
		Classes: []loadgen.ClassConfig{
			{Name: "fg", Fraction: 0.7, Arrival: workload.ArrivalConfig{Process: workload.ArrivalGamma, CV: 2}},
			{Name: "bg", Fraction: 0.3, Arrival: workload.ArrivalConfig{Process: workload.ArrivalOnOff, OnMean: 10 * time.Millisecond, OffMean: 30 * time.Millisecond}},
		},
		Phases: []loadgen.PhaseConfig{
			{Name: "baseline", Duration: 60 * time.Millisecond, RateScale: 1},
			{Name: "spike", Duration: 30 * time.Millisecond, RateScale: 2},
			{Name: "recovery", Duration: 60 * time.Millisecond, RateScale: 1},
		},
	}
	seq, err := Run(s)
	if err != nil {
		t.Fatal(err)
	}
	par := s
	par.Workers = 3
	pres, err := Run(par)
	if err != nil {
		t.Fatal(err)
	}
	pres.Scenario = seq.Scenario // only Workers differs
	if !reflect.DeepEqual(seq, pres) {
		t.Fatal("mix scenario results differ across worker counts")
	}
	if n := seq.Runs[0].Samples; n < 1000 {
		t.Errorf("mix run collected %d samples, want a duration-sized count", n)
	}
}

// TestScenarioDurationSizesRun pins that Duration overrides the
// sample-count-derived window and still feeds the sample-mode choice.
func TestScenarioDurationSizesRun(t *testing.T) {
	s := Scenario{Service: ServiceSynthetic, RateQPS: 10_000, Runs: 1, Duration: 2 * time.Second}
	warmup, total := s.runTiming()
	if got := total - warmup; got != 2*time.Second {
		t.Errorf("measure window %v, want 2s", got)
	}
	if got := s.targetSamples(); got != 20_000 {
		t.Errorf("estimated samples %d, want 20000 (rate × duration)", got)
	}
	// A long duration at high rate must flip SampleAuto to streaming.
	long := Scenario{Service: ServiceSynthetic, RateQPS: 1_000_000, Runs: 1, Duration: time.Second}
	if long.EffectiveSampleMode() != metrics.SampleStreaming {
		t.Errorf("1M QPS × 1s did not select streaming reduction")
	}
}

// TestScenarioMixValidation covers the scenario-level fail-fast table.
func TestScenarioMixValidation(t *testing.T) {
	base := Scenario{Service: ServiceSynthetic, RateQPS: 1000, Runs: 1}
	cases := []func(*Scenario){
		func(s *Scenario) { s.Duration = -time.Second },
		func(s *Scenario) { s.Classes = []loadgen.ClassConfig{{Name: "half", Fraction: 0.5}} },
		func(s *Scenario) {
			s.Classes = []loadgen.ClassConfig{{Name: "bad", Fraction: 1, Arrival: workload.ArrivalConfig{Process: "bogus"}}}
		},
		func(s *Scenario) { s.Phases = []loadgen.PhaseConfig{{Name: "z", Duration: 0, RateScale: 1}} },
		func(s *Scenario) { s.PhasesRepeat = true },
	}
	for i, mutate := range cases {
		s := base
		mutate(&s)
		if err := s.Validate(); err == nil {
			t.Errorf("case %d: scenario validated, want error", i)
		}
	}
	if err := base.Validate(); err != nil {
		t.Errorf("base scenario rejected: %v", err)
	}
}
