package services

import (
	"fmt"
	"time"

	"repro/internal/hw"
	"repro/internal/netmodel"
	"repro/internal/rng"
	"repro/internal/sim"
	"repro/internal/socialgraph"
)

// Social Network cost-model constants, calibrated for the paper's ≈2–3 ms
// average end-to-end latency (Fig. 6b). The storage stage has a heavy
// lognormal tail, which dominates the ≈10–20 ms 99th percentile (Fig. 6c).
const (
	snNginxCost     = 50 * time.Microsecond
	snNginxReply    = 25 * time.Microsecond
	snTimelineBase  = 120 * time.Microsecond
	snTimelinePerPC = 5 * time.Microsecond // per post materialized
	snStorageBase   = 1600 * time.Microsecond
	snCacheCost     = 200 * time.Microsecond
	snSigma         = 0.18
	snStorageSigma  = 0.45
)

// SocialNet models the DeathStarBench Social Network application (§IV-B):
// a chain of services (front-end → user-timeline → storage → cache) all
// deployed on a single node under Docker Swarm, communicating over the
// container bridge. Timeline reads execute against a real social graph
// seeded like the paper's Reed98 dataset.
type SocialNet struct {
	machine  *hw.Machine
	nginx    *Tier
	timeline *Tier
	storage  *Tier
	cache    *Tier
	graph    *socialgraph.Graph
	bridge   *netmodel.Link
	userGen  *rng.Stream
	readLim  int
}

// SocialNetConfig configures the deployment.
type SocialNetConfig struct {
	ServerHW     hw.Config
	SeedPosts    int // posts per user composed before each experiment
	TimelineRead int // posts returned by read-user-timeline
	GraphSeed    uint64
}

// DefaultSocialNetConfig mirrors the paper's single-node deployment.
func DefaultSocialNetConfig() SocialNetConfig {
	return SocialNetConfig{ServerHW: hw.ServerBaselineConfig(), SeedPosts: 20, TimelineRead: 10, GraphSeed: 42}
}

// NewSocialNet builds the deployment: one 20-core node (the paper's
// c220g5 socket pair) partitioned among the four service containers.
func NewSocialNet(cfg SocialNetConfig) (*SocialNet, error) {
	if cfg.SeedPosts < 0 || cfg.TimelineRead < 1 {
		return nil, fmt.Errorf("services: invalid socialnet config %+v", cfg)
	}
	machine, err := hw.NewMachine("socialnet-node", 20, cfg.ServerHW)
	if err != nil {
		return nil, err
	}
	mk := func(name string, cores []int) (*Tier, error) {
		return NewTier(TierConfig{Name: name, Machine: machine, Cores: cores, Hiccups: true, Contention: 0.03})
	}
	nginx, err := mk("nginx", []int{0, 1, 2, 3})
	if err != nil {
		return nil, err
	}
	timeline, err := mk("user-timeline", []int{4, 5, 6, 7})
	if err != nil {
		return nil, err
	}
	storage, err := mk("post-storage", []int{8, 9, 10, 11, 12, 13})
	if err != nil {
		return nil, err
	}
	cache, err := mk("timeline-cache", []int{14, 15, 16, 17})
	if err != nil {
		return nil, err
	}
	graph, err := socialgraph.GenerateReed98Like(cfg.GraphSeed)
	if err != nil {
		return nil, err
	}
	if err := graph.SeedPosts(cfg.SeedPosts, rng.NewLabeled(cfg.GraphSeed, "socialnet-seed"), 0); err != nil {
		return nil, err
	}
	return &SocialNet{
		machine:  machine,
		nginx:    nginx,
		timeline: timeline,
		storage:  storage,
		cache:    cache,
		graph:    graph,
		readLim:  cfg.TimelineRead,
	}, nil
}

// Name implements Backend.
func (s *SocialNet) Name() string { return "socialnet" }

// Machines implements Backend.
func (s *SocialNet) Machines() []*hw.Machine { return []*hw.Machine{s.machine} }

// MeanServiceTime implements Backend (storage dominates).
func (s *SocialNet) MeanServiceTime() float64 { return snStorageBase.Seconds() }

// Graph exposes the social graph for examples and diagnostics.
func (s *SocialNet) Graph() *socialgraph.Graph { return s.graph }

// RandomUser draws a user ID for request generation.
func (s *SocialNet) RandomUser(stream *rng.Stream) socialgraph.UserID {
	return socialgraph.UserID(stream.Intn(s.graph.NumUsers()))
}

// ResetRun implements Backend.
func (s *SocialNet) ResetRun(engine *sim.Engine, stream *rng.Stream) {
	s.nginx.ResetRun(engine, stream.Split())
	s.timeline.ResetRun(engine, stream.Split())
	s.storage.ResetRun(engine, stream.Split())
	s.cache.ResetRun(engine, stream.Split())
	s.bridge = netmodel.Loopback(stream.Split())
	s.userGen = stream.Split()
}

// StartRun implements Backend.
func (s *SocialNet) StartRun(end sim.Time) {
	s.nginx.StartRun(end)
	s.timeline.StartRun(end)
	s.storage.StartRun(end)
	s.cache.StartRun(end)
}

// Arrive implements Backend: a read-user-timeline request flows
// nginx → user-timeline → post-storage → timeline-cache → nginx reply.
// The payload must be a socialgraph.UserID.
func (s *SocialNet) Arrive(req *Request, now sim.Time) {
	user, ok := req.Payload.(socialgraph.UserID)
	if !ok {
		panic(fmt.Sprintf("services: socialnet got payload %T", req.Payload))
	}
	req.ServerArrive = now

	cost := time.Duration(float64(snNginxCost)*s.nginx.Noise(snSigma)) + s.nginx.StackCost()
	s.nginx.Submit(now, cost, func(done sim.Time) {
		s.hop(done, s.timeline, func(now sim.Time) {
			posts, err := s.graph.ReadUserTimeline(user, s.readLim)
			if err != nil {
				panic(fmt.Sprintf("services: socialnet timeline read failed: %v", err))
			}
			tlCost := snTimelineBase + time.Duration(len(posts))*snTimelinePerPC
			tlCost = time.Duration(float64(tlCost)*s.timeline.Noise(snSigma)) + s.timeline.StackCost()
			s.timeline.Submit(now, tlCost, func(done sim.Time) {
				s.hop(done, s.storage, func(now sim.Time) {
					stCost := time.Duration(float64(snStorageBase)*s.storage.Noise(snStorageSigma)) + s.storage.StackCost()
					s.storage.Submit(now, stCost, func(done sim.Time) {
						s.hop(done, s.cache, func(now sim.Time) {
							cCost := time.Duration(float64(snCacheCost)*s.cache.Noise(snSigma)) + s.cache.StackCost()
							s.cache.Submit(now, cCost, func(done sim.Time) {
								s.hop(done, s.nginx, func(now sim.Time) {
									rCost := time.Duration(float64(snNginxReply)*s.nginx.Noise(snSigma)) + s.nginx.StackCost()
									s.nginx.Submit(now, rCost, func(end sim.Time) {
										req.ResponseBytes = 256 + len(posts)*200
										req.complete(end)
									})
								})
							})
						})
					})
				})
			})
		})
	})
}

// hop schedules the continuation after a container-bridge crossing.
func (s *SocialNet) hop(from sim.Time, to *Tier, fn func(now sim.Time)) {
	at := from.Add(s.bridge.Delay(256))
	to.engine.At(at, fn)
}
