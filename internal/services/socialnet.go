package services

import (
	"fmt"
	"time"

	"repro/internal/faults"
	"repro/internal/hw"
	"repro/internal/netmodel"
	"repro/internal/rng"
	"repro/internal/sim"
	"repro/internal/socialgraph"
)

// Social Network cost-model constants, calibrated for the paper's ≈2–3 ms
// average end-to-end latency (Fig. 6b). The storage stage has a heavy
// lognormal tail, which dominates the ≈10–20 ms 99th percentile (Fig. 6c).
const (
	snNginxCost     = 50 * time.Microsecond
	snNginxReply    = 25 * time.Microsecond
	snTimelineBase  = 120 * time.Microsecond
	snTimelinePerPC = 5 * time.Microsecond // per post materialized
	snStorageBase   = 1600 * time.Microsecond
	snCacheCost     = 200 * time.Microsecond
	snSigma         = 0.18
	snStorageSigma  = 0.45
)

// SocialNet models the DeathStarBench Social Network application (§IV-B):
// a chain of services (front-end → user-timeline → storage → cache) all
// deployed on a single node under Docker Swarm, communicating over the
// container bridge. Timeline reads execute against a real social graph
// seeded like the paper's Reed98 dataset.
type SocialNet struct {
	machine  *hw.Machine
	nginx    *Tier
	timeline *Tier
	storage  *Tier
	cache    *Tier
	graph    *socialgraph.Graph
	bridge   *netmodel.Link
	userGen  *rng.Stream
	readLim  int
}

// SocialNetConfig configures the deployment.
type SocialNetConfig struct {
	ServerHW     hw.Config
	SeedPosts    int // posts per user composed before each experiment
	TimelineRead int // posts returned by read-user-timeline
	GraphSeed    uint64
	// HiccupRate / HiccupMean tune the background-interference model on
	// every container's tier (zero values keep the calibrated defaults).
	HiccupRate float64
	HiccupMean time.Duration
}

// DefaultSocialNetConfig mirrors the paper's single-node deployment.
func DefaultSocialNetConfig() SocialNetConfig {
	return SocialNetConfig{ServerHW: hw.ServerBaselineConfig(), SeedPosts: 20, TimelineRead: 10, GraphSeed: 42}
}

// NewSocialNet builds the deployment: one 20-core node (the paper's
// c220g5 socket pair) partitioned among the four service containers.
func NewSocialNet(cfg SocialNetConfig) (*SocialNet, error) {
	if cfg.SeedPosts < 0 || cfg.TimelineRead < 1 {
		return nil, fmt.Errorf("services: invalid socialnet config %+v", cfg)
	}
	machine, err := hw.NewMachine("socialnet-node", 20, cfg.ServerHW)
	if err != nil {
		return nil, err
	}
	mk := func(name string, cores []int) (*Tier, error) {
		return NewTier(TierConfig{Name: name, Machine: machine, Cores: cores, Hiccups: true, Contention: 0.03,
			HiccupRatePerSec: cfg.HiccupRate, HiccupMeanDuration: cfg.HiccupMean})
	}
	nginx, err := mk("nginx", []int{0, 1, 2, 3})
	if err != nil {
		return nil, err
	}
	timeline, err := mk("user-timeline", []int{4, 5, 6, 7})
	if err != nil {
		return nil, err
	}
	storage, err := mk("post-storage", []int{8, 9, 10, 11, 12, 13})
	if err != nil {
		return nil, err
	}
	cache, err := mk("timeline-cache", []int{14, 15, 16, 17})
	if err != nil {
		return nil, err
	}
	graph, err := socialgraph.GenerateReed98Like(cfg.GraphSeed)
	if err != nil {
		return nil, err
	}
	if err := graph.SeedPosts(cfg.SeedPosts, rng.NewLabeled(cfg.GraphSeed, "socialnet-seed"), 0); err != nil {
		return nil, err
	}
	return &SocialNet{
		machine:  machine,
		nginx:    nginx,
		timeline: timeline,
		storage:  storage,
		cache:    cache,
		graph:    graph,
		readLim:  cfg.TimelineRead,
	}, nil
}

// Name implements Backend.
func (s *SocialNet) Name() string { return "socialnet" }

// Machines implements Backend.
func (s *SocialNet) Machines() []*hw.Machine { return []*hw.Machine{s.machine} }

// MeanServiceTime implements Backend (storage dominates).
func (s *SocialNet) MeanServiceTime() float64 { return snStorageBase.Seconds() }

// Graph exposes the social graph for examples and diagnostics.
func (s *SocialNet) Graph() *socialgraph.Graph { return s.graph }

// RandomUser draws a user ID for request generation.
func (s *SocialNet) RandomUser(stream *rng.Stream) socialgraph.UserID {
	return socialgraph.UserID(stream.Intn(s.graph.NumUsers()))
}

// TierStats implements TierStatsProvider.
func (s *SocialNet) TierStats() []TierStats {
	return []TierStats{s.nginx.Stats(), s.timeline.Stats(), s.storage.Stats(), s.cache.Stats()}
}

// Occupancy implements OccupancyProvider (allocation-free tick sampling).
func (s *SocialNet) Occupancy() (time.Duration, int) {
	busy := s.nginx.BusyTime() + s.timeline.BusyTime() + s.storage.BusyTime() + s.cache.BusyTime()
	workers := s.nginx.Workers() + s.timeline.Workers() + s.storage.Workers() + s.cache.Workers()
	return busy, workers
}

// ResetRun implements Backend.
func (s *SocialNet) ResetRun(engine *sim.Engine, stream *rng.Stream) {
	s.nginx.ResetRun(engine, stream.Split())
	s.timeline.ResetRun(engine, stream.Split())
	s.storage.ResetRun(engine, stream.Split())
	s.cache.ResetRun(engine, stream.Split())
	s.bridge = netmodel.Loopback(stream.Split())
	s.userGen = stream.Split()
}

// StartRun implements Backend.
func (s *SocialNet) StartRun(end sim.Time) {
	s.nginx.StartRun(end)
	s.timeline.StartRun(end)
	s.storage.StartRun(end)
	s.cache.StartRun(end)
}

// Crash implements Crasher. Requests mid-flight on the container bridge
// fail when they land on a dark tier.
func (s *SocialNet) Crash(now sim.Time) {
	s.nginx.Crash(now)
	s.timeline.Crash(now)
	s.storage.Crash(now)
	s.cache.Crash(now)
}

// Restart implements Crasher.
func (s *SocialNet) Restart(now sim.Time) {
	s.nginx.Restart(now)
	s.timeline.Restart(now)
	s.storage.Restart(now)
	s.cache.Restart(now)
}

// SetDegrade implements Degrader.
func (s *SocialNet) SetDegrade(d *faults.DegradeSchedule) {
	s.nginx.SetDegrade(d)
	s.timeline.SetDegrade(d)
	s.storage.SetDegrade(d)
	s.cache.SetDegrade(d)
}

// SocialNet per-request state machine stages (Request.Stage): the service
// chain nginx → user-timeline → post-storage → timeline-cache → nginx
// reply, with a container-bridge crossing between consecutive tiers. The
// pre-refactor implementation captured this chain in five nested closures
// per request; the pooled request now carries its own position.
const (
	snStageNginx    int = iota // front-end accepts the request
	snStageTimeline            // user-timeline materializes posts
	snStageStorage             // post-storage fetch
	snStageCache               // timeline-cache update
	snStageReply               // nginx serializes the reply
)

// Arrive implements Backend: a read-user-timeline request flows
// nginx → user-timeline → post-storage → timeline-cache → nginx reply.
// The payload must be a socialgraph.UserID.
func (s *SocialNet) Arrive(req *Request, now sim.Time) {
	if _, ok := req.Payload.(socialgraph.UserID); !ok {
		panic(fmt.Sprintf("services: socialnet got payload %T", req.Payload))
	}
	req.ServerArrive = now
	req.Stage = snStageNginx

	cost := time.Duration(float64(snNginxCost)*s.nginx.Noise(snSigma)) + s.nginx.StackCost()
	s.nginx.Submit(now, cost, req, s)
}

// JobDone implements JobSink: a tier finished the request's current stage;
// all but the last are followed by a bridge crossing into the next tier.
func (s *SocialNet) JobDone(end sim.Time, req *Request) {
	if req.Stage == snStageReply {
		// Scratch holds the post count the timeline stage materialized.
		req.ResponseBytes = 256 + int(req.Scratch)*200
		req.complete(end)
		return
	}
	req.Stage++
	s.hop(end, req)
}

// hop schedules the request's next stage after a container-bridge crossing.
func (s *SocialNet) hop(from sim.Time, req *Request) {
	s.bridge.Deliver(s.nginx.engine, from, 256, s, sim.EventArg{Ptr: req})
}

// OnEvent implements sim.EventSink: a request cleared the container bridge
// and enters its next stage's tier.
func (s *SocialNet) OnEvent(now sim.Time, arg sim.EventArg) {
	req := arg.Ptr.(*Request)
	switch req.Stage {
	case snStageTimeline:
		user := req.Payload.(socialgraph.UserID)
		posts, err := s.graph.ReadUserTimeline(user, s.readLim)
		if err != nil {
			panic(fmt.Sprintf("services: socialnet timeline read failed: %v", err))
		}
		req.Scratch = int64(len(posts))
		tlCost := snTimelineBase + time.Duration(len(posts))*snTimelinePerPC
		tlCost = time.Duration(float64(tlCost)*s.timeline.Noise(snSigma)) + s.timeline.StackCost()
		s.timeline.Submit(now, tlCost, req, s)
	case snStageStorage:
		stCost := time.Duration(float64(snStorageBase)*s.storage.Noise(snStorageSigma)) + s.storage.StackCost()
		s.storage.Submit(now, stCost, req, s)
	case snStageCache:
		cCost := time.Duration(float64(snCacheCost)*s.cache.Noise(snSigma)) + s.cache.StackCost()
		s.cache.Submit(now, cCost, req, s)
	case snStageReply:
		rCost := time.Duration(float64(snNginxReply)*s.nginx.Noise(snSigma)) + s.nginx.StackCost()
		s.nginx.Submit(now, rCost, req, s)
	default:
		panic(fmt.Sprintf("services: socialnet delivery in unknown stage %d", req.Stage))
	}
}
