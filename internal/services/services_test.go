package services

import (
	"testing"
	"time"

	"repro/internal/hw"
	"repro/internal/lsh"
	"repro/internal/rng"
	"repro/internal/sim"
	"repro/internal/socialgraph"
	"repro/internal/workload"
)

// drive sends one request into a backend at time zero and returns the
// server departure time.
func drive(t *testing.T, b Backend, payload any) (sim.Time, *Request) {
	t.Helper()
	engine := sim.NewEngine()
	for _, m := range b.Machines() {
		m.ResetRun(rng.New(10))
	}
	b.ResetRun(engine, rng.New(11))
	req := &Request{ID: 1, Payload: payload}
	var departed sim.Time
	req.SetCompletion(func(_ *Request, at sim.Time) { departed = at })
	engine.At(0, func(now sim.Time) { b.Arrive(req, now) })
	engine.Run()
	if departed == 0 {
		t.Fatal("request never completed")
	}
	return departed, req
}

func TestMemcachedConfigValidation(t *testing.T) {
	cfg := DefaultMemcachedConfig()
	cfg.Workers = 0
	if _, err := NewMemcached(cfg); err == nil {
		t.Error("zero workers accepted")
	}
	cfg = DefaultMemcachedConfig()
	cfg.Keys = 0
	if _, err := NewMemcached(cfg); err == nil {
		t.Error("zero keys accepted")
	}
}

func TestMemcachedServesGetAndSet(t *testing.T) {
	cfg := DefaultMemcachedConfig()
	cfg.Keys = 1000 // small preload for test speed
	m, err := NewMemcached(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if m.Name() != "memcached" {
		t.Errorf("name = %s", m.Name())
	}
	// GET of a preloaded key: hit, service ≈ 10µs, response carries value.
	dep, req := drive(t, m, workload.KVRequest{Op: workload.OpGet, Key: "etc-000000000042"})
	if got := time.Duration(dep); got < 5*time.Microsecond || got > 60*time.Microsecond {
		t.Errorf("GET service time %v, want ≈10µs", got)
	}
	if req.ResponseBytes <= 24 {
		t.Errorf("GET hit response = %d bytes, want value payload", req.ResponseBytes)
	}
	if m.Store().Stats().Hits == 0 {
		t.Error("real store recorded no hit")
	}

	// GET of a missing key: miss, small response.
	_, req = drive(t, m, workload.KVRequest{Op: workload.OpGet, Key: "absent"})
	if req.ResponseBytes != 24 {
		t.Errorf("miss response = %d bytes, want 24", req.ResponseBytes)
	}

	// SET stores for real.
	before := m.Store().Len()
	drive(t, m, workload.KVRequest{Op: workload.OpSet, Key: "new-key", ValueSize: 128})
	if m.Store().Len() != before+1 {
		t.Error("SET did not store")
	}
}

func TestMemcachedRejectsWrongPayload(t *testing.T) {
	cfg := DefaultMemcachedConfig()
	cfg.Keys = 10
	m, err := NewMemcached(cfg)
	if err != nil {
		t.Fatal(err)
	}
	defer func() {
		if recover() == nil {
			t.Error("wrong payload did not panic")
		}
	}()
	drive(t, m, "not a kv request")
}

func TestMemcachedResetRunRestoresStore(t *testing.T) {
	cfg := DefaultMemcachedConfig()
	cfg.Keys = 100
	m, err := NewMemcached(cfg)
	if err != nil {
		t.Fatal(err)
	}
	const key = "etc-000000000007"
	orig, err := m.Store().Get(key, 0)
	if err != nil {
		t.Fatal(err)
	}

	// A run SETs the key with a different value size; a GET's modelled
	// cost depends on that size, so without a restore the next run would
	// observe this run's write.
	drive(t, m, workload.KVRequest{Op: workload.OpSet, Key: key, ValueSize: len(orig) + 999})
	if v, _ := m.Store().Get(key, 0); len(v) != len(orig)+999 {
		t.Fatalf("set not applied: len=%d", len(v))
	}

	m.ResetRun(sim.NewEngine(), rng.New(5))
	v, err := m.Store().Get(key, 0)
	if err != nil {
		t.Fatal(err)
	}
	if len(v) != len(orig) {
		t.Errorf("after ResetRun len(value) = %d, want preloaded %d", len(v), len(orig))
	}
}

func TestMemcachedMeanServiceTimeScale(t *testing.T) {
	cfg := DefaultMemcachedConfig()
	cfg.Keys = 10
	m, err := NewMemcached(cfg)
	if err != nil {
		t.Fatal(err)
	}
	// The paper cites ~10µs server-side processing for Memcached.
	st := m.MeanServiceTime()
	if st < 5e-6 || st > 20e-6 {
		t.Errorf("mean service time %v s, want ≈1e-5", st)
	}

	// Pin the corrected composition: GET base + mean ETC value copy-out +
	// SMT-off stack share. The ETC mean value is σ/(1−k)+1 ≈ 330 B, so at
	// 4 ns/B the calibrated total is ≈9.62 µs.
	meanVal := m.ETCConfig().MeanValueSize()
	if meanVal < 329 || meanVal > 331 {
		t.Errorf("ETC mean value size = %.2f B, want ≈330", meanVal)
	}
	want := (memcachedGetBase + time.Duration(meanVal*memcachedPerByte) + stackCostSMTOff).Seconds()
	if st != want {
		t.Errorf("mean service time %v, want composed %v", st, want)
	}
	if st < 9.5e-6 || st > 9.8e-6 {
		t.Errorf("mean service time %v s, want ≈9.62µs", st)
	}
}

// TestMemcachedInstancesShareSnapshot pins the copy-on-write preload:
// instances with the same workload parameters fork one frozen base, and
// one instance's writes never reach a sibling.
func TestMemcachedInstancesShareSnapshot(t *testing.T) {
	cfg := DefaultMemcachedConfig()
	cfg.Keys = 500
	a, err := NewMemcached(cfg)
	if err != nil {
		t.Fatal(err)
	}
	b, err := NewMemcached(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if a.Store().Base() != b.Store().Base() {
		t.Fatal("same-config instances do not share a preload snapshot")
	}
	// An SMT-variant server still shares it (preload is workload-keyed).
	cfg2 := cfg
	cfg2.ServerHW = cfg.ServerHW.WithSMT(true)
	c, err := NewMemcached(cfg2)
	if err != nil {
		t.Fatal(err)
	}
	if a.Store().Base() != c.Store().Base() {
		t.Error("server-config variant rebuilt the preload")
	}
	// A different key space does not.
	cfg3 := cfg
	cfg3.Keys = 600
	d, err := NewMemcached(cfg3)
	if err != nil {
		t.Fatal(err)
	}
	if a.Store().Base() == d.Store().Base() {
		t.Error("different key spaces share a snapshot")
	}

	const key = "etc-000000000009"
	orig, err := a.Store().Get(key, 0)
	if err != nil {
		t.Fatal(err)
	}
	drive(t, a, workload.KVRequest{Op: workload.OpSet, Key: key, ValueSize: len(orig) + 123})
	if v, _ := b.Store().Get(key, 0); len(v) != len(orig) {
		t.Errorf("sibling instance sees a's write: len=%d, want %d", len(v), len(orig))
	}
}

func TestSyntheticDelayAccounting(t *testing.T) {
	cfg := DefaultSyntheticConfig()
	cfg.Delay = 300 * time.Microsecond
	s, err := NewSynthetic(cfg)
	if err != nil {
		t.Fatal(err)
	}
	dep, _ := drive(t, s, struct{}{})
	got := time.Duration(dep)
	// base (~9µs noisy) + exactly 300µs busy-wait + stack.
	if got < 300*time.Microsecond || got > 330*time.Microsecond {
		t.Errorf("synthetic service time %v, want ≈310µs", got)
	}
	if s.Delay() != 300*time.Microsecond {
		t.Errorf("Delay() = %v", s.Delay())
	}
}

func TestSyntheticValidation(t *testing.T) {
	cfg := DefaultSyntheticConfig()
	cfg.Workers = 0
	if _, err := NewSynthetic(cfg); err == nil {
		t.Error("zero workers accepted")
	}
	cfg = DefaultSyntheticConfig()
	cfg.Delay = -time.Microsecond
	if _, err := NewSynthetic(cfg); err == nil {
		t.Error("negative delay accepted")
	}
	cfg = DefaultSyntheticConfig()
	cfg.Base = 0
	if _, err := NewSynthetic(cfg); err == nil {
		t.Error("zero base accepted")
	}
}

func TestHDSearchThreeTierFlow(t *testing.T) {
	cfg := DefaultHDSearchConfig()
	cfg.DatasetSize = 2000 // fast index build
	h, err := NewHDSearch(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if len(h.Machines()) != 2 {
		t.Errorf("hdsearch machines = %d, want 2 (midtier + bucket)", len(h.Machines()))
	}
	q := h.NewQuery(rng.New(5))
	if len(q) != cfg.Dim {
		t.Fatalf("query dim = %d", len(q))
	}
	dep, req := drive(t, h, q)
	got := time.Duration(dep)
	// parse + hop + search + hop + merge ≈ several hundred µs.
	if got < 250*time.Microsecond || got > 2*time.Millisecond {
		t.Errorf("hdsearch end-to-end service %v, want ≈300µs–1ms", got)
	}
	if req.ResponseBytes <= 64 {
		t.Errorf("response bytes = %d, want results payload", req.ResponseBytes)
	}
}

func TestHDSearchValidation(t *testing.T) {
	cfg := DefaultHDSearchConfig()
	cfg.MidtierWorkers = 0
	if _, err := NewHDSearch(cfg); err == nil {
		t.Error("zero midtier workers accepted")
	}
	cfg = DefaultHDSearchConfig()
	cfg.TopK = 0
	if _, err := NewHDSearch(cfg); err == nil {
		t.Error("zero topK accepted")
	}
}

func TestHDSearchRejectsWrongPayload(t *testing.T) {
	cfg := DefaultHDSearchConfig()
	cfg.DatasetSize = 100
	h, err := NewHDSearch(cfg)
	if err != nil {
		t.Fatal(err)
	}
	defer func() {
		if recover() == nil {
			t.Error("wrong payload did not panic")
		}
	}()
	drive(t, h, 42)
}

func TestSocialNetChainFlow(t *testing.T) {
	s, err := NewSocialNet(DefaultSocialNetConfig())
	if err != nil {
		t.Fatal(err)
	}
	if s.Graph().NumPosts() == 0 {
		t.Fatal("database not seeded before the run (paper fills it with compose-post)")
	}
	user := s.RandomUser(rng.New(6))
	dep, req := drive(t, s, user)
	got := time.Duration(dep)
	// nginx → timeline → storage → cache → nginx ≈ 2–3ms.
	if got < time.Millisecond || got > 8*time.Millisecond {
		t.Errorf("socialnet end-to-end service %v, want ≈2–3ms", got)
	}
	if req.ResponseBytes < 256 {
		t.Errorf("response bytes = %d", req.ResponseBytes)
	}
}

func TestSocialNetValidation(t *testing.T) {
	cfg := DefaultSocialNetConfig()
	cfg.TimelineRead = 0
	if _, err := NewSocialNet(cfg); err == nil {
		t.Error("zero timeline read accepted")
	}
}

func TestSocialNetUsesRealGraph(t *testing.T) {
	s, err := NewSocialNet(DefaultSocialNetConfig())
	if err != nil {
		t.Fatal(err)
	}
	g := s.Graph()
	if g.NumUsers() != 962 {
		t.Errorf("users = %d, want 962 (Reed98 scale)", g.NumUsers())
	}
	if g.NumEdges() != 18812 {
		t.Errorf("edges = %d, want 18812 (Reed98 scale)", g.NumEdges())
	}
}

func TestBackendC1EVariantPaysServerWake(t *testing.T) {
	// A C1E-enabled server pays a deeper wake than the C1 baseline when a
	// request arrives after a long idle (the Fig. 3 server mechanism).
	run := func(maxC string) time.Duration {
		cfg := DefaultSyntheticConfig()
		cfg.ServerHW = hw.ServerBaselineConfig()
		cfg.ServerHW.MaxCState = maxC
		s, err := NewSynthetic(cfg)
		if err != nil {
			t.Fatal(err)
		}
		engine := sim.NewEngine()
		for _, m := range s.Machines() {
			m.ResetRun(rng.New(20))
		}
		s.ResetRun(engine, rng.New(21))
		// Train the worker with long idle gaps, then measure.
		var last sim.Time
		at := sim.Time(0)
		for i := 0; i < 12; i++ {
			req := &Request{ID: uint64(i), Payload: struct{}{}, Conn: 0}
			start := at
			req.SetCompletion(func(_ *Request, done sim.Time) { last = done - start })
			engine.At(at, func(now sim.Time) {
				r := req
				s.Arrive(r, now)
			})
			at = at.Add(2 * time.Millisecond)
		}
		engine.Run()
		return time.Duration(last)
	}
	c1 := run("C1")
	c1e := run("C1E")
	if c1e <= c1 {
		t.Errorf("C1E-enabled service time %v not above C1 baseline %v", c1e, c1)
	}
}

// Ensure every backend satisfies the interfaces (compile-time check):
// Backend for the service contract, JobSink for typed tier completions,
// and sim.EventSink for the multi-hop services' link deliveries.
var (
	_ Backend = (*Memcached)(nil)
	_ Backend = (*Synthetic)(nil)
	_ Backend = (*HDSearch)(nil)
	_ Backend = (*SocialNet)(nil)

	_ JobSink = (*Memcached)(nil)
	_ JobSink = (*Synthetic)(nil)
	_ JobSink = (*HDSearch)(nil)
	_ JobSink = (*SocialNet)(nil)

	_ sim.EventSink = (*Tier)(nil)
	_ sim.EventSink = (*HDSearch)(nil)
	_ sim.EventSink = (*SocialNet)(nil)

	_ = lsh.Vector(nil)
	_ = socialgraph.UserID(0)
)
