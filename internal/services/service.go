// Package services models the server side of the paper's testbed: worker
// pools executing requests on simulated machines (package hw), with FIFO
// queueing, C-state wake penalties on idle workers, SMT-aware network-stack
// costs, and background-interference "hiccups". Four backends implement the
// paper's benchmarks (§IV-B): Memcached (over a real key-value store),
// HDSearch (a three-tier service over a real LSH index), Social Network
// (a service chain over a real social graph), and the tunable-latency
// synthetic workload.
package services

import (
	"repro/internal/hw"
	"repro/internal/rng"
	"repro/internal/sim"
)

// Request is one end-to-end request tracked from generator to service and
// back. The workload generator fills the client-side fields; the backend
// fills the server-side ones.
type Request struct {
	ID     uint64
	Thread int // generator thread that owns the request
	Conn   int // connection the request was sent on (worker affinity key)

	// Scheduled is the target send instant drawn from the inter-arrival
	// distribution; SentAt is when the generator actually timestamped and
	// transmitted it (the difference is the workload distortion the paper
	// describes in §II).
	Scheduled sim.Time
	SentAt    sim.Time

	// ServerArrive/ServerDepart bracket the server-side residence.
	ServerArrive sim.Time
	ServerDepart sim.Time

	// ResponseBytes sizes the response payload for the return link.
	ResponseBytes int

	// Payload carries the service-specific request body.
	Payload any

	// onComplete is invoked once when the response leaves the server.
	onComplete func(req *Request, departed sim.Time)
}

// SetCompletion installs the completion callback (the generator's receive
// path). It must be set before the request arrives at a backend.
func (r *Request) SetCompletion(fn func(req *Request, departed sim.Time)) {
	r.onComplete = fn
}

func (r *Request) complete(departed sim.Time) {
	r.ServerDepart = departed
	if r.onComplete != nil {
		r.onComplete(r, departed)
	}
}

// Backend is a service under test. Implementations must be driven from a
// single sim.Engine goroutine.
//
// Backends are long-lived, reusable environments: one instance serves
// many runs back to back, and the envpool layer additionally leases idle
// instances across scenarios that share a server configuration. Both
// rest on the same contract — ResetRun must be complete. Every piece of
// state a run can observe (queues, noise scales, stored data a request's
// cost depends on) must be restored from the fresh engine and stream, so
// a run's outcome is a pure function of (configuration, run stream) and
// never of which runs the instance served before.
type Backend interface {
	// Name identifies the service in reports.
	Name() string
	// Arrive delivers a request to the service's entry point at now (the
	// instant it clears the client→server link). The backend eventually
	// calls the request's completion callback with the instant the
	// response leaves the server.
	Arrive(req *Request, now sim.Time)
	// ResetRun clears run-scoped state and re-seeds service-time noise.
	// The engine passed is the run's fresh engine.
	ResetRun(engine *sim.Engine, stream *rng.Stream)
	// StartRun schedules run-length background activity (hiccups) up to
	// the given end of run.
	StartRun(end sim.Time)
	// Machines lists the server machines, for per-run hardware resets and
	// diagnostics.
	Machines() []*hw.Machine
	// MeanServiceTime reports the nominal mean per-request service time,
	// used for utilization accounting and Little's-law sizing.
	MeanServiceTime() float64 // seconds
}
