// Package services models the server side of the paper's testbed: worker
// pools executing requests on simulated machines (package hw), with FIFO
// queueing, C-state wake penalties on idle workers, SMT-aware network-stack
// costs, and background-interference "hiccups". Four backends implement the
// paper's benchmarks (§IV-B): Memcached (over a real key-value store),
// HDSearch (a three-tier service over a real LSH index), Social Network
// (a service chain over a real social graph), and the tunable-latency
// synthetic workload.
package services

import (
	"time"

	"repro/internal/faults"
	"repro/internal/hw"
	"repro/internal/rng"
	"repro/internal/sim"
	"repro/internal/workload"
)

// Request is one end-to-end request tracked from generator to service and
// back. The workload generator fills the client-side fields; the backend
// fills the server-side ones.
//
// Requests are pooled on the hot path: generators draw them from a
// RequestPool and return them once measured, so steady-state traffic
// allocates no Request objects. Backends treat a request as live only
// between Arrive and the completion callback; holding a *Request past
// completion observes recycled state.
type Request struct {
	ID     uint64
	Thread int // generator thread that owns the request
	Conn   int // connection the request was sent on (worker affinity key)

	// Scheduled is the target send instant drawn from the inter-arrival
	// distribution; SentAt is when the generator actually timestamped and
	// transmitted it (the difference is the workload distortion the paper
	// describes in §II).
	Scheduled sim.Time
	SentAt    sim.Time

	// ServerArrive/ServerDepart bracket the server-side residence.
	ServerArrive sim.Time
	ServerDepart sim.Time

	// ResponseBytes sizes the response payload for the return link.
	ResponseBytes int

	// Payload carries the service-specific request body.
	Payload any

	// KV carries a key-value request body inline (HasKV set) instead of
	// boxed in Payload: storing a struct with a string field in an
	// interface heap-allocates, and for the Memcached path that boxing
	// was the last per-request allocation once keys were interned. The
	// key string itself is shared from the workload's interned table.
	KV    workload.KVRequest
	HasKV bool

	// Stage is backend-owned state: multi-hop services (HDSearch,
	// SocialNet) record which hop of their per-request state machine the
	// request is on, instead of capturing it in a chain of closures.
	Stage int

	// Scratch is backend-owned numeric state carried between hops (e.g.
	// a result count that later sizes the response).
	Scratch int64

	// Replica is cluster-owned state: the index of the replica serving
	// the request, recorded by the routing layer so completion can settle
	// per-replica outstanding counts without any per-request allocation.
	Replica int

	// Outcome classifies how the request ended. The zero value is
	// OutcomeOK, so the fault-free path never touches it.
	Outcome Outcome

	// Resilience state, client-owned. Attempt counts re-sends (0 = first
	// attempt); FirstSent is the first attempt's send instant, preserved
	// across retries so end-to-end latency spans the whole exchange;
	// WireBytes is the request's wire size, preserved so re-sends pay the
	// same link cost; Backoff is the previous retry's backoff (the
	// decorrelated-jitter recurrence state); Abandoned marks a request
	// the client gave up on (its late response, if any, is dropped and
	// recycled on arrival); Avoid biases routing away from replica
	// Avoid-1 (0 = no bias) so a hedge lands on a different replica than
	// its primary; Hedged marks the hedge clone of a pair; Peer links the
	// two live halves of a hedged pair until one side wins.
	Attempt   int
	FirstSent sim.Time
	WireBytes int
	Backoff   time.Duration
	Abandoned bool
	Avoid     int
	Hedged    bool
	Peer      *Request

	// TimeoutEv / HedgeEv are the client's pending timer events for this
	// request, cancelled when the response arrives first.
	TimeoutEv sim.EventID
	HedgeEv   sim.EventID

	// onComplete / sink: exactly one is invoked when the response leaves
	// the server. sink is the typed, allocation-free form; onComplete is
	// the closure form kept for tests and one-off drivers.
	onComplete func(req *Request, departed sim.Time)
	sink       CompletionSink

	// hook, when set, observes the completion before the sink/closure
	// fires — the cluster layer's interposition point.
	hook CompletionHook
}

// CompletionHook observes request completions before the completion
// sink/closure runs. Unlike CompletionSink it does not own the request —
// it must not recycle or retain it.
type CompletionHook interface {
	RequestDone(req *Request, departed sim.Time)
}

// SetCompletionHook installs (or, with nil, clears) the completion hook.
func (r *Request) SetCompletionHook(h CompletionHook) { r.hook = h }

// CompletionSink receives request completions on the typed path. The
// generator installs one long-lived sink per run instead of allocating a
// completion closure per request.
type CompletionSink interface {
	OnComplete(req *Request, departed sim.Time)
}

// SetCompletion installs the completion callback (the generator's receive
// path). It must be set before the request arrives at a backend.
func (r *Request) SetCompletion(fn func(req *Request, departed sim.Time)) {
	r.onComplete = fn
	r.sink = nil
}

// SetCompletionSink installs the typed completion sink — the
// allocation-free alternative to SetCompletion.
func (r *Request) SetCompletionSink(s CompletionSink) {
	r.sink = s
	r.onComplete = nil
}

// Outcome classifies how a request ended.
type Outcome uint8

const (
	// OutcomeOK is a normal completion (the zero value).
	OutcomeOK Outcome = iota
	// OutcomeFailed marks a server-side failure: the replica was down on
	// arrival, crashed with the request in flight, or no healthy replica
	// existed. The client receives a small error response.
	OutcomeFailed
	// OutcomeTimedOut marks a request the client abandoned after its
	// per-request timeout; recorded on the abandoned attempt.
	OutcomeTimedOut
	// OutcomeHedgeWon marks a success delivered by the hedge clone
	// rather than the primary attempt.
	OutcomeHedgeWon
)

// String implements fmt.Stringer.
func (o Outcome) String() string {
	switch o {
	case OutcomeOK:
		return "ok"
	case OutcomeFailed:
		return "failed"
	case OutcomeTimedOut:
		return "timed-out"
	case OutcomeHedgeWon:
		return "hedge-won"
	}
	return "unknown"
}

// failResponseBytes sizes the error response a failed request carries
// back to the client (an RST-sized frame, not a service payload).
const failResponseBytes = 16

// Fail completes the request as a server-side failure at now: the fault
// layer's path for requests on a crashed replica. The error response
// travels the return link like any completion, so the client observes
// the failure after the usual network delay and can apply its retry
// policy.
func (r *Request) Fail(now sim.Time) {
	r.Outcome = OutcomeFailed
	r.ResponseBytes = failResponseBytes
	r.complete(now)
}

func (r *Request) complete(departed sim.Time) {
	r.ServerDepart = departed
	if r.hook != nil {
		r.hook.RequestDone(r, departed)
	}
	if r.sink != nil {
		r.sink.OnComplete(r, departed)
	} else if r.onComplete != nil {
		r.onComplete(r, departed)
	}
}

// RequestPool is a deterministic LIFO free list of Request objects. Each
// generator owns one (they are not safe for concurrent use); because the
// simulated world is single-clocked and the pool is plain LIFO, reuse
// order is a pure function of the event sequence, preserving bit-exact
// reproducibility. Returned requests are fully zeroed, so a pooled run is
// indistinguishable from a freshly-allocating one.
type RequestPool struct {
	free  []*Request
	grown int
}

// Get returns a zeroed Request, reusing a recycled one when available.
func (p *RequestPool) Get() *Request {
	if n := len(p.free); n > 0 {
		r := p.free[n-1]
		p.free[n-1] = nil
		p.free = p.free[:n-1]
		return r
	}
	p.grown++
	return &Request{}
}

// Put recycles req. The caller must be done with every reference: the
// object is zeroed (dropping payload and sink references for the GC) and
// handed to the next Get.
func (p *RequestPool) Put(req *Request) {
	*req = Request{}
	p.free = append(p.free, req)
}

// Allocated reports how many Requests the pool has created fresh — like
// sim.Engine.EventAllocs, it stops growing in steady state.
func (p *RequestPool) Allocated() int { return p.grown }

// TierStats is a snapshot of one worker pool's run-scoped counters,
// separated by queue discipline (shared FIFO vs. per-connection affinity).
type TierStats struct {
	Tier           string
	Workers        int
	Completed      uint64
	MaxSharedQueue int
	MaxConnQueue   int
	BusyTime       time.Duration
	// HiccupCount / HiccupTime account the background-interference jobs
	// the tier injected (nominal durations, before contention inflation).
	HiccupCount uint64
	HiccupTime  time.Duration
	// CrashFailed counts requests this tier failed because the replica
	// crashed with them in flight or queued.
	CrashFailed uint64
}

// Stats snapshots the tier's run-scoped counters.
func (t *Tier) Stats() TierStats {
	return TierStats{
		Tier:           t.name,
		Workers:        len(t.workers),
		Completed:      t.completed,
		MaxSharedQueue: t.maxSharedQueue,
		MaxConnQueue:   t.maxConnQueue,
		BusyTime:       t.busyTime,
		HiccupCount:    t.hiccupCount,
		HiccupTime:     t.hiccupTime,
		CrashFailed:    t.crashFailed,
	}
}

// TierStatsProvider is implemented by backends that expose per-tier run
// statistics. The cluster layer relies on it for end-of-run load-balance
// figures.
type TierStatsProvider interface {
	// TierStats lists the backend's tiers in a fixed order.
	TierStats() []TierStats
}

// OccupancyProvider is the autoscaler's sampling channel: Occupancy sums
// worker busy time and pool size across the backend's tiers without
// building a TierStats slice. TierStats allocates per call — fine once
// at end of run, ruinous on every virtual-time autoscaler tick — so the
// control loop samples this instead (BenchmarkAutoscalerTick pins the
// tick at zero allocations).
type OccupancyProvider interface {
	// Occupancy returns the cumulative worker busy time and the worker
	// count summed over the backend's tiers.
	Occupancy() (busy time.Duration, workers int)
}

// Crasher is implemented by backends that support replica crash faults:
// Crash fails all in-flight and queued requests at now and takes the
// backend dark (background work is dropped, defensive arrivals fail);
// Restart brings it back up with empty queues. The cluster layer gates
// arrivals against the fault schedule, so a crashed backend normally
// sees no traffic while dark.
type Crasher interface {
	Crash(now sim.Time)
	Restart(now sim.Time)
}

// Degrader is implemented by backends whose service times can be scaled
// by a straggler schedule. SetDegrade installs (or with nil clears) the
// per-run schedule on every tier of the backend; the fault layer
// installs it at run start and it must be re-installed each run.
type Degrader interface {
	SetDegrade(d *faults.DegradeSchedule)
}

// Backend is a service under test. Implementations must be driven from a
// single sim.Engine goroutine.
//
// Backends are long-lived, reusable environments: one instance serves
// many runs back to back, and the envpool layer additionally leases idle
// instances across scenarios that share a server configuration. Both
// rest on the same contract — ResetRun must be complete. Every piece of
// state a run can observe (queues, noise scales, stored data a request's
// cost depends on) must be restored from the fresh engine and stream, so
// a run's outcome is a pure function of (configuration, run stream) and
// never of which runs the instance served before.
type Backend interface {
	// Name identifies the service in reports.
	Name() string
	// Arrive delivers a request to the service's entry point at now (the
	// instant it clears the client→server link). The backend eventually
	// calls the request's completion callback with the instant the
	// response leaves the server.
	Arrive(req *Request, now sim.Time)
	// ResetRun clears run-scoped state and re-seeds service-time noise.
	// The engine passed is the run's fresh engine.
	ResetRun(engine *sim.Engine, stream *rng.Stream)
	// StartRun schedules run-length background activity (hiccups) up to
	// the given end of run.
	StartRun(end sim.Time)
	// Machines lists the server machines, for per-run hardware resets and
	// diagnostics.
	Machines() []*hw.Machine
	// MeanServiceTime reports the nominal mean per-request service time,
	// used for utilization accounting and Little's-law sizing.
	MeanServiceTime() float64 // seconds
}
