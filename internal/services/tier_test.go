package services

import (
	"math"
	"testing"
	"time"

	"repro/internal/hw"
	"repro/internal/rng"
	"repro/internal/sim"
)

// doneFunc adapts a completion func to JobSink for tests (allocates one
// closure per call — fine off the hot path).
type doneFunc func(end sim.Time)

func (f doneFunc) JobDone(end sim.Time, _ *Request) { f(end) }

// approx asserts got is within 1% of want (machines carry per-run
// frequency jitter, so exact equality does not hold).
func approx(t *testing.T, label string, got, want time.Duration) {
	t.Helper()
	diff := got - want
	if diff < 0 {
		diff = -diff
	}
	if float64(diff) > 0.01*float64(want) {
		t.Errorf("%s = %v, want ≈%v", label, got, want)
	}
}

func newTier(t *testing.T, workers int, cfg TierConfig) (*Tier, *sim.Engine) {
	t.Helper()
	m, err := hw.NewMachine("m", workers, hw.ServerBaselineConfig())
	if err != nil {
		t.Fatal(err)
	}
	cores := make([]int, workers)
	for i := range cores {
		cores[i] = i
	}
	cfg.Machine = m
	cfg.Cores = cores
	if cfg.Name == "" {
		cfg.Name = "test"
	}
	tier, err := NewTier(cfg)
	if err != nil {
		t.Fatal(err)
	}
	engine := sim.NewEngine()
	m.ResetRun(rng.New(1))
	tier.ResetRun(engine, rng.New(2))
	return tier, engine
}

func TestNewTierValidation(t *testing.T) {
	if _, err := NewTier(TierConfig{Name: "x"}); err == nil {
		t.Error("nil machine accepted")
	}
	m, _ := hw.NewMachine("m", 2, hw.ServerBaselineConfig())
	if _, err := NewTier(TierConfig{Name: "x", Machine: m}); err == nil {
		t.Error("no cores accepted")
	}
	if _, err := NewTier(TierConfig{Name: "x", Machine: m, Cores: []int{5}}); err == nil {
		t.Error("out-of-range core accepted")
	}
	if _, err := NewTier(TierConfig{Name: "x", Machine: m, Cores: []int{0}, Contention: -1}); err == nil {
		t.Error("negative contention accepted")
	}
	if _, err := NewTier(TierConfig{Name: "x", Machine: m, Cores: []int{0}, TailJitterProb: 2}); err == nil {
		t.Error("tail probability >1 accepted")
	}
}

func TestTierExecutesJob(t *testing.T) {
	tier, engine := newTier(t, 2, TierConfig{})
	var done sim.Time
	tier.Submit(0, 10*time.Microsecond, nil, doneFunc(func(end sim.Time) { done = end }))
	engine.Run()
	if done == 0 {
		t.Fatal("job never completed")
	}
	// Server baseline: turbo off, nominal frequency, boot wake is free →
	// the job takes its nominal duration.
	approx(t, "completion", time.Duration(done), 10*time.Microsecond)
	if tier.Completed() != 1 {
		t.Errorf("completed = %d", tier.Completed())
	}
}

func TestTierQueuesBeyondWorkers(t *testing.T) {
	tier, engine := newTier(t, 1, TierConfig{})
	var ends []sim.Time
	for i := 0; i < 3; i++ {
		tier.Submit(0, 10*time.Microsecond, nil, doneFunc(func(end sim.Time) { ends = append(ends, end) }))
	}
	engine.Run()
	if len(ends) != 3 {
		t.Fatalf("completed %d of 3", len(ends))
	}
	// Serial execution on one worker: completions 10, 20, 30µs (FIFO).
	for i, want := range []time.Duration{10 * time.Microsecond, 20 * time.Microsecond, 30 * time.Microsecond} {
		approx(t, "serial completion", time.Duration(ends[i]), want)
		_ = i
	}
	if tier.MaxQueueDepth() != 2 {
		t.Errorf("max queue depth = %d, want 2", tier.MaxQueueDepth())
	}
}

func TestTierParallelWorkers(t *testing.T) {
	tier, engine := newTier(t, 4, TierConfig{})
	var ends []sim.Time
	for i := 0; i < 4; i++ {
		tier.Submit(0, 10*time.Microsecond, nil, doneFunc(func(end sim.Time) { ends = append(ends, end) }))
	}
	engine.Run()
	for _, e := range ends {
		approx(t, "parallel completion", time.Duration(e), 10*time.Microsecond)
	}
}

func TestTierAffinityQueueing(t *testing.T) {
	tier, engine := newTier(t, 2, TierConfig{})
	var connEnds [2][]sim.Time
	// Two jobs on conn 0 (worker 0) and none on conn 1: conn 0's second
	// job must wait even though worker 1 idles.
	for i := 0; i < 2; i++ {
		tier.SubmitConn(0, 0, 10*time.Microsecond, nil, doneFunc(func(end sim.Time) { connEnds[0] = append(connEnds[0], end) }))
	}
	tier.SubmitConn(0, 1, 10*time.Microsecond, nil, doneFunc(func(end sim.Time) { connEnds[1] = append(connEnds[1], end) }))
	engine.Run()
	approx(t, "affinity-queued completion", time.Duration(connEnds[0][1]), 20*time.Microsecond)
	approx(t, "other worker completion", time.Duration(connEnds[1][0]), 10*time.Microsecond)
}

func TestTierWorkerSleepsAndPaysWake(t *testing.T) {
	tier, engine := newTier(t, 1, TierConfig{})
	tier.Submit(0, 5*time.Microsecond, nil, noopSink)
	engine.Run()
	w := tier.workers[0]
	if !w.core.Idle() {
		t.Fatal("worker core not asleep after drain")
	}
	// Submit again after a long idle: the wake penalty (C1 exit +
	// dispatch) delays the start.
	later := sim.Time(0).Add(5 * time.Millisecond)
	var end sim.Time
	engine.At(later, func(now sim.Time) {
		tier.Submit(now, 10*time.Microsecond, nil, doneFunc(func(e sim.Time) { end = e }))
	})
	engine.Run()
	elapsed := end.Sub(later)
	if elapsed <= 10*time.Microsecond {
		t.Errorf("woken job took %v, want > 10µs (wake penalty)", elapsed)
	}
	if elapsed > 20*time.Microsecond {
		t.Errorf("woken job took %v, want ≈12–14µs (C1 exit + dispatch)", elapsed)
	}
}

func TestTierContentionInflatesUnderLoad(t *testing.T) {
	tier, engine := newTier(t, 2, TierConfig{Contention: 0.5})
	var ends []sim.Time
	tier.Submit(0, 10*time.Microsecond, nil, doneFunc(func(e sim.Time) { ends = append(ends, e) }))
	tier.Submit(0, 10*time.Microsecond, nil, doneFunc(func(e sim.Time) { ends = append(ends, e) }))
	engine.Run()
	// First job dispatched alone (no inflation); second sees one busy
	// worker → ×1.5.
	approx(t, "first job", time.Duration(ends[0]), 10*time.Microsecond)
	approx(t, "contended job", time.Duration(ends[1]), 15*time.Microsecond)
}

func TestTierNoiseAndTailJitter(t *testing.T) {
	tier, _ := newTier(t, 1, TierConfig{TailJitterProb: 0.2, TailJitterMean: 100 * time.Microsecond})
	sawNonOne := false
	for i := 0; i < 100; i++ {
		n := tier.Noise(0.2)
		if n <= 0 {
			t.Fatalf("noise %v not positive", n)
		}
		if n != 1 {
			sawNonOne = true
		}
	}
	if !sawNonOne {
		t.Error("noise always exactly 1")
	}
	hits := 0
	for i := 0; i < 1000; i++ {
		if tier.TailJitter() > 0 {
			hits++
		}
	}
	if hits < 120 || hits > 280 {
		t.Errorf("tail jitter hit %d of 1000, want ≈200", hits)
	}
	// Zero probability → never fires.
	tier2, _ := newTier(t, 1, TierConfig{})
	for i := 0; i < 100; i++ {
		if tier2.TailJitter() != 0 {
			t.Fatal("tail jitter fired with zero probability")
		}
	}
}

func TestTierHiccupsOccupyWorkers(t *testing.T) {
	tier, engine := newTier(t, 1, TierConfig{Hiccups: true})
	tier.StartRun(sim.Time(0).Add(5 * time.Second))
	engine.RunFor(5 * time.Second)
	// At 1.2 hiccups/s over 5s, several background jobs should have run.
	if tier.Completed() < 2 {
		t.Errorf("only %d hiccups in 5s, want several", tier.Completed())
	}
}

func TestTierResetRunClearsState(t *testing.T) {
	tier, engine := newTier(t, 1, TierConfig{})
	for i := 0; i < 5; i++ {
		tier.Submit(0, time.Microsecond, nil, noopSink)
	}
	engine.Run()
	tier.ResetRun(sim.NewEngine(), rng.New(3))
	if tier.Completed() != 0 || tier.MaxQueueDepth() != 0 || tier.BusyTime() != 0 {
		t.Error("counters survive reset")
	}
	if tier.queue.depth() != 0 {
		t.Error("queue survives reset")
	}
}

// TestTierQueueDepthSplit drives the shared-FIFO (Submit) and the
// per-connection affinity (SubmitConn) paths in one run and checks the
// two backlogs are tracked separately: 1 worker, one running job, then
// 3 shared submissions and 2 affinity submissions on the busy worker.
func TestTierQueueDepthSplit(t *testing.T) {
	tier, engine := newTier(t, 1, TierConfig{})
	tier.Submit(0, 10*time.Microsecond, nil, noopSink) // occupies the worker
	for i := 0; i < 3; i++ {
		tier.Submit(0, time.Microsecond, nil, noopSink)
	}
	for i := 0; i < 2; i++ {
		tier.SubmitConn(0, 0, time.Microsecond, nil, noopSink)
	}
	engine.Run()
	if got := tier.MaxSharedQueueDepth(); got != 3 {
		t.Errorf("max shared queue depth = %d, want 3", got)
	}
	if got := tier.MaxConnQueueDepth(); got != 2 {
		t.Errorf("max conn queue depth = %d, want 2", got)
	}
	if got := tier.MaxQueueDepth(); got != 3 {
		t.Errorf("max queue depth = %d, want max(3,2)=3", got)
	}
	if tier.Completed() != 6 {
		t.Errorf("completed = %d, want 6", tier.Completed())
	}
}

// TestTierSubmitConnExtremeConn pins the non-negative-modulo fix: the old
// `conn = -conn` normalization overflowed for math.MinInt (still
// negative) and panicked indexing the worker slice.
func TestTierSubmitConnExtremeConn(t *testing.T) {
	tier, engine := newTier(t, 3, TierConfig{})
	for _, conn := range []int{math.MinInt, math.MinInt + 1, -1, 0, 1, math.MaxInt} {
		tier.SubmitConn(0, conn, time.Microsecond, nil, noopSink)
	}
	engine.Run()
	if tier.Completed() != 6 {
		t.Errorf("completed = %d, want 6", tier.Completed())
	}
}

// TestTierBusyTimeAccumulates checks worker occupancy accounting: two
// 10µs jobs on separate workers accumulate ≈20µs of busy time.
func TestTierBusyTimeAccumulates(t *testing.T) {
	tier, engine := newTier(t, 2, TierConfig{})
	tier.Submit(0, 10*time.Microsecond, nil, noopSink)
	tier.Submit(0, 10*time.Microsecond, nil, noopSink)
	engine.Run()
	approx(t, "busy time", tier.BusyTime(), 20*time.Microsecond)
}

// TestJobFIFORingReuse exercises the head-index ring directly: a long
// push/pop stream at constant depth must preserve FIFO order, reuse slots
// via compaction instead of growing with total throughput (a naive
// head-index slice would reach cap ≈ 1000 here), and zero vacated slots.
func TestJobFIFORingReuse(t *testing.T) {
	var q jobFIFO
	costOf := func(i int) time.Duration { return time.Duration(i + 1) }
	q.push(tierJob{cost: costOf(0)})
	q.push(tierJob{cost: costOf(1)})
	next := 0
	for i := 2; i < 1000; i++ {
		q.push(tierJob{cost: costOf(i)})
		j := q.pop() // depth stays 2, head keeps moving
		if j.cost != costOf(next) {
			t.Fatalf("pop %d: cost %v, want %v", next, j.cost, costOf(next))
		}
		next++
	}
	if q.depth() != 2 {
		t.Fatalf("depth = %d, want 2", q.depth())
	}
	if cap(q.jobs) > 16 {
		t.Errorf("backing array grew to cap %d for a depth-2 workload (compaction broken)", cap(q.jobs))
	}
	for q.depth() > 0 {
		j := q.pop()
		if j.cost != costOf(next) {
			t.Fatalf("drain pop %d: cost %v, want %v", next, j.cost, costOf(next))
		}
		next++
	}
	for _, j := range q.jobs[:cap(q.jobs)] {
		if j != (tierJob{}) {
			t.Fatal("vacated slot not zeroed")
		}
	}
}

func TestStackCostReflectsSMT(t *testing.T) {
	mOff, _ := hw.NewMachine("off", 2, hw.ServerBaselineConfig())
	mOn, _ := hw.NewMachine("on", 2, hw.ServerBaselineConfig().WithSMT(true))
	tOff, _ := NewTier(TierConfig{Name: "a", Machine: mOff, Cores: []int{0}})
	tOn, _ := NewTier(TierConfig{Name: "b", Machine: mOn, Cores: []int{0}})
	if tOff.StackCost() <= tOn.StackCost() {
		t.Errorf("SMT-off stack cost %v should exceed SMT-on %v (softirq offload)",
			tOff.StackCost(), tOn.StackCost())
	}
}
